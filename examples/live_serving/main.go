// Live serving: run BERT-base behind the concurrent serving runtime —
// bursty Zipf-mixed traffic, continuous batching, deadlines, and a
// mid-run fault storm that trips the circuit breaker onto the host
// fallback until the array heals. The offline simulator then replays
// the recorded run as the oracle for the live latency distribution
// (DESIGN.md §12).
//
// Run with: go run ./examples/live_serving
package main

import (
	"fmt"
	"log"

	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/pim"
	"repro/internal/serving"
	"repro/internal/serving/live"
)

func main() {
	model := nn.BERTBase
	params := lutnn.Params{V: 4, CT: 16}
	sys := core.NewUPMEMSystem()
	e := engine.New()
	batches := []int{1, 2, 4, 8, 16}

	// Latency models at sampled batch sizes: the PIM path from the
	// engine's PIM-DL estimate, the fallback from EstimateDegraded under
	// an array-killing plan — the latency the engine quotes when the
	// surviving PEs can no longer host the tuned mappings and every LUT
	// operator drops back to host GEMM.
	killer := pim.FaultPlan{Seed: 1, DeadPEFraction: 0.999}
	var pimSecs, hostSecs []float64
	for _, b := range batches {
		rep, err := sys.Estimate(model, b, params)
		if err != nil {
			log.Fatal(err)
		}
		pimSecs = append(pimSecs, rep.Total())
		deg, err := e.EstimateDegraded(engine.Config{
			Model: model, Batch: b, Params: params,
			Platform: sys.Platform, Host: sys.Host, HostPrec: sys.HostPrec,
			LUTElemBytes: sys.LUTElemBytes, Space: sys.Space,
		}, killer)
		if err != nil {
			log.Fatal(err)
		}
		hostSecs = append(hostSecs, deg.Total())
	}
	pimLat, err := serving.InterpolatedLatency(batches, pimSecs)
	if err != nil {
		log.Fatal(err)
	}
	hostLat, err := serving.InterpolatedLatency(batches, hostSecs)
	if err != nil {
		log.Fatal(err)
	}

	// The live backend's fault machinery needs one reference LUT operator
	// on the array: BERT's hidden→hidden projection at sequence length.
	w := pim.Workload{
		N: model.SeqLen, CB: model.Hidden / params.V, CT: params.CT,
		F: model.Hidden, ElemBytes: sys.LUTElemBytes,
	}
	tuned, err := autotuner.Tune(sys.Platform, w, sys.Space)
	if err != nil {
		log.Fatal(err)
	}
	pimBE, err := live.NewPIMBackend(sys.Platform, w, tuned.Mapping, pimLat)
	if err != nil {
		log.Fatal(err)
	}
	hostBE, err := live.NewHostBackend(hostLat)
	if err != nil {
		log.Fatal(err)
	}

	// Everything below scales with the modelled full-batch latency, so
	// the scenario keeps its shape whatever the estimates come out to.
	lat16 := pimLat(16)
	capacity := 16 / lat16
	// Base rate below capacity; the MMPP bursts (2x for ~1/5 of the run)
	// push the instantaneous load to ~1.7x capacity in waves, so deadline
	// drops come and go instead of drowning the run. Long-run average ≈
	// capacity.
	rate := 0.85 * capacity
	const requests = 1200
	horizon := requests / rate

	cfg := live.Config{
		Policy:   serving.Policy{MaxBatch: 16, MaxWait: 0.2 * lat16},
		QueueCap: 96,
		Shed:     live.ShedDegrade,
		Robust:   serving.Robustness{Deadline: 5 * lat16, MaxRetries: 2, Backoff: 0.1 * lat16},
		Breaker:  live.BreakerConfig{Window: 6, MinSamples: 3, TripRatio: 0.5, Cooldown: 1.5 * lat16},
	}
	clock, err := live.NewScaledClock(lat16 / 0.005) // full batch ≈ 5 ms wall
	if err != nil {
		log.Fatal(err)
	}
	srv, err := live.NewServer(cfg, clock, pimBE, hostBE)
	if err != nil {
		log.Fatal(err)
	}

	spec := live.LoadSpec{
		Rate:     rate,
		Burst:    &live.MMPP{BurstFactor: 2, MeanCalm: horizon / 6, MeanBurst: horizon / 24},
		Mix:      live.ZipfMix{S: 1.3, Kinds: 4},
		Requests: requests,
		Seed:     7,
	}
	arrivals, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	sched := live.ChaosSchedule{
		{At: 0.35 * horizon, Plan: pim.FaultPlan{Seed: 42, DeadPEFraction: 0.05, FlipRate: 0.9}, Note: "storm"},
		{At: 0.65 * horizon, Note: "heal"},
	}

	fmt.Printf("BERT-base live serving on UPMEM: %d requests at %.0f req/s (capacity ~%.0f req/s)\n",
		requests, rate, capacity)
	fmt.Printf("bursty MMPP(x2) arrivals, Zipf(1.3) request mix, deadline %.3gs, fault storm over t=[%.3g, %.3g]s\n\n",
		cfg.Robust.Deadline, sched[0].At, sched[1].At)

	res, err := live.RunScenario(srv, arrivals, sched)
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Summary
	if err := sum.Conservation(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outcomes: served %d | degraded %d | shed %d | timeouts %d | failures %d (of %d, conserved)\n",
		sum.Served, sum.Degraded, sum.ShedQueue, sum.Timeouts, sum.Failures, sum.Submitted)
	fmt.Printf("primary lane: %d batches, %d attempts (%d retries, %d DMA retries), %d host-served\n",
		sum.Batches, sum.Attempts, sum.Retries, sum.DMARetries, sum.HostServed)
	br := srv.Breaker()
	fmt.Printf("breaker: %d trips, %d recoveries, final state %v\n", br.Trips(), br.Recoveries(), br.State())

	fmt.Println("\ntimeline:")
	for _, ev := range res.Recorder.Events() {
		fmt.Printf("  t=%6.3fs  %-8s %s\n", ev.At, ev.Kind, ev.Note)
	}

	liveTr := res.Recorder.PrimaryTrace()
	simTr, err := res.Recorder.Replay(cfg, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved latency vs replay oracle (offline simulator on the recorded run):\n")
	for _, p := range []float64{50, 95, 99} {
		fmt.Printf("  p%-3g live %.4gs | replay %.4gs | gap %.1f%%\n",
			p, liveTr.Percentile(p), simTr.Percentile(p), 100*live.PercentileGap(liveTr, simTr, p))
	}
	fmt.Println("\n(the oracle's mean-fit model smooths the storm window's pim/host latency mix, so tail")
	fmt.Println(" gaps widen here; the deadline-bound chaos acceptance test pins p50/p95/p99 within 5%)")
}

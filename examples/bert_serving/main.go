// BERT serving: estimate batched BERT-base/large inference on the
// simulated UPMEM PIM-DIMM platform — the paper's main evaluation
// scenario (Fig. 10) — and compare against the CPU server and GEMM-based
// inference on the same PIM hardware.
//
// Run with: go run ./examples/bert_serving
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/nn"
)

func main() {
	sys := core.NewUPMEMSystem()
	cpu := baseline.CPUServer()

	for _, model := range []nn.Config{nn.BERTBase, nn.BERTLarge} {
		const batch = 64
		params := lutnn.Params{V: 4, CT: 16}

		dl, err := sys.Estimate(model, batch, params)
		if err != nil {
			log.Fatal(err)
		}
		gemmPIM, err := sys.EstimateGEMMBaseline(model, batch)
		if err != nil {
			log.Fatal(err)
		}

		e := engine.New()
		cpuRep := e.EstimateHost(engine.Config{
			Model: model, Batch: batch, Host: cpu, HostPrec: baseline.INT8,
		})

		fmt.Printf("=== %s (batch %d, seq %d, V=%d CT=%d) ===\n",
			model.Name, batch, model.SeqLen, params.V, params.CT)
		fmt.Printf("  PIM-DL:    %7.2f s  (%.1f seq/s)\n", dl.Total(), dl.Throughput())
		fmt.Printf("  CPU INT8:  %7.2f s  → PIM-DL speedup %.2fx\n",
			cpuRep.Total(), cpuRep.Total()/dl.Total())
		fmt.Printf("  PIM-GEMM:  %7.2f s  → PIM-DL speedup %.2fx\n",
			gemmPIM.Total(), gemmPIM.Total()/dl.Total())

		lut := dl.ClassTime(engine.ClassLUT)
		ccs := dl.ClassTime(engine.ClassCCS)
		other := dl.ClassTime(engine.ClassOther)
		fmt.Printf("  breakdown: LUT %.1f%% | CCS %.1f%% | Other %.1f%%\n",
			lut/dl.Total()*100, ccs/dl.Total()*100, other/dl.Total()*100)

		eDL := energy.Estimate(dl, sys.Host, sys.Platform)
		eCPU := energy.Estimate(cpuRep, cpu, nil)
		fmt.Printf("  energy:    PIM-DL %.0f J vs CPU INT8 %.0f J → %.2fx more efficient\n\n",
			eDL, eCPU, eCPU/eDL)
		fmt.Println(dl.Timeline(72, 1))
	}
}

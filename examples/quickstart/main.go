// Quickstart: convert one linear layer to LUT-NN and run it on the
// simulated UPMEM platform.
//
// This walks the whole PIM-DL pipeline for a single operator:
//
//  1. cluster activation sub-vectors into codebooks (K-means),
//  2. pre-compute the lookup tables from the weights,
//  3. auto-tune the PIM mapping,
//  4. execute CCS on the host and the table lookup across simulated PEs,
//  5. compare against the exact GEMM result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lutnn"
	"repro/internal/tensor"
)

func main() {
	const (
		rows   = 512 // batch × sequence length
		hidden = 256
		outDim = 512
		subVec = 4  // V: sub-vector length
		nCent  = 16 // CT: centroids per codebook
	)
	rng := rand.New(rand.NewSource(42))
	// LUT-NN works because real activations have block-wise semantic
	// similarity (paper §3): model that with a few prototype rows plus
	// noise rather than i.i.d. Gaussians.
	protos := tensor.RandN(rng, 1, 8, hidden)      // shared activation prototypes
	acts := mixtureActivations(rng, protos, rows)  // calibration activations
	weight := tensor.RandN(rng, 1, outDim, hidden) // the layer to convert
	bias := tensor.RandN(rng, 1, outDim)

	// 1–2. Convert the layer: codebooks + lookup tables (+ calibration).
	layer, err := core.ConvertLinear(weight, bias, acts, lutnn.Params{V: subVec, CT: nCent}, true, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Converted %dx%d linear into %d codebooks x %d centroids (LUT: %d KiB FP32)\n",
		outDim, hidden, layer.Codebooks.CB, nCent, layer.Table.SizeBytes(4)/1024)

	// 3. Auto-tune the mapping for the UPMEM platform.
	sys := core.NewUPMEMSystem()
	sys.LUTElemBytes = 4 // keep FP32 tables in this demo
	dep, err := sys.Deploy(layer, rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Auto-tuned mapping: %v on %d PEs (searched %d candidates)\n",
		dep.Tuned.Mapping, dep.Tuned.Mapping.PEs(dep.Workload), dep.Tuned.Evaluated)

	// 4. Run: CCS on the host, distributed lookup on the simulated PEs.
	inputs := mixtureActivations(rng, protos, rows)
	out, timing, err := dep.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Compare with exact GEMM.
	exact := lutnn.ForwardExact(inputs, weight, bias)
	fmt.Printf("\nLUT-NN vs exact GEMM relative error: %.3f (bounded by centroid quantization)\n",
		tensor.RelativeError(out, exact))
	fmt.Printf("Modelled PIM time: %.4g s (host transfers %.3g s, kernel %.3g s)\n",
		timing.Total(), timing.Sub(), timing.Kernel())
}

// mixtureActivations draws each row from a small set of shared prototypes
// plus noise, mimicking the clustered structure of real DNN activations.
func mixtureActivations(rng *rand.Rand, protos *tensor.Tensor, rows int) *tensor.Tensor {
	out := tensor.New(rows, protos.Dim(1))
	for i := 0; i < rows; i++ {
		p := protos.Row(rng.Intn(protos.Dim(0)))
		row := out.Row(i)
		for j := range row {
			row[j] = p[j] + float32(rng.NormFloat64()*0.25)
		}
	}
	return out
}

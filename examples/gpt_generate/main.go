// GPT-style generation: train a tiny causal (decoder-only) transformer to
// continue arithmetic-progression token sequences, then generate with the
// LM head. Also shows the single-batch decode economics of paper §2: on
// GEMV-shaped decode the PIM platforms beat the GPU natively, no LUT-NN
// needed — which is exactly why PIM-DL targets *batched* GEMM instead.
//
// Run with: go run ./examples/gpt_generate
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/pim"
)

func main() {
	cfg := nn.Config{
		Name: "tiny-gpt", Kind: nn.TokenInput, Vocab: 32,
		Hidden: 32, Layers: 2, Heads: 4, FFN: 64,
		SeqLen: 8, Classes: 2, Causal: true,
	}
	m := nn.NewModel(cfg, 7)

	// Language-model training: predict the next token of sequences that
	// count upward by a fixed stride (mod vocab).
	rng := rand.New(rand.NewSource(8))
	fmt.Println("Training a 2-layer causal transformer on counting sequences...")
	params := m.Params()
	opt := autograd.NewAdam(3e-3, params...)
	opt.ClipMax = 1
	for step := 0; step < 600; step++ {
		const batch = 16
		ids := make([]int, 0, batch*cfg.SeqLen)
		labels := make([]int, 0, batch)
		for s := 0; s < batch; s++ {
			start := rng.Intn(cfg.Vocab)
			stride := 1 + rng.Intn(3)
			for p := 0; p < cfg.SeqLen; p++ {
				ids = append(ids, (start+p*stride)%cfg.Vocab)
			}
			labels = append(labels, (start+cfg.SeqLen*stride)%cfg.Vocab)
		}
		// Next-token loss: last hidden state of each sequence projected
		// through the tied embedding.
		h := m.HiddenStates(&nn.Batch{TokenIDs: ids, BatchN: batch})
		rows := make([]int, batch)
		for s := 0; s < batch; s++ {
			rows[s] = (s+1)*cfg.SeqLen - 1
		}
		logits := autograd.MatMulT(autograd.GatherRows(h, rows), m.Embed)
		loss := autograd.CrossEntropyLogits(logits, labels)
		opt.ZeroGrad()
		loss.Backward()
		opt.Step()
		if step%200 == 0 {
			fmt.Printf("  step %3d  loss %.3f\n", step, loss.T.Data[0])
		}
	}

	prompt := []int{2, 4, 6, 8, 10, 12, 14, 16}
	out, err := m.Generate(prompt, 6, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprompt %v → generated %v (expect counting by 2 mod 32)\n\n", prompt, out)

	// Decode economics (paper §2): single-batch GEMV decode.
	e := engine.New()
	model := nn.BERTLarge
	model.SeqLen = 128
	dcfg := engine.Config{Model: model, Batch: 1,
		Platform: pim.AiM(), Host: baseline.V100(), HostPrec: baseline.FP16}
	pimDec := e.EstimateDecodePIMGEMV(dcfg, 128)
	gpuDec := e.EstimateDecodeHost(dcfg, 128)
	fmt.Printf("Single-batch decode, BERT-large shape (the GEMV regime of paper §2):\n")
	fmt.Printf("  AiM GEMV decode:  %.1f tokens/s\n", pimDec.TokensPerSecond())
	fmt.Printf("  V100 decode:      %.1f tokens/s\n", gpuDec.TokensPerSecond())
	fmt.Printf("→ the memory-side MACs win decode natively; PIM-DL exists for the *batched* GEMM case.\n")
}

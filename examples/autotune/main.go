// Autotune: explore the LUT-operator mapping space of BERT-large's FFN1
// layer on all three DRAM-PIM platforms — the workload of the paper's
// Fig. 13 case study — and show how far the auto-tuner's pick lands from
// the exhaustive optimum.
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"repro/internal/autotuner"
	"repro/internal/mapping"
	"repro/internal/pim"
)

func main() {
	// BERT-large FFN1 at batch 64 × seq 512 with V=4, CT=16:
	// (N, CB, CT, F) = (32768, 256, 16, 4096), as in paper §6.6.
	space := mapping.SpaceConfig{MaxDivisors: 6}

	for _, plat := range []*pim.Platform{pim.UPMEM(), pim.HBMPIM(), pim.AiM()} {
		w := pim.Workload{N: 32768, CB: 256, CT: 16, F: 4096, ElemBytes: plat.ElemBytes}
		res, err := autotuner.Tune(plat, w, space)
		if err != nil {
			log.Fatal(err)
		}
		_, _, bestT, worstT, n := autotuner.ExhaustiveBest(plat, w, space)

		fmt.Printf("=== %s ===\n", plat.Name)
		fmt.Printf("  mapping space:    %d legal mappings, best %.4g s, worst %.4g s (%.1fx gap)\n",
			n, bestT, worstT, worstT/bestT)
		fmt.Printf("  auto-tuner pick:  %v\n", res.Mapping)
		fmt.Printf("  predicted %.4g s, simulated %.4g s → %.1f%% above exhaustive best\n",
			res.Predicted.Total(), res.Simulated.Total(),
			(res.Simulated.Total()/bestT-1)*100)
		fmt.Printf("  cost-model error on the pick: %.1f%%\n\n",
			relErr(res.Predicted.Total(), res.Simulated.Total())*100)
	}
}

func relErr(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

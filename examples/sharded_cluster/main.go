// Cluster sharding: place one LUT operator across 8 DIMM shards with
// replicated sub-LUT ranges, then walk the failure ladder — healthy
// spread, one dead shard absorbed by replica failover, per-PE faults
// recovered with per-shard derived plans, and finally both replicas of
// a range lost, the one state the cluster cannot route around
// (shard.ErrAllReplicasLost matches pim.ErrIrrecoverable, so the
// engine's host-GEMM fallback fires on exactly this condition).
//
// Run with: go run ./examples/sharded_cluster
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/autotuner"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/pim"
	"repro/internal/shard"
	"repro/internal/tensor"
)

func report(name string, cl *shard.Cluster, ct *shard.ClusterTiming) {
	fmt.Printf("%s:\n", name)
	for _, stg := range ct.PerShard {
		fmt.Printf("  shard %d: %-8v %2d tiles | busy %.3g s\n", stg.Shard, stg.Health, stg.Tiles, stg.Busy)
	}
	cr := ct.Capacity
	fmt.Printf("  makespan %.4g s (steady %.4g s) | broadcast %.3g s | gather %.3g s\n",
		ct.Makespan, ct.SteadyMakespan, ct.Broadcast, ct.Gather)
	fmt.Printf("  capacity %d/%d PEs (%.0f%%) | failovers %d | degraded ranges %d | min live replicas %d\n\n",
		cr.LivePE, cr.TotalPE, 100*cr.Fraction, ct.Failovers, cr.DegradedRanges, cr.MinLiveReplicas)
}

func main() {
	const (
		n, h, f = 256, 128, 256
		v, ct   = 4, 16
		seed    = 7
	)
	plat := pim.UPMEM()

	// Build the LUT-NN operator the usual way: k-means codebooks from
	// sample activations, table from the weights.
	rng := rand.New(rand.NewSource(seed))
	acts := tensor.RandN(rng, 1, n, h)
	weight := tensor.RandN(rng, 1, f, h)
	layer, err := lutnn.Convert(weight, nil, acts, lutnn.Params{V: v, CT: ct}, seed)
	if err != nil {
		log.Fatal(err)
	}
	w := pim.Workload{N: n, CB: h / v, CT: ct, F: f, ElemBytes: 4}

	// Cluster shape: 8 shards, every sub-LUT range on 2 shards, and the
	// hottest quarter of the ranges (by the heat vector — say, attention
	// projections that every layer hits) on 3. Four row blocks give each
	// replica set parallel work.
	cfg := shard.Config{Shards: 8, Replicas: 2, HotReplicas: 3, HotFraction: 0.25, RowBlocks: 4}
	heat := []float64{1, 9, 2, 8, 1, 1, 2, 1} // ranges 1 and 3 are hot

	// One mapping covers every cluster tile: tune it for the tile shape
	// on the per-shard slice of the platform.
	tileW, _, err := shard.TileWorkload(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	shardPlat, err := shard.PerShardPlatform(plat, cfg.Shards)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := autotuner.Tune(shardPlat, tileW, mapping.SpaceConfig{MaxDivisors: 8})
	if err != nil {
		log.Fatal(err)
	}
	cl, err := shard.New(plat, w, tuned.Mapping, cfg, heat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%dx%d LUT operator across %d shards of %s (%d PEs each), tile %dx%d, mapping %v\n\n",
		n, f, cfg.Shards, plat.Name, shardPlat.NumPE, cl.Tile.N, cl.Tile.F, tuned.Mapping)
	fmt.Println("placement (home shard first; hot ranges carry an extra replica):")
	for _, rg := range cl.P.Ranges {
		hot := ""
		if rg.Hot {
			hot = " (hot)"
		}
		fmt.Printf("  LUT range [%4d, %4d) on shards %v%s\n", rg.Lo, rg.Hi, rg.Replicas, hot)
	}
	fmt.Println()

	// Rung 1: healthy. Row blocks round-robin across each range's
	// replicas; the functional result is byte-identical to the unsharded
	// single-array kernel.
	idx := layer.Codebooks.Search(acts)
	allUp := shard.NewState(cfg.Shards)
	res, err := cl.ExecuteLUT(idx, layer.Table, pim.FaultPlan{}, allUp)
	if err != nil {
		log.Fatal(err)
	}
	ref := layer.Table.Lookup(idx, n)
	fmt.Printf("healthy cluster vs unsharded reference: max |diff| = %g (bit-exact sharding)\n\n",
		tensor.MaxAbsDiff(res.Output, ref))
	report("healthy", cl, res.Timing)

	// Rung 2: shard 2 dies. Its tiles fail over to the surviving
	// replicas; the output is unchanged, the makespan stretches, and the
	// capacity report says how close the thin ranges are to the edge.
	down := shard.NewState(cfg.Shards)
	down.SetDown(2, true)
	res, err = cl.ExecuteLUT(idx, layer.Table, pim.FaultPlan{}, down)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 2 dead, replicas cover: max |diff| = %g\n\n", tensor.MaxAbsDiff(res.Output, ref))
	report("shard 2 down", cl, res.Timing)

	// Rung 3: per-PE faults on top. Every shard derives its own plan from
	// the base seed (splitmix64 of shard ID), so the storm replays
	// identically at any shard count; recovery re-dispatches around dead
	// PEs and retries corrupt transfers until the output is exact again.
	plan := pim.FaultPlan{Seed: 42, DeadPEFraction: 0.2, FlipRate: 0.05, StragglerSpread: 0.5}
	res, err = cl.ExecuteLUT(idx, layer.Table, plan, down)
	if err != nil {
		log.Fatal(err)
	}
	rec := res.Recovery
	fmt.Printf("fault storm (dead=%.2f flip=%.2f) on the degraded cluster: max |diff| = %g\n",
		plan.DeadPEFraction, plan.FlipRate, tensor.MaxAbsDiff(res.Output, ref))
	fmt.Printf("  recovery: %d dead PEs | %d tiles re-dispatched | %d DMA retries | %d residual corrupt | %.2fx worst straggler\n\n",
		rec.DeadPEs, rec.Redispatched, rec.Retries, rec.ResidualCorrupt, rec.WorstSlowdown)
	report("shard 2 down + fault storm", cl, res.Timing)

	// Rung 4: shard 3 dies too — and range 2's replica set is {2, 3}.
	// Every copy of that sub-LUT is gone; no routing fixes that.
	down.SetDown(3, true)
	_, err = cl.ExecuteLUT(idx, layer.Table, pim.FaultPlan{}, down)
	fmt.Printf("shards 2+3 dead: %v\n", err)
	fmt.Printf("  errors.Is(err, shard.ErrAllReplicasLost) = %v\n", errors.Is(err, shard.ErrAllReplicasLost))
	fmt.Printf("  errors.Is(err, pim.ErrIrrecoverable)     = %v (the engine falls back to host GEMM here)\n",
		errors.Is(err, pim.ErrIrrecoverable))
}

// Serving simulation: put PIM-DL and the CPU baseline behind the same
// request stream and batching policy, and compare throughput and tail
// latency under increasing load — the cloud-serving scenario that
// motivates the paper (§1).
//
// Run with: go run ./examples/serving_sim
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/serving"
)

func main() {
	model := nn.BERTBase
	params := lutnn.Params{V: 4, CT: 16}
	batches := []int{8, 16, 32, 64, 128}

	// Latency models from the engine's estimates at sampled batch sizes.
	sys := core.NewUPMEMSystem()
	e := engine.New()
	var pimSecs, cpuSecs []float64
	for _, b := range batches {
		rep, err := sys.Estimate(model, b, params)
		if err != nil {
			log.Fatal(err)
		}
		pimSecs = append(pimSecs, rep.Total())
		cpu := e.EstimateHost(engine.Config{
			Model: model, Batch: b,
			Host: baseline.CPUServer(), HostPrec: baseline.INT8,
		})
		cpuSecs = append(cpuSecs, cpu.Total())
	}
	pimLat, err := serving.InterpolatedLatency(batches, pimSecs)
	if err != nil {
		log.Fatal(err)
	}
	cpuLat, err := serving.InterpolatedLatency(batches, cpuSecs)
	if err != nil {
		log.Fatal(err)
	}

	pol := serving.Policy{MaxBatch: 128, MaxWait: 0.5}
	fmt.Printf("BERT-base serving, policy max-batch %d / max-wait %.1fs\n\n", pol.MaxBatch, pol.MaxWait)
	fmt.Printf("%-12s  %-24s  %-24s\n", "load (req/s)", "PIM-DL  thr | p50 | p99", "CPU INT8 thr | p50 | p99")
	for _, rate := range []float64{2, 5, 10, 20} {
		arr := serving.PoissonArrivals(rand.New(rand.NewSource(1)), rate, 2000)
		pim, err := serving.Simulate(arr, pimLat, pol)
		if err != nil {
			log.Fatal(err)
		}
		cpu, err := serving.Simulate(arr, cpuLat, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.0f  %5.1f | %5.1fs | %5.1fs     %5.1f | %5.1fs | %5.1fs\n",
			rate,
			pim.Throughput(), pim.Percentile(50), pim.Percentile(99),
			cpu.Throughput(), cpu.Percentile(50), cpu.Percentile(99))
	}
	fmt.Println("\n(thr = served req/s; p50/p99 = request latency percentiles)")
}

// ViT inference: train a small ViT-style patch transformer on a synthetic
// image task, convert every linear layer with eLUT-NN calibration, and run
// real inference through the LUT backends — including INT8 tables, the
// datatype PIM-DL deploys on UPMEM.
//
// Run with: go run ./examples/vit_inference
package main

import (
	"fmt"
	"log"

	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/workload"
)

func main() {
	mc := workload.AccuracyModel(nn.PatchInput, "ViT-demo")
	task := workload.NewTask(workload.TemplateTask, mc, 11)
	task.Scale, task.Noise = 0.35, 1.0
	train := task.Batches(16, 8, 0)
	test := task.Batches(8, 8, 1)

	fmt.Printf("Training %d-layer patch transformer (hidden %d, %d classes)...\n",
		mc.Layers, mc.Hidden, mc.Classes)
	m := nn.NewModel(mc, 11)
	m.Train(train, nn.TrainConfig{LearningRate: 3e-3, Epochs: 40, ClipNorm: 1})
	fmt.Printf("Original accuracy:            %5.1f%%\n", m.Accuracy(test)*100)

	conv := nn.ConvertConfig{
		Params: lutnn.Params{V: 8, CT: 4}, Seed: 12,
		Beta: 0.01, LearningRate: 3e-4, Iterations: 400, TrainWeights: true,
	}
	if err := m.ConvertBaseline(train, conv); err != nil {
		log.Fatal(err)
	}
	m.SetBackend(nn.BackendLUT)
	fmt.Printf("Baseline LUT-NN accuracy:     %5.1f%%  (clustering only)\n", m.Accuracy(test)*100)

	m.SetBackend(nn.BackendGEMM)
	if err := m.CalibrateELUT(train, conv); err != nil {
		log.Fatal(err)
	}
	m.SetBackend(nn.BackendLUT)
	fmt.Printf("eLUT-NN accuracy:             %5.1f%%  (reconstruction loss + STE)\n", m.Accuracy(test)*100)

	m.SetBackend(nn.BackendLUTInt8)
	fmt.Printf("eLUT-NN + INT8 tables:        %5.1f%%  (%d KiB of tables)\n",
		m.Accuracy(test)*100, m.LUTFootprintBytes(1)/1024)
}

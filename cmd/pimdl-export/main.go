// Command pimdl-export produces deployable PIM-DL artifacts:
//
//	pimdl-export -layer out.pdly        # convert a demo layer, write the
//	                                    # binary bundle, reload and verify
//	pimdl-export -trace out.json        # Chrome-trace (chrome://tracing /
//	                                    # Perfetto) of a BERT-base PIM-DL
//	                                    # schedule on UPMEM
//
// Both flags may be combined.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/autotuner"
	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/nn"
	"repro/internal/pim"
	"repro/internal/serial"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	layerPath := flag.String("layer", "", "write a converted-layer bundle to this path")
	tracePath := flag.String("trace", "", "write a Chrome-trace JSON of a BERT-base schedule")
	layers := flag.Int("layers", 2, "transformer layers in the traced schedule")
	flag.Parse()
	if *layerPath == "" && *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *layerPath != "" {
		if err := exportLayer(*layerPath); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-export:", err)
			os.Exit(1)
		}
	}
	if *tracePath != "" {
		if err := exportTrace(*tracePath, *layers); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-export:", err)
			os.Exit(1)
		}
	}
}

// closeKeepErr closes c and folds the close error into *errp unless an
// earlier error is already recorded — a silently dropped Close on a write
// path can hide a short write.
func closeKeepErr(c io.Closer, errp *error) {
	if cerr := c.Close(); *errp == nil {
		*errp = cerr
	}
}

func exportLayer(path string) (retErr error) {
	rng := rand.New(rand.NewSource(1))
	const rows, h, f = 256, 128, 256
	acts := tensor.RandN(rng, 1, rows, h)
	w := tensor.RandN(rng, 1, f, h)
	bias := tensor.RandN(rng, 1, f)
	layer, err := lutnn.Convert(w, bias, acts, lutnn.Params{V: 4, CT: 16}, 2)
	if err != nil {
		return err
	}
	layer.EnableINT8()

	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer closeKeepErr(fh, &retErr)
	enc := serial.NewEncoder(fh)
	if err := enc.Layer(layer); err != nil {
		return err
	}
	// Append the tuned mapping for the deployment shape.
	wk := pim.Workload{N: rows, CB: h / 4, CT: 16, F: f, ElemBytes: 1}
	tuned, err := autotuner.Tune(pim.UPMEM(), wk, mapping.SpaceConfig{MaxDivisors: 6})
	if err != nil {
		return err
	}
	if err := enc.Mapping(tuned.Mapping); err != nil {
		return err
	}
	if err := enc.Flush(); err != nil {
		return err
	}

	// Verify by reloading (the encoder flushed, so the bytes are visible
	// through a second handle even though fh closes on return).
	rf, err := os.Open(path)
	if err != nil {
		return err
	}
	defer closeKeepErr(rf, &retErr)
	dec := serial.NewDecoder(rf)
	loaded, err := dec.Layer()
	if err != nil {
		return fmt.Errorf("verify reload: %w", err)
	}
	m, err := dec.Mapping()
	if err != nil {
		return fmt.Errorf("verify mapping reload: %w", err)
	}
	if !tensor.Equal(loaded.Forward(acts), layer.Forward(acts)) {
		return fmt.Errorf("verify: reloaded layer diverges")
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d KiB bundle (codebooks + FP32 + INT8 tables + bias + mapping %v), reload verified\n",
		path, st.Size()/1024, m)
	return nil
}

func exportTrace(path string, layers int) (retErr error) {
	model := nn.BERTBase
	model.Layers = layers
	e := engine.New()
	rep, err := e.EstimatePIMDL(engine.Config{
		Model: model, Batch: 64,
		Params:   lutnn.Params{V: 4, CT: 16},
		Platform: pim.UPMEM(), Host: baseline.UPMEMHost(),
		HostPrec: baseline.INT8, LUTElemBytes: 1,
		Space: mapping.SpaceConfig{MaxDivisors: 8},
	})
	if err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer closeKeepErr(fh, &retErr)
	if err := trace.Export(fh, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d operator events over %.3g s — open in chrome://tracing or Perfetto\n",
		path, len(rep.Ops), rep.Total())
	return nil
}

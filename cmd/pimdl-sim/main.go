// Command pimdl-sim runs one LUT operator functionally on a simulated
// DRAM-PIM platform with an auto-tuned mapping, verifies the distributed
// result against the single-threaded reference, and prints the timing
// decomposition — the smallest end-to-end demonstration of the whole
// stack (CCS → sub-LUT partition → micro kernel → gather).
//
// Usage:
//
//	pimdl-sim -platform upmem -n 512 -h 256 -f 512 -v 4 -ct 16
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/autotuner"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/pim"
	"repro/internal/tensor"
)

func main() {
	platName := flag.String("platform", "upmem", "target platform: upmem, hbm-pim, aim")
	n := flag.Int("n", 512, "activation rows")
	h := flag.Int("h", 256, "hidden dim")
	f := flag.Int("f", 512, "output features")
	v := flag.Int("v", 4, "sub-vector length")
	ct := flag.Int("ct", 16, "centroids per codebook")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var plat *pim.Platform
	switch *platName {
	case "upmem":
		plat = pim.UPMEM()
	case "hbm-pim", "hbmpim":
		plat = pim.HBMPIM()
	case "aim":
		plat = pim.AiM()
	default:
		fmt.Fprintf(os.Stderr, "pimdl-sim: unknown platform %q\n", *platName)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	acts := tensor.RandN(rng, 1, *n, *h)
	weight := tensor.RandN(rng, 1, *f, *h)

	fmt.Printf("Converting %dx%d linear layer to LUT-NN (V=%d, CT=%d)...\n", *f, *h, *v, *ct)
	layer, err := lutnn.Convert(weight, nil, acts, lutnn.Params{V: *v, CT: *ct}, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
		os.Exit(1)
	}

	w := pim.Workload{N: *n, CB: *h / *v, CT: *ct, F: *f, ElemBytes: 4}
	tuned, err := autotuner.Tune(plat, w, mapping.SpaceConfig{MaxDivisors: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("Auto-tuned mapping: %v (%d PEs, %d candidates)\n",
		tuned.Mapping, tuned.Mapping.PEs(w), tuned.Evaluated)

	idx := layer.Codebooks.Search(acts)
	res, err := pim.ExecuteLUT(plat, w, tuned.Mapping, idx, layer.Table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
		os.Exit(1)
	}

	ref := layer.Table.Lookup(idx, *n)
	exact := lutnn.ForwardExact(acts, weight, nil)
	fmt.Printf("\nFunctional check:\n")
	fmt.Printf("  distributed vs reference lookup: max |diff| = %.3g (must be ~0)\n",
		tensor.MaxAbsDiff(res.Output, ref))
	fmt.Printf("  LUT-NN vs exact GEMM:            rel. error = %.3f (centroid approximation)\n",
		tensor.RelativeError(res.Output, exact))

	tm := res.Timing
	fmt.Printf("\nModelled timing on %s:\n", plat.Name)
	fmt.Printf("  host: index %.3g s | LUT send %.3g s | output %.3g s\n", tm.HostIndex, tm.HostLUT, tm.HostOutput)
	fmt.Printf("  kernel: transfer %.3g s | reduce %.3g s\n", tm.KernelXfer, tm.KernelRed)
	fmt.Printf("  total: %.4g s across %d PEs\n", tm.Total(), res.PEs)
}

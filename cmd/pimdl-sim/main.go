// Command pimdl-sim runs one LUT operator functionally on a simulated
// DRAM-PIM platform with an auto-tuned mapping, verifies the distributed
// result against the single-threaded reference, and prints the timing
// decomposition — the smallest end-to-end demonstration of the whole
// stack (CCS → sub-LUT partition → micro kernel → gather).
//
// The -fault-* flags inject hardware misbehaviour (dead PEs, transient
// DMA bit flips, stragglers) and print the recovery report next to the
// degraded timing:
//
//	pimdl-sim -platform upmem -n 512 -h 256 -f 512 -v 4 -ct 16 \
//	    -fault-dead 0.3 -fault-flip 0.02 -fault-straggler 0.5 -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"

	"repro/internal/autotuner"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/prof"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// simConfig is the validated flag set of one run.
type simConfig struct {
	platform       *pim.Platform
	n, h, f, v, ct int
	seed           int64
	faults         pim.FaultPlan
	metricsPath    string       // write a metrics snapshot here after the run
	pprofDir       string       // write cpu/heap profiles into this directory
	live           *liveConfig  // non-nil: run the live serving runtime instead
	shard          *shardConfig // non-nil: place the operator across a DIMM cluster
}

// parseFlags parses and validates args (without the program name),
// turning every out-of-range value into a clear error instead of a
// downstream panic.
func parseFlags(args []string, stderr io.Writer) (*simConfig, error) {
	fs := flag.NewFlagSet("pimdl-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	platName := fs.String("platform", "upmem", "target platform: upmem, hbm-pim, aim")
	n := fs.Int("n", 512, "activation rows")
	h := fs.Int("h", 256, "hidden dim")
	f := fs.Int("f", 512, "output features")
	v := fs.Int("v", 4, "sub-vector length")
	ct := fs.Int("ct", 16, "centroids per codebook")
	seed := fs.Int64("seed", 1, "random seed")
	faultDead := fs.Float64("fault-dead", 0, "fraction of dead PEs [0,1)")
	faultFlip := fs.Float64("fault-flip", 0, "per-transfer DMA corruption probability [0,1]")
	faultStraggler := fs.Float64("fault-straggler", 0, "per-PE straggler slowdown spread (>= 0)")
	faultSeed := fs.Int64("fault-seed", 1, "fault plan seed")
	metricsPath := fs.String("metrics", "", "write a metrics snapshot to this file after the run (.prom/.txt for Prometheus text, anything else for JSON)")
	pprofDir := fs.String("pprof", "", "write cpu.pprof and heap.pprof into this directory")
	buildLive := liveFlags(fs)
	buildShard := shardFlags(fs)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	cfg := &simConfig{
		n: *n, h: *h, f: *f, v: *v, ct: *ct, seed: *seed,
		faults: pim.FaultPlan{
			Seed:            *faultSeed,
			DeadPEFraction:  *faultDead,
			FlipRate:        *faultFlip,
			StragglerSpread: *faultStraggler,
		},
	}
	switch *platName {
	case "upmem":
		cfg.platform = pim.UPMEM()
	case "hbm-pim", "hbmpim":
		cfg.platform = pim.HBMPIM()
	case "aim":
		cfg.platform = pim.AiM()
	default:
		return nil, fmt.Errorf("unknown platform %q (want upmem, hbm-pim or aim)", *platName)
	}
	for _, d := range []struct {
		name string
		val  int
	}{{"-n", cfg.n}, {"-h", cfg.h}, {"-f", cfg.f}, {"-v", cfg.v}, {"-ct", cfg.ct}} {
		if d.val <= 0 {
			return nil, fmt.Errorf("%s must be positive, got %d", d.name, d.val)
		}
	}
	if cfg.ct < 2 || cfg.ct > 256 {
		return nil, fmt.Errorf("-ct must be in [2, 256] (indices are uint8), got %d", cfg.ct)
	}
	if cfg.h%cfg.v != 0 {
		return nil, fmt.Errorf("-v %d must divide -h %d", cfg.v, cfg.h)
	}
	if err := cfg.faults.Validate(); err != nil {
		return nil, fmt.Errorf("fault flags: %v", err)
	}
	var err error
	if cfg.live, err = buildLive(cfg.faults); err != nil {
		return nil, err
	}
	if cfg.shard, err = buildShard(); err != nil {
		return nil, err
	}
	if cfg.shard != nil {
		// Surface workload/cluster shape mismatches (F vs shards, N vs row
		// blocks) at parse time rather than as a runtime error.
		w := pim.Workload{N: cfg.n, CB: cfg.h / cfg.v, CT: cfg.ct, F: cfg.f, ElemBytes: 4}
		if _, _, err := shard.TileWorkload(w, cfg.shard.cfg); err != nil {
			return nil, err
		}
	}
	cfg.metricsPath, cfg.pprofDir = *metricsPath, *pprofDir
	if cfg.metricsPath != "" {
		if err := metrics.ValidateOutputPath(cfg.metricsPath); err != nil {
			return nil, fmt.Errorf("-metrics: %v", err)
		}
	}
	if cfg.pprofDir != "" {
		if err := prof.ValidateDir(cfg.pprofDir); err != nil {
			return nil, fmt.Errorf("-pprof: %v", err)
		}
	}
	return cfg, nil
}

// printer latches the first write error so run can report it once at the
// end instead of checking every Fprintf.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func run(cfg *simConfig, out io.Writer) error {
	if cfg.live != nil {
		return runLive(cfg, out)
	}
	if cfg.shard != nil {
		return runSharded(cfg, out)
	}
	stdout := &printer{w: out}
	rng := rand.New(rand.NewSource(cfg.seed))
	acts := tensor.RandN(rng, 1, cfg.n, cfg.h)
	weight := tensor.RandN(rng, 1, cfg.f, cfg.h)
	plat := cfg.platform

	stdout.printf("Converting %dx%d linear layer to LUT-NN (V=%d, CT=%d)...\n", cfg.f, cfg.h, cfg.v, cfg.ct)
	layer, err := lutnn.Convert(weight, nil, acts, lutnn.Params{V: cfg.v, CT: cfg.ct}, cfg.seed)
	if err != nil {
		return err
	}

	w := pim.Workload{N: cfg.n, CB: cfg.h / cfg.v, CT: cfg.ct, F: cfg.f, ElemBytes: 4}
	tuned, err := autotuner.Tune(plat, w, mapping.SpaceConfig{MaxDivisors: 8})
	if err != nil {
		return err
	}
	stdout.printf("Auto-tuned mapping: %v (%d PEs, %d candidates)\n",
		tuned.Mapping, tuned.Mapping.PEs(w), tuned.Evaluated)

	idx := layer.Codebooks.Search(acts)
	before := metrics.Default().Flatten()
	res, err := pim.ExecuteLUTWithFaults(plat, w, tuned.Mapping, idx, layer.Table, cfg.faults)
	if err != nil {
		return err
	}

	ref := layer.Table.Lookup(idx, cfg.n)
	exact := lutnn.ForwardExact(acts, weight, nil)
	stdout.printf("\nFunctional check:\n")
	stdout.printf("  distributed vs reference lookup: max |diff| = %.3g (must be ~0 after recovery)\n",
		tensor.MaxAbsDiff(res.Output, ref))
	stdout.printf("  LUT-NN vs exact GEMM:            rel. error = %.3f (centroid approximation)\n",
		tensor.RelativeError(res.Output, exact))

	if rec := res.Recovery; rec != nil {
		stdout.printf("\nFault recovery (plan seed %d):\n", cfg.faults.Seed)
		stdout.printf("  dead PEs (used set): %d | tiles re-dispatched: %d\n", rec.DeadPEs, rec.Redispatched)
		stdout.printf("  DMA retries: %d | residual corrupted elements: %d\n", rec.Retries, rec.ResidualCorrupt)
		stdout.printf("  worst straggler slowdown: %.2fx\n", rec.WorstSlowdown)
		clean := pim.SimTiming(plat, w, tuned.Mapping)
		stdout.printf("  degraded total %.4g s vs healthy %.4g s (%.2fx)\n",
			res.Timing.Total(), clean.Total(), res.Timing.Total()/clean.Total())
	}

	tm := res.Timing
	stdout.printf("\nModelled timing on %s:\n", plat.Name)
	stdout.printf("  host: index %.3g s | LUT send %.3g s | output %.3g s\n", tm.HostIndex, tm.HostLUT, tm.HostOutput)
	stdout.printf("  kernel: transfer %.3g s | reduce %.3g s\n", tm.KernelXfer, tm.KernelRed)
	stdout.printf("  total: %.4g s across %d PEs\n", tm.Total(), res.PEs)

	if metrics.Enabled() {
		// Cross-check the observability layer against the timing model:
		// the per-phase counters this execution added must sum to the
		// model's own total (they are read off the same structures).
		after := metrics.Default().Flatten()
		var phaseSum float64
		for _, ph := range []string{"host_index", "host_lut", "host_output", "kernel_xfer", "kernel_reduce"} {
			k := `pimdl_pim_time_seconds_total{phase="` + ph + `"}`
			phaseSum += after[k] - before[k]
		}
		diff := math.Abs(phaseSum - tm.Total())
		if diff > 1e-9 {
			return fmt.Errorf("metrics drifted from timing model: phase sum %.12g vs total %.12g", phaseSum, tm.Total())
		}
		stdout.printf("\nMetrics consistency: phase counters sum to timing total (|diff| = %.3g s)\n", diff)
	}
	if cfg.metricsPath != "" {
		if err := metrics.Default().WriteFile(cfg.metricsPath); err != nil {
			return err
		}
		stdout.printf("wrote metrics snapshot to %s\n", cfg.metricsPath)
	}
	return stdout.err
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred profile finalization, so the profiled body
	// runs in its own function and the exit code propagates out.
	os.Exit(profiledMain(cfg))
}

// profiledMain runs the simulation under the optional CPU/heap profiler
// and returns the process exit code.
func profiledMain(cfg *simConfig) int {
	if cfg.pprofDir != "" {
		stop, err := prof.Start(cfg.pprofDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
			}
		}()
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-sim:", err)
		return 1
	}
	return 0
}

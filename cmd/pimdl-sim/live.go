package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/autotuner"
	"repro/internal/baseline"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/serving"
	"repro/internal/serving/live"
	"repro/internal/trace"
)

// liveConfig is the validated -live flag set: a concurrent serving run
// of the tuned operator instead of a single execution.
type liveConfig struct {
	server    live.Config
	rate      float64 // req/s; 0 = auto (1.5× the tuned batch capacity)
	requests  int
	scale     float64 // virtual seconds per wall second
	burst     float64 // MMPP burst factor; 0 disables
	zipf      float64 // Zipf exponent; 0 disables the kind mix
	chaos     bool    // mid-run fault storm from the -fault-* plan
	tracePath string  // write the run as trace-event JSON
}

// liveFlags registers the -live* flags and returns a builder that
// validates them into a liveConfig (nil when -live was not given).
func liveFlags(fs *flag.FlagSet) func(faults pim.FaultPlan) (*liveConfig, error) {
	on := fs.Bool("live", false, "run the live concurrent serving runtime instead of one execution")
	rate := fs.Float64("live-rate", 0, "open-loop arrival rate in req/s (0 = 1.5x the tuned capacity)")
	requests := fs.Int("live-requests", 2000, "number of requests to generate")
	scale := fs.Float64("live-scale", 0, "virtual seconds simulated per wall second (0 = auto from the modelled batch latency)")
	queue := fs.Int("live-queue", 1024, "admission queue capacity")
	shed := fs.String("live-shed", "reject", "load-shedding policy: reject, block, degrade")
	deadline := fs.Float64("live-deadline", 0.3, "per-request deadline in virtual seconds (0 = none)")
	retries := fs.Int("live-retries", 2, "retry budget per batch")
	backoff := fs.Float64("live-backoff", 0.01, "base retry backoff in virtual seconds (doubles per attempt)")
	maxBatch := fs.Int("live-batch", 16, "continuous-batching batch budget")
	maxWait := fs.Float64("live-wait", 0.01, "max wait before dispatching a partial batch (virtual seconds)")
	burst := fs.Float64("live-burst", 0, "MMPP burst factor over the base rate (0 = plain Poisson)")
	zipf := fs.Float64("live-zipf", 0, "Zipf exponent of the request-kind mix (> 1; 0 = single kind)")
	brWindow := fs.Int("live-breaker-window", 8, "circuit breaker outcome window (0 disables the breaker)")
	brTrip := fs.Float64("live-breaker-trip", 0.5, "circuit breaker failure-ratio trip threshold")
	brCooldown := fs.Float64("live-breaker-cooldown", 0.25, "circuit breaker cooldown before probing (virtual seconds)")
	chaos := fs.Bool("live-chaos", false, "inject the -fault-* plan as a mid-run storm that later heals")
	tracePath := fs.String("live-trace", "", "write the live run as Chrome trace-event JSON to this file")

	return func(faults pim.FaultPlan) (*liveConfig, error) {
		if !*on {
			return nil, nil
		}
		lc := &liveConfig{
			rate:      *rate,
			requests:  *requests,
			scale:     *scale,
			burst:     *burst,
			zipf:      *zipf,
			chaos:     *chaos,
			tracePath: *tracePath,
			server: live.Config{
				Policy:   serving.Policy{MaxBatch: *maxBatch, MaxWait: *maxWait},
				QueueCap: *queue,
				Robust:   serving.Robustness{Deadline: *deadline, MaxRetries: *retries, Backoff: *backoff},
			},
		}
		switch *shed {
		case "reject":
			lc.server.Shed = live.ShedReject
		case "block":
			lc.server.Shed = live.ShedBlock
		case "degrade":
			lc.server.Shed = live.ShedDegrade
		default:
			return nil, fmt.Errorf("-live-shed: unknown policy %q (want reject, block or degrade)", *shed)
		}
		if *brWindow > 0 {
			lc.server.Breaker = live.BreakerConfig{
				Window:     *brWindow,
				MinSamples: (*brWindow + 1) / 2,
				TripRatio:  *brTrip,
				Cooldown:   *brCooldown,
			}
		}
		// Validates the policy, the breaker and — per the robustness
		// contract — serving.Robustness.Validate on the flag values.
		if err := lc.server.Validate(); err != nil {
			return nil, err
		}
		if lc.rate < 0 {
			return nil, fmt.Errorf("-live-rate must be non-negative, got %g", lc.rate)
		}
		if lc.scale < 0 {
			return nil, fmt.Errorf("-live-scale must be non-negative, got %g", lc.scale)
		}
		if lc.burst < 0 {
			return nil, fmt.Errorf("-live-burst: MMPP burst factor %g must be non-negative", lc.burst)
		}
		if lc.zipf < 0 {
			return nil, fmt.Errorf("-live-zipf: Zipf exponent %g must be non-negative", lc.zipf)
		}
		// The load spec re-validates requests/burst/zipf coherently.
		spec := live.LoadSpec{Rate: 1, Requests: lc.requests}
		if lc.burst > 0 {
			spec.Burst = &live.MMPP{BurstFactor: lc.burst, MeanCalm: 1, MeanBurst: 0.25}
		}
		if lc.zipf > 0 {
			spec.Mix = live.ZipfMix{S: lc.zipf, Kinds: 4}
		}
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		if lc.chaos && faults.IsZero() {
			return nil, fmt.Errorf("-live-chaos needs a fault plan (set -fault-dead / -fault-flip / -fault-straggler)")
		}
		return lc, nil
	}
}

// runLive is the -live entry point: tune the operator, derive latency
// models for the PIM array and the host fallback, then serve an
// open-loop load against the fault-injectable backend and report the
// recorded distribution next to the offline replay oracle.
func runLive(cfg *simConfig, out io.Writer) error {
	stdout := &printer{w: out}
	lc := cfg.live
	plat := cfg.platform

	w := pim.Workload{N: cfg.n, CB: cfg.h / cfg.v, CT: cfg.ct, F: cfg.f, ElemBytes: 4}
	tuned, err := autotuner.Tune(plat, w, mapping.SpaceConfig{MaxDivisors: 8})
	if err != nil {
		return err
	}
	stdout.printf("Auto-tuned mapping: %v (%d PEs, %d candidates)\n",
		tuned.Mapping, tuned.Mapping.PEs(w), tuned.Evaluated)

	// Batch latency models: a batch of b requests stacks b copies of the
	// n-row operator. The PIM model comes from the timing simulator at
	// sampled batch sizes; the host fallback is the baseline server's
	// GEMM roofline for the same math.
	var batches []int
	var pimSecs, hostSecs []float64
	host := baseline.CPUServer()
	for b := 1; b <= lc.server.Policy.MaxBatch; b *= 2 {
		batches = append(batches, b)
		wb := w
		wb.N = b * w.N
		pimSecs = append(pimSecs, pim.SimTiming(plat, wb, tuned.Mapping).Total())
		hostSecs = append(hostSecs, host.GEMMTime(b*cfg.n, cfg.h, cfg.f, baseline.FP32))
	}
	if last := batches[len(batches)-1]; last != lc.server.Policy.MaxBatch {
		b := lc.server.Policy.MaxBatch
		wb := w
		wb.N = b * w.N
		batches = append(batches, b)
		pimSecs = append(pimSecs, pim.SimTiming(plat, wb, tuned.Mapping).Total())
		hostSecs = append(hostSecs, host.GEMMTime(b*cfg.n, cfg.h, cfg.f, baseline.FP32))
	}
	pimLat, err := serving.InterpolatedLatency(batches, pimSecs)
	if err != nil {
		return err
	}
	hostLat, err := serving.InterpolatedLatency(batches, hostSecs)
	if err != nil {
		return err
	}

	// The primary backend: a single PIM array, or — under -shards — the
	// cluster backend whose attempts route around dead shards. Either way
	// the healthy-batch latency model comes from the full-array timing
	// simulator; the sharded backend scales it by the cluster's modelled
	// degradation ratio under the active plan and shard state.
	var pimBE interface {
		live.Backend
		live.ChaosTarget
	}
	if cfg.shard != nil {
		cl, _, err := buildCluster(plat, w, cfg.shard)
		if err != nil {
			return err
		}
		sbe, err := live.NewShardedPIMBackend(cl, pimLat)
		if err != nil {
			return err
		}
		stdout.printf("Cluster: %d shards x %d replicas (%d row blocks)\n",
			cfg.shard.cfg.Shards, cl.P.MaxReplicas(), cl.RowBlocks())
		pimBE = sbe
	} else {
		be, err := live.NewPIMBackend(plat, w, tuned.Mapping, pimLat)
		if err != nil {
			return err
		}
		pimBE = be
	}
	var hostBE live.Backend
	if lc.server.Breaker.Enabled() || lc.server.Shed == live.ShedDegrade {
		hb, err := live.NewHostBackend(hostLat)
		if err != nil {
			return err
		}
		hostBE = hb
	}

	maxB := lc.server.Policy.MaxBatch
	capacity := float64(maxB) / pimLat(maxB)
	rate := lc.rate
	//pimdl:lint-ignore float-compare flag default 0 is the exact "auto" sentinel, never a computed value
	if rate == 0 {
		rate = 1.5 * capacity
	}
	horizon := float64(lc.requests) / rate
	scale := lc.scale
	//pimdl:lint-ignore float-compare flag default 0 is the exact "auto" sentinel, never a computed value
	if scale == 0 {
		// Auto-scale so a full batch maps to ~5 ms of wall time: short
		// enough that a run takes a fraction of a second, long enough that
		// Go timer overhead stays small next to the modelled latencies
		// (which is what keeps the replay oracle's gap meaningful).
		scale = math.Max(1, pimLat(maxB)/0.005)
	}
	stdout.printf("\nLive serving on %s: %d requests at %.1f req/s (capacity ~%.1f req/s), %.3g virtual s at %.3gx wall speed\n",
		plat.Name, lc.requests, rate, capacity, horizon, scale)

	clock, err := live.NewScaledClock(scale)
	if err != nil {
		return err
	}
	srv, err := live.NewServer(lc.server, clock, pimBE, hostBE)
	if err != nil {
		return err
	}

	spec := live.LoadSpec{Rate: rate, Requests: lc.requests, Seed: cfg.seed}
	if lc.burst > 0 {
		spec.Burst = &live.MMPP{BurstFactor: lc.burst, MeanCalm: horizon / 4, MeanBurst: horizon / 16}
	}
	if lc.zipf > 0 {
		spec.Mix = live.ZipfMix{S: lc.zipf, Kinds: 4}
	}
	arrivals, err := spec.Generate()
	if err != nil {
		return err
	}

	// Chaos window: -live-chaos injects the -fault-* plan at 0.4 of the
	// horizon and heals at 0.7; -shard-kill (with -shards) kills those
	// shards over the same window and revives them. Both can combine into
	// one storm. A plain -fault-* plan without -live-chaos degrades the
	// whole run, so shard storm events must carry it through.
	var sched live.ChaosSchedule
	shardKill := cfg.shard != nil && len(cfg.shard.kill) > 0
	if lc.chaos || shardKill {
		storm := live.ChaosEvent{At: 0.4 * horizon, Note: "storm"}
		heal := live.ChaosEvent{At: 0.7 * horizon, Note: "heal"}
		if lc.chaos {
			storm.Plan = cfg.faults
			stdout.printf("Chaos: fault storm (dead=%.2f flip=%.2f straggler=%.2f) over t=[%.3g, %.3g]\n",
				cfg.faults.DeadPEFraction, cfg.faults.FlipRate, cfg.faults.StragglerSpread,
				0.4*horizon, 0.7*horizon)
		} else if !cfg.faults.IsZero() {
			storm.Plan, heal.Plan = cfg.faults, cfg.faults
		}
		if shardKill {
			storm.KillShards = cfg.shard.kill
			heal.ReviveShards = cfg.shard.kill
			stdout.printf("Chaos: shards %v down over t=[%.3g, %.3g]\n", cfg.shard.kill, 0.4*horizon, 0.7*horizon)
		}
		sched = live.ChaosSchedule{storm, heal}
	}
	if !lc.chaos && !cfg.faults.IsZero() {
		// A plain -fault-* plan in live mode degrades the whole run.
		pimBE.SetPlan(cfg.faults)
		stdout.printf("Fault plan active for the whole run (dead=%.2f flip=%.2f straggler=%.2f)\n",
			cfg.faults.DeadPEFraction, cfg.faults.FlipRate, cfg.faults.StragglerSpread)
	}

	res, err := live.RunScenario(srv, arrivals, sched)
	if err != nil {
		return err
	}
	sum := res.Summary
	if err := sum.Conservation(); err != nil {
		return err
	}

	stdout.printf("\nOutcomes (conservation checked):\n")
	stdout.printf("  submitted %d = served %d + degraded %d + shed %d + timeouts %d + failures %d\n",
		sum.Submitted, sum.Served, sum.Degraded, sum.ShedQueue, sum.Timeouts, sum.Failures)
	stdout.printf("  batches %d | attempts %d | retries %d | DMA retries %d | served past deadline %d\n",
		sum.Batches, sum.Attempts, sum.Retries, sum.DMARetries, sum.Expired)
	if cfg.shard != nil {
		stdout.printf("  cluster: %d tiles served off their preferred replica (failovers)\n", sum.Failovers)
	}
	br := srv.Breaker()
	if lc.server.Breaker.Enabled() {
		stdout.printf("  breaker: %d trips, %d recoveries, final state %v | host-served requests %d\n",
			br.Trips(), br.Recoveries(), br.State(), sum.HostServed)
	}

	liveTr := res.Recorder.PrimaryTrace()
	if len(liveTr.Completions) > 0 {
		stdout.printf("\nServed latency (virtual s): p50 %.4g | p95 %.4g | p99 %.4g | mean %.4g\n",
			liveTr.Percentile(50), liveTr.Percentile(95), liveTr.Percentile(99), liveTr.MeanLatency())
		simTr, err := res.Recorder.Replay(lc.server, cfg.seed)
		if err != nil {
			return err
		}
		stdout.printf("Replay oracle (offline simulator on the recorded run):\n")
		for _, p := range []float64{50, 95, 99} {
			stdout.printf("  p%g: live %.4g vs replay %.4g (gap %.1f%%)\n",
				p, liveTr.Percentile(p), simTr.Percentile(p), 100*live.PercentileGap(liveTr, simTr, p))
		}
	}

	if lc.tracePath != "" {
		f, err := os.Create(lc.tracePath)
		if err != nil {
			return err
		}
		if err := trace.ExportLive(f, res.Recorder); err != nil {
			_ = f.Close() // the export error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		stdout.printf("wrote live trace to %s\n", lc.tracePath)
	}
	if cfg.metricsPath != "" {
		if err := metrics.Default().WriteFile(cfg.metricsPath); err != nil {
			return err
		}
		stdout.printf("wrote metrics snapshot to %s\n", cfg.metricsPath)
	}
	return stdout.err
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseFlagsValidation: every out-of-range flag combination must be
// rejected with a clear error before any simulation work starts, and
// valid combinations must parse into a usable config.
func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means parse must succeed
	}{
		{"defaults", nil, ""},
		{"all-flags", []string{"-platform", "aim", "-n", "64", "-h", "32", "-f", "64",
			"-v", "4", "-ct", "8", "-fault-dead", "0.3", "-fault-flip", "0.1",
			"-fault-straggler", "2", "-fault-seed", "9"}, ""},
		{"hbmpim-alias", []string{"-platform", "hbmpim"}, ""},
		{"negative-n", []string{"-n", "-4"}, "-n must be positive"},
		{"zero-f", []string{"-f", "0"}, "-f must be positive"},
		{"negative-h", []string{"-h", "-1"}, "-h must be positive"},
		{"ct-too-large", []string{"-ct", "300"}, "[2, 256]"},
		{"ct-too-small", []string{"-ct", "1"}, "[2, 256]"},
		{"v-not-divisor", []string{"-h", "100", "-v", "3"}, "must divide"},
		{"unknown-platform", []string{"-platform", "tpu"}, "unknown platform"},
		{"dead-fraction-one", []string{"-fault-dead", "1"}, "fault flags"},
		{"negative-flip", []string{"-fault-flip", "-0.1"}, "fault flags"},
		{"flip-above-one", []string{"-fault-flip", "1.5"}, "fault flags"},
		{"negative-straggler", []string{"-fault-straggler", "-2"}, "fault flags"},
		{"unparseable", []string{"-n", "lots"}, "invalid value"},
		{"metrics-ok", []string{"-metrics", filepath.Join(t.TempDir(), "snap.json")}, ""},
		{"metrics-prom-ok", []string{"-metrics", filepath.Join(t.TempDir(), "snap.prom")}, ""},
		{"metrics-missing-parent", []string{"-metrics", "/nonexistent/deep/snap.json"},
			"parent directory"},
		{"metrics-parent-is-file", []string{"-metrics", "/dev/null/snap.json"},
			"not a directory"},
		{"metrics-target-is-dir", []string{"-metrics", t.TempDir()}, "is a directory"},
		{"pprof-ok", []string{"-pprof", filepath.Join(t.TempDir(), "profiles")}, ""},
		{"pprof-existing-dir-ok", []string{"-pprof", t.TempDir()}, ""},
		{"pprof-missing-parent", []string{"-pprof", "/nonexistent/deep/profiles"},
			"parent directory"},
		{"pprof-target-is-file", []string{"-pprof", "/dev/null"}, "not a directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v", tc.args, err)
				}
				if cfg.platform == nil || cfg.n <= 0 {
					t.Fatalf("config not populated: %+v", cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted invalid flags: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error()+stderr.String(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunWithFaultsEndToEnd drives the full CLI path (convert, tune,
// faulty execute, report) on a small shape and checks the recovery
// section appears exactly when faults are requested.
func TestRunWithFaultsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a mapping space")
	}
	base := []string{"-n", "64", "-h", "32", "-f", "64", "-v", "4", "-ct", "8"}
	cfg, err := parseFlags(base, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "Fault recovery") {
		t.Fatal("clean run printed a recovery section")
	}
	if !strings.Contains(out.String(), "max |diff| = 0") {
		t.Fatalf("clean run not bit-exact:\n%s", out.String())
	}

	cfg, err = parseFlags(append(base, "-fault-dead", "0.4", "-fault-flip", "0.05", "-fault-seed", "3"), new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Fault recovery (plan seed 3)", "dead PEs", "DMA retries", "max |diff| = 0"} {
		if !strings.Contains(got, want) {
			t.Fatalf("faulty run output missing %q:\n%s", want, got)
		}
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseShardFlagsValidation: the -shard* flag family must reject
// every illegal cluster shape at parse time — including workload
// divisibility, which New would otherwise only surface mid-run — and
// must only build a shard config when -shards was given.
func TestParseShardFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means parse must succeed
	}{
		{"shards-defaults", []string{"-shards", "4"}, ""},
		{"shards-all-flags", []string{"-shards", "4", "-shard-replicas", "2",
			"-shard-hot-replicas", "4", "-shard-hot-frac", "0.25", "-shard-rowblocks", "8",
			"-shard-link-bw", "1e10", "-shard-link-lat", "1e-6", "-shard-kill", "1,3"}, ""},
		{"single-shard", []string{"-shards", "1"}, ""},
		{"kill-with-spaces", []string{"-shards", "4", "-shard-kill", " 0, 2 "}, ""},
		{"negative-shards", []string{"-shards", "-2"}, "Shards"},
		{"zero-replicas", []string{"-shards", "4", "-shard-replicas", "0"}, "Replicas"},
		{"replicas-over-shards", []string{"-shards", "2", "-shard-replicas", "3"}, "Replicas"},
		{"hot-below-base", []string{"-shards", "4", "-shard-replicas", "2", "-shard-hot-replicas", "1"}, "HotReplicas"},
		{"hot-frac-over-one", []string{"-shards", "4", "-shard-hot-frac", "1.5"}, "HotFraction"},
		{"negative-rowblocks", []string{"-shards", "4", "-shard-rowblocks", "-1"}, "RowBlocks"},
		{"zero-link-bw", []string{"-shards", "4", "-shard-link-bw", "0"}, "bandwidth"},
		{"negative-link-lat", []string{"-shards", "4", "-shard-link-lat", "-1e-6"}, "latency"},
		{"kill-garbage", []string{"-shards", "4", "-shard-kill", "1,x"}, "bad shard ID"},
		{"kill-out-of-range", []string{"-shards", "4", "-shard-kill", "4"}, "outside"},
		{"kill-negative", []string{"-shards", "4", "-shard-kill", "-1"}, "outside"},
		{"kill-without-shards", []string{"-shard-kill", "1"}, "-shard-kill needs -shards"},
		{"f-not-divisible", []string{"-shards", "3", "-f", "512"}, "not divisible"},
		{"n-not-divisible", []string{"-shards", "4", "-shard-rowblocks", "3", "-n", "512"}, "not divisible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v", tc.args, err)
				}
				if cfg.shard == nil {
					t.Fatalf("-shards given but no shard config: %+v", cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted invalid flags: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error()+stderr.String(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestShardFlagsOffByDefault: without -shards, the -shard* knobs are
// inert and run takes the single-array path.
func TestShardFlagsOffByDefault(t *testing.T) {
	cfg, err := parseFlags([]string{"-shard-replicas", "2"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shard != nil {
		t.Fatalf("shard config built without -shards: %+v", cfg.shard)
	}
}

// TestParseShardKillList pins the parsed kill list.
func TestParseShardKillList(t *testing.T) {
	cfg, err := parseFlags([]string{"-shards", "8", "-shard-kill", "1,3,6"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 6}
	if len(cfg.shard.kill) != len(want) {
		t.Fatalf("kill list %v, want %v", cfg.shard.kill, want)
	}
	for i, id := range want {
		if cfg.shard.kill[i] != id {
			t.Fatalf("kill list %v, want %v", cfg.shard.kill, want)
		}
	}
}

// TestRunShardedEndToEnd drives the offline -shards CLI path: place a
// small operator on 4 shards with a dead one, fail its tiles over to the
// replicas, and report the functional check, the cluster timing and the
// capacity summary.
func TestRunShardedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a mapping space and executes the cluster functionally")
	}
	args := []string{"-n", "64", "-h", "32", "-f", "64", "-v", "4", "-ct", "8",
		"-shards", "4", "-shard-replicas", "2", "-shard-kill", "1",
		"-fault-dead", "0.1", "-fault-flip", "0.2", "-fault-seed", "7"}
	cfg, err := parseFlags(args, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("runSharded: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"Cluster: 4 shards", "LUT range [", "Dead shards: [1]",
		"Functional check", "Routing: 3/4 shards live", "failovers",
		"Makespan:", "Capacity:", "Fault recovery",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("sharded run output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "max |diff| = NaN") {
		t.Fatalf("functional check NaN:\n%s", got)
	}
}

// TestRunShardedIrrecoverable: killing every replica of a range is a
// clean, explanatory error, not a panic.
func TestRunShardedIrrecoverable(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a mapping space")
	}
	args := []string{"-n", "64", "-h", "32", "-f", "64", "-v", "4", "-ct", "8",
		"-shards", "4", "-shard-replicas", "2", "-shard-kill", "1,2"}
	cfg, err := parseFlags(args, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run(cfg, &out)
	if err == nil {
		t.Fatalf("run succeeded with every replica of range 1 dead:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Irrecoverable") {
		t.Fatalf("output does not explain the irrecoverable loss:\n%s", out.String())
	}
}

// TestRunLiveShardedEndToEnd drives -live -shards together: the sharded
// backend behind the serving runtime, with a mid-run shard kill storm.
func TestRunLiveShardedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a mapping space and runs a scaled-time serving run")
	}
	args := []string{"-n", "64", "-h", "32", "-f", "64", "-v", "4", "-ct", "8",
		"-shards", "4", "-shard-replicas", "2", "-shard-kill", "1",
		"-live", "-live-requests", "400"}
	cfg, err := parseFlags(args, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("runLive sharded: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"Cluster: 4 shards", "Chaos: shards [1] down",
		"conservation checked", "cluster:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("sharded live output missing %q:\n%s", want, got)
		}
	}
}

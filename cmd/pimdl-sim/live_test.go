package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseLiveFlagsValidation: the -live* flag path must reject every
// out-of-range value at parse time — including the deadline/retry knobs
// routed through serving.Robustness.Validate — and must only build a
// live config when -live was given.
func TestParseLiveFlagsValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring; empty means parse must succeed
	}{
		{"live-defaults", []string{"-live"}, ""},
		{"live-all-flags", []string{"-live", "-live-rate", "100", "-live-requests", "50",
			"-live-scale", "20", "-live-queue", "32", "-live-shed", "degrade",
			"-live-deadline", "0.5", "-live-retries", "1", "-live-backoff", "0.02",
			"-live-batch", "8", "-live-wait", "0.005", "-live-burst", "3",
			"-live-zipf", "1.4", "-live-breaker-window", "4"}, ""},
		{"live-chaos-with-plan", []string{"-live", "-live-chaos", "-fault-flip", "0.2"}, ""},
		{"live-breaker-off", []string{"-live", "-live-breaker-window", "0"}, ""},
		{"bad-shed", []string{"-live", "-live-shed", "panic"}, "-live-shed"},
		{"negative-rate", []string{"-live", "-live-rate", "-5"}, "-live-rate"},
		{"negative-scale", []string{"-live", "-live-scale", "-1"}, "-live-scale"},
		{"zero-requests", []string{"-live", "-live-requests", "0"}, "request count"},
		{"negative-deadline", []string{"-live", "-live-deadline", "-0.1"}, "Deadline"},
		{"negative-retries", []string{"-live", "-live-retries", "-1"}, "MaxRetries"},
		{"negative-backoff", []string{"-live", "-live-backoff", "-0.5"}, "Backoff"},
		{"zero-batch", []string{"-live", "-live-batch", "0"}, "MaxBatch"},
		{"zero-queue", []string{"-live", "-live-queue", "0"}, "QueueCap"},
		{"negative-burst", []string{"-live", "-live-burst", "-2"}, "burst factor"},
		{"zipf-at-one", []string{"-live", "-live-zipf", "1"}, "Zipf exponent"},
		{"bad-trip-ratio", []string{"-live", "-live-breaker-trip", "1.5"}, "TripRatio"},
		{"negative-cooldown", []string{"-live", "-live-breaker-cooldown", "-1"}, "Cooldown"},
		{"chaos-without-plan", []string{"-live", "-live-chaos"}, "-live-chaos needs a fault plan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			cfg, err := parseFlags(tc.args, &stderr)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v", tc.args, err)
				}
				if cfg.live == nil {
					t.Fatalf("-live given but no live config: %+v", cfg)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted invalid flags: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error()+stderr.String(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestLiveFlagsOffByDefault: without -live, the -live* knobs are inert
// and run takes the classic single-execution path.
func TestLiveFlagsOffByDefault(t *testing.T) {
	cfg, err := parseFlags([]string{"-live-rate", "100"}, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.live != nil {
		t.Fatalf("live config built without -live: %+v", cfg.live)
	}
}

// TestRunLiveEndToEnd drives the full -live CLI path on a small shape:
// tune, serve a saturating load with a mid-run fault storm, and report
// conserved accounting, breaker activity and the replay oracle.
func TestRunLiveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes a mapping space and runs a scaled-time serving run")
	}
	tracePath := filepath.Join(t.TempDir(), "live.json")
	args := []string{"-n", "64", "-h", "32", "-f", "64", "-v", "4", "-ct", "8",
		"-live", "-live-requests", "600", "-live-deadline", "0.3",
		"-live-chaos", "-fault-dead", "0.1", "-fault-flip", "0.9", "-fault-seed", "7",
		"-live-trace", tracePath}
	cfg, err := parseFlags(args, new(bytes.Buffer))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("runLive: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"Live serving on UPMEM", "conservation checked", "breaker:",
		"Chaos: fault storm", "Replay oracle", "wrote live trace to " + tracePath,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("live run output missing %q:\n%s", want, got)
		}
	}

	// The exported trace is valid trace-event JSON whose accounting
	// footer is self-consistent with the printed conservation line.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if doc.OtherData["submitted"] != "600" {
		t.Fatalf("trace footer submitted = %q, want 600", doc.OtherData["submitted"])
	}
}

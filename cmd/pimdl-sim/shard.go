package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/autotuner"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/shard"
	"repro/internal/tensor"
)

// shardConfig is the validated -shard* flag set: partition the operator
// across a cluster of DIMM shards instead of one array.
type shardConfig struct {
	cfg  shard.Config
	kill []int // shard IDs marked down before the run (or killed mid-storm in -live)
}

// shardFlags registers the -shard* flags and returns a builder that
// validates them into a shardConfig (nil when -shards was not given).
func shardFlags(fs *flag.FlagSet) func() (*shardConfig, error) {
	shards := fs.Int("shards", 0, "partition the LUT across this many DIMM shards (0 = single-array mode)")
	replicas := fs.Int("shard-replicas", 1, "replicas per sub-LUT range (failover headroom)")
	hotReplicas := fs.Int("shard-hot-replicas", 0, "replica count for hot ranges (0 = same as -shard-replicas)")
	hotFrac := fs.Float64("shard-hot-frac", 0, "fraction of ranges replicated at the hot count [0,1]")
	rowBlocks := fs.Int("shard-rowblocks", 0, "row blocks to split the N rows into (0 = max replica count)")
	linkBW := fs.Float64("shard-link-bw", shard.DefaultInterconnect().BW, "cross-DIMM channel bandwidth in bytes/s")
	linkLat := fs.Float64("shard-link-lat", shard.DefaultInterconnect().Latency, "cross-DIMM per-shard message latency in seconds")
	kill := fs.String("shard-kill", "", `comma-separated shard IDs to kill, e.g. "1,3" (mid-run storm under -live, dead from the start otherwise)`)

	return func() (*shardConfig, error) {
		if *shards == 0 {
			if *kill != "" {
				return nil, fmt.Errorf("-shard-kill needs -shards")
			}
			return nil, nil
		}
		sc := &shardConfig{cfg: shard.Config{
			Shards:      *shards,
			Replicas:    *replicas,
			HotReplicas: *hotReplicas,
			HotFraction: *hotFrac,
			RowBlocks:   *rowBlocks,
			Link:        shard.Interconnect{Latency: *linkLat, BW: *linkBW},
		}}
		if err := sc.cfg.Validate(); err != nil {
			return nil, err
		}
		if *kill != "" {
			for _, part := range strings.Split(*kill, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("-shard-kill: bad shard ID %q", part)
				}
				if id < 0 || id >= *shards {
					return nil, fmt.Errorf("-shard-kill: shard %d outside [0, %d)", id, *shards)
				}
				sc.kill = append(sc.kill, id)
			}
		}
		return sc, nil
	}
}

// buildCluster tunes a mapping for one cluster tile on the per-shard
// platform and places workload w across the cluster — the shared
// construction path of the offline sharded run and -live.
func buildCluster(plat *pim.Platform, w pim.Workload, sc *shardConfig) (*shard.Cluster, *autotuner.Result, error) {
	tileW, _, err := shard.TileWorkload(w, sc.cfg)
	if err != nil {
		return nil, nil, err
	}
	shardPlat, err := shard.PerShardPlatform(plat, sc.cfg.Shards)
	if err != nil {
		return nil, nil, err
	}
	tuned, err := autotuner.Tune(shardPlat, tileW, mapping.SpaceConfig{MaxDivisors: 8})
	if err != nil {
		return nil, nil, err
	}
	cl, err := shard.New(plat, w, tuned.Mapping, sc.cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	return cl, tuned, nil
}

// runSharded is the offline -shards entry point: place the operator
// across the cluster, execute it functionally with the -fault-* plan and
// any -shard-kill dead shards, verify against the single-threaded
// reference, and print the cluster timing decomposition next to the
// capacity report.
func runSharded(cfg *simConfig, out io.Writer) error {
	stdout := &printer{w: out}
	rng := rand.New(rand.NewSource(cfg.seed))
	acts := tensor.RandN(rng, 1, cfg.n, cfg.h)
	weight := tensor.RandN(rng, 1, cfg.f, cfg.h)
	plat := cfg.platform
	sc := cfg.shard

	stdout.printf("Converting %dx%d linear layer to LUT-NN (V=%d, CT=%d)...\n", cfg.f, cfg.h, cfg.v, cfg.ct)
	layer, err := lutnn.Convert(weight, nil, acts, lutnn.Params{V: cfg.v, CT: cfg.ct}, cfg.seed)
	if err != nil {
		return err
	}

	w := pim.Workload{N: cfg.n, CB: cfg.h / cfg.v, CT: cfg.ct, F: cfg.f, ElemBytes: 4}
	cl, tuned, err := buildCluster(plat, w, sc)
	if err != nil {
		return err
	}
	stdout.printf("Cluster: %d shards of %s, %d row blocks -> %d-tile grid (tile %dx%d)\n",
		sc.cfg.Shards, cl.Plat.Name, cl.RowBlocks(), cl.RowBlocks()*sc.cfg.Shards, cl.Tile.N, cl.Tile.F)
	stdout.printf("Auto-tuned tile mapping: %v (%d PEs/shard, %d candidates)\n",
		tuned.Mapping, tuned.Mapping.PEs(cl.Tile), tuned.Evaluated)
	for _, rg := range cl.P.Ranges {
		hot := ""
		if rg.Hot {
			hot = " (hot)"
		}
		stdout.printf("  LUT range [%4d, %4d) on shards %v%s\n", rg.Lo, rg.Hi, rg.Replicas, hot)
	}

	st := shard.NewState(sc.cfg.Shards)
	for _, id := range sc.kill {
		st.SetDown(id, true)
	}
	if len(sc.kill) > 0 {
		stdout.printf("Dead shards: %v\n", sc.kill)
	}

	idx := layer.Codebooks.Search(acts)
	res, err := cl.ExecuteLUT(idx, layer.Table, cfg.faults, st)
	if errors.Is(err, shard.ErrAllReplicasLost) {
		stdout.printf("\nIrrecoverable: %v\n", err)
		stdout.printf("(the engine's host-GEMM fallback fires here; revive a replica or raise -shard-replicas)\n")
		if stdout.err != nil {
			return stdout.err
		}
		return err
	}
	if err != nil {
		return err
	}

	ref := layer.Table.Lookup(idx, cfg.n)
	exact := lutnn.ForwardExact(acts, weight, nil)
	stdout.printf("\nFunctional check:\n")
	stdout.printf("  cluster vs reference lookup: max |diff| = %.3g (must be ~0 after recovery)\n",
		tensor.MaxAbsDiff(res.Output, ref))
	stdout.printf("  LUT-NN vs exact GEMM:        rel. error = %.3f (centroid approximation)\n",
		tensor.RelativeError(res.Output, exact))

	rp, ct := res.Route, res.Timing
	stdout.printf("\nRouting: %d/%d shards live | %d tiles | %d failovers | %d replica hits\n",
		rp.LiveShards, sc.cfg.Shards, len(rp.Tiles), rp.Failovers, rp.ReplicaHits)
	for _, stg := range ct.PerShard {
		stdout.printf("  shard %d: %-8v %2d tiles | busy %.3g s\n", stg.Shard, stg.Health, stg.Tiles, stg.Busy)
	}
	stdout.printf("Cross-DIMM: broadcast %.3g s | gather %.3g s\n", ct.Broadcast, ct.Gather)
	stdout.printf("Makespan: %.4g s (steady-state %.4g s with bank-resident sub-LUTs)\n",
		ct.Makespan, ct.SteadyMakespan)

	cr := ct.Capacity
	stdout.printf("\nCapacity: %d/%d PEs live (%.0f%%) | %d degraded ranges | min live replicas %d\n",
		cr.LivePE, cr.TotalPE, 100*cr.Fraction, cr.DegradedRanges, cr.MinLiveReplicas)
	if cr.MinLiveReplicas == 1 {
		stdout.printf("  (one more shard loss on the thin range turns the cluster irrecoverable)\n")
	}

	if rec := res.Recovery; rec != nil {
		stdout.printf("\nFault recovery (plan seed %d, per-shard derived seeds):\n", cfg.faults.Seed)
		stdout.printf("  dead PEs (across shards): %d | tiles re-dispatched: %d\n", rec.DeadPEs, rec.Redispatched)
		stdout.printf("  DMA retries: %d | residual corrupted elements: %d\n", rec.Retries, rec.ResidualCorrupt)
		stdout.printf("  worst straggler slowdown: %.2fx\n", rec.WorstSlowdown)
	}

	if cfg.metricsPath != "" {
		if err := metrics.Default().WriteFile(cfg.metricsPath); err != nil {
			return err
		}
		stdout.printf("wrote metrics snapshot to %s\n", cfg.metricsPath)
	}
	return stdout.err
}

// Command pimdl-bench reproduces the paper's tables and figures.
//
// Usage:
//
//	pimdl-bench -exp fig10          # one experiment
//	pimdl-bench -exp all            # everything
//	pimdl-bench -exp table4 -quick  # reduced effort (for smoke tests)
//
// Experiment ids match the paper: fig3 fig4 table4 table5 fig10 fig11
// fig12 fig13 fig14 fig15.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), ", ")+")")
	quick := flag.Bool("quick", false, "reduced-effort accuracy experiments")
	flag.Parse()

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	} else {
		// fig14 and fig15 share one driver; drop the duplicate.
		var filtered []string
		for _, n := range names {
			if n != "fig15" {
				filtered = append(filtered, n)
			}
		}
		names = filtered
	}

	for _, name := range names {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := experiments.Run(name, os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}
}

// Command pimdl-bench reproduces the paper's tables and figures and
// doubles as the benchmark-regression harness.
//
// Usage:
//
//	pimdl-bench -exp fig10                  # one experiment
//	pimdl-bench -exp all                    # everything
//	pimdl-bench -exp table4 -quick          # reduced effort (for smoke tests)
//	pimdl-bench -exp fig11 -json            # also write BENCH_<date>.json
//	pimdl-bench -compare old.json new.json  # diff two reports; exit 1 on
//	                                        # any metric >10% slower
//	pimdl-bench -exp none -json -decode -decode-min-speedup 3
//	                                        # decode throughput (naive vs
//	                                        # KV-cached vs batched); fail
//	                                        # below 3x cached speedup
//	pimdl-bench -compare -decode-only old.json new.json
//	                                        # gate only decode speedups
//	                                        # (machine-independent ratios)
//
// Experiment ids match the paper: fig3 fig4 table4 table5 fig10 fig11
// fig12 fig13 fig14 fig15.
//
// -json reports carry per-experiment wall time plus steady-state kernel
// throughput (CCS, FP32/INT8 lookup, fused forward); see internal/bench
// for the schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/prof"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, 'all', or 'none' (kernels only with -json) ("+strings.Join(experiments.Names(), ", ")+")")
	quick := flag.Bool("quick", false, "reduced-effort accuracy experiments")
	jsonOut := flag.Bool("json", false, "write wall times and kernel throughput to BENCH_<date>.json")
	compare := flag.Bool("compare", false, "compare two report files: pimdl-bench -compare old.json new.json")
	outPath := flag.String("o", "", "output path for -json (default BENCH_<date>.json)")
	tolerance := flag.Float64("tolerance", bench.DefaultTolerance,
		"-compare regression threshold as a fraction (0.02 = flag anything >2% slower)")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot to this file after the run (.prom/.txt for Prometheus text, anything else for JSON)")
	pprofDir := flag.String("pprof", "", "write cpu.pprof and heap.pprof into this directory")
	overheadBaseline := flag.String("overhead-baseline", "",
		"with -json: time each kernel with metrics recording disabled and enabled, the calls interleaved in this one process so machine drift cancels; the disabled-mode report is written here and the enabled-mode report to -o (feeds the metrics-overhead CI guard)")
	decode := flag.Bool("decode", false,
		"with -json: measure autoregressive decode throughput (naive Generate, KV-cached, batched) into the report's decode set")
	decodeMinSpeedup := flag.Float64("decode-min-speedup", 0,
		"with -decode: fail unless the KV-cached path's tokens/sec speedup over naive Generate reaches this factor (0 disables)")
	decodeOnly := flag.Bool("decode-only", false,
		"with -compare: gate only the decode speedups (machine-independent ratios), ignoring kernel and experiment wall times")
	flag.Parse()

	if *tolerance <= 0 {
		fmt.Fprintln(os.Stderr, "pimdl-bench: -tolerance must be positive")
		os.Exit(2)
	}
	if *compare {
		os.Exit(runCompare(flag.Args(), *tolerance, *decodeOnly))
	}
	if *metricsPath != "" {
		if err := metrics.ValidateOutputPath(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-bench: -metrics:", err)
			os.Exit(2)
		}
	}
	if *pprofDir != "" {
		stop, err := prof.Start(*pprofDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-bench:", err)
			os.Exit(2)
		}
		// The success path runs to the end of main, so a plain defer never
		// fires after the os.Exit error paths — those already failed; the
		// truncated profile is the least of the run's problems.
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "pimdl-bench:", err)
			}
		}()
	}

	names := experiments.Names()
	switch *exp {
	case "none":
		// Kernel measurement only (with -json): the metrics-overhead CI
		// guard compares steady-state kernel times, where sub-millisecond
		// experiment wall clocks would only add noise.
		names = nil
	case "all":
		// fig14 and fig15 share one driver; drop the duplicate.
		var filtered []string
		for _, n := range names {
			if n != "fig15" {
				filtered = append(filtered, n)
			}
		}
		names = filtered
	default:
		names = strings.Split(*exp, ",")
	}

	report := &bench.Report{
		Schema:     bench.Schema,
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}

	for _, name := range names {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := experiments.Run(name, os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		fmt.Printf("(%.1fs)\n\n", secs)
		report.Experiments = append(report.Experiments,
			bench.ExperimentResult{Name: name, WallSeconds: secs})
	}

	if *jsonOut {
		fmt.Println("=== kernels ===")
		var (
			kernels  []bench.KernelResult
			baseline *bench.Report
			err      error
		)
		if *overheadBaseline != "" {
			// Overhead-guard mode: the same process measures each kernel
			// with recording off and on, interleaved call by call, so the
			// off/on ratio is immune to the run-to-run drift that makes
			// two sequential pimdl-bench processes incomparable on noisy
			// CI hosts.
			var off []bench.KernelResult
			off, kernels, err = bench.KernelsAB(*quick, func(on bool) {
				// The span layer rides the same <=2% gate as metrics: a
				// kernel that would regress with tracing enabled fails the
				// overhead guard, not a production run.
				metrics.SetEnabled(on)
				obs.SetEnabled(on)
			})
			if err == nil {
				baseline = &bench.Report{
					Schema:     report.Schema,
					Date:       report.Date,
					GoMaxProcs: report.GoMaxProcs,
					Quick:      report.Quick,
					Kernels:    off,
				}
			}
		} else {
			kernels, err = bench.Kernels(*quick)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: kernels: %v\n", err)
			os.Exit(1)
		}
		report.Kernels = kernels
		if *decode {
			fmt.Println("\n=== decode ===")
			dec, err := bench.Decode(*quick)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pimdl-bench: decode: %v\n", err)
				os.Exit(1)
			}
			report.Decode = dec
			for _, d := range dec {
				fmt.Printf("%-20s %12.0f ns/token %10.1f tok/s %8.2fx\n",
					d.Name, d.NsPerToken, d.TokensPerSec, d.Speedup)
			}
			if *decodeMinSpeedup > 0 {
				if err := checkDecodeSpeedup(dec, *decodeMinSpeedup); err != nil {
					fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		report.Metrics = metrics.Default().Flatten()
		for _, k := range kernels {
			if k.MBPerSec > 0 {
				fmt.Printf("%-20s %12.0f ns/op %10.1f MB/s\n", k.Name, k.NsPerOp, k.MBPerSec)
			} else {
				fmt.Printf("%-20s %12.0f ns/op\n", k.Name, k.NsPerOp)
			}
		}
		path := *outPath
		if path == "" {
			path = "BENCH_" + report.Date + ".json"
		}
		if err := writeReport(report, path); err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", path)
		if baseline != nil {
			if err := writeReport(baseline, *overheadBaseline); err != nil {
				fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (metrics-disabled baseline)\n", *overheadBaseline)
		}
	}
	if *metricsPath != "" {
		if err := metrics.Default().WriteFile(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsPath)
	}
}

// writeReport writes r as indented JSON to path.
func writeReport(r *bench.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// checkDecodeSpeedup enforces the -decode-min-speedup floor on the
// KV-cached batch-1 path.
func checkDecodeSpeedup(dec []bench.DecodeResult, min float64) error {
	for _, d := range dec {
		if d.Name == "decode_cached" {
			if d.Speedup < min {
				return fmt.Errorf("decode_cached speedup %.2fx below required %.2fx", d.Speedup, min)
			}
			return nil
		}
	}
	return fmt.Errorf("decode_cached missing from decode results")
}

// runCompare diffs two -json reports; returns the process exit code.
func runCompare(paths []string, tolerance float64, decodeOnly bool) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "pimdl-bench: -compare wants exactly two report files: old.json new.json")
		return 2
	}
	base, err := bench.Load(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
		return 2
	}
	cur, err := bench.Load(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
		return 2
	}
	var regs []bench.Regression
	if decodeOnly {
		// Decode-only mode gates the within-report speedup ratios, which
		// survive a baseline committed on a different machine; absolute
		// kernel and experiment times are skipped entirely.
		fmt.Print(bench.FormatDecodeComparison(base, cur, tolerance))
		regs = bench.CompareDecode(base, cur, tolerance)
	} else {
		fmt.Print(bench.FormatComparison(base, cur, tolerance))
		regs = bench.Compare(base, cur, tolerance)
	}
	if len(regs) == 0 {
		fmt.Printf("\nno regressions beyond %.0f%%\n", tolerance*100)
		return 0
	}
	fmt.Printf("\n%d regression(s) beyond %.0f%%:\n", len(regs), tolerance*100)
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}

// Command pimdl-bench reproduces the paper's tables and figures and
// doubles as the benchmark-regression harness.
//
// Usage:
//
//	pimdl-bench -exp fig10                  # one experiment
//	pimdl-bench -exp all                    # everything
//	pimdl-bench -exp table4 -quick          # reduced effort (for smoke tests)
//	pimdl-bench -exp fig11 -json            # also write BENCH_<date>.json
//	pimdl-bench -compare old.json new.json  # diff two reports; exit 1 on
//	                                        # any metric >10% slower
//
// Experiment ids match the paper: fig3 fig4 table4 table5 fig10 fig11
// fig12 fig13 fig14 fig15.
//
// -json reports carry per-experiment wall time plus steady-state kernel
// throughput (CCS, FP32/INT8 lookup, fused forward); see internal/bench
// for the schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all' ("+strings.Join(experiments.Names(), ", ")+")")
	quick := flag.Bool("quick", false, "reduced-effort accuracy experiments")
	jsonOut := flag.Bool("json", false, "write wall times and kernel throughput to BENCH_<date>.json")
	compare := flag.Bool("compare", false, "compare two report files: pimdl-bench -compare old.json new.json")
	outPath := flag.String("o", "", "output path for -json (default BENCH_<date>.json)")
	flag.Parse()

	if *compare {
		os.Exit(runCompare(flag.Args()))
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	} else {
		// fig14 and fig15 share one driver; drop the duplicate.
		var filtered []string
		for _, n := range names {
			if n != "fig15" {
				filtered = append(filtered, n)
			}
		}
		names = filtered
	}

	report := &bench.Report{
		Schema:     bench.Schema,
		Date:       time.Now().Format("2006-01-02"),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}

	for _, name := range names {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := experiments.Run(name, os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		fmt.Printf("(%.1fs)\n\n", secs)
		report.Experiments = append(report.Experiments,
			bench.ExperimentResult{Name: name, WallSeconds: secs})
	}

	if *jsonOut {
		fmt.Println("=== kernels ===")
		kernels, err := bench.Kernels(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: kernels: %v\n", err)
			os.Exit(1)
		}
		report.Kernels = kernels
		for _, k := range kernels {
			if k.MBPerSec > 0 {
				fmt.Printf("%-20s %12.0f ns/op %10.1f MB/s\n", k.Name, k.NsPerOp, k.MBPerSec)
			} else {
				fmt.Printf("%-20s %12.0f ns/op\n", k.Name, k.NsPerOp)
			}
		}
		path := *outPath
		if path == "" {
			path = "BENCH_" + report.Date + ".json"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", path)
	}
}

// runCompare diffs two -json reports; returns the process exit code.
func runCompare(paths []string) int {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "pimdl-bench: -compare wants exactly two report files: old.json new.json")
		return 2
	}
	base, err := bench.Load(paths[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
		return 2
	}
	cur, err := bench.Load(paths[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimdl-bench: %v\n", err)
		return 2
	}
	fmt.Print(bench.FormatComparison(base, cur, bench.DefaultTolerance))
	regs := bench.Compare(base, cur, bench.DefaultTolerance)
	if len(regs) == 0 {
		fmt.Printf("\nno regressions beyond %.0f%%\n", bench.DefaultTolerance*100)
		return 0
	}
	fmt.Printf("\n%d regression(s) beyond %.0f%%:\n", len(regs), bench.DefaultTolerance*100)
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}

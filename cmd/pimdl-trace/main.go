// Command pimdl-trace runs a seeded chaos scenario through the
// deterministic live-serving runner with request-scoped tracing on and
// emits the tail-latency attribution report: percentile bands of the
// served-latency distribution decomposed into per-phase blame (queue /
// batch / pim / broadcast / gather / retry / backoff / host / other),
// plus a top-K slowest-requests table.
//
// The run is pure virtual time (no goroutines, no wall clock), so a
// fixed seed reproduces the report byte for byte — which is what makes
// it CI-assertable. Before printing anything the command verifies the
// two invariants the tracing layer promises:
//
//   - attribution: every kept trace's per-phase seconds sum to the
//     recorder's own end-to-end latency within 1e-9;
//   - exemplar resolution: every trace ID stamped onto a histogram
//     bucket resolves against the tracer's ring.
//
// A violation exits nonzero — make trace-smoke runs this under -race.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/serving"
	"repro/internal/serving/live"
	"repro/internal/shard"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-trace:", err)
		os.Exit(1)
	}
}

// output is the CLI's JSON envelope: the run summary, the verified
// invariants, and the attribution report.
type output struct {
	Summary live.Summary `json:"summary"`
	Checks  checks       `json:"checks"`
	Report  *obs.Report  `json:"report"`
}

type checks struct {
	RecordsReconciled int `json:"records_reconciled"`
	ExemplarsResolved int `json:"exemplars_resolved"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pimdl-trace", flag.ContinueOnError)
	requests := fs.Int("requests", 3000, "number of requests to generate")
	rate := fs.Float64("rate", 500, "open-loop arrival rate in req/s")
	seed := fs.Int64("seed", 17, "load-generator seed (also salts the trace IDs)")
	burst := fs.Float64("burst", 2, "MMPP burst factor over the base rate (0 = plain Poisson)")
	zipf := fs.Float64("zipf", 1.4, "Zipf exponent of the request-kind mix (> 1; 0 = single kind)")
	batch := fs.Int("batch", 16, "continuous-batching batch budget")
	wait := fs.Float64("wait", 0.01, "max wait before dispatching a partial batch (virtual seconds)")
	deadline := fs.Float64("deadline", 1.0, "per-request deadline in virtual seconds (0 = none)")
	retries := fs.Int("retries", 2, "retry budget per batch")
	backoff := fs.Float64("backoff", 0.01, "base retry backoff in virtual seconds (doubles per attempt)")
	queue := fs.Int("queue", 1024, "admission queue capacity")
	shed := fs.String("shed", "reject", "load-shedding policy: reject, block, degrade")
	degradeWorkers := fs.Int("degrade-workers", 2, "host workers of the degrade lane (shed=degrade)")
	brWindow := fs.Int("breaker-window", 6, "circuit breaker outcome window (0 disables the breaker)")
	brTrip := fs.Float64("breaker-trip", 0.5, "circuit breaker failure-ratio trip threshold")
	brCooldown := fs.Float64("breaker-cooldown", 0.4, "circuit breaker cooldown before probing (virtual seconds)")
	chaosAt := fs.Float64("chaos-at", 2, "fault-storm start in virtual seconds (0 disables chaos)")
	chaosHeal := fs.Float64("chaos-heal", 3.5, "fault-storm heal time in virtual seconds")
	chaosDead := fs.Float64("chaos-dead", 0.1, "storm: fraction of PEs dead")
	chaosFlip := fs.Float64("chaos-flip", 0.9, "storm: per-transfer bit-flip rate")
	chaosStraggler := fs.Float64("chaos-straggler", 0.5, "storm: straggler slowdown spread")
	chaosSeed := fs.Int64("chaos-seed", 99, "storm fault-plan seed")
	shards := fs.Int("shards", 0, "DIMM shards of the cluster backend (0 = single PIM array)")
	replicas := fs.Int("replicas", 2, "replicas per sub-LUT range (shards > 0)")
	sample := fs.Float64("sample", 1, "keep probability for non-critical traces in [0,1]")
	ring := fs.Int("ring", 8192, "completed-trace ring capacity")
	top := fs.Int("top", 10, "rows of the slowest-requests table")
	jsonPath := fs.String("json", "", "write the report envelope as JSON to this file (\"-\" = stdout)")
	tracePath := fs.String("trace", "", "write the run as Chrome trace-event JSON (with the request-spans track)")
	metricsPath := fs.String("metrics", "", "write the metrics registry snapshot as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg := live.Config{
		Policy:   serving.Policy{MaxBatch: *batch, MaxWait: *wait},
		QueueCap: *queue,
		Robust:   serving.Robustness{Deadline: *deadline, MaxRetries: *retries, Backoff: *backoff},
	}
	switch *shed {
	case "reject":
		cfg.Shed = live.ShedReject
	case "block":
		cfg.Shed = live.ShedBlock
	case "degrade":
		cfg.Shed = live.ShedDegrade
		cfg.DegradeWorkers = *degradeWorkers
	default:
		return fmt.Errorf("-shed: unknown policy %q (want reject, block or degrade)", *shed)
	}
	if *brWindow > 0 {
		cfg.Breaker = live.BreakerConfig{
			Window:     *brWindow,
			MinSamples: (*brWindow + 1) / 2,
			TripRatio:  *brTrip,
			Cooldown:   *brCooldown,
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	spec := live.LoadSpec{Rate: *rate, Requests: *requests, Seed: *seed}
	if *burst > 0 {
		spec.Burst = &live.MMPP{BurstFactor: *burst, MeanCalm: 2.0, MeanBurst: 0.5}
	}
	if *zipf > 0 {
		spec.Mix = live.ZipfMix{S: *zipf, Kinds: 4}
	}
	arrivals, err := spec.Generate()
	if err != nil {
		return err
	}

	var sched live.ChaosSchedule
	if *chaosAt > 0 {
		sched = live.ChaosSchedule{
			{At: *chaosAt, Plan: pim.FaultPlan{Seed: *chaosSeed, DeadPEFraction: *chaosDead,
				FlipRate: *chaosFlip, StragglerSpread: *chaosStraggler}, Note: "storm"},
		}
		if *chaosHeal > *chaosAt {
			sched = append(sched, live.ChaosEvent{At: *chaosHeal, Note: "heal"})
		}
	}

	pimBE, hostBE, err := buildBackends(*shards, *replicas)
	if err != nil {
		return err
	}
	tracer, err := obs.NewTracer(obs.Config{Capacity: *ring, SampleRate: *sample, Seed: *seed})
	if err != nil {
		return err
	}

	// Snapshot the exemplar slots first: the registry is process-global
	// and latest-wins, so only slots this run writes are attributable to
	// this run's tracer.
	before, err := registryExemplars()
	if err != nil {
		return err
	}
	res, err := live.RunDeterministic(cfg, pimBE, hostBE, arrivals, sched, tracer)
	if err != nil {
		return err
	}
	if err := res.Summary.Conservation(); err != nil {
		return err
	}

	ck, err := verify(res, tracer, before)
	if err != nil {
		return err
	}
	rep, err := obs.BuildReport(tracer, nil, *top)
	if err != nil {
		return err
	}
	out := output{Summary: res.Summary, Checks: ck, Report: rep}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, out, stdout); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := trace.ExportLive(f, res.Recorder, tracer); err != nil {
			_ = f.Close() // the export error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *metricsPath != "" {
		if err := metrics.Default().WriteFile(*metricsPath); err != nil {
			return err
		}
	}
	if *jsonPath != "-" {
		return printReport(stdout, out)
	}
	return nil
}

// buildBackends constructs the scenario's backends: the reference LUT
// operator on the UPMEM preset (the shape the live-serving tests pin),
// either as a single fault-injected array or placed across a replicated
// DIMM cluster, plus the host fallback lane.
func buildBackends(shards, replicas int) (live.Backend, live.Backend, error) {
	plat := pim.UPMEM()
	w := pim.Workload{N: 32, CB: 16, CT: 8, F: 32, ElemBytes: 2}
	m := pim.Mapping{
		NsTile: 8, FsTile: 8,
		NmTile: 8, FmTile: 8, CBmTile: 4,
		Traversal: [3]pim.Loop{pim.LoopN, pim.LoopF, pim.LoopCB},
		Scheme:    pim.CoarseLoad, CBLoadTile: 1, FLoadTile: 8,
	}
	pimModel := func(b int) float64 { return 0.02 + 0.002*float64(b) }
	hostModel := func(b int) float64 { return 0.04 + 0.004*float64(b) }

	hostBE, err := live.NewHostBackend(hostModel)
	if err != nil {
		return nil, nil, err
	}
	if shards <= 0 {
		pimBE, err := live.NewPIMBackend(plat, w, m, pimModel)
		if err != nil {
			return nil, nil, err
		}
		return pimBE, hostBE, nil
	}
	// Cluster: replicate row blocks so any single shard can die without
	// losing a sub-LUT range; scale N so every replica owns a block.
	w.N *= replicas
	c, err := shard.New(plat, w, m, shard.Config{Shards: shards, Replicas: replicas}, nil)
	if err != nil {
		return nil, nil, err
	}
	pimBE, err := live.NewShardedPIMBackend(c, pimModel)
	if err != nil {
		return nil, nil, err
	}
	return pimBE, hostBE, nil
}

// verify asserts the attribution and exemplar-resolution invariants
// over the finished run.
func verify(res *live.ChaosResult, tracer *obs.Tracer, before map[string]map[string]uint64) (checks, error) {
	var ck checks
	for _, rec := range res.Recorder.Records() {
		if rec.TraceID == 0 {
			continue // dropped by sampling or ring eviction
		}
		tr := tracer.Lookup(rec.TraceID)
		if tr == nil {
			return ck, fmt.Errorf("record %d: trace %016x escaped the ring", rec.ID, rec.TraceID)
		}
		if err := obs.Reconcile(tr); err != nil {
			return ck, err
		}
		if lat := rec.Latency(); lat > 0 {
			var sum float64
			for _, secs := range obs.Breakdown(tr) {
				sum += secs
			}
			if d := math.Abs(sum - lat); d > obs.ReconcileTolerance {
				return ck, fmt.Errorf("record %d: attribution %.12g != recorded latency %.12g (|Δ|=%.3g)",
					rec.ID, sum, lat, d)
			}
		}
		ck.RecordsReconciled++
	}
	if ck.RecordsReconciled == 0 {
		return ck, fmt.Errorf("no records carried a resolvable trace — tracing was off or everything was dropped")
	}
	n, err := resolveExemplars(tracer, before)
	if err != nil {
		return ck, err
	}
	ck.ExemplarsResolved = n
	return ck, nil
}

// registryExemplars reads every histogram's exemplar slots out of the
// default registry's JSON exposition (the registry exposes exemplars
// only through it), keyed metric name → bucket → trace ID.
func registryExemplars() (map[string]map[string]uint64, error) {
	out := map[string]map[string]uint64{}
	if !metrics.Enabled() {
		return out, nil
	}
	var buf bytes.Buffer
	if err := metrics.Default().WriteJSON(&buf); err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		return nil, err
	}
	for name, v := range doc {
		hist, ok := v.(map[string]any)
		if !ok {
			continue
		}
		ex, ok := hist["exemplars"].(map[string]any)
		if !ok {
			continue
		}
		ids := map[string]uint64{}
		for bucket, raw := range ex {
			s, ok := raw.(string)
			if !ok {
				return nil, fmt.Errorf("%s: exemplar %v is not a string", name, raw)
			}
			id, err := strconv.ParseUint(s, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: exemplar %q: %v", name, s, err)
			}
			ids[bucket] = id
		}
		out[name] = ids
	}
	return out, nil
}

// resolveExemplars resolves every exemplar the run wrote (slots changed
// since the pre-run snapshot) against the tracer's ring.
func resolveExemplars(tracer *obs.Tracer, before map[string]map[string]uint64) (int, error) {
	after, err := registryExemplars()
	if err != nil {
		return 0, err
	}
	resolved := 0
	for name, ids := range after {
		for bucket, id := range ids {
			if tracer.Lookup(id) != nil {
				resolved++
				continue
			}
			// A slot this run wrote must resolve; an unchanged slot may
			// hold a stale ID from an earlier run in the same process.
			if before[name][bucket] != id {
				return resolved, fmt.Errorf("%s bucket %s: exemplar %016x does not resolve", name, bucket, id)
			}
		}
	}
	return resolved, nil
}

// writeJSON writes the envelope deterministically: encoding/json emits
// struct fields in declaration order and the report's slices are sorted
// by construction, so a fixed seed yields identical bytes.
func writeJSON(path string, out output, stdout io.Writer) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// printReport renders the human-readable tables. The printer latches
// the first write error, which run reports once at the end.
func printReport(w io.Writer, out output) error {
	p := &printer{w: w}
	s := out.Summary
	p.printf("run: %d submitted / %d served / %d degraded / %d shed / %d timeouts / %d failures\n",
		s.Submitted, s.Served, s.Degraded, s.ShedQueue, s.Timeouts, s.Failures)
	p.printf("     %d batches, %d retries, %d host-served; %d traces reconciled, %d exemplars resolved\n",
		s.Batches, s.Retries, s.HostServed, out.Checks.RecordsReconciled, out.Checks.ExemplarsResolved)

	p.printf("\n%-10s %9s %12s %12s  per-phase blame (mean seconds)\n",
		"band", "requests", "mean", "max")
	for _, b := range out.Report.Bands {
		p.printf("%-10s %9d %12.6f %12.6f  %s\n",
			b.Band, b.Requests, b.MeanLatency, b.MaxLatency, phaseLine(b.Phases))
	}

	if len(out.Report.Slowest) > 0 {
		p.printf("\ntop %d slowest:\n", len(out.Report.Slowest))
		p.printf("%-16s %8s %-9s %10s %10s %8s %-6s  blame\n",
			"trace", "req", "outcome", "arrival", "latency", "attempts", "via")
		for _, r := range out.Report.Slowest {
			p.printf("%-16s %8d %-9s %10.4f %10.6f %8d %-6s  %s\n",
				r.TraceID, r.ReqID, r.Outcome, r.Arrival, r.Latency, r.Attempts, r.Backend,
				phaseLine(r.Phases))
		}
	}
	return p.err
}

// printer latches the first write error so printReport can report it
// once instead of checking every Fprintf.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// phaseLine renders a phase decomposition as "phase=secs" pairs sorted
// by descending blame.
func phaseLine(phases []obs.PhaseSeconds) string {
	sorted := append([]obs.PhaseSeconds(nil), phases...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Seconds > sorted[j].Seconds })
	line := ""
	for _, p := range sorted {
		if p.Seconds <= 0 {
			continue
		}
		if line != "" {
			line += " "
		}
		line += fmt.Sprintf("%s=%.4f", p.Phase, p.Seconds)
	}
	return line
}

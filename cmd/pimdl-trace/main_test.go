package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// TestRunJSONDeterministic: the acceptance property — a fixed seed
// yields byte-identical report JSON, with every record reconciled.
func TestRunJSONDeterministic(t *testing.T) {
	once := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-requests", "400", "-top", "3", "-json", "-"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := once(), once()
	if a != b {
		t.Fatal("identical seeds produced different report JSON")
	}
	var doc struct {
		Checks struct {
			RecordsReconciled int `json:"records_reconciled"`
			ExemplarsResolved int `json:"exemplars_resolved"`
		} `json:"checks"`
		Report struct {
			Bands   []map[string]any `json:"bands"`
			Slowest []map[string]any `json:"slowest"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Checks.RecordsReconciled != 400 {
		t.Fatalf("reconciled %d records, want every one of 400", doc.Checks.RecordsReconciled)
	}
	if doc.Checks.ExemplarsResolved == 0 {
		t.Fatal("no exemplars resolved")
	}
	if len(doc.Report.Bands) != 4 || len(doc.Report.Slowest) != 3 {
		t.Fatalf("report shape: %d bands, %d slowest", len(doc.Report.Bands), len(doc.Report.Slowest))
	}
}

// TestRunShardedBackend: -shards switches to the cluster backend and
// the invariants still hold.
func TestRunShardedBackend(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-requests", "200", "-shards", "4", "-json", "-"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Summary struct {
			Served int
		} `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Summary.Served == 0 {
		t.Fatal("sharded scenario served nothing")
	}
}

// TestRunRejectsBadFlags: invalid configurations fail before running.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-shed", "bogus"},
		{"-sample", "2"},
		{"-ring", "0"},
		{"-batch", "0"},
		{"positional"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadJSONSnapshot(t *testing.T) {
	path := writeTemp(t, "snap.json", `{
		"pimdl_pim_executions_total": 3,
		"pimdl_pim_time_seconds_total": {"kernel_xfer": 0.5, "host_index": 0.1},
		"pimdl_serving_latency_seconds": {"count": 10, "sum": 1.5, "p50": 0.1}
	}`)
	keys, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if keys["pimdl_pim_executions_total"] != 3 {
		t.Fatalf("executions = %g", keys["pimdl_pim_executions_total"])
	}
	if keys[`pimdl_pim_time_seconds_total{key="kernel_xfer"}`] != 0.5 {
		t.Fatalf("family child missing: %v", keys)
	}
	if len(missingSeries(keys, []string{"pimdl_pim_time_seconds_total", "pimdl_serving_latency_seconds"})) != 0 {
		t.Fatal("family/histogram names should match via children")
	}
	missing := missingSeries(keys, []string{"pimdl_engine_estimates_total"})
	if len(missing) != 1 {
		t.Fatalf("missing = %v", missing)
	}
}

func TestLoadPrometheusSnapshot(t *testing.T) {
	path := writeTemp(t, "snap.prom", `# HELP pimdl_pim_executions_total functional executions
# TYPE pimdl_pim_executions_total counter
pimdl_pim_executions_total 3
pimdl_pim_time_seconds_total{phase="kernel_xfer"} 0.5
pimdl_serving_latency_seconds_count 10
`)
	keys, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if keys["pimdl_pim_executions_total"] != 3 {
		t.Fatalf("executions = %g", keys["pimdl_pim_executions_total"])
	}
	if keys[`pimdl_pim_time_seconds_total{phase="kernel_xfer"}`] != 0.5 {
		t.Fatalf("labeled sample missing: %v", keys)
	}
	// Requiring the bare histogram name matches the _count sample.
	if len(missingSeries(keys, []string{"pimdl_serving_latency_seconds", "pimdl_pim_time_seconds_total"})) != 0 {
		t.Fatal("prefix matching failed")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := loadSnapshot(writeTemp(t, "bad.json", "not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := loadSnapshot(writeTemp(t, "bad.prom", "name_without_value\n")); err == nil {
		t.Fatal("accepted malformed Prometheus text")
	}
	if _, err := loadSnapshot(writeTemp(t, "empty.json", "{}")); err == nil {
		t.Fatal("accepted empty snapshot")
	}
}

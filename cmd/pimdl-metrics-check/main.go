// Command pimdl-metrics-check validates a metrics snapshot file for the
// CI metrics-smoke step: the snapshot must parse (JSON or Prometheus
// text, detected by extension the same way the writers pick the format)
// and contain every series named on the command line.
//
//	pimdl-metrics-check -require pimdl_pim_executions_total \
//	    -require 'pimdl_pim_time_seconds_total{phase="kernel_reduce"}' snap.json
//
// A required name matches either a flattened series key exactly or any
// labeled series of that name (so requiring a family name passes when at
// least one child exists). Exit codes: 0 ok, 1 validation failure,
// 2 usage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// requiredList collects repeated -require flags.
type requiredList []string

func (r *requiredList) String() string { return strings.Join(*r, ",") }
func (r *requiredList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var required requiredList
	flag.Var(&required, "require", "series that must be present (repeatable; family names match any child)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "pimdl-metrics-check: want exactly one snapshot file")
		os.Exit(2)
	}
	keys, err := loadSnapshot(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-metrics-check:", err)
		os.Exit(1)
	}
	missing := missingSeries(keys, required)
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "pimdl-metrics-check: %s is missing %d required series:\n", flag.Arg(0), len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: %d series, all %d required present\n", flag.Arg(0), len(keys), len(required))
}

// loadSnapshot parses the snapshot into a key -> value map. JSON
// snapshots flatten families ({"name": {"label": v}}) and histograms
// ({"name": {"count": ...}}) into name and name{key="sub"} entries;
// Prometheus text keeps its native name{label} sample keys.
func loadSnapshot(path string) (map[string]float64, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".prom", ".txt":
		return loadPrometheus(path)
	default:
		return loadJSON(path)
	}
}

func loadJSON(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	out := map[string]float64{}
	for name, v := range doc {
		switch val := v.(type) {
		case float64:
			out[name] = val
		case map[string]any:
			// A family (label -> value) or a histogram summary object;
			// either way expose the sub-keys and the bare name.
			out[name] = 0
			for sub, sv := range val {
				if f, ok := sv.(float64); ok {
					out[name+`{key="`+sub+`"}`] = f
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no series", path)
	}
	return out, nil
}

func loadPrometheus(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only handle
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("%s: malformed sample line %q", path, line)
		}
		val, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value in %q: %w", path, line, err)
		}
		out[line[:i]] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s contains no series", path)
	}
	return out, nil
}

// missingSeries returns the required names with no matching key: an
// exact key match, or any labeled series sharing the name prefix.
func missingSeries(keys map[string]float64, required []string) []string {
	var missing []string
	for _, want := range required {
		if _, ok := keys[want]; ok {
			continue
		}
		found := false
		for k := range keys {
			if strings.HasPrefix(k, want+"{") || strings.HasPrefix(k, want+"_") {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

// Command pimdl-tune runs the PIM-DL auto-tuner (Algorithm 1) for one LUT
// operator shape and prints the chosen mapping parameters with the
// predicted and simulated timing decomposition.
//
// Usage:
//
//	pimdl-tune -platform upmem -n 32768 -h 1024 -f 4096 -v 4 -ct 16
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autotuner"
	"repro/internal/mapping"
	"repro/internal/metrics"
	"repro/internal/pim"
	"repro/internal/prof"
)

func platformByName(name string) (*pim.Platform, error) {
	switch name {
	case "upmem":
		return pim.UPMEM(), nil
	case "hbm-pim", "hbmpim":
		return pim.HBMPIM(), nil
	case "aim":
		return pim.AiM(), nil
	}
	return nil, fmt.Errorf("unknown platform %q (upmem, hbm-pim, aim)", name)
}

func main() {
	platName := flag.String("platform", "upmem", "target platform: upmem, hbm-pim, aim")
	platFile := flag.String("platform-file", "", "JSON platform description (see pim.LoadPlatform); overrides -platform")
	n := flag.Int("n", 32768, "index matrix rows (batch x seq)")
	h := flag.Int("h", 1024, "hidden (input feature) dim")
	f := flag.Int("f", 4096, "output feature dim")
	v := flag.Int("v", 4, "sub-vector length V")
	ct := flag.Int("ct", 16, "centroids per codebook CT")
	elem := flag.Int("elem", 0, "LUT element bytes (default: platform native)")
	maxDiv := flag.Int("maxdiv", 8, "divisor candidates per dimension")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot to this file after tuning (.prom/.txt for Prometheus text, anything else for JSON)")
	pprofDir := flag.String("pprof", "", "write cpu.pprof and heap.pprof into this directory (profiles the search)")
	flag.Parse()

	if *metricsPath != "" {
		if err := metrics.ValidateOutputPath(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-tune: -metrics:", err)
			os.Exit(1)
		}
	}
	var stopProf func() error
	if *pprofDir != "" {
		var err error
		stopProf, err = prof.Start(*pprofDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-tune:", err)
			os.Exit(1)
		}
	}

	var plat *pim.Platform
	var err error
	if *platFile != "" {
		f, ferr := os.Open(*platFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "pimdl-tune:", ferr)
			os.Exit(1)
		}
		plat, err = pim.LoadPlatform(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	} else {
		plat, err = platformByName(*platName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-tune:", err)
		os.Exit(1)
	}
	if *h%*v != 0 {
		fmt.Fprintf(os.Stderr, "pimdl-tune: V=%d does not divide H=%d\n", *v, *h)
		os.Exit(1)
	}
	eb := *elem
	if eb == 0 {
		eb = plat.ElemBytes
	}
	w := pim.Workload{N: *n, CB: *h / *v, CT: *ct, F: *f, ElemBytes: eb}

	res, err := autotuner.Tune(plat, w, mapping.SpaceConfig{MaxDivisors: *maxDiv})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-tune:", err)
		os.Exit(1)
	}

	fmt.Printf("Platform:  %s (%d PEs)\n", plat.Name, plat.NumPE)
	fmt.Printf("Workload:  N=%d CB=%d CT=%d F=%d (%dB elements)\n", w.N, w.CB, w.CT, w.F, w.ElemBytes)
	fmt.Printf("Evaluated: %d legal mappings\n\n", res.Evaluated)
	fmt.Printf("Best mapping: %v\n", res.Mapping)
	fmt.Printf("  PEs used:          %d\n", res.Mapping.PEs(w))
	fmt.Printf("  predicted total:   %.6g s\n", res.Predicted.Total())
	fmt.Printf("  simulated total:   %.6g s\n", res.Simulated.Total())
	fmt.Printf("  breakdown (sim):   index %.3g s | LUT send %.3g s | output %.3g s | kernel xfer %.3g s | reduce %.3g s\n",
		res.Simulated.HostIndex, res.Simulated.HostLUT, res.Simulated.HostOutput,
		res.Simulated.KernelXfer, res.Simulated.KernelRed)

	if stopProf != nil {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-tune:", err)
			os.Exit(1)
		}
	}
	if *metricsPath != "" {
		if err := metrics.Default().WriteFile(*metricsPath); err != nil {
			fmt.Fprintln(os.Stderr, "pimdl-tune:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsPath)
	}
}

// Command pimdl-convert demonstrates the LUT-NN Converter front-end
// (paper §4.2): it trains a small transformer on a synthetic task, then
// compares three deployments with every linear layer replaced —
//
//	original model (exact GEMM)
//	baseline LUT-NN (clustering only)
//	eLUT-NN (reconstruction loss + STE calibration)
//
// reproducing the accuracy ordering of Tables 4–5 end to end on one model.
//
// Usage:
//
//	pimdl-convert -kind nlp -v 8 -ct 4 -iters 400
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "nlp", "task kind: nlp or vision")
	v := flag.Int("v", 8, "sub-vector length")
	ct := flag.Int("ct", 4, "centroids per codebook")
	epochs := flag.Int("epochs", 30, "training epochs")
	iters := flag.Int("iters", 400, "eLUT-NN calibration iterations")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	var mc nn.Config
	var taskKind workload.TaskKind
	switch *kind {
	case "nlp":
		mc = workload.AccuracyModel(nn.TokenInput, "demo-nlp")
		taskKind = workload.MarkerTask
	case "vision":
		mc = workload.AccuracyModel(nn.PatchInput, "demo-vision")
		taskKind = workload.TemplateTask
	default:
		fmt.Fprintf(os.Stderr, "pimdl-convert: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	task := workload.NewTask(taskKind, mc, *seed)
	if taskKind == workload.TemplateTask {
		task.Scale, task.Noise = 0.35, 1.0
	}
	train := task.Batches(16, 8, 0)
	test := task.Batches(8, 8, 1)

	fmt.Printf("Training %s (%d layers, hidden %d) on a synthetic %s task...\n",
		mc.Name, mc.Layers, mc.Hidden, *kind)
	m := nn.NewModel(mc, *seed)
	m.Train(train, nn.TrainConfig{LearningRate: 3e-3, Epochs: *epochs, ClipNorm: 1,
		Progress: func(e int, loss float64) {
			if e%10 == 0 {
				fmt.Printf("  epoch %3d  loss %.4f\n", e, loss)
			}
		}})
	fmt.Printf("Original accuracy: %.1f%%\n\n", m.Accuracy(test)*100)

	conv := nn.ConvertConfig{
		Params: lutnn.Params{V: *v, CT: *ct}, Seed: *seed,
		Beta: 0.01, LearningRate: 3e-4, Iterations: *iters, TrainWeights: true,
	}
	fmt.Printf("Baseline LUT-NN conversion (V=%d, CT=%d, all %d linear layers replaced)...\n",
		*v, *ct, mc.Layers*len(nn.Roles))
	if err := m.ConvertBaseline(train, conv); err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-convert:", err)
		os.Exit(1)
	}
	m.SetBackend(nn.BackendLUT)
	fmt.Printf("Baseline LUT-NN accuracy: %.1f%%\n\n", m.Accuracy(test)*100)

	fmt.Printf("eLUT-NN calibration (%d iterations, reconstruction loss + STE)...\n", *iters)
	m.SetBackend(nn.BackendGEMM)
	if err := m.CalibrateELUT(train, conv); err != nil {
		fmt.Fprintln(os.Stderr, "pimdl-convert:", err)
		os.Exit(1)
	}
	m.SetBackend(nn.BackendLUT)
	fmt.Printf("eLUT-NN accuracy: %.1f%%\n\n", m.Accuracy(test)*100)

	m.SetBackend(nn.BackendLUTInt8)
	fmt.Printf("eLUT-NN + INT8 tables accuracy: %.1f%% (LUT footprint %d KiB)\n",
		m.Accuracy(test)*100, m.LUTFootprintBytes(1)/1024)
}

// Command pimdl-lint runs the project's static analyzers (see
// internal/analysis) over the packages selected by the given patterns in
// one multi-package pass, so cross-package facts (hotpath annotations,
// metric series registrations) resolve across package boundaries. It
// exits 0 when the tree is clean (or every finding is absorbed by the
// baseline), 1 when there are new findings, and 2 when packages fail to
// load or type-check — so `make lint` is enforceable in CI.
//
// Usage:
//
//	pimdl-lint [-only analyzer[,analyzer]] [-json] [-baseline file]
//	           [-write-baseline file] [patterns...]
//
// Patterns default to ./... and accept plain directories or Go-style /...
// suffixes. Findings are suppressed at the site with
// `//pimdl:lint-ignore <analyzer> <reason>` on the same or preceding
// line; a suppression that no longer silences anything is itself
// reported as stale (full-roster runs only — under -only a directive for
// an unselected analyzer would be falsely stale).
//
// The baseline gate grandfathers recorded debt: -baseline filters out
// findings whose (analyzer, file, message) class is recorded in the
// file, up to the recorded count, and -write-baseline regenerates that
// record from the current tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "", "filter out findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "pimdl-lint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, _, err := analysis.Module(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	// One run over every package in dependency order: facts recorded for
	// a dependency are visible while its importers are analyzed. Stale
	// suppression reporting needs the full roster (see package doc).
	findings := analysis.RunPackages(pkgs, analyzers, analysis.RunOptions{
		ReportStale: *only == "",
	})

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, findings, root); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pimdl-lint: recorded %d finding(s) to %s\n", len(findings), *writeBaseline)
		return
	}
	grandfathered := 0
	if *baselinePath != "" {
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		fresh := base.Filter(findings, root)
		grandfathered = len(findings) - len(fresh)
		findings = fresh
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pimdl-lint: %d new finding(s)", len(findings))
		if grandfathered > 0 {
			fmt.Fprintf(os.Stderr, " (%d grandfathered by baseline)", grandfathered)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
	if grandfathered > 0 {
		fmt.Fprintf(os.Stderr, "pimdl-lint: clean (%d grandfathered by baseline)\n", grandfathered)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "pimdl-lint: %v\n", err)
	os.Exit(2)
}

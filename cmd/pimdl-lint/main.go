// Command pimdl-lint runs the project's static analyzers (see
// internal/analysis) over the packages selected by the given patterns and
// prints findings in the usual file:line:col style. It exits 0 when the
// tree is clean, 1 when there are findings, and 2 when packages fail to
// load or type-check — so `make lint` is enforceable in CI.
//
// Usage:
//
//	pimdl-lint [-only analyzer[,analyzer]] [patterns...]
//
// Patterns default to ./... and accept plain directories or Go-style /...
// suffixes. Findings are suppressed at the site with
// `//pimdl:lint-ignore <analyzer> <reason>` on the same or preceding line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "pimdl-lint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimdl-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimdl-lint: %v\n", err)
		os.Exit(2)
	}

	total := 0
	for _, pkg := range pkgs {
		findings := analysis.RunPackage(pkg.Fset, pkg.Files, pkg.ImportPath, pkg.Pkg, pkg.Info, analyzers)
		for _, f := range findings {
			fmt.Println(f)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "pimdl-lint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

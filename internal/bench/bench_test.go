package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema:     Schema,
		Date:       "2026-08-06",
		GoMaxProcs: 4,
		Experiments: []ExperimentResult{
			{Name: "fig11", WallSeconds: 2.0},
		},
		Kernels: []KernelResult{
			{Name: "ccs", NsPerOp: 1e7, MBPerSec: 200, Ops: 20},
			{Name: "lut_lookup_fp32", NsPerOp: 5e7, Ops: 4},
		},
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(r)
	have, _ := json.Marshal(got)
	if !bytes.Equal(want, have) {
		t.Fatalf("round trip changed report:\n%s\nvs\n%s", want, have)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()

	// Within tolerance: 5% slower kernel, 9% slower experiment.
	cur.Kernels[0].NsPerOp = 1.05e7
	cur.Experiments[0].WallSeconds = 2.18
	if regs := Compare(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("within-tolerance changes flagged: %v", regs)
	}

	// Beyond tolerance: 20% slower kernel and 15% slower experiment.
	cur.Kernels[0].NsPerOp = 1.2e7
	cur.Experiments[0].WallSeconds = 2.3
	regs := Compare(base, cur, DefaultTolerance)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if regs[0].Name != "ccs" || regs[0].Metric != "ns_per_op" {
		t.Errorf("unexpected first regression: %+v", regs[0])
	}
	if regs[1].Name != "fig11" || regs[1].Metric != "wall_seconds" {
		t.Errorf("unexpected second regression: %+v", regs[1])
	}

	// Speedups are never regressions.
	cur.Kernels[0].NsPerOp = 0.5e7
	cur.Experiments[0].WallSeconds = 1.0
	if regs := Compare(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("speedups flagged as regressions: %v", regs)
	}
}

func TestCompareIgnoresUnmatchedMetrics(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Kernels = append(cur.Kernels, KernelResult{Name: "brand_new", NsPerOp: 1e9})
	cur.Experiments = append(cur.Experiments, ExperimentResult{Name: "fig99", WallSeconds: 100})
	if regs := Compare(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("metrics without a baseline flagged: %v", regs)
	}
}

func TestMeasureSanity(t *testing.T) {
	var calls int
	res := Measure("noop", 1000, func() { calls++ })
	if res.Ops < 2 {
		t.Errorf("Ops = %d, want >= 2", res.Ops)
	}
	if calls != res.Ops+1 { // +1 warm-up call
		t.Errorf("calls = %d, want Ops+1 = %d", calls, res.Ops+1)
	}
	if res.NsPerOp < 0 {
		t.Errorf("negative ns/op: %v", res.NsPerOp)
	}
	if res.MBPerSec <= 0 {
		t.Errorf("throughput missing despite bytesPerOp: %v", res.MBPerSec)
	}
	if noBytes := Measure("nobytes", 0, func() {}); noBytes.MBPerSec != 0 {
		t.Errorf("throughput reported without bytesPerOp: %v", noBytes.MBPerSec)
	}
}

func TestMeasureABInterleavesModes(t *testing.T) {
	var modes []bool
	mode := false
	setMode := func(on bool) { mode = on }
	sink := 0.0
	off, on := MeasureAB("noop", 1000, setMode, func() {
		modes = append(modes, mode)
		for i := 0; i < 1000; i++ { // nonzero per-call time so minima stay positive
			sink += float64(i)
		}
	})
	_ = sink
	if !mode {
		t.Error("MeasureAB must leave the mode enabled on return")
	}
	if off.Name != "noop" || on.Name != "noop" {
		t.Errorf("names = %q, %q", off.Name, on.Name)
	}
	if off.Ops != on.Ops || off.Ops < 2 {
		t.Errorf("pair counts = %d, %d; want equal and >= 2", off.Ops, on.Ops)
	}
	// Call sequence: one off warm-up, one on warm-up, then strict
	// off/on alternation — never two timed calls in the same mode.
	if len(modes) != 2+2*off.Ops {
		t.Fatalf("fn called %d times, want %d", len(modes), 2+2*off.Ops)
	}
	for i, m := range modes {
		if want := i%2 == 1; m != want {
			t.Fatalf("call %d ran with mode %v, want %v (sequence %v)", i, m, want, modes)
		}
	}
	if off.NsPerOp < 0 || on.NsPerOp < 0 {
		t.Errorf("negative ns/op: %v, %v", off.NsPerOp, on.NsPerOp)
	}
	if off.MBPerSec <= 0 || on.MBPerSec <= 0 {
		t.Errorf("throughput missing despite bytesPerOp: %v, %v", off.MBPerSec, on.MBPerSec)
	}
}

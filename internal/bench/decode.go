package bench

import (
	"fmt"
	"time"

	"repro/internal/nn"
)

// DecodeResult is one measured decode configuration. NsPerToken and
// TokensPerSec are machine-dependent; Speedup (tokens/sec relative to
// the decode_naive run in the SAME report) is the figure regression
// gates compare across machines.
type DecodeResult struct {
	Name         string  `json:"name"`
	Batch        int     `json:"batch"`
	Tokens       int     `json:"tokens"`
	NsPerToken   float64 `json:"ns_per_token"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	Speedup      float64 `json:"speedup,omitempty"`
}

// Decode-shape configuration: a GPT-style causal model sized so one
// naive generation run is long enough to time but short enough for CI.
// Generation stays inside the window-fill regime (prompt of 1, steps <
// SeqLen), where the KV-cached fastpath does one single-row step per
// token against the naive path's full-window pass per token — the
// regime the decode fastpath exists for. (Once the window slides, every
// cached step rebases and the two paths converge by construction.)
const decodeBatchSize = 8

func decodeConfig(quick bool) (cfg nn.Config, steps int) {
	cfg = nn.Config{
		Name: "decode-bench", Kind: nn.TokenInput, Causal: true,
		Vocab: 256, Hidden: 128, Layers: 2, Heads: 4, FFN: 512,
		SeqLen: 64, Classes: 2,
	}
	if quick {
		cfg.SeqLen = 32
	}
	return cfg, cfg.SeqLen - 2
}

// decodeTime runs fn (one full generation producing tokens tokens)
// repeatedly until minMeasure elapses (at least two timed calls after a
// discarded warm-up) and returns the per-token time of the FASTEST
// call. Like MeasureAB, minima rather than means: the speedup gate
// divides two of these figures, and external noise (scheduler
// preemption, cache eviction) only ever inflates a call — so comparing
// fastest-observed runs keeps the ratio stable enough for a CI
// tolerance where means would flake.
func decodeTime(name string, batch, tokens int, fn func() error) (DecodeResult, error) {
	if err := fn(); err != nil { // warm-up
		return DecodeResult{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	// Decode runs longer than Measure's floor (3× the time, 3 calls
	// minimum): the CI gate divides two of these figures, so each needs
	// enough calls for the minimum to converge — with Measure's 2-call
	// floor the naive path's ~1s calls leave best-of-2, which drifts
	// ±10% across processes and flakes a 10% tolerance.
	var (
		ops   int
		total time.Duration
		best  time.Duration
	)
	for total < 3*minMeasure || ops < 3 {
		start := time.Now()
		if err := fn(); err != nil {
			return DecodeResult{}, fmt.Errorf("bench: %s: %w", name, err)
		}
		d := time.Since(start)
		total += d
		if best == 0 || d < best {
			best = d
		}
		ops++
	}
	nsPerToken := float64(best.Nanoseconds()) / float64(tokens)
	return DecodeResult{
		Name: name, Batch: batch, Tokens: tokens,
		NsPerToken:   nsPerToken,
		TokensPerSec: 1e9 / nsPerToken,
	}, nil
}

// Decode measures the three decode paths — naive full-window Generate,
// KV-cached GenerateCached, and decodeBatchSize sessions stacked
// through DecodeBatch — and stamps each with its tokens/sec speedup
// over the naive run.
func Decode(quick bool) ([]DecodeResult, error) {
	cfg, steps := decodeConfig(quick)
	m := nn.NewModel(cfg, 1)
	prompt := []int{1}

	naive, err := decodeTime("decode_naive", 1, steps, func() error {
		_, err := m.Generate(prompt, steps, 0, nil)
		return err
	})
	if err != nil {
		return nil, err
	}

	cached, err := decodeTime("decode_cached", 1, steps, func() error {
		_, err := m.GenerateCached(prompt, steps, 0, nil)
		return err
	})
	if err != nil {
		return nil, err
	}

	batchName := fmt.Sprintf("decode_batched%d", decodeBatchSize)
	batched, err := decodeTime(batchName, decodeBatchSize, decodeBatchSize*steps, func() error {
		db := nn.NewDecodeBatch(m)
		sessions := make([]*nn.DecodeSession, decodeBatchSize)
		for i := range sessions {
			s, err := nn.NewDecodeSession(m, []int{1 + i})
			if err != nil {
				return err
			}
			sessions[i] = s
			if err := db.Add(s); err != nil {
				return err
			}
		}
		toks := make([]int, decodeBatchSize)
		for step := 0; step < steps; step++ {
			for i, s := range sessions {
				toks[i] = s.Pick(0, nil)
			}
			if step+1 < steps {
				if err := db.Feed(toks); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	results := []DecodeResult{naive, cached, batched}
	for i := range results {
		if naive.TokensPerSec > 0 {
			results[i].Speedup = results[i].TokensPerSec / naive.TokensPerSec
		}
	}
	return results, nil
}

package bench

import (
	"math/rand"

	"repro/internal/lutnn"
	"repro/internal/tensor"
)

// Kernel benchmark configuration: one BERT-base-shaped linear layer
// (N=2048 rows, H=F=768, V=4, CT=16 ⇒ CB=192), the same shape the
// repository's Go benchmarks in bench_test.go use, so `pimdl-bench
// -json` numbers and `go test -bench` numbers describe the same kernels.
const (
	kernelN = 2048
	kernelH = 768
	kernelF = 768
)

// quickKernelN shrinks the row count under -quick (CI smoke runs).
const quickKernelN = 256

// kernelSpec is one measurable kernel: its report name, the bytes a
// single call streams (for MB/s), and the call itself.
type kernelSpec struct {
	name  string
	bytes int64
	fn    func()
}

// kernelSpecs builds the steady-state host kernels — CCS, FP32 and INT8
// table lookup, and the fused forward — over one converted layer. The
// calls are the zero-allocation Into variants: that is the
// per-inference hot path once buffers are set up.
func kernelSpecs(quick bool) ([]kernelSpec, error) {
	n := kernelN
	if quick {
		n = quickKernelN
	}
	rng := rand.New(rand.NewSource(1))
	acts := tensor.RandN(rng, 1, n, kernelH)
	w := tensor.RandN(rng, 1, kernelF, kernelH)
	layer, err := lutnn.Convert(w, nil, acts, lutnn.Params{V: 4, CT: 16}, 1)
	if err != nil {
		return nil, err
	}
	qt := layer.Table.Quantize()

	idx := make([]uint8, n*layer.Codebooks.CB)
	out := tensor.New(n, kernelF)
	layer.Codebooks.SearchInto(idx, acts)

	actBytes := int64(acts.Size() * 4)
	// One output matrix plus one index matrix streamed per lookup call.
	lookupBytes := int64(n*kernelF*4 + len(idx))

	// Decode-shape row kernels: the N=1 specializations the KV-cached
	// generation fastpath dispatches per token (pruned single-row CCS and
	// the tile-major one-row gather).
	rs := lutnn.NewRowSearcher(layer.Codebooks)
	dl := lutnn.NewDecodeLUT(layer.Table)
	rowIdx := make([]uint8, layer.Codebooks.CB)
	rowOut := make([]float32, kernelF)
	row := acts.Row(0)
	rs.SearchRowInto(rowIdx, row)

	return []kernelSpec{
		{"ccs", actBytes, func() {
			layer.Codebooks.SearchInto(idx, acts)
		}},
		{"lut_lookup_fp32", lookupBytes, func() {
			layer.Table.LookupInto(out, idx, n)
		}},
		{"lut_lookup_int8", lookupBytes, func() {
			qt.LookupInto(out, idx, n)
		}},
		{"forward_fused_fp32", actBytes, func() {
			layer.ForwardInto(out, acts)
		}},
		{"ccs_row", int64(kernelH * 4), func() {
			rs.SearchRowInto(rowIdx, row)
		}},
		{"lut_gather_row", int64(kernelF*4 + len(rowIdx)), func() {
			dl.LookupRowInto(rowOut, rowIdx)
		}},
	}, nil
}

// Kernels measures every kernel with Measure and returns the results.
func Kernels(quick bool) ([]KernelResult, error) {
	specs, err := kernelSpecs(quick)
	if err != nil {
		return nil, err
	}
	results := make([]KernelResult, 0, len(specs))
	for _, s := range specs {
		results = append(results, Measure(s.name, s.bytes, s.fn))
	}
	return results, nil
}

// KernelsAB measures every kernel with MeasureAB, toggling setMode
// between interleaved calls, and returns the setMode(false) and
// setMode(true) result sets. It backs the metrics-overhead CI guard:
// `pimdl-bench -overhead-baseline` passes metrics.SetEnabled as the
// mode switch so recording-off and recording-on share one process and
// one drift environment.
func KernelsAB(quick bool, setMode func(on bool)) (off, on []KernelResult, err error) {
	specs, err := kernelSpecs(quick)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range specs {
		o, n := MeasureAB(s.name, s.bytes, setMode, s.fn)
		off = append(off, o)
		on = append(on, n)
	}
	return off, on, nil
}

package bench

import (
	"math/rand"

	"repro/internal/lutnn"
	"repro/internal/tensor"
)

// Kernel benchmark configuration: one BERT-base-shaped linear layer
// (N=2048 rows, H=F=768, V=4, CT=16 ⇒ CB=192), the same shape the
// repository's Go benchmarks in bench_test.go use, so `pimdl-bench
// -json` numbers and `go test -bench` numbers describe the same kernels.
const (
	kernelN = 2048
	kernelH = 768
	kernelF = 768
)

// quickKernelN shrinks the row count under -quick (CI smoke runs).
const quickKernelN = 256

// Kernels measures the steady-state host kernels — CCS, FP32 and INT8
// table lookup, and the fused forward — into KernelResults. The
// measured calls are the zero-allocation Into variants: that is the
// per-inference hot path once buffers are set up.
func Kernels(quick bool) ([]KernelResult, error) {
	n := kernelN
	if quick {
		n = quickKernelN
	}
	rng := rand.New(rand.NewSource(1))
	acts := tensor.RandN(rng, 1, n, kernelH)
	w := tensor.RandN(rng, 1, kernelF, kernelH)
	layer, err := lutnn.Convert(w, nil, acts, lutnn.Params{V: 4, CT: 16}, 1)
	if err != nil {
		return nil, err
	}
	qt := layer.Table.Quantize()

	idx := make([]uint8, n*layer.Codebooks.CB)
	out := tensor.New(n, kernelF)
	layer.Codebooks.SearchInto(idx, acts)

	actBytes := int64(acts.Size() * 4)
	// One output matrix plus one index matrix streamed per lookup call.
	lookupBytes := int64(n*kernelF*4 + len(idx))

	results := []KernelResult{
		Measure("ccs", actBytes, func() {
			layer.Codebooks.SearchInto(idx, acts)
		}),
		Measure("lut_lookup_fp32", lookupBytes, func() {
			layer.Table.LookupInto(out, idx, n)
		}),
		Measure("lut_lookup_int8", lookupBytes, func() {
			qt.LookupInto(out, idx, n)
		}),
		Measure("forward_fused_fp32", actBytes, func() {
			layer.ForwardInto(out, acts)
		}),
	}
	return results, nil
}

package bench

import "testing"

func decodeSample() *Report {
	r := sampleReport()
	r.Decode = []DecodeResult{
		{Name: "decode_naive", Batch: 1, Tokens: 62, NsPerToken: 1e7, TokensPerSec: 100, Speedup: 1},
		{Name: "decode_cached", Batch: 1, Tokens: 62, NsPerToken: 2e6, TokensPerSec: 500, Speedup: 5},
		{Name: "decode_batched8", Batch: 8, Tokens: 496, NsPerToken: 5e5, TokensPerSec: 2000, Speedup: 20},
	}
	return r
}

func TestCompareDecodeGatesOnSpeedup(t *testing.T) {
	base := decodeSample()
	cur := decodeSample()

	// Slower absolute times but unchanged speedups: not a regression —
	// the baseline may come from a faster machine.
	for i := range cur.Decode {
		cur.Decode[i].NsPerToken *= 3
		cur.Decode[i].TokensPerSec /= 3
	}
	if regs := Compare(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("machine-speed difference flagged: %v", regs)
	}

	// Speedup within tolerance: 5 → 4.6 is ~8.7% shrink, under 10%.
	cur = decodeSample()
	cur.Decode[1].Speedup = 4.6
	if regs := CompareDecode(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("within-tolerance speedup drop flagged: %v", regs)
	}

	// Speedup collapse beyond tolerance is a regression, and it also
	// surfaces through the combined Compare.
	cur.Decode[1].Speedup = 3.0
	regs := CompareDecode(base, cur, DefaultTolerance)
	if len(regs) != 1 || regs[0].Name != "decode_cached" || regs[0].Metric != "speedup" {
		t.Fatalf("want one decode_cached speedup regression, got %v", regs)
	}
	if regs[0].Ratio <= 1 {
		t.Fatalf("regression ratio %g should exceed 1 (slower)", regs[0].Ratio)
	}
	if all := Compare(base, cur, DefaultTolerance); len(all) != 1 {
		t.Fatalf("combined Compare missed the decode regression: %v", all)
	}

	// Entries without a baseline counterpart are ignored.
	cur = decodeSample()
	cur.Decode = append(cur.Decode, DecodeResult{Name: "decode_batched16", Speedup: 0.1})
	if regs := CompareDecode(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("baseline-less decode entry flagged: %v", regs)
	}

	// Reports without decode sets compare cleanly.
	if regs := CompareDecode(sampleReport(), decodeSample(), DefaultTolerance); len(regs) != 0 {
		t.Fatalf("empty-baseline decode compare flagged: %v", regs)
	}
	if out := FormatDecodeComparison(sampleReport(), decodeSample(), DefaultTolerance); out != "" {
		t.Fatalf("decode table rendered without a shared set:\n%s", out)
	}
	if out := FormatDecodeComparison(base, decodeSample(), DefaultTolerance); out == "" {
		t.Fatal("decode table missing for shared sets")
	}
}

// TestDecodeMeasuresSpeedup runs the real decode measurement in quick
// mode: the KV-cached path must beat naive Generate by the ≥3× the CI
// gate demands, and the batched path must not fall behind cached on
// per-token throughput.
func TestDecodeMeasuresSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("decode measurement takes ~1s of timed generation")
	}
	dec, err := Decode(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 {
		t.Fatalf("want 3 decode results, got %d", len(dec))
	}
	byName := map[string]DecodeResult{}
	for _, d := range dec {
		if d.NsPerToken <= 0 || d.TokensPerSec <= 0 || d.Speedup <= 0 {
			t.Fatalf("degenerate decode result: %+v", d)
		}
		byName[d.Name] = d
	}
	if s := byName["decode_naive"].Speedup; s != 1 {
		t.Fatalf("naive speedup %g, want exactly 1 (its own baseline)", s)
	}
	if s := byName["decode_cached"].Speedup; s < 3 {
		t.Fatalf("cached speedup %.2fx below the 3x the decode-smoke gate requires", s)
	}
	// On multi-core hosts the stacked kernels fan the 8 rows over the
	// worker pool and batched clearly beats cached per token; on a
	// single-core CI box both paths serialize and batched's win shrinks
	// to call-overhead amortization. Require batched to at least stay in
	// cached's ballpark and clear the same 3x naive floor.
	if b, c := byName["decode_batched8"], byName["decode_cached"]; b.Speedup < 0.7*c.Speedup || b.Speedup < 3 {
		t.Fatalf("batched decode (%.2fx) far behind cached solo (%.2fx)",
			b.Speedup, c.Speedup)
	}
}

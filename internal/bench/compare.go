package bench

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultTolerance is the regression threshold used by
// `pimdl-bench -compare`: new times more than 10% above old are flagged.
const DefaultTolerance = 0.10

// Regression is one metric that got slower beyond the tolerance.
type Regression struct {
	Name   string  // kernel or experiment name
	Metric string  // "ns_per_op" or "wall_seconds"
	Old    float64 // baseline value
	New    float64 // current value
	Ratio  float64 // New/Old (> 1 means slower)
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%.1f%% slower)",
		r.Name, r.Metric, r.Old, r.New, (r.Ratio-1)*100)
}

// Compare diffs two reports and returns the metrics in cur that are more
// than tolerance slower than in base. Metrics present in only one report
// are ignored — the harness grows over time and a new kernel has no
// baseline to regress against.
func Compare(base, cur *Report, tolerance float64) []Regression {
	var regs []Regression
	oldKernels := make(map[string]KernelResult, len(base.Kernels))
	for _, k := range base.Kernels {
		oldKernels[k.Name] = k
	}
	for _, k := range cur.Kernels {
		o, ok := oldKernels[k.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		if ratio := k.NsPerOp / o.NsPerOp; ratio > 1+tolerance {
			regs = append(regs, Regression{
				Name: k.Name, Metric: "ns_per_op",
				Old: o.NsPerOp, New: k.NsPerOp, Ratio: ratio,
			})
		}
	}
	oldExps := make(map[string]ExperimentResult, len(base.Experiments))
	for _, e := range base.Experiments {
		oldExps[e.Name] = e
	}
	for _, e := range cur.Experiments {
		o, ok := oldExps[e.Name]
		if !ok || o.WallSeconds <= 0 {
			continue
		}
		if ratio := e.WallSeconds / o.WallSeconds; ratio > 1+tolerance {
			regs = append(regs, Regression{
				Name: e.Name, Metric: "wall_seconds",
				Old: o.WallSeconds, New: e.WallSeconds, Ratio: ratio,
			})
		}
	}
	return append(regs, CompareDecode(base, cur, tolerance)...)
}

// CompareDecode gates the decode set on Speedup: an entry whose speedup
// over decode_naive fell more than tolerance below the baseline's is a
// regression. Speedup is a within-report ratio, so this comparison is
// meaningful across machines where raw ns_per_token is not; absolute
// decode times are deliberately not gated.
func CompareDecode(base, cur *Report, tolerance float64) []Regression {
	var regs []Regression
	oldDec := make(map[string]DecodeResult, len(base.Decode))
	for _, d := range base.Decode {
		oldDec[d.Name] = d
	}
	for _, d := range cur.Decode {
		o, ok := oldDec[d.Name]
		if !ok || o.Speedup <= 0 || d.Speedup <= 0 {
			continue
		}
		// Ratio > 1 means slower, matching the other metrics: the speedup
		// SHRANK by that factor.
		if ratio := o.Speedup / d.Speedup; ratio > 1+tolerance {
			regs = append(regs, Regression{
				Name: d.Name, Metric: "speedup",
				Old: o.Speedup, New: d.Speedup, Ratio: ratio,
			})
		}
	}
	return regs
}

// FormatComparison renders a human-readable side-by-side of every metric
// the two reports share, marking regressions with "!".
func FormatComparison(base, cur *Report, tolerance float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %14s %14s %9s\n", "metric", "old", "new", "delta")
	row := func(name string, old, new float64) {
		mark := " "
		if old > 0 && new/old > 1+tolerance {
			mark = "!"
		}
		delta := 0.0
		if old > 0 {
			delta = (new/old - 1) * 100
		}
		fmt.Fprintf(&b, "%-28s %14.4g %14.4g %+8.1f%%%s\n", name, old, new, delta, mark)
	}
	oldKernels := make(map[string]KernelResult, len(base.Kernels))
	for _, k := range base.Kernels {
		oldKernels[k.Name] = k
	}
	for _, k := range cur.Kernels {
		if o, ok := oldKernels[k.Name]; ok {
			row("kernel/"+k.Name+" (ns/op)", o.NsPerOp, k.NsPerOp)
		}
	}
	oldExps := make(map[string]ExperimentResult, len(base.Experiments))
	for _, e := range base.Experiments {
		oldExps[e.Name] = e
	}
	for _, e := range cur.Experiments {
		if o, ok := oldExps[e.Name]; ok {
			row("exp/"+e.Name+" (s)", o.WallSeconds, e.WallSeconds)
		}
	}
	b.WriteString(FormatDecodeComparison(base, cur, tolerance))
	b.WriteString(FormatMetricsDiff(base, cur))
	return b.String()
}

// FormatDecodeComparison renders the decode entries the two reports
// share: tokens/sec informationally (machine-dependent) and speedup
// flagged with "!" when it fell beyond tolerance.
func FormatDecodeComparison(base, cur *Report, tolerance float64) string {
	if len(base.Decode) == 0 || len(cur.Decode) == 0 {
		return ""
	}
	oldDec := make(map[string]DecodeResult, len(base.Decode))
	for _, d := range base.Decode {
		oldDec[d.Name] = d
	}
	var b strings.Builder
	for _, d := range cur.Decode {
		o, ok := oldDec[d.Name]
		if !ok {
			continue
		}
		mark := " "
		if o.Speedup > 0 && d.Speedup > 0 && o.Speedup/d.Speedup > 1+tolerance {
			mark = "!"
		}
		delta := 0.0
		if o.Speedup > 0 {
			delta = (d.Speedup/o.Speedup - 1) * 100
		}
		fmt.Fprintf(&b, "%-28s %14.4g %14.4g           (tok/s, not gated)\n",
			"decode/"+d.Name+" (tok/s)", o.TokensPerSec, d.TokensPerSec)
		fmt.Fprintf(&b, "%-28s %14.4g %14.4g %+8.1f%%%s\n",
			"decode/"+d.Name+" (speedup)", o.Speedup, d.Speedup, delta, mark)
	}
	return b.String()
}

// FormatMetricsDiff renders the embedded metrics snapshots' differing
// series side by side (keys present in both reports only). Counter
// drift is informational — the simulated array doing different work is
// a behaviour change, not a performance regression — so no series is
// flagged; identical values are omitted to keep the table short.
func FormatMetricsDiff(base, cur *Report) string {
	if len(base.Metrics) == 0 || len(cur.Metrics) == 0 {
		return ""
	}
	keys := make([]string, 0, len(cur.Metrics))
	for k := range cur.Metrics {
		if _, ok := base.Metrics[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	header := false
	for _, k := range keys {
		o, n := base.Metrics[k], cur.Metrics[k]
		if diff := o - n; diff == 0 { //pimdl:lint-ignore float-compare identical snapshot values carry no information; only exact equality is skipped
			continue
		}
		if !header {
			b.WriteString("\nmetrics snapshot diff (changed series):\n")
			header = true
		}
		delta := "n/a"
		if o != 0 { //pimdl:lint-ignore float-compare exact-zero baseline cannot be a ratio denominator
			delta = fmt.Sprintf("%+.1f%%", (n/o-1)*100)
		}
		fmt.Fprintf(&b, "  %-44s %14.6g %14.6g %9s\n", k, o, n, delta)
	}
	return b.String()
}

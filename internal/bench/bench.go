// Package bench is the benchmark-regression harness behind
// `pimdl-bench -json` and `pimdl-bench -compare`: it measures kernel
// throughput and experiment wall time into a versioned JSON report, and
// diffs two reports flagging regressions beyond a tolerance.
//
// The JSON schema is deliberately small and append-only (new fields may
// be added; existing ones keep their meaning), so reports committed at
// different times stay comparable:
//
//	{
//	  "schema": 1,
//	  "date": "2026-08-06",
//	  "go_max_procs": 8,
//	  "experiments": [{"name": "fig11", "wall_seconds": 1.2}],
//	  "kernels": [{"name": "ccs", "ns_per_op": 2.5e7, "mb_per_sec": 240}]
//	}
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Schema is the current report schema version.
const Schema = 1

// KernelResult is one measured kernel: mean wall time per call and, when
// the kernel has a natural bytes-processed figure, throughput.
type KernelResult struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
	Ops      int     `json:"ops"`
}

// ExperimentResult is one experiment's end-to-end wall time.
type ExperimentResult struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Report is the full benchmark report written by `pimdl-bench -json`.
type Report struct {
	Schema      int                `json:"schema"`
	Date        string             `json:"date"`
	GoMaxProcs  int                `json:"go_max_procs"`
	Quick       bool               `json:"quick,omitempty"`
	Experiments []ExperimentResult `json:"experiments,omitempty"`
	Kernels     []KernelResult     `json:"kernels,omitempty"`
	// Metrics is the flattened metrics snapshot taken after the run
	// (schema addition, field 7): series key -> value, as produced by
	// metrics.Registry.Flatten. -compare diffs the counters of two
	// reports so regressions in simulated work (bytes moved, tiles
	// executed, retries) surface next to wall-time regressions.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Decode is the autoregressive-generation throughput set written by
	// `pimdl-bench -decode` (schema addition, field 8). -compare gates on
	// each entry's Speedup — a within-report ratio against decode_naive —
	// rather than ns_per_token, so a committed baseline from one machine
	// still gates CI runs on another.
	Decode []DecodeResult `json:"decode,omitempty"`
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a report from path and validates its schema version.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %d, want %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// minMeasure is the minimum total measurement time per kernel: long
// enough to amortise timer and warm-up noise, short enough for CI.
const minMeasure = 200 * time.Millisecond

// Measure times fn repeatedly until minMeasure has elapsed (at least
// three calls, the first discarded as warm-up) and returns the mean.
// bytesPerOp, when non-zero, yields the MB/s throughput figure.
func Measure(name string, bytesPerOp int64, fn func()) KernelResult {
	fn() // warm-up: page in tables, prime the worker pool and scratch pools
	var (
		ops   int
		total time.Duration
	)
	for total < minMeasure || ops < 2 {
		start := time.Now()
		fn()
		total += time.Since(start)
		ops++
	}
	return kernelResult(name, bytesPerOp, float64(total.Nanoseconds())/float64(ops), ops)
}

// MeasureAB times fn under two modes — setMode(false) first, then
// setMode(true) — with the timed calls strictly interleaved
// off,on,off,on,... so slow environment drift (CPU frequency scaling,
// co-tenant load on a shared host) hits both modes equally and cancels
// out of the off/on ratio. Two sequential Measure runs cannot offer
// that: on a noisy host the later run is systematically slower
// regardless of mode, which swamps small per-mode costs.
//
// Unlike Measure, the reported NsPerOp is each mode's fastest observed
// call, not the mean: external noise (scheduler preemption, cache
// eviction by co-tenants) only ever inflates a call, while a real
// per-mode cost is present in every call — so comparing minima isolates
// the mode difference from residual per-call noise. Each mode
// accumulates at least minMeasure of timed work; fn is left in the
// setMode(true) state on return.
func MeasureAB(name string, bytesPerOp int64, setMode func(on bool), fn func()) (off, on KernelResult) {
	setMode(false)
	fn() // warm up both modes before timing anything
	setMode(true)
	fn()
	var (
		pairs             int
		offTotal, onTotal time.Duration
		offBest, onBest   time.Duration
	)
	for offTotal < minMeasure || onTotal < minMeasure || pairs < 2 {
		setMode(false)
		start := time.Now()
		fn()
		d := time.Since(start)
		offTotal += d
		if offBest == 0 || d < offBest {
			offBest = d
		}
		setMode(true)
		start = time.Now()
		fn()
		d = time.Since(start)
		onTotal += d
		if onBest == 0 || d < onBest {
			onBest = d
		}
		pairs++
	}
	return kernelResult(name, bytesPerOp, float64(offBest.Nanoseconds()), pairs),
		kernelResult(name, bytesPerOp, float64(onBest.Nanoseconds()), pairs)
}

func kernelResult(name string, bytesPerOp int64, nsPerOp float64, ops int) KernelResult {
	res := KernelResult{Name: name, NsPerOp: nsPerOp, Ops: ops}
	if bytesPerOp > 0 && nsPerOp > 0 {
		res.MBPerSec = float64(bytesPerOp) / (nsPerOp / 1e9) / 1e6
	}
	return res
}

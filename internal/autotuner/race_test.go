package autotuner

import (
	"sync"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pim"
)

// TestTuneConcurrentCallersDeterministic runs the tuner's partition-search
// fan-out from several concurrent callers. The search writes per-partition
// results into disjoint slice slots and merges them in index order, so
// every call — concurrent or not — must return the same mapping and the
// same simulated time. Under -race this is the regression test for the
// tuner fan-out.
func TestTuneConcurrentCallersDeterministic(t *testing.T) {
	p := pim.UPMEM()
	w := pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
	cfg := mapping.SpaceConfig{MaxDivisors: 4}
	ref, err := Tune(p, w, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Tune(p, w, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Mapping != ref.Mapping {
				t.Errorf("concurrent Tune picked %v, want %v", res.Mapping, ref.Mapping)
			}
			if res.Simulated.Total() != ref.Simulated.Total() {
				t.Errorf("concurrent Tune simulated %g, want %g",
					res.Simulated.Total(), ref.Simulated.Total())
			}
		}()
	}
	wg.Wait()
}

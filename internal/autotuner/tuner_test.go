package autotuner

import (
	"math/rand"
	"testing"

	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/pim"
	"repro/internal/tensor"
)

func TestTuneFindsLegalMapping(t *testing.T) {
	p := pim.UPMEM()
	w := pim.Workload{N: 1024, CB: 128, CT: 16, F: 1024, ElemBytes: 1}
	res, err := Tune(p, w, mapping.SpaceConfig{MaxDivisors: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Mapping.Validate(p, w); err != nil {
		t.Fatalf("tuner returned invalid mapping: %v", err)
	}
	if res.Evaluated == 0 {
		t.Fatal("tuner evaluated nothing")
	}
	if res.Predicted.Total() <= 0 || res.Simulated.Total() <= 0 {
		t.Fatal("non-positive timings")
	}
	t.Logf("best %v predicted %.3gs simulated %.3gs over %d mappings",
		res.Mapping, res.Predicted.Total(), res.Simulated.Total(), res.Evaluated)
}

func TestTunerNearExhaustiveOptimum(t *testing.T) {
	// Paper §6.6: the auto-tuner's pick suffers ≤6% degradation versus the
	// true best mapping. Our analog: the tuner's (model-chosen) mapping is
	// within 25% of the simulator-exhaustive best on a reduced space.
	p := pim.UPMEM()
	w := pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
	cfg := mapping.SpaceConfig{MaxDivisors: 4}
	res, err := Tune(p, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, bestT, worstT, n := ExhaustiveBest(p, w, cfg)
	chosen := res.Simulated.Total()
	t.Logf("tuner %.4gs, exhaustive best %.4gs, worst %.4gs (%d mappings)", chosen, bestT, worstT, n)
	if chosen > bestT*1.25 {
		t.Fatalf("tuner pick %.3gs vs exhaustive best %.3gs (>25%% off)", chosen, bestT)
	}
	if worstT < bestT {
		t.Fatal("exhaustive search broken")
	}
}

func TestTuneErrorsWhenImpossible(t *testing.T) {
	// A platform with one PE and a workload too big for its bank.
	p := pim.UPMEM()
	p.NumPE = 1
	p.MRAMBytes = 1 << 10
	w := pim.Workload{N: 4096, CB: 512, CT: 16, F: 4096, ElemBytes: 1}
	if _, err := Tune(p, w, mapping.SpaceConfig{MaxDivisors: 3}); err == nil {
		t.Fatal("expected ErrNoLegalMapping")
	}
}

func TestTunedMappingExecutesFunctionally(t *testing.T) {
	// End-to-end: tune a small kernel, execute it with the tuned mapping,
	// verify bit-exactness against the reference lookup.
	rng := rand.New(rand.NewSource(1))
	const n, h, f, v, ct = 64, 32, 48, 4, 8
	acts := tensor.RandN(rng, 1, n, h)
	cbs, err := lutnn.BuildCodebooks(acts, lutnn.Params{V: v, CT: ct}, 2)
	if err != nil {
		t.Fatal(err)
	}
	wm := tensor.RandN(rng, 1, f, h)
	tbl, err := lutnn.BuildLUT(cbs, wm)
	if err != nil {
		t.Fatal(err)
	}
	idx := cbs.Search(acts)

	p := pim.UPMEM()
	w := pim.Workload{N: n, CB: h / v, CT: ct, F: f, ElemBytes: 4}
	res, err := Tune(p, w, mapping.SpaceConfig{MaxDivisors: 5})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := pim.ExecuteLUT(p, w, res.Mapping, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := tbl.Lookup(idx, n)
	if tensor.MaxAbsDiff(exec.Output, want) > 1e-5 {
		t.Fatal("tuned mapping produced wrong results")
	}
}

func TestTunerPrefersCheaperPlatformMapping(t *testing.T) {
	// Sanity: on a platform with brutal per-DMA setup cost the tuner must
	// not pick fine-grain loading with a tiny load tile.
	p := pim.UPMEM()
	p.DMASetup = 1e-3
	w := pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
	res, err := Tune(p, w, mapping.SpaceConfig{MaxDivisors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapping.Scheme == pim.FineLoad && res.Mapping.FLoadTile == 1 {
		t.Fatalf("tuner picked pathological mapping %v", res.Mapping)
	}
}

func TestRandomSearchNearExhaustive(t *testing.T) {
	p := pim.UPMEM()
	w := pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
	cfg := mapping.SpaceConfig{MaxDivisors: 4}
	full, err := Tune(p, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSearch(p, w, cfg, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rnd.Mapping.Validate(p, w); err != nil {
		t.Fatalf("random search returned invalid mapping: %v", err)
	}
	ratio := rnd.Simulated.Total() / full.Simulated.Total()
	t.Logf("random search %.4gs vs exhaustive %.4gs (%.2fx)", rnd.Simulated.Total(), full.Simulated.Total(), ratio)
	if ratio > 2.0 {
		t.Fatalf("random search %.2fx off exhaustive", ratio)
	}
}

func TestRandomSearchEmptySpace(t *testing.T) {
	p := pim.UPMEM()
	p.NumPE = 1
	p.MRAMBytes = 1 << 10
	w := pim.Workload{N: 4096, CB: 512, CT: 16, F: 4096, ElemBytes: 1}
	if _, err := RandomSearch(p, w, mapping.SpaceConfig{MaxDivisors: 3}, 100, 1); err == nil {
		t.Fatal("expected ErrNoLegalMapping")
	}
}

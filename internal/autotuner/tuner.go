// Package autotuner implements PIM-DL's Algorithm 1: for each legal
// sub-LUT partition it estimates the partition overhead, searches the
// micro-kernel space with the analytical cost model, and keeps the mapping
// with the smallest total predicted latency.
package autotuner

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/mapping"
	"repro/internal/parallel"
	"repro/internal/pim"
)

// parallelCostWork is the rough scalar-op estimate for scoring one
// sub-LUT partition's micro-kernel space, used to decide whether Tune
// fans out on the worker pool.
const parallelCostWork = 1 << 16

// Result is the tuner's output for one LUT operator.
type Result struct {
	Mapping   pim.Mapping
	Predicted pim.Timing // cost-model estimate for the chosen mapping
	Simulated pim.Timing // simulator timing for the chosen mapping
	// Evaluated is the number of legal mappings scored.
	Evaluated int
}

// ErrNoLegalMapping is returned when the workload cannot be placed on the
// platform at all (e.g. tiles never fit the on-chip buffer).
var ErrNoLegalMapping = errors.New("autotuner: no legal mapping")

// Tune searches the mapping space of w on p (Algorithm 1) and returns the
// best mapping by predicted cost.
func Tune(p *pim.Platform, w pim.Workload, cfg mapping.SpaceConfig) (*Result, error) {
	parts := mapping.SubLUTPartitions(p, w, cfg)
	if len(parts) == 0 {
		return nil, ErrNoLegalMapping
	}

	type partBest struct {
		m     pim.Mapping
		cost  float64
		t     pim.Timing
		count int
		ok    bool
	}
	results := make([]partBest, len(parts))

	// One slot per sub-LUT partition on the shared worker pool; each
	// partition writes its own results element, and the serial reduction
	// below keeps the winner deterministic.
	parallel.For(len(parts), len(parts)*parallelCostWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ns, fs := parts[i][0], parts[i][1]
			best := partBest{cost: math.Inf(1)}
			mapping.MicroKernels(p, w, ns, fs, cfg, func(m pim.Mapping) {
				best.count++
				t := mapping.Cost(p, w, m)
				if c := t.Total(); c < best.cost {
					best.cost, best.m, best.t, best.ok = c, m, t, true
				}
			})
			results[i] = best
		}
	})

	out := &Result{}
	bestCost := math.Inf(1)
	found := false
	for _, r := range results {
		out.Evaluated += r.count
		if r.ok && r.cost < bestCost {
			bestCost = r.cost
			out.Mapping = r.m
			out.Predicted = r.t
			found = true
		}
	}
	if !found {
		return nil, ErrNoLegalMapping
	}
	out.Simulated = pim.SimTiming(p, w, out.Mapping)
	return out, nil
}

// ExhaustiveBest scores every legal mapping with the *simulator* timing
// and returns the best and worst (used by the Fig. 13 mapping-space
// visualization to quantify how close the tuner's pick is to the true
// optimum).
func ExhaustiveBest(p *pim.Platform, w pim.Workload, cfg mapping.SpaceConfig) (best, worst pim.Mapping, bestT, worstT float64, n int) {
	bestT = math.Inf(1)
	worstT = 0
	mapping.Enumerate(p, w, cfg, func(m pim.Mapping) {
		n++
		t := pim.SimTiming(p, w, m).Total()
		if t < bestT {
			bestT, best = t, m
		}
		if t > worstT {
			worstT, worst = t, m
		}
	})
	return best, worst, bestT, worstT, n
}

// RandomSearch scores `budget` uniformly sampled legal mappings with the
// cost model and returns the best. It trades optimality for a bounded
// search cost: on workloads whose divisor structure explodes the
// exhaustive space (large composite N and F), Algorithm 1 can take
// seconds while random search with a few thousand samples typically lands
// within a few percent of the exhaustive pick.
func RandomSearch(p *pim.Platform, w pim.Workload, cfg mapping.SpaceConfig, budget int, seed int64) (*Result, error) {
	var pool []pim.Mapping
	mapping.Enumerate(p, w, cfg, func(m pim.Mapping) {
		pool = append(pool, m)
	})
	if len(pool) == 0 {
		return nil, ErrNoLegalMapping
	}
	rng := rand.New(rand.NewSource(seed))
	if budget > len(pool) {
		budget = len(pool)
	}
	out := &Result{}
	bestCost := math.Inf(1)
	for i := 0; i < budget; i++ {
		m := pool[rng.Intn(len(pool))]
		t := mapping.Cost(p, w, m)
		out.Evaluated++
		if c := t.Total(); c < bestCost {
			bestCost = c
			out.Mapping = m
			out.Predicted = t
		}
	}
	out.Simulated = pim.SimTiming(p, w, out.Mapping)
	return out, nil
}

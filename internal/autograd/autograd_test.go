package autograd

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numGradCheck compares the analytic gradient of loss(params...) w.r.t.
// each parameter against a central finite difference.
func numGradCheck(t *testing.T, params []*Value, loss func() *Value, tol float64) {
	t.Helper()
	l := loss()
	for _, p := range params {
		p.ZeroGrad()
	}
	l.Backward()
	analytic := make([][]float32, len(params))
	for i, p := range params {
		analytic[i] = append([]float32(nil), p.ensureGrad().Data...)
	}
	const h = 1e-3
	for pi, p := range params {
		for j := range p.T.Data {
			orig := p.T.Data[j]
			p.T.Data[j] = orig + h
			lp := float64(loss().T.Data[0])
			p.T.Data[j] = orig - h
			lm := float64(loss().T.Data[0])
			p.T.Data[j] = orig
			num := (lp - lm) / (2 * h)
			got := float64(analytic[pi][j])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %d elem %d: analytic %g vs numeric %g", pi, j, got, num)
			}
		}
	}
}

func TestMatMulGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewParam(tensor.RandN(rng, 0.5, 3, 4))
	b := NewParam(tensor.RandN(rng, 0.5, 4, 2))
	numGradCheck(t, []*Value{a, b}, func() *Value {
		return SumSquares(MatMul(a, b))
	}, 1e-2)
}

func TestMatMulTGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewParam(tensor.RandN(rng, 0.5, 3, 4))
	b := NewParam(tensor.RandN(rng, 0.5, 5, 4))
	numGradCheck(t, []*Value{a, b}, func() *Value {
		return SumSquares(MatMulT(a, b))
	}, 1e-2)
}

func TestAddSubMulScaleGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewParam(tensor.RandN(rng, 0.5, 2, 3))
	b := NewParam(tensor.RandN(rng, 0.5, 2, 3))
	numGradCheck(t, []*Value{a, b}, func() *Value {
		return SumSquares(Scale(Mul(Add(a, b), Sub(a, b)), 0.7))
	}, 1e-2)
}

func TestAddBiasGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewParam(tensor.RandN(rng, 0.5, 3, 4))
	bias := NewParam(tensor.RandN(rng, 0.5, 4))
	numGradCheck(t, []*Value{a, bias}, func() *Value {
		return SumSquares(AddBias(a, bias))
	}, 1e-2)
}

func TestGELUGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewParam(tensor.RandN(rng, 1, 2, 5))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(GELU(a))
	}, 2e-2)
}

func TestReLUGrad(t *testing.T) {
	// Keep inputs away from the kink at 0.
	a := NewParam(tensor.FromSlice([]float32{-1, -0.5, 0.5, 1}, 2, 2))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(ReLU(a))
	}, 1e-2)
}

func TestTanhGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewParam(tensor.RandN(rng, 0.8, 2, 3))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(Tanh(a))
	}, 1e-2)
}

func TestSoftmaxGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewParam(tensor.RandN(rng, 1, 3, 4))
	w := NewConst(tensor.RandN(rng, 1, 3, 4))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(Mul(SoftmaxRows(a), w))
	}, 2e-2)
}

func TestLayerNormGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewParam(tensor.RandN(rng, 1, 3, 6))
	gamma := NewParam(tensor.RandU(rng, 0.5, 1.5, 6))
	beta := NewParam(tensor.RandN(rng, 0.5, 6))
	numGradCheck(t, []*Value{a, gamma, beta}, func() *Value {
		return SumSquares(LayerNorm(a, gamma, beta, 1e-5))
	}, 3e-2)
}

func TestEmbeddingGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	table := NewParam(tensor.RandN(rng, 0.5, 5, 3))
	ids := []int{0, 2, 2, 4}
	numGradCheck(t, []*Value{table}, func() *Value {
		return SumSquares(Embedding(table, ids))
	}, 1e-2)
}

func TestMeanRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewParam(tensor.RandN(rng, 0.5, 4, 3))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(MeanRows(a))
	}, 1e-2)
}

func TestPoolRowGroupsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewParam(tensor.RandN(rng, 0.5, 6, 3))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(PoolRowGroups(a, 3))
	}, 1e-2)
}

func TestCrossEntropyGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := NewParam(tensor.RandN(rng, 1, 4, 3))
	labels := []int{0, 2, 1, 1}
	numGradCheck(t, []*Value{logits}, func() *Value {
		return CrossEntropyLogits(logits, labels)
	}, 1e-2)
}

func TestMSEGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewParam(tensor.RandN(rng, 1, 3, 3))
	b := NewParam(tensor.RandN(rng, 1, 3, 3))
	numGradCheck(t, []*Value{a, b}, func() *Value {
		return MSE(a, b)
	}, 1e-2)
}

func TestAttentionGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const seq, heads, hidden = 3, 2, 4
	q := NewParam(tensor.RandN(rng, 0.5, 2*seq, hidden))
	k := NewParam(tensor.RandN(rng, 0.5, 2*seq, hidden))
	v := NewParam(tensor.RandN(rng, 0.5, 2*seq, hidden))
	numGradCheck(t, []*Value{q, k, v}, func() *Value {
		return SumSquares(MultiHeadAttention(q, k, v, seq, heads))
	}, 3e-2)
}

func TestSTEPassesGradientThrough(t *testing.T) {
	a := NewParam(tensor.FromSlice([]float32{1, 2, 3}, 1, 3))
	// Forward value is something entirely different (a "quantized" version).
	forward := tensor.FromSlice([]float32{10, 20, 30}, 1, 3)
	out := STE(forward, a)
	loss := SumSquares(out)
	loss.Backward()
	// dLoss/dout = 2*out; STE passes it straight to a.
	want := []float32{20, 40, 60}
	for i, w := range want {
		if a.Grad.Data[i] != w {
			t.Fatalf("grad[%d] = %v, want %v", i, a.Grad.Data[i], w)
		}
	}
	if out.T.Data[0] != 10 {
		t.Fatal("STE forward value must be the supplied tensor")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewParam(tensor.New(2, 2)).Backward()
}

func TestGradAccumulatesAcrossUses(t *testing.T) {
	a := NewParam(tensor.FromSlice([]float32{2}, 1, 1))
	// loss = a*a + a*a = 2a² → dloss/da = 4a = 8
	loss := Add(Mul(a, a), Mul(a, a))
	loss.Backward()
	if a.Grad.Data[0] != 8 {
		t.Fatalf("grad = %v, want 8", a.Grad.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ‖x − target‖² from a bad start.
	x := NewParam(tensor.FromSlice([]float32{5, -3, 2}, 1, 3))
	target := NewConst(tensor.FromSlice([]float32{1, 1, 1}, 1, 3))
	opt := NewAdam(0.1, x)
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		MSE(x, target).Backward()
		opt.Step()
	}
	for i, v := range x.T.Data {
		if math.Abs(float64(v)-1) > 1e-2 {
			t.Fatalf("x[%d] = %v, want ≈1", i, v)
		}
	}
}

func TestSGDConvergesOnLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	wTrue := tensor.RandN(rng, 1, 4, 1)
	X := tensor.RandN(rng, 1, 64, 4)
	Y := tensor.MatMul(X, wTrue)
	w := NewParam(tensor.New(4, 1))
	xv, yv := NewConst(X), NewConst(Y)
	opt := NewSGD(0.05, w)
	for i := 0; i < 400; i++ {
		opt.ZeroGrad()
		MSE(MatMul(xv, w), yv).Backward()
		opt.Step()
	}
	if tensor.MaxAbsDiff(w.T, wTrue) > 0.02 {
		t.Fatalf("regression failed to converge, diff %v", tensor.MaxAbsDiff(w.T, wTrue))
	}
}

func TestAdamGradClipping(t *testing.T) {
	x := NewParam(tensor.FromSlice([]float32{100}, 1, 1))
	opt := NewAdam(0.01, x)
	opt.ClipMax = 1
	opt.ZeroGrad()
	SumSquares(x).Backward() // grad = 200
	opt.Step()
	if math.Abs(float64(x.Grad.Data[0])) > 1.0001 {
		t.Fatalf("clipped grad = %v, want ≤1", x.Grad.Data[0])
	}
}

func TestCausalAttentionIgnoresFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const seq, heads, hidden = 4, 2, 4
	q := NewConst(tensor.RandN(rng, 0.5, seq, hidden))
	k := NewConst(tensor.RandN(rng, 0.5, seq, hidden))
	v := NewConst(tensor.RandN(rng, 0.5, seq, hidden))
	out1 := MultiHeadAttentionCausal(q, k, v, seq, heads)
	// Perturb the LAST position's K and V: earlier outputs must not move.
	k2 := NewConst(k.T.Clone())
	v2 := NewConst(v.T.Clone())
	for j := 0; j < hidden; j++ {
		k2.T.Set(k2.T.At(seq-1, j)+5, seq-1, j)
		v2.T.Set(v2.T.At(seq-1, j)-3, seq-1, j)
	}
	out2 := MultiHeadAttentionCausal(q, k2, v2, seq, heads)
	for i := 0; i < seq-1; i++ {
		for j := 0; j < hidden; j++ {
			if out1.T.At(i, j) != out2.T.At(i, j) {
				t.Fatalf("position %d saw the future", i)
			}
		}
	}
	// The last position must change (it attends to itself).
	same := true
	for j := 0; j < hidden; j++ {
		if out1.T.At(seq-1, j) != out2.T.At(seq-1, j) {
			same = false
		}
	}
	if same {
		t.Fatal("last position unaffected by its own K/V change")
	}
}

func TestCausalAttentionGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const seq, heads, hidden = 3, 1, 2
	q := NewParam(tensor.RandN(rng, 0.5, seq, hidden))
	k := NewParam(tensor.RandN(rng, 0.5, seq, hidden))
	v := NewParam(tensor.RandN(rng, 0.5, seq, hidden))
	numGradCheck(t, []*Value{q, k, v}, func() *Value {
		return SumSquares(MultiHeadAttentionCausal(q, k, v, seq, heads))
	}, 3e-2)
}

func TestFirstPositionOnlySeesItself(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const seq, heads, hidden = 3, 1, 2
	q := NewConst(tensor.RandN(rng, 0.5, seq, hidden))
	k := NewConst(tensor.RandN(rng, 0.5, seq, hidden))
	v := NewConst(tensor.RandN(rng, 0.5, seq, hidden))
	out := MultiHeadAttentionCausal(q, k, v, seq, heads)
	// Row 0 attends only to position 0 → output equals v[0].
	for j := 0; j < hidden; j++ {
		if math.Abs(float64(out.T.At(0, j)-v.T.At(0, j))) > 1e-5 {
			t.Fatalf("first position output %v, want v[0] %v", out.T.At(0, j), v.T.At(0, j))
		}
	}
}

func TestSigmoidGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := NewParam(tensor.RandN(rng, 1, 2, 4))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(Sigmoid(a))
	}, 1e-2)
}

func TestLogSoftmaxGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := NewParam(tensor.RandN(rng, 1, 3, 4))
	w := NewConst(tensor.RandN(rng, 1, 3, 4))
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(Mul(LogSoftmaxRows(a), w))
	}, 2e-2)
}

func TestDropoutInferenceIdentity(t *testing.T) {
	a := NewParam(tensor.FromSlice([]float32{1, 2, 3}, 1, 3))
	if Dropout(a, 0.5, nil) != a {
		t.Fatal("nil rng should be identity")
	}
}

func TestDropoutScalesAndMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := NewParam(tensor.FromSlice(make([]float32, 1000), 1, 1000))
	for i := range a.T.Data {
		a.T.Data[i] = 1
	}
	out := Dropout(a, 0.5, rng)
	var zeros, kept int
	for _, v := range out.T.Data {
		switch v {
		case 0:
			zeros++
		case 2: // 1/(1-0.5)
			kept++
		default:
			t.Fatalf("unexpected dropout value %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout rate off: %d zeros of 1000", zeros)
	}
	// Gradient respects the mask.
	SumSquares(out).Backward()
	for i, v := range out.T.Data {
		if v == 0 && a.Grad.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped element")
		}
	}
	_ = kept
}

func TestGatherRowsGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := NewParam(tensor.RandN(rng, 0.5, 5, 3))
	rows := []int{0, 2, 2, 4}
	numGradCheck(t, []*Value{a}, func() *Value {
		return SumSquares(GatherRows(a, rows))
	}, 1e-2)
}

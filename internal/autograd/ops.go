package autograd

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// MatMul returns a·b with gradients for both operands.
func MatMul(a, b *Value) *Value {
	out := node(tensor.MatMul(a.T, b.T), a, b)
	out.back = func() {
		if a.requiresGrad {
			// dA = dC·Bᵀ (MatMulT transposes its second operand).
			tensor.AddInPlace(a.ensureGrad(), tensor.MatMulT(out.Grad, b.T))
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.ensureGrad(), tensor.MatMul(tensor.Transpose(a.T), out.Grad))
		}
	}
	return out
}

// MatMulT returns a·bᵀ for a (N×K) and b (M×K). This is the natural layout
// for linear layers whose weight is stored (outFeatures × inFeatures).
func MatMulT(a, b *Value) *Value {
	out := node(tensor.MatMulT(a.T, b.T), a, b)
	out.back = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), tensor.MatMul(out.Grad, b.T))
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.ensureGrad(), tensor.MatMul(tensor.Transpose(out.Grad), a.T))
		}
	}
	return out
}

// Add returns a + b (same shape).
func Add(a, b *Value) *Value {
	out := node(tensor.Add(a.T, b.T), a, b)
	out.back = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.ensureGrad(), out.Grad)
		}
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Value) *Value {
	out := node(tensor.Sub(a.T, b.T), a, b)
	out.back = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if b.requiresGrad {
			tensor.AXPY(b.ensureGrad(), -1, out.Grad)
		}
	}
	return out
}

// Mul returns a ⊙ b elementwise.
func Mul(a, b *Value) *Value {
	out := node(tensor.Mul(a.T, b.T), a, b)
	out.back = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), tensor.Mul(out.Grad, b.T))
		}
		if b.requiresGrad {
			tensor.AddInPlace(b.ensureGrad(), tensor.Mul(out.Grad, a.T))
		}
	}
	return out
}

// Scale returns s·a.
func Scale(a *Value, s float32) *Value {
	out := node(tensor.Scale(a.T, s), a)
	out.back = func() {
		if a.requiresGrad {
			tensor.AXPY(a.ensureGrad(), s, out.Grad)
		}
	}
	return out
}

// AddBias adds a length-M bias row vector to every row of an N×M matrix.
func AddBias(a, bias *Value) *Value {
	res := a.T.Clone()
	tensor.AddBias(res, bias.T)
	out := node(res, a, bias)
	out.back = func() {
		if a.requiresGrad {
			tensor.AddInPlace(a.ensureGrad(), out.Grad)
		}
		if bias.requiresGrad {
			g := bias.ensureGrad()
			n, m := out.Grad.Dim(0), out.Grad.Dim(1)
			for i := 0; i < n; i++ {
				row := out.Grad.Data[i*m : (i+1)*m]
				for j, v := range row {
					g.Data[j] += v
				}
			}
		}
	}
	return out
}

// GELU applies the tanh-approximated GELU elementwise.
func GELU(a *Value) *Value {
	out := node(tensor.GELU(a.T), a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		const c0 = 0.7978845608028654
		const c1 = 0.044715
		for i, x := range a.T.Data {
			xf := float64(x)
			u := c0 * (xf + c1*xf*xf*xf)
			th := math.Tanh(u)
			du := c0 * (1 + 3*c1*xf*xf)
			d := 0.5*(1+th) + 0.5*xf*(1-th*th)*du
			g.Data[i] += out.Grad.Data[i] * float32(d)
		}
	}
	return out
}

// ReLU applies max(0,x) elementwise.
func ReLU(a *Value) *Value {
	out := node(tensor.ReLU(a.T), a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, x := range a.T.Data {
			if x > 0 {
				g.Data[i] += out.Grad.Data[i]
			}
		}
	}
	return out
}

// Tanh applies tanh elementwise.
func Tanh(a *Value) *Value {
	res := a.T.Clone()
	for i, v := range res.Data {
		res.Data[i] = float32(math.Tanh(float64(v)))
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, y := range out.T.Data {
			g.Data[i] += out.Grad.Data[i] * (1 - y*y)
		}
	}
	return out
}

// SoftmaxRows applies softmax along each row of a rank-2 value.
func SoftmaxRows(a *Value) *Value {
	out := node(tensor.SoftmaxRows(a.T), a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		n, m := out.T.Dim(0), out.T.Dim(1)
		for i := 0; i < n; i++ {
			s := out.T.Data[i*m : (i+1)*m]
			dy := out.Grad.Data[i*m : (i+1)*m]
			var dot float32
			for j := range s {
				dot += dy[j] * s[j]
			}
			gr := g.Data[i*m : (i+1)*m]
			for j := range s {
				gr[j] += s[j] * (dy[j] - dot)
			}
		}
	}
	return out
}

// LayerNorm normalizes each row of a and applies the affine parameters
// gamma and beta (both length = row width).
func LayerNorm(a, gamma, beta *Value, eps float32) *Value {
	n, m := a.T.Dim(0), a.T.Dim(1)
	res := tensor.New(n, m)
	xhat := tensor.New(n, m)
	invStd := make([]float32, n)
	for i := 0; i < n; i++ {
		src := a.T.Data[i*m : (i+1)*m]
		var mean float32
		for _, v := range src {
			mean += v
		}
		mean /= float32(m)
		var varSum float32
		for _, v := range src {
			d := v - mean
			varSum += d * d
		}
		inv := 1 / float32(math.Sqrt(float64(varSum/float32(m)+eps)))
		invStd[i] = inv
		for j, v := range src {
			xh := (v - mean) * inv
			xhat.Data[i*m+j] = xh
			res.Data[i*m+j] = xh*gamma.T.Data[j] + beta.T.Data[j]
		}
	}
	out := node(res, a, gamma, beta)
	out.back = func() {
		if gamma.requiresGrad {
			g := gamma.ensureGrad()
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					g.Data[j] += out.Grad.Data[i*m+j] * xhat.Data[i*m+j]
				}
			}
		}
		if beta.requiresGrad {
			g := beta.ensureGrad()
			for i := 0; i < n; i++ {
				for j := 0; j < m; j++ {
					g.Data[j] += out.Grad.Data[i*m+j]
				}
			}
		}
		if a.requiresGrad {
			g := a.ensureGrad()
			for i := 0; i < n; i++ {
				dy := out.Grad.Data[i*m : (i+1)*m]
				xh := xhat.Data[i*m : (i+1)*m]
				// dxhat = dy * gamma
				var sumD, sumDX float32
				dxhat := make([]float32, m)
				for j := range dxhat {
					dxhat[j] = dy[j] * gamma.T.Data[j]
					sumD += dxhat[j]
					sumDX += dxhat[j] * xh[j]
				}
				inv := invStd[i]
				fm := float32(m)
				gr := g.Data[i*m : (i+1)*m]
				for j := range dxhat {
					gr[j] += inv * (dxhat[j] - sumD/fm - xh[j]*sumDX/fm)
				}
			}
		}
	}
	return out
}

// Embedding gathers rows of table (V×D) at the given ids, producing an
// (len(ids)×D) matrix. Gradients scatter-add back into the table.
func Embedding(table *Value, ids []int) *Value {
	d := table.T.Dim(1)
	res := tensor.New(len(ids), d)
	for i, id := range ids {
		copy(res.Data[i*d:(i+1)*d], table.T.Row(id))
	}
	out := node(res, table)
	out.back = func() {
		if !table.requiresGrad {
			return
		}
		g := table.ensureGrad()
		for i, id := range ids {
			dst := g.Data[id*d : (id+1)*d]
			src := out.Grad.Data[i*d : (i+1)*d]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return out
}

// MeanRows averages the rows of an N×D matrix into a 1×D matrix (used for
// mean pooling before a classifier head).
func MeanRows(a *Value) *Value {
	n, d := a.T.Dim(0), a.T.Dim(1)
	res := tensor.New(1, d)
	for i := 0; i < n; i++ {
		row := a.T.Data[i*d : (i+1)*d]
		for j, v := range row {
			res.Data[j] += v
		}
	}
	inv := 1 / float32(n)
	for j := range res.Data {
		res.Data[j] *= inv
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < n; i++ {
			gr := g.Data[i*d : (i+1)*d]
			for j := range gr {
				gr[j] += out.Grad.Data[j] * inv
			}
		}
	}
	return out
}

// PoolRowGroups mean-pools groups of `group` consecutive rows: an
// (B·group)×D input becomes B×D. Used to pool per-token features into
// per-sequence features. It panics unless group divides the row count.
func PoolRowGroups(a *Value, group int) *Value {
	n, d := a.T.Dim(0), a.T.Dim(1)
	if n%group != 0 {
		panic("autograd: PoolRowGroups group does not divide rows")
	}
	b := n / group
	res := tensor.New(b, d)
	for i := 0; i < n; i++ {
		dst := res.Data[(i/group)*d : (i/group+1)*d]
		src := a.T.Data[i*d : (i+1)*d]
		for j, v := range src {
			dst[j] += v
		}
	}
	inv := 1 / float32(group)
	for j := range res.Data {
		res.Data[j] *= inv
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < n; i++ {
			gr := g.Data[i*d : (i+1)*d]
			src := out.Grad.Data[(i/group)*d : (i/group+1)*d]
			for j := range gr {
				gr[j] += src[j] * inv
			}
		}
	}
	return out
}

// STE is the straight-through estimator (paper Eq. 2): the forward value is
// the externally computed tensor `forward` (e.g. the closest-centroid
// approximation Â of the activations), while the backward pass treats
// ∂forward/∂of as identity, passing gradients straight through to `of`.
func STE(forward *tensor.Tensor, of *Value) *Value {
	out := node(forward, of)
	out.back = func() {
		if of.requiresGrad {
			tensor.AddInPlace(of.ensureGrad(), out.Grad)
		}
	}
	return out
}

// Reshape reinterprets a's contiguous data with a new shape (same element
// count). Gradients flow through element-for-element.
func Reshape(a *Value, shape ...int) *Value {
	out := node(a.T.Reshape(shape...), a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, v := range out.Grad.Data {
			g.Data[i] += v
		}
	}
	return out
}

// SliceCols returns columns [lo, hi) of a rank-2 value; gradients
// scatter-add back into the source columns. Used to split a fused QKV
// projection into its three heads.
func SliceCols(a *Value, lo, hi int) *Value {
	n, m := a.T.Dim(0), a.T.Dim(1)
	w := hi - lo
	res := tensor.New(n, w)
	for i := 0; i < n; i++ {
		copy(res.Data[i*w:(i+1)*w], a.T.Data[i*m+lo:i*m+hi])
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < n; i++ {
			src := out.Grad.Data[i*w : (i+1)*w]
			dst := g.Data[i*m+lo : i*m+hi]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return out
}

// CrossEntropyLogits computes mean cross-entropy between row logits and
// integer class labels, returning a scalar value. It panics if the label
// count differs from the logit row count.
func CrossEntropyLogits(logits *Value, labels []int) *Value {
	n, c := logits.T.Dim(0), logits.T.Dim(1)
	if len(labels) != n {
		panic("autograd: label count mismatch")
	}
	probs := tensor.SoftmaxRows(logits.T)
	var loss float64
	for i, y := range labels {
		p := float64(probs.Data[i*c+y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	loss /= float64(n)
	out := node(tensor.FromSlice([]float32{float32(loss)}, 1), logits)
	out.back = func() {
		if !logits.requiresGrad {
			return
		}
		g := logits.ensureGrad()
		scale := out.Grad.Data[0] / float32(n)
		for i, y := range labels {
			row := probs.Data[i*c : (i+1)*c]
			gr := g.Data[i*c : (i+1)*c]
			for j, p := range row {
				d := p
				if j == y {
					d -= 1
				}
				gr[j] += d * scale
			}
		}
	}
	return out
}

// MSE computes mean((a−b)²) as a scalar value with gradients into both
// operands. It panics on size mismatch.
func MSE(a, b *Value) *Value {
	if a.T.Size() != b.T.Size() {
		panic("autograd: MSE size mismatch")
	}
	var loss float64
	for i := range a.T.Data {
		d := float64(a.T.Data[i] - b.T.Data[i])
		loss += d * d
	}
	n := float64(a.T.Size())
	loss /= n
	out := node(tensor.FromSlice([]float32{float32(loss)}, 1), a, b)
	out.back = func() {
		scale := out.Grad.Data[0] * 2 / float32(n)
		if a.requiresGrad {
			g := a.ensureGrad()
			for i := range a.T.Data {
				g.Data[i] += scale * (a.T.Data[i] - b.T.Data[i])
			}
		}
		if b.requiresGrad {
			g := b.ensureGrad()
			for i := range b.T.Data {
				g.Data[i] += scale * (b.T.Data[i] - a.T.Data[i])
			}
		}
	}
	return out
}

// SumSquares returns Σx² as a scalar value (used for the reconstruction
// loss ‖AW − ÂW‖² in Eq. 1).
func SumSquares(a *Value) *Value {
	var s float64
	for _, v := range a.T.Data {
		s += float64(v) * float64(v)
	}
	out := node(tensor.FromSlice([]float32{float32(s)}, 1), a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		scale := out.Grad.Data[0] * 2
		for i, v := range a.T.Data {
			g.Data[i] += scale * v
		}
	}
	return out
}

// Sigmoid applies 1/(1+e^{−x}) elementwise.
func Sigmoid(a *Value) *Value {
	res := a.T.Clone()
	for i, v := range res.Data {
		res.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, y := range out.T.Data {
			g.Data[i] += out.Grad.Data[i] * y * (1 - y)
		}
	}
	return out
}

// Dropout zeroes each element with probability p during training and
// scales the survivors by 1/(1−p) (inverted dropout). With rng == nil it
// is the identity (inference mode). It panics if p ≥ 1.
func Dropout(a *Value, p float64, rng *rand.Rand) *Value {
	if rng == nil || p <= 0 {
		return a
	}
	if p >= 1 {
		panic("autograd: dropout probability must be < 1")
	}
	mask := make([]float32, a.T.Size())
	scale := float32(1 / (1 - p))
	res := a.T.Clone()
	for i := range mask {
		if rng.Float64() >= p {
			mask[i] = scale
		}
		res.Data[i] *= mask[i]
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, m := range mask {
			g.Data[i] += out.Grad.Data[i] * m
		}
	}
	return out
}

// LogSoftmaxRows applies log-softmax along each row (numerically stable).
func LogSoftmaxRows(a *Value) *Value {
	n, m := a.T.Dim(0), a.T.Dim(1)
	res := tensor.New(n, m)
	soft := tensor.SoftmaxRows(a.T)
	for i := range res.Data {
		res.Data[i] = float32(math.Log(float64(soft.Data[i]) + 1e-20))
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i := 0; i < n; i++ {
			dy := out.Grad.Data[i*m : (i+1)*m]
			s := soft.Data[i*m : (i+1)*m]
			var sum float32
			for _, v := range dy {
				sum += v
			}
			gr := g.Data[i*m : (i+1)*m]
			for j := range gr {
				gr[j] += dy[j] - s[j]*sum
			}
		}
	}
	return out
}

// GatherRows selects the given rows of a rank-2 value; gradients
// scatter-add back. Unlike Embedding, the source is any intermediate
// value, not a parameter table.
func GatherRows(a *Value, rows []int) *Value {
	d := a.T.Dim(1)
	res := tensor.New(len(rows), d)
	for i, r := range rows {
		copy(res.Data[i*d:(i+1)*d], a.T.Row(r))
	}
	out := node(res, a)
	out.back = func() {
		if !a.requiresGrad {
			return
		}
		g := a.ensureGrad()
		for i, r := range rows {
			dst := g.Data[r*d : (r+1)*d]
			src := out.Grad.Data[i*d : (i+1)*d]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
	return out
}

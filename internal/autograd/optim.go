package autograd

import "math"

// Adam is the Adam optimizer (Kingma & Ba). The paper calibrates eLUT-NN
// models with learning rates 1e-5–5e-5; Adam is the standard choice for
// transformer fine-tuning.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	params  []*Value
	m, v    [][]float32
	step    int
	ClipMax float64 // if > 0, gradients are clipped to this global L2 norm
}

// NewAdam creates an Adam optimizer over params with standard betas.
func NewAdam(lr float64, params ...*Value) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([][]float32, len(params))
	a.v = make([][]float32, len(params))
	for i, p := range params {
		a.m[i] = make([]float32, p.T.Size())
		a.v[i] = make([]float32, p.T.Size())
	}
	return a
}

// Params returns the parameter set being optimized.
func (a *Adam) Params() []*Value { return a.params }

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// Step applies one Adam update using the accumulated gradients.
func (a *Adam) Step() {
	a.step++
	if a.ClipMax > 0 {
		a.clip()
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			gf := float64(g)
			m[j] = float32(a.Beta1*float64(m[j]) + (1-a.Beta1)*gf)
			v[j] = float32(a.Beta2*float64(v[j]) + (1-a.Beta2)*gf*gf)
			mhat := float64(m[j]) / bc1
			vhat := float64(v[j]) / bc2
			p.T.Data[j] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
		}
	}
}

func (a *Adam) clip() {
	var norm float64
	for _, p := range a.params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			norm += float64(g) * float64(g)
		}
	}
	norm = math.Sqrt(norm)
	if norm <= a.ClipMax {
		return
	}
	scale := float32(a.ClipMax / norm)
	for _, p := range a.params {
		if p.Grad == nil {
			continue
		}
		for j := range p.Grad.Data {
			p.Grad.Data[j] *= scale
		}
	}
}

// SGD is a plain stochastic-gradient-descent optimizer, used by tests and
// the kmeans-refinement path where Adam's state is unnecessary.
type SGD struct {
	LR     float64
	params []*Value
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(lr float64, params ...*Value) *SGD {
	return &SGD{LR: lr, params: params}
}

// ZeroGrad clears all parameter gradients.
func (s *SGD) ZeroGrad() {
	for _, p := range s.params {
		p.ZeroGrad()
	}
}

// Step applies one gradient-descent update.
func (s *SGD) Step() {
	for _, p := range s.params {
		if p.Grad == nil {
			continue
		}
		lr := float32(s.LR)
		for j, g := range p.Grad.Data {
			p.T.Data[j] -= lr * g
		}
	}
}

// Package autograd implements a tape-based reverse-mode automatic
// differentiation engine over the tensor package.
//
// PIM-DL needs gradients in two places: to train the (small) reference
// transformers used by the accuracy experiments, and to run eLUT-NN
// calibration, where centroid codebooks are updated through a
// reconstruction loss and a straight-through estimator (paper §4.2,
// Eqs. 1–2). The engine is deliberately minimal: rank-2 tensors flow
// through a static set of operators, each of which records a closure that
// accumulates gradients into its inputs.
package autograd

import (
	"repro/internal/tensor"
)

// Value is a node in the autodiff graph: a tensor plus an optional gradient
// and the backward closure that produced it.
type Value struct {
	T    *tensor.Tensor
	Grad *tensor.Tensor

	requiresGrad bool
	back         func()
	prev         []*Value
}

// NewParam wraps t as a trainable leaf (gradient is accumulated).
func NewParam(t *tensor.Tensor) *Value {
	return &Value{T: t, requiresGrad: true}
}

// NewConst wraps t as a non-trainable leaf.
func NewConst(t *tensor.Tensor) *Value {
	return &Value{T: t}
}

// RequiresGrad reports whether this value participates in gradient
// computation.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

// node creates an interior graph node whose requiresGrad is inherited from
// its inputs.
func node(t *tensor.Tensor, prev ...*Value) *Value {
	rg := false
	for _, p := range prev {
		if p.requiresGrad {
			rg = true
			break
		}
	}
	return &Value{T: t, requiresGrad: rg, prev: prev}
}

// ensureGrad lazily allocates v's gradient buffer.
func (v *Value) ensureGrad() *tensor.Tensor {
	if v.Grad == nil {
		v.Grad = tensor.New(v.T.Shape()...)
	}
	return v.Grad
}

// ZeroGrad clears the accumulated gradient.
func (v *Value) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// Backward runs reverse-mode differentiation from v, which must be a
// scalar-shaped (1×1 or size-1) value (it panics otherwise). Gradients
// accumulate into every reachable Value with requiresGrad set.
func (v *Value) Backward() {
	if v.T.Size() != 1 {
		panic("autograd: Backward requires a scalar loss")
	}
	order := topoSort(v)
	v.ensureGrad()
	v.Grad.Fill(1)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.back != nil && n.requiresGrad {
			n.back()
		}
	}
}

func topoSort(root *Value) []*Value {
	var order []*Value
	seen := map[*Value]bool{}
	var visit func(*Value)
	visit = func(n *Value) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, p := range n.prev {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

package autograd

import (
	"math"

	"repro/internal/tensor"
)

// MultiHeadAttention computes scaled dot-product attention over q, k, v,
// each shaped (batch·seqLen)×hidden, with the hidden dimension split into
// heads. Rows are grouped per sequence: rows [s·seqLen, (s+1)·seqLen) form
// sequence s. The backward pass is hand-derived rather than composed from
// primitive ops, because attention is the hottest op in transformer
// training and the composed form would allocate hundreds of small nodes.
func MultiHeadAttention(q, k, v *Value, seqLen, heads int) *Value {
	return attention(q, k, v, seqLen, heads, false)
}

// MultiHeadAttentionCausal is the decoder-style variant: position i only
// attends to positions ≤ i. The mask is applied before the softmax, so
// both forward and backward automatically respect causality (masked
// probabilities are exactly zero).
func MultiHeadAttentionCausal(q, k, v *Value, seqLen, heads int) *Value {
	return attention(q, k, v, seqLen, heads, true)
}

// attention implements both attention variants; it panics unless seqLen
// divides the row count and heads divides the hidden width (the exported
// wrappers document this contract).
func attention(q, k, v *Value, seqLen, heads int, causal bool) *Value {
	n, hidden := q.T.Dim(0), q.T.Dim(1)
	if n%seqLen != 0 {
		panic("autograd: rows not divisible by seqLen")
	}
	if hidden%heads != 0 {
		panic("autograd: hidden not divisible by heads")
	}
	batch := n / seqLen
	dh := hidden / heads
	scale := float32(1 / math.Sqrt(float64(dh)))

	res := tensor.New(n, hidden)
	// probs[b][h] is the seqLen×seqLen attention matrix, kept for backward.
	probs := make([][]*tensor.Tensor, batch)

	extract := func(src *tensor.Tensor, b, h int) *tensor.Tensor {
		out := tensor.New(seqLen, dh)
		for i := 0; i < seqLen; i++ {
			row := src.Data[(b*seqLen+i)*hidden+h*dh:]
			copy(out.Data[i*dh:(i+1)*dh], row[:dh])
		}
		return out
	}
	scatterAdd := func(dst *tensor.Tensor, part *tensor.Tensor, b, h int) {
		for i := 0; i < seqLen; i++ {
			row := dst.Data[(b*seqLen+i)*hidden+h*dh:]
			src := part.Data[i*dh : (i+1)*dh]
			for j, pv := range src {
				row[j] += pv
			}
		}
	}

	for b := 0; b < batch; b++ {
		probs[b] = make([]*tensor.Tensor, heads)
		for h := 0; h < heads; h++ {
			qh := extract(q.T, b, h)
			kh := extract(k.T, b, h)
			vh := extract(v.T, b, h)
			scores := tensor.Scale(tensor.MatMulT(qh, kh), scale)
			if causal {
				maskUpper(scores)
			}
			p := tensor.SoftmaxRows(scores)
			probs[b][h] = p
			o := tensor.MatMul(p, vh)
			scatterAdd(res, o, b, h)
		}
	}

	out := node(res, q, k, v)
	out.back = func() {
		var gq, gk, gv *tensor.Tensor
		if q.requiresGrad {
			gq = q.ensureGrad()
		}
		if k.requiresGrad {
			gk = k.ensureGrad()
		}
		if v.requiresGrad {
			gv = v.ensureGrad()
		}
		for b := 0; b < batch; b++ {
			for h := 0; h < heads; h++ {
				p := probs[b][h]
				qh := extract(q.T, b, h)
				kh := extract(k.T, b, h)
				vh := extract(v.T, b, h)
				do := extract(out.Grad, b, h)

				if gv != nil {
					scatterAdd(gv, tensor.MatMul(tensor.Transpose(p), do), b, h)
				}
				// dP = dO·Vᵀ ; dS = P ⊙ (dP − rowsum(dP⊙P))
				dp := tensor.MatMulT(do, vh)
				ds := tensor.New(seqLen, seqLen)
				for i := 0; i < seqLen; i++ {
					pr := p.Data[i*seqLen : (i+1)*seqLen]
					dpr := dp.Data[i*seqLen : (i+1)*seqLen]
					var dot float32
					for j := range pr {
						dot += pr[j] * dpr[j]
					}
					dsr := ds.Data[i*seqLen : (i+1)*seqLen]
					for j := range pr {
						dsr[j] = pr[j] * (dpr[j] - dot)
					}
				}
				if gq != nil {
					scatterAdd(gq, tensor.Scale(tensor.MatMul(ds, kh), scale), b, h)
				}
				if gk != nil {
					scatterAdd(gk, tensor.Scale(tensor.MatMul(tensor.Transpose(ds), qh), scale), b, h)
				}
			}
		}
	}
	return out
}

// maskUpper sets the strict upper triangle of a square score matrix to a
// large negative value so softmax zeroes those positions.
func maskUpper(s *tensor.Tensor) {
	n := s.Dim(0)
	for i := 0; i < n; i++ {
		row := s.Row(i)
		for j := i + 1; j < n; j++ {
			row[j] = -1e9
		}
	}
}

package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartStopWritesProfiles: a start/stop cycle leaves non-empty
// cpu.pprof and heap.pprof files in a directory Start created itself.
func TestStartStopWritesProfiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles")
	stop, err := Start(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i) * 1.0000001
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

// TestStartTwiceFails: the runtime supports one CPU profile at a time;
// the second Start must surface that as an error, not a panic.
func TestStartTwiceFails(t *testing.T) {
	stop, err := Start(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Fatal(err)
		}
	}()
	if _, err := Start(t.TempDir()); err == nil {
		t.Fatal("second concurrent Start succeeded")
	}
}

// TestValidateDir pins the -pprof path validation contract.
func TestValidateDir(t *testing.T) {
	tmp := t.TempDir()
	file := filepath.Join(tmp, "f")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir string
		ok  bool
	}{
		{tmp, true},                          // existing directory
		{filepath.Join(tmp, "new"), true},    // creatable under existing parent
		{file, false},                        // exists but is a file
		{filepath.Join(file, "sub"), false},  // parent is a file
		{"/nonexistent/deep/profdir", false}, // missing parent chain
	}
	for _, c := range cases {
		err := ValidateDir(c.dir)
		if c.ok && err != nil {
			t.Fatalf("ValidateDir(%s) = %v, want nil", c.dir, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("ValidateDir(%s) accepted an unusable path", c.dir)
		}
	}
}

// Package prof wires Go's built-in pprof profilers to a flag-friendly
// start/stop pair: Start(dir) begins a CPU profile in dir/cpu.pprof and
// the returned stop function finalizes it and adds a post-GC heap
// profile in dir/heap.pprof. The commands expose it as -pprof <dir>;
// inspect the output with `go tool pprof <binary> <dir>/cpu.pprof`.
package prof

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Start creates dir if needed and begins CPU profiling into
// dir/cpu.pprof. The returned stop function stops the CPU profile and
// writes a heap profile (after a forced GC, so it reflects live memory)
// to dir/heap.pprof, returning the first error encountered.
func Start(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		_ = cpu.Close()
		return nil, fmt.Errorf("prof: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		first := cpu.Close()
		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			if first == nil {
				first = err
			}
			return firstErr(first)
		}
		runtime.GC() // heap profile of live objects, not garbage
		if err := pprof.WriteHeapProfile(heap); err != nil && first == nil {
			first = err
		}
		if err := heap.Close(); err != nil && first == nil {
			first = err
		}
		return firstErr(first)
	}, nil
}

func firstErr(err error) error {
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}

// ValidateDir rejects -pprof targets that cannot become a profile
// directory: an existing non-directory path, or a missing path whose
// parent directory does not exist (Start only creates the final
// component's chain under an existing parent by design — a deep typo
// should fail at flag-parse time, not after a long run).
func ValidateDir(dir string) error {
	if fi, err := os.Stat(dir); err == nil {
		if !fi.IsDir() {
			return fmt.Errorf("prof: %s exists and is not a directory", dir)
		}
		return nil
	}
	parent := filepath.Dir(dir)
	fi, err := os.Stat(parent)
	if err != nil {
		return fmt.Errorf("prof: parent directory %s does not exist", parent)
	}
	if !fi.IsDir() {
		return fmt.Errorf("prof: parent %s is not a directory", parent)
	}
	return nil
}

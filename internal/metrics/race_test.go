package metrics

import (
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentHammer drives every metric type from GOMAXPROCS
// goroutines simultaneously (run under -race by `make test-race`):
// totals must come out exact — sharded counters lose nothing — and the
// snapshot taken afterwards must be deterministically ordered.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pimdl_test_hammer_total", "hammered counter")
	fc := r.NewFloatCounter("pimdl_test_hammer_seconds_total", "hammered float counter")
	g := r.NewGauge("pimdl_test_hammer_depth", "hammered gauge")
	h := r.NewHistogram("pimdl_test_hammer_hist", "hammered histogram", ExpBuckets(1, 2, 10))
	fam := r.NewCounterFamily("pimdl_test_hammer_fam_total", "hammered family", "worker")

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%26))
			child := fam.With(label)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				fc.Add(0.5)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%1000 + 1))
				child.Inc()
			}
		}(w)
	}
	wg.Wait()

	n := int64(workers) * perWorker
	if got := c.Value(); got != n {
		t.Fatalf("counter %d, want %d (lost updates)", got, n)
	}
	// 0.5 sums exactly in binary floating point.
	if got := fc.Value(); got != float64(n)*0.5 {
		t.Fatalf("float counter %g, want %g", got, float64(n)*0.5)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge %g, want 0 (paired adds)", got)
	}
	if got := h.Count(); got != n {
		t.Fatalf("histogram count %d, want %d", got, n)
	}
	var famTotal int64
	for _, s := range r.Snapshot() {
		if s.Name == "pimdl_test_hammer_fam_total" {
			famTotal += int64(s.Value)
		}
	}
	if famTotal != n {
		t.Fatalf("family total %d, want %d", famTotal, n)
	}

	// Deterministic snapshot order: repeated snapshots agree exactly.
	first := r.Snapshot()
	second := r.Snapshot()
	if len(first) != len(second) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("snapshot differs at %d: %+v vs %+v", i, first[i], second[i])
		}
	}
	// Samples group by registered metric, and the groups appear in
	// name-sorted registration order.
	var groups []string
	for _, s := range first {
		base := s.Name
		for _, suffix := range []string{"_bucket", "_count", "_sum"} {
			base = strings.TrimSuffix(base, suffix)
		}
		if len(groups) == 0 || groups[len(groups)-1] != base {
			groups = append(groups, base)
		}
	}
	for i := 1; i < len(groups); i++ {
		if groups[i] < groups[i-1] {
			t.Fatalf("metric groups not name-sorted: %q after %q", groups[i], groups[i-1])
		}
	}
}

// TestConcurrentObserveAndSnapshot interleaves snapshotting with live
// writers — the reader must never race or crash, and every final total
// must land exactly once writers stop.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pimdl_test_live_total", "live counter")
	h := r.NewHistogram("pimdl_test_live_hist", "live histogram", LinearBuckets(10, 10, 8))

	stop := make(chan struct{})
	done := make(chan struct{})
	var writers sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 5000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}()
	}
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.Flatten()
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-done

	if got := c.Value(); got != int64(workers)*5000 {
		t.Fatalf("counter %d, want %d", got, int64(workers)*5000)
	}
	if got := h.Count(); got != int64(workers)*5000 {
		t.Fatalf("histogram %d, want %d", got, int64(workers)*5000)
	}
}

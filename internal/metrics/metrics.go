// Package metrics is the dependency-free observability layer of PIM-DL:
// a race-safe registry of counters, gauges and fixed-bucket histograms
// that every layer of the stack (pim simulator, engine, serving loop,
// worker pool) records into, with deterministic snapshot ordering and two
// expositions — expvar-compatible JSON and Prometheus text.
//
// The design goals, in order:
//
//   - Zero-allocation hot-path increments. Counter.Add and
//     Histogram.Observe perform only atomic operations; counters are
//     sharded across cache-line-padded cells so concurrent writers from
//     different Ps rarely contend on one cache line.
//
//   - Determinism where the repo's golden tests need it. Snapshot output
//     is sorted by series name, so two snapshots of identical activity
//     are byte-identical. Counter values are exact (integer adds);
//     FloatCounter sums are exact for the single-add-per-shard case the
//     pim layer exercises and otherwise accurate to float64 addition.
//
//   - No dependencies. Only the standard library is imported, so the
//     package is usable from every internal package without cycles.
//
// Naming convention (see DESIGN.md §10): every series is
// `pimdl_<layer>_<name>`, with `_total` suffix on monotonic counters and
// `_seconds`/`_bytes` unit suffixes, mirroring Prometheus practice.
//
// Metrics are enabled by default; setting the environment variable
// PIMDL_METRICS to "0", "off" or "false" disables all recording helpers
// (the registry still exists and snapshots report zeros), which is how
// the bench-overhead CI guard obtains its no-metrics baseline.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

var enabledFlag atomic.Bool

func init() {
	switch strings.ToLower(os.Getenv("PIMDL_METRICS")) {
	case "0", "off", "false":
		enabledFlag.Store(false)
	default:
		enabledFlag.Store(true)
	}
}

// Enabled reports whether the instrumentation helpers should record.
// Individual metric methods always work; Enabled is the cheap gate the
// per-layer recording code checks once per event batch.
//
//pimdl:hotpath
func Enabled() bool { return enabledFlag.Load() }

// SetEnabled turns recording on or off at runtime (tests, benchmarks).
func SetEnabled(on bool) { enabledFlag.Store(on) }

// numShards is the shard count of sharded counters; a power of two so
// the shard pick is a mask, and small enough that summing on read stays
// trivial.
const numShards = 8

// shard picks a shard for the calling goroutine. math/rand/v2's global
// generator is per-thread state in the runtime — no locks, no allocation
// — so concurrent writers spread across shards approximately per P.
//
//pimdl:hotpath
func shard() int { return int(rand.Uint64() & (numShards - 1)) }

// cell is one cache-line-padded counter shard (64-byte lines; the value
// occupies the first 8 bytes).
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// fcell is one padded float shard, stored as IEEE-754 bits.
type fcell struct {
	bits atomic.Uint64
	_    [56]byte
}

// Counter is a monotonically increasing integer counter. The zero value
// is unusable; obtain counters from a Registry.
type Counter struct {
	shards [numShards]cell
}

// Inc adds 1.
//
//pimdl:hotpath
func (c *Counter) Inc() { c.shards[shard()].v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic;
// this is not enforced on the hot path).
//
//pimdl:hotpath
func (c *Counter) Add(n int64) { c.shards[shard()].v.Add(n) }

// Value returns the current total across shards.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// FloatCounter is a monotonically increasing float64 counter, used where
// the recorded quantity is a modelled time in seconds. Adds are
// lock-free CAS loops on IEEE bits, sharded like Counter.
type FloatCounter struct {
	shards [numShards]fcell
}

// Add adds v.
//
//pimdl:hotpath
func (c *FloatCounter) Add(v float64) {
	s := &c.shards[shard()].bits
	for {
		old := s.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if s.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total across shards (summed in shard order,
// so the result is deterministic for a fixed set of shard values).
func (c *FloatCounter) Value() float64 {
	var t float64
	for i := range c.shards {
		t += math.Float64frombits(c.shards[i].bits.Load())
	}
	return t
}

// Gauge is a float64 value that can go up and down: queue depths, pool
// occupancy, configuration constants.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//pimdl:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
//
//pimdl:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger (peak trackers).
//
//pimdl:hotpath
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
//
//pimdl:hotpath
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with streaming quantiles: the
// bucket bounds are fixed at construction, observations are single
// atomic adds, and quantiles are interpolated from the bucket counts —
// no sample is ever stored, so memory stays constant under any load.
// Observed min and max are tracked exactly and clamp the interpolation,
// which makes single-observation quantiles exact.
type Histogram struct {
	bounds   []float64 // strictly increasing upper bounds
	counts   []atomic.Int64
	overflow atomic.Int64 // observations above bounds[len-1]
	count    atomic.Int64
	sumBits  atomic.Uint64
	minBits  atomic.Uint64 // +Inf until first observation
	maxBits  atomic.Uint64 // -Inf until first observation
	// exemplars[i] is the most recent nonzero trace ID observed into
	// bucket i (exemplars[len(bounds)] covers the overflow bucket);
	// 0 means "no exemplar". See ObserveExemplar.
	exemplars []atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)),
		exemplars: make([]atomic.Uint64, len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveExemplar is Observe plus an exemplar: the trace ID of the
// request this value came from is remembered for the bucket the value
// lands in (latest observation wins), linking the latency distribution
// back to a concrete request trace in the obs layer. A zero traceID
// records the value without touching the exemplar slot — zero is the
// "unsampled request" sentinel, and an unsampled trace ID could never
// be resolved anyway.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(traceID)
}

// Exemplars returns the per-bucket exemplar trace IDs keyed by bucket
// upper bound ("+Inf" for overflow), omitting empty slots. The result
// is a fresh map the caller may keep.
func (h *Histogram) Exemplars() map[string]uint64 {
	out := map[string]uint64{}
	for i := range h.exemplars {
		id := h.exemplars[i].Load()
		if id == 0 {
			continue
		}
		label := "+Inf"
		if i < len(h.bounds) {
			label = formatFloat(h.bounds[i])
		}
		out[label] = id
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Min returns the smallest observation (0 before any observation).
func (h *Histogram) Min() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation (0 before any observation).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile returns the q-th quantile (q in [0, 1], clamped) estimated by
// linear interpolation inside the bucket the rank lands in, clamped to
// the observed [min, max]. An empty histogram returns 0. NaN q returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	mn, mx := h.Min(), h.Max()
	var cum float64
	for i := range h.counts {
		ci := h.counts[i].Load()
		if ci == 0 {
			continue
		}
		c := float64(ci)
		if cum+c >= rank {
			lo := mn
			if i > 0 {
				lo = math.Max(mn, h.bounds[i-1])
			}
			hi := math.Min(mx, h.bounds[i])
			frac := (rank - cum) / c
			return clamp(lo+(hi-lo)*frac, mn, mx)
		}
		cum += c
	}
	// Rank lands in the overflow bucket: all we know is (last bound, max].
	return mx
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start, each factor times the previous. It panics if start <= 0,
// factor <= 1 or n < 1 (programmer-error contract, like the standard
// library's slice bounds).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%g, %g, %d) out of range", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced upper bounds starting at start
// with the given step. It panics if step <= 0 or n < 1 (programmer-error
// contract).
func LinearBuckets(start, step float64, n int) []float64 {
	if step <= 0 || n < 1 {
		panic(fmt.Sprintf("metrics: LinearBuckets(%g, %g, %d) out of range", start, step, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pimdl_test_events_total", "events")
	fc := r.NewFloatCounter("pimdl_test_seconds_total", "seconds")
	g := r.NewGauge("pimdl_test_depth", "depth")

	for i := 0; i < 10; i++ {
		c.Inc()
	}
	c.Add(5)
	if got := c.Value(); got != 15 {
		t.Fatalf("counter %d, want 15", got)
	}
	fc.Add(1.5)
	fc.Add(2.25)
	if got := fc.Value(); got != 3.75 {
		t.Fatalf("float counter %g, want 3.75", got)
	}
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge %g, want 3", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax lowered gauge to %g", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax %g, want 7", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("pimdl_test_latency_seconds", "latency", ExpBuckets(0.001, 2, 16))

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile %g, want 0", got)
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000.0) // uniform on (0, 1]
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if math.Abs(h.Sum()-500.5) > 1e-9 {
		t.Fatalf("sum %g, want 500.5", h.Sum())
	}
	if h.Min() != 0.001 || h.Max() != 1 {
		t.Fatalf("min/max %g/%g", h.Min(), h.Max())
	}
	// Uniform distribution: interpolated quantiles should be within one
	// bucket's width of the true value.
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 0.5, 0.3},
		{0.95, 0.95, 0.3},
		{0.99, 0.99, 0.3},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%g = %g, want %g +/- %g", tc.q, got, tc.want, tc.tol)
		}
	}
	// Quantiles are monotone in q and clamped to [min, max].
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("quantile %g outside observed range", v)
		}
		prev = v
	}
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Fatalf("NaN quantile %g", got)
	}
	if got := h.Quantile(-3); got != h.Min() {
		t.Fatalf("q<0 %g, want min %g", got, h.Min())
	}
	if got := h.Quantile(42); got != h.Max() {
		t.Fatalf("q>1 %g, want max %g", got, h.Max())
	}
}

func TestHistogramSingleObservationExactQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("pimdl_test_one", "one", ExpBuckets(0.001, 10, 6))
	h.Observe(0.42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.42 {
			t.Fatalf("q%g = %g, want exactly 0.42", q, got)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("pimdl_test_over", "over", []float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 200 {
		t.Fatalf("overflow quantile %g, want max 200", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	f := r.NewCounterFamily("pimdl_test_ops_total", "ops", "class")
	r.NewCounter("pimdl_test_a_total", "a")
	r.NewGauge("pimdl_test_z", "z")
	f.With("zeta").Add(3)
	f.With("alpha").Add(1)

	snap := r.Snapshot()
	keys := make([]string, len(snap))
	for i, s := range snap {
		keys[i] = s.Key()
	}
	want := []string{
		"pimdl_test_a_total",
		`pimdl_test_ops_total{class="alpha"}`,
		`pimdl_test_ops_total{class="zeta"}`,
		"pimdl_test_z",
	}
	if len(keys) != len(want) {
		t.Fatalf("keys %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key[%d] = %q, want %q (full: %v)", i, keys[i], want[i], keys)
		}
	}
	// Two snapshots of the same state are identical.
	again := r.Snapshot()
	for i := range snap {
		if snap[i] != again[i] {
			t.Fatalf("snapshot not stable at %d: %+v vs %+v", i, snap[i], again[i])
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("pimdl_test_dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("pimdl_test_dup", "y")
}

func TestWriteJSONAndPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("pimdl_test_events_total", "number of events")
	fam := r.NewFloatCounterFamily("pimdl_test_time_seconds_total", "time by phase", "phase")
	h := r.NewHistogram("pimdl_test_lat", "latency", []float64{0.5, 1})
	c.Add(7)
	fam.With("kernel").Add(0.25)
	h.Observe(0.3)
	h.Observe(0.7)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON invalid: %v\n%s", err, buf.String())
	}
	if doc["pimdl_test_events_total"].(float64) != 7 {
		t.Fatalf("JSON counter: %v", doc["pimdl_test_events_total"])
	}
	fm := doc["pimdl_test_time_seconds_total"].(map[string]any)
	if fm["kernel"].(float64) != 0.25 {
		t.Fatalf("JSON family: %v", fm)
	}
	hm := doc["pimdl_test_lat"].(map[string]any)
	if hm["count"].(float64) != 2 || hm["sum"].(float64) != 1 {
		t.Fatalf("JSON histogram: %v", hm)
	}

	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP pimdl_test_events_total number of events",
		"# TYPE pimdl_test_events_total counter",
		"pimdl_test_events_total 7",
		`pimdl_test_time_seconds_total{phase="kernel"} 0.25`,
		"# TYPE pimdl_test_lat histogram",
		`pimdl_test_lat_bucket{le="0.5"} 1`,
		`pimdl_test_lat_bucket{le="+Inf"} 2`,
		"pimdl_test_lat_count 2",
		"pimdl_test_lat_sum 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

func TestWriteFileFormats(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("pimdl_test_x_total", "x").Add(1)
	dir := t.TempDir()

	jsonPath := dir + "/snap.json"
	if err := r.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("not JSON: %s", data)
	}

	promPath := dir + "/snap.prom"
	if err := r.WriteFile(promPath); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# TYPE pimdl_test_x_total counter") {
		t.Fatalf("not prometheus text: %s", data)
	}

	if err := r.WriteFile("/nonexistent-dir-xyz/snap.json"); err == nil {
		t.Fatal("writing to a missing directory did not error")
	}
}

func TestFlattenKeys(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("pimdl_test_c_total", "c").Add(2)
	r.NewCounterFamily("pimdl_test_f_total", "f", "k").With("v").Add(3)
	flat := r.Flatten()
	if flat["pimdl_test_c_total"] != 2 {
		t.Fatalf("flat counter: %v", flat)
	}
	if flat[`pimdl_test_f_total{k="v"}`] != 3 {
		t.Fatalf("flat family: %v", flat)
	}
}

func TestEnabledToggle(t *testing.T) {
	if !Enabled() {
		t.Fatal("metrics should default to enabled")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) had no effect")
	}
	SetEnabled(true)
}

func TestBucketHelpers(t *testing.T) {
	e := ExpBuckets(1, 2, 4)
	for i, want := range []float64{1, 2, 4, 8} {
		if e[i] != want {
			t.Fatalf("ExpBuckets %v", e)
		}
	}
	l := LinearBuckets(0.5, 0.5, 3)
	for i, want := range []float64{0.5, 1, 1.5} {
		if l[i] != want {
			t.Fatalf("LinearBuckets %v", l)
		}
	}
}

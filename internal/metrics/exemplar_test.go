package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func registryJSON(t *testing.T, r *Registry) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	return snap
}

func TestObserveExemplar(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.ObserveExemplar(0.5, 0xabc)
	h.ObserveExemplar(3.0, 0xdef)
	h.ObserveExemplar(100.0, 0x123) // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3: ObserveExemplar must also observe", h.Count())
	}
	ex := h.Exemplars()
	want := map[string]uint64{"1": 0xabc, "4": 0xdef, "+Inf": 0x123}
	if len(ex) != len(want) {
		t.Fatalf("Exemplars = %v, want %v", ex, want)
	}
	for le, id := range want {
		if ex[le] != id {
			t.Errorf("Exemplars[%q] = %x, want %x", le, ex[le], id)
		}
	}
	// Latest observation into a bucket wins.
	h.ObserveExemplar(0.7, 0x999)
	if got := h.Exemplars()["1"]; got != 0x999 {
		t.Errorf("latest-wins violated: bucket 1 exemplar %x, want 999", got)
	}
}

func TestObserveExemplarZeroIDLeavesSlotEmpty(t *testing.T) {
	h := newHistogram([]float64{1})
	h.ObserveExemplar(0.5, 0)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if ex := h.Exemplars(); len(ex) != 0 {
		t.Fatalf("zero trace ID must not record an exemplar: %v", ex)
	}
	// And must not overwrite an existing one either.
	h.ObserveExemplar(0.5, 0x42)
	h.ObserveExemplar(0.5, 0)
	if got := h.Exemplars()["1"]; got != 0x42 {
		t.Errorf("zero trace ID clobbered exemplar: %x", got)
	}
}

func TestHistogramJSONExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("pimdl_test_exemplar_seconds", "t", []float64{1, 2})
	plain := r.NewHistogram("pimdl_test_plain_seconds", "t", []float64{1})
	plain.Observe(0.5)

	// Without exemplars the histogram document must not carry the key.
	snap := registryJSON(t, r)
	doc := snap["pimdl_test_plain_seconds"].(map[string]any)
	if _, ok := doc["exemplars"]; ok {
		t.Error("exemplar-free histogram must encode without an exemplars key")
	}

	h.ObserveExemplar(0.5, 0x1a2b)
	snap = registryJSON(t, r)
	doc = snap["pimdl_test_exemplar_seconds"].(map[string]any)
	ex, ok := doc["exemplars"].(map[string]any)
	if !ok {
		t.Fatalf("exemplars key missing or mistyped: %v", doc["exemplars"])
	}
	got, _ := ex["1"].(string)
	if got != "0000000000001a2b" {
		t.Errorf("exemplar = %q, want 16-hex 0000000000001a2b", got)
	}
	if len(got) != 16 || strings.Trim(got, "0123456789abcdef") != "" {
		t.Errorf("exemplar %q is not 16 lowercase hex digits", got)
	}
}

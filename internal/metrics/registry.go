package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies a registered series for exposition.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Sample is one exposed series value. Histograms expand into several
// samples (`<name>_count`, `<name>_sum`, `<name>_bucket{le="..."}` and
// quantile samples); families expand into one sample per label value.
type Sample struct {
	Name  string // series name, e.g. pimdl_pim_tiles_executed_total
	Label string // `phase="kernel_xfer"` or "" for unlabeled series
	Value float64
}

// Key returns the flattened series identity: name alone, or
// name{label} for labeled samples.
func (s Sample) Key() string {
	if s.Label == "" {
		return s.Name
	}
	return s.Name + "{" + s.Label + "}"
}

// entry is one registered metric (or family).
type entry struct {
	name, help string
	kind       Kind
	collect    func(emit func(Sample))
	jsonValue  func() any
}

// Registry holds a set of named metrics. All methods are safe for
// concurrent use; registration normally happens in package init blocks
// and reads happen at snapshot time.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every internal layer
// registers into.
func Default() *Registry { return defaultRegistry }

// register panics on duplicate names: two packages claiming one series
// is a programmer error that would silently merge unrelated numbers.
func (r *Registry) register(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.name]; dup {
		panic("metrics: duplicate registration of " + e.name)
	}
	r.entries[e.name] = e
}

// NewCounter registers and returns an integer counter. Panics if name is
// already registered.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(&entry{
		name: name, help: help, kind: KindCounter,
		collect:   func(emit func(Sample)) { emit(Sample{Name: name, Value: float64(c.Value())}) },
		jsonValue: func() any { return c.Value() },
	})
	return c
}

// NewFloatCounter registers and returns a float64 counter. Panics if
// name is already registered.
func (r *Registry) NewFloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{}
	r.register(&entry{
		name: name, help: help, kind: KindCounter,
		collect:   func(emit func(Sample)) { emit(Sample{Name: name, Value: c.Value()}) },
		jsonValue: func() any { return c.Value() },
	})
	return c
}

// NewGauge registers and returns a gauge. Panics if name is already
// registered.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&entry{
		name: name, help: help, kind: KindGauge,
		collect:   func(emit func(Sample)) { emit(Sample{Name: name, Value: g.Value()}) },
		jsonValue: func() any { return g.Value() },
	})
	return g
}

// NewHistogram registers and returns a fixed-bucket histogram with the
// given strictly increasing upper bounds (an implicit +Inf bucket counts
// overflow). Panics if name is already registered or bounds are not
// strictly increasing.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram " + name + " bounds not strictly increasing")
		}
	}
	h := newHistogram(bounds)
	r.register(&entry{
		name: name, help: help, kind: KindHistogram,
		collect:   func(emit func(Sample)) { collectHistogram(name, h, emit) },
		jsonValue: func() any { return histogramJSON(h) },
	})
	return h
}

func collectHistogram(name string, h *Histogram, emit func(Sample)) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		emit(Sample{Name: name + "_bucket", Label: `le="` + formatFloat(b) + `"`, Value: float64(cum)})
	}
	cum += h.overflow.Load()
	emit(Sample{Name: name + "_bucket", Label: `le="+Inf"`, Value: float64(cum)})
	emit(Sample{Name: name + "_count", Value: float64(h.Count())})
	emit(Sample{Name: name + "_sum", Value: h.Sum()})
	for _, q := range [...]float64{0.5, 0.95, 0.99} {
		emit(Sample{Name: name, Label: `quantile="` + formatFloat(q) + `"`, Value: h.Quantile(q)})
	}
}

func histogramJSON(h *Histogram) any {
	buckets := map[string]int64{}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		buckets[formatFloat(b)] = cum
	}
	cum += h.overflow.Load()
	buckets["+Inf"] = cum
	doc := map[string]any{
		"count":   h.Count(),
		"sum":     h.Sum(),
		"min":     h.Min(),
		"max":     h.Max(),
		"buckets": buckets,
		"p50":     h.Quantile(0.5),
		"p95":     h.Quantile(0.95),
		"p99":     h.Quantile(0.99),
	}
	// Exemplars ride along only when some observation carried one, so
	// histograms outside the traced path encode exactly as before.
	if ex := h.Exemplars(); len(ex) > 0 {
		hexed := map[string]string{}
		for le, id := range ex {
			hexed[le] = fmt.Sprintf("%016x", id)
		}
		doc["exemplars"] = hexed
	}
	return doc
}

// CounterFamily is a set of Counters sharing one name, distinguished by
// a single label. Children are created on first use and live forever.
type CounterFamily struct {
	name, label string
	mu          sync.Mutex
	children    map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use. Callers on hot paths should cache the child.
func (f *CounterFamily) With(value string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[value]
	if !ok {
		c = &Counter{}
		f.children[value] = c
	}
	return c
}

// NewCounterFamily registers a labeled counter family (one label key).
// Panics if name is already registered.
func (r *Registry) NewCounterFamily(name, help, label string) *CounterFamily {
	f := &CounterFamily{name: name, label: label, children: map[string]*Counter{}}
	r.register(&entry{
		name: name, help: help, kind: KindCounter,
		collect: func(emit func(Sample)) {
			f.mu.Lock()
			defer f.mu.Unlock()
			for _, v := range f.sortedValuesLocked() {
				emit(Sample{Name: name, Label: label + `="` + v + `"`, Value: float64(f.children[v].Value())})
			}
		},
		jsonValue: func() any {
			f.mu.Lock()
			defer f.mu.Unlock()
			out := map[string]int64{}
			for v, c := range f.children {
				out[v] = c.Value()
			}
			return out
		},
	})
	return f
}

func (f *CounterFamily) sortedValuesLocked() []string {
	vals := make([]string, 0, len(f.children))
	for v := range f.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// FloatCounterFamily is CounterFamily for float64 counters (seconds).
type FloatCounterFamily struct {
	name, label string
	mu          sync.Mutex
	children    map[string]*FloatCounter
}

// With returns the child for the given label value, creating it on
// first use. Callers on hot paths should cache the child.
func (f *FloatCounterFamily) With(value string) *FloatCounter {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[value]
	if !ok {
		c = &FloatCounter{}
		f.children[value] = c
	}
	return c
}

// Sum returns the total across all children.
func (f *FloatCounterFamily) Sum() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var t float64
	for _, v := range f.sortedValuesLocked() {
		t += f.children[v].Value()
	}
	return t
}

func (f *FloatCounterFamily) sortedValuesLocked() []string {
	vals := make([]string, 0, len(f.children))
	for v := range f.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// NewFloatCounterFamily registers a labeled float counter family.
// Panics if name is already registered.
func (r *Registry) NewFloatCounterFamily(name, help, label string) *FloatCounterFamily {
	f := &FloatCounterFamily{name: name, label: label, children: map[string]*FloatCounter{}}
	r.register(&entry{
		name: name, help: help, kind: KindCounter,
		collect: func(emit func(Sample)) {
			f.mu.Lock()
			defer f.mu.Unlock()
			for _, v := range f.sortedValuesLocked() {
				emit(Sample{Name: name, Label: label + `="` + v + `"`, Value: f.children[v].Value()})
			}
		},
		jsonValue: func() any {
			f.mu.Lock()
			defer f.mu.Unlock()
			out := map[string]float64{}
			for v, c := range f.children {
				out[v] = c.Value()
			}
			return out
		},
	})
	return f
}

// sortedEntries returns the registered entries in name order.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*entry, len(names))
	for i, n := range names {
		out[i] = r.entries[n]
	}
	return out
}

// Snapshot returns every sample, ordered by registered name (and, within
// a family, by label value) — deterministic for deterministic activity.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, e := range r.sortedEntries() {
		e.collect(func(s Sample) { out = append(out, s) })
	}
	return out
}

// Flatten returns the snapshot as a flat map from series key
// (name or name{label}) to value — the form the bench report embeds.
func (r *Registry) Flatten() map[string]float64 {
	out := map[string]float64{}
	for _, s := range r.Snapshot() {
		out[s.Key()] = s.Value
	}
	return out
}

// WriteJSON writes the registry as one indented JSON object mapping
// series name to value — scalars for counters and gauges, per-label
// objects for families, and {count, sum, min, max, buckets, p50/p95/p99}
// objects for histograms. The document is expvar-compatible (each key is
// a valid expvar Var value) and key-sorted, so identical states encode
// byte-identically.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := map[string]any{}
	for _, e := range r.sortedEntries() {
		doc[e.name] = e.jsonValue()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (HELP/TYPE comments plus one line per sample).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, e := range r.sortedEntries() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.name, e.help, e.name, e.kind); err != nil {
			return err
		}
		var werr error
		e.collect(func(s Sample) {
			if werr != nil {
				return
			}
			if s.Label == "" {
				_, werr = fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value))
			} else {
				_, werr = fmt.Fprintf(w, "%s{%s} %s\n", s.Name, s.Label, formatFloat(s.Value))
			}
		})
		if werr != nil {
			return werr
		}
	}
	return nil
}

// WriteFile writes a snapshot of r to path, choosing the format by
// extension: ".prom" and ".txt" get Prometheus text, everything else the
// JSON exposition.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".prom", ".txt":
		err = r.WritePrometheus(f)
	default:
		err = r.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics: writing %s: %w", path, err)
	}
	return nil
}

// ValidateOutputPath rejects -metrics targets that cannot receive a
// snapshot: a path that exists as a directory, or one whose parent
// directory does not exist. Commands call this at flag-parse time so a
// typo'd path fails before the run, not after it.
func ValidateOutputPath(path string) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return fmt.Errorf("metrics: %s is a directory", path)
	}
	dir := filepath.Dir(path)
	fi, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("metrics: parent directory %s does not exist", dir)
	}
	if !fi.IsDir() {
		return fmt.Errorf("metrics: parent %s is not a directory", dir)
	}
	return nil
}

// formatFloat renders a float the shortest way that round-trips —
// Prometheus-style sample formatting, also used for bucket labels.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

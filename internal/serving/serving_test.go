package serving

import (
	"math"
	"math/rand"
	"testing"
)

// constLat ignores batch size (useful for queueing-behaviour tests).
func constLat(d float64) LatencyModel {
	return func(int) float64 { return d }
}

func TestSingleRequest(t *testing.T) {
	tr, err := Simulate([]float64{1.0}, constLat(0.5), Policy{MaxBatch: 4, MaxWait: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Completions) != 1 {
		t.Fatalf("completions %d", len(tr.Completions))
	}
	c := tr.Completions[0]
	// Lone request waits out MaxWait, then runs.
	if math.Abs(c.Start-1.2) > 1e-9 || math.Abs(c.Done-1.7) > 1e-9 {
		t.Fatalf("start %g done %g", c.Start, c.Done)
	}
}

func TestFullBatchDispatchesImmediately(t *testing.T) {
	arr := []float64{0, 0, 0, 0}
	tr, err := Simulate(arr, constLat(1), Policy{MaxBatch: 4, MaxWait: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Batches != 1 {
		t.Fatalf("batches %d, want 1", tr.Batches)
	}
	if tr.Completions[0].Start != 0 {
		t.Fatalf("full batch should not wait, started %g", tr.Completions[0].Start)
	}
}

func TestBatchSplitAtMaxBatch(t *testing.T) {
	arr := make([]float64, 10) // all at t=0, MaxBatch 4 → 4+4+2
	tr, err := Simulate(arr, constLat(1), Policy{MaxBatch: 4, MaxWait: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Batches != 3 {
		t.Fatalf("batches %d, want 3", tr.Batches)
	}
	if len(tr.Completions) != 10 {
		t.Fatalf("completions %d", len(tr.Completions))
	}
	// FIFO order: later batches have strictly later starts.
	if !(tr.Completions[0].Start < tr.Completions[4].Start &&
		tr.Completions[4].Start < tr.Completions[8].Start) {
		t.Fatal("batches out of order")
	}
}

func TestMaxWaitBoundsQueueing(t *testing.T) {
	// Requests trickle in slower than MaxBatch fills: each should wait at
	// most MaxWait + service time of the batch ahead.
	arr := []float64{0, 1, 2, 3, 4, 5}
	tr, err := Simulate(arr, constLat(0.1), Policy{MaxBatch: 8, MaxWait: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Completions {
		if c.Latency() > 0.3+0.1+0.1+1e-9 {
			t.Fatalf("latency %g exceeds wait+service bound", c.Latency())
		}
	}
}

func TestRejectsUnsortedArrivals(t *testing.T) {
	if _, err := Simulate([]float64{2, 1}, constLat(1), Policy{MaxBatch: 2}); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
}

func TestRejectsBadPolicy(t *testing.T) {
	if _, err := Simulate(nil, constLat(1), Policy{MaxBatch: 0}); err == nil {
		t.Fatal("zero MaxBatch accepted")
	}
	if _, err := Simulate(nil, constLat(1), Policy{MaxBatch: 1, MaxWait: -1}); err == nil {
		t.Fatal("negative MaxWait accepted")
	}
}

func TestThroughputSaturation(t *testing.T) {
	// Under overload, throughput approaches MaxBatch / latency(MaxBatch).
	rng := rand.New(rand.NewSource(1))
	lat, err := InterpolatedLatency([]int{1, 8, 64}, []float64{0.1, 0.2, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	arr := PoissonArrivals(rng, 1000, 4000) // far beyond capacity
	tr, err := Simulate(arr, lat, Policy{MaxBatch: 64, MaxWait: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cap := 64 / lat(64)
	if got := tr.Throughput(); got < cap*0.8 || got > cap*1.05 {
		t.Fatalf("saturated throughput %g, capacity %g", got, cap)
	}
	if tr.MeanBatch() < 48 {
		t.Fatalf("overloaded server should run near-full batches, got %.1f", tr.MeanBatch())
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	lat, _ := InterpolatedLatency([]int{1, 16}, []float64{0.05, 0.2})
	pol := Policy{MaxBatch: 16, MaxWait: 0.02}
	run := func(rate float64) float64 {
		rng := rand.New(rand.NewSource(2))
		tr, err := Simulate(PoissonArrivals(rng, rate, 2000), lat, pol)
		if err != nil {
			t.Fatal(err)
		}
		return tr.MeanLatency()
	}
	light := run(20)
	heavy := run(200)
	if heavy <= light {
		t.Fatalf("latency should grow with load: %g vs %g", heavy, light)
	}
}

func TestPercentileOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lat, _ := InterpolatedLatency([]int{1, 8}, []float64{0.05, 0.1})
	tr, err := Simulate(PoissonArrivals(rng, 50, 1000), lat, Policy{MaxBatch: 8, MaxWait: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	p50, p99 := tr.Percentile(50), tr.Percentile(99)
	if p50 > p99 {
		t.Fatalf("p50 %g > p99 %g", p50, p99)
	}
	if m := tr.MeanLatency(); m < p50*0.3 || m > p99 {
		t.Fatalf("mean %g outside [p50·0.3, p99] sanity window (%g, %g)", m, p50, p99)
	}
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arr := PoissonArrivals(rng, 100, 10000)
	rate := float64(len(arr)) / arr[len(arr)-1]
	if rate < 90 || rate > 110 {
		t.Fatalf("empirical rate %g, want ≈100", rate)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestInterpolatedLatency(t *testing.T) {
	lat, err := InterpolatedLatency([]int{2, 4, 8}, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if lat(1) != 1 || lat(2) != 1 {
		t.Fatal("below-range should clamp to first sample")
	}
	if lat(3) != 1.5 || lat(6) != 3 {
		t.Fatalf("interpolation wrong: %g %g", lat(3), lat(6))
	}
	if lat(12) != 6 {
		t.Fatalf("extrapolation wrong: %g", lat(12))
	}
	if _, err := InterpolatedLatency([]int{4, 2}, []float64{1, 2}); err == nil {
		t.Fatal("unsorted samples accepted")
	}
	if _, err := InterpolatedLatency(nil, nil); err == nil {
		t.Fatal("empty samples accepted")
	}
}

func TestEmptyArrivals(t *testing.T) {
	tr, err := Simulate(nil, constLat(1), Policy{MaxBatch: 4, MaxWait: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Completions) != 0 || tr.Throughput() != 0 || tr.MeanLatency() != 0 {
		t.Fatal("empty run should be empty")
	}
}

package serving

import (
	"math"
	"math/rand"
	"testing"
)

// constLat ignores batch size (useful for queueing-behaviour tests).
func constLat(d float64) LatencyModel {
	return func(int) float64 { return d }
}

func TestSingleRequest(t *testing.T) {
	tr, err := Simulate([]float64{1.0}, constLat(0.5), Policy{MaxBatch: 4, MaxWait: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Completions) != 1 {
		t.Fatalf("completions %d", len(tr.Completions))
	}
	c := tr.Completions[0]
	// Lone request waits out MaxWait, then runs.
	if math.Abs(c.Start-1.2) > 1e-9 || math.Abs(c.Done-1.7) > 1e-9 {
		t.Fatalf("start %g done %g", c.Start, c.Done)
	}
}

func TestFullBatchDispatchesImmediately(t *testing.T) {
	arr := []float64{0, 0, 0, 0}
	tr, err := Simulate(arr, constLat(1), Policy{MaxBatch: 4, MaxWait: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Batches != 1 {
		t.Fatalf("batches %d, want 1", tr.Batches)
	}
	if tr.Completions[0].Start != 0 {
		t.Fatalf("full batch should not wait, started %g", tr.Completions[0].Start)
	}
}

func TestBatchSplitAtMaxBatch(t *testing.T) {
	arr := make([]float64, 10) // all at t=0, MaxBatch 4 → 4+4+2
	tr, err := Simulate(arr, constLat(1), Policy{MaxBatch: 4, MaxWait: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Batches != 3 {
		t.Fatalf("batches %d, want 3", tr.Batches)
	}
	if len(tr.Completions) != 10 {
		t.Fatalf("completions %d", len(tr.Completions))
	}
	// FIFO order: later batches have strictly later starts.
	if !(tr.Completions[0].Start < tr.Completions[4].Start &&
		tr.Completions[4].Start < tr.Completions[8].Start) {
		t.Fatal("batches out of order")
	}
}

func TestMaxWaitBoundsQueueing(t *testing.T) {
	// Requests trickle in slower than MaxBatch fills: each should wait at
	// most MaxWait + service time of the batch ahead.
	arr := []float64{0, 1, 2, 3, 4, 5}
	tr, err := Simulate(arr, constLat(0.1), Policy{MaxBatch: 8, MaxWait: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Completions {
		if c.Latency() > 0.3+0.1+0.1+1e-9 {
			t.Fatalf("latency %g exceeds wait+service bound", c.Latency())
		}
	}
}

func TestRejectsUnsortedArrivals(t *testing.T) {
	if _, err := Simulate([]float64{2, 1}, constLat(1), Policy{MaxBatch: 2}); err == nil {
		t.Fatal("unsorted arrivals accepted")
	}
}

func TestRejectsBadPolicy(t *testing.T) {
	if _, err := Simulate(nil, constLat(1), Policy{MaxBatch: 0}); err == nil {
		t.Fatal("zero MaxBatch accepted")
	}
	if _, err := Simulate(nil, constLat(1), Policy{MaxBatch: 1, MaxWait: -1}); err == nil {
		t.Fatal("negative MaxWait accepted")
	}
}

func TestThroughputSaturation(t *testing.T) {
	// Under overload, throughput approaches MaxBatch / latency(MaxBatch).
	rng := rand.New(rand.NewSource(1))
	lat, err := InterpolatedLatency([]int{1, 8, 64}, []float64{0.1, 0.2, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	arr := PoissonArrivals(rng, 1000, 4000) // far beyond capacity
	tr, err := Simulate(arr, lat, Policy{MaxBatch: 64, MaxWait: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cap := 64 / lat(64)
	if got := tr.Throughput(); got < cap*0.8 || got > cap*1.05 {
		t.Fatalf("saturated throughput %g, capacity %g", got, cap)
	}
	if tr.MeanBatch() < 48 {
		t.Fatalf("overloaded server should run near-full batches, got %.1f", tr.MeanBatch())
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	lat, _ := InterpolatedLatency([]int{1, 16}, []float64{0.05, 0.2})
	pol := Policy{MaxBatch: 16, MaxWait: 0.02}
	run := func(rate float64) float64 {
		rng := rand.New(rand.NewSource(2))
		tr, err := Simulate(PoissonArrivals(rng, rate, 2000), lat, pol)
		if err != nil {
			t.Fatal(err)
		}
		return tr.MeanLatency()
	}
	light := run(20)
	heavy := run(200)
	if heavy <= light {
		t.Fatalf("latency should grow with load: %g vs %g", heavy, light)
	}
}

func TestPercentileOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lat, _ := InterpolatedLatency([]int{1, 8}, []float64{0.05, 0.1})
	tr, err := Simulate(PoissonArrivals(rng, 50, 1000), lat, Policy{MaxBatch: 8, MaxWait: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	p50, p99 := tr.Percentile(50), tr.Percentile(99)
	if p50 > p99 {
		t.Fatalf("p50 %g > p99 %g", p50, p99)
	}
	if m := tr.MeanLatency(); m < p50*0.3 || m > p99 {
		t.Fatalf("mean %g outside [p50·0.3, p99] sanity window (%g, %g)", m, p50, p99)
	}
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arr := PoissonArrivals(rng, 100, 10000)
	rate := float64(len(arr)) / arr[len(arr)-1]
	if rate < 90 || rate > 110 {
		t.Fatalf("empirical rate %g, want ≈100", rate)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestInterpolatedLatency(t *testing.T) {
	lat, err := InterpolatedLatency([]int{2, 4, 8}, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if lat(1) != 1 || lat(2) != 1 {
		t.Fatal("below-range should clamp to first sample")
	}
	if lat(3) != 1.5 || lat(6) != 3 {
		t.Fatalf("interpolation wrong: %g %g", lat(3), lat(6))
	}
	if lat(12) != 6 {
		t.Fatalf("extrapolation wrong: %g", lat(12))
	}
	if _, err := InterpolatedLatency([]int{4, 2}, []float64{1, 2}); err == nil {
		t.Fatal("unsorted samples accepted")
	}
	if _, err := InterpolatedLatency(nil, nil); err == nil {
		t.Fatal("empty samples accepted")
	}
}

// TestZeroWaitGreedyDispatch pins the documented MaxWait == 0 semantics:
// with MaxBatch > 1 the policy is greedy — whatever is queued when the
// server frees up dispatches immediately, so nothing starves waiting for
// co-riders, and batches > 1 still form under load.
func TestZeroWaitGreedyDispatch(t *testing.T) {
	pol := Policy{MaxBatch: 4, MaxWait: 0}
	if err := pol.Validate(); err != nil {
		t.Fatalf("zero-wait policy rejected: %v", err)
	}
	// Trickle: each request dispatches alone the moment it arrives.
	tr, err := Simulate([]float64{0, 10, 20}, constLat(1), pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Completions) != 3 || tr.Batches != 3 {
		t.Fatalf("trickle: %d completions in %d batches", len(tr.Completions), tr.Batches)
	}
	for _, c := range tr.Completions {
		if c.Start != c.Arrival {
			t.Fatalf("zero-wait request waited: arrival %g start %g", c.Arrival, c.Start)
		}
	}
	// Burst while busy: followers ride together once the server frees up.
	tr, err = Simulate([]float64{0, 0.1, 0.2, 0.3}, constLat(1), pol)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Batches != 2 || tr.Completions[1].Batch != 3 {
		t.Fatalf("burst under zero wait: %d batches, second batch size %d",
			tr.Batches, tr.Completions[1].Batch)
	}
}

// TestRobustZeroEqualsSimulate: a zero Robustness must reproduce
// Simulate's trace event for event.
func TestRobustZeroEqualsSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lat, _ := InterpolatedLatency([]int{1, 8}, []float64{0.05, 0.1})
	arr := PoissonArrivals(rng, 80, 500)
	pol := Policy{MaxBatch: 8, MaxWait: 0.05}
	plain, err := Simulate(arr, lat, pol)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := SimulateRobust(arr, lat, pol, Robustness{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Completions) != len(robust.Completions) || plain.Batches != robust.Batches {
		t.Fatalf("shape differs: %d/%d vs %d/%d",
			len(plain.Completions), plain.Batches, len(robust.Completions), robust.Batches)
	}
	for i := range plain.Completions {
		if plain.Completions[i] != robust.Completions[i] {
			t.Fatalf("completion %d differs: %+v vs %+v", i, plain.Completions[i], robust.Completions[i])
		}
	}
	if robust.Retries != 0 || robust.Timeouts != 0 || robust.Failures != 0 || robust.Expired != 0 {
		t.Fatalf("zero robustness produced counters: %+v", robust)
	}
}

// TestFlakyBackendRetries: a backend that always fails exhausts the retry
// budget on every batch, dropping all requests as failures.
func TestFlakyBackendRetries(t *testing.T) {
	arr := []float64{0, 0, 0, 0}
	tr, err := SimulateRobust(arr, constLat(0.5), Policy{MaxBatch: 4, MaxWait: 0},
		Robustness{FailRate: 1, MaxRetries: 2, Backoff: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Completions) != 0 || tr.Failures != 4 {
		t.Fatalf("always-failing backend served requests: %+v", tr)
	}
	if tr.Retries != 2 {
		t.Fatalf("retries %d, want MaxRetries=2", tr.Retries)
	}
	// Server busy through 3 attempts + 2 backoffs: 3·0.5 + 0.1 + 0.2.
	if math.Abs(tr.Makespan-1.8) > 1e-9 {
		t.Fatalf("makespan %g, want 1.8", tr.Makespan)
	}
}

// TestFlakyBackendRecoversAndSlows: moderate flakiness serves everything
// but inflates latency deterministically for a fixed seed.
func TestFlakyBackendRecoversAndSlows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arr := PoissonArrivals(rng, 50, 400)
	pol := Policy{MaxBatch: 8, MaxWait: 0.02}
	rob := Robustness{FailRate: 0.3, MaxRetries: 5, Backoff: 0.01, Seed: 7}
	flaky, err := SimulateRobust(arr, constLat(0.05), pol, rob)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := SimulateRobust(arr, constLat(0.05), pol, Robustness{})
	if err != nil {
		t.Fatal(err)
	}
	if len(flaky.Completions)+flaky.Failures != len(arr) {
		t.Fatalf("requests lost: %d served + %d failed != %d",
			len(flaky.Completions), flaky.Failures, len(arr))
	}
	if flaky.Retries == 0 {
		t.Fatal("30% fail rate produced no retries")
	}
	if flaky.MeanLatency() <= clean.MeanLatency() {
		t.Fatalf("flaky backend not slower: %g vs %g", flaky.MeanLatency(), clean.MeanLatency())
	}
	again, err := SimulateRobust(arr, constLat(0.05), pol, rob)
	if err != nil {
		t.Fatal(err)
	}
	if again.Retries != flaky.Retries || again.MeanLatency() != flaky.MeanLatency() {
		t.Fatal("flaky run not deterministic for fixed seed")
	}
}

// TestDeadlineSheddingAndExpiry: an overloaded server with per-request
// deadlines sheds stale requests as timeouts and flags served-but-late
// completions; every request is accounted for exactly once.
func TestDeadlineSheddingAndExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	arr := PoissonArrivals(rng, 200, 500) // far beyond 1/0.1 capacity
	tr, err := SimulateRobust(arr, constLat(0.1), Policy{MaxBatch: 4, MaxWait: 0.01},
		Robustness{Deadline: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Timeouts == 0 {
		t.Fatal("overload with deadlines produced no timeouts")
	}
	if len(tr.Completions)+tr.Timeouts+tr.Failures != len(arr) {
		t.Fatalf("conservation broken: %d + %d + %d != %d",
			len(tr.Completions), tr.Timeouts, tr.Failures, len(arr))
	}
	nExpired := 0
	for _, c := range tr.Completions {
		if c.Expired {
			nExpired++
			if c.Done <= c.Arrival+0.25 {
				t.Fatal("completion flagged expired but met its deadline")
			}
		}
	}
	if nExpired != tr.Expired {
		t.Fatalf("expired count %d != flagged completions %d", tr.Expired, nExpired)
	}
	// No served request starts after its deadline already passed.
	for _, c := range tr.Completions {
		if c.Start >= c.Arrival+0.25 {
			t.Fatalf("request served after deadline passed unserved: %+v", c)
		}
	}
}

// TestRobustnessValidate rejects out-of-range parameters.
func TestRobustnessValidate(t *testing.T) {
	bad := []Robustness{
		{Deadline: -1},
		{FailRate: -0.1},
		{FailRate: 1.1},
		{MaxRetries: -1},
		{Backoff: -0.5},
	}
	for i, rob := range bad {
		if _, err := SimulateRobust(nil, constLat(1), Policy{MaxBatch: 1}, rob); err == nil {
			t.Fatalf("bad robustness %d accepted: %+v", i, rob)
		}
	}
}

func TestEmptyArrivals(t *testing.T) {
	tr, err := Simulate(nil, constLat(1), Policy{MaxBatch: 4, MaxWait: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Completions) != 0 || tr.Throughput() != 0 || tr.MeanLatency() != 0 {
		t.Fatal("empty run should be empty")
	}
}

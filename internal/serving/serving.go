// Package serving simulates the batched cloud-serving scenario that
// motivates PIM-DL (§1: "cloud-based scenarios often require batched
// inference"): requests arrive over time, a batcher groups them under a
// max-batch/max-wait policy, and a single inference backend whose latency
// is a function of batch size (taken from the engine's estimates) serves
// each batch. The simulator produces per-request latency statistics, so
// the throughput/latency trade-off between PIM-DL and the CPU baseline
// can be studied under load, not just at a fixed batch size.
package serving

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// LatencyModel returns the backend's end-to-end latency for a given batch
// size. Implementations typically interpolate engine estimates.
type LatencyModel func(batch int) float64

// Policy is the batching policy: dispatch when MaxBatch requests are
// waiting, or when the oldest waiting request has waited MaxWait seconds.
//
// MaxWait == 0 is a legal greedy policy even with MaxBatch > 1: the
// server dispatches whatever is queued the moment it goes free, so no
// request ever waits for co-riders and none can starve — MaxBatch only
// caps how many requests ride together. Batches larger than one still
// form under load, because arrivals accumulate while the server is busy.
// (TestZeroWaitGreedyDispatch pins this semantics.)
type Policy struct {
	MaxBatch int
	MaxWait  float64
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxBatch <= 0 {
		return fmt.Errorf("serving: MaxBatch must be positive")
	}
	if p.MaxWait < 0 {
		return fmt.Errorf("serving: MaxWait must be non-negative")
	}
	return nil
}

// Robustness configures fault tolerance of the serving loop: per-request
// deadlines and retry/backoff against a flaky backend. The zero value
// disables everything, making SimulateRobust identical to Simulate.
type Robustness struct {
	// Deadline is the per-request budget from arrival; a queued request
	// whose deadline has already passed at dispatch time is dropped as a
	// timeout instead of being served. 0 disables deadlines.
	Deadline float64
	// FailRate is the probability that one batch execution attempt fails
	// and must be retried ([0, 1]).
	FailRate float64
	// MaxRetries bounds re-attempts per batch; when exhausted, the
	// batch's requests are dropped as failures.
	MaxRetries int
	// Backoff is the pause before the first retry, doubling per attempt.
	Backoff float64
	// Seed drives the failure draws (deterministic for a fixed seed).
	Seed int64
}

// Validate checks the robustness parameters.
func (r Robustness) Validate() error {
	if r.Deadline < 0 {
		return fmt.Errorf("serving: Deadline must be non-negative")
	}
	if r.FailRate < 0 || r.FailRate > 1 {
		return fmt.Errorf("serving: FailRate %g outside [0,1]", r.FailRate)
	}
	if r.MaxRetries < 0 {
		return fmt.Errorf("serving: MaxRetries must be non-negative")
	}
	if r.Backoff < 0 {
		return fmt.Errorf("serving: Backoff must be non-negative")
	}
	return nil
}

// Completion records one served request.
type Completion struct {
	Arrival, Start, Done float64
	Batch                int // size of the batch it rode in
	// Expired is true when the request was served but finished past its
	// deadline (deadline-enabled runs only).
	Expired bool
}

// Latency returns the request's end-to-end latency.
func (c Completion) Latency() float64 { return c.Done - c.Arrival }

// Trace is the outcome of a simulation run.
type Trace struct {
	Completions []Completion
	Batches     int
	// Makespan is the time the last batch finishes.
	Makespan float64

	// Robustness counters (zero for plain Simulate runs).
	Retries  int // batch execution attempts beyond the first
	Timeouts int // requests dropped because their deadline passed unserved
	Failures int // requests dropped with their batch's retry budget spent
	Expired  int // requests served but completed past their deadline
}

// MeanLatency returns the average request latency.
func (t *Trace) MeanLatency() float64 {
	if len(t.Completions) == 0 {
		return 0
	}
	var s float64
	for _, c := range t.Completions {
		s += c.Latency()
	}
	return s / float64(len(t.Completions))
}

// Percentile returns the p-th latency percentile computed with the
// nearest-rank method over the sorted completion latencies (exact, no
// interpolation). Edge cases are explicit and pinned by tests:
//
//   - an empty trace returns 0 (there is no latency to report);
//   - p is clamped to [0, 100]: p <= 0 returns the minimum latency and
//     p >= 100 the maximum;
//   - a NaN p is treated as 0 (the minimum).
//
// This is the exact path over the full completion slice; for a running
// process the serving metrics expose the same p50/p95/p99 as streaming
// histogram quantiles (see pimdl_serving_latency_seconds).
func (t *Trace) Percentile(p float64) float64 {
	if len(t.Completions) == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	ls := make([]float64, len(t.Completions))
	for i, c := range t.Completions {
		ls[i] = c.Latency()
	}
	sort.Float64s(ls)
	i := int(math.Ceil(p/100*float64(len(ls)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(ls) {
		i = len(ls) - 1
	}
	return ls[i]
}

// Throughput returns served requests per second over the makespan.
func (t *Trace) Throughput() float64 {
	if t.Makespan <= 0 {
		return 0
	}
	return float64(len(t.Completions)) / t.Makespan
}

// MeanBatch returns the average dispatched batch size.
func (t *Trace) MeanBatch() float64 {
	if t.Batches == 0 {
		return 0
	}
	return float64(len(t.Completions)) / float64(t.Batches)
}

// Simulate runs the event-driven queue: arrivals must be sorted ascending.
// The server processes one batch at a time; whenever it is free it
// dispatches immediately if MaxBatch requests are waiting, otherwise it
// waits until either MaxBatch accumulate or the oldest waiter times out.
func Simulate(arrivals []float64, lat LatencyModel, pol Policy) (*Trace, error) {
	return SimulateRobust(arrivals, lat, pol, Robustness{})
}

// SimulateRobust is Simulate against a flaky backend: batch executions
// fail with rob.FailRate and are retried after exponential backoff (the
// server stays busy through failed attempts), and requests whose deadline
// passes before service are dropped and counted as timeouts. With a zero
// Robustness the trace is identical to Simulate's.
func SimulateRobust(arrivals []float64, lat LatencyModel, pol Policy, rob Robustness) (*Trace, error) {
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if err := rob.Validate(); err != nil {
		return nil, err
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			return nil, fmt.Errorf("serving: arrivals not sorted at %d", i)
		}
	}
	rng := rand.New(rand.NewSource(rob.Seed))
	tr := &Trace{}
	next := 0           // next arrival not yet queued
	var queue []float64 // arrival times of waiting requests
	now := 0.0          // server-free time

	for next < len(arrivals) || len(queue) > 0 {
		// Admit everything that has arrived by `now`.
		for next < len(arrivals) && arrivals[next] <= now {
			queue = append(queue, arrivals[next])
			next++
		}
		observeQueueDepth(len(queue))
		if len(queue) == 0 {
			// Idle: jump to the next arrival.
			now = arrivals[next]
			continue
		}
		// Decide dispatch time: full batch → now; otherwise wait until the
		// oldest waiter hits MaxWait or enough arrivals accumulate.
		dispatch := now
		if len(queue) < pol.MaxBatch {
			deadline := queue[0] + pol.MaxWait
			if deadline < now {
				deadline = now
			}
			// Admit arrivals landing before the deadline (they may fill
			// the batch earlier).
			for next < len(arrivals) && arrivals[next] <= deadline && len(queue) < pol.MaxBatch {
				if arrivals[next] > dispatch {
					dispatch = arrivals[next]
				}
				queue = append(queue, arrivals[next])
				next++
			}
			if len(queue) < pol.MaxBatch {
				dispatch = deadline
			}
		}
		// Shed requests whose deadline passed before service could start.
		if rob.Deadline > 0 {
			shed := 0
			kept := queue[:0]
			for _, arr := range queue {
				if arr+rob.Deadline <= dispatch {
					tr.Timeouts++
					shed++
				} else {
					kept = append(kept, arr)
				}
			}
			queue = kept
			recordDrops(0, shed, 0, 0)
			observeQueueDepth(len(queue))
			if len(queue) == 0 {
				if dispatch > now {
					now = dispatch
				} else if next < len(arrivals) {
					now = arrivals[next]
				}
				continue
			}
		}
		// Form the batch and execute it, retrying failed attempts with
		// exponential backoff.
		b := len(queue)
		if b > pol.MaxBatch {
			b = pol.MaxBatch
		}
		retries0, failures0, expired0, compl0 := tr.Retries, tr.Failures, tr.Expired, len(tr.Completions)
		dur := lat(b)
		start := dispatch
		failed := false
		for attempt := 0; ; attempt++ {
			if rob.FailRate > 0 && rng.Float64() < rob.FailRate {
				if attempt >= rob.MaxRetries {
					failed = true
					break
				}
				tr.Retries++
				start += dur + rob.Backoff*math.Pow(2, float64(attempt))
				continue
			}
			break
		}
		done := start + dur
		if failed {
			tr.Failures += b
		} else {
			for _, arr := range queue[:b] {
				c := Completion{Arrival: arr, Start: dispatch, Done: done, Batch: b}
				if rob.Deadline > 0 && done > arr+rob.Deadline {
					c.Expired = true
					tr.Expired++
				}
				tr.Completions = append(tr.Completions, c)
			}
		}
		queue = append([]float64(nil), queue[b:]...)
		tr.Batches++
		recordBatch(b, tr.Completions[compl0:])
		recordDrops(tr.Retries-retries0, 0, tr.Failures-failures0, tr.Expired-expired0)
		observeQueueDepth(len(queue))
		now = done
		if done > tr.Makespan {
			tr.Makespan = done
		}
	}
	return tr, nil
}

// PoissonArrivals draws n arrival times with the given mean rate (req/s).
func PoissonArrivals(rng *rand.Rand, rate float64, n int) []float64 {
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / rate
		out[i] = t
	}
	return out
}

// InterpolatedLatency builds a LatencyModel from sampled (batch, seconds)
// points by piecewise-linear interpolation, extrapolating linearly beyond
// the last point. Points must be sorted by batch.
func InterpolatedLatency(batches []int, secs []float64) (LatencyModel, error) {
	if len(batches) != len(secs) || len(batches) == 0 {
		return nil, fmt.Errorf("serving: need matching non-empty samples")
	}
	for i := 1; i < len(batches); i++ {
		if batches[i] <= batches[i-1] {
			return nil, fmt.Errorf("serving: batch samples not increasing")
		}
	}
	return func(b int) float64 {
		if b <= batches[0] {
			// Scale down pessimistically below the first sample: fixed
			// overheads dominate there, so hold the first latency.
			return secs[0]
		}
		for i := 1; i < len(batches); i++ {
			if b <= batches[i] {
				f := float64(b-batches[i-1]) / float64(batches[i]-batches[i-1])
				return secs[i-1] + f*(secs[i]-secs[i-1])
			}
		}
		// Extrapolate from the last segment's slope.
		last := len(batches) - 1
		slope := (secs[last] - secs[last-1]) / float64(batches[last]-batches[last-1])
		return secs[last] + slope*float64(b-batches[last])
	}, nil
}

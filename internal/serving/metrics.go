package serving

import "repro/internal/metrics"

// Serving-layer metrics: request/batch throughput counters, latency and
// batch-size distributions, live queue depth, and the robustness drop
// counters. The latency histogram's p50/p95/p99 quantile samples give a
// running process the same tail statistics Trace.Percentile computes
// exactly post-hoc, without retaining per-request slices.
var servingMetrics = struct {
	requests  *metrics.Counter
	batches   *metrics.Counter
	latency   *metrics.Histogram
	batchSize *metrics.Histogram
	queue     *metrics.Gauge
	queuePeak *metrics.Gauge
	retries   *metrics.Counter
	timeouts  *metrics.Counter
	failures  *metrics.Counter
	expired   *metrics.Counter
}{}

func init() {
	r := metrics.Default()
	m := &servingMetrics
	m.requests = r.NewCounter("pimdl_serving_requests_total",
		"requests served to completion (dropped requests excluded)")
	m.batches = r.NewCounter("pimdl_serving_batches_total",
		"batches dispatched to the backend")
	// 100 µs .. ~105 s in ×2 steps covers engine latencies from single
	// UPMEM ops to large degraded batches.
	m.latency = r.NewHistogram("pimdl_serving_latency_seconds",
		"end-to-end request latency (arrival to completion)",
		metrics.ExpBuckets(1e-4, 2, 21))
	m.batchSize = r.NewHistogram("pimdl_serving_batch_size",
		"dispatched batch sizes",
		metrics.ExpBuckets(1, 2, 11))
	m.queue = r.NewGauge("pimdl_serving_queue_depth",
		"requests waiting at the batcher (last observed)")
	m.queuePeak = r.NewGauge("pimdl_serving_queue_depth_peak",
		"high-water mark of the batcher queue")
	m.retries = r.NewCounter("pimdl_serving_retries_total",
		"batch execution attempts beyond the first")
	m.timeouts = r.NewCounter("pimdl_serving_timeouts_total",
		"requests dropped because their deadline passed unserved")
	m.failures = r.NewCounter("pimdl_serving_failures_total",
		"requests dropped with their batch's retry budget spent")
	m.expired = r.NewCounter("pimdl_serving_expired_total",
		"requests served but completed past their deadline")
}

// observeQueueDepth tracks the batcher queue as it grows and drains.
func observeQueueDepth(depth int) {
	if !metrics.Enabled() {
		return
	}
	servingMetrics.queue.Set(float64(depth))
	servingMetrics.queuePeak.SetMax(float64(depth))
}

// recordBatch folds one dispatched batch and its completions into the
// serving metrics.
func recordBatch(batch int, completions []Completion) {
	if !metrics.Enabled() {
		return
	}
	m := &servingMetrics
	m.batches.Inc()
	m.batchSize.Observe(float64(batch))
	for _, c := range completions {
		m.requests.Inc()
		m.latency.Observe(c.Latency())
	}
}

// recordDrops folds the robustness drop deltas of one dispatch round.
func recordDrops(retries, timeouts, failures, expired int) {
	if !metrics.Enabled() {
		return
	}
	m := &servingMetrics
	m.retries.Add(int64(retries))
	m.timeouts.Add(int64(timeouts))
	m.failures.Add(int64(failures))
	m.expired.Add(int64(expired))
}

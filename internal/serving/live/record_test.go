package live

import (
	"math"
	"testing"

	"repro/internal/serving"
)

// TestPercentileGapEdgeCases pins the comparison's sentinels: empty
// traces on either side, and out-of-range percentiles (Percentile
// clamps them, so the gap is always finite arithmetic, never a panic).
func TestPercentileGapEdgeCases(t *testing.T) {
	mkTrace := func(lats ...float64) *serving.Trace {
		tr := &serving.Trace{}
		for _, l := range lats {
			tr.Completions = append(tr.Completions, serving.Completion{Done: l})
		}
		return tr
	}
	empty := mkTrace()
	full := mkTrace(0.1, 0.2, 0.4)

	// Empty live trace: nothing to compare against. Identical emptiness
	// is a zero gap; a live void against real replay latencies is an
	// infinite one (the replay invented a distribution).
	if gap := PercentileGap(empty, empty, 99); gap != 0 {
		t.Fatalf("empty vs empty gap = %g, want 0", gap)
	}
	if gap := PercentileGap(empty, full, 99); !math.IsInf(gap, 1) {
		t.Fatalf("empty live vs non-empty replay gap = %g, want +Inf", gap)
	}
	// Empty replay trace against live data: the replay under-reports
	// everything, a full relative gap of 1.
	if gap := PercentileGap(full, empty, 99); gap != 1 {
		t.Fatalf("non-empty live vs empty replay gap = %g, want 1", gap)
	}

	// Out-of-range p clamps (p < 0 → minimum, p > 100 → maximum, NaN →
	// minimum), matching serving.Trace.Percentile's pinned behaviour.
	if gap := PercentileGap(full, full, -5); gap != 0 {
		t.Fatalf("identical traces at p=-5 gap = %g, want 0", gap)
	}
	if gap := PercentileGap(full, full, 250); gap != 0 {
		t.Fatalf("identical traces at p=250 gap = %g, want 0", gap)
	}
	lo := mkTrace(0.1, 0.2, 0.4)
	hi := mkTrace(0.2, 0.2, 0.8)
	wantMin := math.Abs(0.1-0.2) / 0.1 // p<0 clamps both sides to their minima
	if gap := PercentileGap(lo, hi, -1); math.Abs(gap-wantMin) > 1e-12 {
		t.Fatalf("p=-1 gap = %g, want %g (minimum vs minimum)", gap, wantMin)
	}
	wantMax := math.Abs(0.4-0.8) / 0.4 // p>100 clamps both sides to their maxima
	if gap := PercentileGap(lo, hi, 1e6); math.Abs(gap-wantMax) > 1e-12 {
		t.Fatalf("p=1e6 gap = %g, want %g (maximum vs maximum)", gap, wantMax)
	}
	if gap := PercentileGap(full, full, math.NaN()); gap != 0 {
		t.Fatalf("identical traces at p=NaN gap = %g, want 0", gap)
	}
}

package live

import (
	"testing"

	"repro/internal/pim"
	"repro/internal/serving"
)

// chaosScenario is the acceptance scenario (ISSUE 7): sustained
// saturation against a real fault-injected PIM backend, a mid-run fault
// storm that the circuit breaker must ride out on the host fallback, and
// a heal it must recover from.
//
// The load runs at ~1.6× the PIM backend's batch-16 capacity with a
// deep queue, so the system is deadline-bound for most of the run: the
// served-latency distribution concentrates just under Deadline + service
// time. That is also what makes the replay oracle's 5% tolerance robust
// — the offline simulator reproduces the deadline-capped distribution
// even though it spreads the storm's failures uniformly over the run.
func chaosScenario(t *testing.T, scale float64) (*Server, []Arrival, ChaosSchedule, Config) {
	t.Helper()
	clock, err := NewScaledClock(scale)
	if err != nil {
		t.Fatal(err)
	}
	plat, w, m := refOperator()
	pimBE, err := NewPIMBackend(plat, w, m, func(b int) float64 { return 0.02 + 0.002*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	hostBE, err := NewHostBackend(func(b int) float64 { return 0.04 + 0.004*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Policy:   serving.Policy{MaxBatch: 16, MaxWait: 0.01},
		QueueCap: 1536,
		Shed:     ShedReject,
		Robust:   serving.Robustness{Deadline: 4.0, MaxRetries: 2, Backoff: 0.01},
		Breaker:  BreakerConfig{Window: 6, MinSamples: 3, TripRatio: 0.5, Cooldown: 1.5},
	}
	s, err := NewServer(cfg, clock, pimBE, hostBE)
	if err != nil {
		t.Fatal(err)
	}
	// ~1.6× capacity (batch-16 service is 0.052 s → ~307 req/s) for 24
	// virtual seconds, with MMPP bursts and a Zipf kind mix.
	arrivals, err := LoadSpec{
		Rate:     500,
		Burst:    &MMPP{BurstFactor: 2, MeanCalm: 2.0, MeanBurst: 0.5},
		Mix:      ZipfMix{S: 1.4, Kinds: 4},
		Requests: 12000,
		Seed:     17,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Fault storm at t=10: a tenth of the array dies, stragglers stretch
	// the surviving PEs' kernels, and the flip rate exhausts the DMA
	// retry budget, so every PIM attempt fails its end-to-end checksum.
	// Heal at t=15.
	sched := ChaosSchedule{
		{At: 10, Plan: pim.FaultPlan{Seed: 99, DeadPEFraction: 0.1, FlipRate: 0.9, StragglerSpread: 0.5}, Note: "storm"},
		{At: 15, Note: "heal"},
	}
	return s, arrivals, sched, cfg
}

// TestChaosSaturationAcceptance is the ISSUE 7 acceptance test, run
// under -race by make chaos-smoke: at saturation with dead PEs and
// stragglers injected, (1) every submitted request is deterministically
// accounted (admitted = served + timed out + failed; nothing lost), (2)
// the circuit breaker trips to the host fallback and recovers after the
// heal, and (3) replaying the recorded run through the offline
// simulator reproduces its p50/p95/p99 within 5%.
func TestChaosSaturationAcceptance(t *testing.T) {
	// 1 virtual second per 50 wall ms: the 18-virtual-second scenario
	// takes ~0.9 s of wall time.
	s, arrivals, sched, cfg := chaosScenario(t, 20)
	res, err := RunScenario(s, arrivals, sched)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary

	// (1) Conservation: exactly one terminal record per submission.
	if sum.Submitted != len(arrivals) {
		t.Fatalf("recorded %d submissions, want %d", sum.Submitted, len(arrivals))
	}
	if err := sum.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Admitted+sum.ShedQueue != sum.Submitted {
		t.Fatalf("admitted %d + shed %d != submitted %d", res.Admitted, sum.ShedQueue, sum.Submitted)
	}
	if sum.Served+sum.Timeouts+sum.Failures != res.Admitted {
		t.Fatalf("served %d + timeouts %d + failures %d != admitted %d",
			sum.Served, sum.Timeouts, sum.Failures, res.Admitted)
	}
	// Saturation exercised both overload valves.
	if sum.ShedQueue == 0 || sum.Timeouts == 0 {
		t.Fatalf("saturation shed %d / timed out %d, want both > 0", sum.ShedQueue, sum.Timeouts)
	}
	if sum.Served == 0 {
		t.Fatal("nothing served")
	}

	// (2) Breaker: tripped during the storm, served on the host while
	// open, recovered after the heal.
	br := s.Breaker()
	if br.Trips() < 1 {
		t.Fatalf("breaker never tripped (storm attempts: %d)", sum.Attempts)
	}
	if sum.HostServed == 0 {
		t.Fatal("open breaker never served a batch on the host")
	}
	if br.Recoveries() < 1 {
		t.Fatalf("breaker never recovered: state %v after the heal", br.State())
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker finished %v, want closed", br.State())
	}
	// PIM serves again after the heal: the last served batch ran on PIM.
	batches := res.Recorder.Batches()
	var lastServed *BatchRecord
	for i := range batches {
		if !batches[i].Failed {
			lastServed = &batches[i]
		}
	}
	if lastServed == nil {
		t.Fatal("no served batches at all")
	}
	if be := lastServed.Backends[len(lastServed.Backends)-1]; be != "pim" {
		t.Fatalf("final served batch ran on %q: PIM never came back", be)
	}

	// (3) Replay oracle: the offline simulator, fed the recorded
	// arrivals, the latency model fitted from the run's own batch
	// executions and the measured failure rate, reproduces the live
	// latency percentiles within 5%.
	liveTr := res.Recorder.PrimaryTrace()
	simTr, err := res.Recorder.Replay(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(simTr.Completions) == 0 {
		t.Fatal("replay served nothing")
	}
	for _, p := range []float64{50, 95, 99} {
		gap := PercentileGap(liveTr, simTr, p)
		t.Logf("p%g: live %.4f vs replay %.4f (gap %.1f%%)",
			p, liveTr.Percentile(p), simTr.Percentile(p), 100*gap)
		if gap > 0.05 {
			t.Errorf("p%g: live %.4f vs replay %.4f — gap %.1f%% > 5%%",
				p, liveTr.Percentile(p), simTr.Percentile(p), 100*gap)
		}
	}

	// The timeline carries both chaos events and the breaker history.
	var chaosEvents, breakerEvents int
	for _, ev := range res.Recorder.Events() {
		switch ev.Kind {
		case "chaos":
			chaosEvents++
		case "breaker":
			breakerEvents++
		}
	}
	if chaosEvents != 2 || breakerEvents < 4 {
		t.Fatalf("timeline has %d chaos / %d breaker events", chaosEvents, breakerEvents)
	}
}

// TestReplayOracleHealthy: with no faults and a mild overload, the
// offline replay tracks the live latency distribution. The tolerance is
// looser than the deadline-bound acceptance test because here the
// percentiles sit on queueing transients, which wall-clock jitter can
// shift.
func TestReplayOracleHealthy(t *testing.T) {
	clock, err := NewScaledClock(20)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Policy:   serving.Policy{MaxBatch: 8, MaxWait: 0.01},
		QueueCap: 512,
		Shed:     ShedReject,
		Robust:   serving.Robustness{Deadline: 1.0, MaxRetries: 1, Backoff: 0.01},
	}
	s := mustServer(t, cfg, clock,
		&fakeBackend{name: "pim", model: func(b int) float64 { return 0.05 + 0.005*float64(b) }}, nil)

	arrivals, err := LoadSpec{Rate: 120, Requests: 1500, Seed: 29}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(s, arrivals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Summary.Conservation(); err != nil {
		t.Fatal(err)
	}
	liveTr := res.Recorder.PrimaryTrace()
	simTr, err := res.Recorder.Replay(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{50, 95, 99} {
		gap := PercentileGap(liveTr, simTr, p)
		if gap > 0.15 {
			t.Errorf("p%g: live %.4f vs replay %.4f — gap %.1f%% > 15%%",
				p, liveTr.Percentile(p), simTr.Percentile(p), 100*gap)
		}
	}
}

package live

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// TestServerTracingReconciles runs the concurrent server through a
// fault-storm scenario with a tracer attached and checks the tentpole
// invariants on the real goroutine paths (this is the -race coverage of
// the span plumbing): every submission starts a trace, every kept trace
// reconciles, every completion's per-phase breakdown sums to the
// recorder's own latency within tolerance, and every latency exemplar
// the run wrote resolves to a kept trace.
func TestServerTracingReconciles(t *testing.T) {
	cfg, arrivals, sched := detScenario(t, ShedReject, 1536)
	arrivals = arrivals[:1500]
	clock, err := NewScaledClock(40)
	if err != nil {
		t.Fatal(err)
	}
	pimBE, hostBE := detBackends(t)
	s, err := NewServer(cfg, clock, pimBE, hostBE)
	if err != nil {
		t.Fatal(err)
	}
	tc := detTracer(t, 1<<14)
	s.SetTracer(tc)

	// Exemplar slots are process-global and latest-wins; remember the
	// pre-run values so only slots this run wrote are asserted on.
	before := liveMetrics.latency.Exemplars()

	res, err := RunScenario(s, arrivals, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Summary.Conservation(); err != nil {
		t.Fatal(err)
	}

	st := tc.Stats()
	if st.Started != int64(len(arrivals)) {
		t.Fatalf("tracer started %d traces for %d submissions", st.Started, len(arrivals))
	}
	if st.Finished != st.Started {
		t.Fatalf("tracer finished %d of %d traces — a span path never reached a terminal", st.Finished, st.Started)
	}

	checked := 0
	for _, rec := range res.Recorder.Records() {
		if rec.TraceID == 0 {
			t.Fatalf("record %d unsampled at SampleRate 1 with an oversized ring", rec.ID)
		}
		tr := tc.Lookup(rec.TraceID)
		if tr == nil {
			t.Fatalf("record %d trace %016x does not resolve", rec.ID, rec.TraceID)
		}
		if err := obs.Reconcile(tr); err != nil {
			t.Fatal(err)
		}
		if lat := rec.Latency(); lat > 0 {
			var sum float64
			for _, secs := range obs.Breakdown(tr) {
				sum += secs
			}
			if d := math.Abs(sum - lat); d > obs.ReconcileTolerance {
				t.Fatalf("record %d (%s): attribution %.12g != recorded latency %.12g (|Δ|=%.3g)",
					rec.ID, rec.Outcome, sum, lat, d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no completed requests checked")
	}

	// Exemplar resolution: every latency bucket this run stamped must
	// link back to a trace the ring kept.
	if metrics.Enabled() {
		changed := 0
		for bucket, id := range liveMetrics.latency.Exemplars() {
			if before[bucket] == id {
				continue
			}
			changed++
			if tc.Lookup(id) == nil {
				t.Errorf("latency bucket %s exemplar %016x does not resolve", bucket, id)
			}
		}
		if changed == 0 {
			t.Error("a served-heavy run wrote no latency exemplars")
		}
	}

	// The report builds off the live tracer too (not just the
	// deterministic runner's) — storm scenarios must show retry blame.
	rep, err := obs.BuildReport(tc, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slowest) != 3 {
		t.Fatalf("top-K has %d rows, want 3", len(rep.Slowest))
	}
}

package live

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/pim"
)

// ChaosEvent swaps the PIM backend's fault plan at a virtual time: dead
// PEs appear, DMA flips start, stragglers slow down — or the array
// heals (zero plan). Note annotates the timeline.
type ChaosEvent struct {
	At   float64
	Plan pim.FaultPlan
	Note string
}

// ChaosSchedule is a time-ordered list of fault-plan changes.
type ChaosSchedule []ChaosEvent

// Validate checks event ordering and plan legality.
func (cs ChaosSchedule) Validate() error {
	for i, ev := range cs {
		if ev.At < 0 {
			return fmt.Errorf("live: chaos event %d at negative time %g", i, ev.At)
		}
		if i > 0 && ev.At < cs[i-1].At {
			return fmt.Errorf("live: chaos schedule not sorted at event %d", i)
		}
		if err := ev.Plan.Validate(); err != nil {
			return fmt.Errorf("live: chaos event %d: %w", i, err)
		}
	}
	return nil
}

// RunChaos plays the schedule against the backend in (scaled) real
// time, recording each plan change on the recorder's timeline. Run it
// on its own goroutine; it returns after the last event fires.
func RunChaos(clock *ScaledClock, be *PIMBackend, rec *Recorder, sched ChaosSchedule) {
	events := append(ChaosSchedule(nil), sched...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		if d := ev.At - clock.Now(); d > 0 {
			clock.Sleep(d)
		}
		be.SetPlan(ev.Plan)
		note := ev.Note
		if note == "" {
			note = fmt.Sprintf("dead=%.2f flip=%.2f straggler=%.2f",
				ev.Plan.DeadPEFraction, ev.Plan.FlipRate, ev.Plan.StragglerSpread)
		}
		if rec != nil {
			rec.AddEvent(Event{At: clock.Now(), Kind: "chaos", Note: note})
		}
	}
}

// ChaosResult bundles what a chaos run produced.
type ChaosResult struct {
	Recorder *Recorder
	Summary  Summary
	Admitted int
}

// RunScenario wires one complete live run: start the server, drive the
// load schedule and the chaos schedule concurrently, then drain. This
// is the harness the chaos tests, pimdl-sim -live and the examples
// share.
func RunScenario(s *Server, arrivals []Arrival, sched ChaosSchedule) (*ChaosResult, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	var chaosTarget *PIMBackend
	if len(sched) > 0 {
		be, ok := s.pimBE.(*PIMBackend)
		if !ok {
			return nil, fmt.Errorf("live: chaos schedule needs a *PIMBackend, have %T", s.pimBE)
		}
		chaosTarget = be
	}
	s.Start()
	res := &ChaosResult{Recorder: s.Recorder()}
	var g parallel.Group
	if chaosTarget != nil {
		g.Go(func() { RunChaos(s.Clock(), chaosTarget, s.Recorder(), sched) })
	}
	res.Admitted = Drive(s.Clock(), s, arrivals)
	g.Wait()
	s.Drain()
	res.Summary = s.Recorder().Summary()
	return res, nil
}

package live

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/parallel"
	"repro/internal/pim"
)

// ChaosEvent mutates the primary backend at a virtual time: it swaps
// the fault plan (dead PEs appear, DMA flips start, stragglers slow
// down — or the array heals with a zero plan), and on a sharded backend
// it can additionally kill or revive whole DIMM shards. Note annotates
// the timeline.
type ChaosEvent struct {
	At   float64
	Plan pim.FaultPlan
	// KillShards / ReviveShards mark whole shards down/up before the
	// plan swap takes effect. They require a ShardChaosTarget backend.
	KillShards   []int
	ReviveShards []int
	Note         string
}

// shardOps reports whether the event touches shard up/down state.
func (ev ChaosEvent) shardOps() bool {
	return len(ev.KillShards) > 0 || len(ev.ReviveShards) > 0
}

// ChaosSchedule is a time-ordered list of fault-plan changes.
type ChaosSchedule []ChaosEvent

// Validate checks event ordering and plan legality.
func (cs ChaosSchedule) Validate() error {
	for i, ev := range cs {
		if ev.At < 0 {
			return fmt.Errorf("live: chaos event %d at negative time %g", i, ev.At)
		}
		if i > 0 && ev.At < cs[i-1].At {
			return fmt.Errorf("live: chaos schedule not sorted at event %d", i)
		}
		if err := ev.Plan.Validate(); err != nil {
			return fmt.Errorf("live: chaos event %d: %w", i, err)
		}
		for _, s := range append(append([]int(nil), ev.KillShards...), ev.ReviveShards...) {
			if s < 0 {
				return fmt.Errorf("live: chaos event %d kills negative shard %d", i, s)
			}
		}
	}
	return nil
}

// ChaosTarget is the mutation surface the chaos controller drives: any
// primary backend whose fault plan can be swapped mid-run. *PIMBackend
// and *ShardedPIMBackend implement it.
type ChaosTarget interface {
	SetPlan(pim.FaultPlan)
}

// ShardChaosTarget additionally exposes whole-shard kill/revive
// (*ShardedPIMBackend).
type ShardChaosTarget interface {
	ChaosTarget
	SetShardDown(id int, down bool)
}

// RunChaos plays the schedule against the backend in (scaled) real
// time, recording each change on the recorder's timeline. Run it on its
// own goroutine; it returns after the last event fires. Shard kill
// events against a non-sharded target are a validation error surfaced
// by RunScenario; here they are ignored.
func RunChaos(clock *ScaledClock, be ChaosTarget, rec *Recorder, sched ChaosSchedule) {
	events := append(ChaosSchedule(nil), sched...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		if d := ev.At - clock.Now(); d > 0 {
			clock.Sleep(d)
		}
		if sct, ok := be.(ShardChaosTarget); ok && ev.shardOps() {
			for _, s := range ev.KillShards {
				sct.SetShardDown(s, true)
			}
			for _, s := range ev.ReviveShards {
				sct.SetShardDown(s, false)
			}
		}
		be.SetPlan(ev.Plan)
		note := ev.Note
		if note == "" {
			note = fmt.Sprintf("dead=%.2f flip=%.2f straggler=%.2f",
				ev.Plan.DeadPEFraction, ev.Plan.FlipRate, ev.Plan.StragglerSpread)
		}
		if ev.shardOps() {
			var ops []string
			if len(ev.KillShards) > 0 {
				ops = append(ops, fmt.Sprintf("kill-shards=%v", ev.KillShards))
			}
			if len(ev.ReviveShards) > 0 {
				ops = append(ops, fmt.Sprintf("revive-shards=%v", ev.ReviveShards))
			}
			note = note + " " + strings.Join(ops, " ")
		}
		if rec != nil {
			rec.AddEvent(Event{At: clock.Now(), Kind: "chaos", Note: note})
		}
	}
}

// ChaosResult bundles what a chaos run produced.
type ChaosResult struct {
	Recorder *Recorder
	Summary  Summary
	Admitted int
}

// RunScenario wires one complete live run: start the server, drive the
// load schedule and the chaos schedule concurrently, then drain. This
// is the harness the chaos tests, pimdl-sim -live and the examples
// share.
func RunScenario(s *Server, arrivals []Arrival, sched ChaosSchedule) (*ChaosResult, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	var chaosTarget ChaosTarget
	if len(sched) > 0 {
		be, ok := s.pimBE.(ChaosTarget)
		if !ok {
			return nil, fmt.Errorf("live: chaos schedule needs a ChaosTarget backend, have %T", s.pimBE)
		}
		for _, ev := range sched {
			if ev.shardOps() {
				if _, ok := be.(ShardChaosTarget); !ok {
					return nil, fmt.Errorf("live: shard-kill chaos events need a sharded backend, have %T", s.pimBE)
				}
				break
			}
		}
		chaosTarget = be
	}
	s.Start()
	res := &ChaosResult{Recorder: s.Recorder()}
	var g parallel.Group
	if chaosTarget != nil {
		g.Go(func() { RunChaos(s.Clock(), chaosTarget, s.Recorder(), sched) })
	}
	res.Admitted = Drive(s.Clock(), s, arrivals)
	g.Wait()
	s.Drain()
	res.Summary = s.Recorder().Summary()
	return res, nil
}

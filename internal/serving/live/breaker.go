package live

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// BreakerState is the circuit breaker's position. The state machine is
// the classic three-state breaker (see DESIGN.md §12 for the transition
// diagram):
//
//	Closed ──(failure ratio ≥ TripRatio over window)──▶ Open
//	Open ──(Cooldown elapsed)──▶ HalfOpen
//	HalfOpen ──(probe ok)──▶ Closed   HalfOpen ──(probe fails)──▶ Open
type BreakerState int32

// The breaker states.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Route is the breaker's dispatch decision for one batch attempt.
type Route int

// The routes: execute on the PIM backend, probe the PIM backend to test
// recovery, or divert to the host fallback.
const (
	RoutePIM Route = iota
	RouteProbe
	RouteHost
)

// BreakerConfig parameterizes the circuit breaker. The zero value
// disables it (every attempt routes to PIM).
type BreakerConfig struct {
	// Window is the sliding window of recent PIM attempt outcomes the
	// trip decision looks at; 0 disables the breaker.
	Window int
	// MinSamples is the minimum number of outcomes in the window before
	// the breaker may trip; 0 defaults to 1.
	MinSamples int
	// TripRatio is the failure fraction over the window at which the
	// breaker opens ((0, 1]).
	TripRatio float64
	// Cooldown is how long (virtual seconds) the breaker stays open
	// before letting one probe through.
	Cooldown float64
}

// Enabled reports whether the breaker does anything.
func (c BreakerConfig) Enabled() bool { return c.Window > 0 }

// Validate checks the breaker parameters.
func (c BreakerConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Window < 1 {
		return fmt.Errorf("live: breaker Window must be positive")
	}
	if c.MinSamples < 0 || c.MinSamples > c.Window {
		return fmt.Errorf("live: breaker MinSamples %d outside [0, Window=%d]", c.MinSamples, c.Window)
	}
	if c.TripRatio <= 0 || c.TripRatio > 1 {
		return fmt.Errorf("live: breaker TripRatio %g outside (0,1]", c.TripRatio)
	}
	if c.Cooldown < 0 {
		return fmt.Errorf("live: breaker Cooldown must be non-negative")
	}
	return nil
}

// Breaker is the circuit breaker guarding the PIM backend. Route and
// Record are called by the dispatcher; State, Trips and Recoveries are
// safe to read from any goroutine (metrics, chaos assertions).
type Breaker struct {
	cfg        BreakerConfig
	onChange   func(now float64, from, to BreakerState)
	state      atomic.Int32
	trips      atomic.Int64
	recoveries atomic.Int64

	mu       sync.Mutex
	window   []bool // ring buffer of outcomes (true = failure)
	idx, n   int
	fails    int
	openedAt float64
}

// NewBreaker builds a breaker; onChange (may be nil) observes every
// state transition and must not call back into the breaker.
func NewBreaker(cfg BreakerConfig, onChange func(now float64, from, to BreakerState)) (*Breaker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 1
	}
	b := &Breaker{cfg: cfg, onChange: onChange}
	if cfg.Enabled() {
		b.window = make([]bool, cfg.Window)
	}
	return b, nil
}

// State returns the current breaker position.
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Trips returns how often the breaker has opened.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// Recoveries returns how often a half-open probe closed the breaker.
func (b *Breaker) Recoveries() int64 { return b.recoveries.Load() }

// Route decides where the next batch attempt runs. An open breaker
// whose cooldown has elapsed moves to half-open and admits the attempt
// as the probe.
func (b *Breaker) Route(now float64) Route {
	if !b.cfg.Enabled() {
		return RoutePIM
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return RoutePIM
	case BreakerOpen:
		if now-b.openedAt >= b.cfg.Cooldown {
			b.transition(now, BreakerHalfOpen)
			return RouteProbe
		}
		return RouteHost
	default: // half-open: the single dispatcher is the probe
		return RouteProbe
	}
}

// Record feeds one PIM attempt outcome into the trip decision. Host
// attempts are not recorded — the breaker judges only the backend it
// guards.
func (b *Breaker) Record(now float64, ok bool) {
	if !b.cfg.Enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		if ok {
			b.recoveries.Add(1)
			b.resetWindow()
			b.transition(now, BreakerClosed)
		} else {
			b.openedAt = now
			b.transition(now, BreakerOpen)
		}
	case BreakerClosed:
		b.push(!ok)
		if b.n >= b.cfg.MinSamples && float64(b.fails) >= b.cfg.TripRatio*float64(b.n) {
			b.trips.Add(1)
			b.openedAt = now
			b.resetWindow()
			b.transition(now, BreakerOpen)
		}
	default:
		// Open: PIM outcomes cannot occur (Route diverted them); ignore.
	}
}

// push adds one outcome to the ring buffer (mu held).
func (b *Breaker) push(failed bool) {
	if b.n == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = failed
	if failed {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
}

// resetWindow clears the outcome history (mu held).
func (b *Breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.n, b.fails = 0, 0, 0
}

// transition moves the state and notifies the observer (mu held).
func (b *Breaker) transition(now float64, to BreakerState) {
	from := BreakerState(b.state.Swap(int32(to)))
	if from != to && b.onChange != nil {
		b.onChange(now, from, to)
	}
}

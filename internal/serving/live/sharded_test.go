package live

import (
	"errors"
	"math"
	"testing"

	"repro/internal/serving"
	"repro/internal/shard"
)

// refCluster places the reference operator across 4 shards with 2
// replicas per sub-LUT range: any single shard can die without losing a
// range.
func refCluster(t *testing.T) *shard.Cluster {
	t.Helper()
	plat, w, m := refOperator()
	w.N = 64 // two row blocks of the ref operator's 32 rows
	c, err := shard.New(plat, w, m, shard.Config{Shards: 4, Replicas: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newTestShardedBackend(t *testing.T) *ShardedPIMBackend {
	t.Helper()
	be, err := NewShardedPIMBackend(refCluster(t), func(b int) float64 { return 0.02 + 0.002*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// TestShardedBackendOutcomes covers the backend's three regimes:
// healthy, failover (shard down, replicas cover), and irrecoverable
// (every replica of a range down).
func TestShardedBackendOutcomes(t *testing.T) {
	be := newTestShardedBackend(t)
	out := be.Execute(4, 4)
	if !out.OK || out.Failovers != 0 || out.LiveShards != 4 {
		t.Fatalf("healthy outcome wrong: %+v", out)
	}
	healthyLat := out.Latency

	be.SetShardDown(2, true)
	out = be.Execute(4, 4)
	if !out.OK {
		t.Fatalf("one dead shard with replicas failed the attempt: %+v", out)
	}
	if out.Failovers == 0 || out.LiveShards != 3 {
		t.Fatalf("failover accounting wrong: %+v", out)
	}
	if out.Latency <= healthyLat {
		t.Fatalf("failover latency %g not above healthy %g", out.Latency, healthyLat)
	}

	be.SetShardDown(3, true) // range 2's replicas are shards {2, 3}
	out = be.Execute(4, 4)
	if out.OK {
		t.Fatalf("attempt succeeded with a fully lost range: %+v", out)
	}
	be.SetShardDown(2, false)
	be.SetShardDown(3, false)
	out = be.Execute(4, 4)
	if !out.OK || out.Latency != healthyLat {
		t.Fatalf("revived cluster not back to healthy: %+v", out)
	}
}

// shardChaosScenario builds the shard-kill storm: sustained load, one
// shard killed mid-run (replicas cover it), then revived.
func shardChaosScenario(t *testing.T, sched ChaosSchedule, requests int) (*Server, []Arrival) {
	t.Helper()
	clock, err := NewScaledClock(20)
	if err != nil {
		t.Fatal(err)
	}
	pimBE := newTestShardedBackend(t)
	hostBE, err := NewHostBackend(func(b int) float64 { return 0.04 + 0.004*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Policy:   serving.Policy{MaxBatch: 16, MaxWait: 0.01},
		QueueCap: 1024,
		Shed:     ShedReject,
		Robust:   serving.Robustness{Deadline: 4.0, MaxRetries: 2, Backoff: 0.01},
		Breaker:  BreakerConfig{Window: 6, MinSamples: 3, TripRatio: 0.5, Cooldown: 1.5},
	}
	s := mustServer(t, cfg, clock, pimBE, hostBE)
	arrivals, err := LoadSpec{Rate: 300, Requests: requests, Seed: 41}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	return s, arrivals
}

// TestShardKillChaosFailover is the ISSUE 8 acceptance storm, run under
// -race by make shard-smoke: a shard dies mid-storm and its tiles fail
// over to replicas. Every request is conserved, failovers are recorded,
// and the breaker stays closed the whole run — replica failover absorbs
// the loss without a single failed attempt.
func TestShardKillChaosFailover(t *testing.T) {
	sched := ChaosSchedule{
		{At: 3, KillShards: []int{2}, Note: "kill shard 2"},
		{At: 9, ReviveShards: []int{2}, Note: "revive shard 2"},
	}
	s, arrivals := shardChaosScenario(t, sched, 4000)
	res, err := RunScenario(s, arrivals, sched)
	if err != nil {
		t.Fatal(err)
	}
	sum := checkConservation(t, s, len(arrivals))
	if res.Admitted+sum.ShedQueue != sum.Submitted {
		t.Fatalf("admitted %d + shed %d != submitted %d", res.Admitted, sum.ShedQueue, sum.Submitted)
	}
	if sum.Served == 0 {
		t.Fatal("nothing served")
	}
	// Zero lost requests: nothing failed, nothing timed out on the
	// failover path's modest slowdown.
	if sum.Failures != 0 {
		t.Fatalf("%d requests failed during a survivable shard loss", sum.Failures)
	}
	// The dead shard's tiles really moved: failovers accumulated while
	// shard 2 was down.
	if sum.Failovers == 0 {
		t.Fatal("no failovers recorded across the kill window")
	}
	// Breaker discipline: one dead shard out of four with 2 replicas is
	// absorbed — every attempt verified OK, the breaker never opened.
	br := s.Breaker()
	if br.Trips() != 0 {
		t.Fatalf("breaker tripped %d times during a survivable shard loss", br.Trips())
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker finished %v, want closed", br.State())
	}
	if sum.HostServed != 0 {
		t.Fatalf("%d requests served on the host while every range had a live replica", sum.HostServed)
	}
	// The timeline carries both shard events.
	kills := 0
	for _, ev := range res.Recorder.Events() {
		if ev.Kind == "chaos" {
			kills++
		}
	}
	if kills != 2 {
		t.Fatalf("timeline has %d chaos events, want 2", kills)
	}
}

// TestShardKillChaosBreakerTrip: killing BOTH replicas of a range makes
// every PIM attempt irrecoverable — the breaker must trip to the host,
// then recover after the shards revive. Still zero lost accounting.
func TestShardKillChaosBreakerTrip(t *testing.T) {
	sched := ChaosSchedule{
		{At: 3, KillShards: []int{2, 3}, Note: "kill shards 2+3 (range 2 fully lost)"},
		{At: 9, ReviveShards: []int{2, 3}, Note: "revive"},
	}
	s, arrivals := shardChaosScenario(t, sched, 4000)
	res, err := RunScenario(s, arrivals, sched)
	if err != nil {
		t.Fatal(err)
	}
	sum := checkConservation(t, s, len(arrivals))
	br := s.Breaker()
	if br.Trips() < 1 {
		t.Fatalf("breaker never tripped with a fully lost range (attempts %d)", sum.Attempts)
	}
	if sum.HostServed == 0 {
		t.Fatal("open breaker never served on the host")
	}
	if br.Recoveries() < 1 || br.State() != BreakerClosed {
		t.Fatalf("breaker never recovered after revive: state %v, recoveries %d", br.State(), br.Recoveries())
	}
	// PIM serves again at the end.
	batches := res.Recorder.Batches()
	var last *BatchRecord
	for i := range batches {
		if !batches[i].Failed {
			last = &batches[i]
		}
	}
	if last == nil {
		t.Fatal("no served batches")
	}
	if be := last.Backends[len(last.Backends)-1]; be != "pim" {
		t.Fatalf("final served batch ran on %q: the cluster never came back", be)
	}
}

// TestRunScenarioRejectsShardEventsOnFlatBackend: shard-kill events
// against a non-sharded backend are a configuration error, not a
// silent no-op.
func TestRunScenarioRejectsShardEventsOnFlatBackend(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 8, MaxWait: 0.01},
		QueueCap: 64,
		Shed:     ShedReject,
		Robust:   serving.Robustness{Deadline: 1, MaxRetries: 1, Backoff: 0.01},
	}, clock, newTestPIMBackend(t), nil)
	sched := ChaosSchedule{{At: 0.1, KillShards: []int{1}}}
	if _, err := RunScenario(s, nil, sched); err == nil {
		t.Fatal("shard-kill schedule accepted by a flat PIM backend")
	}
}

// TestNewShardedBackendNonPositiveMakespan: an "infinitely fast"
// single-shard platform yields a zero steady makespan; construction
// must refuse with the typed error (the degradation-ratio scaling would
// divide by that makespan) and callers must be able to detect it with
// errors.Is rather than string matching.
func TestNewShardedBackendNonPositiveMakespan(t *testing.T) {
	plat, w, m := refOperator()
	plat.FreqHz = math.Inf(1)
	plat.BroadcastBW = math.Inf(1)
	plat.ScatterBW = math.Inf(1)
	plat.GatherBW = math.Inf(1)
	plat.LocalBWPerPE = math.Inf(1)
	plat.HostXferLatency = 0
	plat.DMASetup = 0
	c, err := shard.New(plat, w, m, shard.Config{Shards: 1, Replicas: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewShardedPIMBackend(c, func(int) float64 { return 0.01 })
	if err == nil {
		t.Fatal("zero-makespan cluster built a backend")
	}
	if !errors.Is(err, ErrNonPositiveMakespan) {
		t.Fatalf("error %q does not unwrap to ErrNonPositiveMakespan", err)
	}
}

package live

import (
	"reflect"
	"testing"

	"repro/internal/pim"
)

// refOperator returns the reference (platform, workload, mapping) the
// backend tests evaluate fault plans against: a small LUT operator on
// the UPMEM preset, mapped like the pim package's own fault tests.
func refOperator() (*pim.Platform, pim.Workload, pim.Mapping) {
	w := pim.Workload{N: 32, CB: 16, CT: 8, F: 32, ElemBytes: 2}
	m := pim.Mapping{
		NsTile: 8, FsTile: 8,
		NmTile: 8, FmTile: 8, CBmTile: 4,
		Traversal: [3]pim.Loop{pim.LoopN, pim.LoopF, pim.LoopCB},
		Scheme:    pim.CoarseLoad, CBLoadTile: 1, FLoadTile: 8,
	}
	return pim.UPMEM(), w, m
}

func newTestPIMBackend(t *testing.T) *PIMBackend {
	t.Helper()
	plat, w, m := refOperator()
	be, err := NewPIMBackend(plat, w, m, func(b int) float64 { return 0.02 + 0.002*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// TestPIMBackendHealthy: with a zero plan the backend is a pure latency
// model — OK, exact model latency, no recovery traffic.
func TestPIMBackendHealthy(t *testing.T) {
	be := newTestPIMBackend(t)
	for _, b := range []int{1, 4, 16} {
		out := be.Execute(b, b)
		if !out.OK || out.Reason != "" {
			t.Fatalf("healthy execute failed: %+v", out)
		}
		if want := 0.02 + 0.002*float64(b); out.Latency != want {
			t.Fatalf("batch %d latency %g, want %g", b, out.Latency, want)
		}
		if out.DMARetries != 0 || out.Residual != 0 || out.DeadPEs != 0 {
			t.Fatalf("healthy execute reported recovery traffic: %+v", out)
		}
	}
}

// TestPIMBackendFaultySlowdown: a recoverable plan stretches the latency
// by the reference operator's degradation ratio and reports the recovery
// traffic, while still passing verification.
func TestPIMBackendFaultySlowdown(t *testing.T) {
	be := newTestPIMBackend(t)
	be.SetPlan(pim.FaultPlan{Seed: 5, DeadPEFraction: 0.3, FlipRate: 0.02, StragglerSpread: 1.0})
	healthy := 0.02 + 0.002*16.0
	slowed, recovered := 0, 0
	for i := 0; i < 8; i++ {
		out := be.Execute(16, 16)
		if !out.OK {
			t.Fatalf("recoverable plan failed verification: %+v", out)
		}
		if out.Latency > healthy {
			slowed++
		}
		if out.DeadPEs > 0 && out.Redispatched > 0 {
			recovered++
		}
	}
	if slowed == 0 {
		t.Fatal("dead PEs and stragglers never stretched the latency")
	}
	if recovered == 0 {
		t.Fatal("a 0.3 dead fraction never hit a used PE across 8 attempts")
	}
}

// TestPIMBackendChecksumFailure: a flip rate past the DMA retry budget
// leaves residual corruption, which the end-to-end verification rejects.
func TestPIMBackendChecksumFailure(t *testing.T) {
	be := newTestPIMBackend(t)
	be.SetPlan(pim.FaultPlan{Seed: 5, FlipRate: 0.9})
	out := be.Execute(16, 16)
	if out.OK {
		t.Fatalf("0.9 flip rate passed verification: %+v", out)
	}
	if out.Residual == 0 || out.Reason == "" {
		t.Fatalf("failed attempt carries no diagnosis: %+v", out)
	}
	if out.DMARetries == 0 {
		t.Fatalf("0.9 flip rate caused no DMA retries: %+v", out)
	}
}

// TestPIMBackendIrrecoverable: killing nearly the whole array makes the
// mapping unplaceable; the failure is detected at dispatch with zero
// kernel time.
func TestPIMBackendIrrecoverable(t *testing.T) {
	plat, w, m := refOperator()
	// Shrink the array so the mapping needs most of it, then kill half.
	plat.NumPE = 20 // mapping needs (32/8)·(32/8) = 16 PEs
	be, err := NewPIMBackend(plat, w, m, func(int) float64 { return 0.01 })
	if err != nil {
		t.Fatal(err)
	}
	be.SetPlan(pim.FaultPlan{Seed: 3, DeadPEFraction: 0.9})
	out := be.Execute(4, 4)
	if out.OK || out.Latency != 0 {
		t.Fatalf("irrecoverable plan produced %+v", out)
	}
}

// TestPIMBackendDeterministicSequence: two backends with the same plan
// produce the identical outcome sequence — the per-attempt re-seeding is
// deterministic, not time-dependent.
func TestPIMBackendDeterministicSequence(t *testing.T) {
	mk := func() *PIMBackend {
		be := newTestPIMBackend(t)
		be.SetPlan(pim.FaultPlan{Seed: 11, DeadPEFraction: 0.2, FlipRate: 0.3})
		return be
	}
	a, b := mk(), mk()
	varied := false
	var prev Outcome
	for i := 0; i < 6; i++ {
		oa, ob := a.Execute(8, 8), b.Execute(8, 8)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("attempt %d diverged: %+v vs %+v", i, oa, ob)
		}
		if i > 0 && !reflect.DeepEqual(oa, prev) {
			varied = true
		}
		prev = oa
	}
	if !varied {
		t.Fatal("re-seeding never varied the outcome across attempts")
	}
}

// TestHostBackendAlwaysOK: the host fallback is unconditional.
func TestHostBackendAlwaysOK(t *testing.T) {
	be, err := NewHostBackend(func(b int) float64 { return 0.1 * float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 8} {
		out := be.Execute(b, b)
		if !out.OK || out.Backend != "host" || out.Latency != 0.1*float64(b) {
			t.Fatalf("host execute: %+v", out)
		}
	}
}

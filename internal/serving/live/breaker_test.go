package live

import (
	"strings"
	"testing"
)

// TestBreakerConfigValidate pins the parameter checks.
func TestBreakerConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  BreakerConfig
		want string // substring of the error, "" = valid
	}{
		{"disabled zero value", BreakerConfig{}, ""},
		{"valid", BreakerConfig{Window: 8, MinSamples: 4, TripRatio: 0.5, Cooldown: 1}, ""},
		{"min samples above window", BreakerConfig{Window: 4, MinSamples: 5, TripRatio: 0.5}, "MinSamples"},
		{"negative min samples", BreakerConfig{Window: 4, MinSamples: -1, TripRatio: 0.5}, "MinSamples"},
		{"zero trip ratio", BreakerConfig{Window: 4, TripRatio: 0}, "TripRatio"},
		{"trip ratio above one", BreakerConfig{Window: 4, TripRatio: 1.5}, "TripRatio"},
		{"negative cooldown", BreakerConfig{Window: 4, TripRatio: 0.5, Cooldown: -1}, "Cooldown"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestBreakerDisabled: the zero config routes everything to PIM and
// records nothing.
func TestBreakerDisabled(t *testing.T) {
	b, err := NewBreaker(BreakerConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if r := b.Route(float64(i)); r != RoutePIM {
			t.Fatalf("disabled breaker routed %v", r)
		}
		b.Record(float64(i), false)
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatalf("disabled breaker state=%v trips=%d", b.State(), b.Trips())
	}
}

// TestBreakerLifecycle walks the full state machine: closed → open on
// the trip ratio, host routing through the cooldown, half-open probe
// after it, and back to closed on a successful probe.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	cfg := BreakerConfig{Window: 4, MinSamples: 4, TripRatio: 0.5, Cooldown: 1}
	b, err := NewBreaker(cfg, func(now float64, from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	})
	if err != nil {
		t.Fatal(err)
	}

	// Three outcomes are below MinSamples: no trip even at 2/3 failures.
	b.Record(0.0, false)
	b.Record(0.1, false)
	b.Record(0.2, true)
	if b.State() != BreakerClosed {
		t.Fatalf("tripped below MinSamples: %v", b.State())
	}
	// Fourth outcome: 2 failures over 4 samples = exactly TripRatio.
	b.Record(0.3, false)
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after trip-ratio hit", b.State(), b.Trips())
	}

	// Open: host routing until the cooldown elapses.
	if r := b.Route(0.5); r != RouteHost {
		t.Fatalf("open breaker inside cooldown routed %v", r)
	}
	// Cooldown elapsed: the next attempt is the half-open probe; further
	// routes stay probes until its outcome is recorded.
	if r := b.Route(1.4); r != RouteProbe {
		t.Fatalf("open breaker past cooldown routed %v", r)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after probe admission", b.State())
	}

	// Probe fails: re-open, cooldown restarts from the failure time.
	b.Record(1.5, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed probe", b.State())
	}
	if r := b.Route(2.0); r != RouteHost {
		t.Fatalf("re-opened breaker routed %v before new cooldown", r)
	}

	// Second probe succeeds: recovery, window cleared.
	if r := b.Route(2.6); r != RouteProbe {
		t.Fatalf("re-opened breaker past cooldown routed %v", r)
	}
	b.Record(2.7, true)
	if b.State() != BreakerClosed || b.Recoveries() != 1 {
		t.Fatalf("state=%v recoveries=%d after successful probe", b.State(), b.Recoveries())
	}
	// The cleared window means one old failure cannot re-trip.
	b.Record(3.0, false)
	b.Record(3.1, true)
	b.Record(3.2, true)
	b.Record(3.3, true)
	if b.State() != BreakerClosed {
		t.Fatalf("window not cleared on recovery: %v", b.State())
	}

	want := []string{
		"closed->open",
		"open->half-open",
		"half-open->open",
		"open->half-open",
		"half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

// TestBreakerSlidingWindow: old outcomes age out of the ring buffer, so
// a burst of failures longer ago than Window samples cannot trip.
func TestBreakerSlidingWindow(t *testing.T) {
	b, err := NewBreaker(BreakerConfig{Window: 4, MinSamples: 4, TripRatio: 0.75}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two failures, then a long run of successes pushing them out.
	b.Record(0, false)
	b.Record(0, false)
	for i := 0; i < 8; i++ {
		b.Record(0, true)
	}
	// Window now holds 4 successes; two fresh failures give 2/4 < 0.75.
	b.Record(0, false)
	b.Record(0, false)
	if b.State() != BreakerOpen {
		// 2 fails + 2 oks = 0.5 < 0.75: must still be closed.
		if b.State() != BreakerClosed {
			t.Fatalf("state %v", b.State())
		}
	} else {
		t.Fatalf("breaker tripped on aged-out failures")
	}
	// One more failure: 3/4 = 0.75 ≥ TripRatio: trips.
	b.Record(0, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after 3/4 failures", b.State())
	}
}

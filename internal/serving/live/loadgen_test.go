package live

import (
	"math"
	"strings"
	"testing"
)

// TestLoadSpecValidate pins the spec checks.
func TestLoadSpecValidate(t *testing.T) {
	valid := LoadSpec{Rate: 100, Requests: 10}
	cases := []struct {
		name string
		mut  func(*LoadSpec)
		want string
	}{
		{"valid", func(*LoadSpec) {}, ""},
		{"no requests", func(s *LoadSpec) { s.Requests = 0 }, "request count"},
		{"zero rate", func(s *LoadSpec) { s.Rate = 0 }, "rate"},
		{"schedule not at zero", func(s *LoadSpec) {
			s.Schedule = []RatePoint{{From: 1, Rate: 10}}
		}, "start at t=0"},
		{"schedule rate zero", func(s *LoadSpec) {
			s.Schedule = []RatePoint{{From: 0, Rate: 0}}
		}, "non-positive rate"},
		{"schedule not increasing", func(s *LoadSpec) {
			s.Schedule = []RatePoint{{From: 0, Rate: 10}, {From: 0, Rate: 20}}
		}, "not increasing"},
		{"burst factor", func(s *LoadSpec) {
			s.Burst = &MMPP{BurstFactor: 0, MeanCalm: 1, MeanBurst: 1}
		}, "burst factor"},
		{"burst sojourn", func(s *LoadSpec) {
			s.Burst = &MMPP{BurstFactor: 2, MeanCalm: 0, MeanBurst: 1}
		}, "sojourn"},
		{"zipf exponent", func(s *LoadSpec) { s.Mix = ZipfMix{S: 1, Kinds: 4} }, "exponent"},
		{"zipf kinds", func(s *LoadSpec) { s.Mix = ZipfMix{S: 1.2, Kinds: 0} }, "kind"},
		{"zipf rows mismatch", func(s *LoadSpec) {
			s.Mix = ZipfMix{S: 1.2, Kinds: 3, Rows: []int{1, 2}}
		}, "row counts"},
		{"zipf rows non-positive", func(s *LoadSpec) {
			s.Mix = ZipfMix{S: 1.2, Kinds: 2, Rows: []int{1, 0}}
		}, "non-positive rows"},
	}
	for _, c := range cases {
		s := valid
		c.mut(&s)
		err := s.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestGenerateDeterministic: a fixed spec yields the identical schedule.
func TestGenerateDeterministic(t *testing.T) {
	spec := LoadSpec{
		Rate:     200,
		Burst:    &MMPP{BurstFactor: 4, MeanCalm: 0.5, MeanBurst: 0.2},
		Mix:      ZipfMix{S: 1.3, Kinds: 4, Rows: []int{1, 2, 4, 8}},
		Requests: 500,
		Seed:     42,
	}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != spec.Requests || len(b) != spec.Requests {
		t.Fatalf("lengths %d/%d, want %d", len(a), len(b), spec.Requests)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

// TestGeneratePoissonRate: the empirical rate of a constant-rate stream
// matches the spec within sampling noise.
func TestGeneratePoissonRate(t *testing.T) {
	spec := LoadSpec{Rate: 100, Requests: 4000, Seed: 7}
	arr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	horizon := arr[len(arr)-1].At
	got := float64(len(arr)) / horizon
	if math.Abs(got-spec.Rate)/spec.Rate > 0.1 {
		t.Fatalf("empirical rate %.1f, want %.1f ± 10%%", got, spec.Rate)
	}
	for _, a := range arr {
		if a.Kind != 0 || a.Rows != 1 {
			t.Fatalf("no-mix arrival carries kind=%d rows=%d", a.Kind, a.Rows)
		}
	}
}

// TestGenerateScheduleRamp: a rate ramp makes the later segment denser.
func TestGenerateScheduleRamp(t *testing.T) {
	spec := LoadSpec{
		Schedule: []RatePoint{{From: 0, Rate: 50}, {From: 10, Rate: 400}},
		Requests: 3000,
		Seed:     9,
	}
	arr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var before, after int
	for _, a := range arr {
		if a.At < 10 {
			before++
		} else {
			after++
		}
	}
	// Segment one contributes ~500 arrivals; with 3000 total the ramp
	// segment must dominate by far.
	if before == 0 || after < 4*before {
		t.Fatalf("ramp not visible: %d arrivals before t=10, %d after", before, after)
	}
	rateBefore := float64(before) / 10
	if math.Abs(rateBefore-50)/50 > 0.25 {
		t.Fatalf("pre-ramp rate %.1f, want ~50", rateBefore)
	}
}

// TestGenerateMMPPBursts: the burst overlay raises the mean rate, so the
// same request count fits a shorter horizon than the calm-only stream.
func TestGenerateMMPPBursts(t *testing.T) {
	calm := LoadSpec{Rate: 100, Requests: 3000, Seed: 11}
	bursty := calm
	bursty.Burst = &MMPP{BurstFactor: 5, MeanCalm: 0.5, MeanBurst: 0.5}

	ca, err := calm.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := bursty.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Equal sojourn means: the MMPP's mean rate is 100·(1+5)/2 = 300, so
	// the bursty horizon should be roughly a third of the calm one.
	ch, bh := ca[len(ca)-1].At, ba[len(ba)-1].At
	if bh > 0.6*ch {
		t.Fatalf("bursts not visible: bursty horizon %.2f vs calm %.2f", bh, ch)
	}
}

// TestGenerateZipfMix: kind 0 is the hottest and rows map per kind.
func TestGenerateZipfMix(t *testing.T) {
	spec := LoadSpec{
		Rate:     100,
		Mix:      ZipfMix{S: 1.5, Kinds: 4, Rows: []int{1, 2, 4, 8}},
		Requests: 2000,
		Seed:     5,
	}
	arr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, spec.Mix.Kinds)
	for _, a := range arr {
		if a.Kind < 0 || a.Kind >= spec.Mix.Kinds {
			t.Fatalf("kind %d out of range", a.Kind)
		}
		if a.Rows != spec.Mix.Rows[a.Kind] {
			t.Fatalf("kind %d carries rows %d, want %d", a.Kind, a.Rows, spec.Mix.Rows[a.Kind])
		}
		counts[a.Kind]++
	}
	for k := 1; k < len(counts); k++ {
		if counts[0] <= counts[k] {
			t.Fatalf("Zipf head not hottest: counts %v", counts)
		}
	}
}

package live

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/serving"
)

// SubPhase is one modelled sub-segment of an attempt's latency, used to
// split a successful attempt's span into finer phases (the sharded
// cluster's broadcast / shard busy / gather decomposition).
type SubPhase struct {
	Phase obs.Phase
	Dur   float64
}

// Outcome is the result of one batch execution attempt.
type Outcome struct {
	// Latency is the modelled busy time of this attempt in virtual
	// seconds (charged whether or not the attempt succeeded — a failed
	// attempt still occupied the server, matching SimulateRobust).
	Latency float64
	// OK reports whether the attempt's output passed verification.
	OK bool
	// Reason describes a failed attempt ("" when OK).
	Reason string
	// Backend names who executed ("pim" or "host").
	Backend string
	// DMARetries / Residual / DeadPEs / Redispatched / WorstSlowdown
	// carry the pim recovery report of a PIM attempt (zero for host).
	DMARetries    int
	Residual      int
	DeadPEs       int
	Redispatched  int
	WorstSlowdown float64
	// Failovers / LiveShards carry the cluster route accounting of a
	// sharded PIM attempt (zero for single-array and host backends).
	Failovers  int
	LiveShards int
	// SubPhases optionally decomposes Latency into consecutive modelled
	// segments (the tracer scales them onto the measured attempt span,
	// with the last segment taking the exact remainder). Empty means the
	// whole attempt is one phase, picked by Backend.
	SubPhases []SubPhase
}

// Backend executes one batch attempt and reports its modelled latency
// and verification outcome. Implementations are called only from the
// dispatcher goroutine, but SetPlan-style mutation may arrive
// concurrently from the chaos controller.
type Backend interface {
	Name() string
	// Execute runs one attempt for a batch of size requests totalling
	// rows activation rows.
	Execute(size, rows int) Outcome
}

// PIMBackend is the primary backend: latency comes from a healthy-array
// latency model scaled by the fault plan's degradation on a reference
// workload, and verification drives the plan through the pim layer's
// existing checksummed-retry machinery (Instantiate → assign →
// per-transfer outcome draws, exactly what ExecuteLUTWithFaults
// replays). A batch attempt fails its end-to-end checksum when the
// plan's DMA retry budget was exhausted somewhere (residual corruption)
// or when the plan kills so many PEs that the mapping no longer fits
// (pim.ErrIrrecoverable).
//
// Each attempt re-seeds the plan from a monotonic attempt counter, so a
// FlipRate draws fresh transfer outcomes per attempt — a retried batch
// can genuinely succeed — while the whole sequence stays deterministic
// for a fixed base seed and attempt order (the dispatcher serializes
// Execute calls).
type PIMBackend struct {
	Plat  *pim.Platform
	W     pim.Workload // reference single-batch workload for fault evaluation
	M     pim.Mapping  // tuned mapping for W
	Model serving.LatencyModel

	healthy float64 // SimTiming total for (Plat, W, M)

	mu       sync.Mutex
	plan     pim.FaultPlan
	attempts int64
}

// NewPIMBackend builds the backend; model is the healthy-array latency
// as a function of batch size, and (plat, w, m) the reference operator
// the fault plan is evaluated against.
func NewPIMBackend(plat *pim.Platform, w pim.Workload, m pim.Mapping, model serving.LatencyModel) (*PIMBackend, error) {
	if model == nil {
		return nil, fmt.Errorf("live: PIM backend needs a latency model")
	}
	if err := m.Validate(plat, w); err != nil {
		return nil, fmt.Errorf("live: reference mapping invalid: %w", err)
	}
	healthy := pim.SimTiming(plat, w, m).Total()
	if healthy <= 0 {
		return nil, fmt.Errorf("live: reference workload has non-positive healthy latency")
	}
	return &PIMBackend{Plat: plat, W: w, M: m, Model: model, healthy: healthy}, nil
}

// Name implements Backend.
func (b *PIMBackend) Name() string { return "pim" }

// SetPlan swaps the active fault plan (chaos controller).
func (b *PIMBackend) SetPlan(plan pim.FaultPlan) {
	b.mu.Lock()
	b.plan = plan
	b.mu.Unlock()
}

// Plan returns the active fault plan.
func (b *PIMBackend) Plan() pim.FaultPlan {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.plan
}

// Execute implements Backend.
func (b *PIMBackend) Execute(size, rows int) Outcome {
	b.mu.Lock()
	plan := b.plan
	attempt := b.attempts
	b.attempts++
	b.mu.Unlock()

	out := Outcome{Backend: b.Name(), OK: true, WorstSlowdown: 1, Latency: b.Model(size)}
	if plan.IsZero() {
		return out
	}
	// Fresh transfer-outcome draws per attempt, deterministic overall.
	plan.Seed += attempt

	t, err := pim.SimTimingWithFaults(b.Plat, b.W, b.M, plan)
	if errors.Is(err, pim.ErrIrrecoverable) {
		// The surviving array cannot host the mapping at all: the
		// failure is detected at dispatch, before any kernel time.
		return Outcome{Backend: b.Name(), Reason: "irrecoverable: mapping does not fit surviving PEs"}
	}
	if err != nil {
		return Outcome{Backend: b.Name(), Reason: err.Error()}
	}
	// Degradation ratio of the reference operator under the plan scales
	// the batch latency: re-dispatch rounds, stragglers and DMA retry
	// inflation stretch every batch the same way they stretch Eq. 6.
	out.Latency *= t.Total() / b.healthy

	rec, err := pim.PlanRecovery(b.Plat, b.W, b.M, plan)
	if err != nil {
		return Outcome{Backend: b.Name(), Latency: out.Latency, Reason: err.Error()}
	}
	out.DMARetries = rec.Retries
	out.Residual = rec.ResidualCorrupt
	out.DeadPEs = rec.DeadPEs
	out.Redispatched = rec.Redispatched
	out.WorstSlowdown = rec.WorstSlowdown
	if rec.ResidualCorrupt > 0 {
		// The per-transfer checksum budget ran out somewhere: the batch
		// output is corrupt and the end-to-end verification rejects it.
		out.OK = false
		out.Reason = fmt.Sprintf("checksum: %d residual corrupt elements", rec.ResidualCorrupt)
	}
	return out
}

// HostBackend is the graceful-degradation fallback: the host runs the
// operator as plain GEMM (no LUTs, no PIM array, no faults), slower but
// unconditionally. Its latency model typically comes from
// engine.EstimateDegraded's host-fallback path or baseline.Device
// GEMM estimates.
type HostBackend struct {
	Model serving.LatencyModel
}

// NewHostBackend wraps a host latency model.
func NewHostBackend(model serving.LatencyModel) (*HostBackend, error) {
	if model == nil {
		return nil, fmt.Errorf("live: host backend needs a latency model")
	}
	return &HostBackend{Model: model}, nil
}

// Name implements Backend.
func (b *HostBackend) Name() string { return "host" }

// Execute implements Backend.
func (b *HostBackend) Execute(size, rows int) Outcome {
	return Outcome{Backend: b.Name(), OK: true, WorstSlowdown: 1, Latency: b.Model(size)}
}

package live

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// DecodeServer is the generation-side counterpart of Server: where the
// Server batches whole-sequence inference requests against a simulated
// backend, the DecodeServer runs REAL token generation on an nn.Model,
// continuously batching the KV-cached decode sessions of concurrent
// generation jobs into stacked nn.DecodeBatch steps. Jobs join and
// leave the batch only at step boundaries, so every job's token stream
// is bit-identical to a solo GenerateCached run — and therefore to the
// uncached nn.Generate oracle.
//
// Lifecycle: NewDecodeServer → Submit/Generate (any goroutines) →
// Close. Close stops admission, finishes every in-flight job, and
// joins the step loop.
type DecodeServer struct {
	m     *nn.Model
	cfg   DecodeConfig
	queue chan *DecodeJob
	g     parallel.Group

	// Tracing (optional): decode traces run on a process-relative
	// monotonic clock in seconds — generation is real compute, not a
	// simulated timeline, so there is no virtual clock to share.
	tracer *obs.Tracer
	epoch  time.Time
	ids    atomic.Int64
}

// SetTracer attaches a span tracer; must be called before the first
// Submit. Each job becomes one trace: queue (waiting for a batch slot)
// → decode_prefill (KV-cache prefill of the prompt) → one decode_step
// span per batched token step.
func (s *DecodeServer) SetTracer(tc *obs.Tracer) { s.tracer = tc }

// now is the trace clock: seconds since the server was built.
func (s *DecodeServer) now() float64 { return time.Since(s.epoch).Seconds() }

// DecodeConfig parameterizes a DecodeServer.
type DecodeConfig struct {
	// MaxBatch bounds the sequences stacked per decode step.
	MaxBatch int
	// QueueCap bounds jobs waiting for a batch slot; Submit blocks while
	// the queue is full (decode jobs are long-lived, so backpressure at
	// the door beats unbounded buffering).
	QueueCap int
}

// Validate checks the configuration.
func (c DecodeConfig) Validate() error {
	if c.MaxBatch <= 0 {
		return fmt.Errorf("live: decode MaxBatch must be positive")
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("live: decode QueueCap must be positive")
	}
	return nil
}

// DecodeJob is one in-flight generation request.
type DecodeJob struct {
	prompt      []int
	steps       int
	temperature float64
	rng         *rand.Rand

	sess *nn.DecodeSession
	out  []int
	err  error
	done chan struct{}

	id   int64
	tr   *obs.Trace
	span obs.SpanID // open phase span; only the owning goroutine touches it
}

// Wait blocks until the job finishes and returns its generated tokens.
func (j *DecodeJob) Wait() ([]int, error) {
	<-j.done
	return j.out, j.err
}

// NewDecodeServer builds and starts a decode server for the model. The
// model must be causal TokenInput (session construction enforces it per
// job).
func NewDecodeServer(m *nn.Model, cfg DecodeConfig) (*DecodeServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("live: decode server needs a model")
	}
	s := &DecodeServer{m: m, cfg: cfg, queue: make(chan *DecodeJob, cfg.QueueCap), epoch: time.Now()}
	s.g.Go(s.stepLoop)
	return s, nil
}

// Submit enqueues one generation job: steps tokens continuing prompt,
// greedy when temperature ≤ 0, otherwise sampled from a job-private rng
// seeded with seed (a private stream keeps the output independent of
// batch-mate scheduling). Blocks while the queue is full. Submit must
// not be called after Close.
func (s *DecodeServer) Submit(prompt []int, steps int, temperature float64, seed int64) *DecodeJob {
	j := &DecodeJob{
		prompt:      append([]int(nil), prompt...),
		steps:       steps,
		temperature: temperature,
		done:        make(chan struct{}),
	}
	if temperature > 0 {
		j.rng = rand.New(rand.NewSource(seed))
	}
	j.id = s.ids.Add(1)
	j.span = obs.NoSpan
	j.tr = s.tracer.Start(j.id, s.now())
	if j.tr != nil {
		j.span = j.tr.StartSpan(0, "queue", obs.PhaseQueue, j.tr.Arrival)
	}
	s.queue <- j
	return j
}

// Generate is Submit + Wait.
func (s *DecodeServer) Generate(prompt []int, steps int, temperature float64, seed int64) ([]int, error) {
	return s.Submit(prompt, steps, temperature, seed).Wait()
}

// Close stops admission, completes every queued and in-flight job, and
// joins the step loop. Submit must not be called concurrently with or
// after Close.
func (s *DecodeServer) Close() {
	close(s.queue)
	s.g.Wait()
}

// finish moves a job to its terminal state.
func (j *DecodeJob) finish(err error) {
	j.err = err
	close(j.done)
}

// finishJob seals the job's trace (failures are critical — always kept)
// and moves it to its terminal state.
func (s *DecodeServer) finishJob(j *DecodeJob, err error) {
	if j.tr != nil {
		now := s.now()
		j.tr.EndSpan(j.span, now)
		j.span = obs.NoSpan
		outcome, critical := "served", false
		if err != nil {
			outcome, critical = "failed", true
		}
		s.tracer.Finish(j.tr, outcome, now, critical)
	}
	j.finish(err)
}

// stepLoop is the continuous decode batcher: each iteration admits
// waiting jobs up to MaxBatch, picks one token per active job, retires
// jobs that reached their budget BEFORE the batched feed (a finished
// job must not pay for one more step), and advances the survivors in a
// single stacked nn.DecodeBatch step.
func (s *DecodeServer) stepLoop() {
	db := nn.NewDecodeBatch(s.m)
	var active []*DecodeJob
	open := true
	for open || len(active) > 0 {
		active, open = s.admit(active, open)
		if len(active) == 0 {
			continue
		}

		// Pick one token per job; retire jobs that hit their budget.
		toks := make([]int, 0, len(active))
		survivors := active[:0]
		for _, j := range active {
			j.out = append(j.out, j.sess.Pick(j.temperature, j.rng))
			if len(j.out) >= j.steps {
				s.finishJob(j, nil)
				continue
			}
			survivors = append(survivors, j)
			toks = append(toks, j.out[len(j.out)-1])
		}
		active = survivors
		if len(active) == 0 {
			continue
		}

		// One decode_step span per surviving member covers this batched
		// token step; the first sampling-eligible member's trace becomes
		// the batched-step histogram's exemplar.
		var exemplar uint64
		var stepStart float64
		traced := false
		for _, j := range active {
			if j.tr == nil {
				continue
			}
			if !traced {
				traced = true
				stepStart = s.now()
			}
			j.span = j.tr.StartSpan(0, "step", obs.PhaseDecodeStep, stepStart)
			if exemplar == 0 && s.tracer.WouldSample(j.tr.TraceID) {
				exemplar = j.tr.TraceID
			}
		}
		db.SetTraceID(exemplar)

		sessions := make([]*nn.DecodeSession, len(active))
		for i, j := range active {
			sessions[i] = j.sess
		}
		if err := db.SetSessions(sessions); err != nil {
			s.fail(active, err)
			active = active[:0]
			continue
		}
		if err := db.Feed(toks); err != nil {
			// Feed validates before mutating any session; a failure here
			// is a programming error on the caller side of the batch, so
			// surface it on every member rather than guessing a culprit.
			s.fail(active, err)
			active = active[:0]
			continue
		}
		if traced {
			end := s.now()
			for _, j := range active {
				if j.tr != nil {
					j.tr.EndSpan(j.span, end)
					j.span = obs.NoSpan
				}
			}
		}
	}
}

// admit fills free batch slots from the queue: blocking while idle (no
// active jobs burn no CPU), non-blocking otherwise. Jobs whose session
// cannot be built (bad prompt, non-causal model) or whose step budget
// is empty finish immediately and never occupy a slot.
func (s *DecodeServer) admit(active []*DecodeJob, open bool) ([]*DecodeJob, bool) {
	for open && len(active) < s.cfg.MaxBatch {
		var j *DecodeJob
		var ok bool
		if len(active) == 0 {
			j, ok = <-s.queue
		} else {
			select {
			case j, ok = <-s.queue:
			default:
				return active, open
			}
		}
		if !ok {
			return active, false
		}
		if j.steps <= 0 {
			s.finishJob(j, nil)
			continue
		}
		if j.tr != nil {
			// Admission: the queue wait is over, the prompt prefill begins.
			now := s.now()
			j.tr.EndSpan(j.span, now)
			j.span = j.tr.StartSpan(0, "prefill", obs.PhaseDecodePrefill, now)
		}
		sess, err := nn.NewDecodeSession(s.m, j.prompt)
		if err != nil {
			s.finishJob(j, err)
			continue
		}
		if j.tr != nil {
			j.tr.EndSpan(j.span, s.now())
			j.span = obs.NoSpan
		}
		j.sess = sess
		active = append(active, j)
	}
	return active, open
}

// fail finishes every job with err.
func (s *DecodeServer) fail(jobs []*DecodeJob, err error) {
	for _, j := range jobs {
		s.finishJob(j, err)
	}
}

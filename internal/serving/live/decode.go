package live

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/parallel"
)

// DecodeServer is the generation-side counterpart of Server: where the
// Server batches whole-sequence inference requests against a simulated
// backend, the DecodeServer runs REAL token generation on an nn.Model,
// continuously batching the KV-cached decode sessions of concurrent
// generation jobs into stacked nn.DecodeBatch steps. Jobs join and
// leave the batch only at step boundaries, so every job's token stream
// is bit-identical to a solo GenerateCached run — and therefore to the
// uncached nn.Generate oracle.
//
// Lifecycle: NewDecodeServer → Submit/Generate (any goroutines) →
// Close. Close stops admission, finishes every in-flight job, and
// joins the step loop.
type DecodeServer struct {
	m     *nn.Model
	cfg   DecodeConfig
	queue chan *DecodeJob
	g     parallel.Group
}

// DecodeConfig parameterizes a DecodeServer.
type DecodeConfig struct {
	// MaxBatch bounds the sequences stacked per decode step.
	MaxBatch int
	// QueueCap bounds jobs waiting for a batch slot; Submit blocks while
	// the queue is full (decode jobs are long-lived, so backpressure at
	// the door beats unbounded buffering).
	QueueCap int
}

// Validate checks the configuration.
func (c DecodeConfig) Validate() error {
	if c.MaxBatch <= 0 {
		return fmt.Errorf("live: decode MaxBatch must be positive")
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("live: decode QueueCap must be positive")
	}
	return nil
}

// DecodeJob is one in-flight generation request.
type DecodeJob struct {
	prompt      []int
	steps       int
	temperature float64
	rng         *rand.Rand

	sess *nn.DecodeSession
	out  []int
	err  error
	done chan struct{}
}

// Wait blocks until the job finishes and returns its generated tokens.
func (j *DecodeJob) Wait() ([]int, error) {
	<-j.done
	return j.out, j.err
}

// NewDecodeServer builds and starts a decode server for the model. The
// model must be causal TokenInput (session construction enforces it per
// job).
func NewDecodeServer(m *nn.Model, cfg DecodeConfig) (*DecodeServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("live: decode server needs a model")
	}
	s := &DecodeServer{m: m, cfg: cfg, queue: make(chan *DecodeJob, cfg.QueueCap)}
	s.g.Go(s.stepLoop)
	return s, nil
}

// Submit enqueues one generation job: steps tokens continuing prompt,
// greedy when temperature ≤ 0, otherwise sampled from a job-private rng
// seeded with seed (a private stream keeps the output independent of
// batch-mate scheduling). Blocks while the queue is full. Submit must
// not be called after Close.
func (s *DecodeServer) Submit(prompt []int, steps int, temperature float64, seed int64) *DecodeJob {
	j := &DecodeJob{
		prompt:      append([]int(nil), prompt...),
		steps:       steps,
		temperature: temperature,
		done:        make(chan struct{}),
	}
	if temperature > 0 {
		j.rng = rand.New(rand.NewSource(seed))
	}
	s.queue <- j
	return j
}

// Generate is Submit + Wait.
func (s *DecodeServer) Generate(prompt []int, steps int, temperature float64, seed int64) ([]int, error) {
	return s.Submit(prompt, steps, temperature, seed).Wait()
}

// Close stops admission, completes every queued and in-flight job, and
// joins the step loop. Submit must not be called concurrently with or
// after Close.
func (s *DecodeServer) Close() {
	close(s.queue)
	s.g.Wait()
}

// finish moves a job to its terminal state.
func (j *DecodeJob) finish(err error) {
	j.err = err
	close(j.done)
}

// stepLoop is the continuous decode batcher: each iteration admits
// waiting jobs up to MaxBatch, picks one token per active job, retires
// jobs that reached their budget BEFORE the batched feed (a finished
// job must not pay for one more step), and advances the survivors in a
// single stacked nn.DecodeBatch step.
func (s *DecodeServer) stepLoop() {
	db := nn.NewDecodeBatch(s.m)
	var active []*DecodeJob
	open := true
	for open || len(active) > 0 {
		active, open = s.admit(active, open)
		if len(active) == 0 {
			continue
		}

		// Pick one token per job; retire jobs that hit their budget.
		toks := make([]int, 0, len(active))
		survivors := active[:0]
		for _, j := range active {
			j.out = append(j.out, j.sess.Pick(j.temperature, j.rng))
			if len(j.out) >= j.steps {
				j.finish(nil)
				continue
			}
			survivors = append(survivors, j)
			toks = append(toks, j.out[len(j.out)-1])
		}
		active = survivors
		if len(active) == 0 {
			continue
		}

		sessions := make([]*nn.DecodeSession, len(active))
		for i, j := range active {
			sessions[i] = j.sess
		}
		if err := db.SetSessions(sessions); err != nil {
			s.fail(active, err)
			active = active[:0]
			continue
		}
		if err := db.Feed(toks); err != nil {
			// Feed validates before mutating any session; a failure here
			// is a programming error on the caller side of the batch, so
			// surface it on every member rather than guessing a culprit.
			s.fail(active, err)
			active = active[:0]
		}
	}
}

// admit fills free batch slots from the queue: blocking while idle (no
// active jobs burn no CPU), non-blocking otherwise. Jobs whose session
// cannot be built (bad prompt, non-causal model) or whose step budget
// is empty finish immediately and never occupy a slot.
func (s *DecodeServer) admit(active []*DecodeJob, open bool) ([]*DecodeJob, bool) {
	for open && len(active) < s.cfg.MaxBatch {
		var j *DecodeJob
		var ok bool
		if len(active) == 0 {
			j, ok = <-s.queue
		} else {
			select {
			case j, ok = <-s.queue:
			default:
				return active, open
			}
		}
		if !ok {
			return active, false
		}
		if j.steps <= 0 {
			j.finish(nil)
			continue
		}
		sess, err := nn.NewDecodeSession(s.m, j.prompt)
		if err != nil {
			j.finish(err)
			continue
		}
		j.sess = sess
		active = append(active, j)
	}
	return active, open
}

// fail finishes every job with err.
func (s *DecodeServer) fail(jobs []*DecodeJob, err error) {
	for _, j := range jobs {
		j.finish(err)
	}
}

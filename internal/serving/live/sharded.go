package live

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/serving"
	"repro/internal/shard"
)

// ShardedPIMBackend is the cluster-scale primary backend: the operator
// is placed across N DIMM shards (internal/shard) with replicated
// sub-LUT ranges, and every batch attempt is evaluated against the
// cluster's routing and timing model under the active fault plan and
// shard up/down state. Per-PE faults degrade individual shards; whole
// shards die via SetShardDown (the chaos controller's KillShards); a
// batch attempt only fails outright when either the DMA retry budget
// runs out somewhere (residual corruption, as on the single array) or
// every replica of some LUT range is lost (shard.ErrAllReplicasLost) —
// which the circuit breaker turns into host fallback exactly like the
// single-array irrecoverable path.
//
// Attempt seeds advance like PIMBackend's, so retried batches draw
// fresh per-shard transfer outcomes while the run stays deterministic.
type ShardedPIMBackend struct {
	Cluster *shard.Cluster
	Model   serving.LatencyModel

	healthy   float64 // steady cluster makespan of the healthy, all-up cluster
	healthyCT *shard.ClusterTiming

	mu       sync.Mutex
	plan     pim.FaultPlan
	state    shard.State
	attempts int64
}

// ErrNonPositiveMakespan reports a reference cluster whose healthy
// steady-state makespan is not positive — the degradation-ratio latency
// scaling would divide by it, so the backend refuses to build. Callers
// distinguish it from other construction failures with errors.Is.
var ErrNonPositiveMakespan = errors.New("live: reference cluster has non-positive healthy makespan")

// NewShardedPIMBackend builds the backend; model is the healthy-cluster
// latency as a function of batch size, and c the placed reference
// operator fault plans are evaluated against.
func NewShardedPIMBackend(c *shard.Cluster, model serving.LatencyModel) (*ShardedPIMBackend, error) {
	if model == nil {
		return nil, fmt.Errorf("live: sharded PIM backend needs a latency model")
	}
	ct, err := c.Estimate(pim.FaultPlan{}, shard.NewState(c.Cfg.Shards))
	if err != nil {
		return nil, fmt.Errorf("live: healthy cluster estimate: %w", err)
	}
	if ct.SteadyMakespan <= 0 {
		return nil, fmt.Errorf("live: healthy cluster estimate %g: %w", ct.SteadyMakespan, ErrNonPositiveMakespan)
	}
	return &ShardedPIMBackend{
		Cluster:   c,
		Model:     model,
		healthy:   ct.SteadyMakespan,
		healthyCT: ct,
		state:     shard.NewState(c.Cfg.Shards),
	}, nil
}

// clusterSubPhases decomposes an attempt latency by the cluster
// timing's broadcast / busy / gather shares. A single-shard cluster
// pays no interconnect and returns nil (the attempt stays one phase).
func clusterSubPhases(ct *shard.ClusterTiming, latency float64) []SubPhase {
	if ct == nil || ct.SteadyMakespan <= 0 || latency <= 0 || ct.Broadcast+ct.Gather <= 0 {
		return nil
	}
	b := latency * ct.Broadcast / ct.SteadyMakespan
	g := latency * ct.Gather / ct.SteadyMakespan
	return []SubPhase{
		{Phase: obs.PhaseBroadcast, Dur: b},
		{Phase: obs.PhasePIM, Dur: latency - b - g},
		{Phase: obs.PhaseGather, Dur: g},
	}
}

// Name implements Backend. The sharded cluster is still the "pim" side
// of the breaker's pim-vs-host routing.
func (b *ShardedPIMBackend) Name() string { return "pim" }

// SetPlan swaps the active fault plan (chaos controller).
func (b *ShardedPIMBackend) SetPlan(plan pim.FaultPlan) {
	b.mu.Lock()
	b.plan = plan
	b.mu.Unlock()
}

// Plan returns the active fault plan.
func (b *ShardedPIMBackend) Plan() pim.FaultPlan {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.plan
}

// SetShardDown marks one shard dead or revived (chaos controller).
func (b *ShardedPIMBackend) SetShardDown(id int, down bool) {
	b.mu.Lock()
	b.state.SetDown(id, down)
	b.mu.Unlock()
}

// State returns a copy of the current shard up/down state.
func (b *ShardedPIMBackend) State() shard.State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.Clone()
}

// allUp reports whether st marks no shard down.
func allUp(st shard.State) bool {
	for _, d := range st.Down {
		if d {
			return false
		}
	}
	return true
}

// Execute implements Backend. The cluster estimate runs outside the
// mutex on a snapshot of (plan, state) — Estimate fans out on the
// worker pool and must not run under a lock.
func (b *ShardedPIMBackend) Execute(size, rows int) Outcome {
	b.mu.Lock()
	plan := b.plan
	st := b.state.Clone()
	attempt := b.attempts
	b.attempts++
	b.mu.Unlock()

	out := Outcome{Backend: b.Name(), OK: true, WorstSlowdown: 1,
		Latency: b.Model(size), LiveShards: b.Cluster.Cfg.Shards}
	if plan.IsZero() && allUp(st) {
		out.SubPhases = clusterSubPhases(b.healthyCT, out.Latency)
		return out
	}
	// Fresh per-shard transfer-outcome draws per attempt (PlanFor mixes
	// this seed per shard), deterministic overall.
	plan.Seed += attempt

	ct, err := b.Cluster.Estimate(plan, st)
	if errors.Is(err, pim.ErrIrrecoverable) {
		// Every replica of some LUT range is lost: detected at dispatch,
		// before any kernel time.
		return Outcome{Backend: b.Name(), Reason: "irrecoverable: every replica of a LUT range lost"}
	}
	if err != nil {
		return Outcome{Backend: b.Name(), Reason: err.Error()}
	}
	// Degradation ratio of the reference cluster under (plan, state)
	// scales the batch latency: failover pile-up, re-dispatch rounds,
	// stragglers and DMA retries stretch every batch the same way.
	out.Latency *= ct.SteadyMakespan / b.healthy
	out.SubPhases = clusterSubPhases(ct, out.Latency)
	out.Failovers = ct.Failovers
	out.LiveShards = ct.LiveShards
	for _, stg := range ct.PerShard {
		out.DMARetries += stg.Retries
		out.Residual += stg.Residual
		out.DeadPEs += stg.DeadPEs
		out.Redispatched += stg.Redispatched
		if stg.WorstSlowdown > out.WorstSlowdown {
			out.WorstSlowdown = stg.WorstSlowdown
		}
	}
	if out.Residual > 0 {
		out.OK = false
		out.Reason = fmt.Sprintf("checksum: %d residual corrupt elements", out.Residual)
	}
	return out
}

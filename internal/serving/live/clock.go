package live

import (
	"fmt"
	"time"
)

// ScaledClock maps the runtime's virtual time axis — the modelled seconds
// every latency model in this repo speaks — onto the wall clock, scaled.
// A scale of 20 means one virtual second passes in 50 wall milliseconds,
// so a 30-virtual-second saturation run finishes in about 1.5 s of test
// time while the goroutines underneath still block, race and interleave
// for real.
//
// All Server, load-generator and chaos-schedule times are virtual
// seconds on one shared clock; nothing in the live runtime touches
// time.Now directly. The recorded timestamps are therefore directly
// comparable to the offline simulator's, which is what makes the replay
// oracle (Recorder.Replay) meaningful.
type ScaledClock struct {
	epoch time.Time
	scale float64 // virtual seconds per wall second
}

// NewScaledClock starts a clock at virtual time zero. scale must be
// positive; 1 runs in real time.
func NewScaledClock(scale float64) (*ScaledClock, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("live: clock scale %g must be positive", scale)
	}
	return &ScaledClock{epoch: time.Now(), scale: scale}, nil
}

// Now returns the current virtual time in seconds since the clock
// started.
func (c *ScaledClock) Now() float64 {
	return time.Since(c.epoch).Seconds() * c.scale
}

// Sleep blocks for d virtual seconds (no-op for d <= 0).
func (c *ScaledClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(c.WallDuration(d))
}

// WallDuration converts a virtual duration to the wall duration it
// occupies, for use with timers (never negative).
func (c *ScaledClock) WallDuration(d float64) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(d / c.scale * float64(time.Second))
}

package live

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/pim"
	"repro/internal/serving"
)

// detScenario builds a deterministic-runner scenario: the chaos
// acceptance shape (saturating load, mid-run fault storm, heal) but
// smaller, since virtual time costs nothing here.
func detScenario(t *testing.T, shedPolicy ShedPolicy, queueCap int) (Config, []Arrival, ChaosSchedule) {
	t.Helper()
	cfg := Config{
		Policy:   serving.Policy{MaxBatch: 16, MaxWait: 0.01},
		QueueCap: queueCap,
		Shed:     shedPolicy,
		Robust: serving.Robustness{Deadline: 1.0, MaxRetries: 2, Backoff: 0.01},
		// The short cooldown makes the breaker half-open-probe during the
		// storm: probe batches fail on PIM and retry onto the host, which
		// is what puts retry blame into served traces.
		Breaker: BreakerConfig{Window: 6, MinSamples: 3, TripRatio: 0.5, Cooldown: 0.4},
	}
	arrivals, err := LoadSpec{
		Rate:     500,
		Burst:    &MMPP{BurstFactor: 2, MeanCalm: 2.0, MeanBurst: 0.5},
		Mix:      ZipfMix{S: 1.4, Kinds: 4},
		Requests: 3000,
		Seed:     17,
	}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sched := ChaosSchedule{
		{At: 2, Plan: pim.FaultPlan{Seed: 99, DeadPEFraction: 0.1, FlipRate: 0.9, StragglerSpread: 0.5}, Note: "storm"},
		{At: 3.5, Note: "heal"},
	}
	return cfg, arrivals, sched
}

func detBackends(t *testing.T) (Backend, Backend) {
	t.Helper()
	be := newTestPIMBackend(t)
	hostBE, err := NewHostBackend(func(b int) float64 { return 0.04 + 0.004*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	return be, hostBE
}

func detTracer(t *testing.T, capacity int) *obs.Tracer {
	t.Helper()
	tc, err := obs.NewTracer(obs.Config{Capacity: capacity, SampleRate: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

// TestRunDeterministicConservation: the deterministic runner obeys the
// same accounting identity as the live server, and the storm actually
// exercises retries and the breaker.
func TestRunDeterministicConservation(t *testing.T) {
	cfg, arrivals, sched := detScenario(t, ShedReject, 1536)
	pimBE, hostBE := detBackends(t)
	res, err := RunDeterministic(cfg, pimBE, hostBE, arrivals, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Summary
	if sum.Submitted != len(arrivals) {
		t.Fatalf("submitted %d, want %d", sum.Submitted, len(arrivals))
	}
	if err := sum.Conservation(); err != nil {
		t.Fatal(err)
	}
	if sum.Served == 0 || sum.Retries == 0 {
		t.Fatalf("storm scenario served %d with %d retries — not exercising the fault path", sum.Served, sum.Retries)
	}
	if sum.HostServed == 0 {
		t.Fatalf("breaker never diverted to the host during the storm: %+v", sum)
	}
}

// TestRunDeterministicByteIdentical: two runs from identical inputs
// produce identical recorders and identical attribution reports — the
// property the concurrent server cannot give and pimdl-trace needs.
func TestRunDeterministicByteIdentical(t *testing.T) {
	run := func() (*ChaosResult, []byte) {
		cfg, arrivals, sched := detScenario(t, ShedReject, 96)
		pimBE, hostBE := detBackends(t)
		tc := detTracer(t, 4096)
		res, err := RunDeterministic(cfg, pimBE, hostBE, arrivals, sched, tc)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := obs.BuildReport(tc, nil, 10)
		if err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return res, js
	}
	a, ja := run()
	b, jb := run()
	if !reflect.DeepEqual(a.Recorder.Records(), b.Recorder.Records()) {
		t.Fatal("request records diverged between identical runs")
	}
	if !reflect.DeepEqual(a.Recorder.Batches(), b.Recorder.Batches()) {
		t.Fatal("batch records diverged between identical runs")
	}
	if !reflect.DeepEqual(a.Recorder.Events(), b.Recorder.Events()) {
		t.Fatal("timeline events diverged between identical runs")
	}
	if string(ja) != string(jb) {
		t.Fatal("attribution report JSON diverged between identical runs")
	}
}

// TestRunDeterministicAttributionReconciles is the PR's acceptance
// invariant: for every sampled request of a seeded chaos run, the
// per-phase attribution sums to the recorder's own latency within 1e-9.
func TestRunDeterministicAttributionReconciles(t *testing.T) {
	cfg, arrivals, sched := detScenario(t, ShedReject, 96)
	pimBE, hostBE := detBackends(t)
	tc := detTracer(t, 8192)
	res, err := RunDeterministic(cfg, pimBE, hostBE, arrivals, sched, tc)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, rec := range res.Recorder.Records() {
		if rec.TraceID == 0 {
			t.Fatalf("record %d has no trace ID with SampleRate 1 and an undersized ring not in play", rec.ID)
		}
		tr := tc.Lookup(rec.TraceID)
		if tr == nil {
			t.Fatalf("record %d trace %016x does not resolve", rec.ID, rec.TraceID)
		}
		if err := obs.Reconcile(tr); err != nil {
			t.Fatal(err)
		}
		if lat := rec.Latency(); lat > 0 {
			var sum float64
			for _, secs := range obs.Breakdown(tr) {
				sum += secs
			}
			if d := math.Abs(sum - lat); d > obs.ReconcileTolerance {
				t.Fatalf("record %d: attribution %.12g != recorded latency %.12g (|Δ|=%.3g)", rec.ID, sum, lat, d)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no completed requests checked")
	}
	// The storm + deep-retry scenario must surface retry and backoff
	// blame somewhere in the report's tail.
	rep, err := obs.BuildReport(tc, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	for _, b := range rep.Bands {
		retries += b.Retries
	}
	if retries == 0 {
		t.Fatal("report attributes no retries in a storm scenario")
	}
	if len(rep.Slowest) != 5 {
		t.Fatalf("top-K has %d rows, want 5", len(rep.Slowest))
	}
}

// TestRunDeterministicDegradeLane: under ShedDegrade with a tiny queue,
// spilled requests are served by the host lane and their traces carry
// host-phase blame that still reconciles.
func TestRunDeterministicDegradeLane(t *testing.T) {
	cfg, arrivals, sched := detScenario(t, ShedDegrade, 8)
	cfg.DegradeWorkers = 2
	pimBE, hostBE := detBackends(t)
	tc := detTracer(t, 8192)
	res, err := RunDeterministic(cfg, pimBE, hostBE, arrivals, sched, tc)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Summary.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Summary.Degraded == 0 {
		t.Fatalf("tiny queue never spilled to the degrade lane: %+v", res.Summary)
	}
	hostBlame := 0
	for _, rec := range res.Recorder.Records() {
		if rec.Outcome != OutcomeDegraded {
			continue
		}
		tr := tc.Lookup(rec.TraceID)
		if tr == nil {
			t.Fatalf("degraded record %d trace unresolved", rec.ID)
		}
		if err := obs.Reconcile(tr); err != nil {
			t.Fatal(err)
		}
		if obs.Breakdown(tr)[obs.PhaseHost] > 0 {
			hostBlame++
		}
	}
	if hostBlame == 0 {
		t.Fatal("degraded traces carry no host-phase blame")
	}
}

// TestRunDeterministicShardedSubPhases: with the sharded cluster
// backend, served traces decompose PIM attempts into broadcast / pim /
// gather segments and still reconcile.
func TestRunDeterministicShardedSubPhases(t *testing.T) {
	be := newTestShardedBackend(t)
	hostBE, err := NewHostBackend(func(b int) float64 { return 0.04 + 0.004*float64(b) })
	if err != nil {
		t.Fatal(err)
	}
	cfg, arrivals, _ := detScenario(t, ShedReject, 1536)
	tc := detTracer(t, 8192)
	res, err := RunDeterministic(cfg, be, hostBE, arrivals[:500], nil, tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Served == 0 {
		t.Fatalf("sharded run served nothing: %+v", res.Summary)
	}
	seen := map[obs.Phase]bool{}
	for _, tr := range tc.Traces() {
		if err := obs.Reconcile(tr); err != nil {
			t.Fatal(err)
		}
		for ph, secs := range obs.Breakdown(tr) {
			if secs > 0 {
				seen[ph] = true
			}
		}
	}
	for _, ph := range []obs.Phase{obs.PhaseBroadcast, obs.PhasePIM, obs.PhaseGather} {
		if !seen[ph] {
			t.Errorf("sharded run never attributed %s time", ph)
		}
	}
}

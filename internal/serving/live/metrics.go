package live

import "repro/internal/metrics"

// Live-runtime metrics. The counters mirror the Recorder's accounting
// exactly — TestLiveMetricsMatchRecorder pins counter == Summary for
// every outcome class — and the latency histogram gives a running
// process the p50/p95/p99 the recorder computes exactly post-hoc.
var liveMetrics = struct {
	submitted  *metrics.Counter
	outcomes   *metrics.CounterFamily // outcome="served|degraded|shed|timeout|failed"
	expired    *metrics.Counter
	attempts   *metrics.CounterFamily // backend="pim|host"
	retries    *metrics.Counter
	dmaRetries *metrics.Counter
	trips      *metrics.Counter
	recoveries *metrics.Counter
	latency    *metrics.Histogram
	batchSize  *metrics.Histogram
	queue      *metrics.Gauge
	queuePeak  *metrics.Gauge
	brState    *metrics.Gauge
}{}

func init() {
	r := metrics.Default()
	m := &liveMetrics
	m.submitted = r.NewCounter("pimdl_live_submitted_total",
		"requests offered to the live server")
	m.outcomes = r.NewCounterFamily("pimdl_live_requests_total",
		"terminal request outcomes (served, degraded, shed, timeout, failed)", "outcome")
	m.expired = r.NewCounter("pimdl_live_expired_total",
		"requests served but completed past their deadline")
	m.attempts = r.NewCounterFamily("pimdl_live_batch_attempts_total",
		"batch execution attempts by backend", "backend")
	m.retries = r.NewCounter("pimdl_live_batch_retries_total",
		"batch execution attempts beyond the first")
	m.dmaRetries = r.NewCounter("pimdl_live_dma_retries_total",
		"checksum-failed DMA transfers re-issued inside PIM attempts")
	m.trips = r.NewCounter("pimdl_live_breaker_trips_total",
		"circuit breaker transitions to open")
	m.recoveries = r.NewCounter("pimdl_live_breaker_recoveries_total",
		"circuit breaker recoveries (half-open probe succeeded)")
	m.latency = r.NewHistogram("pimdl_live_latency_seconds",
		"end-to-end request latency of served requests (virtual seconds)",
		metrics.ExpBuckets(1e-4, 2, 21))
	m.batchSize = r.NewHistogram("pimdl_live_batch_size",
		"dispatched batch sizes (primary lane)",
		metrics.ExpBuckets(1, 2, 11))
	m.queue = r.NewGauge("pimdl_live_queue_depth",
		"admission queue occupancy (last observed)")
	m.queuePeak = r.NewGauge("pimdl_live_queue_depth_peak",
		"high-water mark of the admission queue")
	m.brState = r.NewGauge("pimdl_live_breaker_state",
		"circuit breaker state (0 closed, 1 open, 2 half-open)")
}

func recordSubmit() {
	if metrics.Enabled() {
		liveMetrics.submitted.Inc()
	}
}

func observeLiveQueue(depth int) {
	if !metrics.Enabled() {
		return
	}
	liveMetrics.queue.Set(float64(depth))
	liveMetrics.queuePeak.SetMax(float64(depth))
}

// recordOutcome folds one terminal request record.
func recordOutcome(rec Record) {
	if !metrics.Enabled() {
		return
	}
	m := &liveMetrics
	m.outcomes.With(rec.Outcome.String()).Inc()
	if rec.Expired {
		m.expired.Inc()
	}
	if rec.Outcome == OutcomeServed || rec.Outcome == OutcomeDegraded {
		// The trace ID (0 when unsampled) links the latency bucket back
		// to a kept request trace.
		m.latency.ObserveExemplar(rec.Latency(), rec.TraceID)
	}
}

// recordBatchExec folds one finished primary-lane batch.
func recordBatchExec(br BatchRecord) {
	if !metrics.Enabled() {
		return
	}
	liveMetrics.batchSize.ObserveExemplar(float64(br.Size), br.TraceID)
}

// recordAttempt folds one batch execution attempt.
func recordAttempt(out Outcome, attempt int) {
	if !metrics.Enabled() {
		return
	}
	m := &liveMetrics
	m.attempts.With(out.Backend).Inc()
	if attempt > 0 {
		m.retries.Inc()
	}
	m.dmaRetries.Add(int64(out.DMARetries))
}

// recordBreaker folds one breaker transition.
func recordBreaker(from, to BreakerState) {
	if !metrics.Enabled() {
		return
	}
	m := &liveMetrics
	m.brState.Set(float64(to))
	switch to {
	case BreakerOpen:
		if from == BreakerClosed {
			m.trips.Inc()
		}
	case BreakerClosed:
		if from == BreakerHalfOpen {
			m.recoveries.Inc()
		}
	}
}

package live

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// RunDeterministic replays a live scenario as a single-goroutine
// discrete-event simulation in pure virtual time, mirroring the
// concurrent Server's semantics step for step: the same admission and
// shed policies, the same continuous-batching rules (MaxBatch /
// MaxBatchRows / MaxWait with leftover carry-over), dispatch-time
// deadline shedding with top-up, breaker-routed attempts with
// retry/backoff against the same Backend implementations, chaos plan
// swaps at their scheduled times, and the degrade lane as a bank of
// virtual workers.
//
// Where the real Server's timestamps carry wall-clock jitter (goroutine
// scheduling under the ScaledClock), this runner's timestamps are exact
// functions of the inputs — two runs with the same configuration,
// arrivals, schedule and seeds produce byte-identical recorders,
// metrics and span traces. It is how pimdl-trace gets a reproducible
// attribution report; the chaos tests keep exercising the concurrent
// server, whose traces reconcile but whose latencies jitter.
//
// Two deliberate simplifications, both conservative: ShedBlock admits
// without bound (a blocked Submit in the live server parks the
// submitter, not the request — the arrival stamp and everything
// downstream are identical), and a batch whose formation window
// outlives the final arrival still closes at the window's end rather
// than at queue close.
func RunDeterministic(cfg Config, pimBE, hostBE Backend, arrivals []Arrival, sched ChaosSchedule, tracer *obs.Tracer) (*ChaosResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pimBE == nil {
		return nil, fmt.Errorf("live: deterministic run needs a PIM backend")
	}
	if hostBE == nil && cfg.Shed == ShedDegrade {
		return nil, fmt.Errorf("live: ShedDegrade needs a host backend")
	}
	if hostBE == nil && cfg.Breaker.Enabled() {
		return nil, fmt.Errorf("live: the circuit breaker needs a host backend to divert to")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	var chaosTarget ChaosTarget
	if len(sched) > 0 {
		be, ok := pimBE.(ChaosTarget)
		if !ok {
			return nil, fmt.Errorf("live: chaos schedule needs a ChaosTarget backend, have %T", pimBE)
		}
		for _, ev := range sched {
			if ev.shardOps() {
				if _, ok := be.(ShardChaosTarget); !ok {
					return nil, fmt.Errorf("live: shard-kill chaos events need a sharded backend, have %T", pimBE)
				}
				break
			}
		}
		chaosTarget = be
	}
	if cfg.DegradeWorkers == 0 {
		cfg.DegradeWorkers = 1
	}
	d := &detRunner{
		cfg:      cfg,
		pim:      pimBE,
		host:     hostBE,
		rec:      NewRecorder(),
		tracer:   tracer,
		arrivals: append([]Arrival(nil), arrivals...),
		sched:    append(ChaosSchedule(nil), sched...),
		target:   chaosTarget,
		degFree:  make([]float64, cfg.DegradeWorkers),
	}
	sort.SliceStable(d.arrivals, func(i, j int) bool { return d.arrivals[i].At < d.arrivals[j].At })
	sort.SliceStable(d.sched, func(i, j int) bool { return d.sched[i].At < d.sched[j].At })
	var err error
	d.breaker, err = NewBreaker(cfg.Breaker, func(now float64, from, to BreakerState) {
		d.rec.AddEvent(Event{At: now, Kind: "breaker", Note: from.String() + "→" + to.String()})
		recordBreaker(from, to)
	})
	if err != nil {
		return nil, err
	}
	d.run()
	return &ChaosResult{Recorder: d.rec, Summary: d.rec.Summary(), Admitted: d.admitted}, nil
}

// detRunner is the single-goroutine event simulation's state.
type detRunner struct {
	cfg     Config
	pim     Backend
	host    Backend
	breaker *Breaker
	rec     *Recorder
	tracer  *obs.Tracer
	target  ChaosTarget

	arrivals []Arrival
	ai       int // next arrival to admit
	sched    ChaosSchedule
	si       int // next chaos event to apply
	idSeq    int64
	admitted int

	// waiting is the admission queue: admitted requests the dispatcher
	// has not yet picked up, in arrival order.
	waiting  []*Request
	leftover *Request
	// serverFree is when the primary lane finishes its current batch.
	serverFree float64
	// degFree / degPickups model the degrade-lane worker bank: per-worker
	// free times, and the pickup times of every spilled request (the
	// degrade queue's occupancy at time t is the count of pickups > t).
	degFree    []float64
	degPickups []float64
}

// run is the main dispatch loop: form a batch, shed-and-top-up, execute,
// repeat until arrivals, queue and leftover are all exhausted.
func (d *detRunner) run() {
	for {
		first, t0 := d.nextFirst()
		if first == nil {
			// Late chaos events still land on the timeline, as the live
			// chaos goroutine would fire them before drain.
			d.applyChaos(math.Inf(1))
			return
		}
		batch, leftover, tClose := d.formBatch(first, t0)
		d.admitUntil(tClose)
		batch, leftover = d.shedAndTopUp(batch, leftover, tClose)
		d.leftover = leftover
		if len(batch) > 0 {
			d.executeBatch(batch, tClose)
		}
	}
}

// admitUntil processes every arrival with At ≤ t through admission, in
// order — the virtual Submit.
func (d *detRunner) admitUntil(t float64) {
	for d.ai < len(d.arrivals) && d.arrivals[d.ai].At <= t {
		d.admit(d.arrivals[d.ai])
		d.ai++
	}
}

// admit is Submit's deterministic twin: stamp, trace, then apply the
// shed policy against the modelled queue occupancies.
func (d *detRunner) admit(a Arrival) *Request {
	rows := a.Rows
	if rows <= 0 {
		rows = 1
	}
	d.idSeq++
	r := &Request{ID: d.idSeq, Kind: a.Kind, Rows: rows, Arrival: a.At}
	traceSubmit(d.tracer, r)
	recordSubmit()
	shed := func() {
		tid := traceTerminal(d.tracer, r, OutcomeShedQueue.String(), r.Arrival, true)
		d.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
			Outcome: OutcomeShedQueue, TraceID: tid})
	}
	switch d.cfg.Shed {
	case ShedBlock:
		// The live server parks the submitter until space frees; the
		// request itself always lands with its original arrival stamp.
	case ShedReject:
		if len(d.waiting) >= d.cfg.QueueCap {
			shed()
			return nil
		}
	case ShedDegrade:
		if len(d.waiting) >= d.cfg.QueueCap {
			if d.degradeOccupancy(a.At) >= d.cfg.QueueCap {
				shed()
				return nil
			}
			d.admitted++
			d.spill(r)
			return nil
		}
	}
	d.admitted++
	d.waiting = append(d.waiting, r)
	observeLiveQueue(len(d.waiting))
	return r
}

// degradeOccupancy counts spilled requests not yet picked up at time t.
func (d *detRunner) degradeOccupancy(t float64) int {
	n := 0
	for _, p := range d.degPickups {
		if p > t {
			n++
		}
	}
	return n
}

// spill runs one request through the degrade lane: the earliest-free
// worker picks it up, deadline-checks it, and serves it singly on the
// host. The lane is independent of the primary lane, so it can be
// simulated eagerly at admission time.
func (d *detRunner) spill(r *Request) {
	w := 0
	for i, f := range d.degFree {
		if f < d.degFree[w] {
			w = i
		}
	}
	start := math.Max(d.degFree[w], r.Arrival)
	d.degPickups = append(d.degPickups, start)
	if dl := d.cfg.Robust.Deadline; dl > 0 && start >= r.Arrival+dl {
		tid := traceTerminal(d.tracer, r, OutcomeTimeout.String(), start, true)
		d.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
			Outcome: OutcomeTimeout, TraceID: tid})
		d.degFree[w] = start
		return
	}
	out := d.host.Execute(1, r.Rows)
	done := start + math.Max(0, out.Latency)
	traceDegrade(r, out, start, done)
	rec := Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
		Outcome: OutcomeDegraded, Start: start, Done: done, Batch: 1, Backend: out.Backend}
	if dl := d.cfg.Robust.Deadline; dl > 0 && done > r.Arrival+dl {
		rec.Expired = true
	}
	rec.TraceID = traceTerminal(d.tracer, r, OutcomeDegraded.String(), done, rec.Expired)
	d.rec.Add(rec)
	d.degFree[w] = done
}

// nextFirst picks the request that leads the next batch: the carried
// leftover, else the queue head, else the next arrival. Returns nil
// when the run is over. t0 is the batch-formation start time.
func (d *detRunner) nextFirst() (*Request, float64) {
	d.admitUntil(d.serverFree)
	if d.leftover != nil {
		first := d.leftover
		d.leftover = nil
		return first, d.serverFree
	}
	for {
		if len(d.waiting) > 0 {
			first := d.waiting[0]
			d.waiting = d.waiting[1:]
			t0 := math.Max(d.serverFree, first.Arrival)
			tracePickup(first, t0)
			return first, t0
		}
		if d.ai >= len(d.arrivals) {
			return nil, 0
		}
		// Idle server: advance to the next arrival and admit it (it can
		// still spill to the degrade lane under ShedDegrade's queue-full
		// race only in the live server; here an empty queue always admits).
		d.admit(d.arrivals[d.ai])
		d.ai++
	}
}

// formBatch is fill's deterministic twin: starting from first at t0, it
// merges queued requests and future arrivals until the batch budget,
// the shape budget (overflow returned as leftover) or the wait budget
// (first.Arrival + MaxWait) is exhausted. tClose is the dispatch time.
func (d *detRunner) formBatch(first *Request, t0 float64) (batch []*Request, leftover *Request, tClose float64) {
	batch = []*Request{first}
	rows := first.Rows
	pol := d.cfg.Policy
	deadline := first.Arrival + pol.MaxWait
	if deadline < t0 {
		deadline = t0
	}
	tClose = t0
	for len(batch) < pol.MaxBatch {
		var r *Request
		pickAt := tClose
		if len(d.waiting) > 0 {
			r = d.waiting[0]
			d.waiting = d.waiting[1:]
			pickAt = math.Max(t0, r.Arrival)
		} else if d.ai < len(d.arrivals) && d.arrivals[d.ai].At <= deadline {
			// The dispatcher is parked in the wait window: an arrival is
			// admitted and dequeued in the same instant.
			r = d.admit(d.arrivals[d.ai])
			d.ai++
			if r == nil {
				continue // spilled to the degrade lane
			}
			d.waiting = d.waiting[:len(d.waiting)-1] // straight into the batch
			pickAt = math.Max(t0, r.Arrival)
		} else {
			// Wait budget exhausted with the batch unfilled.
			tClose = deadline
			return batch, nil, tClose
		}
		tracePickup(r, pickAt)
		tClose = pickAt
		if d.cfg.MaxBatchRows > 0 && rows+r.Rows > d.cfg.MaxBatchRows {
			return batch, r, tClose
		}
		batch = append(batch, r)
		rows += r.Rows
	}
	return batch, nil, tClose
}

// shedAndTopUp mirrors the server's dispatch-time deadline pass at now
// = tClose: expired requests are shed as timeouts and the holes
// refilled from the queue up to the budgets.
func (d *detRunner) shedAndTopUp(batch []*Request, leftover *Request, now float64) ([]*Request, *Request) {
	deadline := d.cfg.Robust.Deadline
	expired := func(r *Request) bool { return deadline > 0 && now >= r.Arrival+deadline }
	timeout := func(r *Request) {
		tid := traceTerminal(d.tracer, r, OutcomeTimeout.String(), now, true)
		d.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
			Outcome: OutcomeTimeout, TraceID: tid})
	}
	kept := batch[:0]
	rows := 0
	for _, r := range batch {
		if expired(r) {
			timeout(r)
			continue
		}
		kept = append(kept, r)
		rows += r.Rows
	}
	for leftover == nil && len(kept) < d.cfg.Policy.MaxBatch &&
		len(d.waiting) > 0 && d.waiting[0].Arrival <= now {
		r := d.waiting[0]
		d.waiting = d.waiting[1:]
		if expired(r) {
			timeout(r)
			continue
		}
		tracePickup(r, now)
		if d.cfg.MaxBatchRows > 0 && rows+r.Rows > d.cfg.MaxBatchRows {
			leftover = r
			break
		}
		kept = append(kept, r)
		rows += r.Rows
	}
	return kept, leftover
}

// applyChaos applies every scheduled event with At ≤ t, mirroring the
// chaos goroutine's plan swaps and shard kills.
func (d *detRunner) applyChaos(t float64) {
	for d.si < len(d.sched) && d.sched[d.si].At <= t {
		ev := d.sched[d.si]
		d.si++
		if sct, ok := d.target.(ShardChaosTarget); ok && ev.shardOps() {
			for _, s := range ev.KillShards {
				sct.SetShardDown(s, true)
			}
			for _, s := range ev.ReviveShards {
				sct.SetShardDown(s, false)
			}
		}
		if d.target != nil {
			d.target.SetPlan(ev.Plan)
		}
		note := ev.Note
		if note == "" {
			note = fmt.Sprintf("dead=%.2f flip=%.2f straggler=%.2f",
				ev.Plan.DeadPEFraction, ev.Plan.FlipRate, ev.Plan.StragglerSpread)
		}
		d.rec.AddEvent(Event{At: ev.At, Kind: "chaos", Note: note})
	}
}

// executeBatch runs one shedded batch to a terminal state in virtual
// time — the server's attempt loop with exact timestamps.
func (d *detRunner) executeBatch(batch []*Request, start float64) {
	observeLiveQueue(len(d.waiting))
	now := start
	rob := d.cfg.Robust
	rows := 0
	for _, r := range batch {
		rows += r.Rows
	}
	traceDispatch(batch, now)
	br := BatchRecord{Start: now, Size: len(batch), Rows: rows}
	for attempt := 0; ; attempt++ {
		d.applyChaos(now)
		attStart := now
		be, viaPIM := d.route(now)
		out := be.Execute(len(batch), rows)
		now += math.Max(0, out.Latency)
		attEnd := now
		if viaPIM {
			d.breaker.Record(attEnd, out.OK)
		}
		traceAttempt(batch, attempt, out, attStart, attEnd)
		br.Attempts++
		br.AttemptDurs = append(br.AttemptDurs, out.Latency)
		br.Backends = append(br.Backends, out.Backend)
		br.DMARetries += out.DMARetries
		br.Failovers += out.Failovers
		if out.LiveShards > 0 {
			br.LiveShards = out.LiveShards
		}
		recordAttempt(out, attempt)
		if out.OK {
			br.Done = attEnd
			tids := make([]uint64, len(batch))
			for i, r := range batch {
				rec := Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
					Outcome: OutcomeServed, Start: br.Start, Done: attEnd,
					Batch: len(batch), Backend: out.Backend}
				if rob.Deadline > 0 && attEnd > r.Arrival+rob.Deadline {
					rec.Expired = true
				}
				rec.TraceID = traceTerminal(d.tracer, r, OutcomeServed.String(), attEnd, rec.Expired)
				tids[i] = rec.TraceID
				d.rec.Add(rec)
			}
			br.TraceID = batchTraceID(tids)
			d.rec.AddBatch(br)
			break
		}
		if attempt >= rob.MaxRetries {
			br.Done = attEnd
			br.Failed = true
			tids := make([]uint64, len(batch))
			for i, r := range batch {
				tid := traceTerminal(d.tracer, r, OutcomeFailed.String(), attEnd, true)
				tids[i] = tid
				d.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
					Outcome: OutcomeFailed, TraceID: tid})
			}
			br.TraceID = batchTraceID(tids)
			d.rec.AddBatch(br)
			break
		}
		if rob.Backoff > 0 {
			bo := rob.Backoff * math.Pow(2, float64(attempt))
			traceBackoff(batch, now, now+bo)
			now += bo
		}
	}
	d.serverFree = now
}

// route picks the backend for one attempt via the breaker, mirroring
// Server.routeAttempt.
func (d *detRunner) route(now float64) (Backend, bool) {
	if d.host == nil || !d.cfg.Breaker.Enabled() {
		return d.pim, true
	}
	if d.breaker.Route(now) == RouteHost {
		return d.host, false
	}
	return d.pim, true
}

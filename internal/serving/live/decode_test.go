package live

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
)

func decodeModel(t *testing.T) *nn.Model {
	t.Helper()
	c := nn.Tiny(nn.TokenInput, 8, 2)
	c.Causal = true
	return nn.NewModel(c, 31)
}

// TestDecodeServerMatchesGenerate is the batcher's oracle: jobs served
// through the continuously batched decode loop must produce exactly the
// token streams of the uncached nn.Generate reference, no matter how
// the batch was packed.
func TestDecodeServerMatchesGenerate(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 4, QueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{1},
		{2, 3, 4},
		{9, 8, 7, 6, 5, 4, 3, 2}, // full window from the start
		{1, 1, 2, 2, 3, 3},
		{5, 6},
		{7},
	}
	steps := []int{12, 7, 10, 3, 9, 1}

	var wg sync.WaitGroup
	got := make([][]int, len(prompts))
	errs := make([]error, len(prompts))
	for i := range prompts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.Generate(prompts[i], steps[i], 0, 0)
		}(i)
	}
	wg.Wait()
	s.Close()

	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		want, err := m.Generate(prompts[i], steps[i], 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("job %d: %d tokens, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("job %d token %d: batched %d, reference %d\nbatched   %v\nreference %v",
					i, j, got[i][j], want[j], got[i], want)
			}
		}
	}
}

// TestDecodeServerSampledDeterministic: a sampled job's private seeded
// rng makes its stream independent of batch-mates — identical to a solo
// seeded Generate run.
func TestDecodeServerSampledDeterministic(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 3, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy noise jobs share the batch with the sampled job.
	n1 := s.Submit([]int{1, 2}, 15, 0, 0)
	sampled := s.Submit([]int{3, 4, 5}, 10, 0.8, 77)
	n2 := s.Submit([]int{6}, 5, 0, 0)
	got, err := sampled.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	want, err := m.Generate([]int{3, 4, 5}, 10, 0.8, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampled token %d: batched %d, solo %d", i, got[i], want[i])
		}
	}
}

func TestDecodeServerBadJobs(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 2, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid prompt fails its own job without touching a healthy one.
	bad := s.Submit(nil, 5, 0, 0)
	good := s.Submit([]int{1}, 5, 0, 0)
	if _, err := bad.Wait(); err == nil {
		t.Fatal("empty prompt accepted")
	}
	out, err := good.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("healthy job got %d tokens", len(out))
	}
	// Zero-step job finishes immediately and empty.
	none, err := s.Generate([]int{1}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("zero-step job produced %v", none)
	}
	s.Close()

	if _, err := NewDecodeServer(m, DecodeConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewDecodeServer(nil, DecodeConfig{MaxBatch: 1, QueueCap: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
}

// TestDecodeServerTracing: each generation job becomes one trace —
// queue → decode_prefill → one decode_step per batched token — that
// reconciles on the wall clock, failures are kept as critical traces,
// and the batched-step histogram's exemplars resolve against the ring.
func TestDecodeServerTracing(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 3, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	tc := detTracer(t, 256)
	s.SetTracer(tc)

	before := decodeBatchExemplars(t)
	jobs := []*DecodeJob{
		s.Submit([]int{1, 2}, 10, 0, 0),
		s.Submit([]int{3}, 6, 0.8, 42),
		s.Submit(nil, 4, 0, 0), // empty prompt: session build fails
		s.Submit([]int{4, 5, 6}, 1, 0, 0),
	}
	for _, j := range jobs {
		j.Wait() //nolint:errcheck — per-job errors asserted via traces below
	}
	s.Close()

	st := tc.Stats()
	if st.Started != 4 || st.Finished != 4 {
		t.Fatalf("tracer saw %d started / %d finished traces for 4 jobs", st.Started, st.Finished)
	}
	traces := tc.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring kept %d traces, want 4 at SampleRate 1", len(traces))
	}
	phases := map[obs.Phase]bool{}
	failed := 0
	for _, tr := range traces {
		if err := obs.Reconcile(tr); err != nil {
			t.Fatal(err)
		}
		for ph, secs := range obs.Breakdown(tr) {
			if secs > 0 {
				phases[ph] = true
			}
		}
		if tr.Outcome() == "failed" {
			failed++
			if !tr.Critical() {
				t.Error("failed decode trace not marked critical")
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed traces, want exactly the bad-prompt job", failed)
	}
	for _, ph := range []obs.Phase{obs.PhaseQueue, obs.PhaseDecodePrefill, obs.PhaseDecodeStep} {
		if !phases[ph] {
			t.Errorf("no trace attributed %s time", ph)
		}
	}

	// Exemplar resolution: slots this run wrote must link to kept traces.
	if metrics.Enabled() {
		changed := 0
		for bucket, id := range decodeBatchExemplars(t) {
			if before[bucket] == id {
				continue
			}
			changed++
			if tc.Lookup(id) == nil {
				t.Errorf("decode batch bucket %s exemplar %016x does not resolve", bucket, id)
			}
		}
		if changed == 0 {
			t.Error("batched decode steps wrote no exemplars")
		}
	}
}

// decodeBatchExemplars reads pimdl_decode_batch_rows' exemplar slots
// out of the default registry's JSON exposition (the histogram itself
// is private to package nn).
func decodeBatchExemplars(t *testing.T) map[string]uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := metrics.Default().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	out := map[string]uint64{}
	hist, _ := doc["pimdl_decode_batch_rows"].(map[string]any)
	ex, _ := hist["exemplars"].(map[string]any)
	for bucket, v := range ex {
		id, err := strconv.ParseUint(v.(string), 16, 64)
		if err != nil {
			t.Fatalf("exemplar %v: %v", v, err)
		}
		out[bucket] = id
	}
	return out
}

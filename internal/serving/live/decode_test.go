package live

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nn"
)

func decodeModel(t *testing.T) *nn.Model {
	t.Helper()
	c := nn.Tiny(nn.TokenInput, 8, 2)
	c.Causal = true
	return nn.NewModel(c, 31)
}

// TestDecodeServerMatchesGenerate is the batcher's oracle: jobs served
// through the continuously batched decode loop must produce exactly the
// token streams of the uncached nn.Generate reference, no matter how
// the batch was packed.
func TestDecodeServerMatchesGenerate(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 4, QueueCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{1},
		{2, 3, 4},
		{9, 8, 7, 6, 5, 4, 3, 2}, // full window from the start
		{1, 1, 2, 2, 3, 3},
		{5, 6},
		{7},
	}
	steps := []int{12, 7, 10, 3, 9, 1}

	var wg sync.WaitGroup
	got := make([][]int, len(prompts))
	errs := make([]error, len(prompts))
	for i := range prompts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.Generate(prompts[i], steps[i], 0, 0)
		}(i)
	}
	wg.Wait()
	s.Close()

	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		want, err := m.Generate(prompts[i], steps[i], 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got[i]) != len(want) {
			t.Fatalf("job %d: %d tokens, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("job %d token %d: batched %d, reference %d\nbatched   %v\nreference %v",
					i, j, got[i][j], want[j], got[i], want)
			}
		}
	}
}

// TestDecodeServerSampledDeterministic: a sampled job's private seeded
// rng makes its stream independent of batch-mates — identical to a solo
// seeded Generate run.
func TestDecodeServerSampledDeterministic(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 3, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy noise jobs share the batch with the sampled job.
	n1 := s.Submit([]int{1, 2}, 15, 0, 0)
	sampled := s.Submit([]int{3, 4, 5}, 10, 0.8, 77)
	n2 := s.Submit([]int{6}, 5, 0, 0)
	got, err := sampled.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	want, err := m.Generate([]int{3, 4, 5}, 10, 0.8, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sampled token %d: batched %d, solo %d", i, got[i], want[i])
		}
	}
}

func TestDecodeServerBadJobs(t *testing.T) {
	m := decodeModel(t)
	s, err := NewDecodeServer(m, DecodeConfig{MaxBatch: 2, QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Invalid prompt fails its own job without touching a healthy one.
	bad := s.Submit(nil, 5, 0, 0)
	good := s.Submit([]int{1}, 5, 0, 0)
	if _, err := bad.Wait(); err == nil {
		t.Fatal("empty prompt accepted")
	}
	out, err := good.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("healthy job got %d tokens", len(out))
	}
	// Zero-step job finishes immediately and empty.
	none, err := s.Generate([]int{1}, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("zero-step job produced %v", none)
	}
	s.Close()

	if _, err := NewDecodeServer(m, DecodeConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := NewDecodeServer(nil, DecodeConfig{MaxBatch: 1, QueueCap: 1}); err == nil {
		t.Fatal("nil model accepted")
	}
}

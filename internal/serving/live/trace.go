package live

import "repro/internal/obs"

// Span plumbing shared by the concurrent Server and the deterministic
// scenario runner. Each request carries its trace and the ID of its
// currently open phase span (queue while waiting for pickup, batch
// while waiting for dispatch); the helpers below move it through the
// lifecycle and keep the phase segments non-overlapping, which is what
// the attribution invariant (obs.Reconcile) rests on. Every helper is
// a no-op for an untraced request, so the instrumented paths cost a
// nil check when tracing is off.

// traceSubmit opens the request's trace and its queue span at arrival.
// Must run before the request is enqueued — the dispatcher may pick it
// up immediately.
func traceSubmit(tc *obs.Tracer, r *Request) {
	r.span = obs.NoSpan
	r.tr = tc.Start(r.ID, r.Arrival)
	if r.tr != nil {
		r.span = r.tr.StartSpan(0, "queue", obs.PhaseQueue, r.Arrival)
	}
}

// traceTerminal closes the request's open phase span at end, finishes
// the trace with its terminal outcome, and returns the trace ID when
// the tracer kept it (0 otherwise) — the value Record.TraceID and the
// histogram exemplars carry, so only resolvable IDs ever escape.
func traceTerminal(tc *obs.Tracer, r *Request, outcome string, end float64, critical bool) uint64 {
	if r.tr == nil {
		return 0
	}
	r.tr.EndSpan(r.span, end)
	r.span = obs.NoSpan
	if tc.Finish(r.tr, outcome, end, critical) {
		return r.tr.TraceID
	}
	return 0
}

// tracePickup closes the queue span and opens the batch span at the
// dequeue time. now is clamped to the arrival so a stamp taken just
// before a late arrival cannot produce overlapping segments.
func tracePickup(r *Request, now float64) {
	if r.tr == nil {
		return
	}
	if now < r.Arrival {
		now = r.Arrival
	}
	r.tr.EndSpan(r.span, now)
	r.span = r.tr.StartSpan(0, "batch", obs.PhaseBatch, now)
}

// traceDispatch closes the batch spans of every traced member: batch
// formation is over, execution attempts follow.
func traceDispatch(batch []*Request, now float64) {
	for _, r := range batch {
		if r.tr == nil {
			continue
		}
		r.tr.EndSpan(r.span, now)
		r.span = obs.NoSpan
	}
}

// traceAttempt records one batch execution attempt over [start, end] on
// every traced member: a decorative "attempt" parent carrying the
// routing attributes, with phased children — the backend's modelled
// sub-phases on success, a single retry span on failure.
func traceAttempt(batch []*Request, attempt int, out Outcome, start, end float64) {
	for _, r := range batch {
		if r.tr == nil {
			continue
		}
		att := r.tr.StartSpan(0, "attempt", "", start)
		attrs := []obs.Attr{
			obs.Int("attempt", int64(attempt)),
			obs.Str("backend", out.Backend),
		}
		if out.DMARetries > 0 {
			attrs = append(attrs, obs.Int("dma_retries", int64(out.DMARetries)))
		}
		if out.Failovers > 0 {
			attrs = append(attrs, obs.Int("failovers", int64(out.Failovers)))
		}
		if out.LiveShards > 0 {
			attrs = append(attrs, obs.Int("live_shards", int64(out.LiveShards)))
		}
		if !out.OK {
			attrs = append(attrs, obs.Str("reason", out.Reason))
		}
		r.tr.Annotate(att, attrs...)
		emitAttemptPhases(r.tr, att, out, start, end)
		r.tr.EndSpan(att, end)
	}
}

// emitAttemptPhases writes the phased children of one attempt span.
func emitAttemptPhases(tr *obs.Trace, parent obs.SpanID, out Outcome, start, end float64) {
	if !out.OK {
		// A failed attempt's busy time is pure waste: all retry blame.
		sp := tr.StartSpan(parent, "retry", obs.PhaseRetry, start)
		tr.EndSpan(sp, end)
		return
	}
	total := end - start
	if len(out.SubPhases) == 0 || out.Latency <= 0 || total <= 0 {
		ph := obs.PhasePIM
		if out.Backend == "host" {
			ph = obs.PhaseHost
		}
		sp := tr.StartSpan(parent, "execute", ph, start)
		tr.EndSpan(sp, end)
		return
	}
	// Scale the modelled decomposition onto the measured interval; the
	// last segment takes the exact remainder so the children tile
	// [start, end] with no gap or overlap.
	scale := total / out.Latency
	t := start
	for i, seg := range out.SubPhases {
		segEnd := end
		if i < len(out.SubPhases)-1 {
			segEnd = t + seg.Dur*scale
			if segEnd > end {
				segEnd = end
			}
		}
		sp := tr.StartSpan(parent, string(seg.Phase), seg.Phase, t)
		tr.EndSpan(sp, segEnd)
		t = segEnd
	}
}

// traceBackoff records the exponential-backoff pause between attempts.
func traceBackoff(batch []*Request, start, end float64) {
	for _, r := range batch {
		if r.tr == nil {
			continue
		}
		sp := r.tr.StartSpan(0, "backoff", obs.PhaseBackoff, start)
		r.tr.EndSpan(sp, end)
	}
}

// traceDegrade records a degrade-lane host execution over [start, end]:
// the queue span closes at pickup and the whole service time is host
// blame (the degrade lane has no batch-formation phase).
func traceDegrade(r *Request, out Outcome, start, end float64) {
	if r.tr == nil {
		return
	}
	if start < r.Arrival {
		start = r.Arrival
	}
	r.tr.EndSpan(r.span, start)
	r.span = obs.NoSpan
	sp := r.tr.StartSpan(0, "degrade", obs.PhaseHost, start)
	r.tr.Annotate(sp, obs.Int("attempt", 0), obs.Str("backend", out.Backend))
	r.tr.EndSpan(sp, end)
}

// batchTraceID picks the batch record's exemplar: the first member the
// tracer kept.
func batchTraceID(ids []uint64) uint64 {
	for _, id := range ids {
		if id != 0 {
			return id
		}
	}
	return 0
}

package live

import (
	"fmt"
	"math/rand"
	"sort"
)

// Arrival is one scheduled request of the open-loop load: at virtual
// time At, a request of the given kind and row count is submitted.
type Arrival struct {
	At   float64
	Kind int
	Rows int
}

// RatePoint is one segment of a piecewise-constant rate schedule: from
// time From onward the base rate is Rate (req/s), until the next point.
type RatePoint struct {
	From float64
	Rate float64
}

// MMPP is a two-state Markov-modulated Poisson overlay: the process
// alternates between a calm state (base rate) and a burst state (base
// rate × BurstFactor), with exponentially distributed sojourn times.
type MMPP struct {
	// BurstFactor multiplies the base rate while bursting (> 0).
	BurstFactor float64
	// MeanCalm / MeanBurst are the mean sojourn seconds in each state.
	MeanCalm, MeanBurst float64
}

// ZipfMix draws each request's kind from a Zipf distribution over
// Kinds values — the skewed request mix of multi-model serving — and
// maps kinds to row counts (request shapes).
type ZipfMix struct {
	// S is the Zipf exponent (> 1; larger = more skew). 0 disables the
	// mix: every request is kind 0.
	S float64
	// Kinds is the number of distinct request kinds (≥ 1 when S > 0).
	Kinds int
	// Rows[i] is the activation-row count of kind i; nil means one row
	// per request regardless of kind.
	Rows []int
}

// LoadSpec describes an open-loop request stream. Exactly one of Rate
// or Schedule supplies the base rate.
type LoadSpec struct {
	// Rate is the constant base arrival rate (req/s); ignored when
	// Schedule is non-empty.
	Rate float64
	// Schedule is an optional piecewise-constant rate ramp (points
	// sorted by From, first From must be 0).
	Schedule []RatePoint
	// Burst is an optional MMPP overlay.
	Burst *MMPP
	// Mix is the request-kind distribution.
	Mix ZipfMix
	// Requests is the total number of arrivals to generate.
	Requests int
	// Seed drives all draws; the schedule is deterministic for a fixed
	// spec.
	Seed int64
}

// Validate checks the spec.
func (ls LoadSpec) Validate() error {
	if ls.Requests <= 0 {
		return fmt.Errorf("live: load spec needs a positive request count")
	}
	if len(ls.Schedule) == 0 {
		if ls.Rate <= 0 {
			return fmt.Errorf("live: load rate %g must be positive", ls.Rate)
		}
	} else {
		//pimdl:lint-ignore float-compare the schedule must begin at exactly t=0; any other literal is a config error
		if ls.Schedule[0].From != 0 {
			return fmt.Errorf("live: rate schedule must start at t=0, got %g", ls.Schedule[0].From)
		}
		for i, p := range ls.Schedule {
			if p.Rate <= 0 {
				return fmt.Errorf("live: rate schedule point %d has non-positive rate %g", i, p.Rate)
			}
			if i > 0 && p.From <= ls.Schedule[i-1].From {
				return fmt.Errorf("live: rate schedule not increasing at point %d", i)
			}
		}
	}
	if b := ls.Burst; b != nil {
		if b.BurstFactor <= 0 {
			return fmt.Errorf("live: MMPP burst factor %g must be positive", b.BurstFactor)
		}
		if b.MeanCalm <= 0 || b.MeanBurst <= 0 {
			return fmt.Errorf("live: MMPP sojourn means must be positive")
		}
	}
	//pimdl:lint-ignore float-compare zero-value S is the exact "no mix" sentinel, never a computed value
	if m := ls.Mix; m.S != 0 {
		if m.S <= 1 {
			return fmt.Errorf("live: Zipf exponent %g must be > 1", m.S)
		}
		if m.Kinds < 1 {
			return fmt.Errorf("live: Zipf mix needs at least one kind")
		}
		if m.Rows != nil && len(m.Rows) != m.Kinds {
			return fmt.Errorf("live: Zipf mix has %d kinds but %d row counts", m.Kinds, len(m.Rows))
		}
		for i, r := range m.Rows {
			if r <= 0 {
				return fmt.Errorf("live: kind %d has non-positive rows %d", i, r)
			}
		}
	}
	return nil
}

// rateAt returns the base rate at time t.
func (ls LoadSpec) rateAt(t float64) float64 {
	if len(ls.Schedule) == 0 {
		return ls.Rate
	}
	// Points are sorted by From; find the last segment starting <= t.
	i := sort.Search(len(ls.Schedule), func(i int) bool { return ls.Schedule[i].From > t }) - 1
	if i < 0 {
		i = 0
	}
	return ls.Schedule[i].Rate
}

// Generate produces the deterministic arrival schedule. Inter-arrivals
// are exponential at the instantaneous rate — base rate at t times the
// MMPP state factor — using the memorylessness of the exponential to
// restart the draw at every rate-change boundary (state switch or
// schedule segment), which samples the piecewise-constant intensity
// exactly.
func (ls LoadSpec) Generate() ([]Arrival, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(ls.Seed))
	var zipf *rand.Zipf
	if ls.Mix.S > 0 && ls.Mix.Kinds > 1 {
		// rand.Zipf draws from [0, imax]; v=1 makes rank 0 the hottest.
		zipf = rand.NewZipf(rng, ls.Mix.S, 1, uint64(ls.Mix.Kinds-1))
	}

	out := make([]Arrival, 0, ls.Requests)
	t := 0.0
	burst := false
	nextSwitch := -1.0
	if ls.Burst != nil {
		nextSwitch = rng.ExpFloat64() * ls.Burst.MeanCalm
	}
	for len(out) < ls.Requests {
		rate := ls.rateAt(t)
		if burst {
			rate *= ls.Burst.BurstFactor
		}
		dt := rng.ExpFloat64() / rate
		// Restart the draw at the next rate boundary if we cross it.
		boundary := ls.nextBoundary(t, nextSwitch)
		if boundary >= 0 && t+dt > boundary {
			t = boundary
			//pimdl:lint-ignore float-compare nextBoundary returns nextSwitch itself when it wins; identity, bit-exact by construction
			if ls.Burst != nil && boundary == nextSwitch {
				burst = !burst
				mean := ls.Burst.MeanCalm
				if burst {
					mean = ls.Burst.MeanBurst
				}
				nextSwitch = boundary + rng.ExpFloat64()*mean
			}
			continue
		}
		t += dt
		kind := 0
		if zipf != nil {
			kind = int(zipf.Uint64())
		}
		rows := 1
		if ls.Mix.Rows != nil {
			rows = ls.Mix.Rows[kind]
		}
		out = append(out, Arrival{At: t, Kind: kind, Rows: rows})
	}
	return out, nil
}

// nextBoundary returns the earliest rate-change boundary strictly after
// t (MMPP state switch or schedule segment start), or -1 if none.
func (ls LoadSpec) nextBoundary(t, nextSwitch float64) float64 {
	b := -1.0
	if nextSwitch > t {
		b = nextSwitch
	}
	for _, p := range ls.Schedule {
		if p.From > t {
			if b < 0 || p.From < b {
				b = p.From
			}
			break
		}
	}
	return b
}

// Drive submits the schedule to the server in real (scaled) time: it
// sleeps to each arrival's virtual timestamp and calls Submit. It
// returns the number of requests the server admitted. Run it on its own
// goroutine (e.g. a parallel.Group); Drain the server only after Drive
// returns.
func Drive(clock *ScaledClock, s *Server, arrivals []Arrival) int {
	admitted := 0
	for _, a := range arrivals {
		if d := a.At - clock.Now(); d > 0 {
			clock.Sleep(d)
		}
		if s.Submit(a.Kind, a.Rows) {
			admitted++
		}
	}
	return admitted
}

package live

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/serving"
)

// OutcomeKind is the terminal state of one submitted request. Every
// Submit produces exactly one record with exactly one OutcomeKind — the
// conservation law the chaos tests pin (Conservation).
type OutcomeKind int

// The request outcomes.
const (
	// OutcomeServed: completed by the primary (batched) lane.
	OutcomeServed OutcomeKind = iota
	// OutcomeDegraded: completed by the degrade lane (host spillover
	// under ShedDegrade).
	OutcomeDegraded
	// OutcomeShedQueue: rejected at admission (queue full).
	OutcomeShedQueue
	// OutcomeTimeout: deadline passed before service began.
	OutcomeTimeout
	// OutcomeFailed: dropped with its batch's retry budget spent.
	OutcomeFailed
)

func (k OutcomeKind) String() string {
	switch k {
	case OutcomeServed:
		return "served"
	case OutcomeDegraded:
		return "degraded"
	case OutcomeShedQueue:
		return "shed"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("outcome(%d)", int(k))
	}
}

// Record is the terminal account of one request.
type Record struct {
	ID         int64
	Kind, Rows int
	Arrival    float64
	Outcome    OutcomeKind
	// Start/Done/Batch/Backend are set for served and degraded requests.
	Start, Done float64
	Batch       int
	Backend     string
	// Expired marks a request served past its deadline.
	Expired bool
	// TraceID links the record to its kept span trace in the obs layer;
	// 0 means the trace was not sampled (or tracing was off).
	TraceID uint64
}

// Latency returns the request's end-to-end latency (0 if unserved).
func (r Record) Latency() float64 {
	if r.Outcome != OutcomeServed && r.Outcome != OutcomeDegraded {
		return 0
	}
	return r.Done - r.Arrival
}

// BatchRecord is one primary-lane batch execution, across all its
// attempts.
type BatchRecord struct {
	Start, Done float64
	Size, Rows  int
	// Attempts is the total execution attempts (≥ 1); AttemptDurs their
	// individual modelled durations; Backends who ran each attempt.
	Attempts    int
	AttemptDurs []float64
	Backends    []string
	DMARetries  int
	// Failovers counts cluster tiles served off their preferred replica
	// across the batch's attempts; LiveShards is the live shard count of
	// the final attempt (both sharded PIM backend only, zero otherwise).
	Failovers  int
	LiveShards int
	// Failed marks a batch dropped with its retry budget spent.
	Failed bool
	// TraceID is the first kept member trace of the batch (0 when no
	// member was sampled) — the batch-size histogram's exemplar.
	TraceID uint64
}

// Event is one timeline annotation: a chaos plan change or a breaker
// transition. Kind is one of "chaos", "breaker"; Note is free-form.
type Event struct {
	At   float64
	Kind string
	Note string
}

// Summary are the run's accounting totals.
type Summary struct {
	Submitted int
	Served    int
	Degraded  int
	ShedQueue int
	Timeouts  int
	Failures  int
	Expired   int
	// Batches / Attempts / Retries / DMARetries cover the primary lane.
	Batches    int
	Attempts   int
	Retries    int // attempts beyond the first, across batches
	DMARetries int
	Failovers  int // cluster tiles served off their preferred replica
	HostServed int // primary-lane requests served by the host fallback
}

// Conservation checks the accounting identity: every submitted request
// reached exactly one terminal state.
func (s Summary) Conservation() error {
	total := s.Served + s.Degraded + s.ShedQueue + s.Timeouts + s.Failures
	if total != s.Submitted {
		return fmt.Errorf("live: conservation broken: served %d + degraded %d + shed %d + timeouts %d + failures %d = %d != submitted %d",
			s.Served, s.Degraded, s.ShedQueue, s.Timeouts, s.Failures, total, s.Submitted)
	}
	return nil
}

// Recorder is the run's terminal sink: every request record, every
// batch execution and every timeline event, safe for concurrent append.
type Recorder struct {
	mu      sync.Mutex
	recs    []Record
	batches []BatchRecord
	events  []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends one terminal request record (and folds it into the live
// metrics). The server is the usual writer; tools reconstructing a run
// — e.g. to feed trace.ExportLive — may also populate a recorder
// directly.
func (r *Recorder) Add(rec Record) {
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
	recordOutcome(rec)
}

// AddBatch appends one primary-lane batch execution.
func (r *Recorder) AddBatch(br BatchRecord) {
	r.mu.Lock()
	r.batches = append(r.batches, br)
	r.mu.Unlock()
	recordBatchExec(br)
}

// AddEvent appends a timeline annotation (chaos controller, breaker).
func (r *Recorder) AddEvent(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Records returns a copy of all request records, sorted by arrival.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	out := append([]Record(nil), r.recs...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		//pimdl:lint-ignore float-compare sort tie-break; equal arrivals fall through to the ID order, any bit difference is a real order
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Batches returns a copy of the batch executions, sorted by start.
func (r *Recorder) Batches() []BatchRecord {
	r.mu.Lock()
	out := append([]BatchRecord(nil), r.batches...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Events returns a copy of the timeline annotations, sorted by time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Summary computes the accounting totals.
func (r *Recorder) Summary() Summary {
	var s Summary
	for _, rec := range r.Records() {
		s.Submitted++
		switch rec.Outcome {
		case OutcomeServed:
			s.Served++
			if rec.Backend == "host" {
				s.HostServed++
			}
		case OutcomeDegraded:
			s.Degraded++
		case OutcomeShedQueue:
			s.ShedQueue++
		case OutcomeTimeout:
			s.Timeouts++
		case OutcomeFailed:
			s.Failures++
		}
		if rec.Expired {
			s.Expired++
		}
	}
	for _, b := range r.Batches() {
		s.Batches++
		s.Attempts += b.Attempts
		s.Retries += b.Attempts - 1
		s.DMARetries += b.DMARetries
		s.Failovers += b.Failovers
	}
	return s
}

// PrimaryTrace converts the primary lane's completions into the offline
// simulator's Trace form, so MeanLatency/Percentile/Throughput apply to
// live runs unchanged.
func (r *Recorder) PrimaryTrace() *serving.Trace {
	tr := &serving.Trace{}
	for _, rec := range r.Records() {
		switch rec.Outcome {
		case OutcomeServed:
			c := serving.Completion{Arrival: rec.Arrival, Start: rec.Start, Done: rec.Done,
				Batch: rec.Batch, Expired: rec.Expired}
			tr.Completions = append(tr.Completions, c)
			if rec.Expired {
				tr.Expired++
			}
			if rec.Done > tr.Makespan {
				tr.Makespan = rec.Done
			}
		case OutcomeTimeout:
			tr.Timeouts++
		case OutcomeFailed:
			tr.Failures++
		}
	}
	for _, b := range r.Batches() {
		tr.Batches++
		tr.Retries += b.Attempts - 1
		if b.Done > tr.Makespan {
			tr.Makespan = b.Done
		}
	}
	return tr
}

// FitLatencyModel reconstructs the batch-size → attempt-duration model
// the live run actually experienced: the mean recorded attempt duration
// per batch size, piecewise-linearly interpolated. This is the model
// the replay oracle hands the offline simulator, so the oracle checks
// the queueing/batching/deadline machinery, not the backend model.
func (r *Recorder) FitLatencyModel() (serving.LatencyModel, error) {
	sum := map[int]float64{}
	n := map[int]int{}
	for _, b := range r.Batches() {
		for _, d := range b.AttemptDurs {
			sum[b.Size] += d
			n[b.Size]++
		}
	}
	if len(sum) == 0 {
		return nil, fmt.Errorf("live: no batch executions to fit a latency model from")
	}
	sizes := make([]int, 0, len(sum))
	for s := range sum {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	means := make([]float64, len(sizes))
	for i, s := range sizes {
		means[i] = sum[s] / float64(n[s])
	}
	if len(sizes) == 1 {
		m := means[0]
		return func(int) float64 { return m }, nil
	}
	return serving.InterpolatedLatency(sizes, means)
}

// MeasuredFailRate returns the fraction of primary-lane attempts that
// failed verification — the replay oracle's stand-in for the live
// backend's fault behaviour.
func (r *Recorder) MeasuredFailRate() float64 {
	attempts, failures := 0, 0
	for _, b := range r.Batches() {
		attempts += b.Attempts
		// Attempts beyond the first each follow a failure; a batch that
		// ultimately failed also failed its final attempt.
		failures += b.Attempts - 1
		if b.Failed {
			failures++
		}
	}
	if attempts == 0 {
		return 0
	}
	return float64(failures) / float64(attempts)
}

// Replay runs the recorded live run through the offline event-driven
// simulator: the primary lane's recorded arrivals, the latency model
// fitted from its own batch executions, the configured policy/deadline/
// retry parameters, and the measured attempt failure rate. The returned
// trace is the oracle's prediction of the live latency distribution
// (see DESIGN.md §12 for the equivalence contract and its tolerance).
func (r *Recorder) Replay(cfg Config, seed int64) (*serving.Trace, error) {
	var arrivals []float64
	for _, rec := range r.Records() {
		switch rec.Outcome {
		case OutcomeServed, OutcomeTimeout, OutcomeFailed:
			arrivals = append(arrivals, rec.Arrival)
		}
	}
	sort.Float64s(arrivals)
	lat, err := r.FitLatencyModel()
	if err != nil {
		return nil, err
	}
	rob := serving.Robustness{
		Deadline:   cfg.Robust.Deadline,
		FailRate:   r.MeasuredFailRate(),
		MaxRetries: cfg.Robust.MaxRetries,
		Backoff:    cfg.Robust.Backoff,
		Seed:       seed,
	}
	return serving.SimulateRobust(arrivals, lat, cfg.Policy, rob)
}

// PercentileGap returns the relative difference between the live and
// replayed latency distribution at percentile p: |live - sim| / live.
// A zero live percentile with a non-zero sim percentile returns +Inf.
func PercentileGap(liveTr, simTr *serving.Trace, p float64) float64 {
	lv, sv := liveTr.Percentile(p), simTr.Percentile(p)
	//pimdl:lint-ignore float-compare Percentile returns exactly 0 for an empty trace; that sentinel guards the division
	if lv == 0 {
		//pimdl:lint-ignore float-compare same empty-trace sentinel on the replay side
		if sv == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(lv-sv) / lv
}

// Package live is the concurrent serving runtime on top of the offline
// simulator: where serving.Simulate replays a precomputed arrival array
// inside one event loop, this package runs a real goroutine-based
// server — a bounded admission queue with an explicit load-shedding
// policy, continuous batching that merges queued requests up to a
// batch/shape budget, deadline-aware dispatch with retry/backoff
// against a fault-injected PIM backend, and a circuit breaker that
// diverts to the host fallback while the array misbehaves and recovers
// automatically. It is the StepStone-style batched-cloud-inference
// story (Cho et al., PAPERS.md) made robust.
//
// Time is virtual: every latency is the model's seconds, mapped to the
// wall clock through a ScaledClock so saturation runs finish in test
// time while goroutines genuinely contend. The offline simulator stays
// the oracle — Recorder.Replay re-runs a recorded live run through
// serving.SimulateRobust and must reproduce its latency percentiles
// within tolerance (DESIGN.md §12).
package live

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serving"
)

// ShedPolicy decides what happens to a request that finds the admission
// queue full.
type ShedPolicy int

// The shed policies.
const (
	// ShedReject drops the request immediately (fail fast; the client
	// sees the rejection while its deadline still has budget).
	ShedReject ShedPolicy = iota
	// ShedBlock applies backpressure: Submit blocks until queue space
	// frees. Overload surfaces as client-side delay, not drops.
	ShedBlock
	// ShedDegrade spills the request to the degrade lane, which serves
	// it singly on the host fallback; if that lane is full too, the
	// request is dropped.
	ShedDegrade
)

func (p ShedPolicy) String() string {
	switch p {
	case ShedReject:
		return "reject"
	case ShedBlock:
		return "block"
	case ShedDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("shed(%d)", int(p))
	}
}

// Config parameterizes a Server.
type Config struct {
	// Policy is the batching policy (MaxBatch requests, MaxWait virtual
	// seconds), with the same semantics as the offline simulator.
	Policy serving.Policy
	// MaxBatchRows bounds the total activation rows a batch may carry
	// (the shape budget of continuous batching); 0 disables it.
	MaxBatchRows int
	// QueueCap bounds the admission queue.
	QueueCap int
	// Shed is the policy for a full queue.
	Shed ShedPolicy
	// DegradeWorkers sizes the degrade lane (ShedDegrade only);
	// 0 defaults to 1.
	DegradeWorkers int
	// Robust supplies Deadline, MaxRetries and Backoff. FailRate and
	// Seed are ignored — live failures come from the fault-injected
	// backend, not a coin flip.
	Robust serving.Robustness
	// Breaker configures the circuit breaker guarding the PIM backend
	// (zero value: disabled).
	Breaker BreakerConfig
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if err := c.Robust.Validate(); err != nil {
		return err
	}
	if err := c.Breaker.Validate(); err != nil {
		return err
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("live: QueueCap must be positive")
	}
	if c.MaxBatchRows < 0 {
		return fmt.Errorf("live: MaxBatchRows must be non-negative")
	}
	if c.DegradeWorkers < 0 {
		return fmt.Errorf("live: DegradeWorkers must be non-negative")
	}
	switch c.Shed {
	case ShedReject, ShedBlock, ShedDegrade:
	default:
		return fmt.Errorf("live: unknown shed policy %d", int(c.Shed))
	}
	return nil
}

// Request is one in-flight inference request.
type Request struct {
	ID         int64
	Kind, Rows int
	// Arrival is the virtual submit time (stamped by Submit).
	Arrival float64

	// tr / span carry the request's span trace and its currently open
	// phase span (nil / NoSpan when tracing is off). Only the goroutine
	// that currently owns the request touches span.
	tr   *obs.Trace
	span obs.SpanID
}

// Server is the live serving runtime. Lifecycle: NewServer → Start →
// Submit (any goroutines) → Drain. Submit must not be called after
// Drain has been entered; stop the load generator first.
type Server struct {
	cfg     Config
	clock   *ScaledClock
	pimBE   Backend
	hostBE  Backend
	breaker *Breaker
	rec     *Recorder
	tracer  *obs.Tracer

	queue   chan *Request
	degrade chan *Request
	g       parallel.Group
	idSeq   atomic.Int64
	started atomic.Bool
}

// NewServer builds a server. hostBE may be nil when neither ShedDegrade
// nor the breaker is enabled.
func NewServer(cfg Config, clock *ScaledClock, pimBE, hostBE Backend) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("live: server needs a clock")
	}
	if pimBE == nil {
		return nil, fmt.Errorf("live: server needs a PIM backend")
	}
	if hostBE == nil && cfg.Shed == ShedDegrade {
		return nil, fmt.Errorf("live: ShedDegrade needs a host backend")
	}
	if hostBE == nil && cfg.Breaker.Enabled() {
		return nil, fmt.Errorf("live: the circuit breaker needs a host backend to divert to")
	}
	if cfg.DegradeWorkers == 0 {
		cfg.DegradeWorkers = 1
	}
	s := &Server{
		cfg:    cfg,
		clock:  clock,
		pimBE:  pimBE,
		hostBE: hostBE,
		rec:    NewRecorder(),
		queue:  make(chan *Request, cfg.QueueCap),
	}
	var err error
	s.breaker, err = NewBreaker(cfg.Breaker, func(now float64, from, to BreakerState) {
		s.rec.AddEvent(Event{At: now, Kind: "breaker", Note: from.String() + "→" + to.String()})
		recordBreaker(from, to)
	})
	if err != nil {
		return nil, err
	}
	if cfg.Shed == ShedDegrade {
		s.degrade = make(chan *Request, cfg.QueueCap)
	}
	return s, nil
}

// Recorder returns the run's terminal sink.
func (s *Server) Recorder() *Recorder { return s.rec }

// SetTracer attaches a span tracer to the server. Must be called before
// Start; a nil tracer (the default) records nothing.
func (s *Server) SetTracer(tc *obs.Tracer) { s.tracer = tc }

// Tracer returns the attached span tracer (nil when tracing is off).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Breaker returns the circuit breaker (disabled breakers report
// BreakerClosed forever).
func (s *Server) Breaker() *Breaker { return s.breaker }

// Clock returns the server's clock.
func (s *Server) Clock() *ScaledClock { return s.clock }

// Start launches the dispatcher and degrade-lane workers.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.g.Go(s.dispatchLoop)
	if s.degrade != nil {
		for i := 0; i < s.cfg.DegradeWorkers; i++ {
			s.g.Go(s.degradeLoop)
		}
	}
}

// Submit offers one request to the server and reports whether it was
// admitted (false: shed at the door under ShedReject, or both lanes
// full under ShedDegrade). Safe for concurrent use.
func (s *Server) Submit(kind, rows int) bool {
	if rows <= 0 {
		rows = 1
	}
	r := &Request{ID: s.idSeq.Add(1), Kind: kind, Rows: rows, Arrival: s.clock.Now()}
	traceSubmit(s.tracer, r)
	recordSubmit()
	shed := func() {
		tid := traceTerminal(s.tracer, r, OutcomeShedQueue.String(), r.Arrival, true)
		s.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
			Outcome: OutcomeShedQueue, TraceID: tid})
	}
	switch s.cfg.Shed {
	case ShedBlock:
		s.queue <- r
	case ShedReject:
		select {
		case s.queue <- r:
		default:
			shed()
			return false
		}
	case ShedDegrade:
		select {
		case s.queue <- r:
		default:
			select {
			case s.degrade <- r:
			default:
				shed()
				return false
			}
		}
	}
	observeLiveQueue(len(s.queue))
	return true
}

// Drain closes admission, waits until every queued request has reached
// a terminal state and all server goroutines have exited. Submit must
// not be called concurrently with or after Drain.
func (s *Server) Drain() {
	close(s.queue)
	if s.degrade != nil {
		close(s.degrade)
	}
	s.g.Wait()
}

// dispatchLoop is the single primary-lane server: it forms batches by
// continuous batching and executes them one at a time, exactly like the
// offline simulator's one-server model. Matching the offline dispatch
// semantics, expired requests are shed at dispatch time and the batch is
// topped up from the queue, so a wave of timeouts does not waste a
// dispatch on a nearly empty batch.
func (s *Server) dispatchLoop() {
	var pending *Request
	for {
		first := pending
		pending = nil
		if first == nil {
			r, ok := <-s.queue
			if !ok {
				return
			}
			tracePickup(r, s.clock.Now())
			first = r
		}
		batch, leftover := s.fill(first)
		batch, leftover = s.shedAndTopUp(batch, leftover)
		pending = leftover
		if len(batch) > 0 {
			s.executeBatch(batch)
		}
	}
}

// shedAndTopUp is the dispatch-time deadline pass: requests whose
// deadline already passed are shed as timeouts, and the holes they leave
// are refilled from the queue (non-blocking) up to the batch and shape
// budgets — the live equivalent of the offline simulator shedding the
// expired queue prefix before serving a full batch of survivors.
func (s *Server) shedAndTopUp(batch []*Request, leftover *Request) ([]*Request, *Request) {
	now := s.clock.Now()
	deadline := s.cfg.Robust.Deadline
	expired := func(r *Request) bool { return deadline > 0 && now >= r.Arrival+deadline }

	timeout := func(r *Request) {
		tid := traceTerminal(s.tracer, r, OutcomeTimeout.String(), now, true)
		s.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
			Outcome: OutcomeTimeout, TraceID: tid})
	}
	kept := batch[:0]
	rows := 0
	for _, r := range batch {
		if expired(r) {
			timeout(r)
			continue
		}
		kept = append(kept, r)
		rows += r.Rows
	}
	for leftover == nil && len(kept) < s.cfg.Policy.MaxBatch {
		var r *Request
		select {
		case req, ok := <-s.queue:
			if !ok {
				return kept, nil
			}
			r = req
		default:
			return kept, nil
		}
		if expired(r) {
			timeout(r)
			continue
		}
		tracePickup(r, now)
		if s.cfg.MaxBatchRows > 0 && rows+r.Rows > s.cfg.MaxBatchRows {
			leftover = r
			break
		}
		kept = append(kept, r)
		rows += r.Rows
	}
	return kept, leftover
}

// fill forms one batch by continuous batching: starting from first, it
// merges arrivals until the batch budget (Policy.MaxBatch requests),
// the shape budget (MaxBatchRows rows) or the wait budget (oldest
// request waiting Policy.MaxWait) is exhausted. A request that would
// overflow the shape budget is returned as leftover and leads the next
// batch.
func (s *Server) fill(first *Request) (batch []*Request, leftover *Request) {
	batch = []*Request{first}
	rows := first.Rows
	pol := s.cfg.Policy
	for len(batch) < pol.MaxBatch {
		var r *Request
		var ok bool
		if wait := first.Arrival + pol.MaxWait - s.clock.Now(); wait <= 0 {
			select {
			case r, ok = <-s.queue:
			default:
				return batch, nil
			}
		} else {
			timer := time.NewTimer(s.clock.WallDuration(wait))
			select {
			case r, ok = <-s.queue:
				timer.Stop()
			case <-timer.C:
				return batch, nil
			}
		}
		if !ok {
			return batch, nil
		}
		tracePickup(r, s.clock.Now())
		if s.cfg.MaxBatchRows > 0 && rows+r.Rows > s.cfg.MaxBatchRows {
			return batch, r
		}
		batch = append(batch, r)
		rows += r.Rows
	}
	return batch, nil
}

// executeBatch runs one already-shedded batch to a terminal state:
// execute with retry/backoff, routing each attempt through the circuit
// breaker.
func (s *Server) executeBatch(batch []*Request) {
	observeLiveQueue(len(s.queue))
	now := s.clock.Now()
	rob := s.cfg.Robust
	rows := 0
	for _, r := range batch {
		rows += r.Rows
	}
	traceDispatch(batch, now)
	br := BatchRecord{Start: now, Size: len(batch), Rows: rows}
	for attempt := 0; ; attempt++ {
		attStart := s.clock.Now()
		be, viaPIM := s.routeAttempt()
		out := be.Execute(len(batch), rows)
		if out.Latency > 0 {
			s.clock.Sleep(out.Latency)
		}
		attEnd := s.clock.Now()
		if viaPIM {
			s.breaker.Record(attEnd, out.OK)
		}
		traceAttempt(batch, attempt, out, attStart, attEnd)
		br.Attempts++
		br.AttemptDurs = append(br.AttemptDurs, out.Latency)
		br.Backends = append(br.Backends, out.Backend)
		br.DMARetries += out.DMARetries
		br.Failovers += out.Failovers
		if out.LiveShards > 0 {
			br.LiveShards = out.LiveShards
		}
		recordAttempt(out, attempt)
		if out.OK {
			done := attEnd
			br.Done = done
			tids := make([]uint64, len(batch))
			for i, r := range batch {
				rec := Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
					Outcome: OutcomeServed, Start: br.Start, Done: done,
					Batch: len(batch), Backend: out.Backend}
				if rob.Deadline > 0 && done > r.Arrival+rob.Deadline {
					rec.Expired = true
				}
				// Deadline-missed completions are an always-on trace class.
				rec.TraceID = traceTerminal(s.tracer, r, OutcomeServed.String(), done, rec.Expired)
				tids[i] = rec.TraceID
				s.rec.Add(rec)
			}
			br.TraceID = batchTraceID(tids)
			s.rec.AddBatch(br)
			return
		}
		if attempt >= rob.MaxRetries {
			done := attEnd
			br.Done = done
			br.Failed = true
			tids := make([]uint64, len(batch))
			for i, r := range batch {
				tid := traceTerminal(s.tracer, r, OutcomeFailed.String(), done, true)
				tids[i] = tid
				s.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
					Outcome: OutcomeFailed, TraceID: tid})
			}
			br.TraceID = batchTraceID(tids)
			s.rec.AddBatch(br)
			return
		}
		if rob.Backoff > 0 {
			s.clock.Sleep(rob.Backoff * math.Pow(2, float64(attempt)))
			traceBackoff(batch, attEnd, s.clock.Now())
		}
	}
}

// routeAttempt picks the backend for one attempt via the breaker.
func (s *Server) routeAttempt() (Backend, bool) {
	if s.hostBE == nil || !s.cfg.Breaker.Enabled() {
		return s.pimBE, true
	}
	if s.breaker.Route(s.clock.Now()) == RouteHost {
		return s.hostBE, false
	}
	return s.pimBE, true
}

// degradeLoop serves the degrade lane: spilled requests run singly on
// the host fallback, still deadline-checked.
func (s *Server) degradeLoop() {
	for r := range s.degrade {
		now := s.clock.Now()
		if d := s.cfg.Robust.Deadline; d > 0 && now >= r.Arrival+d {
			tid := traceTerminal(s.tracer, r, OutcomeTimeout.String(), now, true)
			s.rec.Add(Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
				Outcome: OutcomeTimeout, TraceID: tid})
			continue
		}
		out := s.hostBE.Execute(1, r.Rows)
		if out.Latency > 0 {
			s.clock.Sleep(out.Latency)
		}
		done := s.clock.Now()
		traceDegrade(r, out, now, done)
		rec := Record{ID: r.ID, Kind: r.Kind, Rows: r.Rows, Arrival: r.Arrival,
			Outcome: OutcomeDegraded, Start: now, Done: done, Batch: 1, Backend: out.Backend}
		if d := s.cfg.Robust.Deadline; d > 0 && done > r.Arrival+d {
			rec.Expired = true
		}
		rec.TraceID = traceTerminal(s.tracer, r, OutcomeDegraded.String(), done, rec.Expired)
		s.rec.Add(rec)
	}
}

package live

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/serving"
)

// testClock returns a fast clock for accounting-oriented tests: the
// latency numbers below are virtual seconds, compressed ~100× on the
// wall so a multi-second scenario runs in tens of milliseconds.
func testClock(t *testing.T) *ScaledClock {
	t.Helper()
	c, err := NewScaledClock(100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeBackend is a scripted backend: fail decides each attempt's
// verification outcome (nil = always OK). The attempt counter is global
// across the backend, matching the dispatcher's serialized calls.
type fakeBackend struct {
	name  string
	model serving.LatencyModel
	fail  func(attempt int64) bool

	mu       sync.Mutex
	attempts int64
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Execute(size, rows int) Outcome {
	f.mu.Lock()
	a := f.attempts
	f.attempts++
	f.mu.Unlock()
	out := Outcome{Backend: f.name, OK: true, WorstSlowdown: 1, Latency: f.model(size)}
	if f.fail != nil && f.fail(a) {
		out.OK = false
		out.Reason = "scripted failure"
	}
	return out
}

func constModel(c float64) serving.LatencyModel { return func(int) float64 { return c } }

// mustServer builds and validates a server.
func mustServer(t *testing.T, cfg Config, clock *ScaledClock, pimBE, hostBE Backend) *Server {
	t.Helper()
	s, err := NewServer(cfg, clock, pimBE, hostBE)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// submitN pushes n single-row requests back-to-back (no pacing), which
// overloads any server whose service time is non-zero.
func submitN(s *Server, n int) int {
	admitted := 0
	for i := 0; i < n; i++ {
		if s.Submit(0, 1) {
			admitted++
		}
	}
	return admitted
}

// checkConservation asserts the accounting identity and returns the
// summary.
func checkConservation(t *testing.T, s *Server, submitted int) Summary {
	t.Helper()
	sum := s.Recorder().Summary()
	if sum.Submitted != submitted {
		t.Fatalf("summary saw %d submissions, want %d", sum.Submitted, submitted)
	}
	if err := sum.Conservation(); err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestConfigValidate pins the server configuration checks.
func TestConfigValidate(t *testing.T) {
	valid := Config{
		Policy:   serving.Policy{MaxBatch: 8, MaxWait: 0.01},
		QueueCap: 16,
		Robust:   serving.Robustness{Deadline: 1, MaxRetries: 2, Backoff: 0.01},
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"valid", func(*Config) {}, ""},
		{"bad policy", func(c *Config) { c.Policy.MaxBatch = 0 }, "MaxBatch"},
		{"bad robustness", func(c *Config) { c.Robust.Deadline = -1 }, "deadline"},
		{"bad breaker", func(c *Config) { c.Breaker = BreakerConfig{Window: 4, TripRatio: 2} }, "TripRatio"},
		{"no queue", func(c *Config) { c.QueueCap = 0 }, "QueueCap"},
		{"negative rows budget", func(c *Config) { c.MaxBatchRows = -1 }, "MaxBatchRows"},
		{"negative degrade workers", func(c *Config) { c.DegradeWorkers = -2 }, "DegradeWorkers"},
		{"unknown shed policy", func(c *Config) { c.Shed = ShedPolicy(9) }, "shed policy"},
	}
	for _, c := range cases {
		cfg := valid
		c.mut(&cfg)
		err := cfg.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestNewServerRequirements: the constructor enforces its dependencies.
func TestNewServerRequirements(t *testing.T) {
	clock := testClock(t)
	pim := &fakeBackend{name: "pim", model: constModel(0.01)}
	cfg := Config{
		Policy:   serving.Policy{MaxBatch: 4, MaxWait: 0.01},
		QueueCap: 8,
		Robust:   serving.Robustness{MaxRetries: 1},
	}
	if _, err := NewServer(cfg, nil, pim, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewServer(cfg, clock, nil, nil); err == nil {
		t.Fatal("nil PIM backend accepted")
	}
	degrade := cfg
	degrade.Shed = ShedDegrade
	if _, err := NewServer(degrade, clock, pim, nil); err == nil {
		t.Fatal("ShedDegrade without host backend accepted")
	}
	breaker := cfg
	breaker.Breaker = BreakerConfig{Window: 4, TripRatio: 0.5}
	if _, err := NewServer(breaker, clock, pim, nil); err == nil {
		t.Fatal("breaker without host backend accepted")
	}
}

// TestServeAllUnderCapacity: a tame load is fully served in arrival
// order with exact accounting.
func TestServeAllUnderCapacity(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 8, MaxWait: 0.005},
		QueueCap: 64,
		Shed:     ShedBlock,
		Robust:   serving.Robustness{MaxRetries: 1},
	}, clock, &fakeBackend{name: "pim", model: constModel(0.002)}, nil)
	s.Start()

	arrivals, err := LoadSpec{Rate: 200, Requests: 100, Seed: 3}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	admitted := Drive(clock, s, arrivals)
	s.Drain()

	sum := checkConservation(t, s, 100)
	if admitted != 100 || sum.Served != 100 {
		t.Fatalf("admitted %d served %d, want 100/100", admitted, sum.Served)
	}
	if sum.Batches == 0 || sum.Attempts != sum.Batches {
		t.Fatalf("batches %d attempts %d: no retries expected", sum.Batches, sum.Attempts)
	}
	for _, rec := range s.Recorder().Records() {
		if rec.Done < rec.Start || rec.Start < rec.Arrival {
			t.Fatalf("record %d has incoherent times: %+v", rec.ID, rec)
		}
	}
}

// TestShedReject: a full queue under burst load drops at the door, and
// every drop is accounted.
func TestShedReject(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 4, MaxWait: 0.001},
		QueueCap: 4,
		Shed:     ShedReject,
		Robust:   serving.Robustness{MaxRetries: 1},
	}, clock, &fakeBackend{name: "pim", model: constModel(0.05)}, nil)
	s.Start()
	admitted := submitN(s, 60)
	s.Drain()

	sum := checkConservation(t, s, 60)
	if sum.ShedQueue == 0 {
		t.Fatal("burst past a 4-deep queue shed nothing")
	}
	if admitted+sum.ShedQueue != 60 {
		t.Fatalf("admitted %d + shed %d != 60", admitted, sum.ShedQueue)
	}
	if sum.Served != admitted {
		t.Fatalf("served %d, want the %d admitted", sum.Served, admitted)
	}
}

// TestShedBlock: backpressure admits everything; the same burst is fully
// served with zero drops.
func TestShedBlock(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 4, MaxWait: 0.001},
		QueueCap: 2,
		Shed:     ShedBlock,
		Robust:   serving.Robustness{MaxRetries: 1},
	}, clock, &fakeBackend{name: "pim", model: constModel(0.02)}, nil)
	s.Start()
	admitted := submitN(s, 40)
	s.Drain()

	sum := checkConservation(t, s, 40)
	if admitted != 40 || sum.Served != 40 || sum.ShedQueue != 0 {
		t.Fatalf("block policy: admitted %d served %d shed %d, want 40/40/0", admitted, sum.Served, sum.ShedQueue)
	}
}

// TestShedDegrade: overflow spills to the host-served degrade lane.
func TestShedDegrade(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:         serving.Policy{MaxBatch: 4, MaxWait: 0.001},
		QueueCap:       2,
		Shed:           ShedDegrade,
		DegradeWorkers: 2,
		Robust:         serving.Robustness{MaxRetries: 1},
	}, clock,
		&fakeBackend{name: "pim", model: constModel(0.05)},
		&fakeBackend{name: "host", model: constModel(0.01)})
	s.Start()
	submitN(s, 60)
	s.Drain()

	sum := checkConservation(t, s, 60)
	if sum.Degraded == 0 {
		t.Fatal("overflow never reached the degrade lane")
	}
	for _, rec := range s.Recorder().Records() {
		if rec.Outcome == OutcomeDegraded && rec.Backend != "host" {
			t.Fatalf("degraded request served by %q", rec.Backend)
		}
	}
}

// TestDeadlineTimeouts: requests whose deadline passes while queued are
// shed at dispatch, never served.
func TestDeadlineTimeouts(t *testing.T) {
	clock := testClock(t)
	deadline := 0.08
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 1, MaxWait: 0.001},
		QueueCap: 64,
		Shed:     ShedBlock,
		Robust:   serving.Robustness{Deadline: deadline, MaxRetries: 1},
	}, clock, &fakeBackend{name: "pim", model: constModel(0.04)}, nil)
	s.Start()
	submitN(s, 30)
	s.Drain()

	sum := checkConservation(t, s, 30)
	if sum.Timeouts == 0 {
		t.Fatalf("30 back-to-back 40ms jobs against an 80ms deadline timed out nothing: %+v", sum)
	}
	if sum.Served == 0 {
		t.Fatalf("nothing served: %+v", sum)
	}
	for _, rec := range s.Recorder().Records() {
		if rec.Outcome == OutcomeServed && rec.Start >= rec.Arrival+deadline {
			t.Fatalf("request %d started %.3f after its deadline", rec.ID, rec.Start-rec.Arrival-deadline)
		}
	}
}

// TestRetryBudget: a permanently failing backend burns the retry budget
// and fails every batch with exact attempt accounting.
func TestRetryBudget(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 1, MaxWait: 0.001},
		QueueCap: 8,
		Shed:     ShedBlock,
		Robust:   serving.Robustness{MaxRetries: 2, Backoff: 0.001},
	}, clock, &fakeBackend{
		name:  "pim",
		model: constModel(0.002),
		fail:  func(int64) bool { return true },
	}, nil)
	s.Start()
	submitN(s, 5)
	s.Drain()

	sum := checkConservation(t, s, 5)
	if sum.Failures != 5 || sum.Served != 0 {
		t.Fatalf("failures %d served %d, want 5/0", sum.Failures, sum.Served)
	}
	if sum.Batches != 5 || sum.Attempts != 15 || sum.Retries != 10 {
		t.Fatalf("batches/attempts/retries = %d/%d/%d, want 5/15/10", sum.Batches, sum.Attempts, sum.Retries)
	}
	for _, b := range s.Recorder().Batches() {
		if !b.Failed || b.Attempts != 3 {
			t.Fatalf("batch %+v, want 3 attempts and Failed", b)
		}
	}
}

// TestRetryRecovers: a transient failure is retried and the batch still
// completes.
func TestRetryRecovers(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 1, MaxWait: 0.001},
		QueueCap: 8,
		Shed:     ShedBlock,
		Robust:   serving.Robustness{MaxRetries: 2, Backoff: 0.001},
	}, clock, &fakeBackend{
		name:  "pim",
		model: constModel(0.002),
		fail:  func(a int64) bool { return a == 0 }, // first attempt only
	}, nil)
	s.Start()
	submitN(s, 4)
	s.Drain()

	sum := checkConservation(t, s, 4)
	if sum.Served != 4 || sum.Failures != 0 {
		t.Fatalf("served %d failures %d, want 4/0", sum.Served, sum.Failures)
	}
	if sum.Retries != 1 || sum.Attempts != 5 {
		t.Fatalf("retries %d attempts %d, want 1/5", sum.Retries, sum.Attempts)
	}
}

// TestShapeBudget: MaxBatchRows caps the rows a batch carries; the
// overflowing request leads the next batch instead of being dropped.
func TestShapeBudget(t *testing.T) {
	clock := testClock(t)
	s := mustServer(t, Config{
		Policy:       serving.Policy{MaxBatch: 16, MaxWait: 0.001},
		MaxBatchRows: 8,
		QueueCap:     64,
		Shed:         ShedBlock,
		Robust:       serving.Robustness{MaxRetries: 1},
	}, clock, &fakeBackend{name: "pim", model: constModel(0.01)}, nil)
	s.Start()
	for i := 0; i < 30; i++ {
		s.Submit(0, 3) // 3 rows each: at most 2 per batch under an 8-row budget
	}
	s.Drain()

	sum := checkConservation(t, s, 30)
	if sum.Served != 30 {
		t.Fatalf("served %d, want 30", sum.Served)
	}
	for _, b := range s.Recorder().Batches() {
		if b.Rows > 8 {
			t.Fatalf("batch carries %d rows past the 8-row budget", b.Rows)
		}
		if b.Size > 2 {
			t.Fatalf("batch of %d 3-row requests under an 8-row budget", b.Size)
		}
	}
	if sum.Batches < 15 {
		t.Fatalf("only %d batches for 30 requests at ≤2 per batch", sum.Batches)
	}
}

// TestBreakerTripsToHostAndRecovers: a scripted PIM outage trips the
// breaker, traffic diverts to the host, and the breaker closes again
// once PIM heals — the tentpole state machine end to end, on a
// deterministic fake.
func TestBreakerTripsToHostAndRecovers(t *testing.T) {
	clock := testClock(t)
	// PIM fails verification during the virtual window [0.5, 1.5].
	pim := &fakeBackend{name: "pim", model: constModel(0.02)}
	pim.fail = func(int64) bool {
		now := clock.Now()
		return now >= 0.5 && now < 1.5
	}
	s := mustServer(t, Config{
		Policy:   serving.Policy{MaxBatch: 2, MaxWait: 0.005},
		QueueCap: 32,
		Shed:     ShedBlock,
		Robust:   serving.Robustness{MaxRetries: 0},
		Breaker:  BreakerConfig{Window: 2, MinSamples: 2, TripRatio: 1, Cooldown: 0.15},
	}, clock,
		pim, &fakeBackend{name: "host", model: constModel(0.02)})
	s.Start()

	arrivals, err := LoadSpec{Rate: 40, Requests: 160, Seed: 8}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	Drive(clock, s, arrivals)
	s.Drain()

	sum := checkConservation(t, s, 160)
	br := s.Breaker()
	if br.Trips() < 1 {
		t.Fatalf("breaker never tripped: %+v", sum)
	}
	if br.Recoveries() < 1 {
		t.Fatalf("breaker never recovered: trips=%d state=%v", br.Trips(), br.State())
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker finished %v, want closed", br.State())
	}
	if sum.HostServed == 0 {
		t.Fatal("open breaker never served on the host")
	}
	if sum.Served == 0 || sum.Served+sum.Failures != 160 {
		t.Fatalf("unexpected outcome split: %+v", sum)
	}
	// The timeline carries the transitions in order.
	var breakerEvents int
	for _, ev := range s.Recorder().Events() {
		if ev.Kind == "breaker" {
			breakerEvents++
		}
	}
	if breakerEvents < 4 {
		t.Fatalf("only %d breaker events on the timeline", breakerEvents)
	}
}

// TestLiveMetricsMatchRecorder: every live counter equals the recorder's
// post-hoc accounting across a scenario that exercises sheds, timeouts,
// retries, failures and the degrade lane at once.
func TestLiveMetricsMatchRecorder(t *testing.T) {
	if !metrics.Enabled() {
		t.Skip("metrics disabled via PIMDL_METRICS")
	}
	clock := testClock(t)
	// Deep queue + tight deadline: queued requests can wait far past the
	// deadline (timeouts), sustained 2.5× overload eventually fills both
	// lanes (sheds, degrades), and the scripted failure pairs exercise
	// the retry and budget-burnt paths.
	s := mustServer(t, Config{
		Policy:         serving.Policy{MaxBatch: 4, MaxWait: 0.002},
		QueueCap:       64,
		Shed:           ShedDegrade,
		DegradeWorkers: 1,
		Robust:         serving.Robustness{Deadline: 0.05, MaxRetries: 1, Backoff: 0.002},
	}, clock,
		&fakeBackend{
			name:  "pim",
			model: constModel(0.02),
			fail:  func(a int64) bool { return a%7 <= 1 },
		},
		&fakeBackend{name: "host", model: constModel(0.03)})

	arrivals, err := LoadSpec{Rate: 500, Requests: 300, Seed: 21}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var sum Summary
	d := metricsDelta(func() {
		s.Start()
		Drive(clock, s, arrivals)
		s.Drain()
		sum = checkConservation(t, s, 300)
	})

	// The scenario must exercise every path it claims to pin.
	if sum.ShedQueue == 0 || sum.Timeouts == 0 || sum.Retries == 0 ||
		sum.Failures == 0 || sum.Degraded == 0 {
		t.Fatalf("scenario too tame: %+v", sum)
	}

	checks := map[string]float64{
		"pimdl_live_submitted_total":                     float64(sum.Submitted),
		`pimdl_live_requests_total{outcome="served"}`:    float64(sum.Served),
		`pimdl_live_requests_total{outcome="degraded"}`:  float64(sum.Degraded),
		`pimdl_live_requests_total{outcome="shed"}`:      float64(sum.ShedQueue),
		`pimdl_live_requests_total{outcome="timeout"}`:   float64(sum.Timeouts),
		`pimdl_live_requests_total{outcome="failed"}`:    float64(sum.Failures),
		"pimdl_live_expired_total":                       float64(sum.Expired),
		"pimdl_live_batch_retries_total":                 float64(sum.Retries),
		"pimdl_live_dma_retries_total":                   float64(sum.DMARetries),
		`pimdl_live_batch_attempts_total{backend="pim"}`: float64(sum.Attempts),
		"pimdl_live_latency_seconds_count":               float64(sum.Served + sum.Degraded),
		"pimdl_live_batch_size_count":                    float64(sum.Batches),
	}
	for k, want := range checks {
		if got := d[k]; got != want {
			t.Errorf("%s = %g, want %g", k, got, want)
		}
	}
}

// metricsDelta runs fn and returns the change of every default-registry
// series across it.
func metricsDelta(fn func()) map[string]float64 {
	before := metrics.Default().Flatten()
	fn()
	after := metrics.Default().Flatten()
	for k, v := range before {
		after[k] -= v
	}
	return after
}

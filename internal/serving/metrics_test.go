package serving

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// metricsDelta runs fn and returns the change of every default-registry
// series across it.
func metricsDelta(fn func()) map[string]float64 {
	before := metrics.Default().Flatten()
	fn()
	after := metrics.Default().Flatten()
	for k, v := range before {
		after[k] -= v
	}
	return after
}

// TestPercentileEdgeCases pins the documented Percentile contract: empty
// trace, out-of-range p, and NaN p.
func TestPercentileEdgeCases(t *testing.T) {
	empty := &Trace{}
	for _, p := range []float64{-10, 0, 50, 100, 200, math.NaN()} {
		if got := empty.Percentile(p); got != 0 {
			t.Fatalf("empty trace Percentile(%g) = %g, want 0", p, got)
		}
	}

	tr := &Trace{}
	for i := 1; i <= 4; i++ {
		tr.Completions = append(tr.Completions,
			Completion{Arrival: 0, Done: float64(i), Batch: 1})
	}
	// Latencies are 1..4; min = 1, max = 4.
	cases := []struct{ p, want float64 }{
		{-5, 1},         // below range clamps to the minimum
		{0, 1},          // p=0 is the minimum
		{math.NaN(), 1}, // NaN treated as 0
		{25, 1},         // nearest-rank: ceil(0.25*4)=1st
		{50, 2},         //               ceil(0.50*4)=2nd
		{100, 4},        // p=100 is the maximum
		{250, 4},        // above range clamps to the maximum
	}
	for _, c := range cases {
		if got := tr.Percentile(c.p); got != c.want {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

// TestServingMetricsMatchTrace: the counters recorded during a robust
// simulation equal the trace's own totals, and the latency histogram saw
// exactly the served requests.
func TestServingMetricsMatchTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	arr := PoissonArrivals(rng, 200, 400)
	lat := func(b int) float64 { return 0.01 + 0.001*float64(b) }
	rob := Robustness{Deadline: 0.05, FailRate: 0.2, MaxRetries: 2, Backoff: 0.005, Seed: 7}

	var tr *Trace
	d := metricsDelta(func() {
		var err error
		tr, err = SimulateRobust(arr, lat, Policy{MaxBatch: 8, MaxWait: 0.02}, rob)
		if err != nil {
			t.Fatal(err)
		}
	})

	checks := map[string]float64{
		"pimdl_serving_requests_total": float64(len(tr.Completions)),
		"pimdl_serving_batches_total":  float64(tr.Batches),
		"pimdl_serving_retries_total":  float64(tr.Retries),
		"pimdl_serving_timeouts_total": float64(tr.Timeouts),
		"pimdl_serving_failures_total": float64(tr.Failures),
		"pimdl_serving_expired_total":  float64(tr.Expired),
	}
	for k, want := range checks {
		if got := d[k]; got != want {
			t.Fatalf("%s = %g, want %g", k, got, want)
		}
	}
	if got := d["pimdl_serving_latency_seconds_count"]; got != float64(len(tr.Completions)) {
		t.Fatalf("latency histogram count %g, want %d", got, len(tr.Completions))
	}
	var sum float64
	for _, c := range tr.Completions {
		sum += c.Latency()
	}
	if got := d["pimdl_serving_latency_seconds_sum"]; math.Abs(got-sum) > 1e-9 {
		t.Fatalf("latency histogram sum %g, want %g", got, sum)
	}
	if got := d["pimdl_serving_batch_size_count"]; got != float64(tr.Batches) {
		t.Fatalf("batch-size histogram count %g, want %d", got, tr.Batches)
	}
	// Sanity on the simulation itself: the robustness knobs exercised the
	// drop paths, so the counters above checked something non-zero.
	if tr.Retries == 0 || tr.Timeouts == 0 {
		t.Fatalf("scenario too tame: retries=%d timeouts=%d", tr.Retries, tr.Timeouts)
	}
}

// TestServingMetricsDropPaths forces every drop path at once — a flaky
// backend that exhausts its retry budget (failures), a tight deadline
// (timeouts) — and checks the counters account for all of it: every
// arrival is either a completion, a timeout or a failure, and the
// latency histogram saw only the completions.
func TestServingMetricsDropPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arr := PoissonArrivals(rng, 300, 500)
	lat := func(b int) float64 { return 0.02 + 0.002*float64(b) }
	rob := Robustness{Deadline: 0.08, FailRate: 0.6, MaxRetries: 1, Backoff: 0.01, Seed: 5}

	var tr *Trace
	d := metricsDelta(func() {
		var err error
		tr, err = SimulateRobust(arr, lat, Policy{MaxBatch: 4, MaxWait: 0.01}, rob)
		if err != nil {
			t.Fatal(err)
		}
	})

	// The scenario must actually exercise all three terminal paths.
	if tr.Failures == 0 || tr.Timeouts == 0 || tr.Retries == 0 {
		t.Fatalf("scenario too tame: failures=%d timeouts=%d retries=%d",
			tr.Failures, tr.Timeouts, tr.Retries)
	}
	if got := len(tr.Completions) + tr.Timeouts + tr.Failures; got != len(arr) {
		t.Fatalf("terminal states %d != arrivals %d", got, len(arr))
	}
	checks := map[string]float64{
		"pimdl_serving_requests_total": float64(len(tr.Completions)),
		"pimdl_serving_timeouts_total": float64(tr.Timeouts),
		"pimdl_serving_failures_total": float64(tr.Failures),
		"pimdl_serving_retries_total":  float64(tr.Retries),
	}
	for k, want := range checks {
		if got := d[k]; got != want {
			t.Fatalf("%s = %g, want %g", k, got, want)
		}
	}
	// Dropped requests must not leak into the latency distribution.
	if got := d["pimdl_serving_latency_seconds_count"]; got != float64(len(tr.Completions)) {
		t.Fatalf("latency histogram count %g, want %d (completions only)", got, len(tr.Completions))
	}
}

// TestServingHistogramQuantilesTrackPercentile: the streaming quantiles
// land in the same bucket neighbourhood as the exact sorted-slice path.
func TestServingHistogramQuantilesTrackPercentile(t *testing.T) {
	h := metrics.NewRegistry().NewHistogram("lat", "", metrics.ExpBuckets(1e-4, 2, 21))
	rng := rand.New(rand.NewSource(13))
	arr := PoissonArrivals(rng, 150, 500)
	lat := func(b int) float64 { return 0.01 + 0.002*float64(b) }
	tr, err := Simulate(arr, lat, Policy{MaxBatch: 8, MaxWait: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tr.Completions {
		h.Observe(c.Latency())
	}
	for _, p := range []float64{50, 95, 99} {
		exact := tr.Percentile(p)
		approx := h.Quantile(p / 100)
		// Bucket interpolation is at worst one ×2 bucket off.
		if approx < exact/2 || approx > exact*2 {
			t.Fatalf("p%g: histogram %g vs exact %g", p, approx, exact)
		}
	}
}

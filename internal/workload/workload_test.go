package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestMarkerBatchesShape(t *testing.T) {
	cfg := AccuracyModel(nn.TokenInput, "t")
	task := NewTask(MarkerTask, cfg, 1)
	bs := task.Batches(3, 8, 0)
	if len(bs) != 3 {
		t.Fatalf("batches %d", len(bs))
	}
	for _, b := range bs {
		if len(b.TokenIDs) != 8*cfg.SeqLen || len(b.Labels) != 8 {
			t.Fatalf("bad batch shape")
		}
		for _, id := range b.TokenIDs {
			if id < 0 || id >= cfg.Vocab {
				t.Fatalf("token id %d out of vocab", id)
			}
		}
		for _, l := range b.Labels {
			if l < 0 || l >= cfg.Classes {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
}

func TestMarkerPlantedConsistently(t *testing.T) {
	cfg := AccuracyModel(nn.TokenInput, "t")
	task := NewTask(MarkerTask, cfg, 2)
	for _, b := range task.Batches(4, 8, 0) {
		for s := 0; s < b.BatchN; s++ {
			marker := 2 + b.Labels[s]
			found := false
			for _, id := range b.TokenIDs[s*cfg.SeqLen : (s+1)*cfg.SeqLen] {
				if id == marker {
					found = true
				}
			}
			if !found {
				t.Fatal("class marker missing from sequence")
			}
		}
	}
}

func TestTemplateTaskSharedAcrossStreams(t *testing.T) {
	cfg := AccuracyModel(nn.PatchInput, "v")
	a := NewTask(TemplateTask, cfg, 3)
	b := NewTask(TemplateTask, cfg, 3)
	for i := range a.teplate.Data {
		if a.teplate.Data[i] != b.teplate.Data[i] {
			t.Fatal("templates differ for same seed")
		}
	}
	c := NewTask(TemplateTask, cfg, 4)
	same := true
	for i := range a.teplate.Data {
		if a.teplate.Data[i] != c.teplate.Data[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must give different templates")
	}
}

func TestDisjointStreamsDiffer(t *testing.T) {
	cfg := AccuracyModel(nn.TokenInput, "t")
	task := NewTask(MarkerTask, cfg, 5)
	tr := task.Batches(1, 8, 0)[0]
	te := task.Batches(1, 8, 1)[0]
	same := true
	for i := range tr.TokenIDs {
		if tr.TokenIDs[i] != te.TokenIDs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("train/test streams identical")
	}
}

func TestPerfModelsMatchPaper(t *testing.T) {
	pm := PerfModels()
	if len(pm) != 3 {
		t.Fatalf("want 3 perf models")
	}
	if pm[0].Model.Hidden != 768 || pm[1].Model.Hidden != 1024 || pm[2].Model.Hidden != 1280 {
		t.Fatal("hidden dims must be 768/1024/1280 (paper §6.1)")
	}
	if pm[0].Batch != 64 || pm[2].Batch != 128 {
		t.Fatal("batch sizes must be 64/64/128")
	}
	if pm[2].Model.SeqLen != 264 {
		t.Fatal("ViT-huge seq must be padded to 264")
	}
}

func TestHiddenDimModelValid(t *testing.T) {
	for _, h := range OPTHiddenDims {
		if err := HiddenDimModel(h, 128).Validate(); err != nil {
			t.Fatalf("hidden %d: %v", h, err)
		}
	}
}

func TestAccuracyModelsValid(t *testing.T) {
	if err := AccuracyModel(nn.TokenInput, "a").Validate(); err != nil {
		t.Fatal(err)
	}
	if err := AccuracyModel(nn.PatchInput, "b").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMixtureActivationsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	protos := tensor.RandN(rng, 1, 4, 8)
	acts := MixtureActivations(rng, protos, 200, 0.05)
	if acts.Dim(0) != 200 || acts.Dim(1) != 8 {
		t.Fatalf("shape %v", acts.Shape())
	}
	// Every row must be near one of the prototypes.
	for i := 0; i < 200; i++ {
		row := acts.Row(i)
		bestD := math.Inf(1)
		for p := 0; p < 4; p++ {
			var d float64
			pr := protos.Row(p)
			for j := range row {
				diff := float64(row[j] - pr[j])
				d += diff * diff
			}
			if d < bestD {
				bestD = d
			}
		}
		if bestD > 8*0.05*0.05*16 {
			t.Fatalf("row %d too far from every prototype: %g", i, bestD)
		}
	}
}

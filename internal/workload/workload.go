// Package workload provides the evaluation workloads of paper §6: the
// model shapes used by the performance experiments and the synthetic
// classification tasks that stand in for GLUE/CIFAR in the accuracy
// experiments (Tables 4–5).
//
// Substitution note (see DESIGN.md): we have no GLUE/CIFAR data or
// pretrained checkpoints, so the accuracy experiments train small
// transformers from scratch on planted-structure tasks. What the paper's
// accuracy tables establish is an *ordering* — original ≈ eLUT-NN ≫
// baseline LUT-NN under full-layer replacement — and that ordering is a
// property of the conversion algorithms, which these tasks exercise
// end-to-end through the same code paths.
package workload

import (
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// PerfModels lists the three model shapes of the throughput experiments
// (§6.3): BERT-base/large at seq 512 batch 64, ViT-huge at padded seq 264
// batch 128.
func PerfModels() []PerfCase {
	return []PerfCase{
		{Model: nn.BERTBase, Batch: 64},
		{Model: nn.BERTLarge, Batch: 64},
		{Model: nn.ViTHuge, Batch: 128},
	}
}

// PerfCase pairs a model shape with its evaluation batch size.
type PerfCase struct {
	Model nn.Config
	Batch int
}

// TaskKind distinguishes the two synthetic task families.
type TaskKind int

const (
	// MarkerTask is a sequence task: the label is the class marker token
	// planted somewhere in the sequence (an NLP-classification stand-in).
	MarkerTask TaskKind = iota
	// TemplateTask is a patch task: patches are a class template plus
	// noise (a vision-classification stand-in).
	TemplateTask
)

// Task generates train/test batches for a model config.
type Task struct {
	Kind   TaskKind
	Config nn.Config
	// Noise is the TemplateTask per-element noise std; Scale multiplies
	// the class template. A low Scale/Noise ratio forces the model to
	// integrate evidence across patches, which is what makes the task
	// sensitive to activation quantization (like real vision models).
	Noise   float64
	Scale   float64
	seed    int64
	teplate *tensor.Tensor
}

// NewTask creates a task whose class structure is fixed by seed, so
// independently generated batches share the same underlying concept.
func NewTask(kind TaskKind, cfg nn.Config, seed int64) *Task {
	t := &Task{Kind: kind, Config: cfg, Noise: 0.3, Scale: 1, seed: seed}
	if kind == TemplateTask {
		t.teplate = tensor.RandN(rand.New(rand.NewSource(seed)), 1, cfg.Classes, cfg.PatchDim)
	}
	return t
}

// Batches generates n batches of batchN sequences each. Different
// (seedOffset) values give disjoint streams (e.g. train vs test).
func (t *Task) Batches(n, batchN int, seedOffset int64) []*nn.Batch {
	rng := rand.New(rand.NewSource(t.seed*1_000_003 + seedOffset))
	out := make([]*nn.Batch, n)
	for i := range out {
		if t.Kind == MarkerTask {
			out[i] = t.markerBatch(rng, batchN)
		} else {
			out[i] = t.templateBatch(rng, batchN)
		}
	}
	return out
}

func (t *Task) markerBatch(rng *rand.Rand, batchN int) *nn.Batch {
	c := t.Config
	b := &nn.Batch{BatchN: batchN}
	for s := 0; s < batchN; s++ {
		label := rng.Intn(c.Classes)
		ids := make([]int, c.SeqLen)
		for j := range ids {
			ids[j] = 2 + c.Classes + rng.Intn(c.Vocab-2-c.Classes)
		}
		ids[rng.Intn(c.SeqLen)] = 2 + label
		b.TokenIDs = append(b.TokenIDs, ids...)
		b.Labels = append(b.Labels, label)
	}
	return b
}

func (t *Task) templateBatch(rng *rand.Rand, batchN int) *nn.Batch {
	c := t.Config
	b := &nn.Batch{BatchN: batchN}
	patches := tensor.New(batchN*c.SeqLen, c.PatchDim)
	for s := 0; s < batchN; s++ {
		label := rng.Intn(c.Classes)
		tmpl := t.teplate.Row(label)
		for p := 0; p < c.SeqLen; p++ {
			row := patches.Row(s*c.SeqLen + p)
			for j := range row {
				row[j] = tmpl[j]*float32(t.Scale) + float32(rng.NormFloat64()*t.Noise)
			}
		}
		b.Labels = append(b.Labels, label)
	}
	b.Patches = patches
	return b
}

// AccuracyModel returns the reduced-size model configs used by the
// Table 4/5 reproductions: full transformer architecture, deep enough for
// approximation error to compound across replaced layers (the failure mode
// that collapses baseline LUT-NN), but small enough to train from scratch
// in seconds.
func AccuracyModel(kind nn.InputKind, name string) nn.Config {
	c := nn.Config{
		Name: name, Kind: kind,
		Hidden: 32, Layers: 4, Heads: 4, FFN: 64,
		SeqLen: 16, Classes: 4,
	}
	if kind == nn.TokenInput {
		c.Vocab = 64
	} else {
		// Vision stand-in: higher class count and heavy template noise so
		// the task is not linearly separable from a single patch.
		c.PatchDim = 24
		c.SeqLen = 8
		c.Classes = 8
	}
	return c
}

// OPTHiddenDims are the hidden sizes swept in Fig. 12-d / 14 / 15, taken
// from the OPT model family as the paper does.
var OPTHiddenDims = []int{1024, 2048, 2560, 4096, 5120}

// HiddenDimModel builds a transformer config with the given hidden size
// (layers/heads follow the OPT family's shapes; FFN = 4·hidden).
func HiddenDimModel(hidden, seqLen int) nn.Config {
	return nn.Config{
		Name: "OPT-like", Kind: nn.TokenInput, Vocab: 50272,
		Hidden: hidden, Layers: 24, Heads: 16, FFN: 4 * hidden,
		SeqLen: seqLen, Classes: 2,
	}
}

// MixtureActivations draws rows from a shared set of prototype rows plus
// Gaussian noise — the "block-wise semantic similarity" structure (paper
// §3) that makes LUT-NN's centroid approximation work. Use it wherever a
// synthetic stand-in for real DNN activations is needed.
func MixtureActivations(rng *rand.Rand, protos *tensor.Tensor, rows int, noise float64) *tensor.Tensor {
	out := tensor.New(rows, protos.Dim(1))
	for i := 0; i < rows; i++ {
		p := protos.Row(rng.Intn(protos.Dim(0)))
		row := out.Row(i)
		for j := range row {
			row[j] = p[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return out
}

package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baseline"
	"repro/internal/lutnn"
	"repro/internal/nn"
)

// Fig4Point is one LUT kernel on the roofline.
type Fig4Point struct {
	Model     string
	Operator  string
	AI        float64 // arithmetic intensity (ops/byte)
	GOPS      float64 // attained throughput under the roofline
	MemBound  bool
	PeakRatio float64 // attained ÷ peak
}

// Fig4Result reproduces the roofline analysis of Fig. 4: the arithmetic
// intensity of every LUT kernel in BERT-base/large and ViT-huge at batch
// 64 × seq 512 (Q/K/V fused), against the CPU roof.
type Fig4Result struct {
	PeakGOPS float64
	RidgeAI  float64
	Points   []Fig4Point
}

// Fig4 computes the roofline placement of the LUT kernels. Following the
// paper's measurement setup, the tables are resident as FP32 working sets
// on the CPU (lutElemBytes = 4) even though values are quantized to INT8.
func Fig4() *Fig4Result {
	host := baseline.Device{ // the paper's dual Xeon 4210 analysis machine
		Name:    "Xeon4210x2",
		PeakOPS: map[baseline.Precision]float64{baseline.INT8: 795.11e9},
		MemBW:   100e9,
	}
	peak := host.PeakOPS[baseline.INT8] / 1e9
	res := &Fig4Result{PeakGOPS: peak, RidgeAI: peak / (host.MemBW / 1e9)}

	const batch, seq, v = 64, 512, 2
	n := batch * seq
	for _, cfg := range []nn.Config{nn.BERTBase, nn.BERTLarge, nn.ViTHuge} {
		for _, role := range nn.Roles {
			f, h := cfg.LinearShape(role)
			cb := h / v
			ai := lutnn.ArithmeticIntensity(n, cb, f, 4)
			attained := ai * host.MemBW / 1e9
			if attained > peak {
				attained = peak
			}
			res.Points = append(res.Points, Fig4Point{
				Model: cfg.Name, Operator: role.String(),
				AI: ai, GOPS: attained,
				MemBound:  ai < res.RidgeAI,
				PeakRatio: attained / peak,
			})
		}
	}
	return res
}

// RenderPlot draws the roofline on log-log axes as ASCII art: the
// bandwidth slope, the compute roof, and the LUT kernels clustered far
// left of the ridge point.
func (r *Fig4Result) RenderPlot(width, height int) string {
	if width < 30 {
		width = 30
	}
	if height < 8 {
		height = 8
	}
	// Axis ranges: AI from 0.05 to 10× ridge; GOPS up to peak.
	aiMin, aiMax := 0.05, r.RidgeAI*10
	gMin, gMax := aiMin*r.PeakGOPS/r.RidgeAI*0.5, r.PeakGOPS*1.5
	xOf := func(ai float64) int {
		return int(math.Log(ai/aiMin) / math.Log(aiMax/aiMin) * float64(width-1))
	}
	yOf := func(g float64) int {
		fy := math.Log(g/gMin) / math.Log(gMax/gMin)
		return height - 1 - int(fy*float64(height-1))
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y int, c byte) {
		if x >= 0 && x < width && y >= 0 && y < height {
			grid[y][x] = c
		}
	}
	// Roofline: min(peak, AI × BW) where BW = peak/ridge.
	for x := 0; x < width; x++ {
		ai := aiMin * math.Pow(aiMax/aiMin, float64(x)/float64(width-1))
		attained := ai * r.PeakGOPS / r.RidgeAI
		if attained > r.PeakGOPS {
			attained = r.PeakGOPS
		}
		put(x, yOf(attained), '_')
	}
	// Kernels.
	for _, p := range r.Points {
		put(xOf(p.AI), yOf(p.GOPS), 'o')
	}
	put(xOf(r.RidgeAI), yOf(r.PeakGOPS), '+')
	var b strings.Builder
	fmt.Fprintf(&b, "GOPS (log) — roof %.0f GOPS, ridge %.2f ops/B ('+'), LUT kernels 'o'\n", r.PeakGOPS, r.RidgeAI)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "+%s AI (log, %.2g → %.3g ops/B)\n", strings.Repeat("-", width), aiMin, aiMax)
	return b.String()
}

// Render prints the roofline placement table.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — Roofline Analysis of LUT Kernels (CPU peak %.2f GOPS, ridge at %.2f ops/B)\n\n",
		r.PeakGOPS, r.RidgeAI)
	var rows [][]string
	for _, p := range r.Points {
		bound := "memory-bound"
		if !p.MemBound {
			bound = "compute-bound"
		}
		rows = append(rows, []string{p.Model, p.Operator, f3(p.AI), f2(p.GOPS),
			fmt.Sprintf("%.1f%%", p.PeakRatio*100), bound})
	}
	b.WriteString(table([]string{"Model", "Op", "AI (ops/B)", "GOPS", "of peak", "regime"}, rows))
	b.WriteString("\n")
	b.WriteString(r.RenderPlot(64, 12))
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/pim"
	"repro/internal/workload"
)

// Fig14Point is one bar of the HBM-PIM/AiM comparison sweep.
type Fig14Point struct {
	Platform string
	Hidden   int
	Batch    int
	// SpeedupVsGEMM is PIM-GEMM time ÷ PIM-DL time (Fig. 14).
	SpeedupVsGEMM float64
	// SpeedupVsGPU is V100 time ÷ PIM-DL time (Fig. 15).
	SpeedupVsGPU float64
}

// Fig1415Result reproduces Figs. 14 and 15: PIM-DL on simulated HBM-PIM
// and AiM against (14) GEMM-based inference on the same hardware and (15)
// the V100 GPU, sweeping hidden dim {1024,2048,2560,4096} and batch 1–8
// at sequence length 128.
type Fig1415Result struct {
	Points []Fig14Point
	// Paper aggregates: vs PIM-GEMM 23.94x (HBM-PIM) / 19.06x (AiM);
	// vs V100: HBM-PIM ≈ 0.39x geomean, AiM up to 1.20x.
	GeomeanGEMM map[string]float64
	GeomeanGPU  map[string]float64
	MaxGPU      map[string]float64
}

// Fig1415 runs the device-PIM sweeps. Layers are truncated to keep the
// sweep fast — ratios are layer-count invariant because every layer is
// identical.
func Fig1415() (*Fig1415Result, error) {
	e := engine.New()
	res := &Fig1415Result{
		GeomeanGEMM: map[string]float64{},
		GeomeanGPU:  map[string]float64{},
		MaxGPU:      map[string]float64{},
	}
	gemmRatios := map[string][]float64{}
	gpuRatios := map[string][]float64{}

	for _, plat := range []*pim.Platform{pim.HBMPIM(), pim.AiM()} {
		for _, hidden := range []int{1024, 2048, 2560, 4096} {
			for _, batch := range []int{1, 2, 4, 8} {
				model := workload.HiddenDimModel(hidden, 128)
				model.Layers = 2
				cfg := DevicePIMScenario(plat, model, batch, lutnn.Params{V: 4, CT: 16})
				dl, err := e.EstimatePIMDL(cfg)
				if err != nil {
					return nil, err
				}
				gm, err := e.EstimatePIMGEMM(cfg)
				if err != nil {
					return nil, err
				}
				gpu := e.EstimateHost(GPUScenario(model, batch))
				p := Fig14Point{
					Platform:      plat.Name,
					Hidden:        hidden,
					Batch:         batch,
					SpeedupVsGEMM: gm.Total() / dl.Total(),
					SpeedupVsGPU:  gpu.Total() / dl.Total(),
				}
				res.Points = append(res.Points, p)
				gemmRatios[plat.Name] = append(gemmRatios[plat.Name], p.SpeedupVsGEMM)
				gpuRatios[plat.Name] = append(gpuRatios[plat.Name], p.SpeedupVsGPU)
				if p.SpeedupVsGPU > res.MaxGPU[plat.Name] {
					res.MaxGPU[plat.Name] = p.SpeedupVsGPU
				}
			}
		}
	}
	for name, rs := range gemmRatios {
		res.GeomeanGEMM[name] = geomean(rs)
	}
	for name, rs := range gpuRatios {
		res.GeomeanGPU[name] = geomean(rs)
	}
	return res, nil
}

// Render prints both figures' series.
func (r *Fig1415Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 14/15 — PIM-DL on HBM-PIM and AiM (seq 128, V=4, CT=16)\n\n")
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{p.Platform, fmt.Sprint(p.Hidden), fmt.Sprint(p.Batch),
			f2(p.SpeedupVsGEMM) + "x", f2(p.SpeedupVsGPU) + "x"})
	}
	b.WriteString(table([]string{"Platform", "Hidden", "Batch", "vs PIM-GEMM (Fig.14)", "vs V100 (Fig.15)"}, rows))
	fmt.Fprintf(&b, `
Geomeans (paper in parentheses):
  vs PIM-GEMM: HBM-PIM %.2fx (23.94x)   AiM %.2fx (19.06x)
  vs V100:     HBM-PIM %.2fx (0.39x)    AiM %.2fx, max %.2fx (up to 1.20x)
`,
		r.GeomeanGEMM["HBM-PIM"], r.GeomeanGEMM["AiM"],
		r.GeomeanGPU["HBM-PIM"], r.GeomeanGPU["AiM"], r.MaxGPU["AiM"])
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/workload"
)

// Fig11aRow is one model's latency breakdown.
type Fig11aRow struct {
	Model                   string
	LUTFrac, CCSFrac, Other float64
	LUTNNFrac               float64 // LUT+CCS, the "LUT-NN inference" share
}

// Fig11bRow is one model's per-role speedup versus CPU INT8.
type Fig11bRow struct {
	Model   string
	Speedup map[nn.LinearRole]float64
}

// Fig11Result reproduces Fig. 11: (a) PIM-DL latency breakdown into
// LUT/CCS/Other and (b) layer-wise speedup of each converted linear layer
// over GEMM-based INT8 inference on the CPU server.
type Fig11Result struct {
	A []Fig11aRow
	B []Fig11bRow
	// GeomeanRole aggregates (b) across models per role; the paper reports
	// QKV 1.61x, O 0.99x, FFN1 1.78x, FFN2 2.38x, overall 1.81x.
	GeomeanRole map[nn.LinearRole]float64
	GeomeanAll  float64
}

// Fig11 runs the breakdown and layer-wise analyses (V=4, CT=16).
func Fig11() (*Fig11Result, error) {
	e := engine.New()
	res := &Fig11Result{GeomeanRole: map[nn.LinearRole]float64{}}
	perRole := map[nn.LinearRole][]float64{}
	var all []float64

	for _, pc := range workload.PerfModels() {
		cfg := UPMEMScenario(pc.Model, pc.Batch, lutnn.Params{V: 4, CT: 16})
		rep, err := e.EstimatePIMDL(cfg)
		if err != nil {
			return nil, err
		}
		total := rep.Total()
		res.A = append(res.A, Fig11aRow{
			Model:     pc.Model.Name,
			LUTFrac:   rep.ClassTime(engine.ClassLUT) / total,
			CCSFrac:   rep.ClassTime(engine.ClassCCS) / total,
			Other:     rep.ClassTime(engine.ClassOther) / total,
			LUTNNFrac: (rep.ClassTime(engine.ClassLUT) + rep.ClassTime(engine.ClassCCS)) / total,
		})

		cpuCfg := CPUScenario(pc.Model, pc.Batch, baseline.INT8)
		row := Fig11bRow{Model: pc.Model.Name, Speedup: map[nn.LinearRole]float64{}}
		for _, role := range nn.Roles {
			pimRole := rep.RoleTime(role) / float64(pc.Model.Layers)
			cpuRole := engine.HostLinearTime(cpuCfg, role)
			s := cpuRole / pimRole
			row.Speedup[role] = s
			perRole[role] = append(perRole[role], s)
			all = append(all, s)
		}
		res.B = append(res.B, row)
	}
	for _, role := range nn.Roles {
		res.GeomeanRole[role] = geomean(perRole[role])
	}
	res.GeomeanAll = geomean(all)
	return res, nil
}

// Render prints both panels.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11(a) — PIM-DL latency breakdown\n\n")
	var rows [][]string
	for _, row := range r.A {
		rows = append(rows, []string{row.Model,
			fmt.Sprintf("%.1f%%", row.LUTFrac*100),
			fmt.Sprintf("%.1f%%", row.CCSFrac*100),
			fmt.Sprintf("%.1f%%", row.Other*100),
			fmt.Sprintf("%.1f%%", row.LUTNNFrac*100)})
	}
	b.WriteString(table([]string{"Model", "LUT", "CCS", "Other", "LUT-NN (LUT+CCS)"}, rows))

	b.WriteString("\nFig. 11(b) — Layer-wise speedup vs CPU INT8 (paper geomeans: QKV 1.61x O 0.99x FFN1 1.78x FFN2 2.38x)\n\n")
	rows = rows[:0]
	for _, row := range r.B {
		rows = append(rows, []string{row.Model,
			f2(row.Speedup[nn.RoleQKV]), f2(row.Speedup[nn.RoleO]),
			f2(row.Speedup[nn.RoleFFN1]), f2(row.Speedup[nn.RoleFFN2])})
	}
	rows = append(rows, []string{"geomean",
		f2(r.GeomeanRole[nn.RoleQKV]), f2(r.GeomeanRole[nn.RoleO]),
		f2(r.GeomeanRole[nn.RoleFFN1]), f2(r.GeomeanRole[nn.RoleFFN2])})
	b.WriteString(table([]string{"Model", "QKV", "O", "FFN1", "FFN2"}, rows))
	fmt.Fprintf(&b, "\nOverall geomean: %.2fx (paper: 1.81x)\n", r.GeomeanAll)
	return b.String()
}

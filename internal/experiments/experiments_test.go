package experiments

import (
	"strings"
	"testing"

	"repro/internal/nn"
)

func TestFig3MatchesPaperEnvelope(t *testing.T) {
	r := Fig3()
	if len(r.VSweep) != 4 || len(r.CTSweep) != 4 {
		t.Fatal("wrong sweep sizes")
	}
	// Paper: reduction 3.66x–18.29x; multiplications 2.9%–14.3% of ops.
	min, max := r.VSweep[0].Reduction, r.VSweep[0].Reduction
	for _, p := range append(append([]Fig3Point{}, r.VSweep...), r.CTSweep...) {
		if p.Reduction < min {
			min = p.Reduction
		}
		if p.Reduction > max {
			max = p.Reduction
		}
		if p.MulFraction < 0.029-0.005 || p.MulFraction > 0.143+0.005 {
			t.Fatalf("mul fraction %.3f outside paper band", p.MulFraction)
		}
	}
	if min < 3.5 || min > 3.8 {
		t.Fatalf("min reduction %.2f, paper 3.66", min)
	}
	if max < 18.0 || max > 18.6 {
		t.Fatalf("max reduction %.2f, paper 18.29", max)
	}
	// Larger V must reduce more ops.
	for i := 1; i < len(r.VSweep); i++ {
		if r.VSweep[i].Reduction <= r.VSweep[i-1].Reduction {
			t.Fatal("reduction must grow with V")
		}
	}
	if !strings.Contains(r.Render(), "Reduction") {
		t.Fatal("render missing content")
	}
}

func TestFig4AllKernelsMemoryBound(t *testing.T) {
	r := Fig4()
	if len(r.Points) != 12 { // 3 models × 4 operators
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.MemBound {
			t.Fatalf("%s/%s not memory-bound (AI %.3f)", p.Model, p.Operator, p.AI)
		}
		// Paper band: 0.204–0.288 ops/byte.
		if p.AI < 0.19 || p.AI > 0.30 {
			t.Fatalf("%s/%s AI %.3f outside paper band", p.Model, p.Operator, p.AI)
		}
	}
	if !strings.Contains(r.Render(), "memory-bound") {
		t.Fatal("render missing content")
	}
}

func TestFig10HeadlineShapes(t *testing.T) {
	r, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, got, paper, tol float64) {
		t.Helper()
		if got < paper*(1-tol) || got > paper*(1+tol) {
			t.Errorf("%s: got %.2fx, paper %.2fx (tolerance ±%.0f%%)", name, got, paper, tol*100)
		}
	}
	// Throughput geomeans within ±35% of the paper's factors.
	check("V2 vs CPU FP32", r.SpeedupV2FP32, 2.05, 0.35)
	check("V2 vs CPU INT8", r.SpeedupV2INT8, 1.14, 0.35)
	check("V4 vs CPU FP32", r.SpeedupV4FP32, 3.07, 0.35)
	check("V4 vs CPU INT8", r.SpeedupV4INT8, 1.71, 0.35)
	check("V2 vs PIM-GEMM", r.SpeedupV2GEMM, 12.61, 0.40)
	check("V4 vs PIM-GEMM", r.SpeedupV4GEMM, 18.91, 0.40)
	// Energy-efficiency ordering: PIM-DL beats CPU FP32 and PIM-GEMM;
	// V4 beats V2.
	if r.EnergyV4FP32 <= 1 || r.EnergyV2FP32 <= 1 {
		t.Error("PIM-DL must be more energy-efficient than CPU FP32")
	}
	if r.EnergyV4FP32 <= r.EnergyV2FP32 {
		t.Error("V4 must beat V2 on energy")
	}
	if r.EnergyV4GEMM <= 5 {
		t.Errorf("PIM-DL vs PIM-GEMM energy efficiency %.1fx too low", r.EnergyV4GEMM)
	}
	// Every model row: V4 faster than V2 faster than PIM-GEMM.
	for _, row := range r.Rows {
		if !(row.PIMDLV4 < row.PIMDLV2 && row.PIMDLV2 < row.PIMGEMM) {
			t.Errorf("%s: ordering violated (V4 %.2f V2 %.2f GEMM %.2f)",
				row.Model, row.PIMDLV4, row.PIMDLV2, row.PIMGEMM)
		}
	}
	if !strings.Contains(r.Render(), "Geomean speedups") {
		t.Fatal("render missing content")
	}
}

func TestFig11BreakdownShape(t *testing.T) {
	r, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.A {
		// Paper: LUT-NN inference (LUT+CCS) is 73.7–79.4% of total and the
		// LUT operator alone 51.5–60.4%. Allow generous bands.
		if row.LUTNNFrac < 0.55 || row.LUTNNFrac > 0.92 {
			t.Errorf("%s: LUT-NN share %.2f outside band", row.Model, row.LUTNNFrac)
		}
		if row.LUTFrac < 0.40 || row.LUTFrac > 0.88 {
			t.Errorf("%s: LUT share %.2f outside band", row.Model, row.LUTFrac)
		}
	}
	// Paper layer-wise geomeans: QKV 1.61, O 0.99, FFN1 1.78, FFN2 2.38;
	// FFN2 gains most, O least.
	if r.GeomeanRole[nn.RoleFFN2] <= r.GeomeanRole[nn.RoleQKV] {
		t.Error("FFN2 should gain most (largest inner dim)")
	}
	if r.GeomeanRole[nn.RoleO] >= r.GeomeanRole[nn.RoleFFN1] {
		t.Error("O projection should gain least")
	}
	if r.GeomeanAll < 1.2 || r.GeomeanAll > 2.6 {
		t.Errorf("overall layer-wise geomean %.2f (paper 1.81)", r.GeomeanAll)
	}
}

func TestFig12Trends(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig12 sweeps every model/platform pair; minutes under -race")
	}
	r, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	byModel := func(ps []Fig12Point, model string) []Fig12Point {
		var out []Fig12Point
		for _, p := range ps {
			if p.Model == model {
				out = append(out, p)
			}
		}
		return out
	}
	// (a) larger V → higher speedup (monotone per model).
	for _, m := range []string{"Bert-Base", "Bert-Large", "ViT-Huge"} {
		vs := byModel(r.VSweep, m)
		for i := 1; i < len(vs); i++ {
			if vs[i].Speedup < vs[i-1].Speedup*0.98 {
				t.Errorf("%s: speedup fell from V=%d to V=%d (%.2f→%.2f)",
					m, vs[i-1].X, vs[i].X, vs[i-1].Speedup, vs[i].Speedup)
			}
		}
		// (b) fewer centroids → higher speedup.
		cts := byModel(r.CTSweep, m)
		for i := 1; i < len(cts); i++ {
			if cts[i].Speedup < cts[i-1].Speedup*0.98 {
				t.Errorf("%s: speedup fell from CT=%d to CT=%d", m, cts[i-1].X, cts[i].X)
			}
		}
		// (c) small batches favour the CPU (paper: CPU wins at batch 8).
		bs := byModel(r.BatchSweep, m)
		if bs[0].Speedup >= bs[len(bs)-1].Speedup {
			t.Errorf("%s: batch sweep should grow (%.2f → %.2f)", m, bs[0].Speedup, bs[len(bs)-1].Speedup)
		}
	}
	if byModel(r.BatchSweep, "Bert-Base")[0].Speedup >= 1.0 {
		t.Error("at batch 8 the CPU server should win (paper Fig. 12-c)")
	}
	// (d) hidden sweep: paper geomean 2.44x vs CPU INT8 across OPT dims.
	var hs []float64
	for _, p := range r.HiddenSweep {
		hs = append(hs, p.Speedup)
	}
	if g := geomean(hs); g < 1.4 || g > 3.6 {
		t.Errorf("hidden-dim sweep geomean %.2f (paper 2.44)", g)
	}
}

func TestFig13TunerQuality(t *testing.T) {
	r, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if r.TunerLoss > 0.10 {
		t.Errorf("tuner pick %.1f%% above optimum (paper ≤6%%)", r.TunerLoss*100)
	}
	if r.ModelErrAvg > 0.10 {
		t.Errorf("avg model error %.2f%% (paper 3.44%%)", r.ModelErrAvg*100)
	}
	if r.ModelErrMax > 0.60 {
		t.Errorf("max model error %.2f%%", r.ModelErrMax*100)
	}
	if r.GlobalGap < 1.5 {
		t.Errorf("mapping-space gap %.2fx too small (paper ~1.9x)", r.GlobalGap)
	}
	// Static load is feasible for some sub-LUT splits of this workload.
	foundStatic := false
	for _, s := range r.Schemes {
		if s.Scheme.String() == "static" && s.Count > 0 {
			foundStatic = true
		}
	}
	if !foundStatic {
		t.Error("static load scheme absent from space")
	}
	if !strings.Contains(r.Render(), "Auto-tuner pick") {
		t.Fatal("render missing content")
	}
}

func TestFig1415Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig14/15 run the full scalability sweep; minutes under -race")
	}
	r, err := Fig1415()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 14: PIM-DL decisively beats GEMM-on-PIM on both platforms
	// (paper geomeans 23.94x / 19.06x).
	if g := r.GeomeanGEMM["HBM-PIM"]; g < 12 || g > 40 {
		t.Errorf("HBM-PIM vs GEMM geomean %.1fx (paper 23.94)", g)
	}
	if g := r.GeomeanGEMM["AiM"]; g < 9 || g > 33 {
		t.Errorf("AiM vs GEMM geomean %.1fx (paper 19.06)", g)
	}
	// Fig. 15: HBM-PIM loses to V100 (paper 0.39x); AiM is comparable,
	// peaking around 1.2x.
	if g := r.GeomeanGPU["HBM-PIM"]; g < 0.2 || g > 0.75 {
		t.Errorf("HBM-PIM vs V100 geomean %.2fx (paper 0.39)", g)
	}
	if g := r.GeomeanGPU["AiM"]; g < 0.5 || g > 1.3 {
		t.Errorf("AiM vs V100 geomean %.2fx", g)
	}
	if m := r.MaxGPU["AiM"]; m < 0.9 || m > 1.9 {
		t.Errorf("AiM best case vs V100 %.2fx (paper up to 1.20)", m)
	}
	if r.MaxGPU["AiM"] <= r.MaxGPU["HBM-PIM"] {
		t.Error("AiM must beat HBM-PIM against the GPU (4.8 vs 16 TFLOPS)")
	}
	// Fig. 14 batch trend: speedup grows with batch per (platform, hidden).
	type key struct {
		plat   string
		hidden int
	}
	last := map[key]float64{}
	for _, p := range r.Points {
		k := key{p.Platform, p.Hidden}
		if prev, ok := last[k]; ok && p.SpeedupVsGEMM < prev*0.95 {
			t.Errorf("%s hidden %d: vs-GEMM speedup fell with batch", p.Platform, p.Hidden)
		}
		last[k] = p.SpeedupVsGEMM
	}
}

func TestAccuracyTablesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy tables train models; skipped in -short")
	}
	t4, err := Table4(QuickAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t4.Render())
	if t4.AvgOriginal < 0.9 {
		t.Errorf("original models too weak: %.2f", t4.AvgOriginal)
	}
	if t4.AvgBaseline > t4.AvgOriginal-0.2 {
		t.Errorf("baseline LUT-NN did not collapse: %.2f vs %.2f", t4.AvgBaseline, t4.AvgOriginal)
	}
	if t4.AvgELUT < t4.AvgBaseline+0.1 {
		t.Errorf("eLUT-NN did not recover: %.2f vs baseline %.2f", t4.AvgELUT, t4.AvgBaseline)
	}
	if t4.AvgELUT < t4.AvgOriginal-0.25 {
		t.Errorf("eLUT-NN too far from original: %.2f vs %.2f", t4.AvgELUT, t4.AvgOriginal)
	}

	t5, err := Table5(QuickAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + t5.Render())
	if t5.AvgELUT < t5.AvgBaseline {
		t.Errorf("vision eLUT-NN (%.2f) below baseline (%.2f)", t5.AvgELUT, t5.AvgBaseline)
	}
}

func TestRunDispatcher(t *testing.T) {
	var sb strings.Builder
	if err := Run("fig3", &sb, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Computation Reduction") {
		t.Fatal("dispatcher output wrong")
	}
	if err := Run("nope", &sb, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) != 11 {
		t.Fatalf("registry has %d experiments, want 11", len(Names()))
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Fatalf("geomean = %g", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatal("missing separator")
	}
}

func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation trains models; skipped in -short")
	}
	r, err := Ablation(true)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.Render())
	// Full eLUT-NN must beat the baseline conversion.
	if r.AccELUT < r.AccBaseline {
		t.Errorf("full eLUT-NN (%.2f) below baseline (%.2f)", r.AccELUT, r.AccBaseline)
	}
	// Removing either technique must not beat the full recipe by much.
	if r.AccNoRec > r.AccELUT+0.1 || r.AccNoSTE > r.AccELUT+0.1 {
		t.Errorf("ablated variants beat full recipe: noRec %.2f noSTE %.2f full %.2f",
			r.AccNoRec, r.AccNoSTE, r.AccELUT)
	}
	// INT8 tables cost little (paper: ≤0.1%; our 64-example test set
	// quantizes accuracy in 1.6% steps, so allow a few flips).
	if r.AccELUTInt8 < r.AccELUT-0.1 {
		t.Errorf("INT8 tables cost too much: %.2f vs %.2f", r.AccELUTInt8, r.AccELUT)
	}
	// Hash encoder: ≥20x fewer ops, error no better than exact CCS.
	if r.HashOps*20 > r.CCSOps {
		t.Error("hash encoder op advantage missing")
	}
	if r.HashErr < r.CCSErr*0.9 {
		t.Error("hash encoder should not beat exact CCS")
	}
	// Adder-only: faster kernel.
	if r.AdderKernel >= r.BaseKernel {
		t.Error("adder-only variant not faster")
	}
	// Hot cache: hit rate >50% under Zipf(1.2) quarter capacity and a
	// faster kernel.
	if r.CacheHitRate < 0.5 {
		t.Errorf("cache hit rate %.2f too low", r.CacheHitRate)
	}
	if r.CachedKernel >= r.UncachedKernel {
		t.Error("cache did not speed up kernel")
	}
	// CB-split must be penalized and monotonically worse with more ways.
	for i, pen := range r.CBSplitPenalty {
		if pen <= 1 {
			t.Errorf("CB split %d ways not penalized: %.2fx", r.CBSplitWays[i], pen)
		}
		if i > 0 && pen <= r.CBSplitPenalty[i-1] {
			t.Errorf("CB-split penalty not monotone at %d ways", r.CBSplitWays[i])
		}
	}
}

func TestSubLUTGridRendering(t *testing.T) {
	p := pimUPMEMForGrid()
	w := pimWorkloadForGrid()
	cells := SubLUTGrid(p, w, SpaceCfgForGrid())
	if len(cells) == 0 {
		t.Fatal("empty grid")
	}
	out := RenderGrid(cells)
	if !strings.Contains(out, "*") {
		t.Fatalf("grid missing optimum marker:\n%s", out)
	}
	// One optimum only... at least one; every cell positive.
	for _, c := range cells {
		if c.Best <= 0 {
			t.Fatalf("non-positive best at (%d,%d)", c.Ns, c.Fs)
		}
	}
	if RenderGrid(nil) == "" {
		t.Fatal("empty grid should still render a message")
	}
}

func TestRooflinePlot(t *testing.T) {
	r := Fig4()
	plot := r.RenderPlot(60, 10)
	if !strings.Contains(plot, "o") {
		t.Fatalf("plot missing kernel markers:\n%s", plot)
	}
	if !strings.Contains(plot, "_") {
		t.Fatalf("plot missing roofline:\n%s", plot)
	}
	if !strings.Contains(plot, "+") {
		t.Fatalf("plot missing ridge marker:\n%s", plot)
	}
	lines := strings.Split(strings.TrimRight(plot, "\n"), "\n")
	if len(lines) != 12 { // header + 10 rows + axis
		t.Fatalf("plot has %d lines", len(lines))
	}
}

// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment has a driver that computes the same
// rows/series the paper reports and a Render method that prints them; the
// pimdl-bench command and the repository's benchmark suite are thin
// wrappers over these drivers.
//
// Absolute numbers come from our simulators and roofline models, not the
// authors' testbed, so they are not expected to match the paper digit for
// digit. What must match — and what the experiment tests assert — is the
// shape: who wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for every headline quantity.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/nn"
	"repro/internal/pim"
)

// Space is the mapping-space bound shared by the performance experiments.
// MaxDivisors 8 keeps full sweeps under a minute while covering the
// small/medium/large tile regimes.
var Space = mapping.SpaceConfig{MaxDivisors: 8}

// UPMEMScenario returns the DDR4-PIM configuration of the main evaluation:
// UPMEM array, wimpy Xeon host, INT8 tables.
func UPMEMScenario(model nn.Config, batch int, params lutnn.Params) engine.Config {
	return engine.Config{
		Model: model, Batch: batch, Params: params,
		Platform: pim.UPMEM(), Host: baseline.UPMEMHost(),
		HostPrec: baseline.INT8, LUTElemBytes: 1, Space: Space,
	}
}

// DevicePIMScenario returns an HBM-PIM or AiM configuration (A2 host,
// FP16/BF16 tables), used by Figs. 14–15.
func DevicePIMScenario(platform *pim.Platform, model nn.Config, batch int, params lutnn.Params) engine.Config {
	return engine.Config{
		Model: model, Batch: batch, Params: params,
		Platform: platform, Host: baseline.A2(),
		HostPrec: baseline.FP16, LUTElemBytes: 2, Space: Space,
	}
}

// CPUScenario returns the GGML CPU-server baseline configuration.
func CPUScenario(model nn.Config, batch int, prec baseline.Precision) engine.Config {
	return engine.Config{
		Model: model, Batch: batch,
		Host: baseline.CPUServer(), HostPrec: prec,
	}
}

// GPUScenario returns the V100 baseline configuration (PyTorch/cuDNN,
// which engages tensor cores on V100 — the basis of the paper's
// "130 TFLOPS" comparison).
func GPUScenario(model nn.Config, batch int) engine.Config {
	return engine.Config{
		Model: model, Batch: batch,
		Host: baseline.V100(), HostPrec: baseline.FP16,
	}
}

// geomean returns the geometric mean of xs.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// table renders rows of cells as an aligned text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func sec(x float64) string { return fmt.Sprintf("%.4g s", x) }

// Helpers used by grid tests (small shapes keep sweeps quick).
func pimUPMEMForGrid() *pim.Platform { return pim.UPMEM() }
func pimWorkloadForGrid() pim.Workload {
	return pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
}
func SpaceCfgForGrid() mapping.SpaceConfig { return mapping.SpaceConfig{MaxDivisors: 4} }

package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is any experiment result that can print itself.
type Renderer interface {
	Render() string
}

// Runner executes one named experiment.
type Runner func(quick bool) (Renderer, error)

// Registry maps experiment ids (as used by `pimdl-bench -exp`) to runners.
var Registry = map[string]Runner{
	"fig3": func(bool) (Renderer, error) { return Fig3(), nil },
	"fig4": func(bool) (Renderer, error) { return Fig4(), nil },
	"table4": func(quick bool) (Renderer, error) {
		return Table4(accCfg(quick))
	},
	"table5": func(quick bool) (Renderer, error) {
		return Table5(accCfg(quick))
	},
	"fig10":    func(bool) (Renderer, error) { return Fig10() },
	"fig11":    func(bool) (Renderer, error) { return Fig11() },
	"fig12":    func(bool) (Renderer, error) { return Fig12() },
	"fig13":    func(bool) (Renderer, error) { return Fig13() },
	"fig14":    func(bool) (Renderer, error) { return Fig1415() },
	"fig15":    func(bool) (Renderer, error) { return Fig1415() },
	"ablation": func(quick bool) (Renderer, error) { return Ablation(quick) },
}

func accCfg(quick bool) AccuracyConfig {
	if quick {
		return QuickAccuracy
	}
	return FullAccuracy
}

// Names returns the registered experiment ids in sorted order.
func Names() []string {
	var ns []string
	for n := range Registry {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Run executes the named experiment and writes its rendering to w.
func Run(name string, w io.Writer, quick bool) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	res, err := r(quick)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, res.Render())
	return err
}

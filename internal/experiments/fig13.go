package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/autotuner"
	"repro/internal/mapping"
	"repro/internal/pim"
)

// Fig13Scheme summarizes the mapping space restricted to one LUT load
// scheme.
type Fig13Scheme struct {
	Scheme      pim.LoadScheme
	Best, Worst float64 // simulator seconds
	Gap         float64 // worst ÷ best within the scheme
	Count       int
}

// Fig13Result reproduces the mapping-space visualization of Fig. 13 on
// BERT-large's FFN1 layer: per-scheme best/worst mappings, the global
// optimum, the auto-tuner's pick, and the cost-model error statistics
// (paper: tuner within 6% of optimum; model error 3.44% avg / 13.73% max).
type Fig13Result struct {
	Workload                pim.Workload
	Schemes                 []Fig13Scheme
	GlobalBest, GlobalWorst float64
	GlobalGap               float64

	TunerPick    pim.Mapping
	TunerSimTime float64
	TunerLoss    float64 // tuner time ÷ global best − 1

	ModelErrAvg, ModelErrMax float64
	Evaluated                int
}

// Fig13 sweeps the mapping space of the (32768, 256, 16, 4096) workload —
// BERT-large FFN1 at batch 64 × seq 512 with V=4 — exactly the case study
// in §6.6.
func Fig13() (*Fig13Result, error) {
	p := pim.UPMEM()
	w := pim.Workload{N: 32768, CB: 256, CT: 16, F: 4096, ElemBytes: 1}
	cfg := mapping.SpaceConfig{MaxDivisors: 6}
	res := &Fig13Result{Workload: w, GlobalBest: math.Inf(1)}

	perScheme := map[pim.LoadScheme]*Fig13Scheme{}
	for _, s := range mapping.Schemes {
		perScheme[s] = &Fig13Scheme{Scheme: s, Best: math.Inf(1)}
	}
	var errSum, errMax float64
	mapping.Enumerate(p, w, cfg, func(m pim.Mapping) {
		res.Evaluated++
		sim := pim.SimTiming(p, w, m).Total()
		model := mapping.Cost(p, w, m).Total()
		e := math.Abs(model-sim) / sim
		errSum += e
		if e > errMax {
			errMax = e
		}
		sc := perScheme[m.Scheme]
		sc.Count++
		if sim < sc.Best {
			sc.Best = sim
		}
		if sim > sc.Worst {
			sc.Worst = sim
		}
		if sim < res.GlobalBest {
			res.GlobalBest = sim
		}
		if sim > res.GlobalWorst {
			res.GlobalWorst = sim
		}
	})
	if res.Evaluated == 0 {
		return nil, autotuner.ErrNoLegalMapping
	}
	for _, s := range mapping.Schemes {
		sc := perScheme[s]
		if sc.Count > 0 {
			sc.Gap = sc.Worst / sc.Best
		}
		res.Schemes = append(res.Schemes, *sc)
	}
	res.GlobalGap = res.GlobalWorst / res.GlobalBest
	res.ModelErrAvg = errSum / float64(res.Evaluated)
	res.ModelErrMax = errMax

	tuned, err := autotuner.Tune(p, w, cfg)
	if err != nil {
		return nil, err
	}
	res.TunerPick = tuned.Mapping
	res.TunerSimTime = tuned.Simulated.Total()
	res.TunerLoss = res.TunerSimTime/res.GlobalBest - 1
	return res, nil
}

// GridCell is one point of the sub-LUT tiling-factor heat map.
type GridCell struct {
	Ns, Fs int
	Best   float64 // best simulated time across micro-kernel choices
}

// SubLUTGrid sweeps the (NsTile, FsTile) plane — the axes of the paper's
// Fig. 13 plots — and returns, for each legal pair, the best simulated
// time over all micro-kernel parameters.
func SubLUTGrid(p *pim.Platform, w pim.Workload, cfg mapping.SpaceConfig) []GridCell {
	type key struct{ ns, fs int }
	best := map[key]float64{}
	mapping.Enumerate(p, w, cfg, func(m pim.Mapping) {
		t := pim.SimTiming(p, w, m).Total()
		k := key{m.NsTile, m.FsTile}
		if b, ok := best[k]; !ok || t < b {
			best[k] = t
		}
	})
	var out []GridCell
	for k, t := range best {
		out = append(out, GridCell{Ns: k.ns, Fs: k.fs, Best: t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ns != out[j].Ns {
			return out[i].Ns < out[j].Ns
		}
		return out[i].Fs < out[j].Fs
	})
	return out
}

// RenderGrid draws the (Ns, Fs) plane as an ASCII heat map: darker glyphs
// are slower mappings, '*' marks the optimum — the textual analog of the
// paper's Fig. 13 surface plots.
func RenderGrid(cells []GridCell) string {
	if len(cells) == 0 {
		return "(empty grid)\n"
	}
	var nsVals, fsVals []int
	seenNs, seenFs := map[int]bool{}, map[int]bool{}
	best := math.Inf(1)
	worst := 0.0
	for _, c := range cells {
		if !seenNs[c.Ns] {
			seenNs[c.Ns] = true
			nsVals = append(nsVals, c.Ns)
		}
		if !seenFs[c.Fs] {
			seenFs[c.Fs] = true
			fsVals = append(fsVals, c.Fs)
		}
		if c.Best < best {
			best = c.Best
		}
		if c.Best > worst {
			worst = c.Best
		}
	}
	sort.Ints(nsVals)
	sort.Ints(fsVals)
	lookup := map[[2]int]float64{}
	for _, c := range cells {
		lookup[[2]int{c.Ns, c.Fs}] = c.Best
	}
	shades := []byte(" .:-=+#%@")
	var b strings.Builder
	fmt.Fprintf(&b, "Sub-LUT tiling plane (rows Ns ↓, cols Fs →); '*' = optimum, darker = slower (best %.4g s, worst %.4g s)\n",
		best, worst)
	b.WriteString("        ")
	for _, fs := range fsVals {
		fmt.Fprintf(&b, "%7d", fs)
	}
	b.WriteByte('\n')
	for _, ns := range nsVals {
		fmt.Fprintf(&b, "%7d ", ns)
		for _, fs := range fsVals {
			t, ok := lookup[[2]int{ns, fs}]
			switch {
			case !ok:
				b.WriteString("      ·") // illegal pair
			//pimdl:lint-ignore float-compare identity with the stored minimum of the same map values; bit-exact by construction
			case t == best:
				b.WriteString("      *")
			default:
				frac := math.Log(t/best) / math.Log(worst/best+1e-12)
				idx := int(frac * float64(len(shades)-1))
				if idx < 0 {
					idx = 0
				}
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				fmt.Fprintf(&b, "      %c", shades[idx])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the mapping-space summary.
func (r *Fig13Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — Mapping space of BERT-large FFN1 (N,CB,CT,F)=(%d,%d,%d,%d), %d legal mappings\n\n",
		r.Workload.N, r.Workload.CB, r.Workload.CT, r.Workload.F, r.Evaluated)
	var rows [][]string
	for _, s := range r.Schemes {
		rows = append(rows, []string{s.Scheme.String(), fmt.Sprint(s.Count),
			sec(s.Best), sec(s.Worst), f2(s.Gap) + "x"})
	}
	rows = append(rows, []string{"global", fmt.Sprint(r.Evaluated),
		sec(r.GlobalBest), sec(r.GlobalWorst), f2(r.GlobalGap) + "x"})
	b.WriteString(table([]string{"Scheme", "Mappings", "Best", "Worst", "Gap"}, rows))
	fmt.Fprintf(&b, `
Auto-tuner pick: %v
  simulated %.4g s → %.1f%% above global optimum (paper: ≤6%%)
Cost-model error: avg %.2f%%, max %.2f%% (paper: 3.44%% avg, 13.73%% max)
`,
		r.TunerPick, r.TunerSimTime, r.TunerLoss*100, r.ModelErrAvg*100, r.ModelErrMax*100)
	b.WriteString("\n")
	b.WriteString(RenderGrid(SubLUTGrid(pim.UPMEM(), r.Workload, mapping.SpaceConfig{MaxDivisors: 6})))
	return b.String()
}

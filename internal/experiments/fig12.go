package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/workload"
)

// Fig12Point is one sensitivity sample: speedup of PIM-DL over CPU INT8.
type Fig12Point struct {
	Model   string
	X       int // the swept parameter's value
	Speedup float64
}

// Fig12Result reproduces the four sensitivity sweeps of Fig. 12. All
// results are normalized to the CPU server's INT8 inference, as in the
// paper. Defaults: V=4, CT=16, seq 512, batch 64.
type Fig12Result struct {
	VSweep      []Fig12Point // V ∈ {2,4,8,16,32}
	CTSweep     []Fig12Point // CT ∈ {128,64,32,16,8}
	BatchSweep  []Fig12Point // batch ∈ {8,16,32,64,128}
	HiddenSweep []Fig12Point // hidden ∈ {1024,2048,2560,4096,5120}
}

// Fig12 runs the sensitivity analysis.
func Fig12() (*Fig12Result, error) {
	e := engine.New()
	res := &Fig12Result{}

	speedup := func(model nn.Config, batch int, p lutnn.Params) (float64, error) {
		dl, err := e.EstimatePIMDL(UPMEMScenario(model, batch, p))
		if err != nil {
			return 0, err
		}
		cpu := e.EstimateHost(CPUScenario(model, batch, baseline.INT8))
		return cpu.Total() / dl.Total(), nil
	}

	models := []nn.Config{nn.BERTBase, nn.BERTLarge, nn.ViTHuge}
	batches := map[string]int{"Bert-Base": 64, "Bert-Large": 64, "ViT-Huge": 128}

	for _, m := range models {
		for _, v := range []int{2, 4, 8, 16, 32} {
			s, err := speedup(m, batches[m.Name], lutnn.Params{V: v, CT: 16})
			if err != nil {
				return nil, err
			}
			res.VSweep = append(res.VSweep, Fig12Point{m.Name, v, s})
		}
		for _, ct := range []int{128, 64, 32, 16, 8} {
			s, err := speedup(m, batches[m.Name], lutnn.Params{V: 4, CT: ct})
			if err != nil {
				return nil, err
			}
			res.CTSweep = append(res.CTSweep, Fig12Point{m.Name, ct, s})
		}
		for _, bsz := range []int{8, 16, 32, 64, 128} {
			s, err := speedup(m, bsz, lutnn.Params{V: 4, CT: 16})
			if err != nil {
				return nil, err
			}
			res.BatchSweep = append(res.BatchSweep, Fig12Point{m.Name, bsz, s})
		}
	}
	for _, h := range workload.OPTHiddenDims {
		m := workload.HiddenDimModel(h, 512)
		s, err := speedup(m, 64, lutnn.Params{V: 4, CT: 16})
		if err != nil {
			return nil, err
		}
		res.HiddenSweep = append(res.HiddenSweep, Fig12Point{m.Name, h, s})
	}
	return res, nil
}

// Render prints the four sweeps.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — Sensitivity analysis (speedup vs CPU INT8)\n")
	panel := func(title, xname string, ps []Fig12Point) {
		fmt.Fprintf(&b, "\n(%s)\n", title)
		var rows [][]string
		for _, p := range ps {
			rows = append(rows, []string{p.Model, fmt.Sprint(p.X), f2(p.Speedup) + "x"})
		}
		b.WriteString(table([]string{"Model", xname, "Speedup"}, rows))
	}
	panel("a: sub-vector length", "V", r.VSweep)
	panel("b: centroid number", "CT", r.CTSweep)
	panel("c: batch size", "Batch", r.BatchSweep)
	panel("d: hidden dim (OPT shapes)", "Hidden", r.HiddenSweep)
	return b.String()
}

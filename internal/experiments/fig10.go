package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/lutnn"
	"repro/internal/pim"
	"repro/internal/workload"
)

// Fig10Row holds one model's end-to-end comparison.
type Fig10Row struct {
	Model string
	Batch int

	// Latencies in seconds.
	CPUFP32, CPUINT8 float64
	PIMDLV2, PIMDLV4 float64
	PIMGEMM          float64
	// Energies in joules.
	ECPUFP32, ECPUINT8 float64
	EPIMDLV2, EPIMDLV4 float64
	EPIMGEMM           float64
}

// Fig10Result reproduces Fig. 10: end-to-end throughput (a) and energy
// efficiency (b) of DDR4-PIM PIM-DL against the CPU server and against
// GEMM-based inference on the same PIM hardware.
type Fig10Result struct {
	Rows []Fig10Row

	// Geomean speedups, matching the paper's reported aggregates.
	SpeedupV2FP32, SpeedupV2INT8 float64 // paper: 2.05 / 1.14
	SpeedupV4FP32, SpeedupV4INT8 float64 // paper: 3.07 / 1.71
	SpeedupV2GEMM, SpeedupV4GEMM float64 // paper: 12.61 / 18.91
	EnergyV2FP32, EnergyV4FP32   float64 // paper: 2.95 / 4.42
	EnergyV2INT8, EnergyV4INT8   float64 // paper: 1.65 / 2.46
	EnergyV2GEMM, EnergyV4GEMM   float64 // paper: 11.16 / 16.74
}

// Fig10 runs the end-to-end comparison over the three evaluation models.
func Fig10() (*Fig10Result, error) {
	e := engine.New()
	res := &Fig10Result{}
	upmem := pim.UPMEM()
	host := baseline.UPMEMHost()
	cpu := baseline.CPUServer()

	var v2fp, v2i8, v4fp, v4i8, g2, g4 []float64
	var ev2fp, ev4fp, ev2i8, ev4i8, eg2, eg4 []float64
	for _, pc := range workload.PerfModels() {
		row := Fig10Row{Model: pc.Model.Name, Batch: pc.Batch}

		cfg := UPMEMScenario(pc.Model, pc.Batch, lutnn.Params{V: 2, CT: 16})
		dl2, err := e.EstimatePIMDL(cfg)
		if err != nil {
			return nil, err
		}
		cfg.Params.V = 4
		dl4, err := e.EstimatePIMDL(cfg)
		if err != nil {
			return nil, err
		}
		gm, err := e.EstimatePIMGEMM(cfg)
		if err != nil {
			return nil, err
		}
		cpuFP := e.EstimateHost(CPUScenario(pc.Model, pc.Batch, baseline.FP32))
		cpuI8 := e.EstimateHost(CPUScenario(pc.Model, pc.Batch, baseline.INT8))

		row.CPUFP32, row.CPUINT8 = cpuFP.Total(), cpuI8.Total()
		row.PIMDLV2, row.PIMDLV4 = dl2.Total(), dl4.Total()
		row.PIMGEMM = gm.Total()
		row.ECPUFP32 = energy.Estimate(cpuFP, cpu, nil)
		row.ECPUINT8 = energy.Estimate(cpuI8, cpu, nil)
		row.EPIMDLV2 = energy.Estimate(dl2, host, upmem)
		row.EPIMDLV4 = energy.Estimate(dl4, host, upmem)
		row.EPIMGEMM = energy.Estimate(gm, host, upmem)
		res.Rows = append(res.Rows, row)

		v2fp = append(v2fp, row.CPUFP32/row.PIMDLV2)
		v2i8 = append(v2i8, row.CPUINT8/row.PIMDLV2)
		v4fp = append(v4fp, row.CPUFP32/row.PIMDLV4)
		v4i8 = append(v4i8, row.CPUINT8/row.PIMDLV4)
		g2 = append(g2, row.PIMGEMM/row.PIMDLV2)
		g4 = append(g4, row.PIMGEMM/row.PIMDLV4)
		ev2fp = append(ev2fp, row.ECPUFP32/row.EPIMDLV2)
		ev4fp = append(ev4fp, row.ECPUFP32/row.EPIMDLV4)
		ev2i8 = append(ev2i8, row.ECPUINT8/row.EPIMDLV2)
		ev4i8 = append(ev4i8, row.ECPUINT8/row.EPIMDLV4)
		eg2 = append(eg2, row.EPIMGEMM/row.EPIMDLV2)
		eg4 = append(eg4, row.EPIMGEMM/row.EPIMDLV4)
	}
	res.SpeedupV2FP32, res.SpeedupV2INT8 = geomean(v2fp), geomean(v2i8)
	res.SpeedupV4FP32, res.SpeedupV4INT8 = geomean(v4fp), geomean(v4i8)
	res.SpeedupV2GEMM, res.SpeedupV4GEMM = geomean(g2), geomean(g4)
	res.EnergyV2FP32, res.EnergyV4FP32 = geomean(ev2fp), geomean(ev4fp)
	res.EnergyV2INT8, res.EnergyV4INT8 = geomean(ev2i8), geomean(ev4i8)
	res.EnergyV2GEMM, res.EnergyV4GEMM = geomean(eg2), geomean(eg4)
	return res, nil
}

// Render prints the end-to-end latency/energy tables and geomeans.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10(a) — End-to-end latency (s)\n\n")
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Model, fmt.Sprint(row.Batch),
			sec(row.CPUFP32), sec(row.CPUINT8), sec(row.PIMDLV2), sec(row.PIMDLV4), sec(row.PIMGEMM)})
	}
	b.WriteString(table([]string{"Model", "Batch", "CPU FP32", "CPU INT8", "PIM-DL V=2", "PIM-DL V=4", "PIM-GEMM"}, rows))

	b.WriteString("\nFig. 10(b) — Energy (J)\n\n")
	rows = rows[:0]
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Model,
			f2(row.ECPUFP32), f2(row.ECPUINT8), f2(row.EPIMDLV2), f2(row.EPIMDLV4), f2(row.EPIMGEMM)})
	}
	b.WriteString(table([]string{"Model", "CPU FP32", "CPU INT8", "PIM-DL V=2", "PIM-DL V=4", "PIM-GEMM"}, rows))

	fmt.Fprintf(&b, `
Geomean speedups (paper in parentheses):
  PIM-DL V=2 vs CPU FP32: %.2fx (2.05x)   vs CPU INT8: %.2fx (1.14x)   vs PIM-GEMM: %.2fx (12.61x)
  PIM-DL V=4 vs CPU FP32: %.2fx (3.07x)   vs CPU INT8: %.2fx (1.71x)   vs PIM-GEMM: %.2fx (18.91x)
Geomean energy efficiency:
  PIM-DL V=2 vs CPU FP32: %.2fx (2.95x)   vs CPU INT8: %.2fx (1.65x)   vs PIM-GEMM: %.2fx (11.16x)
  PIM-DL V=4 vs CPU FP32: %.2fx (4.42x)   vs CPU INT8: %.2fx (2.46x)   vs PIM-GEMM: %.2fx (16.74x)
`,
		r.SpeedupV2FP32, r.SpeedupV2INT8, r.SpeedupV2GEMM,
		r.SpeedupV4FP32, r.SpeedupV4INT8, r.SpeedupV4GEMM,
		r.EnergyV2FP32, r.EnergyV2INT8, r.EnergyV2GEMM,
		r.EnergyV4FP32, r.EnergyV4INT8, r.EnergyV4GEMM)
	return b.String()
}

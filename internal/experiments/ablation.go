package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/autotuner"
	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/pim"
	"repro/internal/tensor"
	"repro/internal/workload"
)

// AblationResult collects the design-choice studies DESIGN.md §5 calls
// out: the two eLUT-NN calibration techniques (reconstruction loss, STE),
// INT8 table quantization, the hash-encoder alternative to exact CCS, and
// the paper's §7 architecture extensions (adder-only PEs, hot-entry
// caching).
type AblationResult struct {
	// Calibration ablation accuracies (test set).
	AccOriginal, AccBaseline    float64
	AccELUT, AccNoRec, AccNoSTE float64

	// INT8 table quantization delta on the calibrated model.
	AccELUTInt8 float64

	// Hash-encoder study (single layer).
	HashErr, CCSErr float64
	HashOps, CCSOps uint64

	// Adder-only projection: LUT-operator kernel time, BERT-base QKV shape.
	BaseKernel, AdderKernel float64

	// Hot-entry cache projection under Zipf(1.2) indices.
	CacheHitRate                 float64
	UncachedKernel, CachedKernel float64

	// CB-split penalty (design decision #3 / limitation L2): slowdown of
	// splitting the codebook dim vs spending the same PEs on finer N
	// tiling, per split factor.
	CBSplitWays    []int
	CBSplitPenalty []float64
}

// Ablation runs all studies.
func Ablation(quick bool) (*AblationResult, error) {
	res := &AblationResult{}

	// --- Calibration technique ablation (A1/A2) ---------------------------
	iters := 300
	epochs := 25
	if quick {
		iters, epochs = 150, 20
	}
	mc := workload.AccuracyModel(nn.TokenInput, "ablation")
	task := workload.NewTask(workload.MarkerTask, mc, 31)
	train := task.Batches(16, 8, 0)
	test := task.Batches(8, 8, 1)

	trainModel := func() *nn.Model {
		m := nn.NewModel(mc, 31)
		m.Train(train, nn.TrainConfig{LearningRate: 3e-3, Epochs: epochs, ClipNorm: 1})
		return m
	}
	base := nn.ConvertConfig{
		Params: lutnn.Params{V: 8, CT: 4}, Seed: 32,
		Beta: 0.01, LearningRate: 3e-4, Iterations: iters, TrainWeights: true,
	}

	variant := func(mod func(*nn.ConvertConfig), baselineToo bool) (float64, float64, error) {
		m := trainModel()
		cfg := base
		if mod != nil {
			mod(&cfg)
		}
		var baseAcc float64
		if baselineToo {
			if err := m.ConvertBaseline(train, cfg); err != nil {
				return 0, 0, err
			}
			m.SetBackend(nn.BackendLUT)
			baseAcc = m.Accuracy(test)
			m.SetBackend(nn.BackendGEMM)
		}
		if err := m.CalibrateELUT(train, cfg); err != nil {
			return 0, 0, err
		}
		m.SetBackend(nn.BackendLUT)
		acc := m.Accuracy(test)
		if mod == nil {
			m.SetBackend(nn.BackendLUTInt8)
			res.AccELUTInt8 = m.Accuracy(test)
		}
		return acc, baseAcc, nil
	}

	m0 := trainModel()
	res.AccOriginal = m0.Accuracy(test)
	var err error
	if res.AccELUT, res.AccBaseline, err = variant(nil, true); err != nil {
		return nil, err
	}
	if res.AccNoRec, _, err = variant(func(c *nn.ConvertConfig) { c.DisableRecLoss = true }, false); err != nil {
		return nil, err
	}
	if res.AccNoSTE, _, err = variant(func(c *nn.ConvertConfig) { c.DisableSTE = true }, false); err != nil {
		return nil, err
	}

	// --- Hash encoder vs exact CCS ----------------------------------------
	rng := rand.New(rand.NewSource(33))
	acts := tensor.RandN(rng, 1, 1024, 64)
	p := lutnn.Params{V: 4, CT: 16}
	enc, err := lutnn.TrainHashEncoder(acts, p, 34)
	if err != nil {
		return nil, err
	}
	cbs, err := lutnn.BuildCodebooks(acts, p, 35)
	if err != nil {
		return nil, err
	}
	res.HashErr = enc.ApproximationError(acts)
	res.CCSErr = cbs.ApproximationError(acts)
	res.HashOps = enc.EncodeOps(1024).Total()
	res.CCSOps = lutnn.CCSOps(1024, 64, 16).Total()

	// --- Adder-only PIM (§7) -----------------------------------------------
	upmem := pim.UPMEM()
	w := pim.Workload{N: 32768, CB: 192, CT: 16, F: 2304, ElemBytes: 1}
	tuned, err := autotuner.Tune(upmem, w, Space)
	if err != nil {
		return nil, err
	}
	res.BaseKernel = tuned.Simulated.Kernel()
	adder := pim.AdderOnly(upmem, 4)
	tunedA, err := autotuner.Tune(adder, w, Space)
	if err != nil {
		return nil, err
	}
	res.AdderKernel = tunedA.Simulated.Kernel()

	// --- Hot-entry caching (§7) --------------------------------------------
	hist := pim.ZipfIndexHistogram(w.CB, w.CT, int64(w.N), 1.2)
	cache := pim.HotCache{Capacity: w.CB * w.CT / 4}
	res.CacheHitRate = cache.HitRate(hist)
	res.UncachedKernel = pim.SimTiming(upmem, w, tuned.Mapping).Kernel()
	res.CachedKernel = pim.CachedKernelTiming(upmem, w, tuned.Mapping, res.CacheHitRate).Kernel()

	// --- CB-split partition penalty (L2 / design decision #3) --------------
	for _, ways := range []int{2, 4, 8} {
		res.CBSplitWays = append(res.CBSplitWays, ways)
		res.CBSplitPenalty = append(res.CBSplitPenalty,
			pim.CBSplitPenalty(upmem, w, tuned.Mapping, ways))
	}

	return res, nil
}

// Render prints all ablation studies.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablations — design choices and §7 architecture extensions\n\n")
	b.WriteString("Calibration techniques (full-layer replacement, V=8/CT=4):\n")
	b.WriteString(table(
		[]string{"Variant", "Accuracy"},
		[][]string{
			{"Original model", fmt.Sprintf("%.1f%%", r.AccOriginal*100)},
			{"Baseline LUT-NN (no calibration)", fmt.Sprintf("%.1f%%", r.AccBaseline*100)},
			{"eLUT-NN (full)", fmt.Sprintf("%.1f%%", r.AccELUT*100)},
			{"eLUT-NN − reconstruction loss", fmt.Sprintf("%.1f%%", r.AccNoRec*100)},
			{"eLUT-NN − STE", fmt.Sprintf("%.1f%%", r.AccNoSTE*100)},
			{"eLUT-NN + INT8 tables", fmt.Sprintf("%.1f%%", r.AccELUTInt8*100)},
		}))
	fmt.Fprintf(&b, `
Hash encoder (MADDNESS-style) vs exact CCS (1024x64 acts, V=4, CT=16):
  approximation error:  hash %.3f vs CCS %.3f
  host encode ops:      hash %d vs CCS %d (%.0fx fewer)

Adder-only PIM (4x adder density, BERT-base QKV LUT op):
  kernel time %.4g s -> %.4g s (%.2fx faster; GEMM offload no longer possible)

Hot-entry LUT cache (quarter-capacity, Zipf 1.2 indices):
  hit rate %.1f%% -> kernel time %.4g s vs %.4g s uncached (%.2fx)
`,
		r.HashErr, r.CCSErr, r.HashOps, r.CCSOps, float64(r.CCSOps)/float64(r.HashOps),
		r.BaseKernel, r.AdderKernel, r.BaseKernel/r.AdderKernel,
		r.CacheHitRate*100, r.CachedKernel, r.UncachedKernel, r.UncachedKernel/r.CachedKernel)
	b.WriteString("\nCB-split partition (violating L2) vs equal-PE standard partition:\n")
	for i, ways := range r.CBSplitWays {
		fmt.Fprintf(&b, "  split %d ways: %.2fx slower (partial-sum merge through the host)\n",
			ways, r.CBSplitPenalty[i])
	}
	return b.String()
}

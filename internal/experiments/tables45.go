package experiments

import (
	"fmt"
	"strings"

	"repro/internal/lutnn"
	"repro/internal/nn"
	"repro/internal/workload"
)

// AccuracyRow is one (model, task) accuracy comparison.
type AccuracyRow struct {
	Model, Task                 string
	Original, BaselineLUT, ELUT float64
}

// AccuracyResult reproduces the shape of Tables 4–5: with every linear
// layer replaced, the baseline LUT-NN conversion collapses while eLUT-NN
// calibration recovers close to the original accuracy.
//
// Substitution (DESIGN.md): GLUE/CIFAR and pretrained checkpoints are
// unavailable, so each task is a planted-structure synthetic dataset and
// each model a reduced-size transformer trained from scratch — deep
// enough (4 blocks, 16 replaced linears) for approximation error to
// compound the way it does in BERT/ViT.
type AccuracyResult struct {
	Table string
	Rows  []AccuracyRow

	AvgOriginal, AvgBaseline, AvgELUT float64
}

// AccuracyConfig sets the experiment's effort.
type AccuracyConfig struct {
	Tasks       int // tasks per model (paper: 8 GLUE / 2 CIFAR)
	TrainEpochs int
	CalibIters  int
	Params      lutnn.Params
	Seed        int64
}

// QuickAccuracy is a fast configuration for tests.
var QuickAccuracy = AccuracyConfig{
	Tasks: 2, TrainEpochs: 25, CalibIters: 300,
	Params: lutnn.Params{V: 8, CT: 4}, Seed: 7,
}

// FullAccuracy is the configuration used by pimdl-bench: all eight
// GLUE-stand-in tasks, longer training and calibration.
var FullAccuracy = AccuracyConfig{
	Tasks: 8, TrainEpochs: 40, CalibIters: 500,
	Params: lutnn.Params{V: 8, CT: 4}, Seed: 7,
}

// glueNames labels the synthetic NLP tasks after the GLUE benchmark the
// paper evaluates on.
var glueNames = []string{"MNLI*", "QQP*", "QNLI*", "SST-2*", "CoLA*", "STS-B*", "MRPC*", "RTE*"}

// cifarNames labels the synthetic vision tasks.
var cifarNames = []string{"CIFAR-10*", "CIFAR-100*"}

// Table4 runs the NLP-shaped accuracy comparison.
func Table4(cfg AccuracyConfig) (*AccuracyResult, error) {
	return accuracyTable("Table 4 (NLP)", nn.TokenInput, glueNames, cfg)
}

// Table5 runs the vision-shaped accuracy comparison.
func Table5(cfg AccuracyConfig) (*AccuracyResult, error) {
	if cfg.Tasks > len(cifarNames) {
		cfg.Tasks = len(cifarNames)
	}
	return accuracyTable("Table 5 (Vision)", nn.PatchInput, cifarNames, cfg)
}

func accuracyTable(name string, kind nn.InputKind, taskNames []string, cfg AccuracyConfig) (*AccuracyResult, error) {
	res := &AccuracyResult{Table: name}
	if cfg.Tasks > len(taskNames) {
		cfg.Tasks = len(taskNames)
	}
	taskKind := workload.MarkerTask
	if kind == nn.PatchInput {
		taskKind = workload.TemplateTask
	}
	var so, sb, se float64
	for ti := 0; ti < cfg.Tasks; ti++ {
		mc := workload.AccuracyModel(kind, taskNames[ti])
		task := workload.NewTask(taskKind, mc, cfg.Seed+int64(ti*101))
		if taskKind == workload.TemplateTask {
			// Weak per-patch signal: evidence must be pooled across
			// patches, so activation quantization visibly hurts (the
			// regime where the paper's ViT baselines collapse).
			task.Scale, task.Noise = 0.35, 1.0
		}
		train := task.Batches(16, 8, 0)
		test := task.Batches(8, 8, 1)

		m := nn.NewModel(mc, cfg.Seed+int64(ti))
		m.Train(train, nn.TrainConfig{LearningRate: 3e-3, Epochs: cfg.TrainEpochs, ClipNorm: 1})
		orig := m.Accuracy(test)

		conv := nn.ConvertConfig{
			Params: cfg.Params, Seed: cfg.Seed + int64(ti*13),
			Beta: 0.01, LearningRate: 3e-4,
			Iterations: cfg.CalibIters, TrainWeights: true,
		}
		if err := m.ConvertBaseline(train, conv); err != nil {
			return nil, err
		}
		m.SetBackend(nn.BackendLUT)
		base := m.Accuracy(test)

		m.SetBackend(nn.BackendGEMM)
		if err := m.CalibrateELUT(train, conv); err != nil {
			return nil, err
		}
		m.SetBackend(nn.BackendLUT)
		elut := m.Accuracy(test)

		res.Rows = append(res.Rows, AccuracyRow{
			Model: mc.Name, Task: taskNames[ti],
			Original: orig, BaselineLUT: base, ELUT: elut,
		})
		so += orig
		sb += base
		se += elut
	}
	n := float64(len(res.Rows))
	res.AvgOriginal, res.AvgBaseline, res.AvgELUT = so/n, sb/n, se/n
	return res, nil
}

// Render prints the accuracy table.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — full-layer replacement accuracy (synthetic task stand-ins)\n\n", r.Table)
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Task,
			fmt.Sprintf("%.1f", row.Original*100),
			fmt.Sprintf("%.1f", row.BaselineLUT*100),
			fmt.Sprintf("%.1f", row.ELUT*100)})
	}
	rows = append(rows, []string{"Average",
		fmt.Sprintf("%.1f", r.AvgOriginal*100),
		fmt.Sprintf("%.1f", r.AvgBaseline*100),
		fmt.Sprintf("%.1f", r.AvgELUT*100)})
	b.WriteString(table([]string{"Task", "Original", "LUT-NN (baseline)", "eLUT-NN"}, rows))
	b.WriteString("\nExpected shape (paper): Original ≈ eLUT-NN >> baseline LUT-NN.\n")
	return b.String()
}

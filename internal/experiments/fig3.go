package experiments

import (
	"fmt"
	"strings"

	"repro/internal/lutnn"
)

// Fig3Point is one bar of the computation-reduction analysis.
type Fig3Point struct {
	V, CT       int
	GFLOPs      float64 // LUT-NN total operations (G)
	MulFraction float64 // multiplications ÷ total
	Reduction   float64 // FLOP_GEMM / FLOP_LUT-NN
}

// Fig3Result reproduces Fig. 3 (N=H=F=1024): LUT-NN op counts and the
// reduction factor over GEMM across the V sweep (CT=16) and the CT sweep
// (V=4).
type Fig3Result struct {
	N, H, F int
	VSweep  []Fig3Point
	CTSweep []Fig3Point
}

// Fig3 computes the paper's computation-reduction analysis.
func Fig3() *Fig3Result {
	const n, h, f = 1024, 1024, 1024
	res := &Fig3Result{N: n, H: h, F: f}
	point := func(v, ct int) Fig3Point {
		ops := lutnn.LUTNNOps(n, h, f, v, ct)
		return Fig3Point{
			V: v, CT: ct,
			GFLOPs:      float64(ops.Total()) / 1e9,
			MulFraction: float64(ops.Muls) / float64(ops.Total()),
			Reduction:   lutnn.Reduction(n, h, f, v, ct),
		}
	}
	for _, v := range []int{2, 4, 8, 16} {
		res.VSweep = append(res.VSweep, point(v, 16))
	}
	for _, ct := range []int{64, 32, 16, 8} {
		res.CTSweep = append(res.CTSweep, point(4, ct))
	}
	return res
}

// Render prints the figure's two sweeps as tables.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — Computation Reduction Analysis (N=H=F=%d)\n\n", r.N)
	rows := func(ps []Fig3Point) [][]string {
		var out [][]string
		for _, p := range ps {
			out = append(out, []string{
				fmt.Sprintf("V=%d", p.V), fmt.Sprintf("CT=%d", p.CT),
				f2(p.GFLOPs), fmt.Sprintf("%.1f%%", p.MulFraction*100), f2(p.Reduction) + "x",
			})
		}
		return out
	}
	hdr := []string{"V", "CT", "GFLOPs", "Mul share", "Reduction vs GEMM"}
	b.WriteString("Sub-vector length sweep (CT=16):\n")
	b.WriteString(table(hdr, rows(r.VSweep)))
	b.WriteString("\nCentroid number sweep (V=4):\n")
	b.WriteString(table(hdr, rows(r.CTSweep)))
	return b.String()
}

package trace

import "repro/internal/baseline"

// hostDevice returns a baseline device for tests.
func hostDevice() *baseline.Device { return baseline.CPUServer() }

package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/serving/live"
)

const (
	liveBatchTID   = 1
	liveDegradeTID = 2
	liveEventsTID  = 3
	liveSpansTID   = 4
)

// asyncEvent is one Chrome trace nestable async event (ph = "b"/"e"):
// events sharing (cat, id) form one row, so every request trace renders
// as its own nested span row on the spans track.
type asyncEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id"`
	Args map[string]string `json:"args,omitempty"`
}

// ExportLive writes a recorded live-serving run as trace-event JSON:
// every primary-lane batch execution as a complete event on the batch
// track (failed batches flagged red via the "failed" arg), degrade-lane
// completions on their own track, and the run's timeline annotations —
// chaos plan changes and circuit-breaker transitions — as instant
// events. A counter track steps through each batch's size at its start,
// making load swings visible at a glance.
//
// Virtual seconds map to trace microseconds 1:1 with the rest of the
// package (×1e6), so a live trace and an offline engine trace of the
// same model line up when opened together in Perfetto.
//
// Optional tracers add a "Request spans" track: every kept request
// trace becomes one nested async row (id = the 16-hex trace ID — the
// same string the metrics exemplars carry) with its queue / batch /
// attempt / backoff phase spans and their attributes. Runs exported
// without a tracer are byte-identical to what this function wrote
// before the spans track existed.
func ExportLive(w io.Writer, rec *live.Recorder, tracers ...*obs.Tracer) error {
	if rec == nil {
		return fmt.Errorf("trace: nil live recorder")
	}
	var traces []*obs.Trace
	for _, tc := range tracers {
		traces = append(traces, tc.Traces()...)
	}
	var events []any
	events = append(events,
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveBatchTID,
			Args: map[string]any{"name": "Primary lane (batched)"}},
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveDegradeTID,
			Args: map[string]any{"name": "Degrade lane (host)"}},
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveEventsTID,
			Args: map[string]any{"name": "Chaos / breaker"}},
	)
	if len(traces) > 0 {
		events = append(events, metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveSpansTID,
			Args: map[string]any{"name": "Request spans"}})
	}

	// Shard-cluster runs add a "live shards" counter track stepping
	// through each batch's surviving shard count — shard kills and
	// revives show up as a staircase next to the chaos instants. Flat
	// (single-array) runs never set LiveShards, so their traces are
	// unchanged.
	batches := rec.Batches()
	shardData := false
	for _, b := range batches {
		if b.LiveShards > 0 {
			shardData = true
			break
		}
	}

	for i, b := range batches {
		name := fmt.Sprintf("batch %d (n=%d)", i, b.Size)
		backend := ""
		if len(b.Backends) > 0 {
			backend = b.Backends[len(b.Backends)-1]
		}
		args := map[string]string{
			"size":       fmt.Sprint(b.Size),
			"rows":       fmt.Sprint(b.Rows),
			"attempts":   fmt.Sprint(b.Attempts),
			"backend":    backend,
			"dmaRetries": fmt.Sprint(b.DMARetries),
			"failed":     fmt.Sprint(b.Failed),
		}
		if shardData {
			args["failovers"] = fmt.Sprint(b.Failovers)
			args["liveShards"] = fmt.Sprint(b.LiveShards)
		}
		events = append(events, event{
			Name: name,
			Cat:  "serving",
			Ph:   "X",
			TS:   b.Start * 1e6,
			Dur:  (b.Done - b.Start) * 1e6,
			PID:  1,
			TID:  liveBatchTID,
			Args: args,
		})
		if b.Attempts > 1 {
			events = append(events, instant{
				Name: "batch-retry", Cat: "fault", Ph: "i", TS: b.Start * 1e6, S: "t",
				PID: 1, TID: liveBatchTID,
				Args: map[string]string{"attempts": fmt.Sprint(b.Attempts)},
			})
		}
		events = append(events, counterEvent{
			Name: "batch size", Cat: "serving", Ph: "C", TS: b.Start * 1e6, PID: 1,
			Args: map[string]float64{"requests": float64(b.Size)},
		})
		if shardData {
			events = append(events, counterEvent{
				Name: "live shards", Cat: "shard", Ph: "C", TS: b.Start * 1e6, PID: 1,
				Args: map[string]float64{"shards": float64(b.LiveShards)},
			})
		}
	}

	for _, r := range rec.Records() {
		if r.Outcome != live.OutcomeDegraded {
			continue
		}
		events = append(events, event{
			Name: fmt.Sprintf("degraded req %d", r.ID),
			Cat:  "serving",
			Ph:   "X",
			TS:   r.Start * 1e6,
			Dur:  (r.Done - r.Start) * 1e6,
			PID:  1,
			TID:  liveDegradeTID,
			Args: map[string]string{
				"rows":    fmt.Sprint(r.Rows),
				"expired": fmt.Sprint(r.Expired),
			},
		})
	}

	for _, t := range traces {
		id := fmt.Sprintf("%016x", t.TraceID)
		for _, sp := range t.Spans() {
			args := map[string]string{}
			if sp.Phase != "" {
				args["phase"] = string(sp.Phase)
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value()
			}
			name := sp.Name
			if sp.ID == 0 {
				// Root span: carry the trace-level identity and outcome.
				name = fmt.Sprintf("req %d (%s)", t.ReqID, t.Outcome())
				args["trace_id"] = id
				args["outcome"] = t.Outcome()
				args["critical"] = fmt.Sprint(t.Critical())
			}
			events = append(events,
				asyncEvent{Name: name, Cat: "request", Ph: "b", TS: sp.Start * 1e6,
					PID: 1, TID: liveSpansTID, ID: id, Args: args},
				asyncEvent{Name: name, Cat: "request", Ph: "e", TS: sp.End * 1e6,
					PID: 1, TID: liveSpansTID, ID: id},
			)
		}
	}

	for _, ev := range rec.Events() {
		events = append(events, instant{
			Name: ev.Kind + ": " + ev.Note, Cat: ev.Kind, Ph: "i", TS: ev.At * 1e6, S: "g",
			PID: 1, TID: liveEventsTID,
		})
	}

	sum := rec.Summary()
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"submitted": fmt.Sprint(sum.Submitted),
			"served":    fmt.Sprint(sum.Served),
			"degraded":  fmt.Sprint(sum.Degraded),
			"shed":      fmt.Sprint(sum.ShedQueue),
			"timeouts":  fmt.Sprint(sum.Timeouts),
			"failures":  fmt.Sprint(sum.Failures),
		},
	})
}

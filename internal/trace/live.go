package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/serving/live"
)

const (
	liveBatchTID   = 1
	liveDegradeTID = 2
	liveEventsTID  = 3
)

// ExportLive writes a recorded live-serving run as trace-event JSON:
// every primary-lane batch execution as a complete event on the batch
// track (failed batches flagged red via the "failed" arg), degrade-lane
// completions on their own track, and the run's timeline annotations —
// chaos plan changes and circuit-breaker transitions — as instant
// events. A counter track steps through each batch's size at its start,
// making load swings visible at a glance.
//
// Virtual seconds map to trace microseconds 1:1 with the rest of the
// package (×1e6), so a live trace and an offline engine trace of the
// same model line up when opened together in Perfetto.
func ExportLive(w io.Writer, rec *live.Recorder) error {
	if rec == nil {
		return fmt.Errorf("trace: nil live recorder")
	}
	var events []any
	events = append(events,
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveBatchTID,
			Args: map[string]any{"name": "Primary lane (batched)"}},
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveDegradeTID,
			Args: map[string]any{"name": "Degrade lane (host)"}},
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: liveEventsTID,
			Args: map[string]any{"name": "Chaos / breaker"}},
	)

	// Shard-cluster runs add a "live shards" counter track stepping
	// through each batch's surviving shard count — shard kills and
	// revives show up as a staircase next to the chaos instants. Flat
	// (single-array) runs never set LiveShards, so their traces are
	// unchanged.
	batches := rec.Batches()
	shardData := false
	for _, b := range batches {
		if b.LiveShards > 0 {
			shardData = true
			break
		}
	}

	for i, b := range batches {
		name := fmt.Sprintf("batch %d (n=%d)", i, b.Size)
		backend := ""
		if len(b.Backends) > 0 {
			backend = b.Backends[len(b.Backends)-1]
		}
		args := map[string]string{
			"size":       fmt.Sprint(b.Size),
			"rows":       fmt.Sprint(b.Rows),
			"attempts":   fmt.Sprint(b.Attempts),
			"backend":    backend,
			"dmaRetries": fmt.Sprint(b.DMARetries),
			"failed":     fmt.Sprint(b.Failed),
		}
		if shardData {
			args["failovers"] = fmt.Sprint(b.Failovers)
			args["liveShards"] = fmt.Sprint(b.LiveShards)
		}
		events = append(events, event{
			Name: name,
			Cat:  "serving",
			Ph:   "X",
			TS:   b.Start * 1e6,
			Dur:  (b.Done - b.Start) * 1e6,
			PID:  1,
			TID:  liveBatchTID,
			Args: args,
		})
		if b.Attempts > 1 {
			events = append(events, instant{
				Name: "batch-retry", Cat: "fault", Ph: "i", TS: b.Start * 1e6, S: "t",
				PID: 1, TID: liveBatchTID,
				Args: map[string]string{"attempts": fmt.Sprint(b.Attempts)},
			})
		}
		events = append(events, counterEvent{
			Name: "batch size", Cat: "serving", Ph: "C", TS: b.Start * 1e6, PID: 1,
			Args: map[string]float64{"requests": float64(b.Size)},
		})
		if shardData {
			events = append(events, counterEvent{
				Name: "live shards", Cat: "shard", Ph: "C", TS: b.Start * 1e6, PID: 1,
				Args: map[string]float64{"shards": float64(b.LiveShards)},
			})
		}
	}

	for _, r := range rec.Records() {
		if r.Outcome != live.OutcomeDegraded {
			continue
		}
		events = append(events, event{
			Name: fmt.Sprintf("degraded req %d", r.ID),
			Cat:  "serving",
			Ph:   "X",
			TS:   r.Start * 1e6,
			Dur:  (r.Done - r.Start) * 1e6,
			PID:  1,
			TID:  liveDegradeTID,
			Args: map[string]string{
				"rows":    fmt.Sprint(r.Rows),
				"expired": fmt.Sprint(r.Expired),
			},
		})
	}

	for _, ev := range rec.Events() {
		events = append(events, instant{
			Name: ev.Kind + ": " + ev.Note, Cat: ev.Kind, Ph: "i", TS: ev.At * 1e6, S: "g",
			PID: 1, TID: liveEventsTID,
		})
	}

	sum := rec.Summary()
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"submitted": fmt.Sprint(sum.Submitted),
			"served":    fmt.Sprint(sum.Served),
			"degraded":  fmt.Sprint(sum.Degraded),
			"shed":      fmt.Sprint(sum.ShedQueue),
			"timeouts":  fmt.Sprint(sum.Timeouts),
			"failures":  fmt.Sprint(sum.Failures),
		},
	})
}

// Package trace exports engine reports as Chrome trace-event JSON
// (chrome://tracing / Perfetto), giving the operator schedule a real
// timeline view: one track for the host, one for the PIM array, with
// every CCS/LUT/attention/elementwise operator as a complete event.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/engine"
)

// event is one Chrome trace "complete" event (ph = "X").
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// instant is one Chrome trace instant event (ph = "i"), used for fault,
// retry and re-dispatch markers so recoveries are visible in Perfetto.
type instant struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	S    string            `json:"s"`  // scope: thread
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// counterEvent is one Chrome trace counter sample (ph = "C"): Perfetto
// renders each distinct name as its own counter track, stepping to the
// sampled value at each timestamp.
type counterEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat"`
	Ph   string             `json:"ph"`
	TS   float64            `json:"ts"` // microseconds
	PID  int                `json:"pid"`
	Args map[string]float64 `json:"args"`
}

// metadata names a track.
type metadata struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

const (
	hostTID = 1
	pimTID  = 2
)

// Export writes the report's schedule as trace-event JSON. Operators are
// laid out serially in report order (the engine's execution model);
// host ops land on the host track and PIM ops on the PIM track.
// Degraded operators additionally emit instant events (ph "i") on the PIM
// track at their start time — one per recovery category (DMA retries,
// tile re-dispatches, residual corruption, host fallback) — so Perfetto
// shows where the array misbehaved.
//
// Two counter tracks (ph "C") are sampled at every operator boundary:
// "PE utilization" — the running operator's PEs over the physical array
// size (reports with ArrayPEs > 0 only, i.e. PIM configurations) — and
// "queue depth" — operators not yet started. Both step to zero when the
// schedule drains, so the tracks read correctly under Perfetto's
// step-function rendering.
func Export(w io.Writer, rep *engine.Report) error {
	var events []any
	events = append(events,
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: hostTID,
			Args: map[string]any{"name": "Host"}},
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: pimTID,
			Args: map[string]any{"name": "PIM array"}},
	)
	cursor := 0.0
	for i, op := range rep.Ops {
		tid := hostTID
		if op.OnPIM {
			tid = pimTID
		}
		events = append(events, event{
			Name: op.Name,
			Cat:  op.Class.String(),
			Ph:   "X",
			TS:   cursor * 1e6,
			Dur:  op.Time * 1e6,
			PID:  1,
			TID:  tid,
			Args: map[string]string{
				"layer": fmt.Sprint(op.Layer),
				"class": op.Class.String(),
			},
		})
		events = append(events, faultInstants(op, cursor)...)
		events = append(events, counterSamples(rep, i, cursor)...)
		cursor += op.Time
	}
	events = append(events, counterSamples(rep, len(rep.Ops), cursor)...)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"config": rep.Config,
			"batch":  fmt.Sprint(rep.Batch),
		},
	})
}

// counterSamples returns the counter-track samples at the boundary where
// operator i starts (i == len(Ops) is the drain point after the last op).
func counterSamples(rep *engine.Report, i int, cursor float64) []any {
	var out []any
	if rep.ArrayPEs > 0 {
		util := 0.0
		if i < len(rep.Ops) && rep.Ops[i].OnPIM {
			util = float64(rep.Ops[i].PEs) / float64(rep.ArrayPEs)
		}
		out = append(out, counterEvent{Name: "PE utilization", Cat: "pim", Ph: "C",
			TS: cursor * 1e6, PID: 1, Args: map[string]float64{"util": util}})
	}
	out = append(out, counterEvent{Name: "queue depth", Cat: "engine", Ph: "C",
		TS: cursor * 1e6, PID: 1, Args: map[string]float64{"ops": float64(len(rep.Ops) - i)}})
	return out
}

// faultInstants returns the instant events one operator contributes: a
// marker per non-zero recovery category, pinned to the op's start on the
// PIM track (fault activity is an array-side phenomenon even when the
// consequence — a host fallback — runs elsewhere).
func faultInstants(op engine.OpCost, cursor float64) []any {
	var out []any
	mark := func(name string, args map[string]string) {
		out = append(out, instant{
			Name: name, Cat: "fault", Ph: "i", TS: cursor * 1e6, S: "t",
			PID: 1, TID: pimTID, Args: args,
		})
	}
	if op.Fallback {
		mark("host-fallback", map[string]string{"op": op.Name, "layer": fmt.Sprint(op.Layer)})
	}
	if r := op.Recovery; r != nil {
		if r.Retries > 0 {
			mark("dma-retry", map[string]string{"op": op.Name, "retries": fmt.Sprint(r.Retries)})
		}
		if r.Redispatched > 0 {
			mark("re-dispatch", map[string]string{"op": op.Name,
				"tiles": fmt.Sprint(r.Redispatched), "deadPEs": fmt.Sprint(r.DeadPEs)})
		}
		if r.ResidualCorrupt > 0 {
			mark("residual-corruption", map[string]string{"op": op.Name,
				"elements": fmt.Sprint(r.ResidualCorrupt)})
		}
	}
	return out
}

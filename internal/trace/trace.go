// Package trace exports engine reports as Chrome trace-event JSON
// (chrome://tracing / Perfetto), giving the operator schedule a real
// timeline view: one track for the host, one for the PIM array, with
// every CCS/LUT/attention/elementwise operator as a complete event.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/engine"
)

// event is one Chrome trace "complete" event (ph = "X").
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// metadata names a track.
type metadata struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

const (
	hostTID = 1
	pimTID  = 2
)

// Export writes the report's schedule as trace-event JSON. Operators are
// laid out serially in report order (the engine's execution model);
// host ops land on the host track and PIM ops on the PIM track.
func Export(w io.Writer, rep *engine.Report) error {
	var events []any
	events = append(events,
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: hostTID,
			Args: map[string]any{"name": "Host"}},
		metadata{Name: "thread_name", Ph: "M", PID: 1, TID: pimTID,
			Args: map[string]any{"name": "PIM array"}},
	)
	cursor := 0.0
	for _, op := range rep.Ops {
		tid := hostTID
		if op.OnPIM {
			tid = pimTID
		}
		events = append(events, event{
			Name: op.Name,
			Cat:  op.Class.String(),
			Ph:   "X",
			TS:   cursor * 1e6,
			Dur:  op.Time * 1e6,
			PID:  1,
			TID:  tid,
			Args: map[string]string{
				"layer": fmt.Sprint(op.Layer),
				"class": op.Class.String(),
			},
		})
		cursor += op.Time
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"config": rep.Config,
			"batch":  fmt.Sprint(rep.Batch),
		},
	})
}

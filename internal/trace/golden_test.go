package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/pim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fixed schedule exercising every event kind the
// exporter emits: complete events on both tracks, every fault-instant
// category, and both counter tracks (PE utilization + queue depth).
func goldenReport() *engine.Report {
	return &engine.Report{
		Config:   "golden/UPMEM",
		Batch:    8,
		SeqLen:   128,
		ArrayPEs: 2048,
		Ops: []engine.OpCost{
			{Name: "CCS-QKV", Class: engine.ClassCCS, Layer: 0, Role: nn.RoleQKV, Time: 0.001},
			{Name: "LUT-QKV", Class: engine.ClassLUT, Layer: 0, Role: nn.RoleQKV,
				Time: 0.004, OnPIM: true, PEs: 1024,
				Recovery: &pim.Recovery{DeadPEs: 3, Redispatched: 5, Retries: 7,
					ResidualCorrupt: 2, WorstSlowdown: 1.25}},
			{Name: "GEMM-FFN1-fallback", Class: engine.ClassOther, Layer: 0, Role: nn.RoleFFN1,
				Time: 0.010, Fallback: true},
			{Name: "Elementwise", Class: engine.ClassOther, Layer: 0,
				Time: 0.002, OnPIM: true, PEs: 2048},
		},
	}
}

// TestExportGolden pins the full exporter output byte-for-byte: the JSON
// encoder sorts map keys and structs serialize in field order, so the
// document is deterministic. Regenerate with `go test -run Golden -update`
// after an intentional format change and review the diff.
func TestExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export drifted from golden file %s\ngot:  %s\nwant: %s", path, buf.Bytes(), want)
	}
}

// TestExportCounterTracks checks the counter-track semantics on a PIM
// report: PE utilization samples PEs/ArrayPEs while a PIM op runs and 0
// otherwise, queue depth counts down to 0 at the drain point.
func TestExportCounterTracks(t *testing.T) {
	rep := goldenReport()
	var buf bytes.Buffer
	if err := Export(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var util, depth []float64
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "C" {
			continue
		}
		args := ev["args"].(map[string]any)
		switch ev["name"] {
		case "PE utilization":
			util = append(util, args["util"].(float64))
		case "queue depth":
			depth = append(depth, args["ops"].(float64))
		default:
			t.Fatalf("unexpected counter track %v", ev["name"])
		}
	}
	// Boundaries: CCS (host, 0), LUT (1024/2048), fallback GEMM (host, 0),
	// elementwise (2048/2048), drain (0).
	wantUtil := []float64{0, 0.5, 0, 1, 0}
	wantDepth := []float64{4, 3, 2, 1, 0}
	if len(util) != len(wantUtil) {
		t.Fatalf("utilization samples %v", util)
	}
	for i := range wantUtil {
		if util[i] != wantUtil[i] {
			t.Fatalf("utilization[%d] = %g, want %g (%v)", i, util[i], wantUtil[i], util)
		}
		if depth[i] != wantDepth[i] {
			t.Fatalf("depth[%d] = %g, want %g (%v)", i, depth[i], wantDepth[i], depth)
		}
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/pim"
)

func TestExportValidJSON(t *testing.T) {
	rep := &engine.Report{
		Config: "test",
		Batch:  4,
		Ops: []engine.OpCost{
			{Name: "CCS-QKV", Class: engine.ClassCCS, Layer: 0, Role: nn.RoleQKV, Time: 0.001},
			{Name: "LUT-QKV", Class: engine.ClassLUT, Layer: 0, Role: nn.RoleQKV, Time: 0.004, OnPIM: true},
			{Name: "Attention", Class: engine.ClassOther, Layer: 0, Time: 0.002},
		},
	}
	var buf bytes.Buffer
	if err := Export(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 metadata + 3 ops + 4 queue-depth samples (one per op boundary
	// plus the drain point; no PE-utilization track since ArrayPEs = 0).
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev["ph"].(string)]++
	}
	if byPh["M"] != 2 || byPh["X"] != 3 || byPh["C"] != 4 {
		t.Fatalf("event counts %v, want M:2 X:3 C:4", byPh)
	}
	// Events must be serial and non-overlapping: ts[i+1] = ts[i] + dur[i].
	var lastEnd float64
	seen := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		ts := ev["ts"].(float64)
		dur := ev["dur"].(float64)
		if ts < lastEnd-1e-9 {
			t.Fatalf("event %v overlaps previous end %g", ev["name"], lastEnd)
		}
		lastEnd = ts + dur
		seen++
		// PIM ops on the PIM track.
		if ev["name"] == "LUT-QKV" && ev["tid"].(float64) != 2 {
			t.Fatal("LUT op on wrong track")
		}
		if ev["name"] == "CCS-QKV" && ev["tid"].(float64) != 1 {
			t.Fatal("CCS op on wrong track")
		}
	}
	if seen != 3 {
		t.Fatalf("op events %d", seen)
	}
}

// TestExportFaultInstantEvents checks the JSON shape of the fault/retry/
// re-dispatch markers: instant events (ph "i", thread scope) on the PIM
// track at the owning op's start time, one per recovery category.
func TestExportFaultInstantEvents(t *testing.T) {
	rep := &engine.Report{
		Config: "degraded",
		Batch:  1,
		Ops: []engine.OpCost{
			{Name: "LUT-QKV", Class: engine.ClassLUT, Layer: 0, Role: nn.RoleQKV,
				Time: 0.004, OnPIM: true,
				Recovery: &pim.Recovery{DeadPEs: 2, Redispatched: 2, Retries: 5, ResidualCorrupt: 1, WorstSlowdown: 1.4}},
			{Name: "GEMM-FFN1-fallback", Class: engine.ClassOther, Layer: 0, Role: nn.RoleFFN1,
				Time: 0.010, Fallback: true},
		},
	}
	var buf bytes.Buffer
	if err := Export(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	instants := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "i" {
			continue
		}
		if ev["s"] != "t" {
			t.Fatalf("instant %v missing thread scope: %v", ev["name"], ev["s"])
		}
		if ev["tid"].(float64) != 2 {
			t.Fatalf("instant %v not on PIM track", ev["name"])
		}
		if _, ok := ev["dur"]; ok {
			t.Fatalf("instant %v carries a duration", ev["name"])
		}
		instants[ev["name"].(string)] = ev
	}
	for _, want := range []string{"dma-retry", "re-dispatch", "residual-corruption", "host-fallback"} {
		if _, ok := instants[want]; !ok {
			t.Fatalf("missing instant event %q (got %v)", want, instants)
		}
	}
	// Markers pin to their op's start: LUT op starts at 0, fallback GEMM
	// at 0.004 s = 4000 µs.
	if ts := instants["dma-retry"]["ts"].(float64); ts != 0 {
		t.Fatalf("dma-retry ts %g", ts)
	}
	if ts := instants["host-fallback"]["ts"].(float64); ts != 4000 {
		t.Fatalf("host-fallback ts %g", ts)
	}
	args := instants["re-dispatch"]["args"].(map[string]any)
	if args["tiles"] != "2" || args["deadPEs"] != "2" {
		t.Fatalf("re-dispatch args %v", args)
	}
	if args := instants["dma-retry"]["args"].(map[string]any); args["retries"] != "5" {
		t.Fatalf("dma-retry args %v", args)
	}
}

func TestExportRealReport(t *testing.T) {
	e := engine.New()
	cfg := engine.Config{}
	_ = cfg
	// Use a host-only estimate (fast, no tuning).
	hostCfg := engine.Config{Model: nn.BERTBase, Batch: 2}
	hostCfg.Model.Layers = 1
	hostCfg.Host = hostDevice()
	rep := e.EstimateHost(hostCfg)
	var buf bytes.Buffer
	if err := Export(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/engine"
	"repro/internal/nn"
)

func TestExportValidJSON(t *testing.T) {
	rep := &engine.Report{
		Config: "test",
		Batch:  4,
		Ops: []engine.OpCost{
			{Name: "CCS-QKV", Class: engine.ClassCCS, Layer: 0, Role: nn.RoleQKV, Time: 0.001},
			{Name: "LUT-QKV", Class: engine.ClassLUT, Layer: 0, Role: nn.RoleQKV, Time: 0.004, OnPIM: true},
			{Name: "Attention", Class: engine.ClassOther, Layer: 0, Time: 0.002},
		},
	}
	var buf bytes.Buffer
	if err := Export(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 metadata + 3 ops.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("events %d, want 5", len(doc.TraceEvents))
	}
	// Events must be serial and non-overlapping: ts[i+1] = ts[i] + dur[i].
	var lastEnd float64
	seen := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		ts := ev["ts"].(float64)
		dur := ev["dur"].(float64)
		if ts < lastEnd-1e-9 {
			t.Fatalf("event %v overlaps previous end %g", ev["name"], lastEnd)
		}
		lastEnd = ts + dur
		seen++
		// PIM ops on the PIM track.
		if ev["name"] == "LUT-QKV" && ev["tid"].(float64) != 2 {
			t.Fatal("LUT op on wrong track")
		}
		if ev["name"] == "CCS-QKV" && ev["tid"].(float64) != 1 {
			t.Fatal("CCS op on wrong track")
		}
	}
	if seen != 3 {
		t.Fatalf("op events %d", seen)
	}
}

func TestExportRealReport(t *testing.T) {
	e := engine.New()
	cfg := engine.Config{}
	_ = cfg
	// Use a host-only estimate (fast, no tuning).
	hostCfg := engine.Config{Model: nn.BERTBase, Batch: 2}
	hostCfg.Model.Layers = 1
	hostCfg.Host = hostDevice()
	rep := e.EstimateHost(hostCfg)
	var buf bytes.Buffer
	if err := Export(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("invalid JSON")
	}
}

package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/serving/live"
)

// liveTestRecorder reconstructs a small deterministic run: two served
// batches (the second retried once), one degraded request, one shed, one
// timeout, and a chaos + breaker timeline.
func liveTestRecorder() *live.Recorder {
	rec := live.NewRecorder()
	rec.AddBatch(live.BatchRecord{Start: 0.10, Done: 0.15, Size: 2, Rows: 2,
		Attempts: 1, AttemptDurs: []float64{0.05}, Backends: []string{"pim"}})
	rec.AddBatch(live.BatchRecord{Start: 0.20, Done: 0.32, Size: 1, Rows: 4,
		Attempts: 2, AttemptDurs: []float64{0.05, 0.05}, Backends: []string{"pim", "host"},
		DMARetries: 3})
	rec.Add(live.Record{ID: 1, Rows: 1, Arrival: 0.01, Outcome: live.OutcomeServed,
		Start: 0.10, Done: 0.15, Batch: 2, Backend: "pim"})
	rec.Add(live.Record{ID: 2, Rows: 1, Arrival: 0.02, Outcome: live.OutcomeServed,
		Start: 0.10, Done: 0.15, Batch: 2, Backend: "pim"})
	rec.Add(live.Record{ID: 3, Rows: 4, Arrival: 0.12, Outcome: live.OutcomeServed,
		Start: 0.20, Done: 0.32, Batch: 1, Backend: "host", Expired: true})
	rec.Add(live.Record{ID: 4, Rows: 1, Arrival: 0.13, Outcome: live.OutcomeDegraded,
		Start: 0.14, Done: 0.24, Batch: 1, Backend: "host"})
	rec.Add(live.Record{ID: 5, Rows: 1, Arrival: 0.14, Outcome: live.OutcomeShedQueue})
	rec.Add(live.Record{ID: 6, Rows: 1, Arrival: 0.15, Outcome: live.OutcomeTimeout})
	rec.AddEvent(live.Event{At: 0.18, Kind: "chaos", Note: "storm"})
	rec.AddEvent(live.Event{At: 0.19, Kind: "breaker", Note: "closed→open"})
	return rec
}

func TestExportLiveValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportLive(&buf, liveTestRecorder()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]string
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 track metadata; 2 batches + 1 degraded completion as complete
	// events; 1 batch-retry + 2 timeline instants; 2 batch-size samples.
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev["ph"].(string)]++
	}
	if byPh["M"] != 3 || byPh["X"] != 3 || byPh["i"] != 3 || byPh["C"] != 2 {
		t.Fatalf("event counts %v, want M:3 X:3 i:3 C:2", byPh)
	}
	// The accounting footer matches the recorder's summary.
	want := map[string]string{
		"submitted": "6", "served": "3", "degraded": "1",
		"shed": "1", "timeouts": "1", "failures": "0",
	}
	for k, v := range want {
		if doc.OtherData[k] != v {
			t.Fatalf("otherData[%s] = %q, want %q", k, doc.OtherData[k], v)
		}
	}
	// Complete events carry microsecond timestamps on the right tracks.
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			continue
		}
		ts, dur := ev["ts"].(float64), ev["dur"].(float64)
		if ts < 0 || dur <= 0 {
			t.Fatalf("complete event with ts=%g dur=%g", ts, dur)
		}
	}
}

// TestExportLiveShardCounter: a sharded run (BatchRecords carrying
// LiveShards) grows a "live shards" counter track and per-batch failover
// args; the flat-run recorder above never sets LiveShards, so its event
// counts (pinned by TestExportLiveValidJSON) prove the track stays off.
func TestExportLiveShardCounter(t *testing.T) {
	rec := live.NewRecorder()
	rec.AddBatch(live.BatchRecord{Start: 0.10, Done: 0.15, Size: 2, Rows: 2,
		Attempts: 1, AttemptDurs: []float64{0.05}, Backends: []string{"pim"},
		LiveShards: 4})
	rec.AddBatch(live.BatchRecord{Start: 0.20, Done: 0.30, Size: 2, Rows: 2,
		Attempts: 1, AttemptDurs: []float64{0.05}, Backends: []string{"pim"},
		Failovers: 3, LiveShards: 3})
	var buf bytes.Buffer
	if err := ExportLive(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var shards []float64
	var failovers []string
	for _, ev := range doc.TraceEvents {
		switch {
		case ev["ph"] == "C" && ev["name"] == "live shards":
			shards = append(shards, ev["args"].(map[string]any)["shards"].(float64))
		case ev["ph"] == "X":
			failovers = append(failovers, ev["args"].(map[string]any)["failovers"].(string))
		}
	}
	if len(shards) != 2 || shards[0] != 4 || shards[1] != 3 {
		t.Fatalf("live-shards counter samples %v, want [4 3]", shards)
	}
	if len(failovers) != 2 || failovers[0] != "0" || failovers[1] != "3" {
		t.Fatalf("failover args %v, want [0 3]", failovers)
	}
}

func TestExportLiveDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := ExportLive(&a, liveTestRecorder()); err != nil {
		t.Fatal(err)
	}
	if err := ExportLive(&b, liveTestRecorder()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders exported different traces")
	}
}

func TestExportLiveNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportLive(&buf, nil); err == nil {
		t.Fatal("nil recorder accepted")
	}
}

// TestExportLiveSpansTrack: passing a tracer adds the "Request spans"
// track — one nested async row per kept trace, id'd by the 16-hex trace
// ID the exemplars carry — without disturbing any pre-existing track
// (TestExportLiveValidJSON pins the tracer-less event counts).
func TestExportLiveSpansTrack(t *testing.T) {
	tc, err := obs.NewTracer(obs.Config{Capacity: 8, SampleRate: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := tc.Start(1, 0.01)
	q := tr.StartSpan(0, "queue", obs.PhaseQueue, 0.01)
	tr.EndSpan(q, 0.10)
	att := tr.StartSpan(0, "attempt", "", 0.10)
	tr.Annotate(att, obs.Int("attempt", 0), obs.Str("backend", "pim"))
	ex := tr.StartSpan(att, "execute", obs.PhasePIM, 0.10)
	tr.EndSpan(ex, 0.15)
	tr.EndSpan(att, 0.15)
	if !tc.Finish(tr, "served", 0.15, false) {
		t.Fatal("trace not kept")
	}

	var buf bytes.Buffer
	if err := ExportLive(&buf, liveTestRecorder(), tc); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	wantID := fmt.Sprintf("%016x", tr.TraceID)
	byPh := map[string]int{}
	spanNames := map[string]bool{}
	namedSpansTrack := false
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		byPh[ph]++
		if ph == "M" {
			if name, _ := ev["args"].(map[string]any)["name"].(string); name == "Request spans" {
				namedSpansTrack = true
			}
			continue
		}
		if ph != "b" && ph != "e" {
			continue
		}
		if ev["id"] != wantID {
			t.Fatalf("span event id %v, want %s", ev["id"], wantID)
		}
		if ph == "b" {
			spanNames[ev["name"].(string)] = true
		}
	}
	// 4 spans (request root, queue, attempt, execute) → 4 begin + 4 end
	// async events on the new metadata-named track; every other phase
	// count matches the tracer-less export.
	if byPh["b"] != 4 || byPh["e"] != 4 || byPh["M"] != 4 ||
		byPh["X"] != 3 || byPh["i"] != 3 || byPh["C"] != 2 {
		t.Fatalf("event counts %v, want b:4 e:4 M:4 X:3 i:3 C:2", byPh)
	}
	if !namedSpansTrack {
		t.Fatal("spans track metadata missing")
	}
	for _, name := range []string{"req 1 (served)", "queue", "attempt", "execute"} {
		if !spanNames[name] {
			t.Fatalf("span %q missing from track (have %v)", name, spanNames)
		}
	}
}

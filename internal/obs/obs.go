// Package obs is the request-scoped tracing layer of PIM-DL: span
// trees per request with typed phase attributes, deterministic trace
// IDs, bounded-memory ring sampling, and a tail-latency attribution
// report that decomposes any percentile band of a live run into
// per-phase blame (queueing vs batching vs PIM compute vs retries vs
// failover vs host fallback).
//
// Where internal/metrics answers "what is the p99 right now", this
// package answers "where did THIS request's time go". The two are
// linked twice over: histogram exemplars carry trace IDs of sampled
// requests into the metrics snapshot, and the attribution invariant —
// per-phase seconds sum to the request's recorded end-to-end latency
// within 1e-9 — is the per-request analogue of PR 4's "metrics equal
// the model's own numbers" discipline (DESIGN.md §15).
//
// The design goals, in order:
//
//   - Dependency-free and race-safe. Only the standard library (and
//     internal/metrics for the pimdl_obs_* self-accounting series) is
//     imported; every Tracer and Trace method is safe for concurrent
//     use, so the live server's dispatcher, degrade workers and chaos
//     controller can all touch the same trace set under -race.
//
//   - Deterministic under the virtual clock. Timestamps are the
//     runtime's virtual seconds (live.ScaledClock or the deterministic
//     scenario runner), trace IDs are splitmix64 of (seed, request ID),
//     and the sampling decision is a pure function of the trace ID — a
//     fixed seed reproduces the same sampled set byte for byte.
//
//   - Bounded memory. Completed traces land in a fixed-capacity ring:
//     critical traces (shed, deadline-missed, failed, irrecoverable)
//     are always kept, ordinary completions probabilistically, and when
//     the ring is full the oldest non-critical entry is evicted first.
//
// Recording is gated like metrics: a nil *Tracer is a valid no-op
// everywhere, and SetEnabled(false) (or PIMDL_TRACE=0) turns the
// helpers off globally — which is how the bench-overhead guard obtains
// its spans-off baseline.
package obs

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

var enabledFlag atomic.Bool

func init() {
	switch strings.ToLower(os.Getenv("PIMDL_TRACE")) {
	case "0", "off", "false":
		enabledFlag.Store(false)
	default:
		enabledFlag.Store(true)
	}
}

// Enabled reports whether span recording helpers should record. A nil
// Tracer is always a no-op regardless; this global gate exists so the
// overhead guard can toggle spans without rebuilding servers.
//
//pimdl:hotpath
func Enabled() bool { return enabledFlag.Load() }

// SetEnabled turns span recording on or off at runtime (tests, the
// bench-overhead AB harness).
func SetEnabled(on bool) { enabledFlag.Store(on) }

// Phase classifies a span's time for the attribution report. Phase
// segments of one trace must not overlap: the report charges every
// phased span's duration to its phase and the remainder of the
// request's lifetime to PhaseOther, so overlapping phases would
// double-count. Decorative spans (attempt parents, routing detail)
// carry the empty phase and are timeline-only.
type Phase string

// The request phases of the live serving pipeline.
const (
	// PhaseQueue: admission to batch pickup (head-of-line wait).
	PhaseQueue Phase = "queue"
	// PhaseBatch: batch pickup to dispatch (continuous-batching wait
	// for co-riders and the shape budget).
	PhaseBatch Phase = "batch"
	// PhasePIM: successful PIM compute (the final attempt's busy time).
	PhasePIM Phase = "pim"
	// PhaseHost: successful host compute — breaker fallback, degrade
	// lane, or a host-routed retry.
	PhaseHost Phase = "host"
	// PhaseRetry: busy time of failed attempts (checksum rejections,
	// irrecoverable dispatches) — pure waste, the blame of DMA storms.
	PhaseRetry Phase = "retry"
	// PhaseBackoff: exponential-backoff pauses between attempts.
	PhaseBackoff Phase = "backoff"
	// PhaseBroadcast / PhaseGather: the sharded cluster's cross-DIMM
	// index broadcast and output gather shares of a PIM attempt.
	PhaseBroadcast Phase = "broadcast"
	PhaseGather    Phase = "gather"
	// PhaseDecodePrefill / PhaseDecodeStep: the decode fastpath's
	// prompt prefill and per-token stepping.
	PhaseDecodePrefill Phase = "decode_prefill"
	PhaseDecodeStep    Phase = "decode_step"
	// PhaseOther is the residual the report assigns to lifetime not
	// covered by any phased span (scheduler gaps, clock skew between
	// pickup and dispatch stamps). Spans never carry it directly.
	PhaseOther Phase = "other"
)

// AttrKind is the type tag of a typed attribute.
type AttrKind uint8

// The attribute kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
	AttrBool
)

// Attr is one typed span attribute.
type Attr struct {
	Key  string
	Kind AttrKind
	S    string
	I    int64
	F    float64
	B    bool
}

// Str / Int / Float / Bool construct typed attributes.
func Str(k, v string) Attr      { return Attr{Key: k, Kind: AttrString, S: v} }
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: AttrInt, I: v} }
func Float(k string, v float64) Attr {
	return Attr{Key: k, Kind: AttrFloat, F: v}
}
func Bool(k string, v bool) Attr { return Attr{Key: k, Kind: AttrBool, B: v} }

// Value renders the attribute value as a string (exports, tables).
func (a Attr) Value() string {
	switch a.Kind {
	case AttrInt:
		return fmt.Sprint(a.I)
	case AttrFloat:
		return fmt.Sprintf("%g", a.F)
	case AttrBool:
		return fmt.Sprint(a.B)
	default:
		return a.S
	}
}

// SpanID indexes a span within its trace; NoSpan means "no parent".
type SpanID int32

// NoSpan is the root sentinel.
const NoSpan SpanID = -1

// Span is one timed segment of a request's lifetime.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Phase  Phase
	// Start / End are virtual seconds; End < Start never occurs for a
	// finished span (the tracer closes still-open spans at the terminal
	// timestamp).
	Start, End float64
	Attrs      []Attr
	// ended tracks whether EndSpan ran, so a legitimate zero-duration
	// span is not mistaken for a still-open one at Finish.
	ended bool
}

// Dur returns the span's duration.
func (s Span) Dur() float64 { return s.End - s.Start }

// Trace is the span tree of one request. All methods are safe for
// concurrent use; a trace is typically written by whichever goroutine
// currently owns the request (submitter → dispatcher → lane worker).
type Trace struct {
	// TraceID is the deterministic nonzero identity: splitmix64 of the
	// tracer seed and the request ID. It is what exemplars and the
	// Perfetto export reference.
	TraceID uint64
	// ReqID is the runtime's request ID (live.Request.ID, decode job
	// sequence number).
	ReqID int64
	// Arrival is the virtual submit time the root span starts at.
	Arrival float64

	mu    sync.Mutex
	spans []Span
	// outcome / end are set by Finish.
	outcome  string
	end      float64
	critical bool
	done     bool
}

// StartSpan opens a child span and returns its ID.
func (t *Trace) StartSpan(parent SpanID, name string, phase Phase, now float64) SpanID {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Phase: phase, Start: now, End: now})
	t.mu.Unlock()
	recordSpanStart()
	return id
}

// EndSpan closes the span at now (no-op for NoSpan or a nil trace; a
// span may be ended at most once — later Ends win, which the runtime
// never exercises).
func (t *Trace) EndSpan(id SpanID, now float64) {
	if t == nil || id == NoSpan {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].End = now
		t.spans[id].ended = true
	}
	t.mu.Unlock()
}

// Annotate appends attributes to the span.
func (t *Trace) Annotate(id SpanID, attrs ...Attr) {
	if t == nil || id == NoSpan {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].Attrs = append(t.spans[id].Attrs, attrs...)
	}
	t.mu.Unlock()
}

// Outcome returns the terminal outcome ("" while in flight).
func (t *Trace) Outcome() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcome
}

// End returns the terminal timestamp (0 while in flight).
func (t *Trace) End() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

// Critical reports whether the trace was finished as critical.
func (t *Trace) Critical() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.critical
}

// Spans returns a copy of the spans in creation order.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]Attr(nil), t.spans[i].Attrs...)
	}
	return out
}

// Latency returns End - Arrival (the recorded end-to-end latency the
// attribution must reconcile with).
func (t *Trace) Latency() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end - t.Arrival
}

// Config parameterizes a Tracer.
type Config struct {
	// Capacity bounds the completed-trace ring (≥ 1).
	Capacity int
	// SampleRate is the keep probability for non-critical completions,
	// in [0, 1]. Critical traces (shed, timeout, failed, expired,
	// irrecoverable) are always kept.
	SampleRate float64
	// Seed derives trace IDs and the sampling decision.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("obs: tracer capacity %d must be positive", c.Capacity)
	}
	if c.SampleRate < 0 || c.SampleRate > 1 {
		return fmt.Errorf("obs: sample rate %g outside [0,1]", c.SampleRate)
	}
	return nil
}

// Tracer owns the completed-trace ring of one run. A nil *Tracer is a
// valid no-op: Start returns nil and every Trace method tolerates nil.
type Tracer struct {
	cfg Config

	mu       sync.Mutex
	ring     []*Trace // kept completions, oldest first
	started  int64
	finished int64
	sampled  int64
	dropped  int64
	evicted  int64
}

// NewTracer builds a tracer.
func NewTracer(cfg Config) (*Tracer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Tracer{cfg: cfg}, nil
}

// splitmix64 is the SplitMix64 mixer — the same deterministic stream
// derivation the shard layer uses for per-shard fault seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// TraceID returns the deterministic nonzero trace identity for a
// request ID under the tracer's seed.
func (tc *Tracer) TraceID(reqID int64) uint64 {
	id := splitmix64(uint64(tc.cfg.Seed) ^ splitmix64(uint64(reqID)))
	if id == 0 {
		id = 1 // 0 is the "unsampled" sentinel in Record.TraceID
	}
	return id
}

// Start opens a trace for a request at its virtual arrival time. The
// root span (ID 0, name "request") covers the whole lifetime. Returns
// nil — a universal no-op — when the tracer is nil or recording is
// globally disabled.
func (tc *Tracer) Start(reqID int64, arrival float64) *Trace {
	if tc == nil || !Enabled() {
		return nil
	}
	t := &Trace{TraceID: tc.TraceID(reqID), ReqID: reqID, Arrival: arrival}
	t.spans = append(t.spans, Span{ID: 0, Parent: NoSpan, Name: "request", Start: arrival, End: arrival})
	tc.mu.Lock()
	tc.started++
	tc.mu.Unlock()
	recordSpanStart()
	return t
}

// sampleKeep is the deterministic probabilistic keep decision: a pure
// function of the trace ID, so a fixed seed reproduces the same set.
func (tc *Tracer) sampleKeep(traceID uint64) bool {
	if tc.cfg.SampleRate >= 1 {
		return true
	}
	if tc.cfg.SampleRate <= 0 {
		return false
	}
	// 53 uniform bits → [0, 1).
	u := float64(splitmix64(traceID)>>11) / float64(1<<53)
	return u < tc.cfg.SampleRate
}

// WouldSample reports whether an ordinary (non-critical) trace with
// this ID passes the probabilistic sampling gate. Callers that must
// pick an exemplar before a trace finishes (the decode batcher stamps
// the batched-step histogram mid-run) use it to avoid exposing IDs the
// sampler is guaranteed to drop; ring eviction can still orphan such an
// exemplar on a long-enough run — bounded memory wins over perfect
// linkage.
func (tc *Tracer) WouldSample(traceID uint64) bool {
	if tc == nil {
		return false
	}
	return tc.sampleKeep(traceID)
}

// Finish seals the trace with its terminal outcome at end, closes the
// root span and any still-open spans, and offers it to the ring.
// critical marks traces that bypass probabilistic sampling (the
// always-on classes: shed, deadline-missed, failed, irrecoverable,
// expired). It reports whether the trace was kept — callers use this
// to decide whether to expose the trace ID (exemplars resolve only for
// kept traces).
func (tc *Tracer) Finish(t *Trace, outcome string, end float64, critical bool) bool {
	if tc == nil || t == nil {
		return false
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return false
	}
	t.done = true
	t.outcome = outcome
	t.end = end
	t.critical = critical
	for i := range t.spans {
		if !t.spans[i].ended {
			t.spans[i].End = end
			t.spans[i].ended = true
		}
	}
	t.spans[0].End = end
	t.mu.Unlock()

	keep := critical || tc.sampleKeep(t.TraceID)
	tc.mu.Lock()
	tc.finished++
	if !keep {
		tc.dropped++
		tc.mu.Unlock()
		recordTraceFinish("dropped")
		return false
	}
	if len(tc.ring) >= tc.cfg.Capacity {
		// Evict the oldest non-critical entry; if every entry is
		// critical, evict the oldest outright — the ring stays bounded
		// no matter what the run does.
		victim := 0
		for i, old := range tc.ring {
			if !old.Critical() {
				victim = i
				break
			}
		}
		tc.ring = append(tc.ring[:victim], tc.ring[victim+1:]...)
		tc.evicted++
		recordEviction()
	}
	tc.ring = append(tc.ring, t)
	tc.sampled++
	tc.mu.Unlock()
	if critical {
		recordTraceFinish("critical")
	} else {
		recordTraceFinish("sampled")
	}
	return true
}

// Traces returns the kept traces sorted by arrival (ties by request
// ID) — the deterministic order every report and export walks.
func (tc *Tracer) Traces() []*Trace {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	out := append([]*Trace(nil), tc.ring...)
	tc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		//pimdl:lint-ignore float-compare sort tie-break; equal arrivals fall through to the ID order
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ReqID < out[j].ReqID
	})
	return out
}

// Lookup returns the kept trace with the given trace ID, or nil — the
// exemplar-resolution path.
func (tc *Tracer) Lookup(traceID uint64) *Trace {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, t := range tc.ring {
		if t.TraceID == traceID {
			return t
		}
	}
	return nil
}

// Stats is the tracer's own accounting.
type Stats struct {
	Started, Finished, Sampled, Dropped, Evicted int64
}

// Stats returns the accounting counters.
func (tc *Tracer) Stats() Stats {
	if tc == nil {
		return Stats{}
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return Stats{Started: tc.started, Finished: tc.finished,
		Sampled: tc.sampled, Dropped: tc.dropped, Evicted: tc.evicted}
}

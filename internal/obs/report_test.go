package obs

import (
	"math"
	"strings"
	"testing"
)

// mkTrace builds a finished trace with a queue/batch/pim decomposition
// that covers [arrival, arrival+lat] with a small PhaseOther gap.
func mkTrace(t *testing.T, tc *Tracer, id int64, arrival, lat float64, critical bool, outcome string) *Trace {
	t.Helper()
	tr := tc.Start(id, arrival)
	if tr == nil {
		t.Fatal("Start returned nil")
	}
	q := tr.StartSpan(0, "queue", PhaseQueue, arrival)
	tr.EndSpan(q, arrival+0.4*lat)
	b := tr.StartSpan(0, "batch", PhaseBatch, arrival+0.4*lat)
	tr.EndSpan(b, arrival+0.5*lat)
	att := tr.StartSpan(0, "attempt", "", arrival+0.5*lat)
	tr.Annotate(att, Int("attempt", 0), Str("backend", "pim"), Int("dma_retries", 2), Int("failovers", 1))
	p := tr.StartSpan(att, "execute", PhasePIM, arrival+0.5*lat)
	tr.EndSpan(p, arrival+0.9*lat)
	tr.EndSpan(att, arrival+0.9*lat)
	tc.Finish(tr, outcome, arrival+lat, critical)
	return tr
}

func TestBreakdownAndReconcile(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 8, SampleRate: 1, Seed: 5})
	tr := mkTrace(t, tc, 1, 2.0, 1.0, false, "served")
	bd := Breakdown(tr)
	want := map[Phase]float64{PhaseQueue: 0.4, PhaseBatch: 0.1, PhasePIM: 0.4, PhaseOther: 0.1}
	for ph, w := range want {
		if math.Abs(bd[ph]-w) > 1e-9 {
			t.Errorf("Breakdown[%s] = %g, want %g", ph, bd[ph], w)
		}
	}
	if len(bd) != len(want) {
		t.Errorf("Breakdown has %d phases %v, want %d", len(bd), bd, len(want))
	}
	if err := Reconcile(tr); err != nil {
		t.Errorf("Reconcile: %v", err)
	}
	if Breakdown(nil) != nil {
		t.Error("Breakdown(nil) must be nil")
	}
	if err := Reconcile(nil); err != nil {
		t.Errorf("Reconcile(nil): %v", err)
	}
}

func TestReconcileDetectsOverspend(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 8, SampleRate: 1, Seed: 5})
	tr := tc.Start(1, 0)
	// Two overlapping phased spans double-count and overspend the 1s
	// lifetime: the invariant must fail loudly.
	a := tr.StartSpan(0, "a", PhaseQueue, 0)
	tr.EndSpan(a, 0.9)
	b := tr.StartSpan(0, "b", PhasePIM, 0)
	tr.EndSpan(b, 0.9)
	tc.Finish(tr, "served", 1, false)
	if err := Reconcile(tr); err == nil {
		t.Fatal("Reconcile must reject overlapping phase coverage")
	}
}

func TestBuildReportBandsAndSlowest(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 128, SampleRate: 1, Seed: 7})
	// 100 completions with latencies 0.01..1.00 — percentile bands are
	// exact slices — plus two critical non-completions.
	for i := int64(1); i <= 100; i++ {
		mkTrace(t, tc, i, float64(i), float64(i)*0.01, false, "served")
	}
	sh := tc.Start(200, 0)
	tc.Finish(sh, "shed", 0, true)
	to := tc.Start(201, 0)
	tc.Finish(to, "timeout", 5, true)

	rep, err := BuildReport(tc, nil, 3)
	if err != nil {
		t.Fatalf("BuildReport: %v", err)
	}
	if rep.Sampled != 102 || rep.Critical != 2 || rep.Completed != 100 {
		t.Fatalf("counts = %d/%d/%d, want 102/2/100", rep.Sampled, rep.Critical, rep.Completed)
	}
	wantOutcomes := map[string]int{"served": 100, "shed": 1, "timeout": 1}
	if len(rep.Outcomes) != 3 {
		t.Fatalf("Outcomes = %+v", rep.Outcomes)
	}
	for _, oc := range rep.Outcomes {
		if wantOutcomes[oc.Outcome] != oc.Count {
			t.Errorf("outcome %q count %d, want %d", oc.Outcome, oc.Count, wantOutcomes[oc.Outcome])
		}
	}
	if len(rep.Bands) != len(DefaultBands) {
		t.Fatalf("got %d bands, want %d", len(rep.Bands), len(DefaultBands))
	}
	wantReq := []int{50, 40, 9, 1}
	for i, br := range rep.Bands {
		if br.Requests != wantReq[i] {
			t.Errorf("band %s requests = %d, want %d", br.Band, br.Requests, wantReq[i])
		}
		// Phase shares of each band must sum to ~1 of its mean latency.
		var share float64
		for _, ps := range br.Phases {
			share += ps.Share
		}
		if br.Requests > 0 && math.Abs(share-1) > 1e-9 {
			t.Errorf("band %s phase shares sum to %g", br.Band, share)
		}
	}
	// Extreme tail band is exactly the slowest request.
	tail := rep.Bands[3]
	if math.Abs(tail.MeanLatency-1.0) > 1e-9 || math.Abs(tail.MaxLatency-1.0) > 1e-9 {
		t.Errorf("p99-p100 latency = (%g, %g), want (1, 1)", tail.MeanLatency, tail.MaxLatency)
	}
	// mkTrace annotates 1 attempt / 2 dma retries / 1 failover per trace.
	if tail.Retries != 0 || tail.DMARetries != 2 || tail.Failovers != 1 || tail.HostAttempts != 0 {
		t.Errorf("tail blame = %+v", tail)
	}
	if len(rep.Slowest) != 3 {
		t.Fatalf("got %d slowest rows, want 3", len(rep.Slowest))
	}
	if rep.Slowest[0].ReqID != 100 || rep.Slowest[1].ReqID != 99 || rep.Slowest[2].ReqID != 98 {
		t.Errorf("slowest order = %d, %d, %d", rep.Slowest[0].ReqID, rep.Slowest[1].ReqID, rep.Slowest[2].ReqID)
	}
	top := rep.Slowest[0]
	if top.Attempts != 1 || top.Backend != "pim" || top.Outcome != "served" {
		t.Errorf("top slow row = %+v", top)
	}
	if len(top.TraceID) != 16 || strings.Trim(top.TraceID, "0123456789abcdef") != "" {
		t.Errorf("TraceID %q is not 16 hex digits", top.TraceID)
	}
}

func TestBuildReportValidation(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 8, SampleRate: 1, Seed: 1})
	if _, err := BuildReport(tc, []Band{{-1, 50}}, 0); err == nil {
		t.Error("negative band lo must be rejected")
	}
	if _, err := BuildReport(tc, []Band{{0, 101}}, 0); err == nil {
		t.Error("band hi > 100 must be rejected")
	}
	if _, err := BuildReport(tc, []Band{{50, 50}}, 0); err == nil {
		t.Error("empty band must be rejected")
	}
	if _, err := BuildReport(tc, nil, -1); err == nil {
		t.Error("negative topK must be rejected")
	}
	// Empty tracer: a valid, empty report.
	rep, err := BuildReport(tc, nil, 5)
	if err != nil {
		t.Fatalf("empty BuildReport: %v", err)
	}
	if rep.Sampled != 0 || rep.Completed != 0 || len(rep.Slowest) != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	for _, br := range rep.Bands {
		if br.Requests != 0 {
			t.Errorf("empty band %s has %d requests", br.Band, br.Requests)
		}
	}
}

func TestBuildReportAbortsOnReconcileViolation(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 8, SampleRate: 1, Seed: 1})
	tr := tc.Start(1, 0)
	a := tr.StartSpan(0, "a", PhaseQueue, 0)
	tr.EndSpan(a, 2) // phase exceeds the 1s lifetime
	tc.Finish(tr, "served", 1, false)
	if _, err := BuildReport(tc, nil, 0); err == nil {
		t.Fatal("BuildReport must surface reconciliation violations")
	}
}

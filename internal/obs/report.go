package obs

import (
	"fmt"
	"math"
	"sort"
)

// ReconcileTolerance is the attribution invariant's bound: per-phase
// seconds of a trace must sum to its recorded end-to-end latency
// within this tolerance (the per-request analogue of PR 4's
// "phase counters sum to Timing.Total() within 1e-9").
const ReconcileTolerance = 1e-9

// Breakdown decomposes one finished trace's lifetime into per-phase
// seconds. Every span with a non-empty Phase contributes its duration
// to that phase; the uncovered remainder of [Arrival, End] goes to
// PhaseOther. By construction the values sum to the trace's latency up
// to float addition — Reconcile pins the 1e-9 bound.
func Breakdown(t *Trace) map[Phase]float64 {
	if t == nil {
		return nil
	}
	out := map[Phase]float64{}
	var covered float64
	for _, s := range t.Spans() {
		if s.Phase == "" {
			continue
		}
		d := s.Dur()
		if d < 0 {
			d = 0
		}
		out[s.Phase] += d
		covered += d
	}
	if other := t.Latency() - covered; other > 0 {
		out[PhaseOther] = other
		//pimdl:lint-ignore float-compare exact-zero residue means full coverage and must stay absent from the map
	} else if other != 0 {
		// Phased spans overspent the lifetime (a runtime bug, or clock
		// skew between stamps): surface it as negative residue rather
		// than silently absorbing it — Reconcile will fail loudly.
		out[PhaseOther] = other
	}
	return out
}

// Reconcile checks the attribution invariant for one trace: the phase
// breakdown sums to the recorded latency within ReconcileTolerance.
func Reconcile(t *Trace) error {
	if t == nil {
		return nil
	}
	var sum float64
	bd := Breakdown(t)
	if res := bd[PhaseOther]; res < -ReconcileTolerance {
		return fmt.Errorf("obs: trace %016x phased spans overspend the lifetime by %.3gs (overlapping phases double-count)",
			t.TraceID, -res)
	}
	for _, ph := range sortedPhases(bd) {
		sum += bd[ph]
	}
	lat := t.Latency()
	if d := math.Abs(sum - lat); d > ReconcileTolerance {
		return fmt.Errorf("obs: trace %016x attribution %.12g != latency %.12g (|Δ|=%.3g > %g)",
			t.TraceID, sum, lat, d, ReconcileTolerance)
	}
	return nil
}

func sortedPhases(m map[Phase]float64) []Phase {
	out := make([]Phase, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PhaseSeconds is one phase's share of a band or request.
type PhaseSeconds struct {
	Phase Phase `json:"phase"`
	// Seconds is the mean per-request seconds in this phase; Share its
	// fraction of the band's mean latency.
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// Band is one percentile slice of the served-latency distribution.
type Band struct {
	// Lo / Hi are percentile bounds, 0 ≤ Lo < Hi ≤ 100.
	Lo, Hi float64
}

func (b Band) String() string { return fmt.Sprintf("p%g-p%g", b.Lo, b.Hi) }

// DefaultBands are the attribution report's percentile slices: body,
// upper body, tail, extreme tail.
var DefaultBands = []Band{{0, 50}, {50, 90}, {90, 99}, {99, 100}}

// BandReport is the per-phase blame of one percentile band.
type BandReport struct {
	Band string `json:"band"`
	// Requests is how many sampled completions fell in the band;
	// MeanLatency / MaxLatency their latency statistics.
	Requests    int     `json:"requests"`
	MeanLatency float64 `json:"mean_latency"`
	MaxLatency  float64 `json:"max_latency"`
	// Phases is the mean per-phase decomposition, sorted by phase name.
	Phases []PhaseSeconds `json:"phases"`
	// Retries / DMARetries / Failovers / HostAttempts aggregate the
	// band's span attributes — the count-valued blame next to the
	// seconds-valued one.
	Retries      int `json:"retries"`
	DMARetries   int `json:"dma_retries"`
	Failovers    int `json:"failovers"`
	HostAttempts int `json:"host_attempts"`
}

// SlowRequest is one row of the top-K slowest table.
type SlowRequest struct {
	TraceID string  `json:"trace_id"`
	ReqID   int64   `json:"req_id"`
	Outcome string  `json:"outcome"`
	Arrival float64 `json:"arrival"`
	Latency float64 `json:"latency"`
	// Phases is the request's own decomposition, sorted by phase name.
	Phases []PhaseSeconds `json:"phases"`
	// Attempts / Backend summarize how the request was served.
	Attempts int    `json:"attempts"`
	Backend  string `json:"backend"`
}

// Report is the tail-latency attribution report of one run.
type Report struct {
	// Sampled / Critical count the kept traces; Completed those with a
	// served or degraded outcome (the latency population).
	Sampled   int `json:"sampled"`
	Critical  int `json:"critical"`
	Completed int `json:"completed"`
	// Outcomes counts kept traces per terminal outcome, sorted by key
	// at encode time via the ordered slice below.
	Outcomes []OutcomeCount `json:"outcomes"`
	// Bands is the percentile-band decomposition over completions.
	Bands []BandReport `json:"bands"`
	// Slowest is the top-K slowest completions.
	Slowest []SlowRequest `json:"slowest"`
}

// OutcomeCount is one outcome's kept-trace count.
type OutcomeCount struct {
	Outcome string `json:"outcome"`
	Count   int    `json:"count"`
}

// completedOutcome reports whether an outcome carries an end-to-end
// latency (mirrors live.Record.Latency's served/degraded rule).
func completedOutcome(o string) bool { return o == "served" || o == "degraded" }

// attemptStats extracts count-valued blame from a trace's span attrs.
func attemptStats(t *Trace) (attempts, dmaRetries, failovers, hostAttempts int, backend string) {
	for _, s := range t.Spans() {
		isAttempt := s.Name == "attempt"
		if !isAttempt && s.Phase != PhaseHost && s.Phase != PhasePIM && s.Phase != PhaseRetry {
			continue
		}
		for _, a := range s.Attrs {
			switch a.Key {
			case "attempt":
				attempts++
			case "dma_retries":
				dmaRetries += int(a.I)
			case "failovers":
				failovers += int(a.I)
			case "backend":
				backend = a.S
				if a.S == "host" {
					hostAttempts++
				}
			}
		}
	}
	return
}

// BuildReport computes the attribution report over the tracer's kept
// traces: per-band per-phase blame across the given percentile bands
// (DefaultBands when nil) and the topK slowest completions. Every
// trace must reconcile; the first violation aborts with its error, so
// a report in hand is also a proof of the invariant.
func BuildReport(tc *Tracer, bands []Band, topK int) (*Report, error) {
	if len(bands) == 0 {
		bands = DefaultBands
	}
	for i, b := range bands {
		if b.Lo < 0 || b.Hi > 100 || b.Lo >= b.Hi {
			return nil, fmt.Errorf("obs: band %d [%g, %g] outside 0 ≤ lo < hi ≤ 100", i, b.Lo, b.Hi)
		}
	}
	if topK < 0 {
		return nil, fmt.Errorf("obs: topK %d must be non-negative", topK)
	}
	traces := tc.Traces()
	rep := &Report{Sampled: len(traces)}

	outcomes := map[string]int{}
	var completed []*Trace
	for _, t := range traces {
		if err := Reconcile(t); err != nil {
			return nil, err
		}
		outcomes[t.Outcome()]++
		if t.Critical() {
			rep.Critical++
		}
		if completedOutcome(t.Outcome()) {
			completed = append(completed, t)
		}
	}
	for _, o := range sortedKeys(outcomes) {
		rep.Outcomes = append(rep.Outcomes, OutcomeCount{Outcome: o, Count: outcomes[o]})
	}
	rep.Completed = len(completed)

	// Latency-ascending order defines the percentile bands; ties break
	// by request ID so the report is deterministic.
	sort.SliceStable(completed, func(i, j int) bool {
		li, lj := completed[i].Latency(), completed[j].Latency()
		//pimdl:lint-ignore float-compare sort tie-break; equal latencies fall through to the ID order
		if li != lj {
			return li < lj
		}
		return completed[i].ReqID < completed[j].ReqID
	})
	n := len(completed)
	for _, b := range bands {
		lo := int(math.Ceil(b.Lo / 100 * float64(n)))
		hi := int(math.Ceil(b.Hi / 100 * float64(n)))
		if hi > n {
			hi = n
		}
		br := BandReport{Band: b.String()}
		if lo >= hi {
			rep.Bands = append(rep.Bands, br)
			continue
		}
		slice := completed[lo:hi]
		br.Requests = len(slice)
		phaseSum := map[Phase]float64{}
		var latSum float64
		for _, t := range slice {
			lat := t.Latency()
			latSum += lat
			if lat > br.MaxLatency {
				br.MaxLatency = lat
			}
			for ph, secs := range Breakdown(t) {
				phaseSum[ph] += secs
			}
			att, dma, fo, host, _ := attemptStats(t)
			br.Retries += max(0, att-1)
			br.DMARetries += dma
			br.Failovers += fo
			br.HostAttempts += host
		}
		br.MeanLatency = latSum / float64(len(slice))
		for _, ph := range sortedPhases(phaseSum) {
			mean := phaseSum[ph] / float64(len(slice))
			share := 0.0
			if br.MeanLatency > 0 {
				share = mean / br.MeanLatency
			}
			br.Phases = append(br.Phases, PhaseSeconds{Phase: ph, Seconds: mean, Share: share})
		}
		rep.Bands = append(rep.Bands, br)
	}

	// Top-K slowest, latency-descending.
	for i := n - 1; i >= 0 && len(rep.Slowest) < topK; i-- {
		t := completed[i]
		sr := SlowRequest{
			TraceID: fmt.Sprintf("%016x", t.TraceID),
			ReqID:   t.ReqID,
			Outcome: t.Outcome(),
			Arrival: t.Arrival,
			Latency: t.Latency(),
		}
		bd := Breakdown(t)
		for _, ph := range sortedPhases(bd) {
			share := 0.0
			if sr.Latency > 0 {
				share = bd[ph] / sr.Latency
			}
			sr.Phases = append(sr.Phases, PhaseSeconds{Phase: ph, Seconds: bd[ph], Share: share})
		}
		att, _, _, _, backend := attemptStats(t)
		sr.Attempts = att
		sr.Backend = backend
		rep.Slowest = append(rep.Slowest, sr)
	}
	return rep, nil
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package obs

import (
	"math"
	"sync"
	"testing"
)

func newTestTracer(t *testing.T, cfg Config) *Tracer {
	t.Helper()
	tc, err := NewTracer(cfg)
	if err != nil {
		t.Fatalf("NewTracer(%+v): %v", cfg, err)
	}
	return tc
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Capacity: 0, SampleRate: 0.5},
		{Capacity: -3, SampleRate: 0.5},
		{Capacity: 8, SampleRate: -0.1},
		{Capacity: 8, SampleRate: 1.5},
	}
	for _, cfg := range bad {
		if _, err := NewTracer(cfg); err == nil {
			t.Errorf("NewTracer(%+v): want error, got nil", cfg)
		}
	}
	if _, err := NewTracer(Config{Capacity: 1, SampleRate: 0}); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestTraceIDDeterministicNonzero(t *testing.T) {
	a := newTestTracer(t, Config{Capacity: 4, SampleRate: 1, Seed: 42})
	b := newTestTracer(t, Config{Capacity: 4, SampleRate: 1, Seed: 42})
	c := newTestTracer(t, Config{Capacity: 4, SampleRate: 1, Seed: 43})
	seen := map[uint64]bool{}
	for id := int64(0); id < 1000; id++ {
		ta := a.TraceID(id)
		if ta == 0 {
			t.Fatalf("TraceID(%d) = 0; zero is the unsampled sentinel", id)
		}
		if tb := b.TraceID(id); tb != ta {
			t.Fatalf("same seed, same req %d: %016x != %016x", id, ta, tb)
		}
		if seen[ta] {
			t.Fatalf("TraceID collision at req %d", id)
		}
		seen[ta] = true
		if c.TraceID(id) == ta {
			t.Errorf("different seeds produced equal trace ID for req %d", id)
		}
	}
}

func TestSamplingDeterministicAndCalibrated(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 1 << 16, SampleRate: 0.25, Seed: 7})
	kept := 0
	const n = 20000
	for id := int64(0); id < n; id++ {
		k1 := tc.sampleKeep(tc.TraceID(id))
		k2 := tc.sampleKeep(tc.TraceID(id))
		if k1 != k2 {
			t.Fatalf("sampleKeep not deterministic for req %d", id)
		}
		if k1 {
			kept++
		}
	}
	frac := float64(kept) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("keep fraction %.4f far from configured 0.25", frac)
	}
}

func TestStartNilAndDisabled(t *testing.T) {
	var nilTC *Tracer
	if tr := nilTC.Start(1, 0); tr != nil {
		t.Fatal("nil tracer must return nil trace")
	}
	// Every Trace method must tolerate nil.
	var tr *Trace
	if id := tr.StartSpan(NoSpan, "x", PhaseQueue, 0); id != NoSpan {
		t.Fatalf("nil trace StartSpan = %d, want NoSpan", id)
	}
	tr.EndSpan(0, 1)
	tr.Annotate(0, Str("k", "v"))
	if nilTC.Finish(tr, "served", 1, false) {
		t.Fatal("nil tracer Finish must report not-kept")
	}
	if got := nilTC.Traces(); got != nil {
		t.Fatalf("nil tracer Traces = %v, want nil", got)
	}
	if nilTC.Lookup(1) != nil {
		t.Fatal("nil tracer Lookup must return nil")
	}
	if s := nilTC.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v, want zero", s)
	}

	tc := newTestTracer(t, Config{Capacity: 4, SampleRate: 1})
	SetEnabled(false)
	defer SetEnabled(true)
	if tr := tc.Start(1, 0); tr != nil {
		t.Fatal("Start with recording disabled must return nil")
	}
}

func TestSpanLifecycleAndFinish(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 8, SampleRate: 1, Seed: 3})
	tr := tc.Start(5, 10.0)
	if tr == nil {
		t.Fatal("Start returned nil")
	}
	q := tr.StartSpan(0, "queue", PhaseQueue, 10.0)
	tr.EndSpan(q, 10.5)
	b := tr.StartSpan(0, "batch", PhaseBatch, 10.5)
	tr.EndSpan(b, 10.7)
	att := tr.StartSpan(0, "attempt", "", 10.7)
	tr.Annotate(att, Str("backend", "pim"), Int("attempt", 0))
	p := tr.StartSpan(att, "execute", PhasePIM, 10.7)
	// Leave att and p open: Finish must close them at the end stamp.
	if !tc.Finish(tr, "served", 11.0, false) {
		t.Fatal("Finish with SampleRate 1 must keep")
	}
	if tc.Finish(tr, "served", 12.0, false) {
		t.Fatal("double Finish must be a kept=false no-op")
	}
	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	if spans[0].Name != "request" || spans[0].End != 11.0 {
		t.Errorf("root span = %+v, want request ending at 11", spans[0])
	}
	for _, s := range spans[3:] {
		if s.End != 11.0 {
			t.Errorf("open span %q not closed at finish: end %g", s.Name, s.End)
		}
	}
	if _, ok := map[SpanID]bool{att: true}[p]; ok {
		t.Fatal("span IDs must be distinct")
	}
	if tr.Outcome() != "served" || tr.End() != 11.0 || tr.Critical() {
		t.Errorf("terminal state = (%q, %g, %v)", tr.Outcome(), tr.End(), tr.Critical())
	}
	if got := tr.Latency(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Latency = %g, want 1", got)
	}
	if tc.Lookup(tr.TraceID) != tr {
		t.Error("Lookup by trace ID failed for kept trace")
	}
}

func TestRingBoundingAndCriticalPriority(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 3, SampleRate: 1, Seed: 1})
	// Two critical + four ordinary completions through a capacity-3 ring:
	// evictions must target the ordinary entries first.
	for i := int64(0); i < 2; i++ {
		tr := tc.Start(i, float64(i))
		tc.Finish(tr, "failed", float64(i)+1, true)
	}
	for i := int64(10); i < 14; i++ {
		tr := tc.Start(i, float64(i))
		tc.Finish(tr, "served", float64(i)+1, false)
	}
	got := tc.Traces()
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want capacity 3", len(got))
	}
	crit := 0
	for _, tr := range got {
		if tr.Critical() {
			crit++
		}
	}
	if crit != 2 {
		t.Errorf("kept %d critical traces, want both survivors", crit)
	}
	st := tc.Stats()
	if st.Evicted != 3 {
		t.Errorf("Evicted = %d, want 3", st.Evicted)
	}
	if st.Started != 6 || st.Finished != 6 || st.Sampled != 6 || st.Dropped != 0 {
		t.Errorf("Stats = %+v", st)
	}

	// An all-critical full ring still evicts (oldest outright).
	tc2 := newTestTracer(t, Config{Capacity: 2, SampleRate: 0, Seed: 1})
	for i := int64(0); i < 3; i++ {
		tr := tc2.Start(i, float64(i))
		tc2.Finish(tr, "shed", float64(i), true)
	}
	got2 := tc2.Traces()
	if len(got2) != 2 || got2[0].ReqID != 1 || got2[1].ReqID != 2 {
		ids := []int64{}
		for _, tr := range got2 {
			ids = append(ids, tr.ReqID)
		}
		t.Errorf("all-critical eviction kept %v, want [1 2]", ids)
	}
}

func TestSampleRateZeroDropsOrdinaryKeepsCritical(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 8, SampleRate: 0, Seed: 9})
	ord := tc.Start(1, 0)
	if tc.Finish(ord, "served", 1, false) {
		t.Fatal("SampleRate 0 must drop ordinary completions")
	}
	crit := tc.Start(2, 0)
	if !tc.Finish(crit, "timeout", 1, true) {
		t.Fatal("critical traces must bypass sampling")
	}
	st := tc.Stats()
	if st.Dropped != 1 || st.Sampled != 1 {
		t.Errorf("Stats = %+v, want 1 dropped / 1 sampled", st)
	}
	if tc.Lookup(ord.TraceID) != nil {
		t.Error("dropped trace must not resolve via Lookup")
	}
}

func TestTracesSortedByArrival(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 16, SampleRate: 1, Seed: 2})
	arrivals := []float64{5, 1, 3, 1}
	ids := []int64{40, 30, 20, 10}
	for i := range arrivals {
		tr := tc.Start(ids[i], arrivals[i])
		tc.Finish(tr, "served", arrivals[i]+1, false)
	}
	got := tc.Traces()
	wantIDs := []int64{10, 30, 20, 40} // arrival asc, tie (1,1) by req ID
	for i, tr := range got {
		if tr.ReqID != wantIDs[i] {
			t.Fatalf("Traces()[%d].ReqID = %d, want %d", i, tr.ReqID, wantIDs[i])
		}
	}
}

func TestTracerRaceSafety(t *testing.T) {
	tc := newTestTracer(t, Config{Capacity: 64, SampleRate: 0.5, Seed: 11})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64(g*1000 + i)
				tr := tc.Start(id, float64(i))
				sp := tr.StartSpan(0, "queue", PhaseQueue, float64(i))
				tr.Annotate(sp, Int("g", int64(g)))
				tr.EndSpan(sp, float64(i)+0.5)
				tc.Finish(tr, "served", float64(i)+1, i%17 == 0)
			}
		}(g)
	}
	wg.Wait()
	st := tc.Stats()
	if st.Started != 1600 || st.Finished != 1600 {
		t.Fatalf("Stats = %+v, want 1600 started/finished", st)
	}
	if got := len(tc.Traces()); got > 64 {
		t.Fatalf("ring exceeded capacity: %d", got)
	}
}

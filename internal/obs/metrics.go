package obs

import "repro/internal/metrics"

// Tracer self-accounting: how many spans the run opened, how traces
// left the sampler (kept-critical, kept-sampled, dropped), and how
// often the bounded ring had to evict. The per-tracer Stats() numbers
// are the exact per-run view; these series are the process-wide
// aggregate a metrics snapshot carries next to pimdl_live_*.
var obsMetrics = struct {
	spans     *metrics.Counter
	traces    *metrics.CounterFamily // disposition="critical|sampled|dropped"
	evictions *metrics.Counter
}{}

func init() {
	r := metrics.Default()
	m := &obsMetrics
	m.spans = r.NewCounter("pimdl_obs_spans_total",
		"spans opened across all tracers")
	m.traces = r.NewCounterFamily("pimdl_obs_traces_total",
		"finished traces by sampler disposition (critical, sampled, dropped)", "disposition")
	m.evictions = r.NewCounter("pimdl_obs_ring_evictions_total",
		"sampled traces evicted from a full trace ring")
}

func recordSpanStart() {
	if metrics.Enabled() {
		obsMetrics.spans.Inc()
	}
}

func recordTraceFinish(disposition string) {
	if metrics.Enabled() {
		obsMetrics.traces.With(disposition).Inc()
	}
}

func recordEviction() {
	if metrics.Enabled() {
		obsMetrics.evictions.Inc()
	}
}

package tensor

import "math"

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] += v
	}
	return c
}

// Sub returns a − b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] -= v
	}
	return c
}

// Mul returns a ⊙ b elementwise.
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] *= v
	}
	return c
}

// Scale returns s·a.
func Scale(a *Tensor, s float32) *Tensor {
	c := a.Clone()
	for i := range c.Data {
		c.Data[i] *= s
	}
	return c
}

// AddInPlace computes a += b and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	checkSame("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
	return a
}

// AXPY computes a += s·b and returns a.
func AXPY(a *Tensor, s float32, b *Tensor) *Tensor {
	checkSame("AXPY", a, b)
	for i, v := range b.Data {
		a.Data[i] += s * v
	}
	return a
}

// checkSame panics unless a and b share a shape — the in-place
// elementwise ops above document this contract.
func checkSame(op string, a, b *Tensor) {
	if !sameShape(a.shape, b.shape) {
		panic("tensor: " + op + " shape mismatch")
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of a rank-2
// tensor, returning a new tensor. It panics on other ranks.
func SoftmaxRows(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: SoftmaxRows requires rank-2 tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		SoftmaxRowInto(out.Data[i*n:(i+1)*n], a.Data[i*n:(i+1)*n])
	}
	return out
}

// SoftmaxRowInto writes softmax(src) into dst (same length, may alias).
// The decode fastpath shares this with SoftmaxRows so cached and
// uncached attention agree bit for bit.
func SoftmaxRowInto(dst, src []float32) {
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for j, v := range src {
		e := float32(math.Exp(float64(v - maxv)))
		dst[j] = e
		sum += e
	}
	inv := 1 / sum
	for j := range dst {
		dst[j] *= inv
	}
}

// LayerNormRows normalizes each row to zero mean and unit variance, then
// applies the elementwise affine transform gamma, beta (length = row width).
// It panics if a is not rank-2.
func LayerNormRows(a, gamma, beta *Tensor, eps float32) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: LayerNormRows requires rank-2 tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		LayerNormRowInto(out.Data[i*n:(i+1)*n], a.Data[i*n:(i+1)*n], gamma.Data, beta.Data, eps)
	}
	return out
}

// LayerNormRowInto layer-normalizes one row into dst (same length as
// src; may alias). Shared by LayerNormRows and the decode fastpath.
func LayerNormRowInto(dst, src, gamma, beta []float32, eps float32) {
	n := len(src)
	var mean float32
	for _, v := range src {
		mean += v
	}
	mean /= float32(n)
	var varSum float32
	for _, v := range src {
		d := v - mean
		varSum += d * d
	}
	inv := 1 / float32(math.Sqrt(float64(varSum/float32(n)+eps)))
	for j, v := range src {
		dst[j] = (v-mean)*inv*gamma[j] + beta[j]
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit.
func GELU(a *Tensor) *Tensor {
	c := a.Clone()
	GELURowInto(c.Data, c.Data)
	return c
}

// GELURowInto applies GELU elementwise from src into dst (same length,
// may alias). Shared by GELU and the decode fastpath.
func GELURowInto(dst, src []float32) {
	for i, v := range src {
		dst[i] = geluScalar(v)
	}
}

func geluScalar(x float32) float32 {
	const c0 = 0.7978845608028654 // sqrt(2/pi)
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(c0*(xf+0.044715*xf*xf*xf))))
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	c := a.Clone()
	for i, v := range c.Data {
		if v < 0 {
			c.Data[i] = 0
		}
	}
	return c
}

// ArgMaxRows returns, for each row of a rank-2 tensor, the column index of
// its largest element.
func ArgMaxRows(a *Tensor) []int {
	m, n := a.Dim(0), a.Dim(1)
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// SumSquares returns Σ x².
func SumSquares(a *Tensor) float64 {
	var s float64
	for _, v := range a.Data {
		s += float64(v) * float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *Tensor) float64 {
	var s float64
	for _, v := range a.Data {
		s += float64(v)
	}
	return s / float64(len(a.Data))
}

// Frobenius returns the Frobenius norm ‖a‖₂.
func Frobenius(a *Tensor) float64 {
	return math.Sqrt(SumSquares(a))
}

// RelativeError returns ‖a−b‖₂ / ‖b‖₂, a scale-free approximation error.
func RelativeError(a, b *Tensor) float64 {
	checkSame("RelativeError", a, b)
	var num, den float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		num += d * d
		den += float64(b.Data[i]) * float64(b.Data[i])
	}
	//pimdl:lint-ignore float-compare exact-zero norm is the degenerate case, not a tolerance test
	if den == 0 {
		//pimdl:lint-ignore float-compare exact-zero numerator distinguishes 0/0 from x/0
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// ConcatRows stacks rank-2 tensors with identical column counts
// vertically. It panics given no tensors or mismatched columns.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	cols := ts[0].Dim(1)
	rows := 0
	for _, t := range ts {
		if t.Rank() != 2 || t.Dim(1) != cols {
			panic("tensor: ConcatRows column mismatch")
		}
		rows += t.Dim(0)
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	return out
}

// SliceRows returns a copy of rows [lo, hi) of a rank-2 tensor. It panics
// if a is not rank-2 or the range is out of bounds.
func SliceRows(a *Tensor, lo, hi int) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: SliceRows requires rank-2 tensor")
	}
	n := a.Dim(1)
	out := New(hi-lo, n)
	copy(out.Data, a.Data[lo*n:hi*n])
	return out
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	a := New(3, 4, 5)
	if a.Size() != 60 {
		t.Fatalf("size = %d, want 60", a.Size())
	}
	if a.Rank() != 3 || a.Dim(0) != 3 || a.Dim(1) != 4 || a.Dim(2) != 5 {
		t.Fatalf("bad shape %v", a.Shape())
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3)
	a.Set(7, 1, 2)
	if got := a.At(1, 2); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := a.Data[1*3+2]; got != 7 {
		t.Fatalf("row-major offset wrong: %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone aliases data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape must alias data")
	}
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("bad reshape %v", b.Shape())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 1, 17, 23)
	b := RandN(rng, 1, 9, 23) // (n×k)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if !AllClose(got, want, 1e-4) {
		t.Fatalf("MatMulT disagrees with MatMul∘Transpose, max diff %g", MaxAbsDiff(got, want))
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Big enough to trigger the parallel path.
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 1, 128, 96)
	b := RandN(rng, 1, 96, 80)
	c := MatMul(a, b)
	// Serial reference.
	ref := New(128, 80)
	for i := 0; i < 128; i++ {
		for j := 0; j < 80; j++ {
			var s float32
			for p := 0; p < 96; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			ref.Set(s, i, j)
		}
	}
	if !AllClose(c, ref, 1e-3) {
		t.Fatalf("parallel matmul differs from serial, max diff %g", MaxAbsDiff(c, ref))
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := RandN(rng, 1, m, n)
		return Equal(Transpose(Transpose(a)), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, 1, 4, 4)
		b := RandN(rng, 1, 4, 4)
		return AllClose(Sub(Add(a, b), b), a, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandN(rng, 5, 6, 10)
	s := SoftmaxRows(a)
	for i := 0; i < 6; i++ {
		var sum float32
		for _, v := range s.Row(i) {
			if v < 0 {
				t.Fatal("softmax produced negative value")
			}
			sum += v
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxRowsStableForLargeInputs(t *testing.T) {
	a := FromSlice([]float32{1000, 1001, 1002}, 1, 3)
	s := SoftmaxRows(a)
	for _, v := range s.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed")
		}
	}
}

func TestLayerNormRowsNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandN(rng, 3, 4, 16)
	gamma := New(16)
	gamma.Fill(1)
	beta := New(16)
	out := LayerNormRows(a, gamma, beta, 1e-5)
	for i := 0; i < 4; i++ {
		row := out.Row(i)
		var mean, varSum float32
		for _, v := range row {
			mean += v
		}
		mean /= 16
		for _, v := range row {
			varSum += (v - mean) * (v - mean)
		}
		varSum /= 16
		if math.Abs(float64(mean)) > 1e-4 {
			t.Fatalf("row %d mean %v", i, mean)
		}
		if math.Abs(float64(varSum)-1) > 1e-2 {
			t.Fatalf("row %d var %v", i, varSum)
		}
	}
}

func TestGELUKnownValues(t *testing.T) {
	a := FromSlice([]float32{0, 1, -1, 3}, 4)
	g := GELU(a)
	if g.Data[0] != 0 {
		t.Fatalf("gelu(0) = %v", g.Data[0])
	}
	if math.Abs(float64(g.Data[1])-0.8412) > 1e-3 {
		t.Fatalf("gelu(1) = %v", g.Data[1])
	}
	// gelu(x) + gelu(−x) = x·(2Φ(x)−1) ≈ 0.6827 at x = 1.
	if math.Abs(float64(g.Data[1]+g.Data[2])-0.6827) > 2e-3 {
		t.Fatalf("gelu(1)+gelu(-1) = %v, want ≈0.6827", g.Data[1]+g.Data[2])
	}
	if g.Data[3] < 2.9 {
		t.Fatalf("gelu(3) = %v, should approach 3", g.Data[3])
	}
}

func TestReLU(t *testing.T) {
	a := FromSlice([]float32{-2, 0, 3}, 3)
	r := ReLU(a)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 3 {
		t.Fatalf("relu = %v", r.Data)
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	idx := ArgMaxRows(a)
	if idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("argmax = %v", idx)
	}
}

func TestAddBias(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AddBias(a, b)
	want := []float32{11, 22, 13, 24}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("a[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
}

func TestRelativeError(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{1, 1}, 2)
	if RelativeError(a, b) != 0 {
		t.Fatal("identical tensors should have zero error")
	}
	c := FromSlice([]float32{2, 2}, 2)
	if got := RelativeError(c, a); math.Abs(got-1) > 1e-6 {
		t.Fatalf("error = %v, want 1", got)
	}
}

func TestConcatAndSliceRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandN(rng, 1, 3, 4)
	b := RandN(rng, 1, 2, 4)
	c := ConcatRows(a, b)
	if c.Dim(0) != 5 {
		t.Fatalf("concat rows = %d", c.Dim(0))
	}
	if !Equal(SliceRows(c, 0, 3), a) || !Equal(SliceRows(c, 3, 5), b) {
		t.Fatal("slice does not invert concat")
	}
}

func TestQuantizeINT8RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandN(rng, 1, 16, 16)
	q := QuantizeINT8(a)
	d := q.Dequantize()
	// Max quantization error is scale/2 per element.
	if MaxAbsDiff(a, d) > float64(q.Scale)*0.51 {
		t.Fatalf("quant error %g exceeds half-step %g", MaxAbsDiff(a, d), q.Scale/2)
	}
}

func TestQuantizeINT8ZeroTensor(t *testing.T) {
	a := New(4, 4)
	q := QuantizeINT8(a)
	d := q.Dequantize()
	if !Equal(a, d) {
		t.Fatal("zero tensor should quantize exactly")
	}
}

func TestQuantizeINT8ClampsExtremes(t *testing.T) {
	a := FromSlice([]float32{127, -127, 1}, 3)
	q := QuantizeINT8(a)
	if q.Data[0] != 127 || q.Data[1] != -127 {
		t.Fatalf("extremes: %v", q.Data)
	}
}

func TestQuantErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, 1, 8, 8)
		e := QuantError(a)
		// INT8 symmetric quantization of Gaussian data keeps relative error small.
		return e >= 0 && e < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := XavierInit(rng, 64, 64, 64, 64)
	limit := float32(math.Sqrt(6.0 / 128))
	for _, v := range w.Data {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside Xavier bound %v", v, limit)
		}
	}
}

func TestAXPY(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 10}, 2)
	AXPY(a, 0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 7 {
		t.Fatalf("axpy = %v", a.Data)
	}
}

func TestMeanFrobenius(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if Mean(a) != 3.5 {
		t.Fatalf("mean = %v", Mean(a))
	}
	if math.Abs(Frobenius(a)-5) > 1e-9 {
		t.Fatalf("frobenius = %v", Frobenius(a))
	}
}

func TestMatMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := RandN(rng, 1, n, n)
		eye := New(n, n)
		for i := 0; i < n; i++ {
			eye.Set(1, i, i)
		}
		return AllClose(MatMul(a, eye), a, 1e-5) && AllClose(MatMul(eye, a), a, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, 1, 4, 5)
		b := RandN(rng, 1, 5, 3)
		c := RandN(rng, 1, 5, 3)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(left, right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeMatMulRelation(t *testing.T) {
	// (A·B)ᵀ = Bᵀ·Aᵀ
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, 1, 3, 4)
		b := RandN(rng, 1, 4, 5)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return AllClose(left, right, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, 1, 3, 5)
		shifted := a.Clone()
		for i := range shifted.Data {
			shifted.Data[i] += 7.5
		}
		return AllClose(SoftmaxRows(a), SoftmaxRows(shifted), 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Package tensor provides a small dense float32 tensor library used by all
// higher layers of PIM-DL: the LUT-NN kernels, the autograd engine, the
// transformer stack, and the simulators.
//
// Tensors are row-major and contiguous. The package favours predictable
// memory behaviour over generality: there are no views with non-unit
// strides, and every op either writes into a caller-supplied destination or
// allocates a fresh tensor.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 array with a shape.
type Tensor struct {
	Data  []float32
	shape []int
}

// New creates a zero-filled tensor with the given shape. It panics on
// non-positive dimensions.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data (not copied) in a tensor with the given shape. It
// panics if the shape's element count does not equal len(data); loaders
// validating external input must check sizes first (see internal/serial).
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
//
//pimdl:hotpath
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
//
//pimdl:hotpath
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
//
//pimdl:hotpath
func (t *Tensor) Size() int { return len(t.Data) }

// Rows returns the size of the first dimension of a matrix.
func (t *Tensor) Rows() int { return t.shape[0] }

// Cols returns the size of the second dimension of a matrix.
func (t *Tensor) Cols() int { return t.shape[1] }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set writes v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

// offset panics when idx has the wrong arity or indexes out of range,
// giving At/Set Go's slice-indexing contract.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.shape[i]))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The total
// element count must match or Reshape panics.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// Row returns a slice aliasing row r of a rank-2 tensor; it panics on
// other ranks.
func (t *Tensor) Row(r int) []float32 {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank-2 tensor")
	}
	c := t.shape[1]
	return t.Data[r*c : (r+1)*c]
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// RandN creates a tensor with values drawn from N(0, std²) using rng.
func RandN(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// RandU creates a tensor with values drawn uniformly from [lo, hi).
func RandU(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// XavierInit creates a tensor initialized with Xavier/Glorot uniform scaling
// for a layer with the given fan-in and fan-out.
func XavierInit(rng *rand.Rand, fanIn, fanOut int, shape ...int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandU(rng, -limit, limit, shape...)
}

// Equal reports whether a and b have identical shapes and bit-identical
// elements. This is the bit-exactness oracle the LUT-vs-GEMM equivalence
// tests rely on; use AllClose for tolerance comparisons.
func Equal(a, b *Tensor) bool {
	if !sameShape(a.shape, b.shape) {
		return false
	}
	for i := range a.Data {
		//pimdl:lint-ignore float-compare bit-exact identity is this oracle's documented contract
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether a and b match within absolute tolerance tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !sameShape(a.shape, b.shape) {
		return false
	}
	for i := range a.Data {
		if math.Abs(float64(a.Data[i]-b.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, which must have the same shape (it panics otherwise).
func MaxAbsDiff(a, b *Tensor) float64 {
	if !sameShape(a.shape, b.shape) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:n])
}

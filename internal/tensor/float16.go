package tensor

import "math"

// Float16 is an IEEE 754 binary16 value stored in a uint16. HBM-PIM
// computes in FP16 and AiM in BF16; the simulator uses these encodings so
// table quantization error on those platforms is faithful.
type Float16 uint16

// ToFloat16 rounds f to the nearest representable binary16 value
// (round-to-nearest-even), with overflow saturating to ±Inf.
func ToFloat16(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or already Inf/NaN
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return Float16(sign | 0x7e00) // NaN
		}
		return Float16(sign | 0x7c00) // Inf
	case exp <= 0:
		if exp < -10 {
			return Float16(sign) // underflow to zero
		}
		// Subnormal: shift in the implicit bit.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// Round to nearest even.
		if rounded&(half*2-1) == half && mant&(1<<shift) == 0 {
			rounded = mant
		}
		return Float16(sign | uint16(rounded>>shift))
	default:
		// Normal: round mantissa from 23 to 10 bits.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return Float16(sign | 0x7c00)
			}
		}
		return Float16(sign | uint16(exp)<<10 | uint16(rounded>>13))
	}
}

// Float32 decodes the binary16 value.
func (h Float16) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// BFloat16 is a bfloat16 value (truncated float32 with rounding), the
// datatype of SK-Hynix AiM's MAC units.
type BFloat16 uint16

// ToBFloat16 rounds f to bfloat16 (round-to-nearest-even).
func ToBFloat16(f float32) BFloat16 {
	bits := math.Float32bits(f)
	if bits&0x7f800000 == 0x7f800000 && bits&0x7fffff != 0 {
		return BFloat16(bits>>16 | 0x40) // quiet NaN
	}
	rounded := bits + 0x7fff + (bits>>16)&1
	return BFloat16(rounded >> 16)
}

// Float32 decodes the bfloat16 value.
func (b BFloat16) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// H16Tensor is a tensor quantized to FP16 or BF16.
type H16Tensor struct {
	Data  []uint16
	BF    bool // true = bfloat16, false = IEEE binary16
	shape []int
}

// QuantizeF16 converts t to IEEE binary16.
func QuantizeF16(t *Tensor) *H16Tensor {
	h := &H16Tensor{Data: make([]uint16, len(t.Data)), shape: append([]int(nil), t.shape...)}
	for i, v := range t.Data {
		h.Data[i] = uint16(ToFloat16(v))
	}
	return h
}

// QuantizeBF16 converts t to bfloat16.
func QuantizeBF16(t *Tensor) *H16Tensor {
	h := &H16Tensor{Data: make([]uint16, len(t.Data)), BF: true, shape: append([]int(nil), t.shape...)}
	for i, v := range t.Data {
		h.Data[i] = uint16(ToBFloat16(v))
	}
	return h
}

// Shape returns the dimensions.
func (h *H16Tensor) Shape() []int { return h.shape }

// Dequantize reconstructs a float32 tensor.
func (h *H16Tensor) Dequantize() *Tensor {
	t := New(h.shape...)
	if h.BF {
		for i, v := range h.Data {
			t.Data[i] = BFloat16(v).Float32()
		}
	} else {
		for i, v := range h.Data {
			t.Data[i] = Float16(v).Float32()
		}
	}
	return t
}

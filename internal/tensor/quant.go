package tensor

import "math"

// QTensor is a symmetric per-tensor INT8 quantization of a float tensor,
// as used for the LUTs on UPMEM (the paper quantizes all LUTs to INT8 with
// a reported ≤0.1% accuracy drop).
type QTensor struct {
	Data  []int8
	Scale float32 // dequantized value = Scale * int8
	shape []int
}

// QuantizeINT8 converts t into a symmetric INT8 tensor. The scale maps the
// maximum absolute value onto ±127.
func QuantizeINT8(t *Tensor) *QTensor {
	var maxAbs float32
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	//pimdl:lint-ignore float-compare exact zero means an all-zero tensor; any positive scale is equivalent
	if scale == 0 {
		scale = 1
	}
	q := &QTensor{
		Data:  make([]int8, len(t.Data)),
		Scale: scale,
		shape: append([]int(nil), t.shape...),
	}
	inv := 1 / scale
	for i, v := range t.Data {
		r := math.Round(float64(v * inv))
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Shape returns the quantized tensor's dimensions.
func (q *QTensor) Shape() []int { return q.shape }

// Size returns the total element count.
func (q *QTensor) Size() int { return len(q.Data) }

// Dequantize reconstructs a float tensor.
func (q *QTensor) Dequantize() *Tensor {
	t := New(q.shape...)
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// QuantError returns the relative Frobenius error introduced by INT8
// quantization of t.
func QuantError(t *Tensor) float64 {
	return RelativeError(QuantizeINT8(t).Dequantize(), t)
}

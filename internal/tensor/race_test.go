package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// TestMatMulConcurrentCallers hammers the parallelRows fan-out from many
// concurrent callers sharing read-only operands. Each call must stay
// bit-identical to a reference: workers write disjoint row ranges of a
// private output, so neither the schedule nor the caller count may change
// a single bit. Run under -race this is the regression test for the
// matmul fan-out's index partitioning.
func TestMatMulConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// 64³ keeps 2·m·k·n above matmulParallelThreshold so the parallel
	// path, not the serial fallback, is exercised.
	a := RandN(rng, 1, 64, 64)
	b := RandN(rng, 1, 64, 64)
	ref := MatMul(a, b)
	refT := MatMulT(a, b)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				if got := MatMul(a, b); !Equal(got, ref) {
					t.Error("concurrent MatMul diverged from reference")
					return
				}
				if got := MatMulT(a, b); !Equal(got, refT) {
					t.Error("concurrent MatMulT diverged from reference")
					return
				}
			}
		}()
	}
	wg.Wait()
}

package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// MatMul computes C = A·B for A (m×k) and B (k×n). It panics if the
// operands are not rank-2 or the inner dimensions disagree — shape bugs
// at this level are programmer errors, caught by the shape-guarded entry
// points above.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic("tensor: MatMul inner dimension mismatch")
	}
	n := b.Dim(1)
	c := New(m, n)
	matmulInto(c.Data, a.Data, b.Data, m, k, n)
	return c
}

// MatMulT computes C = A·Bᵀ for A (m×k) and B (n×k). This is the layout
// used throughout PIM-DL: weights are stored (F×H) and activations (N×H),
// matching the paper's LUT construction convention. It panics on rank or
// inner-dimension mismatch.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(1) != k {
		panic("tensor: MatMulT inner dimension mismatch")
	}
	n := b.Dim(0)
	c := New(m, n)
	MatMulTInto(c, a, b)
	return c
}

// MatMulTInto computes C = A·Bᵀ into a caller-owned tensor (no
// allocation), sharing the row kernel with MatMulT. It panics on rank or
// shape mismatch.
func MatMulTInto(c, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || c.Rank() != 2 {
		panic("tensor: MatMulTInto requires rank-2 tensors")
	}
	m, k := a.Dim(0), a.Dim(1)
	if b.Dim(1) != k {
		panic("tensor: MatMulTInto inner dimension mismatch")
	}
	n := b.Dim(0)
	if c.Dim(0) != m || c.Dim(1) != n {
		panic("tensor: MatMulTInto output shape mismatch")
	}
	parallelRows(m, 2*m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			MatVecTInto(c.Data[i*n:(i+1)*n], a.Data[i*k:(i+1)*k], b.Data, n, k)
		}
	})
}

// MatVecTInto computes one row of A·Bᵀ: dst[j] = Σ_p a[p]·B[j][p] for B
// an n×k row-major matrix given as a flat slice. This is the exact inner
// kernel of MatMulT, exported so the decode fastpath's single-row
// projections are bit-identical to the batched path. It panics on a
// shape mismatch.
func MatVecTInto(dst, a, b []float32, n, k int) {
	if len(dst) != n || len(a) != k || len(b) != n*k {
		panic(fmt.Sprintf("tensor: MatVecTInto shapes dst=%d a=%d b=%d want n=%d k=%d n*k=%d",
			len(dst), len(a), len(b), n, k, n*k))
	}
	for j := 0; j < n; j++ {
		br := b[j*k : (j+1)*k]
		var s float32
		for p := range a {
			s += a[p] * br[p]
		}
		dst[j] = s
	}
}

// matmulInto computes c += a·b with c pre-zeroed, using an ikj loop order
// that streams b rows and accumulates into c rows (cache friendly for
// row-major data).
func matmulInto(c, a, b []float32, m, k, n int) {
	parallelRows(m, 2*m*k*n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cr := c[i*n : (i+1)*n]
			ar := a[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := ar[p]
				//pimdl:lint-ignore float-compare exact-zero sparsity fast path; any nonzero value must multiply
				if av == 0 {
					continue
				}
				br := b[p*n : (p+1)*n]
				for j := range cr {
					cr[j] += av * br[j]
				}
			}
		}
	})
}

// parallelRows splits [0, m) into deterministic chunks on the shared
// worker pool (internal/parallel). work is the approximate FLOP count
// used to decide whether parallelism is worthwhile.
func parallelRows(m int, work int, f func(lo, hi int)) {
	parallel.For(m, work, f)
}

// Transpose returns Aᵀ for a rank-2 tensor. It panics on other ranks.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	m, n := a.Dim(0), a.Dim(1)
	t := New(n, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			t.Data[j*m+i] = v
		}
	}
	return t
}

// AddBias adds a length-n bias vector to every row of an m×n matrix, in
// place, and returns the matrix. It panics on rank or length mismatch.
func AddBias(a *Tensor, bias *Tensor) *Tensor {
	if a.Rank() != 2 || bias.Rank() != 1 {
		panic("tensor: AddBias wants matrix and vector")
	}
	n := a.Dim(1)
	if bias.Dim(0) != n {
		panic("tensor: AddBias length mismatch")
	}
	m := a.Dim(0)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += bias.Data[j]
		}
	}
	return a
}

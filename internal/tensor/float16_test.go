package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h Float16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{0.5, 0x3800},
		{2, 0x4000},
		{65504, 0x7bff}, // max finite
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{5.9604645e-08, 0x0001}, // smallest subnormal
	}
	for _, c := range cases {
		if got := ToFloat16(c.f); got != c.h {
			t.Errorf("ToFloat16(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := c.h.Float32(); got != c.f {
			t.Errorf("(%#04x).Float32() = %g, want %g", c.h, got, c.f)
		}
	}
}

func TestFloat16NaN(t *testing.T) {
	h := ToFloat16(float32(math.NaN()))
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatal("NaN not preserved")
	}
}

func TestFloat16RoundTripExactForRepresentable(t *testing.T) {
	f := func(x uint16) bool {
		h := Float16(x)
		v := h.Float32()
		if math.IsNaN(float64(v)) {
			return true // NaN payloads need not survive
		}
		return ToFloat16(v) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat16RelativeErrorBound(t *testing.T) {
	// binary16 has 11 significand bits: relative error ≤ 2⁻¹¹ for normals.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := float32(rng.NormFloat64())
		got := ToFloat16(v).Float32()
		if v == 0 {
			continue
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/2048 {
			t.Fatalf("value %g roundtrips to %g (rel err %g)", v, got, rel)
		}
	}
}

func TestFloat16Overflow(t *testing.T) {
	if ToFloat16(1e30) != 0x7c00 {
		t.Fatal("overflow should saturate to +Inf")
	}
	if ToFloat16(-1e30) != 0xfc00 {
		t.Fatal("overflow should saturate to -Inf")
	}
}

func TestBFloat16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		b BFloat16
	}{
		{0, 0x0000},
		{1, 0x3f80},
		{-2, 0xc000},
		{float32(math.Inf(1)), 0x7f80},
	}
	for _, c := range cases {
		if got := ToBFloat16(c.f); got != c.b {
			t.Errorf("ToBFloat16(%g) = %#04x, want %#04x", c.f, got, c.b)
		}
		if got := c.b.Float32(); got != c.f {
			t.Errorf("(%#04x).Float32() = %g, want %g", c.b, got, c.f)
		}
	}
}

func TestBFloat16RelativeErrorBound(t *testing.T) {
	// bfloat16 has 8 significand bits: relative error ≤ 2⁻⁸.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		v := float32(rng.NormFloat64() * 100)
		got := ToBFloat16(v).Float32()
		if v == 0 {
			continue
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/256 {
			t.Fatalf("value %g roundtrips to %g (rel err %g)", v, got, rel)
		}
	}
}

func TestBFloat16NaN(t *testing.T) {
	b := ToBFloat16(float32(math.NaN()))
	if !math.IsNaN(float64(b.Float32())) {
		t.Fatal("NaN not preserved")
	}
}

func TestH16TensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandN(rng, 1, 8, 8)
	for _, bf := range []bool{false, true} {
		var h *H16Tensor
		if bf {
			h = QuantizeBF16(a)
		} else {
			h = QuantizeF16(a)
		}
		d := h.Dequantize()
		tol := 1.0 / 256
		if !bf {
			tol = 1.0 / 1024
		}
		for i := range a.Data {
			diff := math.Abs(float64(d.Data[i] - a.Data[i]))
			if diff > tol*(1+math.Abs(float64(a.Data[i]))) {
				t.Fatalf("bf=%v elem %d: %g vs %g", bf, i, d.Data[i], a.Data[i])
			}
		}
		if h.Shape()[0] != 8 || h.Shape()[1] != 8 {
			t.Fatal("shape lost")
		}
	}
}

package dpu

import (
	"testing"

	"repro/internal/pim"
)

func TestComputeOnlyProgramIPC(t *testing.T) {
	// With ≥PipelineDepth tasklets running pure compute, the pipeline
	// issues every cycle: IPC ≈ 1.
	cfg := UPMEMv1()
	prog := Program{{Kind: Compute, N: 1000}}
	st, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() < 0.95 {
		t.Fatalf("saturated IPC %.3f, want ≈1", st.IPC())
	}
	if st.Instructions != int64(cfg.Tasklets)*1000 {
		t.Fatalf("instructions %d", st.Instructions)
	}
}

func TestPipelineUndersubscribed(t *testing.T) {
	// One tasklet can issue at most every PipelineDepth cycles.
	cfg := UPMEMv1()
	cfg.Tasklets = 1
	st, err := Run(cfg, Program{{Kind: Compute, N: 100}})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / float64(cfg.PipelineDepth)
	if st.IPC() > want*1.2 || st.IPC() < want*0.8 {
		t.Fatalf("single-tasklet IPC %.3f, want ≈%.3f", st.IPC(), want)
	}
}

func TestSaturationCurve(t *testing.T) {
	// IPC grows with tasklets and saturates at PipelineDepth — the DPU
	// behaviour reported by the UPMEM benchmarking literature.
	cfg := UPMEMv1()
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 11, 16} {
		cfg.Tasklets = n
		st, err := Run(cfg, Program{{Kind: Compute, N: 500}})
		if err != nil {
			t.Fatal(err)
		}
		if st.IPC()+1e-9 < prev {
			t.Fatalf("IPC fell from %.3f to %.3f at %d tasklets", prev, st.IPC(), n)
		}
		prev = st.IPC()
		if n >= 11 && st.IPC() < 0.95 {
			t.Fatalf("pipeline should saturate at ≥11 tasklets, IPC %.3f at %d", st.IPC(), n)
		}
		if n < 11 {
			bound := float64(n)/float64(cfg.PipelineDepth) + 0.02
			if st.IPC() > bound {
				t.Fatalf("IPC %.3f above theoretical bound %.3f at %d tasklets", st.IPC(), bound, n)
			}
		}
	}
}

func TestDMABoundKernel(t *testing.T) {
	// Huge transfers with trivial compute: the DMA engine is the
	// bottleneck and its utilization approaches 1.
	cfg := UPMEMv1()
	prog := LUTReduceProgram(16, 2048, 8, 0.5)
	st, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.DMAUtil < 0.9 {
		t.Fatalf("DMA-bound kernel should saturate the DMA engine: util %.3f", st.DMAUtil)
	}
	if st.IssueUtil > 0.3 {
		t.Fatalf("compute should be mostly idle, issue util %.3f", st.IssueUtil)
	}
}

func TestComputeBoundKernel(t *testing.T) {
	// Tiny transfers with heavy compute: the pipeline dominates.
	cfg := UPMEMv1()
	prog := LUTReduceProgram(16, 8, 512, 4)
	st, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.IssueUtil < 0.9 {
		t.Fatalf("compute-bound kernel should saturate issue: %.3f", st.IssueUtil)
	}
}

func TestDMAOverlapsCompute(t *testing.T) {
	// With many tasklets, total time is far below the serial sum of DMA
	// and compute phases (latency hiding).
	cfg := UPMEMv1()
	prog := LUTReduceProgram(32, 256, 256, 0.5)
	st, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	dmaCycles := st.DMATransfers*int64(cfg.DMASetupCycles) +
		int64(float64(st.DMABytes)/cfg.DMABytesPerCycle)
	computeCycles := st.Instructions // 1 IPC best case
	serial := dmaCycles + computeCycles
	if float64(st.Cycles) > 0.8*float64(serial) {
		t.Fatalf("no overlap: %d cycles vs serial %d", st.Cycles, serial)
	}
}

func TestMoreTaskletsNeverSlower(t *testing.T) {
	cfg := UPMEMv1()
	perTasklet := LUTReduceProgram(16, 256, 256, 0.5)
	var prev int64 = 1 << 62
	for _, n := range []int{2, 4, 8, 16} {
		cfg.Tasklets = n
		// Fixed total work: scale per-tasklet indices down as tasklets
		// grow (16·16 = 256 total lookups).
		prog := LUTReduceProgram(256/n, 256, 256, 0.5)
		_ = perTasklet
		st, err := Run(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		if st.Cycles > prev+prev/10 {
			t.Fatalf("%d tasklets slower: %d vs %d cycles", n, st.Cycles, prev)
		}
		prev = st.Cycles
	}
}

func TestDerivedReduceRateMatchesPlatform(t *testing.T) {
	// The emergent cycles/element of the tasklet-level simulation must be
	// consistent with the aggregate constant the pim package calibrates
	// (UPMEM ReduceCycles) — within 2x, since the aggregate constant also
	// absorbs effects this model omits (WRAM banking, loop bookkeeping).
	got, err := DeriveReduceCyclesPerElem(UPMEMv1())
	if err != nil {
		t.Fatal(err)
	}
	calibrated := pim.UPMEM().ReduceCycles
	t.Logf("derived %.3f cycles/elem vs calibrated %.3f", got, calibrated)
	if got < calibrated/2 || got > calibrated*2 {
		t.Fatalf("derived %.3f cycles/elem inconsistent with calibrated %.3f", got, calibrated)
	}
}

func TestEmptyProgram(t *testing.T) {
	st, err := Run(UPMEMv1(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 0 || st.Instructions != 0 {
		t.Fatal("empty program should cost nothing")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Tasklets: 0, PipelineDepth: 11, DMABytesPerCycle: 1},
		{Tasklets: 4, PipelineDepth: 0, DMABytesPerCycle: 1},
		{Tasklets: 4, PipelineDepth: 11, DMABytesPerCycle: 0},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, Program{{Kind: Compute, N: 1}}); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := UPMEMv1()
	prog := LUTReduceProgram(4, 128, 64, 0.5)
	st, err := Run(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.DMATransfers != int64(4*cfg.Tasklets) {
		t.Fatalf("transfers %d", st.DMATransfers)
	}
	if st.DMABytes != int64(4*128*cfg.Tasklets) {
		t.Fatalf("bytes %d", st.DMABytes)
	}
	if st.IssueUtil < 0 || st.IssueUtil > 1 || st.DMAUtil < 0 || st.DMAUtil > 1 {
		t.Fatal("utilizations out of range")
	}
}

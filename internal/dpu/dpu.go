// Package dpu is a cycle-approximate simulator of a single UPMEM DPU
// executing the LUT reduce micro kernel. Where the pim package models a
// PE with calibrated aggregate rates, this package derives those rates
// from first principles: an in-order pipeline issuing one instruction per
// cycle round-robin across hardware tasklets, and a single DMA engine
// moving data between the MRAM bank and WRAM.
//
// Two well-known DPU behaviours emerge rather than being assumed:
//
//   - the pipeline only saturates when at least PipelineDepth (11)
//     tasklets are runnable — fewer tasklets leave issue slots empty;
//   - DMA transfers overlap with compute from *other* tasklets, so the
//     kernel is bound by max(instruction stream, DMA stream) once enough
//     tasklets are in flight.
//
// The microbenchmark in this package reproduces the pim.UPMEM()
// ReduceCycles calibration (see TestDerivedReduceRateMatchesPlatform).
package dpu

import "fmt"

// Config describes the DPU microarchitecture.
type Config struct {
	// Tasklets is the number of hardware threads the kernel launches
	// (UPMEM hardware supports 24; ≥11 saturate the pipeline).
	Tasklets int
	// PipelineDepth is the issue-to-issue latency of one tasklet: after
	// issuing, a tasklet cannot issue again for this many cycles.
	PipelineDepth int
	// DMASetupCycles is the fixed cost of one MRAM↔WRAM transfer.
	DMASetupCycles int
	// DMABytesPerCycle is the DMA engine's streaming rate.
	DMABytesPerCycle float64
}

// UPMEMv1 returns the DPU generation the paper evaluates: 24 available
// tasklets (kernels typically launch 16), an 11-stage pipeline, and a DMA
// engine that sustains ≈1.8 B/cycle (628 MB/s at 350 MHz).
func UPMEMv1() Config {
	return Config{
		Tasklets:         16,
		PipelineDepth:    11,
		DMASetupCycles:   77,
		DMABytesPerCycle: 1.8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tasklets <= 0 || c.PipelineDepth <= 0 {
		return fmt.Errorf("dpu: non-positive tasklets/pipeline")
	}
	if c.DMABytesPerCycle <= 0 {
		return fmt.Errorf("dpu: non-positive DMA rate")
	}
	return nil
}

// OpKind distinguishes tasklet program steps.
type OpKind int

const (
	// Compute issues N pipeline instructions.
	Compute OpKind = iota
	// DMA requests a bank↔buffer transfer of N bytes and blocks the
	// tasklet until it completes.
	DMA
)

// Op is one step of a tasklet program.
type Op struct {
	Kind OpKind
	N    int // instructions (Compute) or bytes (DMA)
}

// Program is the per-tasklet instruction stream. All tasklets run the
// same program (the LUT kernel splits rows across tasklets evenly).
type Program []Op

// Stats is the simulation outcome.
type Stats struct {
	Cycles       int64
	Instructions int64
	DMABytes     int64
	DMATransfers int64
	// IssueUtil is the fraction of cycles the pipeline issued.
	IssueUtil float64
	// DMAUtil is the fraction of cycles the DMA engine was busy.
	DMAUtil float64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

type taskletState struct {
	pc        int   // current op index
	remaining int   // instructions left in current Compute op
	readyAt   int64 // next cycle this tasklet may issue
	blocked   bool  // waiting on DMA completion
	done      bool
}

// Run simulates all tasklets executing prog and returns the statistics.
func Run(cfg Config, prog Program) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	ts := make([]taskletState, cfg.Tasklets)
	for i := range ts {
		ts[i] = taskletState{}
		loadOp(&ts[i], prog)
	}

	var st Stats
	// DMA engine: single queue, processes requests in FIFO order.
	type dmaReq struct {
		tasklet int
		bytes   int
	}
	var dmaQueue []dmaReq
	var dmaBusyUntil int64 = -1
	dmaActive := -1 // tasklet whose transfer is in flight

	cycle := int64(0)
	rr := 0 // round-robin pointer
	for {
		allDone := true
		for i := range ts {
			if !ts[i].done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}

		// DMA completion.
		if dmaActive >= 0 && cycle >= dmaBusyUntil {
			ts[dmaActive].blocked = false
			advance(&ts[dmaActive], prog)
			dmaActive = -1
		}
		// DMA start.
		if dmaActive < 0 && len(dmaQueue) > 0 {
			req := dmaQueue[0]
			dmaQueue = dmaQueue[1:]
			dmaActive = req.tasklet
			dur := int64(cfg.DMASetupCycles) + int64(float64(req.bytes)/cfg.DMABytesPerCycle)
			if dur < 1 {
				dur = 1
			}
			dmaBusyUntil = cycle + dur
			st.DMABytes += int64(req.bytes)
			st.DMATransfers++
		}
		if dmaActive >= 0 {
			st.DMAUtil++ // counted in cycles; normalized later
		}

		// Issue at most one instruction from a ready tasklet (round-robin).
		issued := false
		for k := 0; k < cfg.Tasklets && !issued; k++ {
			i := (rr + k) % cfg.Tasklets
			t := &ts[i]
			if t.done || t.blocked || cycle < t.readyAt {
				continue
			}
			switch prog[t.pc].Kind {
			case Compute:
				t.remaining--
				st.Instructions++
				t.readyAt = cycle + int64(cfg.PipelineDepth)
				if t.remaining == 0 {
					advance(t, prog)
				}
				issued = true
				rr = (i + 1) % cfg.Tasklets
			case DMA:
				// Issuing the DMA costs one instruction, then blocks.
				st.Instructions++
				t.blocked = true
				t.readyAt = cycle + int64(cfg.PipelineDepth)
				dmaQueue = append(dmaQueue, dmaReq{tasklet: i, bytes: prog[t.pc].N})
				issued = true
				rr = (i + 1) % cfg.Tasklets
			}
		}
		if issued {
			st.IssueUtil++
		}
		cycle++

		// Safety valve against pathological programs.
		if cycle > 1<<40 {
			return Stats{}, fmt.Errorf("dpu: simulation exceeded cycle budget")
		}
	}
	st.Cycles = cycle
	if cycle > 0 {
		st.IssueUtil /= float64(cycle)
		st.DMAUtil /= float64(cycle)
	}
	return st, nil
}

// loadOp positions a fresh tasklet at the start of the program.
func loadOp(t *taskletState, prog Program) {
	t.pc = 0
	if len(prog) == 0 {
		t.done = true
		return
	}
	if prog[0].Kind == Compute {
		t.remaining = prog[0].N
	}
}

// advance moves a tasklet to its next op.
func advance(t *taskletState, prog Program) {
	t.pc++
	if t.pc >= len(prog) {
		t.done = true
		return
	}
	if prog[t.pc].Kind == Compute {
		t.remaining = prog[t.pc].N
	}
}

// LUTReduceProgram builds the per-tasklet program of the LUT reduce micro
// kernel: the tasklet handles `indices` (row, codebook) lookups; each
// fetches loadBytes of table data by DMA and accumulates elems packed-INT8
// elements at instrPerElem pipeline instructions per element.
func LUTReduceProgram(indices, loadBytes, elems int, instrPerElem float64) Program {
	var prog Program
	ipe := int(float64(elems)*instrPerElem + 0.5)
	if ipe < 1 {
		ipe = 1
	}
	for i := 0; i < indices; i++ {
		prog = append(prog, Op{Kind: DMA, N: loadBytes})
		prog = append(prog, Op{Kind: Compute, N: ipe})
	}
	return prog
}

// DeriveReduceCyclesPerElem microbenchmarks the simulated DPU on a
// representative LUT reduce kernel and returns the emergent cycles per
// accumulated element — the quantity the pim package's UPMEM platform
// calibrates as ReduceCycles.
func DeriveReduceCyclesPerElem(cfg Config) (float64, error) {
	const (
		indicesPerTasklet = 64
		fSlice            = 256 // elements fetched per lookup
		instrPerElem      = 0.5 // packed 4×INT8: load+add per 4 bytes
	)
	prog := LUTReduceProgram(indicesPerTasklet, fSlice, fSlice, instrPerElem)
	st, err := Run(cfg, prog)
	if err != nil {
		return 0, err
	}
	totalElems := float64(cfg.Tasklets) * indicesPerTasklet * fSlice
	return float64(st.Cycles) / totalElems, nil
}

package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the set of grandfathered findings CI tolerates, as
// fingerprint -> accepted count. The gate reports only findings beyond
// the baseline, so a new invariant can land with its existing debt
// recorded while every NEW violation still fails the build.
type Baseline map[string]int

// BaselineEntry is one accepted finding class in the serialized file;
// the triple mirrors Fingerprint.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// baselineFile is the on-disk shape, versioned so a future format
// change can be detected instead of silently filtering nothing.
type baselineFile struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

const baselineVersion = 1

// Fingerprint identifies a finding class stably across unrelated edits:
// analyzer, root-relative file and message — deliberately not the line
// or column, so inserting code above a grandfathered finding does not
// resurface it, while moving it to another file (or changing what the
// analyzer says about it) does.
func Fingerprint(f Finding, root string) string {
	return f.Analyzer + "\x00" + relToRoot(root, f.Pos.Filename) + "\x00" + f.Message
}

func relToRoot(root, filename string) string {
	if root == "" {
		return filepath.ToSlash(filename)
	}
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// NewBaseline folds findings into a baseline keyed by fingerprint.
func NewBaseline(findings []Finding, root string) Baseline {
	b := Baseline{}
	for _, f := range findings {
		b[Fingerprint(f, root)]++
	}
	return b
}

// Filter returns the findings not covered by the baseline: each
// fingerprint consumes up to its accepted count in encounter order, and
// everything beyond that count survives as a new finding.
func (b Baseline) Filter(findings []Finding, root string) []Finding {
	used := map[string]int{}
	var out []Finding
	for _, f := range findings {
		fp := Fingerprint(f, root)
		if used[fp] < b[fp] {
			used[fp]++
			continue
		}
		out = append(out, f)
	}
	return out
}

// LoadBaseline reads a baseline file written by WriteBaseline. A
// missing file is not an error: it is the empty baseline, so a repo
// without recorded debt gates on every finding.
func LoadBaseline(path string) (Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %v", path, err)
	}
	if bf.Version != baselineVersion {
		return nil, fmt.Errorf("analysis: baseline %s has version %d, want %d; regenerate it",
			path, bf.Version, baselineVersion)
	}
	b := Baseline{}
	for _, e := range bf.Entries {
		b[e.Analyzer+"\x00"+e.File+"\x00"+e.Message] += e.Count
	}
	return b, nil
}

// WriteBaseline records the findings as the new accepted debt, sorted
// for stable diffs.
func WriteBaseline(path string, findings []Finding, root string) error {
	counts := map[string]int{}
	for _, f := range findings {
		counts[Fingerprint(f, root)]++
	}
	bf := baselineFile{Version: baselineVersion, Entries: []BaselineEntry{}}
	for fp, n := range counts {
		parts := strings.SplitN(fp, "\x00", 3)
		bf.Entries = append(bf.Entries, BaselineEntry{
			Analyzer: parts[0], File: parts[1], Message: parts[2], Count: n,
		})
	}
	sort.Slice(bf.Entries, func(i, j int) bool {
		a, b := bf.Entries[i], bf.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package analysis

import (
	"go/types"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadCrossPackageResolution checks that Load pulls in and
// type-checks module-internal dependencies the pattern did not select,
// returns packages in dependency order, and resolves identifiers across
// the package boundary to the dependency's *types.Func objects.
func TestLoadCrossPackageResolution(t *testing.T) {
	pkgs, err := Load(".", []string{filepath.Join("testdata", "src", "hotpath")})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Package{}
	var order []string
	for _, p := range pkgs {
		name := p.ImportPath[strings.LastIndex(p.ImportPath, "/")+1:]
		byName[name] = p
		order = append(order, name)
	}
	dep, ok := byName["hotpathdep"]
	if !ok {
		t.Fatalf("Load did not pull in the unselected dependency; got %v", order)
	}
	imp := byName["hotpath"]
	depIdx, impIdx := -1, -1
	for i, n := range order {
		switch n {
		case "hotpathdep":
			depIdx = i
		case "hotpath":
			impIdx = i
		}
	}
	if depIdx > impIdx {
		t.Errorf("dependency must precede importer, got order %v", order)
	}

	// The importer's call to hotpathdep.Annotated must resolve to the
	// same object the dependency's own Defs recorded — that identity is
	// what the shared fact store keys on.
	var defObj types.Object
	for id, obj := range dep.Info.Defs {
		if id.Name == "Annotated" && obj != nil {
			defObj = obj
		}
	}
	if defObj == nil {
		t.Fatal("hotpathdep.Annotated not found in dependency Defs")
	}
	found := false
	for id, obj := range imp.Info.Uses {
		if id.Name == "Annotated" && obj == defObj {
			found = true
		}
	}
	if !found {
		t.Error("importer's use of Annotated does not resolve to the dependency's def object")
	}
}

// TestLoadBuildTags checks that a file excluded by a never-satisfied
// //go:build tag is skipped before parsing: the excluded file contains
// a type error, so loading it by mistake fails this test loudly.
func TestLoadBuildTags(t *testing.T) {
	pkgs, err := Load(".", []string{filepath.Join("testdata", "src", "buildtags")})
	if err != nil {
		t.Fatalf("excluded file leaked into the type check: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 package, got %d", len(pkgs))
	}
	if n := len(pkgs[0].Files); n != 1 {
		t.Errorf("want only ok.go loaded, got %d files", n)
	}
	if pkgs[0].Pkg.Scope().Lookup("Excluded") != nil {
		t.Error("symbol from the tag-excluded file is in scope")
	}
	if pkgs[0].Pkg.Scope().Lookup("Included") == nil {
		t.Error("symbol from the unconstrained file is missing")
	}
}

// TestBuildIncluded pins the constraint evaluation itself, including
// satisfied host tags and release tags.
func TestBuildIncluded(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"package p\n", true},
		{"//go:build pimdl_never_tag\npackage p\n", false},
		{"//go:build !pimdl_never_tag\npackage p\n", true},
		{"//go:build go1.18\npackage p\n", true},
		{"//go:build gc\npackage p\n", true},
		{"// regular comment\n//go:build pimdl_never_tag\npackage p\n", false},
		// After the package clause the line is not a constraint.
		{"package p\n\n//go:build pimdl_never_tag\n", true},
	}
	for _, c := range cases {
		if got := buildIncluded([]byte(c.src)); got != c.want {
			t.Errorf("buildIncluded(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

// TestLoadTypeError checks that a package that fails type-checking is a
// load error mentioning the offending package, not a silently
// half-analyzed result.
func TestLoadTypeError(t *testing.T) {
	_, err := Load(".", []string{filepath.Join("testdata", "src", "typeerr")})
	if err == nil {
		t.Fatal("want a type-check error, got nil")
	}
	if !strings.Contains(err.Error(), "typeerr") {
		t.Errorf("error should name the failing package, got: %v", err)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	Dir        string // absolute directory
	ImportPath string // module-qualified import path ("repro/internal/pim")
	Files      []*ast.File
	Fset       *token.FileSet
	Pkg        *types.Package
	Info       *types.Info
}

// Module locates the enclosing Go module of dir and returns its root
// directory and module path, by walking up to the nearest go.mod.
func Module(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return d, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// Load parses and type-checks the packages selected by patterns, which
// may be "./...", "dir/...", or plain directories, resolved relative to
// dir. Test files are excluded: every analyzer's contract is scoped to
// non-test code. Packages are returned in dependency (topological) order.
func Load(dir string, patterns []string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := Module(dir)
	if err != nil {
		return nil, err
	}

	dirs, err := expandPatterns(dir, root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		dir, importPath string
		files           []*ast.File
		imports         []string
	}
	byPath := map[string]*parsed{}
	var order []string
	for _, d := range dirs {
		files, err := parseDir(fset, d)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		p := &parsed{dir: d, importPath: ip, files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(path, modPath+"/") || path == modPath {
					if !seen[path] {
						seen[path] = true
						p.imports = append(p.imports, path)
					}
				}
			}
		}
		byPath[ip] = p
		order = append(order, ip)
	}

	// Intra-module dependencies must be type-checked first, even when the
	// pattern did not select them (e.g. linting only ./cmd/... still needs
	// the internal packages it imports).
	for i := 0; i < len(order); i++ {
		for _, dep := range byPath[order[i]].imports {
			if byPath[dep] != nil {
				continue
			}
			d := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(dep, modPath+"/")))
			files, err := parseDir(fset, d)
			if err != nil || len(files) == 0 {
				return nil, fmt.Errorf("analysis: cannot load dependency %s: %v", dep, err)
			}
			p := &parsed{dir: d, importPath: dep, files: files}
			seen := map[string]bool{}
			for _, f := range files {
				for _, imp := range f.Imports {
					path := strings.Trim(imp.Path.Value, `"`)
					if strings.HasPrefix(path, modPath+"/") && !seen[path] {
						seen[path] = true
						p.imports = append(p.imports, path)
					}
				}
			}
			byPath[dep] = p
			order = append(order, dep)
		}
	}

	// Topological sort over intra-module imports.
	var sorted []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range byPath[ip].imports {
			if byPath[dep] != nil {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[ip] = 2
		sorted = append(sorted, ip)
		return nil
	}
	sort.Strings(order)
	for _, ip := range order {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	// Type-check in dependency order. Standard-library imports resolve
	// through the shared source importer; module-internal imports resolve
	// from the cache filled by earlier iterations.
	std := importer.ForCompiler(fset, "source", nil)
	cache := map[string]*types.Package{}
	imp := &moduleImporter{std: std, cache: cache}
	var out []*Package
	for _, ip := range sorted {
		p := byPath[ip]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(ip, fset, p.files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("analysis: type errors in %s: %v", ip, typeErrs[0])
		}
		cache[ip] = tpkg
		out = append(out, &Package{
			Dir: p.dir, ImportPath: ip, Files: p.files, Fset: fset, Pkg: tpkg, Info: info,
		})
	}
	return out, nil
}

// moduleImporter resolves module-internal paths from the loader's cache
// and everything else through the stdlib source importer.
type moduleImporter struct {
	std   types.Importer
	cache map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.cache[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// parseDir parses the non-test .go files of one directory (comments
// retained — the suppression directives and panic-doc checks need them).
// Files whose //go:build constraint excludes the host platform are
// skipped before parsing, matching what go build would compile — a
// platform-gated file full of foreign syscalls must not fail the whole
// package's type check.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(src) {
			continue
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// buildIncluded evaluates the file's //go:build line (if any) against
// the host GOOS/GOARCH, the gc toolchain and release tags. The check
// runs on raw bytes before parsing so an excluded file is never parsed
// at all. Only the //go:build form is recognized; the module's Go floor
// is well past the legacy // +build syntax.
func buildIncluded(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true
			}
			return expr.Eval(buildTagSatisfied)
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			continue
		}
		// Reached the package clause (or a block comment): a //go:build
		// line may not appear after this point.
		break
	}
	return true
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	}
	// Release tags: go1.N is satisfied for every N up to the running
	// toolchain; the module floor (go 1.22) makes any go1.* tag the
	// repo would realistically use satisfied.
	return strings.HasPrefix(tag, "go1.")
}

// expandPatterns maps CLI patterns to package directories under root.
func expandPatterns(cwd, root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "." {
			pat = cwd
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(cwd, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					add(path)
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

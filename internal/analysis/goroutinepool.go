package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolPackage is the import-path suffix of the one package allowed to
// create goroutines: the shared bounded worker pool. Tests may point it
// at a fixture path.
var PoolPackage = "internal/parallel"

// GoroutinePool enforces the pool-only parallelism contract PR 3
// established: every host-side fan-out routes through the shared
// bounded worker pool (internal/parallel), whose chunk grid is a pure
// function of the problem size. A raw `go` statement elsewhere creates
// unbounded, non-deterministic concurrency the pool's contracts
// (bounded worker count, deterministic chunking, zero-alloc dispatch)
// cannot see; an ad-hoc sync.WaitGroup fan-out is the same thing
// spelled by hand. Both are flagged outside the pool package. The rare
// legitimate goroutine (a signal listener in a main package, a test
// server) states its reason with a suppression directive.
var GoroutinePool = &Analyzer{
	Name: "goroutinepool",
	Doc:  "raw go statement or ad-hoc sync.WaitGroup fan-out outside the shared worker pool",
	Run:  runGoroutinePool,
}

func runGoroutinePool(p *Pass) {
	if strings.HasSuffix(p.PkgPath, PoolPackage) {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(),
					"raw go statement outside %s; route parallelism through the shared worker pool", PoolPackage)
			case *ast.SelectorExpr:
				if isSyncWaitGroupType(p, n) {
					p.Reportf(n.Pos(),
						"ad-hoc sync.WaitGroup fan-out outside %s; use parallel.For/ForCtx so concurrency stays bounded and deterministic", PoolPackage)
				}
			}
			return true
		})
	}
}

// isSyncWaitGroupType reports whether sel is the type sync.WaitGroup
// used as a type (a declaration, field, parameter or composite literal
// — not a value of some other type whose selector happens to match).
func isSyncWaitGroupType(p *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "WaitGroup" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "sync" {
		return false
	}
	tv, ok := p.Info.Types[sel]
	return ok && tv.IsType()
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// isBuiltin reports whether id resolves to a universe builtin (and not a
// user-defined function shadowing the name).
func isBuiltin(p *Pass, id *ast.Ident) bool {
	obj := p.Info.Uses[id]
	if obj == nil {
		return true // unresolved identifiers in fixtures default to the builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// PanicInLibrary flags panic calls in library packages (import path
// containing "internal/") outside test files. A panic that escapes a
// library boundary crashes the serving process; paths reachable from
// external input (deserialization, config parsing) must return errors
// instead.
//
// Two escape hatches reflect accepted Go practice:
//   - the enclosing function's doc comment mentions "panic" — a
//     documented programmer-error contract (like the standard library's
//     slice-index style invariants); and
//   - functions named Must* — the conventional panic-on-error wrappers.
//
// Everything else is either converted to an error return or suppressed
// with a reason at the site.
var PanicInLibrary = &Analyzer{
	Name: "panic-in-library",
	Doc:  "panic in library code without a documented panic contract",
	Run:  runPanicInLibrary,
}

func runPanicInLibrary(p *Pass) {
	if !strings.Contains(p.PkgPath+"/", "internal/") {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Must") || strings.HasPrefix(fn.Name.Name, "must") {
				continue
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "panic") {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltin(p, id) {
					p.Reportf(call.Pos(), "panic in library function %s: return an error, or document the panic contract in the function comment", name)
				}
				return true
			})
		}
	}
}

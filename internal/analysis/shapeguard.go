package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShapeGuardPackages lists the import-path suffixes of the packages whose
// exported dimension-taking entry points must validate their arguments.
// These are the layers where a bad shape silently mis-reads memory: the
// tensor library, the LUT kernels, the PIM executor, the clustering code
// and the artifact loader. Tests may append fixture paths.
var ShapeGuardPackages = []string{
	"internal/tensor",
	"internal/lutnn",
	"internal/pim",
	"internal/kmeans",
	"internal/serial",
}

// ShapeGuard flags exported functions (and methods) in the packages above
// that take two or more int dimension parameters — a width and a height,
// an N and a CB, a k and a dim — and use them unchecked against memory
// (the body indexes or reslices a slice, or allocates with make) with no
// validation at all: no early-exit if statement, no call to a
// checker/validator, and no delegation to a same-package function that
// validates. Such functions index slices with raw caller-supplied
// dimensions, so a shape bug surfaces as a corrupted read instead of an
// error. Pure-arithmetic dimension functions (the FLOP cost model) touch
// no memory and are exempt.
//
// "Validation" is recognized structurally, anywhere in the function:
//   - an if statement whose body panics or returns (an early-exit guard);
//   - a call to a function whose name contains "check", "valid" or
//     "Validate" (case-insensitive);
//   - a call to a same-package function that itself validates
//     (delegation, computed to a fixpoint — e.g. RandN delegating to New).
//
// Hot-path accessors that deliberately skip bounds checks document that
// decision with a suppression directive.
var ShapeGuard = &Analyzer{
	Name: "shape-guard",
	Doc:  "exported dimension-taking entry point performs no shape validation",
	Run:  runShapeGuard,
}

func runShapeGuard(p *Pass) {
	applies := false
	for _, suffix := range ShapeGuardPackages {
		if strings.HasSuffix(p.PkgPath, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}

	type fnInfo struct {
		decl    *ast.FuncDecl
		guarded bool
		callees []*types.Func
	}
	fns := map[*types.Func]*fnInfo{}

	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd, guarded: hasDirectGuard(p, fd)}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(p, call); callee != nil && callee.Pkg() == p.Pkg {
					info.callees = append(info.callees, callee)
				}
				return true
			})
			fns[obj] = info
		}
	}

	// Propagate guardedness through same-package delegation to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, info := range fns {
			if info.guarded {
				continue
			}
			for _, callee := range info.callees {
				if c, ok := fns[callee]; ok && c.guarded {
					info.guarded = true
					changed = true
					break
				}
			}
		}
	}

	for _, info := range fns {
		fd := info.decl
		if !fd.Name.IsExported() || info.guarded {
			continue
		}
		if dimParamCount(fd) < 2 || !touchesMemory(p, fd) {
			continue
		}
		p.Reportf(fd.Name.Pos(),
			"exported %s takes dimension arguments but never validates them; add a shape guard or suppress with a reason", fd.Name.Name)
	}
}

// dimParamCount counts plain int parameters; a variadic ...int dimension
// list counts as two (it is a whole shape).
func dimParamCount(fd *ast.FuncDecl) int {
	n := 0
	for _, field := range fd.Type.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		switch t := field.Type.(type) {
		case *ast.Ident:
			if t.Name == "int" {
				n += names
			}
		case *ast.Ellipsis:
			if id, ok := t.Elt.(*ast.Ident); ok && id.Name == "int" {
				n += 2 * names
			}
		}
	}
	return n
}

// touchesMemory reports whether the function body indexes or reslices a
// slice or allocates with make — the uses a bad dimension can corrupt.
func touchesMemory(p *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr, *ast.SliceExpr:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(p, id) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasDirectGuard reports whether the function body contains an early-exit
// if statement or a call to a checker/validator by name.
func hasDirectGuard(p *Pass, fd *ast.FuncDecl) bool {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.ReturnStmt:
					guarded = true
				case *ast.CallExpr:
					if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "panic" && isBuiltin(p, id) {
						guarded = true
					}
				}
				return !guarded
			})
		case *ast.CallExpr:
			name := ""
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			lower := strings.ToLower(name)
			if strings.Contains(lower, "check") || strings.Contains(lower, "valid") {
				guarded = true
			}
		}
		return !guarded
	})
	return guarded
}

// calleeFunc resolves the called function object, if it is a declared
// function or method (not a builtin or function value).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

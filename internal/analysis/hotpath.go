package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose steady state must not
// allocate. It appears on its own line in the function's doc comment.
const hotpathDirective = "pimdl:hotpath"

// hotpathDeniedStdlib lists standard-library packages whose functions
// allocate by design (formatting, string building, sorting, reflection)
// and therefore have no place in an annotated hot path. Everything else
// in the standard library (sync, atomic, math, runtime) is allowed.
var hotpathDeniedStdlib = map[string]bool{
	"fmt": true, "strings": true, "strconv": true, "sort": true,
	"errors": true, "regexp": true, "reflect": true, "log": true,
	"os": true, "encoding/json": true,
}

// Hotpath statically guards the zero-allocation claims behind the
// BENCH_*.json numbers: a function annotated
//
//	//pimdl:hotpath
//
// in its doc comment may not allocate in steady state. Inside annotated
// functions the analyzer flags make/new/append, closures, slice and map
// literals, go statements, calls into allocating stdlib packages (fmt
// et al.), implicit interface boxing of non-pointer values, and — the
// cross-package part — calls to module functions that are not
// themselves annotated, resolved through the shared fact store so a
// lutnn kernel calling parallel.ForCtx checks against the annotation
// in the parallel package. Panic arguments are exempt: a panicking
// shape check leaves steady state, so its fmt.Sprintf is free. Arena
// grow-to-high-water sites document themselves with a suppression.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocation (or call to an unannotated function) in a //pimdl:hotpath function",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	// Phase 1: record this package's annotations before checking any
	// body, so intra-package calls resolve exactly like cross-package
	// ones (whose packages ran earlier in dependency order).
	var annotated []*ast.FuncDecl
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotpathDirective(fd) {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				p.Facts.Hotpath[fn] = true
				annotated = append(annotated, fd)
			}
		}
	}
	for _, fd := range annotated {
		checkHotpathBody(p, fd)
	}
}

func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotpathDirective) {
			return true
		}
	}
	return false
}

func checkHotpathBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "go statement in hotpath %s; goroutine launch allocates", name)
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure in hotpath %s allocates; use a top-level function with a pooled context (parallel.ForCtx style)", name)
			return false // the literal's body is not on the hot path
		case *ast.CompositeLit:
			if tv, ok := p.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(n.Pos(), "slice/map literal in hotpath %s allocates; draw scratch from an arena", name)
				}
			}
		case *ast.CallExpr:
			if isPanicCall(p, n) {
				// A panicking guard exits steady state: everything in
				// its argument tree (fmt.Sprintf included) is exempt.
				return false
			}
			checkHotpathCall(p, fd, n)
		case *ast.AssignStmt:
			checkBoxingAssign(p, fd, n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func isPanicCall(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic" && isBuiltin(p, id)
}

func checkHotpathCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	name := fd.Name.Name
	// Builtins that allocate.
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(p, id) {
		switch id.Name {
		case "make", "new":
			p.Reportf(call.Pos(), "%s in hotpath %s allocates; preallocate or draw from an arena", id.Name, name)
		case "append":
			p.Reportf(call.Pos(), "append in hotpath %s may grow its backing array; write into preallocated storage", name)
		}
		return
	}
	// Conversions are not calls.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if callee := calleeFunc(p, call); callee != nil && callee.Pkg() != nil {
		path := callee.Pkg().Path()
		switch {
		case samePathRoot(path, p.PkgPath):
			if !p.Facts.Hotpath[callee] {
				p.Reportf(call.Pos(),
					"hotpath %s calls %s.%s, which is not annotated //pimdl:hotpath; annotate it or move the call off the hot path",
					name, shortPkg(path), callee.Name())
			}
		case hotpathDeniedStdlib[path]:
			p.Reportf(call.Pos(),
				"hotpath %s calls %s.%s, which allocates by design", name, path, callee.Name())
		}
	}
	checkBoxingArgs(p, fd, call)
}

// checkBoxingArgs flags concrete non-pointer values passed to
// interface-typed parameters: the conversion boxes the value on the
// heap. Pointers, channels, maps, funcs and existing interface values
// store directly in the interface word; constants fold into read-only
// data.
func checkBoxingArgs(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed as-is, no per-element boxing
			}
			paramT = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramT = params.At(i).Type()
		}
		if paramT == nil || !types.IsInterface(paramT) {
			continue
		}
		reportBoxing(p, fd, arg, "argument")
	}
}

// checkBoxingAssign flags assignments of concrete non-pointer values to
// interface-typed destinations.
func checkBoxingAssign(p *Pass, fd *ast.FuncDecl, assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		ltv, ok := p.Info.Types[lhs]
		if !ok || ltv.Type == nil || !types.IsInterface(ltv.Type) {
			continue
		}
		reportBoxing(p, fd, assign.Rhs[i], "assignment")
	}
}

func reportBoxing(p *Pass, fd *ast.FuncDecl, e ast.Expr, how string) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil { // constants fold statically
		return
	}
	t := tv.Type
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(t) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	p.Reportf(e.Pos(),
		"interface %s boxes a %s in hotpath %s; pass a pointer (pooled context) instead", how, t, fd.Name.Name)
}

// samePathRoot reports whether two import paths share their first
// segment — i.e. both belong to this module (stdlib paths never share
// the module's root segment).
func samePathRoot(a, b string) bool {
	return pathRoot(a) == pathRoot(b)
}

func pathRoot(p string) string {
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricsPackage is the import-path suffix of the metrics registry
// package whose constructors this analyzer recognizes.
var MetricsPackage = "internal/metrics"

// metricNamePattern is the DESIGN.md §10 convention:
// pimdl_<layer>_<name> in lower snake case.
var metricNamePattern = regexp.MustCompile(`^pimdl_[a-z][a-z0-9]*_[a-z0-9_]*[a-z0-9]$`)

// metricRegistrars maps each Registry constructor to whether it creates
// a (monotonic) counter, which must carry the _total suffix.
var metricRegistrars = map[string]bool{
	"NewCounter":            true,
	"NewFloatCounter":       true,
	"NewCounterFamily":      true,
	"NewFloatCounterFamily": true,
	"NewGauge":              false,
	"NewHistogram":          false,
}

// MetricDiscipline enforces the observability layer's contracts
// (DESIGN.md §10): every series is registered exactly once, from an
// init function, under a literal name following the
// pimdl_<layer>_<name> convention with _total on counters and unit
// tokens (_seconds, _bytes) in final position; counters never go
// backwards (no negative Add); and snapshots are read-only views —
// mutating the map Flatten returns or a Sample from Snapshot corrupts
// the report without touching the registry. Registration uniqueness is
// checked across packages through the shared fact store, so two
// packages claiming one series fail at lint time, not at process init.
var MetricDiscipline = &Analyzer{
	Name: "metricdiscipline",
	Doc:  "metric registration, naming, monotonicity or snapshot-mutation contract violation",
	Run:  runMetricDiscipline,
}

func runMetricDiscipline(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inInit := fd.Name.Name == "init" && fd.Recv == nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkRegistration(p, call, inInit)
					checkNegativeCounterAdd(p, call)
				}
				return true
			})
			checkSnapshotMutation(p, fd)
		}
	}
}

// checkRegistration validates one Registry constructor call and records
// the registered name in the cross-package fact store.
func checkRegistration(p *Pass, call *ast.CallExpr, inInit bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	isCounter, ok := metricRegistrars[sel.Sel.Name]
	if !ok || !isMetricsMethod(p, sel, "Registry") {
		return
	}
	if !inInit {
		p.Reportf(call.Pos(),
			"metric registered outside an init function; registration must run exactly once at package init")
	}
	if len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		p.Reportf(call.Args[0].Pos(),
			"metric name must be a string literal so the series inventory is statically known")
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	checkMetricName(p, lit, name, isCounter)
	if prev, dup := p.Facts.MetricSeries[name]; dup {
		p.Reportf(lit.Pos(),
			"series %q already registered at %s; two registrations would merge unrelated numbers", name, prev)
	} else {
		p.Facts.MetricSeries[name] = p.Fset.Position(lit.Pos())
	}
}

func checkMetricName(p *Pass, lit *ast.BasicLit, name string, isCounter bool) {
	if !metricNamePattern.MatchString(name) {
		p.Reportf(lit.Pos(),
			"series %q does not match the pimdl_<layer>_<name> lower-snake convention", name)
		return
	}
	base, hasTotal := strings.CutSuffix(name, "_total")
	if isCounter && !hasTotal {
		p.Reportf(lit.Pos(), "counter %q must end in _total", name)
	}
	if !isCounter && hasTotal {
		p.Reportf(lit.Pos(), "non-counter %q must not end in _total", name)
	}
	// Unit tokens belong in final position (before _total): a series
	// named ..._seconds_busy_... reads as if "busy" were the unit.
	for _, unit := range []string{"seconds", "bytes"} {
		if i := strings.Index(base, "_"+unit); i >= 0 && i+1+len(unit) != len(base) {
			p.Reportf(lit.Pos(),
				"unit token %q in %q must be the final name component (before _total)", unit, name)
		}
	}
}

// checkNegativeCounterAdd flags Counter/FloatCounter.Add with a
// provably negative constant argument; counters are monotonic.
func checkNegativeCounterAdd(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" || len(call.Args) != 1 {
		return
	}
	if !isMetricsMethod(p, sel, "Counter") && !isMetricsMethod(p, sel, "FloatCounter") {
		return
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return
	}
	if strings.HasPrefix(tv.Value.ExactString(), "-") {
		p.Reportf(call.Args[0].Pos(),
			"negative Add on a monotonic counter; use a Gauge for values that go down")
	}
}

// checkSnapshotMutation flags writes through variables bound to a
// snapshot: x := reg.Flatten() (or Snapshot()) followed by x[...] = v
// or x[i].Field = v in the same function.
func checkSnapshotMutation(p *Pass, fd *ast.FuncDecl) {
	snap := map[types.Object]string{} // variable -> originating method
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || i >= len(assign.Lhs) {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Flatten" && sel.Sel.Name != "Snapshot") {
				continue
			}
			if !isMetricsMethod(p, sel, "Registry") {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					snap[obj] = sel.Sel.Name
				} else if obj := p.Info.Uses[id]; obj != nil {
					snap[obj] = sel.Sel.Name
				}
			}
		}
		return true
	})
	if len(snap) == 0 {
		return
	}
	snapRoot := func(e ast.Expr) (string, bool) {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.Ident:
				if m, ok := snap[p.Info.Uses[x]]; ok {
					return m, true
				}
				return "", false
			default:
				return "", false
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range assign.Lhs {
			switch lhs.(type) {
			case *ast.IndexExpr, *ast.SelectorExpr:
				if m, ok := snapRoot(lhs); ok {
					p.Reportf(lhs.Pos(),
						"mutating the result of %s(); snapshots are read-only views of the registry", m)
				}
			}
		}
		return true
	})
}

// isMetricsMethod reports whether sel resolves to a method whose
// receiver is the named type recv from the metrics package.
func isMetricsMethod(p *Pass, sel *ast.SelectorExpr, recv string) bool {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == recv && strings.HasSuffix(named.Obj().Pkg().Path(), MetricsPackage)
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCompare flags == and != between floating-point operands in
// non-test code. Exact float equality silently corrupts the two places
// PIM-DL depends on value identity: centroid deduplication (two centroids
// that differ by one ulp are distinct table rows) and timing-model
// comparisons (cost ties broken by ==). Sites that genuinely want
// bit-exact semantics — sentinel zero checks before a divide, skip-zero
// fast paths, bit-exactness oracles — state that with a suppression
// directive and a reason.
var FloatCompare = &Analyzer{
	Name: "float-compare",
	Doc:  "==/!= on floating-point operands",
	Run:  runFloatCompare,
}

func runFloatCompare(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p, be.X) || isFloat(p, be.Y) {
				p.Reportf(be.OpPos, "%s on float operands; use an epsilon or suppress with a reason if bit-exact semantics are intended", be.Op)
			}
			return true
		})
	}
}

func isFloat(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	// Untyped float constants compared against a float variable are
	// covered by the other operand; an untyped constant alone (e.g. in a
	// const declaration) never reaches here with a concrete float type.
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsFloat != 0
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline flags the two lock-handling mistakes the race detector
// only catches when a test happens to interleave badly:
//
//   - copying a lock: a value receiver or by-value parameter of a type
//     that (transitively) contains a sync.Mutex, RWMutex, WaitGroup,
//     Once or Cond copies the lock state, so the copy guards nothing;
//   - holding a lock across a dispatch boundary: a parallel.For/ForCtx
//     call or a channel send between Lock and Unlock serializes the
//     whole pool behind one critical section at best and deadlocks at
//     worst (a pool worker blocking on the same lock while the holder
//     waits for the pool).
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "lock-bearing value copied, or lock held across a pool dispatch or channel send",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(p, fd)
			if fd.Body != nil {
				checkHeldAcrossDispatch(p, fd)
			}
		}
	}
}

// checkLockCopies flags value receivers and by-value parameters of
// lock-bearing types.
func checkLockCopies(p *Pass, fd *ast.FuncDecl) {
	report := func(field *ast.Field, what string) {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			return
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			return
		}
		if bearer := lockBearer(tv.Type, nil); bearer != "" {
			p.Reportf(field.Type.Pos(),
				"%s copies %s (contains %s); use a pointer", what, tv.Type, bearer)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			report(field, "value receiver")
		}
	}
	for _, field := range fd.Type.Params.List {
		report(field, "by-value parameter")
	}
}

// lockBearer reports the sync primitive a type transitively contains by
// value ("" if none). seen guards against recursive types.
func lockBearer(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return "sync." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if b := lockBearer(u.Field(i).Type(), seen); b != "" {
				return b
			}
		}
	case *types.Array:
		return lockBearer(u.Elem(), seen)
	}
	return ""
}

// checkHeldAcrossDispatch flags pool dispatches and channel sends
// positioned between a Lock() and the first matching non-deferred
// Unlock() (or the function end when the unlock is deferred).
func checkHeldAcrossDispatch(p *Pass, fd *ast.FuncDecl) {
	type span struct{ lo, hi token.Pos }
	var held []span

	// Collect lock/unlock sites in source order. Function literals are
	// walked too: a deferred closure unlocking is still "deferred".
	var locks, unlocks []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isSyncLockMethod(p, sel) {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			locks = append(locks, call.Pos())
		case "Unlock", "RUnlock":
			if !isDeferredCall(fd, call) {
				unlocks = append(unlocks, call.Pos())
			}
		}
		return true
	})
	for _, lp := range locks {
		hi := fd.Body.End()
		for _, up := range unlocks {
			if up > lp && up < hi {
				hi = up
			}
		}
		held = append(held, span{lp, hi})
	}
	if len(held) == 0 {
		return
	}

	inHeld := func(pos token.Pos) bool {
		for _, s := range held {
			if pos > s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if inHeld(n.Pos()) {
				p.Reportf(n.Pos(),
					"channel send while holding a lock; a blocked receiver holds up the critical section (or deadlocks it)")
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && inHeld(n.Pos()) && isPoolDispatch(p, sel) {
				p.Reportf(n.Pos(),
					"pool dispatch (%s.%s) while holding a lock; workers contending on it serialize the whole pool", exprPkgName(sel.X), sel.Sel.Name)
			}
		}
		return true
	})
}

// isSyncLockMethod reports whether sel resolves to a (R)Lock/(R)Unlock
// method of sync.Mutex or sync.RWMutex (including promoted embeds).
func isSyncLockMethod(p *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync"
}

// isDeferredCall reports whether call is the direct call of a defer
// statement or appears inside a deferred function literal.
func isDeferredCall(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	deferred := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if deferred {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if d.Call == call {
			deferred = true
			return false
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if m == ast.Node(call) {
				deferred = true
			}
			return !deferred
		})
		return !deferred
	})
	return deferred
}

// isPoolDispatch reports whether sel is parallel.For or
// parallel.ForCtx (by the PoolPackage path).
func isPoolDispatch(p *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "For" && sel.Sel.Name != "ForCtx" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), PoolPackage)
}

func exprPkgName(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return "parallel"
}

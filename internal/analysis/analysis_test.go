package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Fixtures under testdata/src are loaded once (type-checking pulls in the
// standard library through the source importer, which dominates the cost)
// and shared across the analyzer tests.
var (
	fixOnce sync.Once
	fixPkgs map[string]*Package
	fixErr  error
)

var fixtureNames = []string{
	"looprange", "errcheck", "floatcmp", "paniclib", "shapeguard", "suppress",
	"goroutinepool", "determinism", "metricdiscipline", "metricdup",
	"lockdiscipline", "hotpath", "hotpathdep", "stale",
}

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	fixOnce.Do(func() {
		var pats []string
		for _, n := range fixtureNames {
			pats = append(pats, filepath.Join("testdata", "src", n))
		}
		pkgs, err := Load(".", pats)
		if err != nil {
			fixErr = err
			return
		}
		fixPkgs = map[string]*Package{}
		for _, p := range pkgs {
			fixPkgs[p.ImportPath[strings.LastIndex(p.ImportPath, "/")+1:]] = p
		}
	})
	if fixErr != nil {
		t.Fatalf("loading fixtures: %v", fixErr)
	}
	p, ok := fixPkgs[name]
	if !ok {
		t.Fatalf("fixture %q not loaded", name)
	}
	return p
}

func runFixture(t *testing.T, name string, a *Analyzer) []Finding {
	t.Helper()
	p := fixture(t, name)
	return RunPackage(p.Fset, p.Files, p.ImportPath, p.Pkg, p.Info, []*Analyzer{a})
}

// checkMarkers compares findings against the fixture's `// want: <substr>`
// markers: every marker line must produce exactly one finding on that line
// whose message contains the substring, and no unmarked findings may
// survive.
func checkMarkers(t *testing.T, name string, findings []Finding) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	type want struct {
		file   string
		line   int
		substr string
	}
	var wants []want
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	const marker = "// want: "
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if idx := strings.Index(line, marker); idx >= 0 {
				wants = append(wants, want{
					file:   e.Name(),
					line:   i + 1,
					substr: strings.TrimSpace(line[idx+len(marker):]),
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want markers", name)
	}

	remaining := append([]Finding(nil), findings...)
outer:
	for _, w := range wants {
		for i, f := range remaining {
			if filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line &&
				strings.Contains(f.Message, w.substr) {
				remaining = append(remaining[:i], remaining[i+1:]...)
				continue outer
			}
		}
		t.Errorf("missing finding at %s:%d containing %q", w.file, w.line, w.substr)
	}
	for _, f := range remaining {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestLoopRangeCaptureFixture(t *testing.T) {
	checkMarkers(t, "looprange", runFixture(t, "looprange", LoopRangeCapture))
}

func TestUncheckedErrorFixture(t *testing.T) {
	checkMarkers(t, "errcheck", runFixture(t, "errcheck", UncheckedError))
}

func TestFloatCompareFixture(t *testing.T) {
	checkMarkers(t, "floatcmp", runFixture(t, "floatcmp", FloatCompare))
}

func TestPanicInLibraryFixture(t *testing.T) {
	checkMarkers(t, "paniclib", runFixture(t, "paniclib", PanicInLibrary))
}

func TestShapeGuardFixture(t *testing.T) {
	orig := ShapeGuardPackages
	ShapeGuardPackages = append(append([]string(nil), orig...), "testdata/src/shapeguard")
	defer func() { ShapeGuardPackages = orig }()
	checkMarkers(t, "shapeguard", runFixture(t, "shapeguard", ShapeGuard))
}

func TestGoroutinePoolFixture(t *testing.T) {
	checkMarkers(t, "goroutinepool", runFixture(t, "goroutinepool", GoroutinePool))
}

func TestDeterminismFixture(t *testing.T) {
	orig := DeterminismPackages
	DeterminismPackages = append(append([]string(nil), orig...), "testdata/src/determinism")
	defer func() { DeterminismPackages = orig }()
	checkMarkers(t, "determinism", runFixture(t, "determinism", Determinism))
}

func TestMetricDisciplineFixture(t *testing.T) {
	checkMarkers(t, "metricdiscipline", runFixture(t, "metricdiscipline", MetricDiscipline))
}

func TestLockDisciplineFixture(t *testing.T) {
	checkMarkers(t, "lockdiscipline", runFixture(t, "lockdiscipline", LockDiscipline))
}

// TestHotpathFixture runs the dependency package and its importer in one
// multi-package pass: the hotpathdep annotations land in the shared fact
// store first, so the importer's calls resolve cross-package. The
// dependency itself must stay finding-free — checkMarkers rejects any
// finding outside the hotpath fixture's marker set.
func TestHotpathFixture(t *testing.T) {
	dep, imp := fixture(t, "hotpathdep"), fixture(t, "hotpath")
	findings := RunPackages([]*Package{dep, imp}, []*Analyzer{Hotpath}, RunOptions{})
	checkMarkers(t, "hotpath", findings)
}

// TestMetricDupCrossPackage checks that a series name registered in two
// packages is reported at the second registration site, which only a
// shared-facts run can see: each package is clean in isolation.
func TestMetricDupCrossPackage(t *testing.T) {
	first, second := fixture(t, "metricdiscipline"), fixture(t, "metricdup")
	if fs := RunPackage(second.Fset, second.Files, second.ImportPath, second.Pkg, second.Info,
		[]*Analyzer{MetricDiscipline}); len(fs) != 0 {
		t.Fatalf("metricdup should be clean in isolation, got %v", fs)
	}
	findings := RunPackages([]*Package{first, second}, []*Analyzer{MetricDiscipline}, RunOptions{})
	var dups []Finding
	for _, f := range findings {
		if strings.Contains(filepath.Base(f.Pos.Filename), "metricdup") {
			dups = append(dups, f)
		}
	}
	if len(dups) != 1 || !strings.Contains(dups[0].Message, "already registered") {
		t.Errorf("want exactly one cross-package duplicate finding in metricdup, got %v", dups)
	}
}

// TestStaleDirective runs the full analyzer set with stale reporting on:
// the directive that still suppresses a float compare stays silent, the
// one whose guarded code drifted to an int compare is reported.
func TestStaleDirective(t *testing.T) {
	p := fixture(t, "stale")
	findings := RunPackages([]*Package{p}, All(), RunOptions{ReportStale: true})
	checkMarkers(t, "stale", findings)
}

// TestSuppression checks that well-formed directives (line above, trailing
// same-line, and the "all" wildcard) silence findings, while a reason-less
// directive is itself reported and suppresses nothing.
func TestSuppression(t *testing.T) {
	findings := runFixture(t, "suppress", FloatCompare)
	var malformed, floatcmp []Finding
	for _, f := range findings {
		switch f.Analyzer {
		case "lint-ignore":
			malformed = append(malformed, f)
		case "float-compare":
			floatcmp = append(floatcmp, f)
		default:
			t.Errorf("finding from unexpected analyzer: %s", f)
		}
	}
	if len(malformed) != 1 {
		t.Errorf("got %d malformed-directive findings, want 1: %v", len(malformed), malformed)
	}
	if len(floatcmp) != 2 {
		t.Errorf("got %d surviving float-compare findings, want 2 (Unsuppressed and Malformed): %v",
			len(floatcmp), floatcmp)
	}
	for _, f := range floatcmp {
		if f.Pos.Line < 24 {
			t.Errorf("finding in the suppressed region survived: %s", f)
		}
	}
}

// TestAllRegistered pins the analyzer roster: adding one without wiring it
// into All() would silently drop it from the driver.
func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"looprange-capture", "unchecked-error", "float-compare",
		"panic-in-library", "shape-guard", "goroutinepool", "determinism",
		"metricdiscipline", "lockdiscipline", "hotpath",
	} {
		if !names[want] {
			t.Errorf("All() is missing analyzer %q", want)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// LoopRangeCapture flags goroutines launched inside a loop whose function
// literal captures the loop's iteration variables instead of receiving
// them as arguments.
//
// Since Go 1.22 each iteration gets fresh loop variables, so the classic
// stale-capture bug is gone — but the simulator's fan-outs (autotuner
// partition search, PE-group execution, parallel matmul, parallel CCS)
// deliberately pass iteration state as arguments so that the goroutine's
// read/write set is explicit and the race reviewer can check index
// partitioning locally. A captured loop variable hides that contract, and
// on any toolchain with `go 1.21` or older semantics in go.mod it is an
// outright data race. The analyzer enforces the explicit-argument style.
var LoopRangeCapture = &Analyzer{
	Name: "looprange-capture",
	Doc:  "goroutine launched in a loop captures the loop variable instead of taking it as an argument",
	Run:  runLoopRangeCapture,
}

func runLoopRangeCapture(p *Pass) {
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		var loopVars []map[types.Object]string // stack, one frame per enclosing loop

		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch n := n.(type) {
			case *ast.RangeStmt:
				frame := map[types.Object]string{}
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := p.Info.Defs[id]; obj != nil {
							frame[obj] = id.Name
						}
					}
				}
				loopVars = append(loopVars, frame)
				ast.Inspect(n.Body, func(m ast.Node) bool { return inspectStep(m, walk) })
				loopVars = loopVars[:len(loopVars)-1]
				return
			case *ast.ForStmt:
				frame := map[types.Object]string{}
				if assign, ok := n.Init.(*ast.AssignStmt); ok {
					for _, lhs := range assign.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if obj := p.Info.Defs[id]; obj != nil {
								frame[obj] = id.Name
							}
						}
					}
				}
				loopVars = append(loopVars, frame)
				ast.Inspect(n.Body, func(m ast.Node) bool { return inspectStep(m, walk) })
				loopVars = loopVars[:len(loopVars)-1]
				return
			case *ast.GoStmt:
				if len(loopVars) > 0 {
					checkGoCapture(p, n, loopVars)
				}
				// Keep walking: the goroutine body may itself contain loops
				// launching further goroutines.
				ast.Inspect(n.Call, func(m ast.Node) bool { return inspectStep(m, walk) })
				return
			}
		}
		ast.Inspect(file, func(n ast.Node) bool { return inspectStep(n, walk) })
	}
}

// inspectStep routes loop/go nodes to walk (which manages the loop-var
// stack) and lets ast.Inspect recurse through everything else.
func inspectStep(n ast.Node, walk func(ast.Node)) bool {
	switch n.(type) {
	case *ast.RangeStmt, *ast.ForStmt, *ast.GoStmt:
		walk(n)
		return false
	}
	return true
}

// checkGoCapture reports loop variables referenced inside the function
// literal(s) of a go statement. References inside the call's argument
// list are the sanctioned pattern (go func(i int){...}(i)) and are not
// reported.
func checkGoCapture(p *Pass, g *ast.GoStmt, loopVars []map[types.Object]string) {
	var bodies []*ast.FuncLit
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		bodies = append(bodies, lit)
	}
	for _, arg := range g.Call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			bodies = append(bodies, lit)
		}
	}
	for _, lit := range bodies {
		reported := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || reported[obj] {
				return true
			}
			for _, frame := range loopVars {
				if name, ok := frame[obj]; ok {
					reported[obj] = true
					p.Reportf(id.Pos(),
						"goroutine captures loop variable %q; pass it as an argument so the goroutine's read/write set is explicit", name)
				}
			}
			return true
		})
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismPackages lists the import-path suffixes of the packages
// whose outputs must be reproducible from their seeds alone: the
// simulator core, the kernels, clustering, the serving/fault simulators
// and everything the golden and determinism tests
// (kmeans/determinism_test.go, the fault-plan goldens, the fastpath
// bit-exactness oracles) pin. The bench harness and the metrics
// registry are deliberately absent: wall-clock reads are the bench
// package's job, and the metrics shard picker uses the runtime's
// per-thread generator by design. Tests may append fixture paths.
var DeterminismPackages = []string{
	"internal/pim",
	"internal/shard",
	"internal/lutnn",
	"internal/kmeans",
	"internal/tensor",
	"internal/engine",
	"internal/serving",
	"internal/parallel",
	"internal/nn",
	"internal/autotuner",
	"internal/workload",
	"internal/dpu",
	"internal/mapping",
	"internal/energy",
	"internal/experiments",
	"internal/autograd",
	"internal/baseline",
	"internal/core",
}

// Determinism flags the three ways nondeterminism leaks into the
// simulator and kernel packages:
//
//   - wall-clock reads (time.Now / time.Since): simulated time comes
//     from the timing model, never from the host clock;
//   - the global math/rand source (rand.Intn, rand.Float64, ...): every
//     random draw threads a seeded *rand.Rand so fault plans, arrival
//     processes and k-means restarts replay exactly;
//   - map iteration feeding a float accumulator or an appended result
//     slice: Go randomizes map order, so a `for k := range m` that sums
//     floats (order-dependent rounding) or builds an output slice
//     (order-dependent contents) produces run-to-run diffs. Sort the
//     keys first, or accumulate order-independent integers.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "wall-clock read, global math/rand, or map-order-dependent accumulation in a deterministic package",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	applies := false
	for _, suffix := range DeterminismPackages {
		if strings.HasSuffix(p.PkgPath, suffix) {
			applies = true
			break
		}
	}
	if !applies {
		return
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkNondeterministicCall(p, call)
			}
			return true
		})
		// Map-range checks need the enclosing function: collecting keys
		// into a slice that is sorted before use is the sanctioned
		// de-randomizing idiom and must not be flagged.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if rng, ok := n.(*ast.RangeStmt); ok {
					checkMapRange(p, fd, rng)
				}
				return true
			})
		}
	}
}

// checkNondeterministicCall flags time.Now/time.Since and calls to
// math/rand package-level functions that draw from the global source.
// Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) are the
// sanctioned seeded path and pass.
func checkNondeterministicCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkg, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pkg.Imported().Path() {
	case "time":
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			p.Reportf(call.Pos(),
				"time.%s in a deterministic package; simulated time comes from the timing model, not the host clock", sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		switch sel.Sel.Name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return
		}
		p.Reportf(call.Pos(),
			"rand.%s draws from the global math/rand source; thread a seeded *rand.Rand so the run replays from its seed", sel.Sel.Name)
	}
}

// checkMapRange flags map-range bodies that accumulate floats or append
// to a slice declared outside the loop — the two shapes where map order
// changes the observable result. Writes keyed by the ranged key
// (out[k] = ...) are order-independent and pass, as does collecting
// keys into a slice that the enclosing function later sorts.
func checkMapRange(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := p.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Objects declared inside the loop body (or the range clause itself)
	// are order-local; only accumulation into outer state is flagged.
	local := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	outerVar := func(e ast.Expr) (types.Object, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := p.Info.Uses[id]
		if obj == nil || local[obj] {
			return nil, false
		}
		return obj, true
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			obj, isOuter := outerVar(lhs)
			if !isOuter {
				continue
			}
			// x = append(x, ...): result slice built in map order.
			if i < len(assign.Rhs) {
				if call, ok := assign.Rhs[i].(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(p, id) {
						if !sortedInFunc(p, fd, obj) {
							p.Reportf(assign.Pos(),
								"append to %q inside a map range builds a map-order-dependent slice; sort it (or range over sorted keys) before use", obj.Name())
						}
						continue
					}
				}
			}
			// x += expr (or other op-assign) on a float: rounding depends
			// on the order of addition.
			if assign.Tok.IsOperator() && assign.Tok.String() != "=" && assign.Tok.String() != ":=" {
				if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
					p.Reportf(assign.Pos(),
						"float accumulation into %q inside a map range is map-order-dependent; range over sorted keys instead", obj.Name())
				}
			}
		}
		return true
	})
}

// sortedInFunc reports whether the function passes obj to a sort or
// slices call — the collect-keys-then-sort idiom that restores a
// deterministic order before the slice is used.
func sortedInFunc(p *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkg.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if aid, ok := m.(*ast.Ident); ok && p.Info.Uses[aid] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

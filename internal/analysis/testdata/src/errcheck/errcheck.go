// Package errcheck is a pimdl-lint fixture: discarded error results.
package errcheck

import (
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

// Discards drops errors in every statement form the analyzer covers.
func Discards(f *os.File) {
	fallible()      // want: call discards error result of fallible
	pair()          // want: call discards error result of pair
	defer f.Close() // want: deferred call discards error result of f.Close
	go fallible()   // want: go statement discards error result of fallible
}

// Exempt exercises the documented exemption list: fmt printers, writes to
// stderr and to never-failing in-memory writers, and explicit blanking.
func Exempt() {
	var b strings.Builder
	fmt.Println("ok")
	fmt.Fprintf(os.Stderr, "ok")
	fmt.Fprintf(&b, "ok")
	b.WriteString("ok")
	_ = fallible()
}

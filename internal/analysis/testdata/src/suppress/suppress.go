// Package suppress is a pimdl-lint fixture: suppression directives. The
// expectations live in TestSuppression rather than want-markers, because
// a trailing marker comment would merge into the directive under test.
package suppress

// ZeroCheck has justified exact comparisons, suppressed both ways: a
// directive on the line above and a trailing directive on the same line.
func ZeroCheck(a, b float64) bool {
	//pimdl:lint-ignore float-compare sentinel zero before divide
	if a == 0 {
		return false
	}
	return a == b //pimdl:lint-ignore float-compare bit-exact oracle
}

// WildCard uses the "all" wildcard.
func WildCard(x float64) bool {
	//pimdl:lint-ignore all fixture exercises the wildcard
	return x == 1
}

// Unsuppressed still reports.
func Unsuppressed(x float64) bool {
	return x != 2
}

// Malformed sits under a reason-less directive: the directive itself is
// reported and must not suppress the comparison below it.
//
//pimdl:lint-ignore float-compare
func Malformed(x float64) bool {
	return x == 3
}

// Package hotpath exercises the hotpath analyzer: allocation sites,
// closures, interface boxing and calls to unannotated functions inside
// //pimdl:hotpath bodies, including cross-package calls resolved
// through the fact store.
package hotpath

import (
	"fmt"

	"repro/internal/analysis/testdata/src/hotpathdep"
)

type job struct {
	dst []float32
	n   int
}

// kernel is the well-behaved hot path: shape guards panic (exempt),
// writes go into caller storage, and every callee is annotated.
//
//pimdl:hotpath
func kernel(j *job, lo, hi int) {
	if hi > j.n {
		panic(fmt.Sprintf("hotpath: chunk end %d beyond %d", hi, j.n))
	}
	for i := lo; i < hi; i++ {
		j.dst[i] *= 2
	}
	hotpathdep.Annotated(j.dst[lo:hi], 1)
	helper(j.dst)
}

// helper is annotated so kernel may call it.
//
//pimdl:hotpath
func helper(dst []float32) {
	clear(dst)
}

// allocating breaks every rule the analyzer checks.
//
//pimdl:hotpath
func allocating(j *job, vs []float32) []float32 {
	buf := make([]float32, j.n) // want: make in hotpath
	buf = append(buf, 1)        // want: append in hotpath
	tmp := []float32{1, 2}      // want: slice/map literal
	helper(tmp)
	go helper(buf)              // want: go statement
	f := func() { helper(buf) } // want: closure in hotpath
	f()
	fmt.Println()                   // want: allocates by design
	vs = hotpathdep.Unannotated(vs) // want: not annotated
	sink = j.n                      // want: boxes
	box(j.n)                        // want: boxes
	box(j)
	return vs
}

// unannotated is off the hot path: nothing here is checked.
func unannotated(n int) []float32 {
	out := make([]float32, n)
	fmt.Println(len(out))
	return out
}

var sink any

// box is annotated so that calls to it only test argument boxing, not
// the unannotated-callee rule.
//
//pimdl:hotpath
func box(v any) {}

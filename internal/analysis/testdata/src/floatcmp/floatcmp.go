// Package floatcmp is a pimdl-lint fixture: exact float comparisons.
package floatcmp

// Exact compares floats with == and !=.
func Exact(a, b float64, c float32) bool {
	if a == b { // want: == on float operands
		return true
	}
	if c != 0 { // want: != on float operands
		return false
	}
	return a == 1.5 // want: == on float operands
}

// Ints may compare exactly.
func Ints(a, b int) bool { return a == b }

// Epsilon is the sanctioned style.
func Epsilon(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

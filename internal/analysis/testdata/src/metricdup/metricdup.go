// Package metricdup registers a series name the metricdiscipline
// fixture package already claimed. The duplicate is only visible to a
// cross-package run (RunPackages with shared facts); the package is
// clean in isolation, so it carries no want markers.
package metricdup

import "repro/internal/metrics"

var xpkg *metrics.Counter

func init() {
	xpkg = metrics.NewRegistry().NewCounter("pimdl_fixture_good_total",
		"same series name as the metricdiscipline fixture")
}

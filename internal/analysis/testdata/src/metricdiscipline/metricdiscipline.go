// Package metricdiscipline exercises the metricdiscipline analyzer:
// registration placement, naming convention, counter monotonicity and
// snapshot immutability.
package metricdiscipline

import "repro/internal/metrics"

var (
	good  *metrics.Counter
	late  *metrics.Counter
	depth *metrics.Gauge
)

func init() {
	r := metrics.NewRegistry()
	good = r.NewCounter("pimdl_fixture_good_total", "well-formed counter")
	depth = r.NewGauge("pimdl_fixture_queue_depth", "well-formed gauge")
	r.NewHistogram("pimdl_fixture_latency_seconds", "well-formed histogram", []float64{1, 2})
	r.NewCounter("pimdl_fixture_bad", "counter without _total")                // want: must end in _total
	r.NewGauge("pimdl_fixture_depth_total", "gauge with _total")               // want: must not end in _total
	r.NewCounter("BadName_total", "not pimdl_-prefixed")                       // want: convention
	r.NewFloatCounter("pimdl_fixture_seconds_busy_total", "unit mid-name")     // want: unit token
	r.NewCounter("pimdl_fixture_good_total", "second registration, same name") // want: already registered
	name := "pimdl_fixture_dynamic_total"
	r.NewCounter(name, "non-literal name") // want: string literal

	// The obs tracing layer's self-accounting series (pimdl_obs_*)
	// follow the same convention — pinned here so a drive-by rename in
	// internal/obs/metrics.go trips the lint, not a dashboard.
	r.NewCounter("pimdl_obs_spans_total", "well-formed obs counter")
	r.NewCounterFamily("pimdl_obs_traces_total", "well-formed obs family", "disposition")
	r.NewCounter("pimdl_obs_Ring_evictions_total", "upper-case component")        // want: convention
	r.NewHistogram("pimdl_obs_seconds_span", "unit token mid-name", []float64{1}) // want: unit token
	r.NewGauge("pimdl_obs_ring_occupancy_total", "gauge with _total")             // want: must not end in _total
}

func registerLate(r *metrics.Registry) {
	late = r.NewCounter("pimdl_fixture_late_total", "registered at call time") // want: outside an init
}

func record() {
	good.Add(-1) // want: negative Add
	good.Add(1)
	good.Inc()
	depth.Add(-1) // gauges may go down
}

func mutateFlatten(r *metrics.Registry) float64 {
	m := r.Flatten()
	m["pimdl_fixture_good_total"] = 0 // want: read-only
	return m["pimdl_fixture_queue_depth"]
}

func mutateSnapshot(r *metrics.Registry) {
	s := r.Snapshot()
	if len(s) > 0 {
		s[0].Value = 1 // want: read-only
	}
}

func readOnly(r *metrics.Registry) int {
	return len(r.Snapshot())
}

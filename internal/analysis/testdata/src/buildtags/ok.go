// Package buildtags has one file that always builds and one excluded
// by a never-satisfied build tag; the loader must skip the excluded
// file (which would not even type-check) entirely.
package buildtags

// Included reports that the unconstrained file was loaded.
func Included() int { return 1 }

//go:build pimdl_never_tag

// This file is excluded by its build tag; it deliberately fails to
// type-check so that loading it by mistake breaks the load test.
package buildtags

func Excluded() int { return undefinedSymbol }

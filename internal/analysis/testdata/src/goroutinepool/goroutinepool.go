// Package goroutinepool exercises the goroutinepool analyzer: raw go
// statements and ad-hoc sync.WaitGroup fan-outs outside the shared
// worker pool package.
package goroutinepool

import "sync"

func rawGo() {
	go work(1) // want: raw go statement
}

func adHocFanOut() {
	var wg sync.WaitGroup // want: ad-hoc sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) { // want: raw go statement
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

type poolState struct {
	wg sync.WaitGroup // want: ad-hoc sync.WaitGroup
}

func (s *poolState) wait() { s.wg.Wait() }

func sanctioned() {
	//pimdl:lint-ignore goroutinepool background signal listener outlives any pool job
	go work(2)
}

// mutexOnly shows that other sync types stay legal outside the pool.
func mutexOnly(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	work(3)
}

func work(int) {}

// Package looprange is a pimdl-lint fixture: goroutines capturing loop
// variables instead of taking them as arguments.
package looprange

import "sync"

// Captured launches goroutines that capture the range variables.
func Captured(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = i // want: goroutine captures loop variable "i"
			_ = v // want: goroutine captures loop variable "v"
		}()
	}
	wg.Wait()
}

// CapturedFor captures a classic three-clause loop index.
func CapturedFor(n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			_ = i // want: goroutine captures loop variable "i"
			done <- struct{}{}
		}()
	}
}

// Passed uses the sanctioned explicit-argument style.
func Passed(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			_ = i + v
		}(i, v)
	}
	wg.Wait()
}

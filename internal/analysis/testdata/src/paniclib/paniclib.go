// Package paniclib is a pimdl-lint fixture: crashing in library code.
package paniclib

import "fmt"

// Undocumented crashes without stating that contract in its comment.
func Undocumented(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n)) // want: panic in library function Undocumented
	}
}

// Documented panics if n is negative — the contract is in this comment.
func Documented(n int) {
	if n < 0 {
		panic("negative")
	}
}

// MustParse is a conventional crash-on-error wrapper, exempt by name.
func MustParse(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}

// shadowed calls a local function that merely shares the builtin's name.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}

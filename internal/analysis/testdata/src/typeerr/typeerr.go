// Package typeerr deliberately fails type-checking; the loader must
// surface the type error instead of analyzing a half-checked package.
package typeerr

func Broken() int { return undefinedIdentifier }

// Package stale exercises stale-directive reporting: a suppression
// that no longer silences any finding is itself reported, so dead
// directives cannot linger and bless future regressions.
package stale

func used(a, b float64) bool {
	//pimdl:lint-ignore float-compare sentinel zero before divide
	return a == b
}

func drifted(a, b int) bool {
	//pimdl:lint-ignore float-compare the compare below stopped being a float compare // want: stale suppression
	return a == b
}

// Package hotpathdep provides annotated and unannotated callees for
// the cross-package hotpath fixture: the hotpath package calls into
// this one, and the analyzer resolves the annotations through the
// shared fact store filled while this (dependency) package was
// analyzed.
package hotpathdep

// Annotated is a hot-path-safe helper.
//
//pimdl:hotpath
func Annotated(dst []float32, v float32) {
	for i := range dst {
		dst[i] += v
	}
}

// Unannotated allocates freely; hot-path callers must not use it.
func Unannotated(dst []float32) []float32 {
	return append(dst, 0)
}

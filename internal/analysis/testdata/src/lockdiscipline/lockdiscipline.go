// Package lockdiscipline exercises the lockdiscipline analyzer:
// lock-bearing values copied through receivers or parameters, and locks
// held across pool dispatches or channel sends.
package lockdiscipline

import (
	"sync"

	"repro/internal/parallel"
)

type guarded struct {
	mu   sync.Mutex
	vals []float64
}

type wrapper struct{ g guarded }

func (g guarded) valueRecv() int { // want: value receiver
	return len(g.vals)
}

func (g *guarded) ptrRecv() int { return len(g.vals) }

func byValue(w wrapper) int { // want: by-value parameter
	return len(w.g.vals)
}

func byPointer(w *wrapper) int { return len(w.g.vals) }

func (g *guarded) dispatchUnderLock(n int) {
	g.mu.Lock()
	parallel.For(n, n, func(lo, hi int) {}) // want: pool dispatch
	g.mu.Unlock()
}

func (g *guarded) sendUnderDeferredLock(ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- 1 // want: channel send
}

func (g *guarded) dispatchAfterUnlock(n int) {
	g.mu.Lock()
	g.vals = g.vals[:0]
	g.mu.Unlock()
	parallel.For(n, n, func(lo, hi int) {})
}

func (g *guarded) sendOutsideLock(ch chan int) {
	ch <- 1
	g.mu.Lock()
	g.vals = g.vals[:0]
	g.mu.Unlock()
}

// Package shapeguard is a pimdl-lint fixture: dimension-taking entry
// points with and without validation.
package shapeguard

// Raw indexes caller-supplied dimensions with no validation. (want below
// anchors to the declaration line.)
func Raw(data []float32, rows, cols int) float32 { // want: exported Raw takes dimension arguments
	return data[rows*cols-1]
}

// Alloc allocates from unchecked dimensions.
func Alloc(rows, cols int) []float32 { // want: exported Alloc takes dimension arguments
	return make([]float32, rows*cols)
}

// Guarded validates before touching memory.
func Guarded(data []float32, rows, cols int) float32 {
	if rows <= 0 || cols <= 0 || rows*cols > len(data) {
		panic("shapeguard: bad shape")
	}
	return data[rows*cols-1]
}

// Delegates inherits its guard from Guarded through the fixpoint.
func Delegates(data []float32, rows, cols int) float32 {
	return Guarded(data, rows, cols)
}

// Checked calls a validator by name.
func Checked(data []float32, rows, cols int) float32 {
	checkShape(len(data), rows, cols)
	return data[rows*cols-1]
}

func checkShape(n, rows, cols int) {
	if rows*cols > n {
		panic("shapeguard: bad shape")
	}
}

// Pure touches no memory — the FLOP-cost-model exemption.
func Pure(rows, cols int) int { return rows * cols }

// Single takes only one dimension; not a shape.
func Single(data []float32, i int) float32 { return data[i] }

// raw is unexported and therefore not an entry point.
func raw(data []float32, rows, cols int) float32 { return data[rows*cols-1] }

// Package determinism exercises the determinism analyzer: wall-clock
// reads, the global math/rand source, and map-order-dependent
// accumulation.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want: time.Now
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want: time.Since
}

func globalRand() int {
	return rand.Intn(10) // want: global math/rand
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: global math/rand
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want: float accumulation
	}
	return sum
}

func mapCollect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want: map-order-dependent slice
	}
	return out
}

// mapKeyed writes keyed by the ranged key: order-independent.
func mapKeyed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// intSum is exact integer addition: order-independent.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sortedSum collects keys and sorts before accumulating — the
// sanctioned idiom.
func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

func suppressed() time.Time {
	//pimdl:lint-ignore determinism log timestamp only, never enters the model
	return time.Now()
}

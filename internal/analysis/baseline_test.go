package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkFinding(analyzer, file string, line int, msg string) Finding {
	return Finding{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

// TestFingerprintIgnoresLine pins the stability contract: moving a
// finding within its file keeps the fingerprint, moving it across files
// or rewording the message changes it.
func TestFingerprintIgnoresLine(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	a := mkFinding("hotpath", filepath.Join(root, "pkg", "a.go"), 10, "make in hotpath f")
	b := mkFinding("hotpath", filepath.Join(root, "pkg", "a.go"), 99, "make in hotpath f")
	if Fingerprint(a, root) != Fingerprint(b, root) {
		t.Error("fingerprint must not depend on line")
	}
	c := mkFinding("hotpath", filepath.Join(root, "pkg", "b.go"), 10, "make in hotpath f")
	if Fingerprint(a, root) == Fingerprint(c, root) {
		t.Error("fingerprint must depend on file")
	}
	if !strings.Contains(Fingerprint(a, root), "pkg/a.go") {
		t.Errorf("fingerprint should use root-relative slash paths, got %q", Fingerprint(a, root))
	}
}

// TestBaselineFilterCounts checks the count semantics: a baseline entry
// with count 2 absorbs the first two occurrences of its class and the
// third survives as new, as does any unrelated finding.
func TestBaselineFilterCounts(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	file := filepath.Join(root, "pkg", "a.go")
	old := []Finding{
		mkFinding("hotpath", file, 10, "append in hotpath f"),
		mkFinding("hotpath", file, 20, "append in hotpath f"),
	}
	b := NewBaseline(old, root)

	current := []Finding{
		mkFinding("hotpath", file, 12, "append in hotpath f"),
		mkFinding("hotpath", file, 22, "append in hotpath f"),
		mkFinding("hotpath", file, 30, "append in hotpath f"),
		mkFinding("determinism", file, 5, "time.Now in simulator code"),
	}
	fresh := b.Filter(current, root)
	if len(fresh) != 2 {
		t.Fatalf("want 2 new findings, got %d: %v", len(fresh), fresh)
	}
	if fresh[0].Pos.Line != 30 || fresh[1].Analyzer != "determinism" {
		t.Errorf("wrong findings survived: %v", fresh)
	}
}

// TestBaselineRoundTrip writes and reloads a baseline and checks the
// filter behaves identically; also pins that a missing file loads as
// the empty baseline and a wrong version is rejected.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	root := string(filepath.Separator) + "repo"
	file := filepath.Join(root, "pkg", "a.go")
	findings := []Finding{
		mkFinding("hotpath", file, 10, "append in hotpath f"),
		mkFinding("hotpath", file, 20, "append in hotpath f"),
		mkFinding("goroutinepool", file, 30, "raw go statement"),
	}
	path := filepath.Join(dir, "baseline.json")
	if err := WriteBaseline(path, findings, root); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Filter(findings, root); len(got) != 0 {
		t.Errorf("round-tripped baseline should absorb its own findings, got %v", got)
	}
	if b[Fingerprint(findings[0], root)] != 2 {
		t.Errorf("want count 2 for the duplicated class, got %d", b[Fingerprint(findings[0], root)])
	}

	empty, err := LoadBaseline(filepath.Join(dir, "missing.json"))
	if err != nil {
		t.Fatalf("missing baseline must load as empty, got error %v", err)
	}
	if got := empty.Filter(findings, root); len(got) != len(findings) {
		t.Errorf("empty baseline must pass everything through, got %v", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil {
		t.Error("version mismatch must be an error")
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// UncheckedError flags statements that call a function returning an error
// and drop the result on the floor: plain expression statements, go
// statements and defer statements. Assignments to the blank identifier
// are left alone — `_ = f()` is a visible, greppable decision, whereas a
// bare `f()` is indistinguishable from a call that cannot fail.
//
// Exemptions (documented contracts, not judgment calls):
//   - fmt.Print/Printf/Println — stdout diagnostics; checking them is noise.
//   - fmt.Fprint* writing to os.Stdout/os.Stderr, a *strings.Builder or a
//     *bytes.Buffer — those writers cannot return a non-nil error
//     (strings.Builder and bytes.Buffer document this).
//   - Methods on *strings.Builder and *bytes.Buffer for the same reason.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "call discards an error result",
	Run:  runUncheckedError,
}

func runUncheckedError(p *Pass) {
	check := func(call *ast.CallExpr, how string) {
		if call == nil || !returnsError(p, call) || exemptCall(p, call) {
			return
		}
		p.Reportf(call.Pos(), "%s discards error result of %s", how, callName(p, call))
	}
	for _, file := range p.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "call")
				}
			case *ast.GoStmt:
				check(n.Call, "go statement")
			case *ast.DeferStmt:
				check(n.Call, "deferred call")
			}
			return true
		})
	}
}

// returnsError reports whether the call's result type is error or a tuple
// whose last element is error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		return isErrorType(t.At(t.Len() - 1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptCall implements the documented exemption list.
func exemptCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level fmt functions.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := p.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
			switch sel.Sel.Name {
			case "Print", "Printf", "Println":
				return true
			case "Fprint", "Fprintf", "Fprintln":
				return len(call.Args) > 0 && exemptWriter(p, call.Args[0])
			}
			return false
		}
	}
	// Methods on never-failing writers.
	if recv := p.Info.Types[sel.X]; recv.Type != nil && neverFailingWriter(recv.Type) {
		return true
	}
	return false
}

// exemptWriter reports whether the expression is os.Stdout, os.Stderr, or
// a never-failing in-memory writer.
func exemptWriter(p *Pass, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := p.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "os" {
				return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
			}
		}
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		return neverFailingWriter(tv.Type)
	}
	return false
}

func neverFailingWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// callName renders a short name for the called function.
func callName(p *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}

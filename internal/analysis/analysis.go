// Package analysis implements pimdl-lint, a project-specific static
// analyzer for the PIM-DL codebase. It is built purely on the standard
// library's go/ast, go/parser and go/types packages (the module stays
// zero-dependency) and enforces the invariants the simulator's
// correctness claims rest on: race-free goroutine fan-outs, no silently
// dropped errors, no exact float comparisons in model code, no panics in
// library packages that loaders can reach, and shape validation at every
// dimension-taking entry point.
//
// Findings can be suppressed at the reporting site with a directive
// comment, either on the same line or the line immediately above:
//
//	//pimdl:lint-ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one report from one analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Analyzer is a single named check run over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The repo loader excludes test files up front, but analyzers running on
// ad-hoc file sets (fixtures, future editor integration) still need the
// check.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns every analyzer in the order they run.
func All() []*Analyzer {
	return []*Analyzer{
		LoopRangeCapture,
		UncheckedError,
		FloatCompare,
		PanicInLibrary,
		ShapeGuard,
	}
}

// ignoreDirective is one parsed //pimdl:lint-ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const ignorePrefix = "pimdl:lint-ignore"

// collectDirectives extracts suppression directives from the comments of
// the given files, keyed by "filename:line". Malformed directives
// (missing analyzer or reason) are returned as findings so they cannot
// silently suppress nothing.
func collectDirectives(fset *token.FileSet, files []*ast.File) (map[string]*ignoreDirective, []Finding) {
	dirs := map[string]*ignoreDirective{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint-ignore",
						Pos:      pos,
						Message:  "malformed suppression: want //pimdl:lint-ignore <analyzer> <reason>",
					})
					continue
				}
				d := &ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
				dirs[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = d
			}
		}
	}
	return dirs, bad
}

// applySuppressions filters findings covered by a directive on the same
// line or the line above, marking the directives used.
func applySuppressions(findings []Finding, dirs map[string]*ignoreDirective) []Finding {
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			d, ok := dirs[fmt.Sprintf("%s:%d", f.Pos.Filename, line)]
			if ok && (d.analyzer == f.Analyzer || d.analyzer == "all") {
				d.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	return out
}

// RunPackage runs the given analyzers over one type-checked package and
// returns the surviving (non-suppressed) findings, sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			PkgPath:  pkgPath,
			Pkg:      pkg,
			Info:     info,
			findings: &findings,
		}
		a.Run(pass)
	}
	dirs, bad := collectDirectives(fset, files)
	findings = applySuppressions(findings, dirs)
	findings = append(findings, bad...)
	sortFindings(findings)
	return findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// Package analysis implements pimdl-lint, a project-specific static
// analyzer for the PIM-DL codebase. It is built purely on the standard
// library's go/ast, go/parser and go/types packages (the module stays
// zero-dependency) and enforces the invariants the simulator's
// correctness and performance claims rest on — per package: race-free
// goroutine fan-outs, no silently dropped errors, no exact float
// comparisons in model code, no panics in library packages that loaders
// can reach, shape validation at every dimension-taking entry point;
// and across packages, via a shared fact store threaded through a
// dependency-ordered multi-package run (RunPackages): all parallelism
// routed through the internal/parallel pool, no wall-clock or global-RNG
// or map-order dependence in simulator results, metric registration
// discipline (unique series, §10 naming), no copied or held-across-wait
// locks, and zero allocation in //pimdl:hotpath functions (DESIGN.md
// §7 and §11).
//
// Findings can be suppressed at the reporting site with a directive
// comment, either on the same line or the line immediately above:
//
//	//pimdl:lint-ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported,
// and on full-roster runs a directive that suppresses nothing is
// reported as stale. The baseline gate (Baseline, LoadBaseline,
// WriteBaseline) lets the driver fail only on findings not recorded in
// a committed baseline file.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one report from one analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Analyzer is a single named check run over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Facts carries analyzer-computed information across packages. A run
// over multiple packages (RunPackages) shares one Facts value and visits
// packages in dependency order, so facts recorded while analyzing a
// package are visible to every package that imports it — the mechanism
// behind the cross-package hotpath and duplicate-registration checks.
type Facts struct {
	// Hotpath holds every function annotated //pimdl:hotpath, recorded
	// by the hotpath analyzer before it checks bodies so that intra- and
	// cross-package calls resolve against the same set.
	Hotpath map[*types.Func]bool
	// MetricSeries maps each metric series name registered with a
	// string literal to its first registration site.
	MetricSeries map[string]token.Position
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{
		Hotpath:      map[*types.Func]bool{},
		MetricSeries: map[string]token.Position{},
	}
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info
	Facts    *Facts

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The repo loader excludes test files up front, but analyzers running on
// ad-hoc file sets (fixtures, future editor integration) still need the
// check.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns every analyzer in the order they run.
func All() []*Analyzer {
	return []*Analyzer{
		LoopRangeCapture,
		UncheckedError,
		FloatCompare,
		PanicInLibrary,
		ShapeGuard,
		GoroutinePool,
		Determinism,
		MetricDiscipline,
		LockDiscipline,
		Hotpath,
	}
}

// ignoreDirective is one parsed //pimdl:lint-ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const ignorePrefix = "pimdl:lint-ignore"

// collectDirectives extracts suppression directives from the comments of
// the given files, keyed by "filename:line". Malformed directives
// (missing analyzer or reason) are returned as findings so they cannot
// silently suppress nothing.
func collectDirectives(fset *token.FileSet, files []*ast.File) (map[string]*ignoreDirective, []Finding) {
	dirs := map[string]*ignoreDirective{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint-ignore",
						Pos:      pos,
						Message:  "malformed suppression: want //pimdl:lint-ignore <analyzer> <reason>",
					})
					continue
				}
				d := &ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
				dirs[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = d
			}
		}
	}
	return dirs, bad
}

// applySuppressions filters findings covered by a directive on the same
// line or the line above, marking the directives used.
func applySuppressions(findings []Finding, dirs map[string]*ignoreDirective) []Finding {
	var out []Finding
	for _, f := range findings {
		suppressed := false
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			d, ok := dirs[fmt.Sprintf("%s:%d", f.Pos.Filename, line)]
			if ok && (d.analyzer == f.Analyzer || d.analyzer == "all") {
				d.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	return out
}

// RunPackage runs the given analyzers over one type-checked package and
// returns the surviving (non-suppressed) findings, sorted by position.
// Cross-package facts start empty; multi-package runs use RunPackages.
func RunPackage(fset *token.FileSet, files []*ast.File, pkgPath string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Finding {
	p := &Package{Files: files, Fset: fset, ImportPath: pkgPath, Pkg: pkg, Info: info}
	return RunPackages([]*Package{p}, analyzers, RunOptions{})
}

// RunOptions configures a multi-package analysis run.
type RunOptions struct {
	// ReportStale reports suppression directives that silenced no
	// finding, as "lint-ignore" findings. Only meaningful when the full
	// analyzer set runs: a directive for an unselected analyzer would
	// otherwise be falsely stale, so partial (-only) runs leave it off.
	ReportStale bool
}

// RunPackages runs the analyzers over every package, in the dependency
// order Load returns, sharing one Facts store so cross-package
// invariants (hotpath call closure, unique metric registration) resolve
// against facts recorded while analyzing the packages' dependencies.
// Findings are suppressed and sorted per package, then concatenated in
// package order.
func RunPackages(pkgs []*Package, analyzers []*Analyzer, opt RunOptions) []Finding {
	facts := NewFacts()
	var all []Finding
	for _, pkg := range pkgs {
		var findings []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.ImportPath,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Facts:    facts,
				findings: &findings,
			}
			a.Run(pass)
		}
		dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
		findings = applySuppressions(findings, dirs)
		findings = append(findings, bad...)
		if opt.ReportStale {
			findings = append(findings, staleDirectives(dirs)...)
		}
		sortFindings(findings)
		all = append(all, findings...)
	}
	return all
}

// staleDirectives reports directives that suppressed nothing: a stale
// directive means the code it guarded changed (or the finding never
// existed) and the suppression now silently blesses future regressions
// at that site.
func staleDirectives(dirs map[string]*ignoreDirective) []Finding {
	var out []Finding
	for _, d := range dirs {
		if !d.used {
			out = append(out, Finding{
				Analyzer: "lint-ignore",
				Pos:      d.pos,
				Message:  fmt.Sprintf("stale suppression: no %s finding here anymore; delete the directive", d.analyzer),
			})
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Pos, fs[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

package mapping

import "repro/internal/pim"

// Orders lists all six tile-traversal permutations (P3).
var Orders = [][3]pim.Loop{
	{pim.LoopN, pim.LoopF, pim.LoopCB},
	{pim.LoopN, pim.LoopCB, pim.LoopF},
	{pim.LoopF, pim.LoopN, pim.LoopCB},
	{pim.LoopF, pim.LoopCB, pim.LoopN},
	{pim.LoopCB, pim.LoopN, pim.LoopF},
	{pim.LoopCB, pim.LoopF, pim.LoopN},
}

// Schemes lists the three LUT load schemes (P4).
var Schemes = []pim.LoadScheme{pim.StaticLoad, pim.CoarseLoad, pim.FineLoad}

// divisors returns the divisors of n in increasing order, capped to at
// most maxCount entries spread across the range (small, middle and large
// divisors are all represented).
func divisors(n, maxCount int) []int {
	var ds []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			ds = append(ds, d)
		}
	}
	if maxCount <= 0 || len(ds) <= maxCount {
		return ds
	}
	out := make([]int, 0, maxCount)
	step := float64(len(ds)-1) / float64(maxCount-1)
	last := -1
	for i := 0; i < maxCount; i++ {
		j := int(float64(i)*step + 0.5)
		if j != last {
			out = append(out, ds[j])
			last = j
		}
	}
	return out
}

// SpaceConfig bounds the enumeration so full sweeps stay tractable.
type SpaceConfig struct {
	// MaxDivisors caps the candidate list per dimension (default 12).
	MaxDivisors int
	// RequireAllPEs, when set, keeps only sub-LUT partitions that use
	// every PE (the paper pads workloads so they partition evenly).
	RequireAllPEs bool
}

func (c SpaceConfig) maxDiv() int {
	if c.MaxDivisors <= 0 {
		return 12
	}
	return c.MaxDivisors
}

// SubLUTPartitions enumerates legal (NsTile, FsTile) pairs (P1) for w on p.
func SubLUTPartitions(p *pim.Platform, w pim.Workload, cfg SpaceConfig) [][2]int {
	var out [][2]int
	for _, ns := range divisors(w.N, cfg.maxDiv()) {
		for _, fs := range divisors(w.F, cfg.maxDiv()) {
			npe := (w.N / ns) * (w.F / fs)
			if npe > p.NumPE {
				continue
			}
			if cfg.RequireAllPEs && npe != p.NumPE {
				continue
			}
			out = append(out, [2]int{ns, fs})
		}
	}
	return out
}

// MicroKernels enumerates micro-kernel candidates (P2–P4) for a fixed
// sub-LUT partition, yielding only mappings that pass platform validation.
func MicroKernels(p *pim.Platform, w pim.Workload, ns, fs int, cfg SpaceConfig, yield func(pim.Mapping)) {
	nmC := divisors(ns, cfg.maxDiv())
	fmC := divisors(fs, cfg.maxDiv())
	cbC := divisors(w.CB, cfg.maxDiv())
	for _, nm := range nmC {
		for _, fm := range fmC {
			for _, cbm := range cbC {
				for _, ord := range Orders {
					for _, sc := range Schemes {
						base := pim.Mapping{
							NsTile: ns, FsTile: fs,
							NmTile: nm, FmTile: fm, CBmTile: cbm,
							Traversal: ord, Scheme: sc,
						}
						switch sc {
						case pim.StaticLoad:
							if base.Validate(p, w) == nil {
								yield(base)
							}
						case pim.CoarseLoad:
							for _, cbl := range divisors(cbm, 4) {
								for _, fl := range divisors(fm, 4) {
									m := base
									m.CBLoadTile, m.FLoadTile = cbl, fl
									if m.Validate(p, w) == nil {
										yield(m)
									}
								}
							}
						case pim.FineLoad:
							for _, fl := range divisors(fm, 4) {
								m := base
								m.FLoadTile = fl
								if m.Validate(p, w) == nil {
									yield(m)
								}
							}
						}
					}
				}
			}
		}
	}
}

// Enumerate walks the whole legal mapping space for w on p.
func Enumerate(p *pim.Platform, w pim.Workload, cfg SpaceConfig, yield func(pim.Mapping)) {
	for _, sf := range SubLUTPartitions(p, w, cfg) {
		MicroKernels(p, w, sf[0], sf[1], cfg, yield)
	}
}

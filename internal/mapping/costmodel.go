// Package mapping implements the analytical performance model of the LUT
// operator on DRAM-PIMs (paper §5.2, Eqs. 3–10) and the enumeration of the
// auto-tuner's search space (§5.3, P1–P4).
//
// The model is a deliberate simplification of the simulator in the pim
// package: load and store counts come from closed-form reuse formulas
// (LCount/SCount in Table 2) with one DMA per logical tile load, whereas
// the simulator skips first-visit output loads and splits staging loads at
// the hardware DMA granularity. The residual disagreement is the cost-model
// error the paper quantifies in §6.6 (3.44% average, 13.73% max).
package mapping

import "repro/internal/pim"

// Cost evaluates Eqs. 3–10 for mapping m of workload w on platform p.
func Cost(p *pim.Platform, w pim.Workload, m pim.Mapping) pim.Timing {
	var t pim.Timing
	npe := m.PEs(w)

	// --- Step 1: sub-LUT partition (Eqs. 3–5). Shared-memory platforms
	// write each tensor once into device memory instead of per-PE copies.
	idxCopies, lutCopies := float64(npe), float64(npe)
	if p.SharedMemoryHost {
		idxCopies = float64(m.Groups(w))
		lutCopies = float64(m.PEsPerGroup(w))
	}
	idxBytes := float64(m.NsTile*w.CB) * idxCopies
	idxMode := pim.Scatter
	if m.PEsPerGroup(w) > 1 {
		idxMode = pim.Broadcast
	}
	t.HostIndex = p.HostTransferTime(idxBytes, idxMode)

	lutBytes := float64(w.CB*w.CT*m.FsTile*w.ElemBytes) * lutCopies
	lutMode := pim.Scatter
	if m.Groups(w) > 1 {
		lutMode = pim.Broadcast
	}
	t.HostLUT = p.HostTransferTime(lutBytes, lutMode)
	t.HostOutput = p.HostTransferTime(float64(w.OutputBytes()), pim.Gather)

	// --- Step 2: micro kernel (Eqs. 6–10).
	tn := m.NsTile / m.NmTile
	tf := m.FsTile / m.FmTile
	tcb := w.CB / m.CBmTile
	trips := map[pim.Loop]int{pim.LoopN: tn, pim.LoopF: tf, pim.LoopCB: tcb}
	visits := func(dims ...pim.Loop) int {
		in := func(l pim.Loop) bool {
			for _, d := range dims {
				if d == l {
					return true
				}
			}
			return false
		}
		deepest := -1
		for i, l := range m.Traversal {
			if in(l) {
				deepest = i
			}
		}
		prod := 1
		for i := 0; i <= deepest; i++ {
			prod *= trips[m.Traversal[i]]
		}
		return prod
	}

	var bytes, lutKBytes float64
	var ops int

	// Index MTiles (LCount_index × MTileSize_index, Eq. 8).
	iv := visits(pim.LoopN, pim.LoopCB)
	bytes += float64(iv) * float64(m.NmTile*m.CBmTile)
	ops += iv

	// Output MTiles (Eqs. 8–9): every visit stores; loads skip each tile's
	// first visit because accumulators start at zero on-chip.
	ov := visits(pim.LoopN, pim.LoopF)
	distinct := tn * tf
	bytes += float64(2*ov-distinct) * float64(m.NmTile*m.FmTile*4)
	ops += 2*ov - distinct

	// LUT traffic per load scheme (P4).
	switch m.Scheme {
	case pim.StaticLoad:
		lutKBytes += float64(w.CB * w.CT * m.FsTile * w.ElemBytes)
		ops++
	case pim.CoarseLoad:
		lv := visits(pim.LoopCB, pim.LoopF)
		per := (m.CBmTile / m.CBLoadTile) * (m.FmTile / m.FLoadTile)
		lutKBytes += float64(lv) * float64(per) * float64(m.CBLoadTile*w.CT*m.FLoadTile*w.ElemBytes)
		ops += lv * per
	case pim.FineLoad:
		elems := float64(m.NsTile) * float64(w.CB) * float64(m.FsTile)
		lutKBytes += elems * float64(w.ElemBytes)
		ops += int(elems) / m.FLoadTile
	}
	eff := p.LUTAccessEff
	if eff <= 0 {
		eff = 1
	}
	t.KernelXfer = p.LocalTransferTime(bytes+lutKBytes/eff, ops)

	// Reduce latency (Eq. 10): RCount × t_single-reduce.
	rcount := float64(m.NsTile) * float64(w.CB) * float64(m.FsTile)
	t.KernelRed = p.ReduceTime(rcount, m.Scheme)
	if p.OverlapComputeTransfer {
		if t.KernelXfer >= t.KernelRed {
			t.KernelRed = 0
		} else {
			t.KernelXfer = 0
		}
	}
	return t
}

// ModelError returns |model − sim| / sim for total operator time, the
// quantity reported in §6.6.
func ModelError(p *pim.Platform, w pim.Workload, m pim.Mapping) float64 {
	model := Cost(p, w, m).Total()
	sim := pim.SimTiming(p, w, m).Total()
	d := model - sim
	if d < 0 {
		d = -d
	}
	return d / sim
}

package mapping

import (
	"testing"

	"repro/internal/pim"
)

func bertWorkload() pim.Workload {
	// BERT-base FFN1 at batch 8 × seq 512, V=4, CT=16, INT8 tables.
	return pim.Workload{N: 4096, CB: 192, CT: 16, F: 3072, ElemBytes: 1}
}

func TestDivisorsExactWhenSmall(t *testing.T) {
	ds := divisors(12, 0)
	want := []int{1, 2, 3, 4, 6, 12}
	if len(ds) != len(want) {
		t.Fatalf("divisors(12) = %v", ds)
	}
	for i, d := range want {
		if ds[i] != d {
			t.Fatalf("divisors(12) = %v", ds)
		}
	}
}

func TestDivisorsCapped(t *testing.T) {
	ds := divisors(1<<12, 5)
	if len(ds) > 5 {
		t.Fatalf("cap ignored: %v", ds)
	}
	if ds[0] != 1 || ds[len(ds)-1] != 4096 {
		t.Fatalf("extremes must survive capping: %v", ds)
	}
}

func TestSubLUTPartitionsRespectPECount(t *testing.T) {
	p := pim.UPMEM()
	w := bertWorkload()
	for _, sf := range SubLUTPartitions(p, w, SpaceConfig{}) {
		npe := (w.N / sf[0]) * (w.F / sf[1])
		if npe > p.NumPE {
			t.Fatalf("partition %v uses %d PEs > %d", sf, npe, p.NumPE)
		}
	}
}

func TestSubLUTPartitionsAllPEsFilter(t *testing.T) {
	p := pim.UPMEM()
	w := bertWorkload()
	for _, sf := range SubLUTPartitions(p, w, SpaceConfig{RequireAllPEs: true}) {
		if npe := (w.N / sf[0]) * (w.F / sf[1]); npe != p.NumPE {
			t.Fatalf("partition %v uses %d PEs, want exactly %d", sf, npe, p.NumPE)
		}
	}
}

func TestEnumerateYieldsOnlyValidMappings(t *testing.T) {
	p := pim.UPMEM()
	w := pim.Workload{N: 256, CB: 32, CT: 16, F: 256, ElemBytes: 1}
	count := 0
	Enumerate(p, w, SpaceConfig{MaxDivisors: 4}, func(m pim.Mapping) {
		count++
		if err := m.Validate(p, w); err != nil {
			t.Fatalf("enumerated invalid mapping %v: %v", m, err)
		}
	})
	if count == 0 {
		t.Fatal("empty mapping space")
	}
	t.Logf("enumerated %d mappings", count)
}

func TestAllSchemesRepresented(t *testing.T) {
	p := pim.UPMEM()
	w := pim.Workload{N: 256, CB: 32, CT: 16, F: 256, ElemBytes: 1}
	seen := map[pim.LoadScheme]bool{}
	Enumerate(p, w, SpaceConfig{MaxDivisors: 6}, func(m pim.Mapping) {
		seen[m.Scheme] = true
	})
	for _, s := range Schemes {
		if !seen[s] {
			t.Fatalf("scheme %v missing from enumeration", s)
		}
	}
}

func TestCostPositiveAndDecomposable(t *testing.T) {
	p := pim.UPMEM()
	w := pim.Workload{N: 256, CB: 32, CT: 16, F: 256, ElemBytes: 1}
	m := pim.Mapping{NsTile: 64, FsTile: 64, NmTile: 8, FmTile: 8, CBmTile: 8,
		Traversal: [3]pim.Loop{pim.LoopN, pim.LoopF, pim.LoopCB},
		Scheme:    pim.CoarseLoad, CBLoadTile: 1, FLoadTile: 8}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	c := Cost(p, w, m)
	if c.Total() <= 0 || c.Sub() <= 0 || c.Kernel() <= 0 {
		t.Fatalf("bad cost %+v", c)
	}
}

func TestCostModelTracksSimulator(t *testing.T) {
	// The model must stay within a modest relative error of the simulator
	// across the space (paper: 3.44% average, 13.73% max on hardware; we
	// allow more headroom since our "hardware" differs in different ways).
	p := pim.UPMEM()
	w := pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
	var worst, sum float64
	var n int
	Enumerate(p, w, SpaceConfig{MaxDivisors: 4}, func(m pim.Mapping) {
		e := ModelError(p, w, m)
		sum += e
		if e > worst {
			worst = e
		}
		n++
	})
	if n == 0 {
		t.Fatal("no mappings scored")
	}
	avg := sum / float64(n)
	t.Logf("model error: avg %.2f%%, worst %.2f%% over %d mappings", avg*100, worst*100, n)
	if avg > 0.15 {
		t.Fatalf("average model error %.1f%% too high", avg*100)
	}
	if worst > 0.60 {
		t.Fatalf("worst model error %.1f%% too high", worst*100)
	}
}

func TestCostRankingMatchesSimulatorRoughly(t *testing.T) {
	// If the model says mapping A is ≥3× cheaper than B, the simulator
	// must agree on the direction.
	p := pim.UPMEM()
	w := pim.Workload{N: 512, CB: 64, CT: 16, F: 512, ElemBytes: 1}
	type scored struct {
		m    pim.Mapping
		cost float64
	}
	var all []scored
	Enumerate(p, w, SpaceConfig{MaxDivisors: 4}, func(m pim.Mapping) {
		all = append(all, scored{m, Cost(p, w, m).Total()})
	})
	for i := 0; i < len(all); i += 37 {
		for j := i + 13; j < len(all); j += 97 {
			a, b := all[i], all[j]
			if a.cost*3 < b.cost {
				sa := pim.SimTiming(p, w, a.m).Total()
				sb := pim.SimTiming(p, w, b.m).Total()
				if sa > sb {
					t.Fatalf("model says %v ≪ %v but simulator disagrees (%g vs %g)",
						a.m, b.m, sa, sb)
				}
			}
		}
	}
}

func randomLegalMapping(seed int64, p *pim.Platform, w pim.Workload) (pim.Mapping, bool) {
	var out pim.Mapping
	found := false
	i := int64(0)
	Enumerate(p, w, SpaceConfig{MaxDivisors: 4}, func(m pim.Mapping) {
		if !found || (seed+i)%17 == 0 {
			out = m
			found = true
		}
		i++
	})
	return out, found
}

func TestCostMonotoneInBankBandwidth(t *testing.T) {
	// Property: a platform with faster local banks is never slower.
	w := pim.Workload{N: 256, CB: 32, CT: 8, F: 256, ElemBytes: 1}
	for seed := int64(0); seed < 20; seed++ {
		slow := pim.UPMEM()
		fast := pim.UPMEM()
		fast.LocalBWPerPE *= 2
		m, ok := randomLegalMapping(seed, slow, w)
		if !ok {
			t.Fatal("no legal mapping")
		}
		if Cost(fast, w, m).Total() > Cost(slow, w, m).Total() {
			t.Fatalf("faster banks increased cost for %v", m)
		}
	}
}

func TestCostMonotoneInReduceRate(t *testing.T) {
	w := pim.Workload{N: 256, CB: 32, CT: 8, F: 256, ElemBytes: 1}
	for seed := int64(0); seed < 20; seed++ {
		base := pim.UPMEM()
		faster := pim.UPMEM()
		faster.ReduceCycles /= 2
		m, ok := randomLegalMapping(seed, base, w)
		if !ok {
			t.Fatal("no legal mapping")
		}
		if Cost(faster, w, m).Total() > Cost(base, w, m).Total() {
			t.Fatalf("faster reduce increased cost for %v", m)
		}
	}
}

func TestSimMatchesModelStructure(t *testing.T) {
	// Property: model and simulator agree on which component dominates
	// (kernel vs host transfers) for every mapping in a reduced space.
	p := pim.UPMEM()
	w := pim.Workload{N: 256, CB: 32, CT: 8, F: 256, ElemBytes: 1}
	checked := 0
	Enumerate(p, w, SpaceConfig{MaxDivisors: 3}, func(m pim.Mapping) {
		mod := Cost(p, w, m)
		sim := pim.SimTiming(p, w, m)
		modKernelDominant := mod.Kernel() > mod.Sub()
		simKernelDominant := sim.Kernel() > sim.Sub()
		// Only flag clear-cut disagreements (>2x margin on both sides).
		if modKernelDominant != simKernelDominant {
			ratioM := mod.Kernel() / mod.Sub()
			ratioS := sim.Kernel() / sim.Sub()
			if (ratioM > 2 || ratioM < 0.5) && (ratioS > 2 || ratioS < 0.5) {
				t.Fatalf("model and sim disagree on dominant phase for %v", m)
			}
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

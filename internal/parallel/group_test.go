package parallel

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

func TestGroupRunsAndJoins(t *testing.T) {
	var g Group
	var n atomic.Int64
	for i := 0; i < 16; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if got := n.Load(); got != 16 {
		t.Fatalf("ran %d goroutines, want 16", got)
	}
	// Reusable after Wait.
	g.Go(func() { n.Add(1) })
	g.Wait()
	if got := n.Load(); got != 17 {
		t.Fatalf("ran %d goroutines after reuse, want 17", got)
	}
}

func TestGroupGaugeReturnsToZero(t *testing.T) {
	before := metrics.Default().Flatten()["pimdl_parallel_group_goroutines"]
	var g Group
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		g.Go(func() { <-release })
	}
	close(release)
	g.Wait()
	after := metrics.Default().Flatten()["pimdl_parallel_group_goroutines"]
	if before != after {
		t.Fatalf("group gauge leaked: before %g, after %g", before, after)
	}
}

func TestGroupRepanicsFromWait(t *testing.T) {
	var g Group
	g.Go(func() { panic("boom") })
	g.Go(func() {}) // a healthy sibling must still be joined
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Wait did not re-raise the goroutine panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v does not carry the original payload", r)
		}
	}()
	g.Wait()
}

package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Group supervises a set of long-lived goroutines: the structured
// counterpart to the pool's data-parallel For. Where For fans a bounded
// chunk grid out over parked workers and returns when the grid drains, a
// Group owns goroutines with independent lifetimes — the live serving
// runtime's dispatcher, load generator, chaos controller and degrade
// lane — and guarantees they are all accounted for before Wait returns.
//
// The contract:
//
//   - Every goroutine started with Go is joined by Wait. Wait blocks
//     until all of them have returned; a Group is reusable after Wait
//     (like sync.WaitGroup, Go must not race with Wait).
//
//   - Panics do not vanish into the runtime's goroutine exit: a panic
//     inside fn is captured and re-raised from Wait on the waiting
//     goroutine (first panic wins, later ones are dropped). This keeps
//     the process-crash semantics of the pool's chunk functions while
//     making the failure attributable to the owner that called Wait.
//
//   - The live goroutine count is exposed as the
//     pimdl_parallel_group_goroutines gauge, so a leaked server
//     goroutine shows up in metrics snapshots instead of only in stack
//     dumps.
type Group struct {
	wg       sync.WaitGroup
	panicked atomic.Pointer[capturedPanic]
}

// capturedPanic preserves the first panic value raised inside the group.
type capturedPanic struct{ val any }

// Go starts fn on its own goroutine, tracked by the group.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	groupEnter()
	go func() {
		defer g.wg.Done()
		defer groupExit()
		defer func() {
			if r := recover(); r != nil {
				g.panicked.CompareAndSwap(nil, &capturedPanic{val: r})
			}
		}()
		fn()
	}()
}

// Wait blocks until every goroutine started with Go has returned, then
// re-raises the first captured panic, if any.
func (g *Group) Wait() {
	g.wg.Wait()
	if p := g.panicked.Swap(nil); p != nil {
		panic(fmt.Sprintf("parallel: goroutine panicked: %v", p.val))
	}
}

// Package parallel provides the shared bounded worker pool behind every
// host-side data-parallel kernel in PIM-DL: CCS, LUT lookup, the fused
// LUT-NN forward, GEMM, and the K-means assignment step.
//
// The package replaces the ad-hoc per-call goroutine flocks the kernels
// used to spawn. Its contract (relied on by the golden and determinism
// tests in lutnn and kmeans):
//
//   - Bounded concurrency: at most GOMAXPROCS(0) (sampled at first use)
//     goroutines ever exist pool-wide, shared by all callers. A For call
//     never blocks waiting for pool capacity — the calling goroutine
//     always executes chunks itself, and idle pool workers join in. No
//     goroutines are created per call and none leak: the pool is a fixed
//     set of workers parked on a channel.
//
//   - Deterministic chunking: the chunk grid over [0, n) is a pure
//     function of (n, work) — never of the worker count, GOMAXPROCS, or
//     scheduling. A kernel whose chunk function writes only to its
//     [lo, hi) output range and performs no cross-chunk accumulation
//     therefore produces bit-identical results at any parallelism level,
//     including the inline (work < threshold) path.
//
//   - Zero-allocation dispatch: ForCtx with a top-level function and a
//     pooled context pointer performs no heap allocation in steady state;
//     job descriptors are recycled through a sync.Pool.
//
// Panics inside a chunk function propagate exactly like panics inside the
// previous ad-hoc goroutines did: they crash the process. Kernels treat
// shape violations as programmer errors and check them before fanning out.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// threshold is the approximate scalar-op count below which For runs
// inline: scheduling a chunk costs on the order of a microsecond, so
// small kernels stay single-threaded (same constant the tensor package
// used for MatMul).
const threshold = 1 << 18

// maxChunks bounds the chunk grid. More chunks give better load balance
// (idle workers steal from the shared counter); the cap keeps per-chunk
// dispatch overhead negligible. It is a constant — not derived from the
// worker count — so the grid is identical at any GOMAXPROCS.
const maxChunks = 64

var (
	poolOnce sync.Once
	poolSize int
	jobCh    chan *job
)

// job is one For invocation's shared dispatch state. Workers and the
// caller pull chunk indices from next until the grid is exhausted.
type job struct {
	fn        func(ctx any, lo, hi int)
	ctx       any
	next      atomic.Int64
	chunks    int
	chunkSize int
	n         int
	wg        sync.WaitGroup
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

func initPool() {
	poolSize = runtime.GOMAXPROCS(0)
	if poolSize < 1 {
		poolSize = 1
	}
	jobCh = make(chan *job)
	poolMetrics.workers.Set(float64(poolSize))
	for i := 0; i < poolSize; i++ {
		go worker()
	}
}

//pimdl:hotpath
func worker() {
	for j := range jobCh {
		workerEnter()
		j.run()
		workerExit()
		j.wg.Done()
	}
}

//pimdl:hotpath
func (j *job) run() {
	chunks := int64(j.chunks)
	for {
		c := j.next.Add(1) - 1
		if c >= chunks {
			return
		}
		lo := int(c) * j.chunkSize
		hi := lo + j.chunkSize
		if hi > j.n {
			hi = j.n
		}
		j.fn(j.ctx, lo, hi)
	}
}

// Workers returns the pool size (GOMAXPROCS at first use).
func Workers() int {
	poolOnce.Do(initPool)
	return poolSize
}

// numChunks returns the deterministic chunk count for an n-element range
// with the given approximate op count. It depends only on (n, work).
//
//pimdl:hotpath
func numChunks(n, work int) int {
	if work < threshold || n < 2 {
		return 1
	}
	// One chunk per threshold's worth of work, capped; never more chunks
	// than elements.
	c := work / threshold
	if c > maxChunks {
		c = maxChunks
	}
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// For runs f over [0, n) split into deterministic chunks, executing
// chunks on the calling goroutine and any idle pool workers. work is the
// approximate scalar-op count of the whole range; below the parallel
// threshold f runs inline as f(0, n).
//
// f must treat [lo, hi) as its exclusive output range: chunk functions
// that write only to their range need no synchronisation and produce
// results independent of the worker count.
//
// The closure passed here escapes to the heap; allocation-free callers
// use ForCtx with a top-level function instead.
func For(n, work int, f func(lo, hi int)) {
	ForCtx(n, work, f, forAdapter)
}

func forAdapter(ctx any, lo, hi int) { ctx.(func(lo, hi int))(lo, hi) }

// ForCtx is For with an explicit context value: fn receives ctx verbatim
// along with its chunk range. When fn is a top-level function and ctx a
// pointer (e.g. from a sync.Pool), a ForCtx call performs zero heap
// allocations in steady state — this is the dispatch form the
// zero-allocation kernels (SearchInto, LookupInto, ForwardInto) use.
//
//pimdl:hotpath
func ForCtx(n, work int, ctx any, fn func(ctx any, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := numChunks(n, work)
	if chunks <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		recordInline()
		fn(ctx, 0, n)
		return
	}
	poolOnce.Do(initPool)

	j := jobPool.Get().(*job)
	j.fn = fn
	j.ctx = ctx
	j.next.Store(0)
	j.chunks = chunks
	j.chunkSize = (n + chunks - 1) / chunks
	j.n = n

	// Offer the job to idle workers only: an unbuffered send with a
	// default branch succeeds exactly when a worker is parked on the
	// channel, so a saturated pool degrades to inline execution instead
	// of queueing (and nested For calls cannot deadlock).
	helpers := chunks - 1
	if helpers > poolSize {
		helpers = poolSize
	}
	engaged, saturated := 0, false
	for i := 0; i < helpers; i++ {
		j.wg.Add(1)
		select {
		case jobCh <- j:
			engaged++
		default:
			j.wg.Done()
			saturated = true
			i = helpers // stop offering; no worker is idle
		}
	}
	recordDispatch(chunks, engaged, saturated)
	j.run()
	j.wg.Wait()

	j.fn = nil
	j.ctx = nil
	jobPool.Put(j)
}

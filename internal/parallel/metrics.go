package parallel

import "repro/internal/metrics"

// Pool metrics: dispatch-shape counters and worker occupancy. Everything
// here is recorded per For/ForCtx call or per job acceptance — never per
// chunk iteration — so the zero-allocation hot path gains one atomic
// enabled-check plus a handful of sharded counter increments per
// dispatch, nothing per element.
var poolMetrics = struct {
	workers   *metrics.Gauge
	busy      *metrics.Gauge
	busyPeak  *metrics.Gauge
	jobs      *metrics.Counter
	inline    *metrics.Counter
	chunks    *metrics.Counter
	helpers   *metrics.Counter
	saturated *metrics.Counter
	group     *metrics.Gauge
}{}

func init() {
	r := metrics.Default()
	m := &poolMetrics
	m.workers = r.NewGauge("pimdl_parallel_workers",
		"pool size (GOMAXPROCS at first use; 0 until the pool starts)")
	m.busy = r.NewGauge("pimdl_parallel_busy_workers",
		"pool workers currently executing a job")
	m.busyPeak = r.NewGauge("pimdl_parallel_busy_workers_peak",
		"high-water mark of concurrently busy pool workers")
	m.jobs = r.NewCounter("pimdl_parallel_jobs_total",
		"For/ForCtx calls dispatched to the chunk grid (parallel path)")
	m.inline = r.NewCounter("pimdl_parallel_inline_total",
		"For/ForCtx calls executed inline (below threshold or single-proc)")
	m.chunks = r.NewCounter("pimdl_parallel_chunks_total",
		"chunks executed across all parallel jobs")
	m.helpers = r.NewCounter("pimdl_parallel_helpers_total",
		"idle pool workers that accepted a job offer")
	m.saturated = r.NewCounter("pimdl_parallel_saturated_offers_total",
		"job offers abandoned because no worker was idle (caller degraded to fewer helpers)")
	m.group = r.NewGauge("pimdl_parallel_group_goroutines",
		"long-lived goroutines currently supervised by parallel.Group")
}

// groupEnter/groupExit bracket one supervised goroutine's lifetime.
// Unlike the gated hot-path helpers these record unconditionally: the
// gauge tracks goroutine lifecycles (a handful per server run), not
// per-dispatch events, and a leak should be visible even when recording
// was toggled off mid-run.
func groupEnter() { poolMetrics.group.Add(1) }

func groupExit() { poolMetrics.group.Add(-1) }

// recordDispatch folds one parallel dispatch: its chunk count, how many
// helpers joined, and whether the offer loop hit a saturated pool.
//
//pimdl:hotpath
func recordDispatch(chunks, helpers int, saturated bool) {
	if !metrics.Enabled() {
		return
	}
	m := &poolMetrics
	m.jobs.Inc()
	m.chunks.Add(int64(chunks))
	m.helpers.Add(int64(helpers))
	if saturated {
		m.saturated.Inc()
	}
}

// recordInline counts a call that ran on the caller's goroutine only.
//
//pimdl:hotpath
func recordInline() {
	if metrics.Enabled() {
		poolMetrics.inline.Inc()
	}
}

// workerEnter/workerExit bracket one job execution on a pool worker.
//
//pimdl:hotpath
func workerEnter() {
	if !metrics.Enabled() {
		return
	}
	poolMetrics.busy.Add(1)
	poolMetrics.busyPeak.SetMax(poolMetrics.busy.Value())
}

//pimdl:hotpath
func workerExit() {
	if metrics.Enabled() {
		poolMetrics.busy.Add(-1)
	}
}

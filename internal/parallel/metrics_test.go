package parallel

import (
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
)

// metricsDelta runs fn and returns the change of every default-registry
// series across it.
func metricsDelta(fn func()) map[string]float64 {
	before := metrics.Default().Flatten()
	fn()
	after := metrics.Default().Flatten()
	for k, v := range before {
		after[k] -= v
	}
	return after
}

// TestPoolMetricsCountDispatchShapes: inline calls and parallel jobs land
// in their respective counters, and the chunk counter matches the
// deterministic grid.
func TestPoolMetricsCountDispatchShapes(t *testing.T) {
	var ran atomic.Int64

	d := metricsDelta(func() {
		For(10, 1, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	})
	if d["pimdl_parallel_inline_total"] != 1 {
		t.Fatalf("inline delta %g, want 1", d["pimdl_parallel_inline_total"])
	}
	if d["pimdl_parallel_jobs_total"] != 0 {
		t.Fatalf("jobs delta %g, want 0", d["pimdl_parallel_jobs_total"])
	}

	const n = 1 << 12
	work := threshold * 8 // deterministic grid: 8 chunks
	d = metricsDelta(func() {
		For(n, work, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	})
	if Workers() > 1 {
		if d["pimdl_parallel_jobs_total"] != 1 {
			t.Fatalf("jobs delta %g, want 1", d["pimdl_parallel_jobs_total"])
		}
		if got, want := d["pimdl_parallel_chunks_total"], float64(numChunks(n, work)); got != want {
			t.Fatalf("chunks delta %g, want %g", got, want)
		}
		if d["pimdl_parallel_workers"] <= 0 && metrics.Default().Flatten()["pimdl_parallel_workers"] != float64(Workers()) {
			t.Fatalf("workers gauge not set to pool size")
		}
	} else {
		if d["pimdl_parallel_inline_total"] != 1 {
			t.Fatalf("single-proc fallback not counted inline")
		}
	}
	if ran.Load() != 10+n {
		t.Fatalf("ran %d elements, want %d", ran.Load(), 10+n)
	}
}

// TestPoolMetricsDisabled: with the gate off, dispatches record nothing.
func TestPoolMetricsDisabled(t *testing.T) {
	metrics.SetEnabled(false)
	defer metrics.SetEnabled(true)
	d := metricsDelta(func() {
		For(1<<12, threshold*4, func(lo, hi int) {})
	})
	for k, v := range d {
		if v != 0 {
			t.Fatalf("series %s changed by %g while disabled", k, v)
		}
	}
}

package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// bigWork is comfortably above the inline threshold, forcing the pool
// path whenever GOMAXPROCS > 1.
const bigWork = threshold * 32

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4096} {
		for _, work := range []int{0, threshold - 1, bigWork} {
			hits := make([]int32, n)
			For(n, work, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d work=%d: bad chunk [%d,%d)", n, work, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d work=%d: index %d visited %d times", n, work, i, h)
				}
			}
		}
	}
}

func TestNumChunksDeterministic(t *testing.T) {
	// The chunk grid must be a pure function of (n, work): repeated calls
	// agree, small work is inline, and the grid is bounded by both
	// maxChunks and n.
	if got := numChunks(100, threshold-1); got != 1 {
		t.Errorf("below-threshold work should be one chunk, got %d", got)
	}
	if got := numChunks(1, bigWork); got != 1 {
		t.Errorf("single element should be one chunk, got %d", got)
	}
	if got := numChunks(8, bigWork); got > 8 {
		t.Errorf("chunks %d exceed element count 8", got)
	}
	if got := numChunks(1<<20, 1<<30); got > maxChunks {
		t.Errorf("chunks %d exceed maxChunks %d", got, maxChunks)
	}
	for _, n := range []int{2, 100, 1 << 16} {
		for _, w := range []int{0, threshold, bigWork, 1 << 28} {
			if a, b := numChunks(n, w), numChunks(n, w); a != b {
				t.Fatalf("numChunks(%d,%d) not deterministic: %d vs %d", n, w, a, b)
			}
		}
	}
}

func TestForInlineBelowThreshold(t *testing.T) {
	// Below-threshold work must run as a single call on the caller's
	// goroutine: one invocation spanning the whole range.
	var calls int32
	var spanned bool
	For(1000, threshold-1, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		spanned = lo == 0 && hi == 1000
	})
	if calls != 1 || !spanned {
		t.Fatalf("expected one inline call over [0,1000), got %d calls (full span: %v)", calls, spanned)
	}
}

func TestNestedForNoDeadlock(t *testing.T) {
	// Nested For must complete even when the outer call saturates the
	// pool: the non-blocking handoff degrades inner calls to inline
	// execution instead of queueing behind their own parents.
	var total atomic.Int64
	For(64, bigWork, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(32, bigWork, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 64*32 {
		t.Fatalf("nested For covered %d elements, want %d", got, 64*32)
	}
}

func TestConcurrentCallers(t *testing.T) {
	// Many goroutines sharing the pool; under -race this doubles as the
	// regression test for the job free-list and chunk counter.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				var sum atomic.Int64
				For(512, bigWork, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						sum.Add(int64(i))
					}
				})
				if got := sum.Load(); got != 512*511/2 {
					t.Errorf("sum %d != %d", got, 512*511/2)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestGoroutinesBounded(t *testing.T) {
	// The pool is a fixed worker set: heavy use must not grow the
	// goroutine count beyond base + poolSize (+ slack for test runners).
	Workers() // force pool creation before sampling the baseline
	base := runtime.NumGoroutine()
	for it := 0; it < 100; it++ {
		For(256, bigWork, func(lo, hi int) {})
	}
	if got := runtime.NumGoroutine(); got > base+2 {
		t.Fatalf("goroutines grew from %d to %d; pool is leaking", base, got)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
}

// ForCtx with a top-level function and a pooled context must not
// allocate in steady state. AllocsPerRun pins GOMAXPROCS to 1 (inline
// dispatch); the parallel path's allocation behaviour is covered by the
// kernel benchmarks' ReportAllocs.
type testCtx struct{ sum int64 }

func testCtxFn(ctx any, lo, hi int) {
	c := ctx.(*testCtx)
	for i := lo; i < hi; i++ {
		atomic.AddInt64(&c.sum, 1)
	}
}

func TestForCtxZeroAlloc(t *testing.T) {
	ctx := &testCtx{}
	ForCtx(256, bigWork, ctx, testCtxFn) // warm-up
	allocs := testing.AllocsPerRun(10, func() {
		ForCtx(256, bigWork, ctx, testCtxFn)
	})
	if allocs != 0 {
		t.Fatalf("ForCtx allocated %v per call in steady state, want 0", allocs)
	}
}

package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussianBlobs makes n points around k well-separated centres.
func gaussianBlobs(rng *rand.Rand, n, dim, k int, sep, noise float64) ([]float32, []int) {
	centres := make([]float32, k*dim)
	for i := range centres {
		centres[i] = float32(rng.NormFloat64() * sep)
	}
	points := make([]float32, n*dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		labels[i] = c
		for d := 0; d < dim; d++ {
			points[i*dim+d] = centres[c*dim+d] + float32(rng.NormFloat64()*noise)
		}
	}
	return points, labels
}

func TestRecoverWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, labels := gaussianBlobs(rng, 300, 4, 3, 10, 0.1)
	res := Run(points, 300, 4, Config{K: 3, Seed: 2, Restarts: 3})
	// All points with the same true label must share an assignment.
	rep := map[int]int{}
	for i, l := range labels {
		if r, ok := rep[l]; !ok {
			rep[l] = res.Assign[i]
		} else if r != res.Assign[i] {
			t.Fatalf("point %d (label %d) assigned %d, expected cluster %d", i, l, res.Assign[i], r)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _ := gaussianBlobs(rng, 200, 3, 5, 5, 0.5)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res := Run(points, 200, 3, Config{K: k, Seed: 4, Restarts: 2})
		if res.Inertia > prev+1e-6 {
			t.Fatalf("inertia increased from %g to %g at k=%d", prev, res.Inertia, k)
		}
		prev = res.Inertia
	}
}

func TestSinglePointPerCluster(t *testing.T) {
	points := []float32{0, 0, 10, 10, 20, 20}
	res := Run(points, 3, 2, Config{K: 3, Seed: 1})
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n should reach zero inertia, got %g", res.Inertia)
	}
}

func TestAssignMatchesNearestCentroid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, dim, k := 50, 3, 4
		points := make([]float32, n*dim)
		for i := range points {
			points[i] = float32(rng.NormFloat64())
		}
		res := Run(points, n, dim, Config{K: k, Seed: seed})
		for i := 0; i < n; i++ {
			want, _ := Nearest(points[i*dim:(i+1)*dim], res.Centroids, k, dim)
			if res.Assign[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroidIsMeanOfCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, dim, k := 120, 2, 3
	points, _ := gaussianBlobs(rng, n, dim, k, 8, 0.2)
	res := Run(points, n, dim, Config{K: k, Seed: 6})
	sums := make([]float64, k*dim)
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		c := res.Assign[i]
		counts[c]++
		for d := 0; d < dim; d++ {
			sums[c*dim+d] += float64(points[i*dim+d])
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for d := 0; d < dim; d++ {
			mean := sums[c*dim+d] / float64(counts[c])
			got := float64(res.Centroids[c*dim+d])
			if math.Abs(mean-got) > 1e-3 {
				t.Fatalf("centroid %d dim %d: got %g, cluster mean %g", c, d, got, mean)
			}
		}
	}
}

func TestIdenticalPointsDontCrash(t *testing.T) {
	points := make([]float32, 40) // 20 identical 2-D points at origin
	res := Run(points, 20, 2, Config{K: 4, Seed: 7})
	if res.Inertia != 0 {
		t.Fatalf("identical points must have zero inertia, got %g", res.Inertia)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for _, tc := range []func(){
		func() { Run([]float32{1, 2}, 1, 2, Config{K: 0}) },
		func() { Run([]float32{1, 2, 3}, 2, 2, Config{K: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc()
		}()
	}
}

func TestRestartsImproveOrMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	points, _ := gaussianBlobs(rng, 150, 3, 6, 4, 0.8)
	one := Run(points, 150, 3, Config{K: 6, Seed: 9, Restarts: 1})
	many := Run(points, 150, 3, Config{K: 6, Seed: 9, Restarts: 8})
	if many.Inertia > one.Inertia+1e-6 {
		t.Fatalf("restarts made inertia worse: %g vs %g", many.Inertia, one.Inertia)
	}
}

func TestMiniBatchRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	points, labels := gaussianBlobs(rng, 2000, 4, 3, 10, 0.1)
	res := RunMiniBatch(points, 2000, 4, Config{K: 3, Seed: 11, MaxIter: 60}, 128)
	rep := map[int]int{}
	for i, l := range labels {
		if r, ok := rep[l]; !ok {
			rep[l] = res.Assign[i]
		} else if r != res.Assign[i] {
			t.Fatalf("mini-batch failed to separate blobs at point %d", i)
		}
	}
}

func TestMiniBatchInertiaNearFull(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	points, _ := gaussianBlobs(rng, 1500, 3, 5, 6, 0.5)
	full := Run(points, 1500, 3, Config{K: 5, Seed: 13, Restarts: 2})
	mb := RunMiniBatch(points, 1500, 3, Config{K: 5, Seed: 13, MaxIter: 80}, 128)
	if mb.Inertia > full.Inertia*1.5 {
		t.Fatalf("mini-batch inertia %g too far above full %g", mb.Inertia, full.Inertia)
	}
}

func TestMiniBatchAssignConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	points, _ := gaussianBlobs(rng, 300, 2, 4, 5, 0.4)
	res := RunMiniBatch(points, 300, 2, Config{K: 4, Seed: 15}, 64)
	for i := 0; i < 300; i++ {
		want, _ := Nearest(points[i*2:(i+1)*2], res.Centroids, 4, 2)
		if res.Assign[i] != want {
			t.Fatal("assignment inconsistent with centroids")
		}
	}
}

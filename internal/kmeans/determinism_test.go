package kmeans

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestRunDeterministicAcrossGOMAXPROCS requires bit-identical clustering
// at GOMAXPROCS 1, 2, and 8: the parallel assignment and D² steps write
// disjoint ranges and all reductions stay serial, so the worker count
// must not leak into centroids, assignments, or inertia. Codebook
// construction (and therefore every downstream LUT) depends on this.
func TestRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	const n, dim, k = 1500, 4, 16
	rng := rand.New(rand.NewSource(42))
	points := make([]float32, n*dim)
	for i := range points {
		points[i] = float32(rng.NormFloat64())
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var ref *Result
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		res := Run(points, n, dim, Config{K: k, Seed: 7, Restarts: 2})
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Centroids) != len(ref.Centroids) {
			t.Fatalf("GOMAXPROCS=%d: centroid count changed", procs)
		}
		for i := range res.Centroids {
			if math.Float32bits(res.Centroids[i]) != math.Float32bits(ref.Centroids[i]) {
				t.Fatalf("GOMAXPROCS=%d: centroid %d differs bitwise", procs, i)
			}
		}
		for i := range res.Assign {
			if res.Assign[i] != ref.Assign[i] {
				t.Fatalf("GOMAXPROCS=%d: assignment %d differs", procs, i)
			}
		}
		if res.Inertia != ref.Inertia {
			t.Fatalf("GOMAXPROCS=%d: inertia %v != %v", procs, res.Inertia, ref.Inertia)
		}
		if res.Iterations != ref.Iterations {
			t.Fatalf("GOMAXPROCS=%d: iterations %d != %d", procs, res.Iterations, ref.Iterations)
		}
	}
}

// Package kmeans implements Lloyd's algorithm with k-means++ seeding.
//
// PIM-DL's LUT-NN conversion derives each codebook by K-means clustering
// of activation sub-vectors within one column position across the
// calibration set (paper §3.1, step ❶). The clustering quality bounds the
// approximation error of the whole LUT-NN layer, so the implementation
// uses k-means++ initialization and runs to assignment convergence.
package kmeans

import (
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/parallel"
)

// Result holds the clustering output.
type Result struct {
	// Centroids is k rows of dim-length centres, flattened row-major.
	Centroids []float32
	// Assign maps each input point to its centroid index.
	Assign []int
	// Inertia is the summed squared distance of points to their centroids.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	K, Dim     int
}

// Config controls the clustering run.
type Config struct {
	K        int
	MaxIter  int // default 50
	Restarts int // independent k-means++ restarts; best inertia wins (default 1)
	Seed     int64
}

// Run clusters n points of dimension dim (points is n×dim flattened).
// If n < K the surplus centroids are duplicated from sampled points so the
// result always has exactly K centroids. It panics if K is non-positive
// or len(points) ≠ n·dim.
func Run(points []float32, n, dim int, cfg Config) *Result {
	if cfg.K <= 0 {
		panic("kmeans: K must be positive")
	}
	if n*dim != len(points) {
		panic("kmeans: points length does not match n×dim")
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		res := runOnce(points, n, dim, cfg.K, cfg.MaxIter, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best
}

func runOnce(points []float32, n, dim, k, maxIter int, rng *rand.Rand) *Result {
	cent := seedPlusPlus(points, n, dim, k, rng)
	assign := make([]int, n)
	counts := make([]int, k)
	for i := range assign {
		assign[i] = -1
	}

	var iter int
	for iter = 0; iter < maxIter; iter++ {
		// Assignment step, fanned out on the shared worker pool: each
		// point's nearest centroid is independent and chunks write
		// disjoint ranges of assign, so the result is bit-identical at
		// any worker count. The changed flag is a commutative OR, which
		// is order-free. Reductions (update step) stay serial below so
		// centroid sums keep a fixed accumulation order.
		var changedFlag atomic.Bool
		parallel.For(n, n*k*dim*3, func(lo, hi int) {
			localChanged := false
			for i := lo; i < hi; i++ {
				p := points[i*dim : (i+1)*dim]
				bi, _ := nearest(p, cent, k, dim)
				if assign[i] != bi {
					assign[i] = bi
					localChanged = true
				}
			}
			if localChanged {
				changedFlag.Store(true)
			}
		})
		if !changedFlag.Load() && iter > 0 {
			break
		}
		// Update step.
		for j := range cent {
			cent[j] = 0
		}
		for j := range counts {
			counts[j] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			dst := cent[c*dim : (c+1)*dim]
			src := points[i*dim : (i+1)*dim]
			for d := range dst {
				dst[d] += src[d]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with a random point.
				i := rng.Intn(n)
				copy(cent[c*dim:(c+1)*dim], points[i*dim:(i+1)*dim])
				continue
			}
			inv := 1 / float32(counts[c])
			dst := cent[c*dim : (c+1)*dim]
			for d := range dst {
				dst[d] *= inv
			}
		}
	}

	// Final assignment + per-point distances in parallel (disjoint
	// writes), then a serial sum so the float64 inertia accumulates in a
	// fixed order regardless of worker count.
	d2 := make([]float64, n)
	parallel.For(n, n*k*dim*3, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := points[i*dim : (i+1)*dim]
			bi, d := nearest(p, cent, k, dim)
			assign[i] = bi
			d2[i] = float64(d)
		}
	})
	var inertia float64
	for _, d := range d2 {
		inertia += d
	}
	return &Result{Centroids: cent, Assign: assign, Inertia: inertia, Iterations: iter, K: k, Dim: dim}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points []float32, n, dim, k int, rng *rand.Rand) []float32 {
	cent := make([]float32, k*dim)
	first := rng.Intn(n)
	copy(cent[:dim], points[first*dim:(first+1)*dim])
	d2 := make([]float64, n)
	for c := 1; c < k; c++ {
		// D² weights per point in parallel (disjoint writes); the total
		// is summed serially so the sampling distribution — and thus the
		// seeded RNG draws — is identical at any worker count.
		parallel.For(n, n*c*dim*3, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p := points[i*dim : (i+1)*dim]
				_, d := nearest(p, cent, c, dim)
				d2[i] = float64(d)
			}
		})
		var total float64
		for i := 0; i < n; i++ {
			total += d2[i]
		}
		var idx int
		//pimdl:lint-ignore float-compare D² mass exactly zero means all points coincide with a centroid; fall back to uniform sampling
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var acc float64
			for i := 0; i < n; i++ {
				acc += d2[i]
				if acc >= target {
					idx = i
					break
				}
			}
		}
		copy(cent[c*dim:(c+1)*dim], points[idx*dim:(idx+1)*dim])
	}
	return cent
}

// nearest returns the index of and squared distance to the closest of the
// first k centroids.
func nearest(p []float32, cent []float32, k, dim int) (int, float32) {
	best := 0
	bd := float32(math.MaxFloat32)
	for c := 0; c < k; c++ {
		cr := cent[c*dim : (c+1)*dim]
		var d float32
		for j := range p {
			diff := p[j] - cr[j]
			d += diff * diff
		}
		if d < bd {
			bd = d
			best = c
		}
	}
	return best, bd
}

// Nearest exposes closest-centroid search for external callers (the CCS
// operator reuses it in tests as a reference).
func Nearest(p []float32, cent []float32, k, dim int) (int, float32) {
	return nearest(p, cent, k, dim)
}

// RunMiniBatch clusters with the mini-batch K-means variant (Sculley):
// each iteration samples batchSize points, assigns them, and moves their
// centroids by a per-centroid decaying learning rate. It trades a little
// inertia for much lower cost on large calibration sets — BERT-scale
// conversion clusters H/V × layers × 4 codebooks over hundreds of
// thousands of sub-vectors, where full Lloyd iterations are wasteful.
// Like Run, it panics if K is non-positive or len(points) ≠ n·dim.
func RunMiniBatch(points []float32, n, dim int, cfg Config, batchSize int) *Result {
	if cfg.K <= 0 {
		panic("kmeans: K must be positive")
	}
	if n*dim != len(points) {
		panic("kmeans: points length does not match n×dim")
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Seed from a sample to keep k-means++ cheap.
	seedN := batchSize * 4
	if seedN > n {
		seedN = n
	}
	sample := make([]float32, seedN*dim)
	for i := 0; i < seedN; i++ {
		j := rng.Intn(n)
		copy(sample[i*dim:(i+1)*dim], points[j*dim:(j+1)*dim])
	}
	cent := seedPlusPlus(sample, seedN, dim, cfg.K, rng)

	counts := make([]int, cfg.K)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for b := 0; b < batchSize; b++ {
			i := rng.Intn(n)
			p := points[i*dim : (i+1)*dim]
			c, _ := nearest(p, cent, cfg.K, dim)
			counts[c]++
			eta := 1 / float32(counts[c])
			dst := cent[c*dim : (c+1)*dim]
			for d := range dst {
				dst[d] += eta * (p[d] - dst[d])
			}
		}
	}

	assign := make([]int, n)
	var inertia float64
	for i := 0; i < n; i++ {
		p := points[i*dim : (i+1)*dim]
		c, d := nearest(p, cent, cfg.K, dim)
		assign[i] = c
		inertia += float64(d)
	}
	return &Result{Centroids: cent, Assign: assign, Inertia: inertia,
		Iterations: cfg.MaxIter, K: cfg.K, Dim: dim}
}

// Package serial provides a compact binary format for deployable PIM-DL
// artifacts: codebooks, lookup tables (FP32/INT8/16-bit), converted
// layers, and tuned mapping parameters. The format is little-endian,
// versioned, and self-describing enough that a loader can reject
// mismatched shapes instead of mis-reading them.
//
// Layout: every object starts with a 4-byte magic and a uint16 version,
// followed by fixed-width dimensions and raw payload. Writers flush
// through a bufio layer; readers validate sizes before allocating.
package serial

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/lutnn"
	"repro/internal/pim"
	"repro/internal/tensor"
)

const (
	version = 1

	magicCodebooks = "PDCB"
	magicLUT       = "PDLT"
	magicQLUT      = "PDQT"
	magicHalfLUT   = "PDHT"
	magicLayer     = "PDLY"
	magicMapping   = "PDMP"
	magicTensor    = "PDTN"
	magicJSON      = "PDJS"
)

// maxDim bounds any serialized dimension; reject anything bigger as
// corrupt rather than allocating unbounded memory.
const maxDim = 1 << 28

// maxElems bounds the total element count of any serialized payload.
// Without it, a corrupt header whose per-dimension values are individually
// plausible can overflow the int product, turn into a small (or negative)
// allocation size, and panic the loader instead of returning an error.
const maxElems = 1 << 28

type writer struct {
	w   *bufio.Writer
	err error
}

func newWriter(w io.Writer) *writer { return &writer{w: bufio.NewWriter(w)} }

func (w *writer) magic(m string) { w.bytes([]byte(m)); w.u16(version) }

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }

func (w *writer) f32s(vs []float32) {
	if w.err != nil {
		return
	}
	buf := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	w.bytes(buf)
}

func (w *writer) u16s(vs []uint16) {
	if w.err != nil {
		return
	}
	buf := make([]byte, 2*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint16(buf[i*2:], v)
	}
	w.bytes(buf)
}

func (w *writer) i8s(vs []int8) {
	if w.err != nil {
		return
	}
	buf := make([]byte, len(vs))
	for i, v := range vs {
		buf[i] = byte(v)
	}
	w.bytes(buf)
}

func (w *writer) bool(v bool) {
	if v {
		w.bytes([]byte{1})
	} else {
		w.bytes([]byte{0})
	}
}

func (w *writer) flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type reader struct {
	r   *bufio.Reader
	err error
}

func newReader(r io.Reader) *reader { return &reader{r: bufio.NewReader(r)} }

func (r *reader) magic(want string) {
	got := make([]byte, 4)
	r.bytes(got)
	if r.err == nil && string(got) != want {
		r.err = fmt.Errorf("serial: bad magic %q, want %q", got, want)
	}
	if v := r.u16(); r.err == nil && v != version {
		r.err = fmt.Errorf("serial: unsupported version %d", v)
	}
}

func (r *reader) bytes(b []byte) {
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
}

func (r *reader) u16() uint16 {
	var b [2]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint16(b[:])
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) dim(what string) int {
	v := r.u32()
	if r.err == nil && (v == 0 || v > maxDim) {
		r.err = fmt.Errorf("serial: implausible %s dimension %d", what, v)
	}
	return int(v)
}

// elems returns the overflow-checked product of already-validated
// dimensions, failing the read if it exceeds maxElems. Every payload
// allocation goes through this, so a malformed model file is rejected as
// an error instead of crashing the loader.
func (r *reader) elems(what string, dims ...int) int {
	if r.err != nil {
		return 0
	}
	n := 1
	for _, d := range dims {
		if d <= 0 || n > maxElems/d {
			r.err = fmt.Errorf("serial: implausible %s element count %v", what, dims)
			return 0
		}
		n *= d
	}
	return n
}

func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *reader) f32s(n int) []float32 {
	if r.err != nil {
		return nil
	}
	buf := make([]byte, 4*n)
	r.bytes(buf)
	if r.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out
}

func (r *reader) u16s(n int) []uint16 {
	if r.err != nil {
		return nil
	}
	buf := make([]byte, 2*n)
	r.bytes(buf)
	if r.err != nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(buf[i*2:])
	}
	return out
}

func (r *reader) i8s(n int) []int8 {
	if r.err != nil {
		return nil
	}
	buf := make([]byte, n)
	r.bytes(buf)
	if r.err != nil {
		return nil
	}
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(buf[i])
	}
	return out
}

func (r *reader) bool() bool {
	var b [1]byte
	r.bytes(b[:])
	return b[0] != 0
}

// WriteCodebooks serializes c.
func WriteCodebooks(w io.Writer, c *lutnn.Codebooks) error {
	sw := newWriter(w)
	writeCodebooks(sw, c)
	return sw.flush()
}

func writeCodebooks(sw *writer, c *lutnn.Codebooks) {
	sw.magic(magicCodebooks)
	sw.u32(uint32(c.CB))
	sw.u32(uint32(c.CT))
	sw.u32(uint32(c.V))
	sw.f32s(c.Data)
}

// ReadCodebooks deserializes codebooks.
func ReadCodebooks(r io.Reader) (*lutnn.Codebooks, error) {
	return readCodebooks(newReader(r))
}

func readCodebooks(sr *reader) (*lutnn.Codebooks, error) {
	sr.magic(magicCodebooks)
	cb, ct, v := sr.dim("CB"), sr.dim("CT"), sr.dim("V")
	n := sr.elems("codebook", cb, ct, v)
	if sr.err != nil {
		return nil, sr.err
	}
	out := lutnn.NewCodebooks(cb, ct, v)
	copy(out.Data, sr.f32s(n))
	return out, sr.err
}

// WriteLUT serializes an FP32 lookup table.
func WriteLUT(w io.Writer, l *lutnn.LUT) error {
	sw := newWriter(w)
	writeLUT(sw, l)
	return sw.flush()
}

func writeLUT(sw *writer, l *lutnn.LUT) {
	sw.magic(magicLUT)
	sw.u32(uint32(l.CB))
	sw.u32(uint32(l.CT))
	sw.u32(uint32(l.F))
	sw.f32s(l.Data)
}

// ReadLUT deserializes an FP32 lookup table.
func ReadLUT(r io.Reader) (*lutnn.LUT, error) {
	return readLUT(newReader(r))
}

func readLUT(sr *reader) (*lutnn.LUT, error) {
	sr.magic(magicLUT)
	cb, ct, f := sr.dim("CB"), sr.dim("CT"), sr.dim("F")
	n := sr.elems("LUT", cb, ct, f)
	if sr.err != nil {
		return nil, sr.err
	}
	data := sr.f32s(n)
	if sr.err != nil {
		return nil, sr.err
	}
	return &lutnn.LUT{CB: cb, CT: ct, F: f, Data: data}, nil
}

// WriteQuantizedLUT serializes an INT8 table with its scale.
func WriteQuantizedLUT(w io.Writer, q *lutnn.QuantizedLUT) error {
	sw := newWriter(w)
	writeQuantizedLUT(sw, q)
	return sw.flush()
}

func writeQuantizedLUT(sw *writer, q *lutnn.QuantizedLUT) {
	sw.magic(magicQLUT)
	sw.u32(uint32(q.CB))
	sw.u32(uint32(q.CT))
	sw.u32(uint32(q.F))
	sw.f32(q.Scale)
	sw.i8s(q.Data)
}

// ReadQuantizedLUT deserializes an INT8 table.
func ReadQuantizedLUT(r io.Reader) (*lutnn.QuantizedLUT, error) {
	return readQuantizedLUT(newReader(r))
}

func readQuantizedLUT(sr *reader) (*lutnn.QuantizedLUT, error) {
	sr.magic(magicQLUT)
	cb, ct, f := sr.dim("CB"), sr.dim("CT"), sr.dim("F")
	scale := sr.f32()
	n := sr.elems("quantized LUT", cb, ct, f)
	if sr.err != nil {
		return nil, sr.err
	}
	data := sr.i8s(n)
	if sr.err != nil {
		return nil, sr.err
	}
	return &lutnn.QuantizedLUT{CB: cb, CT: ct, F: f, Scale: scale, Data: data}, nil
}

// WriteHalfLUT serializes a 16-bit table.
func WriteHalfLUT(w io.Writer, h *lutnn.HalfLUT) error {
	sw := newWriter(w)
	sw.magic(magicHalfLUT)
	sw.u32(uint32(h.CB))
	sw.u32(uint32(h.CT))
	sw.u32(uint32(h.F))
	sw.bool(h.BF)
	sw.u16s(h.Data)
	return sw.flush()
}

// ReadHalfLUT deserializes a 16-bit table.
func ReadHalfLUT(r io.Reader) (*lutnn.HalfLUT, error) {
	sr := newReader(r)
	sr.magic(magicHalfLUT)
	cb, ct, f := sr.dim("CB"), sr.dim("CT"), sr.dim("F")
	bf := sr.bool()
	n := sr.elems("half LUT", cb, ct, f)
	if sr.err != nil {
		return nil, sr.err
	}
	data := sr.u16s(n)
	if sr.err != nil {
		return nil, sr.err
	}
	return &lutnn.HalfLUT{CB: cb, CT: ct, F: f, BF: bf, Data: data}, nil
}

// WriteLayer serializes a full converted layer: codebooks, FP32 table,
// optional INT8 table and optional bias.
func WriteLayer(w io.Writer, ly *lutnn.Layer) error {
	sw := newWriter(w)
	sw.magic(magicLayer)
	sw.bool(ly.QTable != nil)
	sw.bool(ly.Bias != nil)
	writeCodebooks(sw, ly.Codebooks)
	writeLUT(sw, ly.Table)
	if ly.QTable != nil {
		writeQuantizedLUT(sw, ly.QTable)
	}
	if ly.Bias != nil {
		sw.u32(uint32(ly.Bias.Size()))
		sw.f32s(ly.Bias.Data)
	}
	return sw.flush()
}

// ReadLayer deserializes a converted layer.
func ReadLayer(r io.Reader) (*lutnn.Layer, error) {
	sr := newReader(r)
	sr.magic(magicLayer)
	hasQ := sr.bool()
	hasBias := sr.bool()
	if sr.err != nil {
		return nil, sr.err
	}
	cbs, err := readCodebooks(sr)
	if err != nil {
		return nil, err
	}
	tbl, err := readLUT(sr)
	if err != nil {
		return nil, err
	}
	ly := &lutnn.Layer{Codebooks: cbs, Table: tbl}
	if tbl.CB != cbs.CB || tbl.CT != cbs.CT {
		return nil, fmt.Errorf("serial: layer table (%d,%d) inconsistent with codebooks (%d,%d)",
			tbl.CB, tbl.CT, cbs.CB, cbs.CT)
	}
	if hasQ {
		q, err := readQuantizedLUT(sr)
		if err != nil {
			return nil, err
		}
		ly.QTable = q
	}
	if hasBias {
		n := sr.dim("bias")
		if sr.err != nil {
			return nil, sr.err
		}
		data := sr.f32s(n)
		if sr.err != nil {
			return nil, sr.err
		}
		ly.Bias = biasTensor(data)
	}
	return ly, nil
}

// WriteMapping serializes tuned mapping parameters.
func WriteMapping(w io.Writer, m pim.Mapping) error {
	sw := newWriter(w)
	sw.magic(magicMapping)
	for _, v := range []int{m.NsTile, m.FsTile, m.NmTile, m.FmTile, m.CBmTile,
		int(m.Traversal[0]), int(m.Traversal[1]), int(m.Traversal[2]),
		int(m.Scheme), m.CBLoadTile, m.FLoadTile} {
		sw.u32(uint32(v))
	}
	return sw.flush()
}

// ReadMapping deserializes tuned mapping parameters.
func ReadMapping(r io.Reader) (pim.Mapping, error) {
	sr := newReader(r)
	sr.magic(magicMapping)
	vals := make([]uint32, 11)
	for i := range vals {
		vals[i] = sr.u32()
	}
	if sr.err != nil {
		return pim.Mapping{}, sr.err
	}
	return pim.Mapping{
		NsTile: int(vals[0]), FsTile: int(vals[1]),
		NmTile: int(vals[2]), FmTile: int(vals[3]), CBmTile: int(vals[4]),
		Traversal:  [3]pim.Loop{pim.Loop(vals[5]), pim.Loop(vals[6]), pim.Loop(vals[7])},
		Scheme:     pim.LoadScheme(vals[8]),
		CBLoadTile: int(vals[9]), FLoadTile: int(vals[10]),
	}, nil
}

// Encoder writes multiple artifacts sequentially to one stream, sharing a
// single buffered writer (safe where back-to-back Write* calls are).
type Encoder struct {
	sw *writer
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{sw: newWriter(w)} }

// Layer appends a converted layer.
func (e *Encoder) Layer(ly *lutnn.Layer) error {
	e.sw.magic(magicLayer)
	e.sw.bool(ly.QTable != nil)
	e.sw.bool(ly.Bias != nil)
	writeCodebooks(e.sw, ly.Codebooks)
	writeLUT(e.sw, ly.Table)
	if ly.QTable != nil {
		writeQuantizedLUT(e.sw, ly.QTable)
	}
	if ly.Bias != nil {
		e.sw.u32(uint32(ly.Bias.Size()))
		e.sw.f32s(ly.Bias.Data)
	}
	return e.sw.err
}

// Mapping appends tuned mapping parameters.
func (e *Encoder) Mapping(m pim.Mapping) error {
	e.sw.magic(magicMapping)
	for _, v := range []int{m.NsTile, m.FsTile, m.NmTile, m.FmTile, m.CBmTile,
		int(m.Traversal[0]), int(m.Traversal[1]), int(m.Traversal[2]),
		int(m.Scheme), m.CBLoadTile, m.FLoadTile} {
		e.sw.u32(uint32(v))
	}
	return e.sw.err
}

// Flush commits buffered bytes to the underlying writer.
func (e *Encoder) Flush() error { return e.sw.flush() }

// Decoder reads artifacts sequentially from one stream. Unlike the
// one-shot Read* functions it is safe for files holding several objects:
// all reads share one buffer.
type Decoder struct {
	sr *reader
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{sr: newReader(r)} }

// Layer reads the next converted layer.
func (d *Decoder) Layer() (*lutnn.Layer, error) {
	d.sr.magic(magicLayer)
	hasQ := d.sr.bool()
	hasBias := d.sr.bool()
	if d.sr.err != nil {
		return nil, d.sr.err
	}
	cbs, err := readCodebooks(d.sr)
	if err != nil {
		return nil, err
	}
	tbl, err := readLUT(d.sr)
	if err != nil {
		return nil, err
	}
	ly := &lutnn.Layer{Codebooks: cbs, Table: tbl}
	if hasQ {
		q, err := readQuantizedLUT(d.sr)
		if err != nil {
			return nil, err
		}
		ly.QTable = q
	}
	if hasBias {
		n := d.sr.dim("bias")
		if d.sr.err != nil {
			return nil, d.sr.err
		}
		data := d.sr.f32s(n)
		if d.sr.err != nil {
			return nil, d.sr.err
		}
		ly.Bias = biasTensor(data)
	}
	return ly, nil
}

// Mapping reads the next tuned mapping.
func (d *Decoder) Mapping() (pim.Mapping, error) {
	d.sr.magic(magicMapping)
	vals := make([]uint32, 11)
	for i := range vals {
		vals[i] = d.sr.u32()
	}
	if d.sr.err != nil {
		return pim.Mapping{}, d.sr.err
	}
	return pim.Mapping{
		NsTile: int(vals[0]), FsTile: int(vals[1]),
		NmTile: int(vals[2]), FmTile: int(vals[3]), CBmTile: int(vals[4]),
		Traversal:  [3]pim.Loop{pim.Loop(vals[5]), pim.Loop(vals[6]), pim.Loop(vals[7])},
		Scheme:     pim.LoadScheme(vals[8]),
		CBLoadTile: int(vals[9]), FLoadTile: int(vals[10]),
	}, nil
}

// Tensor appends a float32 tensor (any rank).
func (e *Encoder) Tensor(t *tensor.Tensor) error {
	e.sw.bytes([]byte(magicTensor))
	e.sw.u16(version)
	shape := t.Shape()
	e.sw.u32(uint32(len(shape)))
	for _, d := range shape {
		e.sw.u32(uint32(d))
	}
	e.sw.f32s(t.Data)
	return e.sw.err
}

// Tensor reads the next float32 tensor.
func (d *Decoder) Tensor() (*tensor.Tensor, error) {
	d.sr.magic(magicTensor)
	rank := d.sr.u32()
	if d.sr.err != nil {
		return nil, d.sr.err
	}
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("serial: implausible tensor rank %d", rank)
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = d.sr.dim("tensor")
	}
	n := d.sr.elems("tensor", shape...)
	if d.sr.err != nil {
		return nil, d.sr.err
	}
	data := d.sr.f32s(n)
	if d.sr.err != nil {
		return nil, d.sr.err
	}
	return tensor.FromSlice(data, shape...), nil
}

// JSON appends a length-prefixed JSON document (used for model configs).
func (e *Encoder) JSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	e.sw.bytes([]byte(magicJSON))
	e.sw.u16(version)
	e.sw.u32(uint32(len(data)))
	e.sw.bytes(data)
	return e.sw.err
}

// JSON reads the next JSON document into v.
func (d *Decoder) JSON(v any) error {
	d.sr.magic(magicJSON)
	n := d.sr.dim("json")
	if d.sr.err != nil {
		return d.sr.err
	}
	buf := make([]byte, n)
	d.sr.bytes(buf)
	if d.sr.err != nil {
		return d.sr.err
	}
	return json.Unmarshal(buf, v)
}

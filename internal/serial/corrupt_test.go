package serial

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/lutnn"
	"repro/internal/tensor"
)

// validLayerBytes serializes one small converted layer (with INT8 table
// and bias) for the corruption tests.
func validLayerBytes(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	acts := tensor.RandN(rng, 1, 32, 8)
	w := tensor.RandN(rng, 1, 6, 8)
	bias := tensor.RandN(rng, 1, 6)
	layer, err := lutnn.Convert(w, bias, acts, lutnn.Params{V: 2, CT: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	layer.EnableINT8()
	var buf bytes.Buffer
	if err := WriteLayer(&buf, layer); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadLayerTruncated feeds every proper prefix of a valid layer file
// to the loader. Each must come back as an error — never a panic and
// never a silent success on partial data.
func TestReadLayerTruncated(t *testing.T) {
	data := validLayerBytes(t)
	for n := 0; n < len(data); n++ {
		n := n
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadLayer panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := ReadLayer(bytes.NewReader(data[:n])); err == nil {
				t.Fatalf("ReadLayer accepted a %d-byte prefix of a %d-byte file", n, len(data))
			}
		}()
	}
}

// TestReadLayerBitFlips flips one byte at a time across the header region
// and requires the loader to either reject the file or return a
// structurally consistent layer — crashing is not an option for a model
// loader.
func TestReadLayerBitFlips(t *testing.T) {
	data := validLayerBytes(t)
	limit := len(data)
	if limit > 64 {
		limit = 64 // headers and dimensions live at the front
	}
	for i := 0; i < limit; i++ {
		corrupted := append([]byte(nil), data...)
		corrupted[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadLayer panicked with byte %d flipped: %v", i, r)
				}
			}()
			ly, err := ReadLayer(bytes.NewReader(corrupted))
			if err != nil {
				return
			}
			if ly.Codebooks == nil || ly.Table == nil {
				t.Fatalf("byte %d flipped: loader returned incomplete layer without error", i)
			}
		}()
	}
}

// TestOverflowingDims hand-crafts headers whose per-dimension values pass
// the individual maxDim bound but whose product overflows int. The loader
// must reject them instead of allocating through a wrapped size.
func TestOverflowingDims(t *testing.T) {
	u32 := func(b *bytes.Buffer, v uint32) {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], v)
		b.Write(tmp[:])
	}
	header := func(magic string) *bytes.Buffer {
		var b bytes.Buffer
		b.WriteString(magic)
		b.Write([]byte{version, 0}) // little-endian uint16
		return &b
	}
	huge := uint32(1 << 27) // < maxDim each; product overflows

	b := header(magicCodebooks)
	u32(b, huge)
	u32(b, huge)
	u32(b, huge)
	if _, err := ReadCodebooks(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("ReadCodebooks accepted overflowing dimensions")
	}

	b = header(magicLUT)
	u32(b, huge)
	u32(b, huge)
	u32(b, huge)
	if _, err := ReadLUT(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("ReadLUT accepted overflowing dimensions")
	}

	b = header(magicQLUT)
	u32(b, huge)
	u32(b, huge)
	u32(b, huge)
	u32(b, 0x3f800000) // scale = 1.0
	if _, err := ReadQuantizedLUT(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("ReadQuantizedLUT accepted overflowing dimensions")
	}

	b = header(magicHalfLUT)
	u32(b, huge)
	u32(b, huge)
	u32(b, huge)
	b.WriteByte(0) // BF flag
	if _, err := ReadHalfLUT(bytes.NewReader(b.Bytes())); err == nil {
		t.Fatal("ReadHalfLUT accepted overflowing dimensions")
	}

	// Rank-8 tensor of huge dims: the shape product wraps far past int64.
	b = header(magicTensor)
	u32(b, 8)
	for i := 0; i < 8; i++ {
		u32(b, huge)
	}
	if _, err := NewDecoder(bytes.NewReader(b.Bytes())).Tensor(); err == nil {
		t.Fatal("Decoder.Tensor accepted overflowing shape")
	}
}

// TestBadMagicAndVersion covers the outermost rejects.
func TestBadMagicAndVersion(t *testing.T) {
	if _, err := ReadLayer(bytes.NewReader([]byte("XXXX\x01\x00"))); err == nil {
		t.Fatal("ReadLayer accepted bad magic")
	}
	if _, err := ReadLayer(bytes.NewReader([]byte(magicLayer + "\x63\x00"))); err == nil {
		t.Fatal("ReadLayer accepted unsupported version")
	}
}

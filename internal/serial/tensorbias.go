package serial

import "repro/internal/tensor"

// biasTensor wraps raw data as a rank-1 tensor.
func biasTensor(data []float32) *tensor.Tensor {
	return tensor.FromSlice(data, len(data))
}

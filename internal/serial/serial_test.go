package serial

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/lutnn"
	"repro/internal/pim"
	"repro/internal/tensor"
)

func testLayer(t *testing.T, seed int64, withQ, withBias bool) *lutnn.Layer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	acts := tensor.RandN(rng, 1, 64, 16)
	w := tensor.RandN(rng, 1, 24, 16)
	var bias *tensor.Tensor
	if withBias {
		bias = tensor.RandN(rng, 1, 24)
	}
	ly, err := lutnn.Convert(w, bias, acts, lutnn.Params{V: 2, CT: 8}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if withQ {
		ly.EnableINT8()
	}
	return ly
}

func TestCodebooksRoundTrip(t *testing.T) {
	ly := testLayer(t, 1, false, false)
	var buf bytes.Buffer
	if err := WriteCodebooks(&buf, ly.Codebooks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCodebooks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CB != ly.Codebooks.CB || got.CT != ly.Codebooks.CT || got.V != ly.Codebooks.V {
		t.Fatal("dims lost")
	}
	for i := range got.Data {
		if got.Data[i] != ly.Codebooks.Data[i] {
			t.Fatal("data corrupted")
		}
	}
}

func TestLUTRoundTrip(t *testing.T) {
	ly := testLayer(t, 2, false, false)
	var buf bytes.Buffer
	if err := WriteLUT(&buf, ly.Table); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLUT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != ly.Table.Data[i] {
			t.Fatal("table corrupted")
		}
	}
}

func TestQuantizedLUTRoundTrip(t *testing.T) {
	ly := testLayer(t, 3, true, false)
	var buf bytes.Buffer
	if err := WriteQuantizedLUT(&buf, ly.QTable); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuantizedLUT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != ly.QTable.Scale {
		t.Fatal("scale lost")
	}
	for i := range got.Data {
		if got.Data[i] != ly.QTable.Data[i] {
			t.Fatal("int8 data corrupted")
		}
	}
}

func TestHalfLUTRoundTrip(t *testing.T) {
	ly := testLayer(t, 4, false, false)
	for _, bf := range []bool{false, true} {
		h := ly.Table.QuantizeHalf(bf)
		var buf bytes.Buffer
		if err := WriteHalfLUT(&buf, h); err != nil {
			t.Fatal(err)
		}
		got, err := ReadHalfLUT(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.BF != bf {
			t.Fatal("BF flag lost")
		}
		for i := range got.Data {
			if got.Data[i] != h.Data[i] {
				t.Fatal("half data corrupted")
			}
		}
	}
}

func TestLayerRoundTripFullFidelity(t *testing.T) {
	for _, tc := range []struct{ q, bias bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		ly := testLayer(t, 5, tc.q, tc.bias)
		var buf bytes.Buffer
		if err := WriteLayer(&buf, ly); err != nil {
			t.Fatal(err)
		}
		got, err := ReadLayer(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// The loaded layer must produce identical outputs.
		rng := rand.New(rand.NewSource(6))
		acts := tensor.RandN(rng, 1, 16, 16)
		if !tensor.Equal(got.Forward(acts), ly.Forward(acts)) {
			t.Fatalf("q=%v bias=%v: loaded layer diverges", tc.q, tc.bias)
		}
		if (got.QTable != nil) != tc.q || (got.Bias != nil) != tc.bias {
			t.Fatal("optional fields lost")
		}
	}
}

func TestMappingRoundTrip(t *testing.T) {
	m := pim.Mapping{
		NsTile: 4096, FsTile: 32, NmTile: 128, FmTile: 32, CBmTile: 256,
		Traversal: [3]pim.Loop{pim.LoopF, pim.LoopCB, pim.LoopN},
		Scheme:    pim.CoarseLoad, CBLoadTile: 1, FLoadTile: 32,
	}
	var buf bytes.Buffer
	if err := WriteMapping(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapping(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("mapping changed: %v vs %v", got, m)
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := ReadCodebooks(bytes.NewReader([]byte("XXXX\x01\x00"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRejectsTruncated(t *testing.T) {
	ly := testLayer(t, 7, false, false)
	var buf bytes.Buffer
	if err := WriteLUT(&buf, ly.Table); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadLUT(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestRejectsWrongVersion(t *testing.T) {
	data := append([]byte(magicCodebooks), 0xff, 0x00)
	if _, err := ReadCodebooks(bytes.NewReader(data)); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestRejectsImplausibleDims(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magicLUT)
	buf.Write([]byte{1, 0})                   // version
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff}) // CB = 2^32-1
	buf.Write([]byte{1, 0, 0, 0, 1, 0, 0, 0}) // CT = F = 1
	if _, err := ReadLUT(&buf); err == nil {
		t.Fatal("implausible dims accepted")
	}
}

func TestEncoderDecoderMultiObjectStream(t *testing.T) {
	ly := testLayer(t, 8, true, true)
	m := pim.Mapping{NsTile: 16, FsTile: 8, NmTile: 4, FmTile: 4, CBmTile: 2,
		Traversal: [3]pim.Loop{pim.LoopN, pim.LoopF, pim.LoopCB},
		Scheme:    pim.StaticLoad}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Layer(ly); err != nil {
		t.Fatal(err)
	}
	if err := enc.Mapping(m); err != nil {
		t.Fatal(err)
	}
	if err := enc.Layer(ly); err != nil { // a second layer after the mapping
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	l1, err := dec.Layer()
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := dec.Mapping()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := dec.Layer()
	if err != nil {
		t.Fatal(err)
	}
	if gotM != m {
		t.Fatalf("mapping corrupted: %v", gotM)
	}
	rng := rand.New(rand.NewSource(9))
	acts := tensor.RandN(rng, 1, 8, 16)
	want := ly.Forward(acts)
	if !tensor.Equal(l1.Forward(acts), want) || !tensor.Equal(l2.Forward(acts), want) {
		t.Fatal("layers corrupted in multi-object stream")
	}
}

package engine

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/nn"
	"repro/internal/pim"
)

func TestTokensPerSecondGuard(t *testing.T) {
	// Unestimated or degenerate reports must not produce ±Inf throughput.
	if got := (DecodeReport{}).TokensPerSecond(); got != 0 {
		t.Fatalf("zero step time → %g tokens/s, want 0", got)
	}
	if got := (DecodeReport{PerTokenTime: -1}).TokensPerSecond(); got != 0 {
		t.Fatalf("negative step time → %g tokens/s, want 0", got)
	}
	// Batch multiplies throughput; Batch 0 means 1.
	d := DecodeReport{PerTokenTime: 0.5}
	if got := d.TokensPerSecond(); got != 2 {
		t.Fatalf("unbatched throughput %g, want 2", got)
	}
	d.Batch = 8
	if got := d.TokensPerSecond(); got != 16 {
		t.Fatalf("batched throughput %g, want 16", got)
	}
}

func decodeLUTCfg(batch int) Config {
	m := nn.BERTBase
	m.Layers = 2 // keep tuning cheap in unit tests
	return Config{
		Model:        m,
		Batch:        batch,
		Params:       lutnn.Params{V: 4, CT: 16},
		Platform:     pim.UPMEM(),
		Host:         baseline.UPMEMHost(),
		HostPrec:     baseline.INT8,
		LUTElemBytes: 1,
		Space:        mapping.SpaceConfig{MaxDivisors: 8},
	}
}

func TestEstimateDecodeLUT(t *testing.T) {
	e := New()
	rep, err := e.EstimateDecodeLUT(decodeLUTCfg(1), 128)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerTokenTime <= 0 || rep.TokensPerSecond() <= 0 {
		t.Fatalf("degenerate decode estimate: %+v", rep)
	}
	if rep.Batch != 1 {
		t.Fatalf("batch %d, want 1", rep.Batch)
	}

	// Longer context costs more (KV streaming term).
	long, err := e.EstimateDecodeLUT(decodeLUTCfg(1), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if long.PerTokenTime <= rep.PerTokenTime {
		t.Fatalf("context 1024 (%g) not slower than 128 (%g)",
			long.PerTokenTime, rep.PerTokenTime)
	}

	// Continuous batching amortizes the per-step fixed costs: 8 sequences
	// per step must deliver more tokens/s than 1, and Batch=0 must behave
	// exactly like Batch=1.
	b8, err := e.EstimateDecodeLUT(decodeLUTCfg(8), 128)
	if err != nil {
		t.Fatal(err)
	}
	if b8.TokensPerSecond() <= rep.TokensPerSecond() {
		t.Fatalf("batched decode (%g tok/s) not faster than solo (%g tok/s)",
			b8.TokensPerSecond(), rep.TokensPerSecond())
	}
	b0, err := e.EstimateDecodeLUT(decodeLUTCfg(0), 128)
	if err != nil {
		t.Fatal(err)
	}
	if b0.PerTokenTime != rep.PerTokenTime || b0.Batch != 1 {
		t.Fatalf("Batch=0 (%+v) differs from Batch=1 (%+v)", b0, rep)
	}

	// Scales ~linearly with layers, like the other decode estimators.
	cfg4 := decodeLUTCfg(1)
	cfg4.Model.Layers = 4
	l4, err := e.EstimateDecodeLUT(cfg4, 128)
	if err != nil {
		t.Fatal(err)
	}
	ratio := l4.PerTokenTime / rep.PerTokenTime
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("layer scaling 2→4 gave ratio %g, want ≈2", ratio)
	}

	// Bad V must error, not panic.
	bad := decodeLUTCfg(1)
	bad.Params.V = 7
	if _, err := e.EstimateDecodeLUT(bad, 128); err == nil {
		t.Fatal("V not dividing H accepted")
	}
}

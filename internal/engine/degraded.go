package engine

import (
	"errors"
	"fmt"

	"repro/internal/nn"
	"repro/internal/pim"
)

// This file estimates end-to-end latency under hardware misbehaviour: the
// graceful-degradation story for the serving stack. A pim.FaultPlan is
// applied to the platform; LUT operators whose tuned mapping still fits
// the surviving array run degraded (re-dispatch rounds, stragglers, DMA
// retry inflation — pim.SimTimingWithFaults), and irrecoverable ones fall
// back to plain host GEMM through the same model EstimateHost uses, so
// the serving simulator always has a finite latency to quote.

// DegradedReport is the engine's estimate for one configuration under a
// fault plan.
type DegradedReport struct {
	Report
	Plan pim.FaultPlan
	// HealthyPEs is the number of live PEs the plan leaves.
	HealthyPEs int
	// FallbackOps counts LUT operators that fell back to host GEMM
	// because the array could no longer host their mapping.
	FallbackOps int
}

// EstimateDegraded produces the PIM-DL report under a fault plan. A zero
// plan reproduces EstimatePIMDL exactly. Mappings are tuned for the
// healthy array (tuning happens at model-load time, before faults
// accumulate) and then evaluated against the degraded one.
func (e *Engine) EstimateDegraded(cfg Config, plan pim.FaultPlan) (*DegradedReport, error) {
	if plan.IsZero() {
		rep, err := e.EstimatePIMDL(cfg)
		if err != nil {
			return nil, err
		}
		return &DegradedReport{Report: *rep, Plan: plan, HealthyPEs: cfg.Platform.NumPE}, nil
	}
	af, err := plan.Instantiate(cfg.Platform.NumPE)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	c := cfg.Model
	n := cfg.rows()
	rep := &DegradedReport{
		Report: Report{Config: fmt.Sprintf("PIM-DL/%s/degraded", cfg.Platform.Name), Batch: cfg.Batch, SeqLen: c.SeqLen,
			ArrayPEs: cfg.Platform.NumPE},
		Plan:       plan,
		HealthyPEs: af.Healthy(),
	}
	// Elementwise work runs on whatever survives of the array; with no
	// survivors the whole model runs on the host.
	pimAlive := rep.HealthyPEs > 0
	degradedPlat := *cfg.Platform
	degradedPlat.NumPE = rep.HealthyPEs

	for layer := 0; layer < c.Layers; layer++ {
		for _, role := range nn.Roles {
			f, h := c.LinearShape(role)
			if h%cfg.Params.V != 0 {
				return nil, fmt.Errorf("engine: V=%d does not divide %d (%v)", cfg.Params.V, h, role)
			}
			w := pim.Workload{N: n, CB: h / cfg.Params.V, CT: cfg.Params.CT, F: f, ElemBytes: cfg.LUTElemBytes}
			fallback := !pimAlive
			var lutTime float64
			var rec pim.Recovery
			if pimAlive {
				tuned, err := e.TunedMapping(cfg.Platform, w, cfg.Space)
				if err != nil {
					return nil, err
				}
				dt, err := pim.SimTimingWithFaults(cfg.Platform, w, tuned.Mapping, plan)
				switch {
				case errors.Is(err, pim.ErrIrrecoverable):
					fallback = true
				case err != nil:
					return nil, fmt.Errorf("engine: degraded timing for %v: %w", role, err)
				default:
					lutTime = dt.Total() - dt.HostLUT
					if rec, err = pim.PlanRecovery(cfg.Platform, w, tuned.Mapping, plan); err != nil {
						return nil, fmt.Errorf("engine: recovery for %v: %w", role, err)
					}
				}
			}
			if fallback {
				t := cfg.Host.GEMMTime(n, h, f, cfg.HostPrec)
				rep.Ops = append(rep.Ops, OpCost{Name: "GEMM-" + role.String() + "-fallback",
					Class: ClassOther, Layer: layer, Role: role, Time: t, Fallback: true})
				rep.HostTime += t
				rep.FallbackOps++
				continue
			}
			ccs := cfg.Host.CCSTime(n, h, cfg.Params.CT, cfg.HostPrec)
			recCopy := rec
			rep.Ops = append(rep.Ops,
				OpCost{Name: "CCS-" + role.String(), Class: ClassCCS, Layer: layer, Role: role, Time: ccs},
				OpCost{Name: "LUT-" + role.String(), Class: ClassLUT, Layer: layer, Role: role,
					Time: lutTime, OnPIM: true, Recovery: &recCopy},
			)
			rep.HostTime += ccs
			rep.PIMTime += lutTime
		}
		att := cfg.Host.AttentionTime(cfg.Batch, c.SeqLen, c.Hidden, c.Heads, cfg.HostPrec)
		elems := 4*n*c.Hidden + n*c.FFN
		// Elementwise runs on whichever side the degradation leaves
		// faster: a nearly-dead array loses its aggregate-bandwidth edge
		// and the host takes the work back.
		elemHost := cfg.Host.ElementwiseTime(elems)
		elem, onPIM := elemHost, false
		if pimAlive {
			if elemPIM := pim.ElementwiseOnPIM(&degradedPlat, elems); elemPIM < elemHost {
				elem, onPIM = elemPIM, true
			}
		}
		rep.Ops = append(rep.Ops,
			OpCost{Name: "Attention", Class: ClassOther, Layer: layer, Time: att},
			OpCost{Name: "Elementwise", Class: ClassOther, Layer: layer, Time: elem, OnPIM: onPIM},
		)
		rep.HostTime += att
		if onPIM {
			rep.PIMTime += elem
		} else {
			rep.HostTime += elem
		}
	}
	recordReport(&rep.Report)
	return rep, nil
}

package engine

import (
	"fmt"
	"strings"
)

// Timeline renders the report's operator schedule as a two-lane ASCII
// Gantt chart (HOST and PIM), width characters wide, covering the first
// maxLayers layers. It makes the offload structure visible at a glance:
// PIM-DL interleaves short host phases (CCS, attention) with long PIM
// phases (LUT reduce), while host-only configurations never leave the
// HOST lane.
func (r *Report) Timeline(width, maxLayers int) string {
	if width < 20 {
		width = 20
	}
	var ops []OpCost
	var span float64
	for _, op := range r.Ops {
		if op.Layer >= maxLayers {
			continue
		}
		ops = append(ops, op)
		span += op.Time
	}
	//pimdl:lint-ignore float-compare span is a sum of non-negative times; exactly zero means no ops rendered
	if span == 0 {
		return "(empty timeline)\n"
	}

	host := make([]byte, width)
	pims := make([]byte, width)
	for i := range host {
		host[i] = ' '
		pims[i] = ' '
	}
	glyph := func(op OpCost) byte {
		switch {
		case op.Class == ClassCCS:
			return 'c'
		case op.Class == ClassLUT:
			return 'L'
		case strings.HasPrefix(op.Name, "Attention"):
			return 'a'
		case strings.HasPrefix(op.Name, "Elementwise"):
			return 'e'
		default:
			return 'G'
		}
	}
	pos := 0.0
	for _, op := range ops {
		lo := int(pos / span * float64(width))
		pos += op.Time
		hi := int(pos / span * float64(width))
		if hi <= lo {
			hi = lo + 1 // every op gets at least one cell
		}
		if hi > width {
			hi = width
		}
		lane := host
		if op.OnPIM {
			lane = pims
		}
		g := glyph(op)
		for i := lo; i < hi; i++ {
			lane[i] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — first %d layer(s), %.4g s\n", r.Config, maxLayers, span)
	fmt.Fprintf(&b, "HOST |%s|\n", host)
	fmt.Fprintf(&b, "PIM  |%s|\n", pims)
	b.WriteString("      c=CCS a=attention e=elementwise L=LUT reduce G=GEMM\n")
	return b.String()
}

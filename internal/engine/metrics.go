package engine

import (
	"strings"

	"repro/internal/metrics"
)

// Engine-layer metrics: per-OpClass and per-LinearRole invocation and
// modelled-time counters, accumulated every time an Estimate* method
// produces a report. The class split mirrors Fig. 11-(a) (LUT / CCS /
// Other) and the role split mirrors Fig. 11-(b) (QKV / Out / FFN1 /
// FFN2), so a metrics snapshot of a serving process carries the same
// breakdown the paper plots.
var (
	engEstimates    *metrics.Counter
	engOps          *metrics.CounterFamily
	engClassSeconds *metrics.FloatCounterFamily
	engRoleSeconds  *metrics.FloatCounterFamily
	engFallbackOps  *metrics.Counter
)

func init() {
	r := metrics.Default()
	engEstimates = r.NewCounter("pimdl_engine_estimates_total",
		"end-to-end reports produced (all configurations)")
	engOps = r.NewCounterFamily("pimdl_engine_ops_total",
		"scheduled operator instances by class (Fig. 11-a buckets)", "class")
	engClassSeconds = r.NewFloatCounterFamily("pimdl_engine_class_seconds_total",
		"modelled operator seconds by class", "class")
	engRoleSeconds = r.NewFloatCounterFamily("pimdl_engine_role_seconds_total",
		"modelled linear-operator seconds by role (CCS+LUT or GEMM)", "role")
	engFallbackOps = r.NewCounter("pimdl_engine_fallback_ops_total",
		"LUT operators that ran as host GEMM because the degraded array could not host them")
}

// recordReport folds one report's schedule into the engine counters.
func recordReport(rep *Report) {
	if !metrics.Enabled() {
		return
	}
	engEstimates.Inc()
	for _, op := range rep.Ops {
		class := op.Class.String()
		engOps.With(class).Inc()
		engClassSeconds.With(class).Add(op.Time)
		// Linear-derived ops (the RoleTime condition): LUT/CCS pairs in
		// PIM-DL mode, GEMMs elsewhere.
		if op.Class == ClassLUT || op.Class == ClassCCS || strings.HasPrefix(op.Name, "GEMM-") {
			engRoleSeconds.With(op.Role.String()).Add(op.Time)
		}
		if op.Fallback {
			engFallbackOps.Inc()
		}
	}
}

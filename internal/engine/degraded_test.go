package engine

import (
	"testing"

	"repro/internal/pim"
)

func TestDegradedZeroPlanMatchesPIMDL(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	healthy, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := e.EstimateDegraded(cfg, pim.FaultPlan{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if deg.Total() != healthy.Total() {
		t.Fatalf("zero plan changed the estimate: %g vs %g", deg.Total(), healthy.Total())
	}
	if deg.FallbackOps != 0 || deg.HealthyPEs != cfg.Platform.NumPE {
		t.Fatalf("zero plan degraded state: %+v", deg)
	}
}

// TestDegradedStragglersSlowTheArray: a straggler-only plan keeps every
// PE alive (no fallback), attaches Recovery reports to the LUT operators,
// and strictly inflates the estimate.
func TestDegradedStragglersSlowTheArray(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	healthy, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := e.EstimateDegraded(cfg, pim.FaultPlan{Seed: 4, StragglerSpread: 1, FlipRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if deg.FallbackOps != 0 {
		t.Fatalf("straggler-only plan forced %d fallbacks", deg.FallbackOps)
	}
	if deg.Total() <= healthy.Total() {
		t.Fatalf("degraded estimate not slower: %g vs %g", deg.Total(), healthy.Total())
	}
	nLUT := 0
	for _, op := range deg.Ops {
		if op.Class == ClassLUT {
			nLUT++
			if op.Recovery == nil || op.Recovery.WorstSlowdown <= 1 {
				t.Fatalf("LUT op %s missing straggler recovery: %+v", op.Name, op.Recovery)
			}
		}
	}
	if nLUT == 0 {
		t.Fatal("no LUT ops in degraded report")
	}
}

// TestDegradedFallsBackToHostGEMM: a plan that kills nearly the whole
// array makes every LUT mapping irrecoverable; the engine must quote the
// host-GEMM path instead of failing.
func TestDegradedFallsBackToHostGEMM(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	deg, err := e.EstimateDegraded(cfg, pim.FaultPlan{Seed: 5, DeadPEFraction: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if deg.FallbackOps == 0 {
		t.Fatal("near-total array loss produced no fallbacks")
	}
	if deg.HealthyPEs >= cfg.Platform.NumPE/2 {
		t.Fatalf("healthy %d of %d", deg.HealthyPEs, cfg.Platform.NumPE)
	}
	for _, op := range deg.Ops {
		if op.Fallback {
			if op.OnPIM || op.Time <= 0 {
				t.Fatalf("fallback op malformed: %+v", op)
			}
		}
		if op.Class == ClassLUT || op.Class == ClassCCS {
			t.Fatalf("irrecoverable role still scheduled as %v", op.Class)
		}
	}
	if deg.Total() <= 0 {
		t.Fatal("degraded total not positive")
	}
	// The fallback estimate must track the host estimate for the same
	// linear layers — it uses the same GEMM model.
	host := e.EstimateHost(cfg)
	if deg.Total() > 2*host.Total() {
		t.Fatalf("fallback estimate %g wildly above host %g", deg.Total(), host.Total())
	}
}

// TestDegradedDeterministic: the same plan yields the same estimate.
func TestDegradedDeterministic(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	plan := pim.FaultPlan{Seed: 6, DeadPEFraction: 0.25, FlipRate: 0.02, StragglerSpread: 0.5}
	a, err := e.EstimateDegraded(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.EstimateDegraded(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Total() != b.Total() || a.FallbackOps != b.FallbackOps {
		t.Fatal("degraded estimate not deterministic")
	}
}

package engine

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/nn"
	"repro/internal/pim"
)

func bertBaseCfg() Config {
	return Config{
		Model:        nn.BERTBase,
		Batch:        64,
		Params:       lutnn.Params{V: 4, CT: 16},
		Platform:     pim.UPMEM(),
		Host:         baseline.UPMEMHost(),
		HostPrec:     baseline.INT8,
		LUTElemBytes: 1,
		Space:        mapping.SpaceConfig{MaxDivisors: 8},
	}
}

func TestEstimatePIMDLProducesBreakdown(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 2 // keep tuning cheap in unit tests
	rep, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lut := rep.ClassTime(ClassLUT)
	ccs := rep.ClassTime(ClassCCS)
	other := rep.ClassTime(ClassOther)
	if lut <= 0 || ccs <= 0 || other <= 0 {
		t.Fatalf("breakdown has zero class: lut %g ccs %g other %g", lut, ccs, other)
	}
	if got := lut + ccs + other; !close(got, rep.Total(), 1e-9) {
		t.Fatalf("classes (%g) don't sum to total (%g)", got, rep.Total())
	}
	// Fig. 11-a: the LUT operator dominates (51–60% of total on the real
	// hardware; we accept a broad window).
	if frac := lut / rep.Total(); frac < 0.3 || frac > 0.9 {
		t.Fatalf("LUT fraction %.2f outside plausible window", frac)
	}
	// 2 layers × (4 CCS + 4 LUT + attention + elementwise).
	if len(rep.Ops) != 2*10 {
		t.Fatalf("op count %d", len(rep.Ops))
	}
}

func TestMappingCacheReused(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 3
	if _, err := e.EstimatePIMDL(cfg); err != nil {
		t.Fatal(err)
	}
	// BERT has 4 distinct linear shapes regardless of layer count; FFN2's
	// workload differs (CB from FFN dim), QKV/O/FFN1 share H but differ in
	// F. So exactly 4 cache entries.
	if got := len(e.cache); got != 4 {
		t.Fatalf("cache entries %d, want 4", got)
	}
}

func TestPIMDLBeatsPIMGEMMEndToEnd(t *testing.T) {
	// The paper's headline: 22.6×–37.1× over GEMM-based inference on the
	// same PIM hardware. At unit-test scale we check >5×.
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 2
	dl, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := e.EstimatePIMGEMM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := gm.Total() / dl.Total()
	t.Logf("PIM-DL %.3gs vs PIM-GEMM %.3gs → %.1f×", dl.Total(), gm.Total(), speedup)
	if speedup < 5 {
		t.Fatalf("PIM-DL speedup over PIM-GEMM only %.1f×", speedup)
	}
}

func TestHostEstimateAllOnHost(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 2
	cfg.Host = baseline.CPUServer()
	rep := e.EstimateHost(cfg)
	if rep.PIMTime != 0 {
		t.Fatal("host config must not use PIM")
	}
	if !close(rep.HostTime, rep.Total(), 1e-9) {
		t.Fatal("host time must equal total")
	}
	for _, op := range rep.Ops {
		if op.OnPIM {
			t.Fatalf("op %s placed on PIM", op.Name)
		}
	}
}

func TestThroughputDefinition(t *testing.T) {
	r := &Report{Batch: 64, Ops: []OpCost{{Time: 2}}}
	if r.Throughput() != 32 {
		t.Fatalf("throughput %g", r.Throughput())
	}
}

func TestRoleTimeCoversCCSPlusLUT(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	rep, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, role := range nn.Roles {
		sum += rep.RoleTime(role)
	}
	if want := rep.ClassTime(ClassLUT) + rep.ClassTime(ClassCCS); !close(sum, want, 1e-9) {
		t.Fatalf("role times %g don't cover CCS+LUT %g", sum, want)
	}
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+b)
}

func TestInvalidVRejected(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	cfg.Params.V = 5 // does not divide 768
	if _, err := e.EstimatePIMDL(cfg); err == nil {
		t.Fatal("expected error for non-dividing V")
	}
}

func TestLargerBatchHigherThroughputOnUPMEM(t *testing.T) {
	// Fig. 12-c: PIM-DL throughput improves with batch (host-PIM transfer
	// overheads amortize).
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	cfg.Batch = 8
	small, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = 64
	big, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if big.Throughput() <= small.Throughput() {
		t.Fatalf("batch 64 throughput %.3g ≤ batch 8 %.3g", big.Throughput(), small.Throughput())
	}
}

func TestHBMPIMConfigRuns(t *testing.T) {
	e := New()
	cfg := Config{
		Model:        nn.BERTBase,
		Batch:        4,
		Params:       lutnn.Params{V: 4, CT: 16},
		Platform:     pim.HBMPIM(),
		Host:         baseline.A2(),
		HostPrec:     baseline.FP16,
		LUTElemBytes: 2,
		Space:        mapping.SpaceConfig{MaxDivisors: 6},
	}
	cfg.Model.Layers = 1
	cfg.Model.SeqLen = 128
	dl, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := e.EstimatePIMGEMM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dl.Total() <= 0 || gm.Total() <= 0 {
		t.Fatal("non-positive totals")
	}
	if gm.Total()/dl.Total() < 2 {
		t.Fatalf("PIM-DL on HBM-PIM should beat PIM-GEMM, ratio %.2f", gm.Total()/dl.Total())
	}
}

func TestTimelineRendering(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 2
	rep, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline(80, 1)
	if !strings.Contains(tl, "HOST |") || !strings.Contains(tl, "PIM  |") {
		t.Fatalf("missing lanes:\n%s", tl)
	}
	// PIM-DL must show work on both lanes.
	lines := strings.Split(tl, "\n")
	var hostLane, pimLane string
	for _, l := range lines {
		if strings.HasPrefix(l, "HOST |") {
			hostLane = l
		}
		if strings.HasPrefix(l, "PIM  |") {
			pimLane = l
		}
	}
	if !strings.ContainsAny(hostLane, "ca") {
		t.Fatalf("host lane empty:\n%s", tl)
	}
	if !strings.Contains(pimLane, "L") {
		t.Fatalf("PIM lane missing LUT work:\n%s", tl)
	}
	// Host-only config: PIM lane blank.
	hostRep := e.EstimateHost(cfg)
	tl2 := hostRep.Timeline(60, 1)
	for _, l := range strings.Split(tl2, "\n") {
		if strings.HasPrefix(l, "PIM  |") && strings.ContainsAny(l, "LGcae") {
			t.Fatalf("host-only run shows PIM work:\n%s", tl2)
		}
	}
	if rep.Timeline(5, 0) == "" {
		t.Fatal("degenerate timeline should still render")
	}
}

func TestDecodePIMBeatsGPUAtBatchOne(t *testing.T) {
	// The §2 motivation: single-batch GEMV decode is where HBM-PIM/AiM
	// natively win, because weights stream with zero reuse and the PIM
	// arrays have far more aggregate bank bandwidth than the GPU's memory
	// system.
	e := New()
	model := nn.BERTLarge
	model.SeqLen = 128
	cfg := Config{
		Model: model, Batch: 1,
		Platform: pim.HBMPIM(), Host: baseline.V100(), HostPrec: baseline.FP16,
	}
	pimDec := e.EstimateDecodePIMGEMV(cfg, 128)
	gpuDec := e.EstimateDecodeHost(cfg, 128)
	if pimDec.PerTokenTime >= gpuDec.PerTokenTime {
		t.Fatalf("PIM GEMV decode (%g) should beat GPU decode (%g)",
			pimDec.PerTokenTime, gpuDec.PerTokenTime)
	}
	if pimDec.TokensPerSecond() <= 0 {
		t.Fatal("bad throughput")
	}
}

func TestDecodeScalesWithLayers(t *testing.T) {
	e := New()
	small := nn.BERTBase
	small.Layers = 6
	big := nn.BERTBase
	big.Layers = 12
	cfg := Config{Model: small, Batch: 1, Platform: pim.AiM(),
		Host: baseline.A2(), HostPrec: baseline.FP16}
	t6 := e.EstimateDecodePIMGEMV(cfg, 64).PerTokenTime
	cfg.Model = big
	t12 := e.EstimateDecodePIMGEMV(cfg, 64).PerTokenTime
	if t12 < t6*1.8 || t12 > t6*2.2 {
		t.Fatalf("decode should scale ~linearly with layers: %g vs %g", t6, t12)
	}
}

func TestPipelinedFasterThanSerial(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 2
	serial, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := e.EstimatePIMDLPipelined(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if piped.Total() > serial.Total() {
		t.Fatalf("pipelining made things worse: %g vs %g", piped.Total(), serial.Total())
	}
	// Lower bound: cannot beat the busier lane.
	lane := serial.PIMTime
	if serial.HostTime > lane {
		lane = serial.HostTime
	}
	if piped.Total() < lane {
		t.Fatalf("pipelined total %g below busier-lane bound %g", piped.Total(), lane)
	}
}

func TestResidencyValidation(t *testing.T) {
	// BERT-large INT8 tables fit comfortably in 1024 x 64 MB of UPMEM banks.
	cfg := bertBaseCfg()
	cfg.Model = nn.BERTLarge
	if err := ValidateResidency(cfg); err != nil {
		t.Fatalf("BERT-large should fit on UPMEM: %v", err)
	}
	// A deep hidden-5120 model with FP32 tables must not fit on HBM-PIM
	// (8 GB total).
	big := Config{
		Model: nn.Config{Name: "OPT-huge", Kind: nn.TokenInput, Vocab: 1000,
			Hidden: 5120, Layers: 48, Heads: 16, FFN: 20480, SeqLen: 128, Classes: 2},
		Params: lutnn.Params{V: 2, CT: 64}, Platform: pim.HBMPIM(), LUTElemBytes: 4,
	}
	if err := ValidateResidency(big); err == nil {
		t.Fatal("oversized tables should be rejected")
	}
	if TableFootprintBytes(cfg) <= 0 {
		t.Fatal("bad footprint")
	}
}

package engine

import (
	"errors"
	"fmt"

	"repro/internal/nn"
	"repro/internal/pim"
	"repro/internal/shard"
)

// This file estimates end-to-end latency on a sharded cluster: the model's
// LUT operators are placed across N DIMM shards (internal/shard) with
// replicated sub-LUT ranges, and misbehaviour is handled at two
// granularities — PE faults inside a shard degrade it through the same
// pim machinery EstimateDegraded uses, while whole-shard loss re-routes
// tiles onto replicas. Only when every replica of some LUT range is gone
// (shard.ErrAllReplicasLost, matching pim.ErrIrrecoverable) does an
// operator fall back to host GEMM, exactly like the single-array path.

// ShardedReport is the engine's estimate for one configuration on a
// sharded cluster under a fault plan and shard state.
type ShardedReport struct {
	Report
	Plan     pim.FaultPlan
	ShardCfg shard.Config
	// Capacity is the worst capacity view across the model's LUT
	// operators (different tile shapes can tolerate different fault
	// levels, so health is per operator).
	Capacity shard.CapacityReport
	// FallbackOps counts LUT operators that fell back to host GEMM
	// because some LUT range had lost every replica.
	FallbackOps int
	// Failovers / ReplicaHits aggregate the route accounting across ops.
	Failovers, ReplicaHits int
}

// EstimateSharded produces the PIM-DL report for a cluster of
// scfg.Shards DIMM shards under a fault plan and shard up/down state.
// The platform in cfg describes the WHOLE array; each shard gets its
// 1/Nth slice (shard.PerShardPlatform). Mappings are tuned per
// cluster-tile on the per-shard platform at model-load time, then
// evaluated against the faulty cluster. A single-shard cluster with a
// zero plan and an all-up state reproduces EstimatePIMDL exactly
// (TestShardedSingleShardMatchesPIMDL pins it).
func (e *Engine) EstimateSharded(cfg Config, scfg shard.Config, plan pim.FaultPlan, st shard.State) (*ShardedReport, error) {
	shardPlat, err := shard.PerShardPlatform(cfg.Platform, scfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	c := cfg.Model
	n := cfg.rows()
	rep := &ShardedReport{
		Report: Report{Config: fmt.Sprintf("PIM-DL/%s/cluster%dx%d", cfg.Platform.Name, scfg.Shards, scfg.Replicas),
			Batch: cfg.Batch, SeqLen: c.SeqLen, ArrayPEs: cfg.Platform.NumPE},
		Plan:     plan,
		ShardCfg: scfg,
		Capacity: shard.CapacityReport{Shards: scfg.Shards},
	}
	haveCap := false

	for layer := 0; layer < c.Layers; layer++ {
		for _, role := range nn.Roles {
			f, h := c.LinearShape(role)
			if h%cfg.Params.V != 0 {
				return nil, fmt.Errorf("engine: V=%d does not divide %d (%v)", cfg.Params.V, h, role)
			}
			w := pim.Workload{N: n, CB: h / cfg.Params.V, CT: cfg.Params.CT, F: f, ElemBytes: cfg.LUTElemBytes}
			tileW, _, err := shard.TileWorkload(w, scfg)
			if err != nil {
				return nil, fmt.Errorf("engine: sharding %v: %w", role, err)
			}
			tuned, err := e.TunedMapping(shardPlat, tileW, cfg.Space)
			if err != nil {
				return nil, err
			}
			cl, err := shard.New(shardPlat, w, tuned.Mapping, scfg, nil)
			if err != nil {
				return nil, fmt.Errorf("engine: placing %v: %w", role, err)
			}
			ct, err := cl.Estimate(plan, st)
			switch {
			case errors.Is(err, pim.ErrIrrecoverable):
				// Every replica of some range is gone — the only condition
				// that pushes a sharded operator back onto the host.
				t := cfg.Host.GEMMTime(n, h, f, cfg.HostPrec)
				rep.Ops = append(rep.Ops, OpCost{Name: "GEMM-" + role.String() + "-fallback",
					Class: ClassOther, Layer: layer, Role: role, Time: t, Fallback: true})
				rep.HostTime += t
				rep.FallbackOps++
				continue
			case err != nil:
				return nil, fmt.Errorf("engine: sharded timing for %v: %w", role, err)
			}
			if !haveCap || ct.Capacity.Fraction < rep.Capacity.Fraction {
				rep.Capacity = ct.Capacity
				haveCap = true
			}
			rep.Failovers += ct.Failovers
			rep.ReplicaHits += ct.ReplicaHits
			var rec *pim.Recovery
			if !plan.IsZero() {
				agg := pim.Recovery{WorstSlowdown: 1}
				for _, stg := range ct.PerShard {
					agg.DeadPEs += stg.DeadPEs
					agg.Redispatched += stg.Redispatched
					agg.Retries += stg.Retries
					agg.ResidualCorrupt += stg.Residual
					if stg.WorstSlowdown > agg.WorstSlowdown {
						agg.WorstSlowdown = stg.WorstSlowdown
					}
				}
				rec = &agg
			}
			ccs := cfg.Host.CCSTime(n, h, cfg.Params.CT, cfg.HostPrec)
			rep.Ops = append(rep.Ops,
				OpCost{Name: "CCS-" + role.String(), Class: ClassCCS, Layer: layer, Role: role, Time: ccs},
				OpCost{Name: "LUT-" + role.String(), Class: ClassLUT, Layer: layer, Role: role,
					Time: ct.SteadyMakespan, OnPIM: true, PEs: tuned.Mapping.PEs(tileW) * ct.LiveShards,
					Recovery: rec},
			)
			rep.HostTime += ccs
			rep.PIMTime += ct.SteadyMakespan
		}
		// Attention stays on the host; elementwise stripes over whatever
		// survives of the cluster (every live PE, as the single-array
		// estimate stripes over the whole array), or runs on the host once
		// nothing survives.
		att := cfg.Host.AttentionTime(cfg.Batch, c.SeqLen, c.Hidden, c.Heads, cfg.HostPrec)
		elems := 4*n*c.Hidden + n*c.FFN
		livePlat := *cfg.Platform
		livePlat.NumPE = rep.Capacity.LivePE
		if !haveCap {
			livePlat.NumPE = 0
		}
		var elem float64
		onPIM := livePlat.NumPE > 0
		if onPIM {
			elem = pim.ElementwiseOnPIM(&livePlat, elems)
		} else {
			elem = cfg.Host.ElementwiseTime(elems)
		}
		rep.Ops = append(rep.Ops,
			OpCost{Name: "Attention", Class: ClassOther, Layer: layer, Time: att},
			OpCost{Name: "Elementwise", Class: ClassOther, Layer: layer, Time: elem, OnPIM: onPIM, PEs: livePlat.NumPE},
		)
		rep.HostTime += att
		if onPIM {
			rep.PIMTime += elem
		} else {
			rep.HostTime += elem
		}
	}
	recordReport(&rep.Report)
	return rep, nil
}

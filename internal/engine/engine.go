// Package engine implements the PIM-DL inference engine of paper §4.3: it
// walks a transformer's operator graph (Fig. 6-b), places each operator on
// the host or the PIM modules, and produces end-to-end latency estimates
// with the LUT/CCS/Other breakdown of Fig. 11.
//
// Four execution configurations are modelled, matching the paper's
// comparison set:
//
//   - PIM-DL: linear layers as LUT-NN (CCS on host, LUT reduce on PIM with
//     auto-tuned mappings), attention on the host, elementwise on PIM.
//   - PIM-GEMM: linear layers as plain GEMM offloaded to the PIM array
//     (the paper's "GEMM-based inference on DRAM-PIMs" baseline).
//   - CPU / GPU: everything on the host device (GGML / PyTorch analogue).
package engine

import (
	"fmt"

	"repro/internal/autotuner"
	"repro/internal/baseline"
	"repro/internal/lutnn"
	"repro/internal/mapping"
	"repro/internal/nn"
	"repro/internal/pim"
)

// OpClass buckets operators the way Fig. 11-(a) does.
type OpClass int

const (
	ClassLUT   OpClass = iota // PIM-side table lookup/accumulate
	ClassCCS                  // host-side closest-centroid search
	ClassOther                // attention, elementwise, non-converted linears
)

// String returns the class label used in the paper's breakdown.
func (c OpClass) String() string {
	switch c {
	case ClassLUT:
		return "LUT"
	case ClassCCS:
		return "CCS"
	default:
		return "Other"
	}
}

// OpCost is one scheduled operator instance.
type OpCost struct {
	Name  string
	Class OpClass
	Layer int
	Role  nn.LinearRole // valid for linear-derived ops
	Time  float64
	OnPIM bool
	// PEs is the number of PEs the operator occupies while it runs
	// (PIM-side ops only; 0 for host ops). The trace exporter renders
	// PEs/ArrayPEs as the PE-utilization counter track.
	PEs int
	// Recovery carries the fault-tolerance activity of a degraded LUT
	// operator (EstimateDegraded only; nil otherwise).
	Recovery *pim.Recovery
	// Fallback marks a LUT operator that was irrecoverable on the faulty
	// array and ran as host GEMM instead.
	Fallback bool
}

// Report is the engine's end-to-end estimate for one configuration.
type Report struct {
	Config   string
	Ops      []OpCost
	Batch    int
	SeqLen   int
	HostTime float64 // total host-busy seconds
	PIMTime  float64 // total PIM-busy seconds
	// ArrayPEs is the size of the physical PE array the schedule ran
	// against (0 for host-only configurations).
	ArrayPEs int
}

// Total returns end-to-end latency (host and PIM serialized, as in the
// paper's offload execution model).
func (r *Report) Total() float64 {
	var t float64
	for _, op := range r.Ops {
		t += op.Time
	}
	return t
}

// ClassTime sums the time of one operator class.
func (r *Report) ClassTime(c OpClass) float64 {
	var t float64
	for _, op := range r.Ops {
		if op.Class == c {
			t += op.Time
		}
	}
	return t
}

// RoleTime sums CCS+LUT (or GEMM) time for one linear role across layers.
func (r *Report) RoleTime(role nn.LinearRole) float64 {
	var t float64
	for _, op := range r.Ops {
		if (op.Class == ClassLUT || op.Class == ClassCCS ||
			op.Name == "GEMM-"+role.String()) && op.Role == role {
			t += op.Time
		}
	}
	return t
}

// Throughput returns sequences/second.
func (r *Report) Throughput() float64 {
	return float64(r.Batch) / r.Total()
}

// Config describes one end-to-end estimation scenario.
type Config struct {
	Model  nn.Config
	Batch  int
	Params lutnn.Params // LUT-NN hyper-parameters (PIM-DL only)

	Platform *pim.Platform    // DRAM-PIM array (PIM-DL / PIM-GEMM)
	Host     *baseline.Device // host processor
	HostPrec baseline.Precision

	// LUTElemBytes is the table element width on the PIM side (1 on
	// UPMEM after INT8 quantization, 2 on HBM-PIM/AiM).
	LUTElemBytes int

	// Space bounds the auto-tuner's search.
	Space mapping.SpaceConfig
}

func (c Config) rows() int { return c.Batch * c.Model.SeqLen }

// tuneKey identifies one tuning problem: a workload shape on a platform.
type tuneKey struct {
	platform *pim.Platform
	workload pim.Workload
}

// Engine caches tuned mappings per (platform, workload shape) so a model
// is tuned once (the paper: ~1 s/model, reused across inference).
type Engine struct {
	cache map[tuneKey]*autotuner.Result
}

// New creates an engine with an empty mapping cache.
func New() *Engine {
	return &Engine{cache: map[tuneKey]*autotuner.Result{}}
}

// TunedMapping returns the auto-tuned mapping for w on p, caching results.
func (e *Engine) TunedMapping(p *pim.Platform, w pim.Workload, cfg mapping.SpaceConfig) (*autotuner.Result, error) {
	k := tuneKey{p, w}
	if r, ok := e.cache[k]; ok {
		return r, nil
	}
	r, err := autotuner.Tune(p, w, cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: tuning %+v: %w", w, err)
	}
	e.cache[k] = r
	return r, nil
}

// otherOps appends the non-linear operators of one transformer block:
// attention on the host, and the elementwise set (2×LayerNorm, GELU,
// 2×residual) on whichever side the configuration placed them.
func (e *Engine) otherOps(cfg Config, layer int, onPIM bool) []OpCost {
	c := cfg.Model
	n := cfg.rows()
	att := cfg.Host.AttentionTime(cfg.Batch, c.SeqLen, c.Hidden, c.Heads, cfg.HostPrec)
	elems := 4*n*c.Hidden + n*c.FFN // LN+residual (H-wide) + GELU (FFN-wide)
	var elem float64
	var elemPEs int
	if onPIM && cfg.Platform != nil {
		elem = pim.ElementwiseOnPIM(cfg.Platform, elems)
		elemPEs = cfg.Platform.NumPE // elementwise stripes over the whole array
	} else {
		elem = cfg.Host.ElementwiseTime(elems)
	}
	return []OpCost{
		{Name: "Attention", Class: ClassOther, Layer: layer, Time: att},
		{Name: "Elementwise", Class: ClassOther, Layer: layer, Time: elem, OnPIM: onPIM, PEs: elemPEs},
	}
}

// EstimatePIMDL produces the PIM-DL report: per linear role, CCS on the
// host plus the LUT operator on the PIM array under its tuned mapping.
func (e *Engine) EstimatePIMDL(cfg Config) (*Report, error) {
	c := cfg.Model
	n := cfg.rows()
	rep := &Report{Config: "PIM-DL/" + cfg.Platform.Name, Batch: cfg.Batch, SeqLen: c.SeqLen,
		ArrayPEs: cfg.Platform.NumPE}
	for layer := 0; layer < c.Layers; layer++ {
		for _, role := range nn.Roles {
			f, h := c.LinearShape(role)
			if h%cfg.Params.V != 0 {
				return nil, fmt.Errorf("engine: V=%d does not divide %d (%v)", cfg.Params.V, h, role)
			}
			w := pim.Workload{N: n, CB: h / cfg.Params.V, CT: cfg.Params.CT, F: f, ElemBytes: cfg.LUTElemBytes}
			tuned, err := e.TunedMapping(cfg.Platform, w, cfg.Space)
			if err != nil {
				return nil, err
			}
			ccs := cfg.Host.CCSTime(n, h, cfg.Params.CT, cfg.HostPrec)
			// Steady-state serving keeps the tables resident in the PE
			// banks (they are written once at model-load time), so the
			// per-inference LUT operator excludes t_sub_lut.
			lutTime := tuned.Simulated.Total() - tuned.Simulated.HostLUT
			rep.Ops = append(rep.Ops,
				OpCost{Name: "CCS-" + role.String(), Class: ClassCCS, Layer: layer, Role: role, Time: ccs},
				OpCost{Name: "LUT-" + role.String(), Class: ClassLUT, Layer: layer, Role: role,
					Time: lutTime, OnPIM: true, PEs: tuned.Mapping.PEs(w)},
			)
			rep.HostTime += ccs
			rep.PIMTime += lutTime
		}
		others := e.otherOps(cfg, layer, true)
		rep.Ops = append(rep.Ops, others...)
		rep.HostTime += others[0].Time
		rep.PIMTime += others[1].Time
	}
	recordReport(rep)
	return rep, nil
}

// EstimatePIMGEMM produces the PIM-GEMM baseline report: linear layers as
// plain GEMM on the PIM array.
func (e *Engine) EstimatePIMGEMM(cfg Config) (*Report, error) {
	c := cfg.Model
	n := cfg.rows()
	rep := &Report{Config: "PIM-GEMM/" + cfg.Platform.Name, Batch: cfg.Batch, SeqLen: c.SeqLen,
		ArrayPEs: cfg.Platform.NumPE}
	for layer := 0; layer < c.Layers; layer++ {
		for _, role := range nn.Roles {
			f, h := c.LinearShape(role)
			gw := pim.GEMMWorkload{N: n, H: h, F: f, Batch: cfg.Batch, ElemBytes: cfg.Platform.ElemBytes}
			t := pim.GEMMOnPIM(cfg.Platform, gw).Total()
			rep.Ops = append(rep.Ops, OpCost{Name: "GEMM-" + role.String(), Class: ClassOther,
				Layer: layer, Role: role, Time: t, OnPIM: true, PEs: cfg.Platform.NumPE})
			rep.PIMTime += t
		}
		others := e.otherOps(cfg, layer, true)
		rep.Ops = append(rep.Ops, others...)
		rep.HostTime += others[0].Time
		rep.PIMTime += others[1].Time
	}
	recordReport(rep)
	return rep, nil
}

// EstimateHost produces the pure CPU/GPU report (all operators on the host
// device at the configured precision).
func (e *Engine) EstimateHost(cfg Config) *Report {
	c := cfg.Model
	n := cfg.rows()
	rep := &Report{Config: cfg.Host.Name + "/" + cfg.HostPrec.String(), Batch: cfg.Batch, SeqLen: c.SeqLen}
	for layer := 0; layer < c.Layers; layer++ {
		for _, role := range nn.Roles {
			f, h := c.LinearShape(role)
			t := cfg.Host.GEMMTime(n, h, f, cfg.HostPrec)
			rep.Ops = append(rep.Ops, OpCost{Name: "GEMM-" + role.String(), Class: ClassOther,
				Layer: layer, Role: role, Time: t})
			rep.HostTime += t
		}
		others := e.otherOps(cfg, layer, false)
		rep.Ops = append(rep.Ops, others...)
		rep.HostTime += others[0].Time + others[1].Time
	}
	recordReport(rep)
	return rep
}

// TableFootprintBytes returns the total LUT storage the model needs on
// the PIM side under cfg's parameters.
func TableFootprintBytes(cfg Config) int64 {
	var total int64
	for _, role := range nn.Roles {
		f, h := cfg.Model.LinearShape(role)
		total += int64(h/cfg.Params.V) * int64(cfg.Params.CT) * int64(f) * int64(cfg.LUTElemBytes)
	}
	return total * int64(cfg.Model.Layers)
}

// ValidateResidency checks that the model's tables fit in the platform's
// aggregate bank capacity with headroom for activations and outputs.
// Steady-state serving assumes resident tables (EstimatePIMDL amortizes
// the table upload), so an over-capacity model would silently violate
// that assumption without this check.
func ValidateResidency(cfg Config) error {
	tables := TableFootprintBytes(cfg)
	capacity := cfg.Platform.MRAMBytes * int64(cfg.Platform.NumPE)
	// Reserve 10% for per-PE index/output staging.
	budget := capacity * 9 / 10
	if tables > budget {
		return fmt.Errorf("engine: %s tables need %.2f GiB but %s offers %.2f GiB of bank capacity",
			cfg.Model.Name, float64(tables)/(1<<30), cfg.Platform.Name, float64(budget)/(1<<30))
	}
	return nil
}

// HostLinearTime returns the host GEMM time for one role (used by the
// layer-wise comparison in Fig. 11-b).
func HostLinearTime(cfg Config, role nn.LinearRole) float64 {
	f, h := cfg.Model.LinearShape(role)
	return cfg.Host.GEMMTime(cfg.rows(), h, f, cfg.HostPrec)
}

package engine

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pim"
)

// metricsDelta runs fn and returns the change of every default-registry
// series across it.
func metricsDelta(fn func()) map[string]float64 {
	before := metrics.Default().Flatten()
	fn()
	after := metrics.Default().Flatten()
	for k, v := range before {
		after[k] -= v
	}
	return after
}

// TestEngineMetricsMatchReport: the class/role second counters recorded
// for one estimate equal the report's own ClassTime/RoleTime sums.
func TestEngineMetricsMatchReport(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1

	var rep *Report
	d := metricsDelta(func() {
		var err error
		rep, err = e.EstimatePIMDL(cfg)
		if err != nil {
			t.Fatal(err)
		}
	})

	if d["pimdl_engine_estimates_total"] != 1 {
		t.Fatalf("estimates delta %g, want 1", d["pimdl_engine_estimates_total"])
	}
	for _, c := range []OpClass{ClassLUT, ClassCCS, ClassOther} {
		got := d[`pimdl_engine_class_seconds_total{class="`+c.String()+`"}`]
		if math.Abs(got-rep.ClassTime(c)) > 1e-12 {
			t.Fatalf("class %v seconds %g != report %g", c, got, rep.ClassTime(c))
		}
		var n int
		for _, op := range rep.Ops {
			if op.Class == c {
				n++
			}
		}
		if ops := d[`pimdl_engine_ops_total{class="`+c.String()+`"}`]; ops != float64(n) {
			t.Fatalf("class %v ops %g != %d", c, ops, n)
		}
	}
	for _, role := range nn.Roles {
		got := d[`pimdl_engine_role_seconds_total{role="`+role.String()+`"}`]
		if math.Abs(got-rep.RoleTime(role)) > 1e-12 {
			t.Fatalf("role %v seconds %g != report %g", role, got, rep.RoleTime(role))
		}
	}
	if d["pimdl_engine_fallback_ops_total"] != 0 {
		t.Fatalf("unexpected fallback ops %g", d["pimdl_engine_fallback_ops_total"])
	}
}

// TestEngineMetricsCountFallbacks: a killed array yields fallback GEMMs
// and the counter tracks the report's FallbackOps.
func TestEngineMetricsCountFallbacks(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1

	var rep *DegradedReport
	d := metricsDelta(func() {
		var err error
		rep, err = e.EstimateDegraded(cfg, pim.FaultPlan{Seed: 5, DeadPEFraction: 0.999})
		if err != nil {
			t.Fatal(err)
		}
	})
	if rep.FallbackOps == 0 {
		t.Fatal("expected fallbacks on a dead array")
	}
	if got := d["pimdl_engine_fallback_ops_total"]; got != float64(rep.FallbackOps) {
		t.Fatalf("fallback counter %g != report %d", got, rep.FallbackOps)
	}
}

package engine

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/pim"
)

// This file models the single-batch GPT decode scenario of paper §2:
// token-by-token generation where every linear layer degenerates to a
// GEMV. HBM-PIM and AiM were designed for exactly this case — the weight
// matrix streams from the banks once per token with nothing to reuse, so
// the memory-side MACs beat any cache-based processor. PIM-DL does not
// target this regime (its tables would stream per token too, and CCS
// overhead cannot amortize over one row); modelling it makes the boundary
// of the paper's contribution explicit.

// DecodeReport is the per-step latency of one decode configuration.
type DecodeReport struct {
	Config       string
	PerTokenTime float64 // seconds per decode step
	// Batch is the number of sequences advanced per step (continuous
	// batching stacks B single-row decodes into one kernel round). Zero
	// means unbatched and is treated as 1.
	Batch int
}

// TokensPerSecond returns decode throughput: Batch tokens emerge from
// each step. A non-positive step time yields 0 rather than ±Inf so
// downstream ratio math stays finite.
func (d DecodeReport) TokensPerSecond() float64 {
	if d.PerTokenTime <= 0 {
		return 0
	}
	b := d.Batch
	if b < 1 {
		b = 1
	}
	return float64(b) / d.PerTokenTime
}

// EstimateDecodePIMGEMV models native GEMV decode on a PIM platform: per
// token, each linear streams its weights through the bank-side MACs, and
// attention reads the KV cache of contextLen previous tokens.
func (e *Engine) EstimateDecodePIMGEMV(cfg Config, contextLen int) *DecodeReport {
	c := cfg.Model
	var t float64
	for _, role := range nn.Roles {
		f, h := c.LinearShape(role)
		gw := pim.GEMMWorkload{N: 1, H: h, F: f, Batch: 1, ElemBytes: cfg.Platform.ElemBytes}
		t += pim.GEMMOnPIM(cfg.Platform, gw).Total()
	}
	// Attention over the KV cache: 2·ctx·H MACs per head group — a GEMV
	// against the cache, also memory-bound on the PIM side.
	kvBytes := float64(2*contextLen*c.Hidden) * float64(cfg.Platform.ElemBytes)
	agg := cfg.Platform.LocalBWPerPE * float64(cfg.Platform.NumPE)
	t += cfg.Platform.HostXferLatency + kvBytes/agg
	t *= float64(c.Layers)
	return &DecodeReport{Config: "PIM-GEMV/" + cfg.Platform.Name, PerTokenTime: t}
}

// EstimateDecodeHost models GEMV decode on the host device (GPU/CPU):
// per token the full weight set streams through the memory system, which
// is the bandwidth-bound regime regardless of compute peak.
func (e *Engine) EstimateDecodeHost(cfg Config, contextLen int) *DecodeReport {
	c := cfg.Model
	var t float64
	for _, role := range nn.Roles {
		f, h := c.LinearShape(role)
		t += cfg.Host.GEMMTime(1, h, f, cfg.HostPrec)
	}
	t += cfg.Host.AttentionTime(1, int(math.Max(1, float64(contextLen))), c.Hidden, c.Heads, cfg.HostPrec)
	t *= float64(c.Layers)
	return &DecodeReport{Config: cfg.Host.Name + "-decode", PerTokenTime: t}
}

// EstimateDecodeLUT models the KV-cached LUT-NN decode fastpath of
// internal/nn on a PIM-DL configuration: per step, every linear runs
// single-row CCS on the host (N = Batch rows after continuous batching)
// and the LUT reduce on the PIM array under the mapping tuned for that
// skinny shape, while single-query attention streams the KV cache of
// contextLen previous tokens through the host memory system. This is the
// regime §2 says PIM-DL was not designed for — the interesting question
// the estimator answers is how far batching must go before the LUT
// tables (which are resident and do NOT restream per token, unlike GEMV
// weights) pull decode back into PIM-DL's favour.
func (e *Engine) EstimateDecodeLUT(cfg Config, contextLen int) (*DecodeReport, error) {
	c := cfg.Model
	b := cfg.Batch
	if b < 1 {
		b = 1
	}
	var t float64
	for _, role := range nn.Roles {
		f, h := c.LinearShape(role)
		if h%cfg.Params.V != 0 {
			return nil, fmt.Errorf("engine: V=%d does not divide %d (%v)", cfg.Params.V, h, role)
		}
		w := pim.Workload{N: b, CB: h / cfg.Params.V, CT: cfg.Params.CT, F: f, ElemBytes: cfg.LUTElemBytes}
		tuned, err := e.TunedMapping(cfg.Platform, w, cfg.Space)
		if err != nil {
			return nil, err
		}
		// Tables are resident (written at load time), so the per-step LUT
		// operator excludes t_sub_lut — same accounting as EstimatePIMDL.
		t += cfg.Host.CCSTime(b, h, cfg.Params.CT, cfg.HostPrec)
		t += tuned.Simulated.Total() - tuned.Simulated.HostLUT
	}
	// Host-side single-query attention: the K and V arenas of contextLen
	// rows stream once per sequence per layer, bandwidth-bound.
	ctx := int(math.Max(1, float64(contextLen)))
	kvBytes := float64(2*ctx*c.Hidden*b) * float64(cfg.HostPrec.Bytes())
	t += kvBytes / cfg.Host.MemBW
	t *= float64(c.Layers)
	return &DecodeReport{Config: "PIM-DL-decode/" + cfg.Platform.Name, PerTokenTime: t, Batch: b}, nil
}

// EstimatePIMDLPipelined models the software-pipelining extension: because
// CCS for layer ops runs on the host while the LUT reduce runs on the PIM
// array, consecutive operators can overlap once the pipeline fills. The
// steady-state latency is then bounded by the busier lane instead of the
// sum of both. (The paper's engine serializes host and PIM phases; this
// quantifies what scheduling work would buy — an engine-level analog of
// the §7 hardware extensions.)
func (e *Engine) EstimatePIMDLPipelined(cfg Config) (*Report, error) {
	rep, err := e.EstimatePIMDL(cfg)
	if err != nil {
		return nil, err
	}
	// Fill latency: the first operator's host phase cannot overlap.
	var firstHost float64
	for _, op := range rep.Ops {
		if !op.OnPIM {
			firstHost = op.Time
			break
		}
	}
	pipelined := math.Max(rep.HostTime, rep.PIMTime) + firstHost
	serial := rep.Total()
	if pipelined > serial {
		pipelined = serial
	}
	// Rescale op times so Total() reflects the pipelined latency while the
	// breakdown proportions stay meaningful.
	scale := pipelined / serial
	out := &Report{Config: rep.Config + "+pipelined", Batch: rep.Batch, SeqLen: rep.SeqLen,
		HostTime: rep.HostTime, PIMTime: rep.PIMTime}
	for _, op := range rep.Ops {
		op.Time *= scale
		out.Ops = append(out.Ops, op)
	}
	return out, nil
}

package engine

import (
	"math"

	"repro/internal/nn"
	"repro/internal/pim"
)

// This file models the single-batch GPT decode scenario of paper §2:
// token-by-token generation where every linear layer degenerates to a
// GEMV. HBM-PIM and AiM were designed for exactly this case — the weight
// matrix streams from the banks once per token with nothing to reuse, so
// the memory-side MACs beat any cache-based processor. PIM-DL does not
// target this regime (its tables would stream per token too, and CCS
// overhead cannot amortize over one row); modelling it makes the boundary
// of the paper's contribution explicit.

// DecodeReport is the per-generated-token latency of one configuration.
type DecodeReport struct {
	Config       string
	PerTokenTime float64
}

// TokensPerSecond returns decode throughput.
func (d DecodeReport) TokensPerSecond() float64 { return 1 / d.PerTokenTime }

// EstimateDecodePIMGEMV models native GEMV decode on a PIM platform: per
// token, each linear streams its weights through the bank-side MACs, and
// attention reads the KV cache of contextLen previous tokens.
func (e *Engine) EstimateDecodePIMGEMV(cfg Config, contextLen int) *DecodeReport {
	c := cfg.Model
	var t float64
	for _, role := range nn.Roles {
		f, h := c.LinearShape(role)
		gw := pim.GEMMWorkload{N: 1, H: h, F: f, Batch: 1, ElemBytes: cfg.Platform.ElemBytes}
		t += pim.GEMMOnPIM(cfg.Platform, gw).Total()
	}
	// Attention over the KV cache: 2·ctx·H MACs per head group — a GEMV
	// against the cache, also memory-bound on the PIM side.
	kvBytes := float64(2*contextLen*c.Hidden) * float64(cfg.Platform.ElemBytes)
	agg := cfg.Platform.LocalBWPerPE * float64(cfg.Platform.NumPE)
	t += cfg.Platform.HostXferLatency + kvBytes/agg
	t *= float64(c.Layers)
	return &DecodeReport{Config: "PIM-GEMV/" + cfg.Platform.Name, PerTokenTime: t}
}

// EstimateDecodeHost models GEMV decode on the host device (GPU/CPU):
// per token the full weight set streams through the memory system, which
// is the bandwidth-bound regime regardless of compute peak.
func (e *Engine) EstimateDecodeHost(cfg Config, contextLen int) *DecodeReport {
	c := cfg.Model
	var t float64
	for _, role := range nn.Roles {
		f, h := c.LinearShape(role)
		t += cfg.Host.GEMMTime(1, h, f, cfg.HostPrec)
	}
	t += cfg.Host.AttentionTime(1, int(math.Max(1, float64(contextLen))), c.Hidden, c.Heads, cfg.HostPrec)
	t *= float64(c.Layers)
	return &DecodeReport{Config: cfg.Host.Name + "-decode", PerTokenTime: t}
}

// EstimatePIMDLPipelined models the software-pipelining extension: because
// CCS for layer ops runs on the host while the LUT reduce runs on the PIM
// array, consecutive operators can overlap once the pipeline fills. The
// steady-state latency is then bounded by the busier lane instead of the
// sum of both. (The paper's engine serializes host and PIM phases; this
// quantifies what scheduling work would buy — an engine-level analog of
// the §7 hardware extensions.)
func (e *Engine) EstimatePIMDLPipelined(cfg Config) (*Report, error) {
	rep, err := e.EstimatePIMDL(cfg)
	if err != nil {
		return nil, err
	}
	// Fill latency: the first operator's host phase cannot overlap.
	var firstHost float64
	for _, op := range rep.Ops {
		if !op.OnPIM {
			firstHost = op.Time
			break
		}
	}
	pipelined := math.Max(rep.HostTime, rep.PIMTime) + firstHost
	serial := rep.Total()
	if pipelined > serial {
		pipelined = serial
	}
	// Rescale op times so Total() reflects the pipelined latency while the
	// breakdown proportions stay meaningful.
	scale := pipelined / serial
	out := &Report{Config: rep.Config + "+pipelined", Batch: rep.Batch, SeqLen: rep.SeqLen,
		HostTime: rep.HostTime, PIMTime: rep.PIMTime}
	for _, op := range rep.Ops {
		op.Time *= scale
		out.Ops = append(out.Ops, op)
	}
	return out, nil
}

package engine

import (
	"reflect"
	"testing"

	"repro/internal/pim"
	"repro/internal/shard"
)

// TestShardedSingleShardMatchesPIMDL pins the acceptance criterion at
// the engine layer: a 1-shard healthy cluster reproduces the unsharded
// estimate op for op.
func TestShardedSingleShardMatchesPIMDL(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	base, err := e.EstimatePIMDL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.EstimateSharded(cfg, shard.Config{Shards: 1, Replicas: 1}, pim.FaultPlan{}, shard.NewState(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Ops, base.Ops) {
		t.Fatalf("single-shard ops diverge from EstimatePIMDL:\n%+v\nvs\n%+v", rep.Ops, base.Ops)
	}
	if rep.Total() != base.Total() || rep.HostTime != base.HostTime || rep.PIMTime != base.PIMTime {
		t.Fatalf("single-shard totals diverge: %g/%g/%g vs %g/%g/%g",
			rep.Total(), rep.HostTime, rep.PIMTime, base.Total(), base.HostTime, base.PIMTime)
	}
	if rep.FallbackOps != 0 || rep.Capacity.Fraction != 1 {
		t.Fatalf("healthy single-shard cluster degraded: %+v", rep)
	}
}

// TestShardedFailoverDegradesNotFails: with 2 replicas, one dead shard
// re-routes tiles instead of falling back to the host.
func TestShardedFailoverDegradesNotFails(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	scfg := shard.Config{Shards: 4, Replicas: 2}
	healthy, err := e.EstimateSharded(cfg, scfg, pim.FaultPlan{}, shard.NewState(4))
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Failovers != 0 || healthy.FallbackOps != 0 {
		t.Fatalf("healthy cluster reports failures: %+v", healthy)
	}
	st := shard.NewState(4)
	st.SetDown(0, true)
	deg, err := e.EstimateSharded(cfg, scfg, pim.FaultPlan{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if deg.FallbackOps != 0 {
		t.Fatalf("one dead shard with 2 replicas forced %d host fallbacks", deg.FallbackOps)
	}
	if deg.Failovers == 0 {
		t.Fatal("no failovers recorded with a dead shard")
	}
	if deg.Capacity.Fraction != 0.75 || deg.Capacity.MinLiveReplicas != 1 {
		t.Fatalf("capacity report %+v, want 3/4 capacity at 1 live replica", deg.Capacity)
	}
	if deg.Total() < healthy.Total() {
		t.Fatalf("failover estimate %g faster than healthy %g", deg.Total(), healthy.Total())
	}
}

// TestShardedAllReplicasLostFallsBack: losing every replica of a range
// pushes the LUT operators back onto host GEMM — same escape hatch as
// the single-array irrecoverable path — and the report stays finite.
func TestShardedAllReplicasLostFallsBack(t *testing.T) {
	e := New()
	cfg := bertBaseCfg()
	cfg.Model.Layers = 1
	st := shard.NewState(4)
	st.SetDown(0, true) // range 0's replicas are shards {0, 1}
	st.SetDown(1, true)
	rep, err := e.EstimateSharded(cfg, shard.Config{Shards: 4, Replicas: 2}, pim.FaultPlan{}, st)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FallbackOps == 0 {
		t.Fatal("no host fallbacks with a fully lost range")
	}
	nLUT := 0
	for _, op := range rep.Ops {
		if op.Class == ClassLUT {
			nLUT++
		}
		if op.Fallback && !op.OnPIM && op.Time <= 0 {
			t.Fatalf("fallback op %s has no cost", op.Name)
		}
	}
	if nLUT != 0 {
		t.Fatalf("%d LUT ops survived with a fully lost range", nLUT)
	}
	if rep.Total() <= 0 {
		t.Fatal("report not finite")
	}
}

package baseline

import (
	"testing"
)

func TestGEMMComputeBoundOnBigShapes(t *testing.T) {
	d := CPUServer()
	// A big square GEMM is compute bound: doubling F should ~double time.
	t1 := d.GEMMTime(4096, 4096, 4096, FP32)
	t2 := d.GEMMTime(4096, 4096, 8192, FP32)
	if t2 < t1*1.8 || t2 > t1*2.2 {
		t.Fatalf("compute-bound scaling broken: %g vs %g", t1, t2)
	}
}

func TestINT8FasterThanFP32(t *testing.T) {
	d := CPUServer()
	if d.GEMMTime(4096, 768, 768, INT8) >= d.GEMMTime(4096, 768, 768, FP32) {
		t.Fatal("INT8 GEMM should beat FP32")
	}
}

func TestLUTKernelMemoryBound(t *testing.T) {
	// The LUT kernel must land in the memory-bound regime: time tracks
	// bytes, not ops (paper Fig. 4).
	d := CPUServer()
	n, cb, f := 32768, 384, 768
	tm := d.LUTKernelTime(n, cb, f, 4)
	bytes := float64(n)*float64(cb)*float64(f)*4 + float64(n)*float64(f)*4 + float64(n)*float64(cb)
	if got := bytes / d.MemBW; tm < got*0.99 || tm > got*1.01 {
		t.Fatalf("LUT kernel not bandwidth-limited: %g vs %g", tm, got)
	}
}

func TestCCSCheaperThanGEMMItReplaces(t *testing.T) {
	// CCS (2NHCT MACs, CT=16) must be far cheaper than the original GEMM
	// (2NHF MACs, F=3072) — that is the whole point of offloading only the
	// LUT reduce to PIM.
	d := UPMEMHost()
	n, h := 32768, 768
	ccs := d.CCSTime(n, h, 16, INT8)
	gemm := d.GEMMTime(n, h, 3072, INT8)
	if ccs >= gemm/10 {
		t.Fatalf("CCS (%.3gs) not ≪ GEMM (%.3gs)", ccs, gemm)
	}
}

func TestAttentionScalesQuadraticallyInSeq(t *testing.T) {
	d := V100()
	t1 := d.AttentionTime(8, 256, 1024, 16, FP32)
	t2 := d.AttentionTime(8, 512, 1024, 16, FP32)
	if t2 < t1*3.5 || t2 > t1*4.5 {
		t.Fatalf("attention seq scaling: %g → %g (want ≈4×)", t1, t2)
	}
}

func TestElementwiseBandwidthBound(t *testing.T) {
	d := CPUServer()
	if got, want := d.ElementwiseTime(1<<20), float64(1<<20)*8/d.MemBW; got != want {
		t.Fatalf("elementwise %g, want %g", got, want)
	}
}

func TestDeviceOrdering(t *testing.T) {
	// V100 ≫ CPU server ≫ UPMEM host on FP32 GEMM throughput.
	n, h, f := 8192, 1024, 4096
	v := V100().GEMMTime(n, h, f, FP32)
	c := CPUServer().GEMMTime(n, h, f, FP32)
	u := UPMEMHost().GEMMTime(n, h, f, FP32)
	if !(v < c && c < u) {
		t.Fatalf("device ordering wrong: v100 %g cpu %g upmemhost %g", v, c, u)
	}
}

func TestUnknownPrecisionFallsBack(t *testing.T) {
	d := V100()
	// V100 has no INT8 entry: must fall back to FP32, not divide by zero.
	tm := d.GEMMTime(1024, 1024, 1024, INT8)
	if tm <= 0 || tm != tm {
		t.Fatalf("fallback broken: %g", tm)
	}
}

func TestPrecisionBytes(t *testing.T) {
	if FP32.Bytes() != 4 || FP16.Bytes() != 2 || INT8.Bytes() != 1 {
		t.Fatal("precision widths wrong")
	}
}

// Package baseline models the compute-centric devices PIM-DL is compared
// against (paper §6.1): the GGML-based CPU server (dual Xeon Gold 5218),
// the UPMEM host CPU (dual Xeon 4210), the NVIDIA V100 of the DGX-1
// baseline, and the A2 GPU that hosts the HBM-PIM/AiM platforms.
//
// Devices use a roofline performance model: an operator's time is the
// maximum of its compute time (ops ÷ effective peak) and its memory time
// (bytes ÷ bandwidth). That preserves exactly what the paper's
// cross-platform comparisons depend on — which side of each device's
// ridge point a kernel lands on — without pretending to model
// microarchitecture we don't have.
package baseline

import "math"

// Precision selects the datatype an operator runs in.
type Precision int

const (
	FP32 Precision = iota
	FP16
	INT8
)

// String returns the precision name.
func (p Precision) String() string {
	switch p {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case INT8:
		return "INT8"
	}
	return "?"
}

// Bytes returns the element width.
func (p Precision) Bytes() int {
	switch p {
	case FP32:
		return 4
	case FP16:
		return 2
	default:
		return 1
	}
}

// Device is one compute-centric baseline platform.
type Device struct {
	Name string
	// PeakOPS maps precision to peak arithmetic throughput (ops/s, where
	// one MAC = 2 ops).
	PeakOPS map[Precision]float64
	// MemBW is sustained memory bandwidth in bytes/s.
	MemBW float64
	// GEMMEff is the fraction of peak a tuned large GEMM achieves.
	GEMMEff float64
	// RidgeN is the GEMM row count at which the device reaches half its
	// large-matrix efficiency (kernel-launch overhead and unit
	// underutilization on skinny inputs; large for GPUs, small for CPUs).
	RidgeN int
	// PowerWatts is the busy package+DRAM power for the energy model.
	PowerWatts float64
	// IdleWatts is drawn while another device works.
	IdleWatts float64
}

// roofline returns max(ops/effPeak, bytes/bw).
func (d *Device) roofline(ops, bytes float64, prec Precision, eff float64) float64 {
	peak := d.PeakOPS[prec]
	//pimdl:lint-ignore float-compare missing map entry is exactly zero; fall back to the FP32 roof
	if peak == 0 {
		peak = d.PeakOPS[FP32]
	}
	ct := ops / (peak * eff)
	mt := bytes / d.MemBW
	return math.Max(ct, mt)
}

// GEMMTime models C(N×F) = A(N×H)·W(H×F): 2NHF ops against streaming A, W
// (weights assumed streamed once — they exceed cache) and writing C.
func (d *Device) GEMMTime(n, h, f int, prec Precision) float64 {
	ops := 2 * float64(n) * float64(h) * float64(f)
	eb := float64(prec.Bytes())
	bytes := (float64(n)*float64(h)+float64(h)*float64(f))*eb + float64(n)*float64(f)*4
	return d.roofline(ops, bytes, prec, d.gemmEff(n))
}

// gemmEff derates large-GEMM efficiency for skinny inputs.
func (d *Device) gemmEff(n int) float64 {
	if d.RidgeN <= 0 {
		return d.GEMMEff
	}
	return d.GEMMEff * float64(n) / float64(n+d.RidgeN)
}

// CCSTime models closest-centroid search (the host-side operator of
// PIM-DL): implemented via GEMM between activations and centroids
// (paper §5.2), 2·N·H·CT ops plus the argmin pass.
func (d *Device) CCSTime(n, h, ct int, prec Precision) float64 {
	ops := 3 * float64(n) * float64(h) * float64(ct)
	eb := float64(prec.Bytes())
	cb := float64(h) // codebooks: CB·CT·V = H·CT elements
	bytes := float64(n)*float64(h)*eb + cb*float64(ct)*eb + float64(n)*float64(h)
	return d.roofline(ops, bytes, prec, d.gemmEff(n)*0.4)
}

// LUTKernelTime models the table-lookup/accumulate kernel on this device:
// strictly memory-bound gather traffic (paper Fig. 4 places it far left of
// the CPU ridge point).
func (d *Device) LUTKernelTime(n, cb, f, lutElemBytes int) float64 {
	ops := float64(n) * float64(cb) * float64(f)
	bytes := ops*float64(lutElemBytes) + float64(n)*float64(f)*4 + float64(n)*float64(cb)
	return d.roofline(ops, bytes, INT8, 1)
}

// AttentionTime models multi-head self-attention for batch sequences of
// length seq and width hidden: QKᵀ and PV are 2·B·S²·H MACs each, plus a
// softmax pass over B·heads·S² scores.
func (d *Device) AttentionTime(batch, seq, hidden, heads int, prec Precision) float64 {
	b, s, h := float64(batch), float64(seq), float64(hidden)
	ops := 8*b*s*s*h + 5*b*float64(heads)*s*s
	bytes := 3*b*s*h*float64(prec.Bytes()) + 2*b*float64(heads)*s*s*4
	return d.roofline(ops, bytes, prec, d.gemmEff(batch*seq))
}

// ElementwiseTime models a memory-bound pass (LayerNorm, GELU, residual)
// over n elements: read + write at full bandwidth.
func (d *Device) ElementwiseTime(n int) float64 {
	return float64(n) * 8 / d.MemBW
}

// CPUServer returns the paper's CPU comparison machine: dual-socket Xeon
// Gold 5218 (32 cores), 8 DDR4 channels. FP32 peak ≈ 2.35 TOPS (AVX-512),
// INT8 via AVX2/VNNI ≈ 2× FP32 in GGML practice.
func CPUServer() *Device {
	return &Device{
		Name: "CPU-Server(2xGold5218)",
		PeakOPS: map[Precision]float64{
			FP32: 2.35e12,
			INT8: 4.23e12, // GGML's AVX2 INT8 path: ~1.8× the FP32 rate
		},
		MemBW:      140e9,
		GEMMEff:    0.19, // GGML runs well under vendor-BLAS efficiency
		RidgeN:     64,
		PowerWatts: 320, // 2×125 W TDP + DRAM
		IdleWatts:  90,
	}
}

// UPMEMHost returns the wimpy host of the DDR4-PIM platform: dual Xeon
// 4210 with two memory channels per socket left for conventional DIMMs.
// The 795 GOPS FP32 peak is the figure in the paper's Fig. 4.
func UPMEMHost() *Device {
	return &Device{
		Name: "UPMEM-Host(2xXeon4210)",
		PeakOPS: map[Precision]float64{
			FP32: 795.11e9,
			INT8: 1.43e12,
		},
		MemBW:      50e9, // half the channels serve PIM-DIMMs
		GEMMEff:    0.50,
		RidgeN:     64,
		PowerWatts: 230,
		IdleWatts:  70,
	}
}

// V100 returns the DGX-1 GPU baseline (FP32 PyTorch inference).
func V100() *Device {
	return &Device{
		Name: "V100",
		PeakOPS: map[Precision]float64{
			FP32: 15.7e12,
			FP16: 125e12, // tensor cores (the "130 TFLOPS" the paper cites)
		},
		MemBW:      900e9,
		GEMMEff:    0.5,
		RidgeN:     256, // tensor cores starve on skinny batches
		PowerWatts: 300,
		IdleWatts:  50,
	}
}

// A2 returns the NVIDIA A2 that hosts the simulated HBM-PIM/AiM platforms.
func A2() *Device {
	return &Device{
		Name: "A2",
		PeakOPS: map[Precision]float64{
			FP32: 4.5e12,
			FP16: 18e12,
		},
		MemBW:      200e9,
		GEMMEff:    0.5,
		RidgeN:     384,
		PowerWatts: 60,
		IdleWatts:  15,
	}
}

package pim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lutnn"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// metricsDelta runs fn and returns the change of every default-registry
// series across it.
func metricsDelta(fn func()) map[string]float64 {
	before := metrics.Default().Flatten()
	fn()
	after := metrics.Default().Flatten()
	for k, v := range before {
		after[k] -= v
	}
	return after
}

// TestExecutionMetricsMatchTimingModel pins the acceptance property of
// the observability layer: after one functional execution, the per-phase
// time counters sum to the execution's Timing.Total() and the byte
// counters equal the Events the timing model consumed — the same
// numbers, not a parallel estimate.
func TestExecutionMetricsMatchTimingModel(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 64, CB: 8, CT: 8, F: 64, ElemBytes: 4}
	m := firstLegalMapping(t, p, w)

	rng := rand.New(rand.NewSource(5))
	tbl := randomLUT(rng, w)
	idx := randomIdx(rng, w)

	var res *Result
	d := metricsDelta(func() {
		var err error
		res, err = ExecuteLUT(p, w, m, idx, tbl)
		if err != nil {
			t.Fatal(err)
		}
	})

	if d["pimdl_pim_executions_total"] != 1 {
		t.Fatalf("executions delta %g, want 1", d["pimdl_pim_executions_total"])
	}
	if got := d["pimdl_pim_tiles_executed_total"]; got != float64(res.PEs) {
		t.Fatalf("tiles %g, want %d", got, res.PEs)
	}

	phases := []string{"host_index", "host_lut", "host_output", "kernel_xfer", "kernel_reduce"}
	var sum float64
	for _, ph := range phases {
		sum += d[`pimdl_pim_time_seconds_total{phase="`+ph+`"}`]
	}
	if math.Abs(sum-res.Timing.Total()) > 1e-9 {
		t.Fatalf("phase counters sum %g != Timing.Total %g", sum, res.Timing.Total())
	}
	if got := d["pimdl_pim_pe_busy_seconds_total"]; math.Abs(got-res.Timing.Kernel()) > 1e-9 {
		t.Fatalf("pe busy %g != Kernel %g", got, res.Timing.Kernel())
	}
	for ph, want := range map[string]float64{
		"host_index":    res.Timing.HostIndex,
		"host_lut":      res.Timing.HostLUT,
		"host_output":   res.Timing.HostOutput,
		"kernel_xfer":   res.Timing.KernelXfer,
		"kernel_reduce": res.Timing.KernelRed,
	} {
		// Not exact: the delta is (prior + want) - prior on an accumulating
		// counter, which earlier recordings in the package round at the
		// last ulp.
		if got := d[`pimdl_pim_time_seconds_total{phase="`+ph+`"}`]; math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("phase %s counter %g != model %g", ph, got, want)
		}
	}

	ev, npe := res.Events, float64(res.PEs)
	if got := d["pimdl_pim_mram_read_bytes_total"]; got != float64(ev.IndexLoadBytes+ev.LUTLoadBytes+ev.OutLoadBytes)*npe {
		t.Fatalf("mram read bytes %g", got)
	}
	if got := d["pimdl_pim_mram_write_bytes_total"]; got != float64(ev.OutStoreBytes)*npe {
		t.Fatalf("mram write bytes %g", got)
	}
	if got := d["pimdl_pim_dma_ops_total"]; got != float64(ev.IndexLoadOps+ev.LUTLoadOps+ev.OutLoadOps+ev.OutStoreOps)*npe {
		t.Fatalf("dma ops %g", got)
	}

	ht := HostTrafficFor(p, w, m)
	for dir, want := range map[string]float64{
		"index":  ht.IndexBytes,
		"lut":    ht.LUTBytes,
		"output": ht.OutputBytes,
	} {
		if got := d[`pimdl_pim_host_bytes_total{dir="`+dir+`"}`]; got != math.Trunc(want) {
			t.Fatalf("host bytes %s: %g != %g", dir, got, want)
		}
	}
	if got := d["pimdl_pim_broadcast_bytes_total"]; got != math.Trunc(ht.BroadcastBytes()) {
		t.Fatalf("broadcast bytes %g != %g", got, ht.BroadcastBytes())
	}
}

// TestFaultExecutionMetrics checks the recovery counters flow through:
// retries, re-dispatches and dead PEs recorded equal the Recovery report.
func TestFaultExecutionMetrics(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 64, CB: 8, CT: 8, F: 64, ElemBytes: 4}
	m := firstLegalMapping(t, p, w)

	rng := rand.New(rand.NewSource(7))
	tbl := randomLUT(rng, w)
	idx := randomIdx(rng, w)
	plan := FaultPlan{Seed: 3, DeadPEFraction: 0.3, FlipRate: 0.1}

	var res *Result
	d := metricsDelta(func() {
		var err error
		res, err = ExecuteLUTWithFaults(p, w, m, idx, tbl, plan)
		if err != nil {
			t.Fatal(err)
		}
	})
	rec := res.Recovery
	if rec == nil {
		t.Fatal("no recovery report")
	}
	if got := d["pimdl_pim_dma_retries_total"]; got != float64(rec.Retries) {
		t.Fatalf("retries %g != %d", got, rec.Retries)
	}
	if got := d["pimdl_pim_redispatched_tiles_total"]; got != float64(rec.Redispatched) {
		t.Fatalf("redispatched %g != %d", got, rec.Redispatched)
	}
	if got := d["pimdl_pim_dead_pe_total"]; got != float64(rec.DeadPEs) {
		t.Fatalf("dead PEs %g != %d", got, rec.DeadPEs)
	}
	if got := d["pimdl_pim_tiles_executed_total"]; got != float64(res.PEs+rec.Redispatched) {
		t.Fatalf("tiles %g != %d", got, res.PEs+rec.Redispatched)
	}
}

// TestMetricsDisabledRecordsNothing: with the global gate off, an
// execution leaves every pim series untouched.
func TestMetricsDisabledRecordsNothing(t *testing.T) {
	metrics.SetEnabled(false)
	defer metrics.SetEnabled(true)

	p := UPMEM()
	w := Workload{N: 64, CB: 8, CT: 8, F: 64, ElemBytes: 4}
	m := firstLegalMapping(t, p, w)
	rng := rand.New(rand.NewSource(9))
	tbl := randomLUT(rng, w)
	idx := randomIdx(rng, w)

	d := metricsDelta(func() {
		if _, err := ExecuteLUT(p, w, m, idx, tbl); err != nil {
			t.Fatal(err)
		}
	})
	for k, v := range d {
		if v != 0 {
			t.Fatalf("series %s changed by %g while disabled", k, v)
		}
	}
}

// --- helpers -----------------------------------------------------------

// firstLegalMapping returns a valid mapping for (p, w) the way the other
// pim tests construct one.
func firstLegalMapping(t *testing.T, p *Platform, w Workload) Mapping {
	t.Helper()
	m := Mapping{
		NsTile: 32, FsTile: 32, NmTile: 8, FmTile: 8, CBmTile: 4,
		CBLoadTile: 4, FLoadTile: 8, Scheme: CoarseLoad,
		Traversal: [3]Loop{LoopN, LoopCB, LoopF},
	}
	if err := m.Validate(p, w); err != nil {
		t.Fatalf("test mapping invalid: %v", err)
	}
	return m
}

func randomLUT(rng *rand.Rand, w Workload) *lutnn.LUT {
	data := tensor.RandN(rng, 1, w.CB*w.CT, w.F)
	return &lutnn.LUT{CB: w.CB, CT: w.CT, F: w.F, Data: data.Data}
}

func randomIdx(rng *rand.Rand, w Workload) []uint8 {
	idx := make([]uint8, w.N*w.CB)
	for i := range idx {
		idx[i] = uint8(rng.Intn(w.CT))
	}
	return idx
}

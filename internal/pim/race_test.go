package pim

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestExecuteLUTConcurrentCallers runs the PE-group fan-out from several
// concurrent callers sharing one platform, index matrix and LUT. Each PE
// accumulates into its own tile of a private output tensor, so every
// concurrent execution must stay bit-exact with the reference lookup.
// Under -race this is the regression test for the executor fan-out.
func TestExecuteLUTConcurrentCallers(t *testing.T) {
	w, idx, tbl, _ := testKernel(5, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	want := tbl.Lookup(idx, w.N)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ExecuteLUT(p, w, m, idx, tbl)
			if err != nil {
				t.Error(err)
				return
			}
			if !tensor.Equal(res.Output, want) {
				t.Error("concurrent ExecuteLUT diverged from reference lookup")
			}
		}()
	}
	wg.Wait()
}

// TestExecuteLUTFaultyConcurrentCallers stresses the fault path — the
// shrunken-array re-dispatch fan-out plus per-PE RNG streams — from many
// concurrent callers sharing one plan. Every run must recover to the
// bit-exact reference and report identical deterministic Recovery counts,
// proving the per-PE state (index copies, outcome streams, counters) is
// private to each call. Run under -race.
func TestExecuteLUTFaultyConcurrentCallers(t *testing.T) {
	w, idx, tbl, _ := testKernel(6, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	plan := FaultPlan{Seed: 21, DeadPEFraction: 0.5, FlipRate: 0.05, StragglerSpread: 1}
	want := tbl.Lookup(idx, w.N)
	ref, err := PlanRecovery(p, w, m, plan)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, plan)
			if err != nil {
				t.Error(err)
				return
			}
			if !tensor.Equal(res.Output, want) {
				t.Error("concurrent faulty ExecuteLUT did not recover to reference")
			}
			if res.Recovery == nil || *res.Recovery != ref {
				t.Errorf("concurrent Recovery diverged: %+v vs %+v", res.Recovery, ref)
			}
		}()
	}
	wg.Wait()
}

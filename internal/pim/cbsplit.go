package pim

// This file models the partition scheme the paper deliberately REJECTS:
// splitting the codebook (CB) dimension across PEs. Doing so makes each PE
// produce a partial sum of the full output tile, which must be merged —
// and with no inter-PE datapath (limitation L2), merging means
// round-tripping every partial through the host. Quantifying this cost
// justifies design decision #3 in DESIGN.md (CB and CT stay untiled).

// CBSplitTiming models the LUT operator with the CB dimension split
// `ways` times on top of mapping m: each PE handles CB/ways codebooks of
// its (Ns, Fs) tile, and the host gathers and reduces `ways` partial
// output tiles per final tile.
func CBSplitTiming(p *Platform, w Workload, m Mapping, ways int) Timing {
	if ways <= 1 {
		return SimTiming(p, w, m)
	}
	sub := w
	sub.CB = w.CB / ways
	if sub.CB == 0 {
		sub.CB = 1
	}
	subM := m
	if subM.CBmTile > sub.CB {
		subM.CBmTile = sub.CB
	}
	t := timing(p, sub, subM, countEvents(p, sub, subM))

	// Partial-sum merging through the host (L2): every final output byte
	// is gathered `ways` times instead of once, then reduced by the host
	// at its memory bandwidth (modelled inside the gather term via the
	// extra traffic) and scattered nowhere — the host keeps the result.
	partialBytes := float64(w.OutputBytes()) * float64(ways)
	t.HostOutput = p.HostTransferTime(partialBytes, Gather)
	return t
}

// CBSplitPenalty returns the slowdown of splitting CB `ways` times versus
// spending the same extra PEs on the paper's partition (finer N tiling).
// Both alternatives use ways× more PEs and do 1/ways of the reduce per PE;
// only the CB split pays the partial-sum merge, so the ratio isolates the
// cost of violating L2. NsTile must be divisible by ways.
func CBSplitPenalty(p *Platform, w Workload, m Mapping, ways int) float64 {
	base := m
	base.NsTile = m.NsTile / ways
	if base.NsTile < 1 {
		base.NsTile = 1
	}
	if base.NmTile > base.NsTile {
		base.NmTile = base.NsTile
	}
	baseT := SimTiming(p, w, base).Total()
	split := CBSplitTiming(p, w, m, ways).Total()
	return split / baseT
}

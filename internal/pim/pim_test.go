package pim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lutnn"
	"repro/internal/tensor"
)

// testKernel builds a random LUT workload plus a legal default mapping.
func testKernel(seed int64, n, h, f, v, ct int) (Workload, []uint8, *lutnn.LUT, *lutnn.Codebooks) {
	rng := rand.New(rand.NewSource(seed))
	acts := tensor.RandN(rng, 1, n, h)
	cbs, err := lutnn.BuildCodebooks(acts, lutnn.Params{V: v, CT: ct}, seed)
	if err != nil {
		panic(err)
	}
	w := tensor.RandN(rng, 1, f, h)
	tbl, err := lutnn.BuildLUT(cbs, w)
	if err != nil {
		panic(err)
	}
	idx := cbs.Search(acts)
	return Workload{N: n, CB: h / v, CT: ct, F: f, ElemBytes: 4}, idx, tbl, cbs
}

func defaultMapping(w Workload, ns, fs int) Mapping {
	return Mapping{
		NsTile: ns, FsTile: fs,
		NmTile: min(ns, 8), FmTile: min(fs, 8), CBmTile: min(w.CB, 4),
		Traversal: [3]Loop{LoopN, LoopF, LoopCB},
		Scheme:    CoarseLoad, CBLoadTile: 1, FLoadTile: min(fs, 8),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExecuteLUTMatchesReference(t *testing.T) {
	w, idx, tbl, _ := testKernel(1, 32, 16, 24, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteLUT(p, w, m, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	want := tbl.Lookup(idx, w.N)
	if tensor.MaxAbsDiff(res.Output, want) > 1e-5 {
		t.Fatalf("distributed result differs from reference by %g", tensor.MaxAbsDiff(res.Output, want))
	}
	if res.PEs != (32/8)*(24/8) {
		t.Fatalf("PEs = %d", res.PEs)
	}
}

func TestExecuteLUTAllPartitionsBitExact(t *testing.T) {
	// Property: any legal sub-LUT partition yields the identical output.
	w, idx, tbl, _ := testKernel(2, 16, 8, 16, 2, 4)
	p := UPMEM()
	want := tbl.Lookup(idx, w.N)
	for _, ns := range []int{1, 2, 4, 8, 16} {
		for _, fs := range []int{1, 2, 4, 8, 16} {
			m := Mapping{NsTile: ns, FsTile: fs, NmTile: 1, FmTile: 1, CBmTile: 1,
				Traversal: [3]Loop{LoopN, LoopF, LoopCB},
				Scheme:    FineLoad, FLoadTile: 1}
			if m.PEs(w) > p.NumPE {
				continue
			}
			res, err := ExecuteLUT(p, w, m, idx, tbl)
			if err != nil {
				t.Fatalf("ns=%d fs=%d: %v", ns, fs, err)
			}
			if !tensor.Equal(res.Output, want) {
				t.Fatalf("ns=%d fs=%d: output differs", ns, fs)
			}
		}
	}
}

func TestExecuteLUTInt8MatchesQuantizedReference(t *testing.T) {
	w, idx, tbl, _ := testKernel(3, 16, 16, 16, 4, 8)
	q := tbl.Quantize()
	w.ElemBytes = 1
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	res, err := ExecuteLUTInt8(p, w, m, idx, q)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Lookup(idx, w.N)
	if !tensor.Equal(res.Output, want) {
		t.Fatal("INT8 distributed result differs from reference")
	}
}

func TestMappingValidation(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 64, CB: 16, CT: 16, F: 64, ElemBytes: 1}
	good := Mapping{NsTile: 16, FsTile: 16, NmTile: 8, FmTile: 8, CBmTile: 4,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB}, Scheme: StaticLoad}
	if err := good.Validate(p, w); err != nil {
		t.Fatalf("good mapping rejected: %v", err)
	}
	bad := []Mapping{
		{NsTile: 48, FsTile: 16, NmTile: 8, FmTile: 8, CBmTile: 4, Traversal: [3]Loop{LoopN, LoopF, LoopCB}},                                                  // 48 ∤ 64
		{NsTile: 16, FsTile: 16, NmTile: 5, FmTile: 8, CBmTile: 4, Traversal: [3]Loop{LoopN, LoopF, LoopCB}},                                                  // 5 ∤ 16
		{NsTile: 1, FsTile: 1, NmTile: 1, FmTile: 1, CBmTile: 1, Traversal: [3]Loop{LoopN, LoopF, LoopCB}},                                                    // 64·64 > 1024 PEs... (4096)
		{NsTile: 16, FsTile: 16, NmTile: 8, FmTile: 8, CBmTile: 4, Traversal: [3]Loop{LoopN, LoopN, LoopCB}},                                                  // dup loop
		{NsTile: 16, FsTile: 16, NmTile: 8, FmTile: 8, CBmTile: 4, Traversal: [3]Loop{LoopN, LoopF, LoopCB}, Scheme: CoarseLoad, CBLoadTile: 3, FLoadTile: 8}, // 3 ∤ 4
	}
	for i, m := range bad {
		if err := m.Validate(p, w); err == nil {
			t.Fatalf("bad mapping %d accepted: %v", i, m)
		}
	}
}

func TestWRAMConstraintEnforced(t *testing.T) {
	p := UPMEM()
	// Static scheme with a huge F tile: LUT resident bytes = CB·CT·Fs =
	// 256·16·1024 = 4 MB ≫ 64 KB.
	w := Workload{N: 1024, CB: 256, CT: 16, F: 1024, ElemBytes: 1}
	m := Mapping{NsTile: 1024, FsTile: 1024, NmTile: 8, FmTile: 8, CBmTile: 4,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB}, Scheme: StaticLoad}
	if err := m.Validate(p, w); err == nil {
		t.Fatal("WRAM-violating static mapping accepted")
	}
}

func TestEventCountsBasic(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 16, CB: 8, CT: 4, F: 16, ElemBytes: 1}
	m := Mapping{NsTile: 16, FsTile: 16, NmTile: 4, FmTile: 4, CBmTile: 2,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB},
		Scheme:    FineLoad, FLoadTile: 4}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	ev := countEvents(p, w, m)
	// Reduce work is exactly Ns·CB·Fs.
	if ev.ReduceElems != 16*8*16 {
		t.Fatalf("reduce elems %d", ev.ReduceElems)
	}
	// Fine-grain LUT traffic touches exactly the used elements.
	if ev.LUTLoadBytes != 16*8*16 {
		t.Fatalf("fine LUT bytes %d", ev.LUTLoadBytes)
	}
	if ev.LUTLoadOps != 16*8*16/4 {
		t.Fatalf("fine LUT ops %d", ev.LUTLoadOps)
	}
	// Index tiles: trips = (4,4,4); deepest loop touching {N,CB} is CB
	// (innermost) → visits = 4·4·4 = 64 tiles of 4·2 bytes.
	if ev.IndexLoadBytes != 64*8 {
		t.Fatalf("index bytes %d", ev.IndexLoadBytes)
	}
	// Output: deepest of {N,F} is F at position 1 → visits = 16; distinct
	// tiles = 16, so zero loads and 16 stores... but CB is inner, so the
	// tile is visited once and accumulated in place: stores = visits = 16.
	if ev.OutLoadBytes != 0 {
		t.Fatalf("out load bytes %d (CB innermost should keep tile resident)", ev.OutLoadBytes)
	}
	if ev.OutStoreBytes != 16*4*4*4 {
		t.Fatalf("out store bytes %d", ev.OutStoreBytes)
	}
}

func TestTraversalOrderChangesTraffic(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 64, CB: 16, CT: 8, F: 64, ElemBytes: 1}
	base := Mapping{NsTile: 64, FsTile: 64, NmTile: 8, FmTile: 8, CBmTile: 4,
		Scheme: CoarseLoad, CBLoadTile: 1, FLoadTile: 8}
	mCBInner := base
	mCBInner.Traversal = [3]Loop{LoopN, LoopF, LoopCB}
	mCBOuter := base
	mCBOuter.Traversal = [3]Loop{LoopCB, LoopN, LoopF}
	evInner := countEvents(p, w, mCBInner)
	evOuter := countEvents(p, w, mCBOuter)
	// With CB outermost the output tile is revisited per CB tile, forcing
	// load/store churn that the CB-inner order avoids.
	if evOuter.OutLoadBytes <= evInner.OutLoadBytes {
		t.Fatalf("expected CB-outer to move more output bytes: %d vs %d",
			evOuter.OutLoadBytes, evInner.OutLoadBytes)
	}
}

func TestStaticLoadsLUTOnce(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 256, CB: 16, CT: 8, F: 64, ElemBytes: 1}
	m := Mapping{NsTile: 64, FsTile: 8, NmTile: 8, FmTile: 8, CBmTile: 4,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB}, Scheme: StaticLoad}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	ev := countEvents(p, w, m)
	if ev.LUTLoadBytes != int64(w.CB*w.CT*m.FsTile*w.ElemBytes) {
		t.Fatalf("static LUT bytes %d", ev.LUTLoadBytes)
	}
}

func TestTimingPositiveAndDecomposed(t *testing.T) {
	w, idx, tbl, _ := testKernel(4, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 16, 8)
	res, err := ExecuteLUT(p, w, m, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timing
	if tm.HostIndex <= 0 || tm.HostLUT <= 0 || tm.HostOutput <= 0 {
		t.Fatalf("host transfer times must be positive: %+v", tm)
	}
	if tm.KernelRed <= 0 || tm.KernelXfer <= 0 {
		t.Fatalf("kernel times must be positive: %+v", tm)
	}
	if tm.Total() != tm.Sub()+tm.Kernel() {
		t.Fatal("total != sub + kernel")
	}
}

func TestMorePEsReduceKernelTime(t *testing.T) {
	w, idx, tbl, _ := testKernel(5, 128, 16, 64, 2, 8)
	p := UPMEM()
	few := defaultMapping(w, 128, 64) // 1 PE
	many := defaultMapping(w, 16, 8)  // 64 PEs
	r1, err := ExecuteLUT(p, w, few, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ExecuteLUT(p, w, many, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Timing.Kernel() >= r1.Timing.Kernel() {
		t.Fatalf("64 PEs (%.3g s) not faster than 1 PE (%.3g s)",
			r2.Timing.Kernel(), r1.Timing.Kernel())
	}
}

func TestHostTransferModes(t *testing.T) {
	p := UPMEM()
	b := p.HostTransferTime(1e6, Broadcast)
	s := p.HostTransferTime(1e6, Scatter)
	g := p.HostTransferTime(1e6, Gather)
	if !(b < s && s < g) {
		t.Fatalf("expected broadcast < scatter < gather, got %g %g %g", b, s, g)
	}
	if p.HostTransferTime(0, Broadcast) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
}

func TestLocalTransferSetupPenalty(t *testing.T) {
	p := UPMEM()
	// Same bytes in one DMA vs 1000 DMAs: many small ops must be slower.
	one := p.LocalTransferTime(64_000, 1)
	many := p.LocalTransferTime(64_000, 1000)
	if many <= one {
		t.Fatal("per-op setup not penalized")
	}
}

func TestFineLoadReducePenalty(t *testing.T) {
	p := UPMEM()
	if p.ReduceTime(1000, FineLoad) <= p.ReduceTime(1000, StaticLoad) {
		t.Fatal("fine-grain reduce should cost extra cycles")
	}
}

func TestGEMMOnPIMScalesWithWork(t *testing.T) {
	p := UPMEM()
	small := GEMMOnPIM(p, GEMMWorkload{N: 512, H: 768, F: 768, Batch: 1, ElemBytes: 1})
	big := GEMMOnPIM(p, GEMMWorkload{N: 4096, H: 768, F: 768, Batch: 8, ElemBytes: 1})
	if big.Total() <= small.Total() {
		t.Fatal("8× work should take longer")
	}
}

func TestGEMMBatchPenaltyOnGEMVPlatforms(t *testing.T) {
	p := HBMPIM()
	// Same total rows, different batch composition: larger batch pays the
	// GEMV penalty (paper Fig. 14's trend).
	b1 := GEMMOnPIM(p, GEMMWorkload{N: 1024, H: 1024, F: 1024, Batch: 1, ElemBytes: 2})
	b8 := GEMMOnPIM(p, GEMMWorkload{N: 1024, H: 1024, F: 1024, Batch: 8, ElemBytes: 2})
	if b8.Total() <= b1.Total() {
		t.Fatal("batch penalty missing on GEMV dataflow")
	}
	// UPMEM (weight-resident) has no such penalty.
	u := UPMEM()
	u1 := GEMMOnPIM(u, GEMMWorkload{N: 1024, H: 1024, F: 1024, Batch: 1, ElemBytes: 1})
	u8 := GEMMOnPIM(u, GEMMWorkload{N: 1024, H: 1024, F: 1024, Batch: 8, ElemBytes: 1})
	if u1.Total() != u8.Total() {
		t.Fatal("UPMEM should be batch-insensitive at fixed N")
	}
}

func TestPIMDLBeatsGEMMOnPIM(t *testing.T) {
	// The headline result (22.6×–37.1×): the LUT operator must be much
	// faster than GEMM-on-PIM for a BERT-base-like layer on UPMEM.
	p := UPMEM()
	n, h, f := 4096, 768, 768
	v, ct := 4, 16
	w := Workload{N: n, CB: h / v, CT: ct, F: f, ElemBytes: 1}
	m := Mapping{NsTile: n / 128, FsTile: f / 8, NmTile: 8, FmTile: 32, CBmTile: 16,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB},
		Scheme:    CoarseLoad, CBLoadTile: 1, FLoadTile: 32}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	ev := countEvents(p, w, m)
	lut := timing(p, w, m, ev).Total()
	gemm := GEMMOnPIM(p, GEMMWorkload{N: n, H: h, F: f, Batch: 8, ElemBytes: 1}).Total()
	if gemm/lut < 4 {
		t.Fatalf("PIM-DL speedup over GEMM-on-PIM only %.1f×", gemm/lut)
	}
}

func TestExecuteLUTRejectsBadInputs(t *testing.T) {
	w, idx, tbl, _ := testKernel(6, 16, 8, 16, 2, 4)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	// Wrong index length.
	if _, err := ExecuteLUT(p, w, m, idx[:10], tbl); err == nil {
		t.Fatal("short index accepted")
	}
	// Wrong workload shape.
	w2 := w
	w2.CT = 99
	if _, err := ExecuteLUT(p, w2, m, idx, tbl); err == nil {
		t.Fatal("mismatched CT accepted")
	}
	// Non-dividing sub-tile.
	m2 := m
	m2.NsTile = 5
	if _, err := ExecuteLUT(p, w, m2, idx, tbl); err == nil {
		t.Fatal("non-dividing tile accepted")
	}
}

func TestReduceElemsInvariantAcrossMappings(t *testing.T) {
	// Total reduce work across all PEs is mapping-invariant: N·CB·F.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Workload{N: 32, CB: 8, CT: 4, F: 32, ElemBytes: 1}
		p := UPMEM()
		ns := []int{1, 2, 4, 8, 16, 32}[rng.Intn(6)]
		fs := []int{1, 2, 4, 8, 16, 32}[rng.Intn(6)]
		m := Mapping{NsTile: ns, FsTile: fs, NmTile: 1, FmTile: 1, CBmTile: 1,
			Traversal: [3]Loop{LoopN, LoopF, LoopCB}, Scheme: FineLoad, FLoadTile: 1}
		if m.PEs(w) > p.NumPE {
			return true
		}
		ev := countEvents(p, w, m)
		total := ev.ReduceElems * int64(m.PEs(w))
		return total == int64(w.N)*int64(w.CB)*int64(w.F)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformPresetsSane(t *testing.T) {
	for _, p := range []*Platform{UPMEM(), HBMPIM(), AiM()} {
		if p.NumPE <= 0 || p.FreqHz <= 0 || p.WRAMBytes <= 0 {
			t.Fatalf("%s: bad basic params", p.Name)
		}
		if p.BroadcastBW < p.ScatterBW {
			t.Fatalf("%s: broadcast should be fastest", p.Name)
		}
		if p.PeakGOPS() <= 0 {
			t.Fatalf("%s: bad peak", p.Name)
		}
	}
	// Cross-platform ordering from Table 1: AiM > HBM-PIM > UPMEM in
	// aggregate internal bandwidth.
	u, h, a := UPMEM(), HBMPIM(), AiM()
	uBW := u.LocalBWPerPE * float64(u.NumPE)
	hBW := h.LocalBWPerPE * float64(h.NumPE)
	aBW := a.LocalBWPerPE * float64(a.NumPE)
	if !(uBW < hBW && hBW < aBW) {
		t.Fatalf("bandwidth ordering wrong: %g %g %g", uBW, hBW, aBW)
	}
}

func TestExecuteLUTHalfMatchesReference(t *testing.T) {
	w, idx, tbl, _ := testKernel(7, 32, 16, 24, 2, 8)
	w.ElemBytes = 2
	p := HBMPIM()
	m := defaultMapping(w, 8, 8)
	for _, bf := range []bool{false, true} {
		half := tbl.QuantizeHalf(bf)
		res, err := ExecuteLUTHalf(p, w, m, idx, half)
		if err != nil {
			t.Fatal(err)
		}
		want := half.Lookup(idx, w.N)
		if !tensor.Equal(res.Output, want) {
			t.Fatalf("bf=%v: distributed half-precision result differs", bf)
		}
	}
}

package pim

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadPlatform reads a platform description from JSON, so users can model
// DRAM-PIM products beyond the three built-ins. Unset fields inherit from
// the named Base platform ("upmem", "hbm-pim", "aim"); with no base, all
// required fields must be present.
//
// Example:
//
//	{"base": "upmem", "name": "UPMEM-2rank", "numPE": 256, "powerWatts": 28}
func LoadPlatform(r io.Reader) (*Platform, error) {
	var raw struct {
		Base string `json:"base"`

		Name      *string  `json:"name"`
		NumPE     *int     `json:"numPE"`
		FreqHz    *float64 `json:"freqHz"`
		WRAMBytes *int     `json:"wramBytes"`
		MRAMBytes *int64   `json:"mramBytes"`

		BroadcastBW     *float64 `json:"broadcastBW"`
		ScatterBW       *float64 `json:"scatterBW"`
		GatherBW        *float64 `json:"gatherBW"`
		HostXferLatency *float64 `json:"hostXferLatency"`

		LocalBWPerPE *float64 `json:"localBWPerPE"`
		DMASetup     *float64 `json:"dmaSetup"`
		MaxDMABytes  *int     `json:"maxDMABytes"`
		LUTAccessEff *float64 `json:"lutAccessEff"`

		OverlapComputeTransfer *bool    `json:"overlapComputeTransfer"`
		ReduceCycles           *float64 `json:"reduceCycles"`
		FineGrainExtraCycles   *float64 `json:"fineGrainExtraCycles"`

		GEMMMACsPerCycle   *float64 `json:"gemmMACsPerCycle"`
		GEMMWeightResident *bool    `json:"gemmWeightResident"`
		GEMVBatchPenalty   *float64 `json:"gemvBatchPenalty"`
		GEMVRowOverhead    *float64 `json:"gemvRowOverhead"`
		GEMVEff            *float64 `json:"gemvEff"`
		SharedMemoryHost   *bool    `json:"sharedMemoryHost"`

		ElemBytes  *int     `json:"elemBytes"`
		PowerWatts *float64 `json:"powerWatts"`
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("pim: parsing platform config: %w", err)
	}

	var p *Platform
	switch raw.Base {
	case "upmem":
		p = UPMEM()
	case "hbm-pim", "hbmpim":
		p = HBMPIM()
	case "aim":
		p = AiM()
	case "":
		p = &Platform{}
	default:
		return nil, fmt.Errorf("pim: unknown base platform %q", raw.Base)
	}

	set := func(dst any, src any) {
		switch d := dst.(type) {
		case *string:
			if s := src.(*string); s != nil {
				*d = *s
			}
		case *int:
			if s := src.(*int); s != nil {
				*d = *s
			}
		case *int64:
			if s := src.(*int64); s != nil {
				*d = *s
			}
		case *float64:
			if s := src.(*float64); s != nil {
				*d = *s
			}
		case *bool:
			if s := src.(*bool); s != nil {
				*d = *s
			}
		}
	}
	set(&p.Name, raw.Name)
	set(&p.NumPE, raw.NumPE)
	set(&p.FreqHz, raw.FreqHz)
	set(&p.WRAMBytes, raw.WRAMBytes)
	set(&p.MRAMBytes, raw.MRAMBytes)
	set(&p.BroadcastBW, raw.BroadcastBW)
	set(&p.ScatterBW, raw.ScatterBW)
	set(&p.GatherBW, raw.GatherBW)
	set(&p.HostXferLatency, raw.HostXferLatency)
	set(&p.LocalBWPerPE, raw.LocalBWPerPE)
	set(&p.DMASetup, raw.DMASetup)
	set(&p.MaxDMABytes, raw.MaxDMABytes)
	set(&p.LUTAccessEff, raw.LUTAccessEff)
	set(&p.OverlapComputeTransfer, raw.OverlapComputeTransfer)
	set(&p.ReduceCycles, raw.ReduceCycles)
	set(&p.FineGrainExtraCycles, raw.FineGrainExtraCycles)
	set(&p.GEMMMACsPerCycle, raw.GEMMMACsPerCycle)
	set(&p.GEMMWeightResident, raw.GEMMWeightResident)
	set(&p.GEMVBatchPenalty, raw.GEMVBatchPenalty)
	set(&p.GEMVRowOverhead, raw.GEMVRowOverhead)
	set(&p.GEMVEff, raw.GEMVEff)
	set(&p.SharedMemoryHost, raw.SharedMemoryHost)
	set(&p.ElemBytes, raw.ElemBytes)
	set(&p.PowerWatts, raw.PowerWatts)

	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the platform for usable values.
func (p *Platform) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("pim: platform needs a name")
	case p.NumPE <= 0:
		return fmt.Errorf("pim: %s: NumPE must be positive", p.Name)
	case p.FreqHz <= 0:
		return fmt.Errorf("pim: %s: FreqHz must be positive", p.Name)
	case p.WRAMBytes <= 0 || p.MRAMBytes <= 0:
		return fmt.Errorf("pim: %s: memory sizes must be positive", p.Name)
	case p.BroadcastBW <= 0 || p.ScatterBW <= 0 || p.GatherBW <= 0:
		return fmt.Errorf("pim: %s: host bandwidths must be positive", p.Name)
	case p.LocalBWPerPE <= 0:
		return fmt.Errorf("pim: %s: local bandwidth must be positive", p.Name)
	case p.MaxDMABytes <= 0:
		return fmt.Errorf("pim: %s: MaxDMABytes must be positive", p.Name)
	case p.ReduceCycles <= 0:
		return fmt.Errorf("pim: %s: ReduceCycles must be positive", p.Name)
	case p.ElemBytes <= 0:
		return fmt.Errorf("pim: %s: ElemBytes must be positive", p.Name)
	}
	return nil
}

package pim

import (
	"strings"
	"testing"
)

func TestLoadPlatformWithBase(t *testing.T) {
	p, err := LoadPlatform(strings.NewReader(
		`{"base": "upmem", "name": "UPMEM-2rank", "numPE": 128, "powerWatts": 28}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "UPMEM-2rank" || p.NumPE != 128 || p.PowerWatts != 28 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	// Unset fields inherited from the base.
	if p.FreqHz != UPMEM().FreqHz || p.WRAMBytes != UPMEM().WRAMBytes {
		t.Fatal("base fields not inherited")
	}
	// Base must stay untouched.
	if UPMEM().NumPE != 1024 {
		t.Fatal("base platform mutated")
	}
}

func TestLoadPlatformAllBases(t *testing.T) {
	for _, base := range []string{"upmem", "hbm-pim", "aim"} {
		p, err := LoadPlatform(strings.NewReader(`{"base": "` + base + `"}`))
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", base, err)
		}
	}
}

func TestLoadPlatformRejectsUnknownBase(t *testing.T) {
	if _, err := LoadPlatform(strings.NewReader(`{"base": "hmc"}`)); err == nil {
		t.Fatal("unknown base accepted")
	}
}

func TestLoadPlatformRejectsUnknownField(t *testing.T) {
	if _, err := LoadPlatform(strings.NewReader(`{"base": "upmem", "bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadPlatformRejectsIncomplete(t *testing.T) {
	// No base and almost no fields: must fail validation.
	if _, err := LoadPlatform(strings.NewReader(`{"name": "x"}`)); err == nil {
		t.Fatal("incomplete platform accepted")
	}
}

func TestLoadedPlatformUsableByTuner(t *testing.T) {
	p, err := LoadPlatform(strings.NewReader(
		`{"base": "upmem", "name": "slow", "localBWPerPE": 100e6}`))
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{N: 64, CB: 16, CT: 8, F: 64, ElemBytes: 1}
	m := Mapping{NsTile: 16, FsTile: 16, NmTile: 8, FmTile: 8, CBmTile: 4,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB}, Scheme: StaticLoad}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	slow := SimTiming(p, w, m).KernelXfer
	fast := SimTiming(UPMEM(), w, m).KernelXfer
	if slow <= fast {
		t.Fatal("slower banks should cost more")
	}
}

func TestPlatformValidateCatchesBadFields(t *testing.T) {
	good := UPMEM()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := UPMEM()
	bad.ReduceCycles = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ReduceCycles accepted")
	}
}

package pim

import "repro/internal/metrics"

// This file exports the simulator's per-resource activity as metrics.
// Every number recorded here is read straight off the structures the
// timing model already computes — Events (per-PE DMA counts), Timing
// (Eq. 3–10 seconds) and HostTraffic (Eq. 4 bytes) — so the counters are
// the model's own numbers, not a parallel estimate:
//
//	pimdl_pim_time_seconds_total{phase}  sums exactly to Timing.Total()
//	pimdl_pim_pe_busy_seconds_total      equals Σ Timing.Kernel() (worst-PE
//	                                     busy time, the Eq. 6 term)
//	pimdl_pim_mram_*_bytes_total         per-PE Events bytes × PEs used
//	pimdl_pim_host_bytes_total{dir}      the Eq. 4 transfer sizes
//
// Counters accumulate over functional executions (ExecuteLUT* and the
// fault variants); pure timing queries (SimTiming, the auto-tuner's
// thousands of candidate evaluations) record nothing, so the totals mean
// "work the simulated array actually did".
var (
	pimMetrics = struct {
		executions *metrics.Counter
		tiles      *metrics.Counter
		peBusy     *metrics.FloatCounter
		time       *metrics.FloatCounterFamily
		timeBy     map[string]*metrics.FloatCounter
		mramRead   *metrics.Counter
		mramWrite  *metrics.Counter
		dmaOps     *metrics.Counter
		hostBytes  *metrics.CounterFamily
		hostBy     map[string]*metrics.Counter
		broadcast  *metrics.Counter
		retries    *metrics.Counter
		redispatch *metrics.Counter
		deadPEs    *metrics.Counter
		residual   *metrics.Counter
	}{}
)

func init() {
	r := metrics.Default()
	m := &pimMetrics
	m.executions = r.NewCounter("pimdl_pim_executions_total",
		"functional LUT operator executions on the simulated array")
	m.tiles = r.NewCounter("pimdl_pim_tiles_executed_total",
		"output tiles executed by PEs, including fault re-dispatches")
	m.peBusy = r.NewFloatCounter("pimdl_pim_pe_busy_seconds_total",
		"modelled worst-PE kernel busy time (Eq. 6: transfer + reduce)")
	m.time = r.NewFloatCounterFamily("pimdl_pim_time_seconds_total",
		"modelled operator seconds by phase (Eqs. 3-10); the family sums to Timing.Total()", "phase")
	m.timeBy = map[string]*metrics.FloatCounter{
		"host_index":    m.time.With("host_index"),
		"host_lut":      m.time.With("host_lut"),
		"host_output":   m.time.With("host_output"),
		"kernel_xfer":   m.time.With("kernel_xfer"),
		"kernel_reduce": m.time.With("kernel_reduce"),
	}
	m.mramRead = r.NewCounter("pimdl_pim_mram_read_bytes_total",
		"bank->buffer DMA bytes across all used PEs (index + LUT + output reload)")
	m.mramWrite = r.NewCounter("pimdl_pim_mram_write_bytes_total",
		"buffer->bank DMA bytes across all used PEs (output stores)")
	m.dmaOps = r.NewCounter("pimdl_pim_dma_ops_total",
		"bank<->buffer DMA operations across all used PEs")
	m.hostBytes = r.NewCounterFamily("pimdl_pim_host_bytes_total",
		"host<->PE bytes of the sub-LUT partition (Eq. 4)", "dir")
	m.hostBy = map[string]*metrics.Counter{
		"index":  m.hostBytes.With("index"),
		"lut":    m.hostBytes.With("lut"),
		"output": m.hostBytes.With("output"),
	}
	m.broadcast = r.NewCounter("pimdl_pim_broadcast_bytes_total",
		"host->PE bytes that travel in broadcast mode (paper L1 reuse)")
	m.retries = r.NewCounter("pimdl_pim_dma_retries_total",
		"checksum-failed DMA transfers re-issued by the fault layer")
	m.redispatch = r.NewCounter("pimdl_pim_redispatched_tiles_total",
		"tiles re-dispatched from dead PEs onto healthy ones")
	m.deadPEs = r.NewCounter("pimdl_pim_dead_pe_total",
		"dead PEs encountered among the used set, summed over executions")
	m.residual = r.NewCounter("pimdl_pim_residual_corrupt_total",
		"output elements left corrupted after the DMA retry budget")
}

// recordExecution folds one functional execution's model numbers into
// the metrics registry.
func recordExecution(p *Platform, w Workload, m Mapping, res *Result) {
	if !metrics.Enabled() {
		return
	}
	pm := &pimMetrics
	pm.executions.Inc()

	tiles := int64(res.PEs)
	if rec := res.Recovery; rec != nil {
		tiles += int64(rec.Redispatched)
		pm.retries.Add(int64(rec.Retries))
		pm.redispatch.Add(int64(rec.Redispatched))
		pm.deadPEs.Add(int64(rec.DeadPEs))
		pm.residual.Add(int64(rec.ResidualCorrupt))
	}
	pm.tiles.Add(tiles)

	tm := res.Timing
	pm.timeBy["host_index"].Add(tm.HostIndex)
	pm.timeBy["host_lut"].Add(tm.HostLUT)
	pm.timeBy["host_output"].Add(tm.HostOutput)
	pm.timeBy["kernel_xfer"].Add(tm.KernelXfer)
	pm.timeBy["kernel_reduce"].Add(tm.KernelRed)
	pm.peBusy.Add(tm.Kernel())

	// Per-PE DMA activity scaled to the whole used array: every PE runs
	// the same micro kernel on identically sized tiles (paper L3).
	npe := int64(res.PEs)
	ev := res.Events
	pm.mramRead.Add((ev.IndexLoadBytes + ev.LUTLoadBytes + ev.OutLoadBytes) * npe)
	pm.mramWrite.Add(ev.OutStoreBytes * npe)
	pm.dmaOps.Add(int64(ev.IndexLoadOps+ev.LUTLoadOps+ev.OutLoadOps+ev.OutStoreOps) * npe)

	ht := HostTrafficFor(p, w, m)
	pm.hostBy["index"].Add(int64(ht.IndexBytes))
	pm.hostBy["lut"].Add(int64(ht.LUTBytes))
	pm.hostBy["output"].Add(int64(ht.OutputBytes))
	pm.broadcast.Add(int64(ht.BroadcastBytes()))
}

package pim

import (
	"math"

	"repro/internal/tensor"
)

// GEMMWorkload is one linear layer executed as a plain matrix multiply on
// the PIM array — the paper's "GEMM-based inference on DRAM-PIMs"
// baseline (offloading linear layers without LUT-NN conversion).
type GEMMWorkload struct {
	N, H, F int
	// Batch is the number of independent sequences inside N; the
	// GEMV-style dataflow of HBM-PIM/AiM pays a per-row command cost that
	// grows with batch (paper §6.7: "larger batch sizes are unfriendly").
	Batch     int
	ElemBytes int
}

// GEMMOnPIM models one GEMM executed across the platform's PEs with the
// output features partitioned evenly (each PE computes an N×(F/#PE)
// slice). Returns the modelled timing; the arithmetic itself is exact, so
// no functional simulation is needed for correctness experiments.
func GEMMOnPIM(p *Platform, w GEMMWorkload) Timing {
	var t Timing
	npe := p.NumPE
	fs := float64(w.F) / float64(npe)

	// Host side: activations broadcast to every PE (or written once into
	// shared device memory), outputs gathered. Weights are assumed
	// pre-loaded (serving steady state).
	actCopies := float64(npe)
	if p.SharedMemoryHost {
		actCopies = 1
	}
	actBytes := float64(w.N*w.H*w.ElemBytes) * actCopies
	t.HostIndex = p.HostTransferTime(actBytes, Broadcast)
	t.HostOutput = p.HostTransferTime(float64(w.N*w.F*4), Gather)

	// PE side.
	macs := float64(w.N) * float64(w.H) * fs
	compute := macs / (p.GEMMMACsPerCycle * p.FreqHz)

	var stream float64
	if p.GEMMWeightResident {
		// Weights live in the PE's bank; they stream into the on-chip
		// buffer once per block of activation rows that fits alongside
		// them.
		rowsPerPass := float64(p.WRAMBytes) / float64(2*w.H*w.ElemBytes)
		if rowsPerPass < 1 {
			rowsPerPass = 1
		}
		passes := math.Ceil(float64(w.N) / rowsPerPass)
		weightBytes := float64(w.H) * fs * float64(w.ElemBytes)
		stream = p.LocalTransferTime(passes*weightBytes, int(passes))
	} else {
		// GEMV-style dataflow: the full weight slice streams from the
		// banks for every activation row (no reuse), with a batch penalty
		// for per-row command overhead and bank-conflict loss.
		bytes := float64(w.N) * float64(w.H) * fs * float64(w.ElemBytes)
		penalty := 1 + p.GEMVBatchPenalty*math.Log2(math.Max(1, float64(w.Batch)))
		eff := p.GEMVEff
		if eff <= 0 {
			eff = 1
		}
		stream = bytes/(p.LocalBWPerPE*eff)*penalty + float64(w.N)*p.GEMVRowOverhead
	}

	// MAC engines overlap compute with streaming; in-order DPUs do not.
	if p.GEMMWeightResident {
		t.KernelXfer = stream
		t.KernelRed = compute
	} else {
		t.KernelRed = math.Max(stream, compute)
	}
	return t
}

// ExecuteGEMMOnPIM additionally produces the functional result (exact
// matmul A·Wᵀ) so end-to-end baselines can verify outputs.
func ExecuteGEMMOnPIM(p *Platform, w GEMMWorkload, a, wt *tensor.Tensor) (*tensor.Tensor, Timing) {
	return tensor.MatMulT(a, wt), GEMMOnPIM(p, w)
}

// ElementwiseOnPIM models a memory-bound elementwise operator (ReLU, add,
// norm) over n float32 elements: the data streams once through the PE
// banks at aggregate local bandwidth.
func ElementwiseOnPIM(p *Platform, nElems int) float64 {
	bytes := float64(nElems) * 4 * 2 // read + write
	agg := p.LocalBWPerPE * float64(p.NumPE)
	return p.HostXferLatency + bytes/agg
}

package pim

import (
	"fmt"

	"repro/internal/lutnn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Events counts, for one PE, the DMA operations and bytes moved between
// its local bank and on-chip buffer, plus reduce work. All PEs execute the
// same micro kernel on identically sized tiles (the load-balance property
// the partition scheme guarantees — paper L3), so one set of counts covers
// the whole array.
type Events struct {
	IndexLoadOps   int
	IndexLoadBytes int64
	LUTLoadOps     int
	LUTLoadBytes   int64
	OutLoadOps     int
	OutLoadBytes   int64
	OutStoreOps    int
	OutStoreBytes  int64
	ReduceElems    int64
}

// Timing decomposes the modelled execution time of one LUT operator
// (Eqs. 3–10).
type Timing struct {
	HostIndex  float64 // t_sub_index: index tiles to PEs
	HostLUT    float64 // t_sub_lut: table tiles to PEs
	HostOutput float64 // t_sub_output: results back to host
	KernelXfer float64 // t_transfer: bank↔buffer traffic, worst PE
	KernelRed  float64 // t_reduce: accumulate work, worst PE
}

// Sub returns the sub-LUT partition overhead t_sub-lut (Eq. 3).
func (t Timing) Sub() float64 { return t.HostIndex + t.HostLUT + t.HostOutput }

// Kernel returns the micro-kernel latency (Eq. 6).
func (t Timing) Kernel() float64 { return t.KernelXfer + t.KernelRed }

// Total returns end-to-end operator time.
func (t Timing) Total() float64 { return t.Sub() + t.Kernel() }

// Result is the outcome of a simulated LUT operator execution.
type Result struct {
	Output *tensor.Tensor
	Events Events
	Timing Timing
	PEs    int
	// Recovery reports the fault-tolerance activity of the run. It is nil
	// for executions without a fault plan (or with a zero plan).
	Recovery *Recovery
}

// countEvents derives the per-PE event counts for mapping m on workload w.
// The counting follows the actual kernel the simulator executes: output
// tiles skip the load on their first visit (fresh accumulators) and large
// staging loads split at the platform's DMA granularity. The analytical
// model in the mapping package intentionally simplifies both (that gap is
// the cost-model error quantified in Fig. 13).
func countEvents(p *Platform, w Workload, m Mapping) Events {
	tn := m.NsTile / m.NmTile
	tf := m.FsTile / m.FmTile
	tcb := w.CB / m.CBmTile
	trips := map[Loop]int{LoopN: tn, LoopF: tf, LoopCB: tcb}

	// visits(dims) = Π trips of loops from the outermost through the
	// deepest loop that indexes the tensor (classic reuse analysis).
	visits := func(dims ...Loop) int {
		in := func(l Loop) bool {
			for _, d := range dims {
				if d == l {
					return true
				}
			}
			return false
		}
		deepest := -1
		for i, l := range m.Traversal {
			if in(l) {
				deepest = i
			}
		}
		prod := 1
		for i := 0; i <= deepest; i++ {
			prod *= trips[m.Traversal[i]]
		}
		return prod
	}

	dmaOps := func(bytes int) int {
		if bytes <= 0 {
			return 0
		}
		return (bytes + p.MaxDMABytes - 1) / p.MaxDMABytes
	}

	var ev Events

	// Index MTiles: Nm×CBm one-byte entries per visit.
	idxVisits := visits(LoopN, LoopCB)
	idxBytes := m.NmTile * m.CBmTile
	ev.IndexLoadOps = idxVisits * dmaOps(idxBytes)
	ev.IndexLoadBytes = int64(idxVisits) * int64(idxBytes)

	// Output MTiles: Nm×Fm 4-byte accumulators. Every visit stores; loads
	// skip the first visit of each distinct tile (accumulators start at
	// zero on-chip).
	outVisits := visits(LoopN, LoopF)
	outBytes := m.NmTile * m.FmTile * 4
	distinctOut := tn * tf
	loadVisits := outVisits - distinctOut
	ev.OutLoadOps = loadVisits * dmaOps(outBytes)
	ev.OutLoadBytes = int64(loadVisits) * int64(outBytes)
	ev.OutStoreOps = outVisits * dmaOps(outBytes)
	ev.OutStoreBytes = int64(outVisits) * int64(outBytes)

	// LUT traffic by load scheme.
	switch m.Scheme {
	case StaticLoad:
		bytes := w.CB * w.CT * m.FsTile * w.ElemBytes
		ev.LUTLoadOps = dmaOps(bytes)
		ev.LUTLoadBytes = int64(bytes)
	case CoarseLoad:
		lutVisits := visits(LoopCB, LoopF)
		opsPerVisit := (m.CBmTile / m.CBLoadTile) * (m.FmTile / m.FLoadTile)
		blockBytes := m.CBLoadTile * w.CT * m.FLoadTile * w.ElemBytes
		ev.LUTLoadOps = lutVisits * opsPerVisit * dmaOps(blockBytes)
		ev.LUTLoadBytes = int64(lutVisits) * int64(opsPerVisit) * int64(blockBytes)
	case FineLoad:
		// Only the indexed rows are fetched, FLoadTile features at a time.
		elems := int64(m.NsTile) * int64(w.CB) * int64(m.FsTile)
		ev.LUTLoadOps = int(elems / int64(m.FLoadTile))
		ev.LUTLoadBytes = elems * int64(w.ElemBytes)
	}

	ev.ReduceElems = int64(m.NsTile) * int64(w.CB) * int64(m.FsTile)
	return ev
}

// HostTraffic is the Eq. 4 host↔PE transfer decomposition of one LUT
// operator: the bytes each sub-LUT partition phase moves and the bus
// mode it moves them in. The timing model and the metrics layer both
// read these — the byte counters exported per run are exactly the
// numbers the model converts into seconds, not a parallel estimate.
type HostTraffic struct {
	IndexBytes, LUTBytes, OutputBytes float64
	IndexMode, LUTMode                TransferMode
}

// BroadcastBytes returns the bytes that travel in broadcast mode.
func (h HostTraffic) BroadcastBytes() float64 {
	var b float64
	if h.IndexMode == Broadcast {
		b += h.IndexBytes
	}
	if h.LUTMode == Broadcast {
		b += h.LUTBytes
	}
	return b
}

// HostTrafficFor computes the host-transfer sizes and modes for mapping
// m on workload w (see HostTraffic).
func HostTrafficFor(p *Platform, w Workload, m Mapping) HostTraffic {
	npe := m.PEs(w)
	// Sub-LUT partition transfers (Eq. 4): each PE receives its index tile
	// and LUT tile; reuse across a group/row of PEs upgrades the transfer
	// to broadcast bandwidth (paper L1). On shared-memory platforms the
	// tensors are written once into device memory instead of copied per PE.
	idxCopies, lutCopies := float64(npe), float64(npe)
	if p.SharedMemoryHost {
		idxCopies = float64(m.Groups(w))
		lutCopies = float64(m.PEsPerGroup(w))
	}
	ht := HostTraffic{
		IndexBytes:  float64(m.NsTile*w.CB) * idxCopies,
		LUTBytes:    float64(w.CB*w.CT*m.FsTile*w.ElemBytes) * lutCopies,
		OutputBytes: float64(w.OutputBytes()),
		IndexMode:   Scatter,
		LUTMode:     Scatter,
	}
	if m.PEsPerGroup(w) > 1 {
		ht.IndexMode = Broadcast
	}
	if m.Groups(w) > 1 {
		ht.LUTMode = Broadcast
	}
	return ht
}

// timing converts event counts plus host-transfer sizes into seconds.
func timing(p *Platform, w Workload, m Mapping, ev Events) Timing {
	var t Timing
	ht := HostTrafficFor(p, w, m)
	t.HostIndex = p.HostTransferTime(ht.IndexBytes, ht.IndexMode)
	t.HostLUT = p.HostTransferTime(ht.LUTBytes, ht.LUTMode)
	t.HostOutput = p.HostTransferTime(ht.OutputBytes, Gather)

	// LUT traffic pays the index-driven access derating; the streaming
	// tensors (index, output) run at full bank bandwidth.
	eff := p.LUTAccessEff
	if eff <= 0 {
		eff = 1
	}
	lutBytesEff := float64(ev.LUTLoadBytes) / eff
	otherBytes := float64(ev.IndexLoadBytes + ev.OutLoadBytes + ev.OutStoreBytes)
	xferOps := ev.IndexLoadOps + ev.LUTLoadOps + ev.OutLoadOps + ev.OutStoreOps
	t.KernelXfer = p.LocalTransferTime(lutBytesEff+otherBytes, xferOps)
	t.KernelRed = p.ReduceTime(float64(ev.ReduceElems), m.Scheme)
	if p.OverlapComputeTransfer {
		// MAC engines reduce in-stream: the slower of the two paths sets
		// the kernel time. Report it all under KernelXfer/KernelRed by
		// scaling so the decomposition still sums to the total.
		if t.KernelXfer >= t.KernelRed {
			t.KernelRed = 0
		} else {
			t.KernelXfer = 0
		}
	}
	return t
}

// SimTiming returns the simulator's timing for mapping m without running
// the functional kernel: the same event counting the executor uses,
// converted to seconds. This is the "real performance" the auto-tuner's
// analytical model is validated against (Fig. 13).
func SimTiming(p *Platform, w Workload, m Mapping) Timing {
	return timing(p, w, m, countEvents(p, w, m))
}

// SimEvents exposes the executor's per-PE event counts for mapping m.
func SimEvents(p *Platform, w Workload, m Mapping) Events {
	return countEvents(p, w, m)
}

// ExecuteLUT runs the LUT operator functionally across simulated PEs with
// FP32 tables and returns the output plus modelled timing. idx is the
// N×CB index matrix from CCS.
func ExecuteLUT(p *Platform, w Workload, m Mapping, idx []uint8, tbl *lutnn.LUT) (*Result, error) {
	return ExecuteLUTWithFaults(p, w, m, idx, tbl, FaultPlan{})
}

// ExecuteLUTWithFaults runs the FP32 operator under a fault plan: dead
// PEs hand their tiles to healthy ones, corrupted DMA transfers are
// retried against checksums, and surviving corruption really lands in the
// output data. A zero plan is byte-identical to ExecuteLUT.
func ExecuteLUTWithFaults(p *Platform, w Workload, m Mapping, idx []uint8, tbl *lutnn.LUT, plan FaultPlan) (*Result, error) {
	if err := checkShapes(w, m, idx, tbl.CB, tbl.CT, tbl.F); err != nil {
		return nil, err
	}
	return executeTiles(p, w, m, idx, plan, func(t tile, idxTile []uint8, out *tensor.Tensor) {
		for r := t.rowLo; r < t.rowHi; r++ {
			dst := out.Row(r)[t.colLo:t.colHi]
			row := idxTile[(r-t.rowLo)*w.CB:]
			for cb := 0; cb < w.CB; cb++ {
				src := tbl.Slice(cb, int(row[cb]))[t.colLo:t.colHi]
				for f, v := range src {
					dst[f] += v
				}
			}
		}
	})
}

// ExecuteLUTInt8 runs the operator with INT8 tables, accumulating in int32
// per PE exactly as the UPMEM kernel would, and rescaling once at the end.
func ExecuteLUTInt8(p *Platform, w Workload, m Mapping, idx []uint8, tbl *lutnn.QuantizedLUT) (*Result, error) {
	return ExecuteLUTInt8WithFaults(p, w, m, idx, tbl, FaultPlan{})
}

// ExecuteLUTInt8WithFaults is ExecuteLUTInt8 under a fault plan (see
// ExecuteLUTWithFaults).
func ExecuteLUTInt8WithFaults(p *Platform, w Workload, m Mapping, idx []uint8, tbl *lutnn.QuantizedLUT, plan FaultPlan) (*Result, error) {
	if err := checkShapes(w, m, idx, tbl.CB, tbl.CT, tbl.F); err != nil {
		return nil, err
	}
	return executeTiles(p, w, m, idx, plan, func(t tile, idxTile []uint8, out *tensor.Tensor) {
		acc := make([]int32, t.cols())
		for r := t.rowLo; r < t.rowHi; r++ {
			for f := range acc {
				acc[f] = 0
			}
			row := idxTile[(r-t.rowLo)*w.CB:]
			for cb := 0; cb < w.CB; cb++ {
				src := tbl.Slice(cb, int(row[cb]))[t.colLo:t.colHi]
				for f, v := range src {
					acc[f] += int32(v)
				}
			}
			dst := out.Row(r)[t.colLo:t.colHi]
			for f, v := range acc {
				dst[f] = float32(v) * tbl.Scale
			}
		}
	})
}

// ExecuteLUTHalf runs the operator with 16-bit tables (FP16 on HBM-PIM,
// BF16 on AiM), accumulating in float32 as the platforms' wide MAC
// accumulators do.
func ExecuteLUTHalf(p *Platform, w Workload, m Mapping, idx []uint8, tbl *lutnn.HalfLUT) (*Result, error) {
	return ExecuteLUTHalfWithFaults(p, w, m, idx, tbl, FaultPlan{})
}

// ExecuteLUTHalfWithFaults is ExecuteLUTHalf under a fault plan (see
// ExecuteLUTWithFaults).
func ExecuteLUTHalfWithFaults(p *Platform, w Workload, m Mapping, idx []uint8, tbl *lutnn.HalfLUT, plan FaultPlan) (*Result, error) {
	if err := checkShapes(w, m, idx, tbl.CB, tbl.CT, tbl.F); err != nil {
		return nil, err
	}
	return executeTiles(p, w, m, idx, plan, func(t tile, idxTile []uint8, out *tensor.Tensor) {
		for r := t.rowLo; r < t.rowHi; r++ {
			dst := out.Row(r)[t.colLo:t.colHi]
			row := idxTile[(r-t.rowLo)*w.CB:]
			for cb := 0; cb < w.CB; cb++ {
				src := tbl.Slice(cb, int(row[cb]))[t.colLo:t.colHi]
				if tbl.BF {
					for f, v := range src {
						dst[f] += tensor.BFloat16(v).Float32()
					}
				} else {
					for f, v := range src {
						dst[f] += tensor.Float16(v).Float32()
					}
				}
			}
		}
	})
}

func checkShapes(w Workload, m Mapping, idx []uint8, cb, ct, f int) error {
	if cb != w.CB || ct != w.CT || f != w.F {
		return fmt.Errorf("pim: table shape (%d,%d,%d) != workload (%d,%d,%d)", cb, ct, f, w.CB, w.CT, w.F)
	}
	if len(idx) != w.N*w.CB {
		return fmt.Errorf("pim: index length %d != N·CB = %d", len(idx), w.N*w.CB)
	}
	if m.NsTile <= 0 || m.FsTile <= 0 || w.N%m.NsTile != 0 || w.F%m.FsTile != 0 {
		return fmt.Errorf("pim: illegal sub-LUT tiles (%d,%d) for N=%d F=%d", m.NsTile, m.FsTile, w.N, w.F)
	}
	return nil
}

// runPEs executes fn once per simulated PE over that PE's output tile,
// fanning out on the shared worker pool (internal/parallel). Each PE
// writes a disjoint output tile, so results are independent of the
// worker count.
func runPEs(w Workload, m Mapping, fn func(rowLo, rowHi, colLo, colHi int)) {
	groups := w.N / m.NsTile
	perGroup := w.F / m.FsTile
	pes := groups * perGroup
	work := w.N * w.F * w.CB / 4 // rough per-element op count across all PEs
	parallel.For(pes, work, func(lo, hi int) {
		for pe := lo; pe < hi; pe++ {
			g, j := pe/perGroup, pe%perGroup
			fn(g*m.NsTile, (g+1)*m.NsTile, j*m.FsTile, (j+1)*m.FsTile)
		}
	})
}

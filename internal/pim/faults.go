package pim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// This file implements the fault-injection and fault-tolerance layer of
// the simulator. Real UPMEM deployments routinely run with disabled DPUs
// and straggler PEs (Gómez-Luna et al. report ~2.5k of 2560 DPUs usable on
// production systems), and DMA transfers are protected by checksums rather
// than assumed clean. The layer models three fault classes:
//
//   - dead PEs: a seeded fraction of the array never executes; their tiles
//     are re-dispatched onto healthy PEs (extra serial rounds),
//   - transient DMA corruption: each of the three per-tile transfers
//     (index in, LUT in, output out) flips with probability FlipRate;
//     checksum verification catches the flip and retries the transfer up
//     to MaxTransferRetries times before letting the corruption through,
//   - stragglers: each PE gets a deterministic slowdown factor in
//     [1, 1+StragglerSpread] that scales the worst-PE kernel terms of the
//     Eq. 6 timing model.
//
// Everything is deterministic for a fixed FaultPlan: dead-PE choice and
// slowdowns derive from the plan seed, and every PE draws transfer
// outcomes from its own seeded stream, so results do not depend on
// goroutine scheduling. A second, independent per-PE stream drives the
// *content* of a corruption (which byte, which bit), so the analytic
// PlanRecovery path — which never touches data — replays the exact same
// outcome draws as the functional executors and reports identical counts.

// MaxTransferRetries bounds how often a checksum-failed DMA transfer is
// re-issued before the corrupted data is used anyway.
const MaxTransferRetries = 3

// ErrIrrecoverable reports that a fault plan kills so many PEs that the
// mapping no longer fits the surviving array; callers (the engine) fall
// back to host execution.
var ErrIrrecoverable = errors.New("pim: fault plan irrecoverable for mapping")

// FaultPlan is a seeded, deterministic description of array misbehaviour.
// The zero value is the healthy array: injection is a no-op and the
// executors produce byte-identical results to the fault-free code path.
type FaultPlan struct {
	// Seed drives every random choice the plan makes (dead-PE selection,
	// slowdown factors, per-PE transfer outcomes).
	Seed int64
	// DeadPEFraction of the physical array never executes ([0, 1)).
	DeadPEFraction float64
	// FlipRate is the per-transfer probability that a DMA transfer
	// arrives corrupted ([0, 1]). Applies independently to the index-in,
	// LUT-in and output-out transfer of every executed tile.
	FlipRate float64
	// StragglerSpread stretches per-PE speed: each PE's kernel time is
	// scaled by a factor drawn uniformly from [1, 1+StragglerSpread].
	StragglerSpread float64
}

// IsZero reports whether the plan injects nothing.
func (fp FaultPlan) IsZero() bool {
	return fp.DeadPEFraction <= 0 && fp.FlipRate <= 0 && fp.StragglerSpread <= 0
}

// Validate checks the plan's parameter ranges.
func (fp FaultPlan) Validate() error {
	if fp.DeadPEFraction < 0 || fp.DeadPEFraction >= 1 {
		return fmt.Errorf("pim: DeadPEFraction %g outside [0,1)", fp.DeadPEFraction)
	}
	if fp.FlipRate < 0 || fp.FlipRate > 1 {
		return fmt.Errorf("pim: FlipRate %g outside [0,1]", fp.FlipRate)
	}
	if fp.StragglerSpread < 0 {
		return fmt.Errorf("pim: StragglerSpread %g negative", fp.StragglerSpread)
	}
	return nil
}

// Recovery reports what the fault-tolerance machinery did during one
// operator execution. For a fixed plan, workload and mapping the counts
// are deterministic, and the analytic PlanRecovery path reproduces the
// functional executors' counts exactly.
type Recovery struct {
	// DeadPEs is the number of dead PEs among those the mapping uses.
	DeadPEs int
	// Redispatched is the number of tiles re-run on healthy PEs.
	Redispatched int
	// Retries is the number of checksum-failed DMA transfers re-issued.
	Retries int
	// ResidualCorrupt is the number of output elements that may still be
	// corrupted after the retry budget was exhausted (0 means the output
	// is bit-exact with the fault-free result).
	ResidualCorrupt int
	// WorstSlowdown is the largest straggler factor among loaded PEs.
	WorstSlowdown float64
}

// ArrayFaults is a FaultPlan instantiated over a concrete physical array:
// the per-PE dead flags and slowdown factors every execution under this
// plan shares.
type ArrayFaults struct {
	Plan     FaultPlan
	Dead     []bool    // per physical PE
	Slowdown []float64 // per physical PE, ≥ 1
}

// Instantiate derives the deterministic per-PE fault state for an array
// of numPE physical PEs.
func (fp FaultPlan) Instantiate(numPE int) (*ArrayFaults, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if numPE <= 0 {
		return nil, fmt.Errorf("pim: instantiating fault plan over %d PEs", numPE)
	}
	af := &ArrayFaults{
		Plan:     fp,
		Dead:     make([]bool, numPE),
		Slowdown: make([]float64, numPE),
	}
	rng := rand.New(rand.NewSource(fp.Seed))
	nDead := int(fp.DeadPEFraction * float64(numPE))
	for _, pe := range rng.Perm(numPE)[:nDead] {
		af.Dead[pe] = true
	}
	for pe := range af.Slowdown {
		af.Slowdown[pe] = 1 + fp.StragglerSpread*rng.Float64()
	}
	return af, nil
}

// Healthy returns the number of live PEs.
func (af *ArrayFaults) Healthy() int {
	n := 0
	for _, d := range af.Dead {
		if !d {
			n++
		}
	}
	return n
}

// outcomeRNG returns the per-PE stream deciding transfer fates. It is
// separate from dataRNG so the analytic recovery path, which never draws
// corruption content, stays in lockstep with the functional executors.
func (af *ArrayFaults) outcomeRNG(pe int) *rand.Rand {
	return rand.New(rand.NewSource(af.Plan.Seed*6364136223846793005 + int64(pe)*1442695040888963407 + 1))
}

// dataRNG returns the per-PE stream deciding corruption content (which
// byte or bit a surviving flip lands on).
func (af *ArrayFaults) dataRNG(pe int) *rand.Rand {
	return rand.New(rand.NewSource(af.Plan.Seed*2862933555777941757 + int64(pe)*3037000493 + 2))
}

// transferOutcome draws the fate of one checksummed DMA transfer:
// how many retries the checksum forced, and whether the retry budget ran
// out so corrupted data went through.
func (af *ArrayFaults) transferOutcome(rng *rand.Rand) (retries int, residual bool) {
	if af.Plan.FlipRate <= 0 {
		return 0, false
	}
	for attempt := 0; attempt <= MaxTransferRetries; attempt++ {
		if rng.Float64() >= af.Plan.FlipRate {
			return retries, false
		}
		if attempt < MaxTransferRetries {
			retries++
		}
	}
	return retries, true
}

// tile is one PE's output region under the sub-LUT partition.
type tile struct {
	rowLo, rowHi, colLo, colHi int
}

func (t tile) rows() int { return t.rowHi - t.rowLo }
func (t tile) cols() int { return t.colHi - t.colLo }

// tileList enumerates the partition's tiles in logical-PE order
// (group-major, matching PE id = group·PEsPerGroup + j).
func tileList(w Workload, m Mapping) []tile {
	groups := w.N / m.NsTile
	perGroup := w.F / m.FsTile
	tiles := make([]tile, 0, groups*perGroup)
	for g := 0; g < groups; g++ {
		for j := 0; j < perGroup; j++ {
			tiles = append(tiles, tile{
				rowLo: g * m.NsTile, rowHi: (g + 1) * m.NsTile,
				colLo: j * m.FsTile, colHi: (j + 1) * m.FsTile,
			})
		}
	}
	return tiles
}

// assign distributes the mapping's tiles over the physical array: logical
// PE i runs on physical PE i, and tiles owned by dead PEs are
// re-dispatched round-robin over all healthy PEs (the shrunken-array
// re-run). The degraded mapping is re-validated for legality on the
// surviving array; an over-committed plan returns ErrIrrecoverable.
func (af *ArrayFaults) assign(p *Platform, w Workload, m Mapping) ([][]tile, error) {
	degraded := *p
	degraded.NumPE = af.Healthy()
	if err := m.Validate(&degraded, w); err != nil {
		return nil, fmt.Errorf("%w: %d/%d PEs healthy: %v", ErrIrrecoverable, degraded.NumPE, p.NumPE, err)
	}
	assign := make([][]tile, len(af.Dead))
	var healthy []int
	for pe, d := range af.Dead {
		if !d {
			healthy = append(healthy, pe)
		}
	}
	var orphans []tile
	for i, t := range tileList(w, m) {
		if i < len(af.Dead) && af.Dead[i] {
			orphans = append(orphans, t)
		} else {
			assign[i] = append(assign[i], t)
		}
	}
	for k, t := range orphans {
		pe := healthy[k%len(healthy)]
		assign[pe] = append(assign[pe], t)
	}
	return assign, nil
}

// usedStats returns the largest per-PE tile count and the worst straggler
// factor among loaded PEs — the terms that stretch the Eq. 6 worst-PE
// kernel time under the plan.
func (af *ArrayFaults) usedStats(assign [][]tile) (maxTiles int, worst float64) {
	worst = 1
	for pe, tiles := range assign {
		if len(tiles) == 0 {
			continue
		}
		if len(tiles) > maxTiles {
			maxTiles = len(tiles)
		}
		if af.Slowdown[pe] > worst {
			worst = af.Slowdown[pe]
		}
	}
	if maxTiles < 1 {
		maxTiles = 1
	}
	return maxTiles, worst
}

// faultTiming perturbs the healthy-array timing model with the plan's
// effects: re-dispatch rounds and straggler factors multiply the worst-PE
// kernel terms (Eq. 6), and the expected retry fraction inflates every
// checksummed transfer path (Eq. 4 host transfers, bank↔buffer traffic).
func faultTiming(p *Platform, w Workload, m Mapping, ev Events, af *ArrayFaults, assign [][]tile) Timing {
	t := timing(p, w, m, ev)
	maxTiles, worst := af.usedStats(assign)
	rounds := float64(maxTiles) * worst
	infl := 1 + af.Plan.FlipRate
	t.KernelXfer *= rounds * infl
	t.KernelRed *= rounds
	t.HostIndex *= infl
	t.HostLUT *= infl
	t.HostOutput *= infl
	return t
}

// SimTimingWithFaults returns the timing model under a fault plan without
// running the functional kernel. A zero plan reproduces SimTiming exactly.
func SimTimingWithFaults(p *Platform, w Workload, m Mapping, plan FaultPlan) (Timing, error) {
	if plan.IsZero() {
		return SimTiming(p, w, m), nil
	}
	af, err := plan.Instantiate(p.NumPE)
	if err != nil {
		return Timing{}, err
	}
	assign, err := af.assign(p, w, m)
	if err != nil {
		return Timing{}, err
	}
	return faultTiming(p, w, m, countEvents(p, w, m), af, assign), nil
}

// PlanRecovery predicts, without executing, the Recovery report a
// functional execution of (w, m) under the plan produces. It replays the
// same per-PE outcome streams the executors use, so the counts match
// ExecuteLUT*WithFaults exactly for the same plan.
func PlanRecovery(p *Platform, w Workload, m Mapping, plan FaultPlan) (Recovery, error) {
	if plan.IsZero() {
		return Recovery{WorstSlowdown: 1}, nil
	}
	af, err := plan.Instantiate(p.NumPE)
	if err != nil {
		return Recovery{}, err
	}
	assign, err := af.assign(p, w, m)
	if err != nil {
		return Recovery{}, err
	}
	rec := af.baseRecovery(w, m, assign)
	for pe, tiles := range assign {
		if len(tiles) == 0 {
			continue
		}
		rngO := af.outcomeRNG(pe)
		for _, t := range tiles {
			// Same draw sequence as executeTiles: index-in, then LUT-in
			// and output-out.
			retries, residual := af.transferOutcome(rngO)
			rec.Retries += retries
			if residual {
				rec.ResidualCorrupt += t.cols()
			}
			for i := 0; i < 2; i++ {
				retries, residual = af.transferOutcome(rngO)
				rec.Retries += retries
				if residual {
					rec.ResidualCorrupt++
				}
			}
		}
	}
	return rec, nil
}

// baseRecovery fills the plan-level (data-independent) Recovery fields.
func (af *ArrayFaults) baseRecovery(w Workload, m Mapping, assign [][]tile) Recovery {
	rec := Recovery{}
	used := m.PEs(w)
	for pe := 0; pe < used && pe < len(af.Dead); pe++ {
		if af.Dead[pe] {
			rec.DeadPEs++
		}
	}
	rec.Redispatched = rec.DeadPEs
	_, rec.WorstSlowdown = af.usedStats(assign)
	return rec
}

// corruptIndexTile flips one bit of one entry in a PE's private index
// copy, clamped back into the legal centroid range (hardware would fetch
// a wrong-but-existing table row).
func corruptIndexTile(rngD *rand.Rand, idxTile []uint8, ct int) {
	i := rngD.Intn(len(idxTile))
	bit := rngD.Intn(8)
	idxTile[i] = uint8((int(idxTile[i]) ^ (1 << bit)) % ct)
}

// corruptOutputElem flips one bit of one float32 element inside the
// tile's output region.
func corruptOutputElem(rngD *rand.Rand, out *tensor.Tensor, t tile) {
	r := t.rowLo + rngD.Intn(t.rows())
	f := t.colLo + rngD.Intn(t.cols())
	row := out.Row(r)
	row[f] = math.Float32frombits(math.Float32bits(row[f]) ^ (1 << uint(rngD.Intn(32))))
}

// tileKernel computes one PE tile. idxTile is the PE's private view of the
// index rows [rowLo, rowHi) — the fault layer may hand a corrupted copy.
type tileKernel func(t tile, idxTile []uint8, out *tensor.Tensor)

// executeTiles runs the kernel over the partition under the plan and
// returns the output, the degraded timing and the recovery report. The
// zero plan takes the original lock-step path (zero-copy index views, no
// RNG) and returns a nil Recovery.
func executeTiles(p *Platform, w Workload, m Mapping, idx []uint8, plan FaultPlan, kernel tileKernel) (*Result, error) {
	out := tensor.New(w.N, w.F)
	ev := countEvents(p, w, m)
	if plan.IsZero() {
		runPEs(w, m, func(rowLo, rowHi, colLo, colHi int) {
			t := tile{rowLo, rowHi, colLo, colHi}
			kernel(t, idx[rowLo*w.CB:rowHi*w.CB], out)
		})
		res := &Result{Output: out, Events: ev, Timing: timing(p, w, m, ev), PEs: m.PEs(w)}
		recordExecution(p, w, m, res)
		return res, nil
	}
	af, err := plan.Instantiate(p.NumPE)
	if err != nil {
		return nil, err
	}
	assign, err := af.assign(p, w, m)
	if err != nil {
		return nil, err
	}
	perPE := make([]Recovery, len(assign))
	runPESet(assign, func(pe int, tiles []tile) {
		rngO := af.outcomeRNG(pe)
		rngD := af.dataRNG(pe)
		for _, t := range tiles {
			// Index-in transfer: a surviving flip rewrites one entry of
			// the PE's private index copy (never the caller's matrix),
			// tainting the whole affected output row segment.
			idxTile := idx[t.rowLo*w.CB : t.rowHi*w.CB]
			retries, residual := af.transferOutcome(rngO)
			perPE[pe].Retries += retries
			if residual {
				c := append([]uint8(nil), idxTile...)
				corruptIndexTile(rngD, c, w.CT)
				idxTile = c
				perPE[pe].ResidualCorrupt += t.cols()
			}
			kernel(t, idxTile, out)
			// LUT-in and output-out transfers: a surviving flip lands on
			// one element of the finished tile output.
			for i := 0; i < 2; i++ {
				retries, residual = af.transferOutcome(rngO)
				perPE[pe].Retries += retries
				if residual {
					corruptOutputElem(rngD, out, t)
					perPE[pe].ResidualCorrupt++
				}
			}
		}
	})
	rec := af.baseRecovery(w, m, assign)
	for _, r := range perPE {
		rec.Retries += r.Retries
		rec.ResidualCorrupt += r.ResidualCorrupt
	}
	res := &Result{
		Output:   out,
		Events:   ev,
		Timing:   faultTiming(p, w, m, ev, af, assign),
		PEs:      m.PEs(w),
		Recovery: &rec,
	}
	recordExecution(p, w, m, res)
	return res, nil
}

// runPESet executes fn once per physical PE that has work, fanned out
// over PE indices on the shared worker pool; each PE processes its
// (possibly non-uniform) tile list serially, so per-PE RNG streams are
// deterministic regardless of how chunks land on workers. The work
// estimate is the total output-element count across tiles; small fault
// runs stay on the calling goroutine.
func runPESet(assign [][]tile, fn func(pe int, tiles []tile)) {
	work := 0
	for _, tiles := range assign {
		for _, t := range tiles {
			work += (t.rowHi - t.rowLo) * t.cols()
		}
	}
	parallel.For(len(assign), work, func(lo, hi int) {
		for pe := lo; pe < hi; pe++ {
			if len(assign[pe]) > 0 {
				fn(pe, assign[pe])
			}
		}
	})
}

package pim

import (
	"math"
	"testing"
)

func TestAdderOnlyFasterReduce(t *testing.T) {
	base := UPMEM()
	adder := AdderOnly(base, 4)
	if adder.ReduceCycles >= base.ReduceCycles {
		t.Fatal("adder-only variant must reduce faster")
	}
	if adder.GEMMMACsPerCycle != 0 {
		t.Fatal("adder-only variant must drop multipliers")
	}
	if base.ReduceCycles != UPMEM().ReduceCycles {
		t.Fatal("AdderOnly must not mutate the base platform")
	}
	w := Workload{N: 1024, CB: 128, CT: 16, F: 1024, ElemBytes: 1}
	m := Mapping{NsTile: 256, FsTile: 128, NmTile: 16, FmTile: 32, CBmTile: 32,
		Traversal: [3]Loop{LoopF, LoopCB, LoopN},
		Scheme:    CoarseLoad, CBLoadTile: 1, FLoadTile: 32}
	if err := m.Validate(adder, w); err != nil {
		t.Fatal(err)
	}
	tb := SimTiming(base, w, m)
	ta := SimTiming(adder, w, m)
	if ta.KernelRed >= tb.KernelRed {
		t.Fatalf("adder-only reduce not faster: %g vs %g", ta.KernelRed, tb.KernelRed)
	}
}

func TestHotCacheHitRateUniform(t *testing.T) {
	// Uniform histogram: hit rate equals capacity fraction.
	hist := ZipfIndexHistogram(4, 16, 1000, 0) // s=0 is uniform
	c := HotCache{Capacity: 16}                // a quarter of 64 entries
	got := c.HitRate(hist)
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("uniform hit rate %.3f, want 0.25", got)
	}
}

func TestHotCacheHitRateSkewed(t *testing.T) {
	// Zipf(1.2) skew: a quarter-size cache should absorb well over half
	// the lookups.
	hist := ZipfIndexHistogram(4, 16, 100000, 1.2)
	c := HotCache{Capacity: 16}
	got := c.HitRate(hist)
	if got < 0.6 {
		t.Fatalf("skewed hit rate %.3f, want > 0.6", got)
	}
	// More capacity never hurts.
	if bigger := (HotCache{Capacity: 32}).HitRate(hist); bigger < got {
		t.Fatal("hit rate decreased with capacity")
	}
}

func TestHotCacheEmptyHistogram(t *testing.T) {
	if r := (HotCache{Capacity: 4}).HitRate([][]int64{{0, 0}}); r != 0 {
		t.Fatalf("empty histogram hit rate %v", r)
	}
}

func TestIndexHistogramCounts(t *testing.T) {
	idx := []uint8{0, 1, 0, 3, 2, 1} // 3 rows × 2 codebooks
	hist := IndexHistogram(idx, 2, 4)
	if hist[0][0] != 2 || hist[0][2] != 1 || hist[1][1] != 2 || hist[1][3] != 1 {
		t.Fatalf("bad histogram %v", hist)
	}
	var total int64
	for _, row := range hist {
		for _, v := range row {
			total += v
		}
	}
	if total != 6 {
		t.Fatalf("total %d, want 6", total)
	}
}

func TestCachedKernelFasterWithHits(t *testing.T) {
	p := UPMEM()
	w := Workload{N: 1024, CB: 128, CT: 16, F: 1024, ElemBytes: 1}
	m := Mapping{NsTile: 256, FsTile: 128, NmTile: 16, FmTile: 32, CBmTile: 32,
		Traversal: [3]Loop{LoopN, LoopF, LoopCB},
		Scheme:    FineLoad, FLoadTile: 32}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	base := SimTiming(p, w, m)
	cached := CachedKernelTiming(p, w, m, 0.7)
	if cached.KernelXfer >= base.KernelXfer {
		t.Fatalf("cache did not reduce transfer time: %g vs %g", cached.KernelXfer, base.KernelXfer)
	}
	// Reduce work unchanged.
	if cached.KernelRed != base.KernelRed {
		t.Fatal("cache must not change reduce work")
	}
	// Zero hit rate: identical.
	same := CachedKernelTiming(p, w, m, 0)
	if same.KernelXfer != base.KernelXfer {
		t.Fatal("zero hit rate should be a no-op")
	}
}

func TestCBSplitPenalized(t *testing.T) {
	// Splitting the codebook dimension forces partial-sum merging through
	// the host; for any realistic shape the merged-gather traffic dwarfs
	// what the per-PE reduce saves (limitation L2, design decision #3).
	p := UPMEM()
	w := Workload{N: 32768, CB: 192, CT: 16, F: 2304, ElemBytes: 1}
	m := Mapping{NsTile: 4096, FsTile: 288, NmTile: 64, FmTile: 32, CBmTile: 192,
		Traversal: [3]Loop{LoopF, LoopCB, LoopN},
		Scheme:    CoarseLoad, CBLoadTile: 1, FLoadTile: 32}
	if err := m.Validate(p, w); err != nil {
		t.Fatal(err)
	}
	for _, ways := range []int{2, 4, 8} {
		pen := CBSplitPenalty(p, w, m, ways)
		t.Logf("CB split %d ways: %.2fx slowdown", ways, pen)
		if pen <= 1 {
			t.Fatalf("CB split %d ways should be slower, got %.2fx", ways, pen)
		}
	}
	// More ways → strictly more host gather traffic.
	if CBSplitTiming(p, w, m, 8).HostOutput <= CBSplitTiming(p, w, m, 2).HostOutput {
		t.Fatal("gather traffic should grow with split ways")
	}
	// ways = 1 is the identity.
	if CBSplitTiming(p, w, m, 1).Total() != SimTiming(p, w, m).Total() {
		t.Fatal("ways=1 should equal baseline")
	}
}

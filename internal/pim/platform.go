// Package pim simulates commodity DRAM-PIM platforms behind the
// architecture abstraction of paper §5.1 (Fig. 7): a host connected over
// memory channels to PIM modules containing processing engines (PEs), each
// with local memory banks and a small on-chip working buffer.
//
// The simulator is both functional and timed. Functional: the distributed
// LUT kernel really executes over simulated PEs, producing bit-exact
// outputs versus the single-threaded reference, so mapping legality and
// partitioning bugs surface as wrong results, not just wrong time. Timed:
// every host transfer, local DMA, and reduce operation is counted and
// converted to seconds with per-platform bandwidth/latency profiles
// calibrated to published measurements (UPMEM microbenchmarks from
// Gómez-Luna et al., HBM-PIM/AiM datasheet figures quoted in the paper's
// Table 1/3).
package pim

// TransferMode classifies host↔PIM transfers, whose effective bandwidth
// differs by pattern (paper L1: broadcast avoids host cache misses and is
// fastest; gather is slowest).
type TransferMode int

const (
	// Broadcast sends the same buffer to many PEs at once.
	Broadcast TransferMode = iota
	// Scatter sends distinct buffers to each PE in parallel.
	Scatter
	// Gather reads distinct buffers back from each PE.
	Gather
)

// LoadScheme selects how a PE stages LUT data from its local bank into the
// on-chip buffer (paper §5.3 P4, Fig. 9).
type LoadScheme int

const (
	// StaticLoad places the PE's whole LUT tile on-chip once.
	StaticLoad LoadScheme = iota
	// CoarseLoad stages CT-candidate blocks ahead of use.
	CoarseLoad
	// FineLoad fetches only the indexed elements on demand.
	FineLoad
)

// String returns the paper's name for the scheme.
func (s LoadScheme) String() string {
	switch s {
	case StaticLoad:
		return "static"
	case CoarseLoad:
		return "coarse"
	case FineLoad:
		return "fine"
	}
	return "?"
}

// Platform describes one DRAM-PIM product through the abstraction the
// auto-tuner's analytical model needs. Bandwidths are bytes/second.
type Platform struct {
	Name string

	NumPE     int
	FreqHz    float64
	WRAMBytes int   // per-PE on-chip buffer
	MRAMBytes int64 // per-PE local bank capacity

	// Host↔PIM bandwidths by transfer mode (aggregate across all PEs).
	BroadcastBW float64
	ScatterBW   float64
	GatherBW    float64
	// HostXferLatency is the fixed per-transfer-batch software latency
	// (driver call, rank synchronization).
	HostXferLatency float64

	// Local-bank streaming bandwidth per PE and the per-DMA setup time;
	// small transfers are penalized by the setup term, reproducing the
	// UPMEM behaviour that bandwidth drops with transfer size.
	LocalBWPerPE float64
	DMASetup     float64
	// MaxDMABytes is the largest single bank↔buffer DMA the hardware
	// supports (UPMEM: 2 KB); bigger loads split into multiple operations.
	MaxDMABytes int

	// LUTAccessEff derates LocalBWPerPE for table-lookup traffic: LUT
	// fetches are index-driven row activations rather than streaming
	// bursts, which costs DRAM efficiency on the SIMD MAC platforms.
	LUTAccessEff float64
	// OverlapComputeTransfer is true on platforms whose MAC engines
	// consume bank data in-stream (HBM-PIM/AiM): kernel time is
	// max(transfer, reduce) instead of their sum (UPMEM's DPUs serialize
	// explicit DMA with compute).
	OverlapComputeTransfer bool

	// ReduceCycles is the pipeline cost (cycles) of one table-lookup
	// accumulate element in the best case (data already on-chip).
	ReduceCycles float64
	// FineGrainExtraCycles is added per element under FineLoad for
	// per-element address generation (paper §6.6: on-chip offsets are
	// computed by the PE, so small load tiles waste issue slots).
	FineGrainExtraCycles float64

	// GEMM-mode behaviour for the PIM-GEMM baseline.
	GEMMMACsPerCycle float64 // per-PE MAC throughput
	// GEMVBatchPenalty scales the GEMV-dataflow streaming time by
	// (1 + penalty·log2(batch)) on platforms without weight reuse.
	GEMVBatchPenalty float64
	// GEMVRowOverhead is the fixed per-activation-row command cost of the
	// GEMV dataflow (command issue, bank open/close per row).
	GEMVRowOverhead float64
	// GEMVEff is the fraction of peak bank bandwidth the row-by-row GEMV
	// dataflow sustains (frequent row activations, no reuse).
	GEMVEff float64
	// SharedMemoryHost is true when the PIM array lives inside the host
	// accelerator's own memory (HBM-PIM/AiM): host↔PIM "transfers" are
	// single writes into shared device memory rather than per-PE copies.
	SharedMemoryHost bool
	// GEMMWeightResident is false when the platform streams weights from
	// banks for every activation row (HBM-PIM/AiM GEMV-style dataflow,
	// which is why large batches are "unfriendly" — paper §6.7).
	GEMMWeightResident bool

	ElemBytes int // native compute element width (1 = INT8, 2 = FP16/BF16)

	// PowerWatts is the module power used by the energy model (UPMEM:
	// 13.92 W/DIMM × 8 from dpu-diag, per paper §6.3).
	PowerWatts float64
}

// PeakGOPS returns the aggregate arithmetic peak in billions of ops/s,
// assuming one reduce-class op per cycle per PE.
func (p *Platform) PeakGOPS() float64 {
	return float64(p.NumPE) * p.FreqHz / p.ReduceCycles / 1e9
}

// HostTransferTime returns the time to move bytes in the given mode,
// including the fixed software latency.
func (p *Platform) HostTransferTime(bytes float64, mode TransferMode) float64 {
	var bw float64
	switch mode {
	case Broadcast:
		bw = p.BroadcastBW
	case Scatter:
		bw = p.ScatterBW
	default:
		bw = p.GatherBW
	}
	if bytes <= 0 {
		return 0
	}
	return p.HostXferLatency + bytes/bw
}

// LocalTransferTime returns per-PE time for nOps DMA operations moving
// totalBytes between the local bank and the on-chip buffer.
func (p *Platform) LocalTransferTime(totalBytes float64, nOps int) float64 {
	if totalBytes <= 0 && nOps == 0 {
		return 0
	}
	return float64(nOps)*p.DMASetup + totalBytes/p.LocalBWPerPE
}

// ReduceTime returns per-PE time for elems accumulate operations under the
// given load scheme.
func (p *Platform) ReduceTime(elems float64, scheme LoadScheme) float64 {
	cycles := p.ReduceCycles
	if scheme == FineLoad {
		cycles += p.FineGrainExtraCycles
	}
	return elems * cycles / p.FreqHz
}

// UPMEM returns the DDR4-PIM platform of Table 3: 8 PIM-DIMMs with 1024
// DPUs at 350 MHz, 64 KB WRAM and 64 MB MRAM per DPU.
//
// Bandwidth calibration: per-DPU MRAM streaming ≈ 628 MB/s (so 8 DIMMs
// reach the 80.4 GB/s/DIMM aggregate in Table 1); host→PIM parallel
// transfers ≈ 6.6 GB/s, broadcast ≈ 22 GB/s, PIM→host ≈ 4.7 GB/s (PrIM
// benchmark measurements on the same product generation).
func UPMEM() *Platform {
	return &Platform{
		Name:      "UPMEM",
		NumPE:     1024,
		FreqHz:    350e6,
		WRAMBytes: 64 << 10,
		MRAMBytes: 64 << 20,

		BroadcastBW: 22e9,
		ScatterBW:   6.6e9,
		GatherBW:    4.7e9,
		// Each host↔PIM transfer batch pays DPU launch + rank
		// synchronization across 8 DIMMs; this fixed cost is why the CPU
		// server wins at small batches (paper Fig. 12-c).
		HostXferLatency: 5e-3,

		LocalBWPerPE: 628e6,
		DMASetup:     0.3e-6,
		MaxDMABytes:  2048,
		LUTAccessEff: 1,

		ReduceCycles:         0.45, // packed INT8 adds with DMA/compute overlap across 16 tasklets
		FineGrainExtraCycles: 2,

		GEMMMACsPerCycle:   0.29, // INT8 software MAC on an in-order DPU (~3.5 cycles)
		GEMMWeightResident: true,

		ElemBytes:  1,
		PowerWatts: 8 * 13.92,
	}
}

// HBMPIM returns the simulated Samsung HBM-PIM platform of Table 3:
// 4 cubes, 512 PEs, 8 GB HBM2, 2 TB/s and 1.2 TFLOPS per cube (4.8 TFLOPS
// aggregate, the figure the paper quotes against V100).
func HBMPIM() *Platform {
	return &Platform{
		Name:      "HBM-PIM",
		NumPE:     512,
		FreqHz:    1.2e9,
		WRAMBytes: 32 << 10,
		MRAMBytes: 16 << 20,

		// The PIM cubes sit in the accelerator's own memory system, so
		// host↔PIM transfers run at device-memory speeds, not PCIe.
		BroadcastBW:     180e9,
		ScatterBW:       150e9,
		GatherBW:        150e9,
		HostXferLatency: 3e-6,

		LocalBWPerPE:           8e12 / 512, // 2 TB/s × 4 cubes across 512 PEs
		DMASetup:               0.1e-6,
		MaxDMABytes:            4096,
		LUTAccessEff:           0.5,
		OverlapComputeTransfer: true,

		ReduceCycles:         0.26, // 16-lane FP16 SIMD at ~50% lookup-driven utilization
		FineGrainExtraCycles: 0.25,

		GEMMMACsPerCycle:   4, // 4.8 TFLOPS ÷ 512 PEs ÷ 1.2 GHz ÷ 2 ops/MAC
		GEMMWeightResident: false,
		GEMVBatchPenalty:   0.25,
		GEMVRowOverhead:    5e-6,
		GEMVEff:            0.12,
		SharedMemoryHost:   true,

		ElemBytes:  2,
		PowerWatts: 60,
	}
}

// AiM returns the simulated SK-Hynix AiM platform of Table 3: 16 GDDR6
// chips, 512 PEs, 1 TB/s and 1 TFLOPS per chip (16 TFLOPS aggregate).
func AiM() *Platform {
	return &Platform{
		Name:      "AiM",
		NumPE:     512,
		FreqHz:    1.0e9,
		WRAMBytes: 32 << 10,
		MRAMBytes: 32 << 20,

		// GDDR6-PIM chips on the accelerator board: device-memory-speed
		// host link.
		BroadcastBW:     180e9,
		ScatterBW:       150e9,
		GatherBW:        150e9,
		HostXferLatency: 3e-6,

		LocalBWPerPE:           16e12 / 512, // 1 TB/s × 16 chips across 512 PEs
		DMASetup:               0.1e-6,
		MaxDMABytes:            4096,
		LUTAccessEff:           0.5,
		OverlapComputeTransfer: true,

		ReduceCycles:         0.08, // wide BF16 MAC trees at ~50% lookup-driven utilization
		FineGrainExtraCycles: 0.064,

		GEMMMACsPerCycle:   16, // 16 TFLOPS ÷ 512 PEs ÷ 1 GHz ÷ 2 ops
		GEMMWeightResident: false,
		GEMVBatchPenalty:   0.25,
		GEMVRowOverhead:    5e-6,
		GEMVEff:            0.15,
		SharedMemoryHost:   true,

		ElemBytes:  2,
		PowerWatts: 120,
	}
}

package pim

import "fmt"

// Loop identifies a tiled loop dimension of the LUT micro kernel.
type Loop int

const (
	LoopN Loop = iota
	LoopF
	LoopCB
)

// String returns the dimension name.
func (l Loop) String() string {
	switch l {
	case LoopN:
		return "N"
	case LoopF:
		return "F"
	case LoopCB:
		return "CB"
	}
	return "?"
}

// Workload is the shape of one LUT operator (paper Table 2): N index rows,
// CB codebooks, CT centroids, F output features, with table elements of
// ElemBytes width.
type Workload struct {
	N, CB, CT, F int
	ElemBytes    int
}

// IndexBytes returns the size of the full index matrix.
func (w Workload) IndexBytes() int { return w.N * w.CB }

// LUTBytes returns the size of the full lookup table.
func (w Workload) LUTBytes() int { return w.CB * w.CT * w.F * w.ElemBytes }

// OutputBytes returns the size of the output matrix (4-byte accumulators).
func (w Workload) OutputBytes() int { return w.N * w.F * 4 }

// Mapping is one point in the auto-tuner's search space (paper §5.3
// P1–P4): sub-LUT partition factors, micro-kernel tile sizes, the tile
// traversal order, and the LUT load scheme with its load-tile factors.
type Mapping struct {
	// P1: sub-LUT partition. The index matrix splits into N/NsTile row
	// tiles, the LUT into F/FsTile feature tiles; PE (i,j) handles index
	// tile i × LUT tile j.
	NsTile, FsTile int

	// P2: micro-kernel tiling within one PE.
	NmTile, FmTile, CBmTile int

	// P3: traversal order, outermost first.
	Traversal [3]Loop

	// P4: LUT load scheme and its load-tile factors.
	Scheme     LoadScheme
	CBLoadTile int // coarse only
	FLoadTile  int // coarse and fine
}

// Groups returns the number of PE groups (index tiles).
func (m Mapping) Groups(w Workload) int { return w.N / m.NsTile }

// PEsPerGroup returns the PEs per group (LUT tiles).
func (m Mapping) PEsPerGroup(w Workload) int { return w.F / m.FsTile }

// PEs returns the total PEs used: (N/Ns)·(F/Fs), Eq. 5.
func (m Mapping) PEs(w Workload) int { return m.Groups(w) * m.PEsPerGroup(w) }

// String renders the mapping compactly.
func (m Mapping) String() string {
	return fmt.Sprintf("s(%d,%d) m(%d,%d,%d) %v%v%v %s",
		m.NsTile, m.FsTile, m.NmTile, m.FmTile, m.CBmTile,
		m.Traversal[0], m.Traversal[1], m.Traversal[2], m.Scheme)
}

// wramFootprint returns the on-chip bytes a PE needs under this mapping:
// the index MTile, the output MTile (4-byte accumulators), and the
// scheme's resident LUT window.
func (m Mapping) wramFootprint(w Workload) int {
	idx := m.NmTile * m.CBmTile
	out := m.NmTile * m.FmTile * 4
	var lut int
	switch m.Scheme {
	case StaticLoad:
		lut = w.CB * w.CT * m.FsTile * w.ElemBytes
	case CoarseLoad:
		lut = m.CBLoadTile * w.CT * m.FLoadTile * w.ElemBytes
	case FineLoad:
		lut = m.FLoadTile * w.ElemBytes * 16 // one window per hardware thread
	}
	return idx + out + lut
}

// Validate reports whether the mapping is legal for workload w on platform
// p: all tiles divide evenly, the PE count fits, the WRAM footprint fits,
// and each PE's LUT+index+output tiles fit in its local bank.
func (m Mapping) Validate(p *Platform, w Workload) error {
	check := func(num, den int, what string) error {
		if den <= 0 {
			return fmt.Errorf("pim: non-positive %s tile", what)
		}
		if num%den != 0 {
			return fmt.Errorf("pim: %s tile %d does not divide %d", what, den, num)
		}
		return nil
	}
	if err := check(w.N, m.NsTile, "Ns"); err != nil {
		return err
	}
	if err := check(w.F, m.FsTile, "Fs"); err != nil {
		return err
	}
	if err := check(m.NsTile, m.NmTile, "Nm"); err != nil {
		return err
	}
	if err := check(m.FsTile, m.FmTile, "Fm"); err != nil {
		return err
	}
	if err := check(w.CB, m.CBmTile, "CBm"); err != nil {
		return err
	}
	if npe := m.PEs(w); npe > p.NumPE {
		return fmt.Errorf("pim: mapping needs %d PEs, platform has %d", npe, p.NumPE)
	}
	switch m.Scheme {
	case CoarseLoad:
		if m.CBLoadTile <= 0 || m.CBmTile%m.CBLoadTile != 0 {
			return fmt.Errorf("pim: coarse CBLoadTile %d does not divide CBm %d", m.CBLoadTile, m.CBmTile)
		}
		if m.FLoadTile <= 0 || m.FmTile%m.FLoadTile != 0 {
			return fmt.Errorf("pim: coarse FLoadTile %d does not divide Fm %d", m.FLoadTile, m.FmTile)
		}
	case FineLoad:
		if m.FLoadTile <= 0 || m.FmTile%m.FLoadTile != 0 {
			return fmt.Errorf("pim: fine FLoadTile %d does not divide Fm %d", m.FLoadTile, m.FmTile)
		}
	}
	if fp := m.wramFootprint(w); fp > p.WRAMBytes {
		return fmt.Errorf("pim: WRAM footprint %d exceeds %d", fp, p.WRAMBytes)
	}
	perPE := int64(m.NsTile*w.CB) + int64(w.CB*w.CT*m.FsTile*w.ElemBytes) + int64(m.NsTile*m.FsTile*4)
	if perPE > p.MRAMBytes {
		return fmt.Errorf("pim: per-PE bank footprint %d exceeds %d", perPE, p.MRAMBytes)
	}
	seen := map[Loop]bool{}
	for _, l := range m.Traversal {
		if seen[l] {
			return fmt.Errorf("pim: duplicate loop %v in traversal", l)
		}
		seen[l] = true
	}
	return nil
}

package pim

import (
	"errors"
	"testing"

	"repro/internal/tensor"
)

// seedMatrix is the fixed seed set the fault suite sweeps (make
// test-faults); determinism claims are asserted per seed.
var seedMatrix = []int64{1, 2, 3, 5, 8, 13}

// TestZeroFaultPlanByteIdentical is the golden regression: a zero plan
// must take the exact fault-free code path — byte-identical outputs, the
// unchanged SimTiming, and no Recovery report.
func TestZeroFaultPlanByteIdentical(t *testing.T) {
	w, idx, tbl, _ := testKernel(1, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	base, err := ExecuteLUT(p, w, m, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, FaultPlan{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(res.Output, base.Output) {
		t.Fatal("zero plan changed the output")
	}
	if res.Recovery != nil {
		t.Fatal("zero plan produced a Recovery report")
	}
	if res.Timing != base.Timing {
		t.Fatalf("zero plan changed timing: %+v vs %+v", res.Timing, base.Timing)
	}
	ft, err := SimTimingWithFaults(p, w, m, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if ft != SimTiming(p, w, m) {
		t.Fatal("zero plan changed SimTiming")
	}
}

// TestFaultRecoveryBitExact: with dead PEs and a nonzero flip rate whose
// corruptions all fall within the retry budget, recovery must bring the
// distributed output back to bit-exact agreement with the reference
// lookup (the oracle the clean executor is held to), and the Recovery
// counts must be deterministic and match the analytic prediction.
func TestFaultRecoveryBitExact(t *testing.T) {
	w, idx, tbl, _ := testKernel(2, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8) // 32 PEs
	want := tbl.Lookup(idx, w.N)
	for _, seed := range seedMatrix {
		plan := FaultPlan{Seed: seed, DeadPEFraction: 0.5, FlipRate: 0.05}
		res, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rec := res.Recovery
		if rec == nil {
			t.Fatalf("seed %d: no Recovery report", seed)
		}
		if rec.ResidualCorrupt != 0 {
			t.Fatalf("seed %d: %d residual corruptions slipped past the retry budget", seed, rec.ResidualCorrupt)
		}
		if !tensor.Equal(res.Output, want) {
			t.Fatalf("seed %d: recovered output not bit-exact with reference", seed)
		}
		if rec.DeadPEs == 0 || rec.Redispatched != rec.DeadPEs {
			t.Fatalf("seed %d: expected dead PEs with matching re-dispatches, got %+v", seed, rec)
		}
		// Determinism: a second run reproduces the exact counts.
		res2, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, plan)
		if err != nil {
			t.Fatal(err)
		}
		if *res2.Recovery != *rec {
			t.Fatalf("seed %d: Recovery not deterministic: %+v vs %+v", seed, *res2.Recovery, *rec)
		}
		// The analytic replay predicts the same counts without executing.
		pred, err := PlanRecovery(p, w, m, plan)
		if err != nil {
			t.Fatal(err)
		}
		if pred != *rec {
			t.Fatalf("seed %d: PlanRecovery %+v != executed %+v", seed, pred, *rec)
		}
	}
}

// TestFaultRecoveryInt8AndHalf runs the same recovery contract through
// the INT8 and 16-bit executors.
func TestFaultRecoveryInt8AndHalf(t *testing.T) {
	w, idx, tbl, _ := testKernel(3, 32, 16, 16, 4, 8)
	plan := FaultPlan{Seed: 7, DeadPEFraction: 0.5, FlipRate: 0.05}

	q := tbl.Quantize()
	wi := w
	wi.ElemBytes = 1
	p := UPMEM()
	m := defaultMapping(wi, 8, 8)
	res, err := ExecuteLUTInt8WithFaults(p, wi, m, idx, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.ResidualCorrupt != 0 || !tensor.Equal(res.Output, q.Lookup(idx, w.N)) {
		t.Fatalf("INT8 recovery failed: %+v", res.Recovery)
	}

	half := tbl.QuantizeHalf(false)
	wh := w
	wh.ElemBytes = 2
	ph := HBMPIM()
	resH, err := ExecuteLUTHalfWithFaults(ph, wh, m, idx, half, plan)
	if err != nil {
		t.Fatal(err)
	}
	if resH.Recovery.ResidualCorrupt != 0 || !tensor.Equal(resH.Output, half.Lookup(idx, w.N)) {
		t.Fatalf("half recovery failed: %+v", resH.Recovery)
	}
}

// TestResidualCorruptionDiverges: with FlipRate 1 every retry fails too,
// so corruption must really land in the data — outputs diverge and the
// residual count is positive.
func TestResidualCorruptionDiverges(t *testing.T) {
	w, idx, tbl, _ := testKernel(4, 32, 16, 16, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	plan := FaultPlan{Seed: 1, FlipRate: 1}
	res, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Recovery
	if rec.ResidualCorrupt == 0 {
		t.Fatal("FlipRate 1 produced no residual corruption")
	}
	if rec.Retries != MaxTransferRetries*3*(w.N/m.NsTile)*(w.F/m.FsTile) {
		t.Fatalf("retries %d: every transfer should exhaust the budget", rec.Retries)
	}
	if tensor.Equal(res.Output, tbl.Lookup(idx, w.N)) {
		t.Fatal("corrupted run still bit-exact with reference")
	}
}

// TestShrunkenArrayBitExact (re-dispatch path): dead PEs with a zero flip
// rate exercise only the shrunken-array re-run, which must stay bit-exact
// with the full-array result.
func TestShrunkenArrayBitExact(t *testing.T) {
	w, idx, tbl, _ := testKernel(5, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	full, err := ExecuteLUT(p, w, m, idx, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seedMatrix {
		plan := FaultPlan{Seed: seed, DeadPEFraction: 0.7}
		res, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(res.Output, full.Output) {
			t.Fatalf("seed %d: shrunken-array result differs from full array", seed)
		}
		if res.Recovery.Retries != 0 || res.Recovery.ResidualCorrupt != 0 {
			t.Fatalf("seed %d: zero flip rate produced transfer activity: %+v", seed, res.Recovery)
		}
	}
}

// TestRunPESetNonUniform drives the fan-out directly with a lopsided
// assignment (one PE owns most tiles) and checks full, disjoint coverage.
func TestRunPESetNonUniform(t *testing.T) {
	w, idx, tbl, _ := testKernel(6, 32, 16, 16, 2, 8)
	m := defaultMapping(w, 8, 8)
	tiles := tileList(w, m)
	assign := make([][]tile, 4)
	assign[0] = tiles[:len(tiles)-2] // PE 0 hoards almost everything
	assign[2] = tiles[len(tiles)-2:]
	out := tensor.New(w.N, w.F)
	runPESet(assign, func(pe int, ts []tile) {
		for _, tl := range ts {
			for r := tl.rowLo; r < tl.rowHi; r++ {
				dst := out.Row(r)[tl.colLo:tl.colHi]
				for cb := 0; cb < w.CB; cb++ {
					src := tbl.Slice(cb, int(idx[r*w.CB+cb]))[tl.colLo:tl.colHi]
					for f, v := range src {
						dst[f] += v
					}
				}
			}
		}
	})
	if !tensor.Equal(out, tbl.Lookup(idx, w.N)) {
		t.Fatal("non-uniform PE set did not cover the partition exactly")
	}
}

// TestIrrecoverablePlan: when the plan leaves fewer healthy PEs than the
// mapping needs, execution reports ErrIrrecoverable (the engine's cue to
// fall back to host GEMM).
func TestIrrecoverablePlan(t *testing.T) {
	w, idx, tbl, _ := testKernel(7, 64, 16, 32, 2, 8)
	p := UPMEM()
	p.NumPE = 32 // the mapping below uses all 32
	m := defaultMapping(w, 8, 8)
	plan := FaultPlan{Seed: 1, DeadPEFraction: 0.5}
	if _, err := ExecuteLUTWithFaults(p, w, m, idx, tbl, plan); !errors.Is(err, ErrIrrecoverable) {
		t.Fatalf("want ErrIrrecoverable, got %v", err)
	}
	if _, err := SimTimingWithFaults(p, w, m, plan); !errors.Is(err, ErrIrrecoverable) {
		t.Fatalf("SimTimingWithFaults: want ErrIrrecoverable, got %v", err)
	}
	if _, err := PlanRecovery(p, w, m, plan); !errors.Is(err, ErrIrrecoverable) {
		t.Fatalf("PlanRecovery: want ErrIrrecoverable, got %v", err)
	}
}

// TestFaultTimingMonotonic: stragglers and dead PEs must only ever slow
// the modelled kernel down, and re-dispatch rounds dominate stragglers.
func TestFaultTimingMonotonic(t *testing.T) {
	w, _, _, _ := testKernel(8, 64, 16, 32, 2, 8)
	p := UPMEM()
	m := defaultMapping(w, 8, 8)
	clean := SimTiming(p, w, m)
	strag, err := SimTimingWithFaults(p, w, m, FaultPlan{Seed: 3, StragglerSpread: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strag.Kernel() <= clean.Kernel() {
		t.Fatalf("straggler plan did not slow the kernel: %g vs %g", strag.Kernel(), clean.Kernel())
	}
	if strag.Sub() != clean.Sub() {
		t.Fatal("straggler-only plan should not change host transfer terms")
	}
	dead, err := SimTimingWithFaults(p, w, m, FaultPlan{Seed: 3, DeadPEFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if dead.Kernel() < 2*clean.Kernel() {
		t.Fatalf("re-dispatch should cost at least one extra round: %g vs %g", dead.Kernel(), clean.Kernel())
	}
	flip, err := SimTimingWithFaults(p, w, m, FaultPlan{Seed: 3, FlipRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if flip.Sub() <= clean.Sub() || flip.KernelXfer <= clean.KernelXfer {
		t.Fatal("retry inflation missing from transfer terms")
	}
}

// TestFaultPlanValidate rejects out-of-range parameters.
func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{DeadPEFraction: -0.1},
		{DeadPEFraction: 1},
		{FlipRate: -0.5},
		{FlipRate: 1.5},
		{StragglerSpread: -1},
	}
	for i, plan := range bad {
		if err := plan.Validate(); err == nil {
			t.Fatalf("bad plan %d accepted: %+v", i, plan)
		}
	}
	ok := FaultPlan{Seed: 9, DeadPEFraction: 0.3, FlipRate: 0.1, StragglerSpread: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
	seedOnly := FaultPlan{Seed: 5}
	if ok.IsZero() || !seedOnly.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if _, err := (FaultPlan{DeadPEFraction: 0.5}).Instantiate(0); err == nil {
		t.Fatal("zero-PE instantiation accepted")
	}
}

// TestInstantiateDeterministic: the same plan always yields the same dead
// set and slowdowns, and respects the requested fraction.
func TestInstantiateDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 11, DeadPEFraction: 0.25, StragglerSpread: 0.5}
	a, err := plan.Instantiate(128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := plan.Instantiate(128)
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for pe := range a.Dead {
		if a.Dead[pe] != b.Dead[pe] || a.Slowdown[pe] != b.Slowdown[pe] {
			t.Fatal("instantiation not deterministic")
		}
		if a.Dead[pe] {
			dead++
		}
		if a.Slowdown[pe] < 1 || a.Slowdown[pe] > 1.5 {
			t.Fatalf("slowdown %g outside [1, 1.5]", a.Slowdown[pe])
		}
	}
	if dead != 32 {
		t.Fatalf("dead %d, want 32", dead)
	}
	if a.Healthy() != 96 {
		t.Fatalf("healthy %d", a.Healthy())
	}
}

package pim

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the two architecture extensions the paper proposes
// as future work (§7): adder-only PE designs and on-chip buffer management
// that exploits hot LUT entries.

// AdderOnly derives the paper's proposed adder-only variant of a platform:
// since LUT-NN removes every multiplication from the PIM-side operator,
// the multiplier area can be spent on more adders. Adders cost roughly an
// order of magnitude less area than same-width multipliers (the paper
// cites the TPUv4i lesson [46]), so the variant packs `densityGain` times
// the reduce throughput into the same envelope and drops GEMM capability
// entirely.
func AdderOnly(p *Platform, densityGain float64) *Platform {
	v := *p
	v.Name = p.Name + "-AdderOnly"
	v.ReduceCycles = p.ReduceCycles / densityGain
	v.FineGrainExtraCycles = p.FineGrainExtraCycles / densityGain
	v.GEMMMACsPerCycle = 0 // no multipliers: GEMM offload impossible
	return &v
}

// HotCache models the §7 on-chip buffer-management proposal: a per-PE
// cache holding the hottest (cb, ct) LUT entries. Because index
// distributions skew toward a few "hot" centroids, even a small cache
// absorbs a large fraction of table traffic.
type HotCache struct {
	// EntryBytes is the size of one cached F-slice.
	EntryBytes int
	// Capacity is the number of (cb, ct) slices the cache holds.
	Capacity int
}

// HitRate returns the fraction of lookups served from the cache under an
// optimal (hottest-entries-resident) policy, given the observed index
// histogram hist[cb][ct] (counts per table entry).
func (c HotCache) HitRate(hist [][]int64) float64 {
	var all []int64
	var total int64
	for _, row := range hist {
		for _, v := range row {
			all = append(all, v)
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	var hit int64
	for i := 0; i < c.Capacity && i < len(all); i++ {
		hit += all[i]
	}
	return float64(hit) / float64(total)
}

// IndexHistogram tallies index frequencies from an N×CB index matrix. It
// panics if cb or ct is non-positive, len(idx) is not a multiple of cb,
// or an index value is out of range for ct — a histogram silently built
// from a mis-shaped matrix would mis-rank the hot entries.
func IndexHistogram(idx []uint8, cb, ct int) [][]int64 {
	if cb <= 0 || ct <= 0 || len(idx)%cb != 0 {
		panic(fmt.Sprintf("pim: IndexHistogram shape (len=%d, cb=%d, ct=%d)", len(idx), cb, ct))
	}
	hist := make([][]int64, cb)
	for i := range hist {
		hist[i] = make([]int64, ct)
	}
	n := len(idx) / cb
	for i := 0; i < n; i++ {
		for c := 0; c < cb; c++ {
			v := int(idx[i*cb+c])
			if v >= ct {
				panic(fmt.Sprintf("pim: index %d out of range for CT=%d", v, ct))
			}
			hist[c][v]++
		}
	}
	return hist
}

// ZipfIndexHistogram builds a synthetic skewed histogram: within each
// codebook the k-th most popular centroid receives weight k^(−s). This is
// the "hot items" distribution the paper's §7 discussion anticipates. It
// panics on non-positive cb or ct.
func ZipfIndexHistogram(cb, ct int, n int64, s float64) [][]int64 {
	if cb <= 0 || ct <= 0 {
		panic(fmt.Sprintf("pim: ZipfIndexHistogram shape (cb=%d, ct=%d)", cb, ct))
	}
	hist := make([][]int64, cb)
	var norm float64
	for k := 1; k <= ct; k++ {
		norm += math.Pow(float64(k), -s)
	}
	for c := range hist {
		hist[c] = make([]int64, ct)
		for k := 1; k <= ct; k++ {
			hist[c][k-1] = int64(float64(n) * math.Pow(float64(k), -s) / norm)
		}
	}
	return hist
}

// CachedKernelTiming recomputes the micro-kernel time of mapping m when a
// hot-entry cache with the given hit rate absorbs that fraction of LUT
// bank traffic. Host transfers and reduce work are unchanged — only the
// bank↔buffer LUT bytes shrink.
func CachedKernelTiming(p *Platform, w Workload, m Mapping, hitRate float64) Timing {
	ev := countEvents(p, w, m)
	ev.LUTLoadBytes = int64(float64(ev.LUTLoadBytes) * (1 - hitRate))
	ev.LUTLoadOps = int(float64(ev.LUTLoadOps) * (1 - hitRate))
	return timing(p, w, m, ev)
}
